/**
 * @file
 * Assertion-based debugging at scale: a 150-qubit GHZ preparation
 * with one broken entangling link, located at runtime by a *binary
 * search* over pair-parity assertions on the stabilizer backend.
 *
 * Why binary search: for a connected GHZ cluster, the parity of any
 * qubit pair is deterministically even, so a pair-parity assertion
 * between q0 and qm fires ~50% of the time exactly when the broken
 * link lies between them. Each probe needs one ancilla and one
 * classical bit, so log2(n) probe runs localise the break — and
 * every probe is Clifford, so 150 qubits cost milliseconds on the
 * tableau backend (a state vector would need 2^150 amplitudes).
 *
 * Run: ./build/examples/scale_debugging
 */

#include <cstdio>
#include <memory>

#include "qra.hh"

using namespace qra;

namespace {

constexpr std::size_t kQubits = 150;
constexpr std::size_t kBrokenLink = 73; // cx(73, 74) silently dropped
constexpr std::size_t kShots = 64;

/** GHZ preparation with the planted bug. */
Circuit
buggyGhz()
{
    Circuit c(kQubits, 0, "ghz150_buggy");
    c.h(0);
    for (Qubit q = 0; q + 1 < kQubits; ++q) {
        if (q == kBrokenLink)
            continue;
        c.cx(q, q + 1);
    }
    return c;
}

/**
 * Probe: assert the pair (q0, qm) is GHZ-correlated. Fires ~50%
 * when the break lies in (0, m]; stays silent otherwise.
 */
double
probePair(Qubit m, StabilizerSimulator &sim)
{
    AssertionSpec spec;
    spec.assertion = std::make_shared<EntanglementAssertion>(2);
    spec.targets = {0, m};
    spec.insertAt = std::size_t(-1); // end of the preparation
    const InstrumentedCircuit inst =
        instrument(buggyGhz(), {spec});

    const Result r = sim.run(inst.circuit(), kShots);
    double error_rate = 0.0;
    for (const auto &[reg, n] : r.rawCounts())
        if (!inst.passed(reg))
            error_rate += double(n) / double(r.shots());
    return error_rate;
}

} // namespace

int
main()
{
    std::printf("GHZ-%zu preparation with a planted bug: the "
                "entangling CX(%zu, %zu) is missing.\n\n",
                kQubits, kBrokenLink, kBrokenLink + 1);
    std::printf("binary search with pair-parity assertions "
                "(q0 vs qm), %zu shots per probe:\n", kShots);

    StabilizerSimulator sim(23);

    // Invariant: parity(0, lo) silent, parity(0, hi) firing.
    std::size_t lo = 0;
    std::size_t hi = kQubits - 1;
    std::size_t probes = 0;
    while (hi - lo > 1) {
        const std::size_t mid = (lo + hi) / 2;
        const double rate = probePair(static_cast<Qubit>(mid), sim);
        ++probes;
        std::printf("  probe (q0, q%-3zu): assertion error rate "
                    "%6s -> break is %s q%zu\n",
                    mid, formatPercent(rate).c_str(),
                    rate > 0.1 ? "before" : "after", mid);
        if (rate > 0.1)
            hi = mid;
        else
            lo = mid;
    }

    std::printf("\nlocalised after %zu probes: the broken link is "
                "cx(q%zu, q%zu)\n", probes, lo, hi);
    if (lo == kBrokenLink && hi == kBrokenLink + 1) {
        std::printf("which is exactly the planted bug. Each probe "
                    "ran %zu qubits on the stabilizer backend.\n",
                    kQubits + 1);
        return 0;
    }
    std::printf("UNEXPECTED: localisation failed (expected %zu)\n",
                kBrokenLink);
    return 1;
}
