/**
 * @file
 * NISQ error filtering on the ibmqx4 device model — the paper's
 * Section 4 use-case as a standalone application. Builds a GHZ
 * state, attaches an entanglement assertion, and compares the raw
 * and assertion-filtered output distributions against the ideal.
 *
 * Run: ./build/examples/nisq_filtering
 */

#include <cstdio>
#include <memory>

#include "qra.hh"

using namespace qra;

int
main()
{
    const DeviceModel device = DeviceModel::ibmqx4();
    std::printf("device: %s, coupling {%s}\n\n",
                device.name().c_str(),
                device.couplingMap().str().c_str());

    // Payload: GHZ-3 measured in full.
    Circuit payload(3, 3, "ghz3");
    payload.h(0).cx(0, 1).cx(1, 2);
    payload.measureAll();

    AssertionSpec spec;
    spec.assertion = std::make_shared<EntanglementAssertion>(3);
    spec.targets = {0, 1, 2};
    spec.insertAt = 3;
    spec.label = "ghz parity";
    const InstrumentedCircuit inst = instrument(payload, {spec});

    const TranspileResult mapped =
        transpile(inst.circuit(), device.couplingMap());
    std::printf("%s\n\n", mapped.str().c_str());

    DensityMatrixSimulator sim(777);
    sim.setNoiseModel(&device.noiseModel());
    const Result r = sim.run(mapped.circuit, 8192);
    const AssertionReport report = analyze(inst, r);

    // Ideal reference distribution: 50/50 on 000 / 111.
    stats::Distribution ideal{{0b000, 0.5}, {0b111, 0.5}};

    const double tv_raw =
        stats::totalVariation(report.rawPayload, ideal);
    const double tv_filtered =
        stats::totalVariation(report.filteredPayload, ideal);

    std::printf("assertion error rate: %s (shots kept: %s)\n",
                formatPercent(report.anyErrorRate).c_str(),
                formatPercent(report.keptFraction).c_str());
    std::printf("raw payload:      %s\n",
                stats::distributionToString(report.rawPayload, 3)
                    .c_str());
    std::printf("filtered payload: %s\n",
                stats::distributionToString(report.filteredPayload, 3)
                    .c_str());
    std::printf("distance to ideal (total variation): raw %s -> "
                "filtered %s\n",
                formatDouble(tv_raw, 4).c_str(),
                formatDouble(tv_filtered, 4).c_str());

    const stats::ErrorRateReport err = errorRates(
        inst, r, [](std::uint64_t payload_bits) {
            return payload_bits != 0b000 && payload_bits != 0b111;
        });
    std::printf("GHZ error rate: %s\n", err.str().c_str());

    const bool ok = tv_filtered < tv_raw;
    std::printf("\n%s\n",
                ok ? "assertion filtering moved the NISQ output "
                     "measurably closer to the ideal distribution"
                   : "UNEXPECTED: filtering did not help");
    return ok ? 0 : 1;
}
