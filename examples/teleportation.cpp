/**
 * @file
 * Quantum teleportation guarded by dynamic assertions at protocol
 * boundaries: a classical assertion on the fresh target qubit, an
 * entanglement assertion on the Bell resource, and verification that
 * the teleported state arrives intact despite the checks.
 *
 * Run: ./build/examples/teleportation
 */

#include <cmath>
#include <cstdio>
#include <memory>

#include "qra.hh"

using namespace qra;

namespace {

/** Teleport RY(theta)|0> from qubit 0 to qubit 2. */
Circuit
teleport(double theta)
{
    Circuit c(3, 3, "teleport");
    c.ry(theta, 0);       // op 0: the message state
    c.h(1);               // op 1: Bell resource...
    c.cx(1, 2);           // op 2
    c.cx(0, 1).h(0);      // ops 3-4: Bell-basis change
    c.measure(0, 0);      // op 5
    c.measure(1, 1);      // op 6
    c.cx(1, 2);           // op 7: corrections (coherent form)
    c.cz(0, 2);           // op 8
    c.measure(2, 2);      // op 9
    return c;
}

} // namespace

int
main()
{
    const double theta = 1.2345;
    const double expected_p1 = std::pow(std::sin(theta / 2.0), 2);

    const Circuit payload = teleport(theta);

    // Assertion 1: before anything runs, the resource qubits are
    // still |0>.
    AssertionSpec fresh;
    fresh.assertion = std::make_shared<ClassicalAssertion>(0b00, 2);
    fresh.targets = {1, 2};
    fresh.insertAt = 0;
    fresh.label = "resource qubits fresh";

    // Assertion 2: after ops 1-2 the Bell resource is entangled.
    AssertionSpec bell;
    bell.assertion = std::make_shared<EntanglementAssertion>(2);
    bell.targets = {1, 2};
    bell.insertAt = 3;
    bell.label = "bell resource ready";

    const InstrumentedCircuit inst =
        instrument(payload, {fresh, bell});
    std::printf("%s\n", inst.circuit().draw().c_str());

    // The trajectory backend handles the mid-circuit measurements.
    TrajectorySimulator sim(4321);
    const Result r = sim.run(inst.circuit(), 20000);
    const AssertionReport report = analyze(inst, r);
    std::printf("%s\n", report.str(inst).c_str());

    // Teleportation fidelity: P(q2 reads 1) must equal
    // sin^2(theta/2) regardless of the correction bits.
    double p1 = 0.0;
    for (const auto &[payload_bits, p] : report.rawPayload)
        if ((payload_bits >> 2) & 1)
            p1 += p;
    std::printf("teleported P(1): measured %s, expected %s\n",
                formatDouble(p1, 4).c_str(),
                formatDouble(expected_p1, 4).c_str());

    const bool ok = std::abs(p1 - expected_p1) < 0.02 &&
                    report.anyErrorRate < 1e-9;
    std::printf("%s\n",
                ok ? "teleportation intact; all assertions silent"
                   : "UNEXPECTED: assertion fired or state damaged");
    return ok ? 0 : 1;
}
