/**
 * @file
 * Quickstart: build a Bell pair, attach an entanglement assertion,
 * run it through the runtime execution engine on the ideal
 * state-vector backend and on the noisy ibmqx4 model, and read the
 * assertion report.
 *
 * Build & run:
 *   cmake -B build && cmake --build build -j
 *   ./build/examples/quickstart
 */

#include <cstdio>
#include <memory>

#include "qra.hh"

using namespace qra;
using namespace qra::runtime;

int
main()
{
    // 1. A payload circuit: Bell pair with both qubits measured.
    Circuit payload(2, 2, "bell");
    payload.h(0).cx(0, 1);
    payload.measure(0, 0).measure(1, 1);

    // 2. An assertion: after instruction 2 (the CX), qubits 0 and 1
    //    must be entangled in the even-parity subspace.
    AssertionSpec spec;
    spec.assertion = std::make_shared<EntanglementAssertion>(2);
    spec.targets = {0, 1};
    spec.insertAt = 2;
    spec.label = "bell pair ready";

    // 3. Instrument: one ancilla qubit and one classical bit are
    //    appended; the check runs inline with the program.
    const InstrumentedCircuit inst = instrument(payload, {spec});
    std::printf("%s\n", inst.circuit().draw().c_str());

    // 4. The execution engine shards the shot budget across a thread
    //    pool and picks a backend from the registry ("auto" would
    //    also work). Ideal run: the assertion never fires and the
    //    payload stays perfectly correlated.
    ExecutionEngine engine;
    const AssertionReport ideal_report =
        engine.runInstrumented(inst, 4096, "statevector", 1234);
    std::printf("ideal device:\n%s\n",
                ideal_report.str(inst).c_str());

    // 5. Noisy run on the ibmqx4 model: transpile to the device
    //    (connectivity + directed CNOTs), then simulate with its
    //    calibrated noise on the exact density backend — all routed
    //    through the same engine call with a noise model attached.
    const DeviceModel device = DeviceModel::ibmqx4();
    const TranspileResult mapped =
        transpile(inst.circuit(), device.couplingMap());
    std::printf("%s\n", mapped.str().c_str());

    const Result r_noisy = engine.run(
        mapped.circuit, 4096, "auto", 1234, &device.noiseModel());
    const AssertionReport noisy_report = analyze(inst, r_noisy);
    std::printf("ibmqx4 model:\n%s\n",
                noisy_report.str(inst).c_str());

    // 6. The paper's punchline: filtering on the assertion bit
    //    lowers the payload error rate.
    const stats::ErrorRateReport err = errorRates(
        inst, r_noisy, [](std::uint64_t payload_bits) {
            return payload_bits == 0b01 || payload_bits == 0b10;
        });
    std::printf("error filtering: %s\n", err.str().c_str());
    return 0;
}
