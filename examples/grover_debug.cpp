/**
 * @file
 * Debugging Grover's search with dynamic assertions — the paper's
 * motivating use-case. A planted bug (a missing Hadamard in the
 * superposition preamble) silently corrupts the search result; a
 * superposition assertion placed after the preamble pinpoints it at
 * runtime, without stopping the program.
 *
 * Run: ./build/examples/grover_debug
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "qra.hh"

using namespace qra;

namespace {

/** 2-qubit Grover searching for |11>, with an optional planted bug. */
Circuit
grover(bool buggy)
{
    Circuit c(2, 2, buggy ? "grover[BUGGY]" : "grover");
    // Superposition preamble.
    c.h(0);
    if (!buggy)
        c.h(1); // the bug: this line is "forgotten"
    // Oracle marking |11>.
    c.cz(0, 1);
    // Diffusion operator.
    c.h(0).h(1).x(0).x(1).cz(0, 1).x(0).x(1).h(0).h(1);
    c.measureAll();
    return c;
}

/** Attach |+> assertions on both qubits after the preamble. */
InstrumentedCircuit
instrumented(const Circuit &payload)
{
    std::vector<AssertionSpec> specs;
    for (Qubit q : {Qubit{0}, Qubit{1}}) {
        AssertionSpec spec;
        spec.assertion = std::make_shared<SuperpositionAssertion>();
        spec.targets = {q};
        spec.insertAt = 2; // after the (intended) two H gates
        spec.label = "preamble q" + std::to_string(q);
        specs.push_back(spec);
    }
    return instrument(payload, specs);
}

void
runAndReport(bool buggy)
{
    const Circuit payload = grover(buggy);
    const InstrumentedCircuit inst = instrumented(payload);

    StatevectorSimulator sim(99);
    const Result r = sim.run(inst.circuit(), 8192);
    const AssertionReport report = analyze(inst, r);

    std::printf("--- %s ---\n", payload.name().c_str());
    std::printf("%s", report.str(inst).c_str());

    // What would the program print? The most frequent payload.
    std::uint64_t best = 0;
    double best_p = -1.0;
    for (const auto &[payload_bits, p] : report.rawPayload) {
        if (p > best_p) {
            best = payload_bits;
            best_p = p;
        }
    }
    std::printf("search result: |%s> with probability %s\n\n",
                toBitstring(best, 2).c_str(),
                formatPercent(best_p).c_str());
}

} // namespace

int
main()
{
    std::printf("Grover search for |11>, with superposition "
                "assertions on the preamble.\n\n");

    // Correct program: assertions silent, |11> found ~100%.
    runAndReport(false);

    // Buggy program: note the q1 assertion firing ~50% of the time
    // while the q0 assertion stays quiet — the error is localised to
    // qubit 1's preamble, which is exactly where the bug is.
    runAndReport(true);

    std::printf("The ~50%% error rate on 'preamble q1' localises "
                "the missing H without halting execution —\n"
                "a statistical assertion would have needed a "
                "separate, result-destroying measurement run.\n");
    return 0;
}
