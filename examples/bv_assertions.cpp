/**
 * @file
 * Bernstein-Vazirani with both assertion styles side by side: the
 * dynamic superposition/classical assertions run inline with the
 * algorithm, while the statistical baseline needs a separate
 * breakpoint batch and yields no program output.
 *
 * Run: ./build/examples/bv_assertions
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "qra.hh"

using namespace qra;

namespace {

/** BV circuit over n input qubits + 1 oracle ancilla. */
Circuit
bernsteinVazirani(std::uint64_t secret, std::size_t n)
{
    Circuit c(n + 1, n, "bv");
    const Qubit oracle = static_cast<Qubit>(n);
    c.x(oracle).h(oracle);
    for (Qubit q = 0; q < n; ++q)
        c.h(q);
    for (Qubit q = 0; q < n; ++q)
        if ((secret >> q) & 1)
            c.cx(q, oracle);
    for (Qubit q = 0; q < n; ++q)
        c.h(q);
    for (Qubit q = 0; q < n; ++q)
        c.measure(q, q);
    return c;
}

} // namespace

int
main()
{
    const std::size_t n = 3;
    const std::uint64_t secret = 0b101;
    const Circuit payload = bernsteinVazirani(secret, n);
    // Instruction offsets inside the payload:
    //   0,1: oracle prep; 2..4: input H layer; then the oracle.
    const std::size_t after_h = 2 + n;

    std::printf("Bernstein-Vazirani, n = %zu, secret = %s\n\n", n,
                toBitstring(secret, n).c_str());

    // --- Dynamic assertions -----------------------------------------
    std::vector<AssertionSpec> specs;
    for (Qubit q = 0; q < n; ++q) {
        AssertionSpec spec;
        spec.assertion = std::make_shared<SuperpositionAssertion>();
        spec.targets = {q};
        spec.insertAt = after_h;
        spec.label = "input q" + std::to_string(q) + " in |+>";
        specs.push_back(spec);
    }
    // And a classical assertion on the answer register just before
    // the final measurement.
    AssertionSpec answer;
    answer.assertion =
        std::make_shared<ClassicalAssertion>(secret, n);
    std::vector<Qubit> targets(n);
    for (Qubit q = 0; q < n; ++q)
        targets[q] = q;
    answer.targets = targets;
    answer.insertAt = payload.size() - n; // before the measures
    answer.label = "answer == secret";
    specs.push_back(answer);

    const InstrumentedCircuit inst = instrument(payload, specs);
    StatevectorSimulator sim(2468);
    const Result r = sim.run(inst.circuit(), 8192);
    const AssertionReport report = analyze(inst, r);

    std::printf("dynamic assertions (single batch of 8192 shots):\n");
    std::printf("%s", report.str(inst).c_str());
    std::printf("payload readout: %s\n\n",
                stats::distributionToString(report.rawPayload, n)
                    .c_str());

    // --- Statistical baseline ---------------------------------------
    std::printf("statistical baseline (one extra batch per "
                "breakpoint, no program output):\n");
    StatisticalAssertion sup(AssertionKind::Superposition, targets);
    const Circuit bp = sup.breakpointCircuit(payload, after_h);
    const Result rb = sim.run(bp, 8192);
    stats::Counts counts;
    for (const auto &[k, cnt] : rb.rawCounts())
        counts[k] = cnt;
    std::printf("  breakpoint after H layer: %s\n",
                sup.check(counts).str().c_str());
    std::printf("  batches used: dynamic = 1, statistical = 2 "
                "(breakpoint + result run)\n");
    return 0;
}
