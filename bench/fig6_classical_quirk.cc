/**
 * @file
 * Fig. 6 reproduction: the paper's QUIRK experiment for the classical
 * assertion. A |+> input is checked against ==|0>; a post-select
 * operator keeps only the shots without an assertion error, and the
 * qubit under test is observed to be forced to |0>.
 *
 * QUIRK is an ideal state-vector simulator with post-selection
 * displays; our StatevectorSimulator + PostSelect reproduces the
 * identical linear algebra (see DESIGN.md substitution table).
 */

#include <cmath>
#include <memory>

#include "bench_util.hh"
#include "qra.hh"

using namespace qra;

int
main()
{
    bench::banner("Figure 6",
                  "QUIRK-style verification of the classical "
                  "assertion (post-selected)");
    bool ok = true;

    // Payload: qubit in |+> (the figure's superposed input).
    Circuit payload(1, 0, "fig6");
    payload.h(0);

    AssertionSpec spec;
    spec.assertion = std::make_shared<ClassicalAssertion>(0);
    spec.targets = {0};
    spec.insertAt = 1;
    const InstrumentedCircuit inst = instrument(payload, {spec});
    const Qubit ancilla = inst.checks()[0].ancillas[0];

    // QUIRK's post-select display: ignore shots with an assertion
    // error (ancilla == 1).
    Circuit conditioned = inst.circuit();
    conditioned.postSelect(ancilla, 0);
    std::printf("%s\n", conditioned.draw().c_str());

    StatevectorSimulator sim(7);

    // State of the qubit under test before the check: P(1) = 1/2.
    const double before =
        sim.finalState(payload).probabilityOfOne(0);
    bench::rowHeader();
    bench::row("P(q=1) before check", "0.5", formatDouble(before, 6));
    ok = ok && std::abs(before - 0.5) < 1e-12;

    // After the post-selected check the input is forced to |0>.
    const StateVector after = sim.finalState(conditioned);
    bench::row("P(q=1) after check", "0",
               formatDouble(after.probabilityOfOne(0), 6),
               "(paper: forced to |0>)");
    ok = ok && after.probabilityOfOne(0) < 1e-12;

    // Fraction of shots the post-selection keeps: |a|^2 = 1/2.
    Circuit measured = conditioned;
    const Clbit payload_bit = inst.checks()[0].clbits[0];
    (void)payload_bit;
    Result r = sim.run(measured, 8192);
    bench::row("retained fraction", "0.5",
               formatDouble(r.retainedFraction(), 6),
               "(discarded shots = assertion errors)");
    // Per-shot conditioning makes this an empirical kept/attempted
    // ratio, so allow sampling noise.
    ok = ok && std::abs(r.retainedFraction() - 0.5) < 0.02;

    // Shot-level confirmation on the sampled simulator.
    std::size_t errors = 0;
    for (const auto &[reg, n] : r.rawCounts())
        if (!inst.passed(reg))
            errors += n;
    bench::row("assertion errors kept", "0", std::to_string(errors));
    ok = ok && errors == 0;

    bench::verdict(ok, "post-selected classical assertion projects "
                       "|+> onto |0> exactly as in the QUIRK run");
    return ok ? 0 : 1;
}
