/**
 * @file
 * Fig. 5 / Sec. 3.3 reproduction: the superposition assertion circuit
 * — deterministic |0> readout for |+>, deterministic |1> for |->, the
 * (1 - 2ab)/2 error law for real-amplitude inputs, and the forcing of
 * the qubit under test into an equal superposition on both branches.
 */

#include <cmath>
#include <memory>

#include "bench_util.hh"
#include "qra.hh"

using namespace qra;

namespace {

/** Exact ancilla |1> probability for the raw Fig. 5 circuit. */
double
rawCircuitAncillaOne(const Circuit &payload)
{
    // Hand-build the paper circuit (no Minus normalisation) so the
    // measured value matches the derivation's convention directly.
    Circuit c(payload.numQubits() + 1, 0);
    for (const Operation &op : payload.ops())
        c.append(op);
    const Qubit anc = static_cast<Qubit>(payload.numQubits());
    c.cx(0, anc).h(0).h(anc).cx(0, anc);
    StatevectorSimulator sim(1);
    return sim.finalState(c).probabilityOfOne(anc);
}

} // namespace

int
main()
{
    bench::banner("Figure 5 / Sec 3.3",
                  "dynamic assertion for equal superposition");
    bench::rowHeader();
    bool ok = true;

    // |+> input: ancilla deterministically |0>.
    {
        Circuit plus(1, 0);
        plus.h(0);
        const double p = rawCircuitAncillaOne(plus);
        bench::row("P(anc=1) on |+>", "0", formatDouble(p, 6));
        ok = ok && p < 1e-12;
    }

    // |-> input: ancilla deterministically |1>.
    {
        Circuit minus(1, 0);
        minus.x(0).h(0);
        const double p = rawCircuitAncillaOne(minus);
        bench::row("P(anc=1) on |->", "1", formatDouble(p, 6));
        ok = ok && std::abs(p - 1.0) < 1e-12;
    }

    // Classical inputs: 50% on either branch.
    for (int bit : {0, 1}) {
        Circuit classical(1, 0);
        if (bit)
            classical.x(0);
        const double p = rawCircuitAncillaOne(classical);
        bench::row("P(anc=1) on |" + std::to_string(bit) + ">",
                   "0.5", formatDouble(p, 6));
        ok = ok && std::abs(p - 0.5) < 1e-12;
    }

    // Real-amplitude sweep: P(anc=1) = (2 - 4ab)/4.
    bench::note("");
    bench::note("sweep a|0>+b|1> (real): P(anc=1) vs (2-4ab)/4");
    for (double theta : {0.3, 0.8, M_PI / 2, 1.9, 2.6}) {
        const double a = std::cos(theta / 2.0);
        const double b = std::sin(theta / 2.0);
        Circuit payload(1, 0);
        payload.ry(theta, 0);
        const double measured = rawCircuitAncillaOne(payload);
        const double expected = (2.0 - 4.0 * a * b) / 4.0;
        bench::row("theta = " + formatDouble(theta, 2),
                   formatDouble(expected, 6),
                   formatDouble(measured, 6));
        ok = ok && std::abs(measured - expected) < 1e-9;
    }

    // Forcing property: classical input, either ancilla branch
    // leaves the qubit in an equal superposition |k| = 1/sqrt2.
    bench::note("");
    bench::note("forcing: |1> input, qubit after the check:");
    for (int outcome : {0, 1}) {
        Circuit payload(1, 0);
        payload.x(0);
        AssertionSpec spec;
        spec.assertion = std::make_shared<SuperpositionAssertion>();
        spec.targets = {0};
        spec.insertAt = 1;
        const InstrumentedCircuit inst = instrument(payload, {spec});
        Circuit conditioned = inst.circuit();
        conditioned.postSelect(inst.checks()[0].ancillas[0], outcome);
        StatevectorSimulator sim(2);
        const StateVector sv = sim.finalState(conditioned);
        bench::row("ancilla reads " + std::to_string(outcome),
                   "P(1) = 0.5",
                   "P(1) = " + formatDouble(sv.probabilityOfOne(0), 6),
                   "|k| = 1/sqrt2 both branches");
        ok = ok && std::abs(sv.probabilityOfOne(0) - 0.5) < 1e-9;
    }

    bench::verdict(ok, "superposition assertion behaves exactly as "
                       "proven in Sec. 3.3");
    return ok ? 0 : 1;
}
