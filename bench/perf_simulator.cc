/**
 * @file
 * P1: simulator performance micro-benchmarks (google-benchmark).
 * Gate application throughput, qubit-count scaling, backend
 * comparison, and the cost of assertion instrumentation.
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "qra.hh"

using namespace qra;

namespace {

Circuit
randomCircuit(std::size_t num_qubits, std::size_t num_gates,
              std::uint64_t seed)
{
    Circuit c(num_qubits, num_qubits, "random");
    Rng rng(seed);
    for (std::size_t i = 0; i < num_gates; ++i) {
        const Qubit q = static_cast<Qubit>(rng.below(num_qubits));
        switch (rng.below(4)) {
          case 0:
            c.h(q);
            break;
          case 1:
            c.t(q);
            break;
          case 2:
            c.ry(rng.uniform() * M_PI, q);
            break;
          default:
          {
            const Qubit r = static_cast<Qubit>(
                (q + 1 + rng.below(num_qubits - 1)) % num_qubits);
            c.cx(q, r);
          }
        }
    }
    return c;
}

void
BM_SingleQubitGate(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    StateVector sv(n);
    const Operation h{.kind = OpKind::H, .qubits = {0}};
    for (auto _ : state) {
        sv.applyUnitary(h);
        benchmark::DoNotOptimize(sv.amplitudes().data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(std::size_t{1} << n));
}
BENCHMARK(BM_SingleQubitGate)->Arg(8)->Arg(12)->Arg(16)->Arg(20);

void
BM_CnotGate(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    StateVector sv(n);
    const Operation cx{.kind = OpKind::CX,
                       .qubits = {0, static_cast<Qubit>(n - 1)}};
    for (auto _ : state) {
        sv.applyUnitary(cx);
        benchmark::DoNotOptimize(sv.amplitudes().data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(std::size_t{1} << n));
}
BENCHMARK(BM_CnotGate)->Arg(8)->Arg(12)->Arg(16)->Arg(20);

void
BM_RandomCircuitStatevector(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const Circuit c = randomCircuit(n, 100, 7);
    StatevectorSimulator sim(1);
    for (auto _ : state) {
        const StateVector sv = sim.finalState(c);
        benchmark::DoNotOptimize(sv.amplitudes().data());
    }
}
BENCHMARK(BM_RandomCircuitStatevector)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

void
BM_DensityVsStatevector_Density(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const Circuit c = randomCircuit(n, 40, 11);
    DensityMatrixSimulator sim(1);
    for (auto _ : state) {
        const DensityMatrix dm = sim.finalState(c);
        benchmark::DoNotOptimize(dm.matrix().data().data());
    }
}
BENCHMARK(BM_DensityVsStatevector_Density)->Arg(2)->Arg(4)->Arg(6);

void
BM_NoisyDensityIbmqx4(benchmark::State &state)
{
    const DeviceModel device = DeviceModel::ibmqx4();
    Circuit c(5, 2, "bell");
    c.h(1).cx(1, 0).measure(1, 0).measure(0, 1);
    DensityMatrixSimulator sim(1);
    sim.setNoiseModel(&device.noiseModel());
    for (auto _ : state) {
        const auto dist = sim.exactDistribution(c);
        benchmark::DoNotOptimize(&dist);
    }
}
BENCHMARK(BM_NoisyDensityIbmqx4);

void
BM_TrajectoryShots(benchmark::State &state)
{
    const DeviceModel device = DeviceModel::ibmqx4();
    Circuit c(5, 2, "bell");
    c.h(1).cx(1, 0).measure(1, 0).measure(0, 1);
    TrajectorySimulator sim(1);
    sim.setNoiseModel(&device.noiseModel());
    const std::size_t shots =
        static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        const Result r = sim.run(c, shots);
        benchmark::DoNotOptimize(&r);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(shots));
}
BENCHMARK(BM_TrajectoryShots)->Arg(64)->Arg(512);

void
BM_EngineShardedTrajectoryShots(benchmark::State &state)
{
    // The engine-parallel counterpart of BM_TrajectoryShots: same
    // noisy Bell job, shot budget sharded across the pool.
    const DeviceModel device = DeviceModel::ibmqx4();
    Circuit c(5, 2, "bell");
    c.h(1).cx(1, 0).measure(1, 0).measure(0, 1);
    runtime::ExecutionEngine engine(
        runtime::EngineOptions{.shardShots = 64});
    const std::size_t shots =
        static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        const Result r =
            engine.run(c, shots, "trajectory", 1,
                       &device.noiseModel());
        benchmark::DoNotOptimize(&r);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(shots));
}
BENCHMARK(BM_EngineShardedTrajectoryShots)->Arg(64)->Arg(512);

void
BM_JobQueueBatchSubmission(benchmark::State &state)
{
    // Batch cost of the queue itself: many small jobs over one
    // cached prepared circuit.
    const Circuit c = randomCircuit(6, 30, 13);
    runtime::ExecutionEngine engine(
        runtime::EngineOptions{.shardShots = 256});
    runtime::JobQueue queue(engine);
    for (auto _ : state) {
        std::vector<runtime::JobSpec> batch(8);
        for (std::size_t i = 0; i < batch.size(); ++i) {
            batch[i].circuit = c;
            batch[i].shots = 128;
            batch[i].backend = "statevector";
            batch[i].seed = i;
        }
        const auto results = queue.runAll(batch);
        benchmark::DoNotOptimize(&results);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 8 * 128);
}
BENCHMARK(BM_JobQueueBatchSubmission);

void
BM_AssertionInstrumentation(benchmark::State &state)
{
    const Circuit payload = randomCircuit(8, 60, 3);
    std::vector<AssertionSpec> specs;
    for (Qubit q = 0; q < 4; ++q) {
        AssertionSpec spec;
        spec.assertion = std::make_shared<ClassicalAssertion>(0);
        spec.targets = {q};
        spec.insertAt = 10 * (q + 1);
        specs.push_back(spec);
    }
    for (auto _ : state) {
        const InstrumentedCircuit inst = instrument(payload, specs);
        benchmark::DoNotOptimize(&inst);
    }
}
BENCHMARK(BM_AssertionInstrumentation);

void
BM_TranspileToIbmqx4(benchmark::State &state)
{
    const DeviceModel device = DeviceModel::ibmqx4();
    const Circuit c = randomCircuit(5, 60, 5);
    for (auto _ : state) {
        const TranspileResult r =
            transpile(c, device.couplingMap());
        benchmark::DoNotOptimize(&r);
    }
}
BENCHMARK(BM_TranspileToIbmqx4);

} // namespace
