/**
 * @file
 * P1: simulator performance harness for the kernel subsystem.
 *
 * Eight sections, each with machine-readable JSON lines for the perf
 * trajectory:
 *  - gate throughput: amplitudes/sec per kernel class (diagonal,
 *    permutation, controlled, general 1q/2q, generic k-qubit) at one
 *    lane and at all pool lanes;
 *  - roofline: amps/sec of every vectorizable kernel class at every
 *    available SIMD tier against a measured copy-bandwidth ceiling on
 *    the same footprint, with simd_speedup = tier/scalar per class;
 *  - reduction roofline: the measurement-pipeline reductions
 *    (computeProbabilities, normSquaredOnMask, sumWeights, marginal
 *    scatter) per tier against the same ceiling, with reduce_speedup
 *    = tier/scalar, plus a cross-tier bit-identity check on sampled
 *    counts that gates the exit code (determinism is a hard verdict;
 *    throughput targets stay warn-only);
 *  - fusion: entry count and wall-time effect of the ExecutablePlan
 *    single-qubit fusion pass on a 1q-dense random circuit;
 *  - fusion depth: entries and evolve time at fusion levels 0/1/2,
 *    quantifying the two-qubit window cost model;
 *  - sampling throughput: shots/sec of sampled execution (alias
 *    table, O(1) per shot) vs the legacy per-shot cumulative scan;
 *  - marginal sampling: sampled shots/sec measuring the full register
 *    vs an ancilla-style subset (blocked parallel marginal);
 *  - trajectory: noisy (depolarizing + readout) shots/sec of the
 *    plan-lowered trajectory path vs the legacy Operation
 *    interpreter.
 *
 * Usage: perf_simulator [--json] [--qubits N] [--shots N]
 *   --json emits only the JSON lines (CI artifact mode).
 */

#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include <map>

#include "bench_util.hh"
#include "math/gates.hh"
#include "qra.hh"
#include "sim/kernels/alias_table.hh"
#include "sim/kernels/kernels.hh"
#include "sim/kernels/noise_plan.hh"
#include "sim/kernels/parallel.hh"
#include "sim/kernels/plan.hh"
#include "sim/kernels/simd/dispatch.hh"

using namespace qra;

namespace {

bool g_json_only = false;

using bench::secondsSince;

void
human(const char *fmt, ...)
{
    if (g_json_only)
        return;
    va_list args;
    va_start(args, fmt);
    std::vprintf(fmt, args);
    va_end(args);
}

Circuit
randomCircuit(std::size_t num_qubits, std::size_t num_gates,
              std::uint64_t seed)
{
    Circuit c(num_qubits, num_qubits, "random");
    Rng rng(seed);
    for (std::size_t i = 0; i < num_gates; ++i) {
        const Qubit q = static_cast<Qubit>(rng.below(num_qubits));
        switch (rng.below(4)) {
          case 0:
            c.h(q);
            break;
          case 1:
            c.t(q);
            break;
          case 2:
            c.ry(rng.uniform() * M_PI, q);
            break;
          default:
          {
            const Qubit r = static_cast<Qubit>(
                (q + 1 + rng.below(num_qubits - 1)) % num_qubits);
            c.cx(q, r);
          }
        }
    }
    return c;
}

/**
 * Time `reps` applications of one lowered operation and return
 * amplitudes/sec (2^n amps touched per application).
 */
double
gateThroughput(const Operation &op, std::size_t num_qubits,
               std::size_t reps)
{
    StateVector sv(num_qubits);
    const kernels::PlanEntry entry = kernels::lowerOperation(op);
    // Warm the cache once before timing.
    sv.applyKernel(entry);
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < reps; ++r)
        sv.applyKernel(entry);
    const double seconds = secondsSince(start);
    return static_cast<double>(reps) *
           static_cast<double>(std::size_t{1} << num_qubits) / seconds;
}

void
gateThroughputSection(std::size_t num_qubits, std::size_t lanes,
                      runtime::ThreadPool *pool)
{
    struct GateCase
    {
        const char *name;
        const char *kernel_class;
        Operation op;
    };
    const Qubit a = 0;
    const Qubit b = static_cast<Qubit>(num_qubits - 1);
    const Qubit mid = static_cast<Qubit>(num_qubits / 2);
    const std::vector<GateCase> cases = {
        {"h", "general_1q", {.kind = OpKind::H, .qubits = {a}}},
        {"rz", "diagonal_1q",
         {.kind = OpKind::RZ, .qubits = {a}, .params = {0.37}}},
        {"x", "permutation", {.kind = OpKind::X, .qubits = {a}}},
        {"y", "antidiagonal_1q", {.kind = OpKind::Y, .qubits = {a}}},
        {"cx", "controlled_x", {.kind = OpKind::CX, .qubits = {a, b}}},
        {"cz", "phase_mask", {.kind = OpKind::CZ, .qubits = {a, b}}},
        {"cy", "controlled_1q", {.kind = OpKind::CY, .qubits = {a, b}}},
        {"swap", "permutation_2q",
         {.kind = OpKind::Swap, .qubits = {a, b}}},
        {"ccx", "toffoli",
         {.kind = OpKind::CCX, .qubits = {a, mid, b}}},
    };

    const std::size_t reps = 40;
    human("  %-8s %-16s %16s   (%zu qubits, %zu lane%s)\n", "gate",
          "kernel class", "amps/sec", num_qubits, lanes,
          lanes == 1 ? "" : "s");
    for (const GateCase &gc : cases) {
        double amps_per_sec = 0.0;
        {
            kernels::ParallelScope scope(pool, lanes);
            amps_per_sec = gateThroughput(gc.op, num_qubits, reps);
        }
        human("  %-8s %-16s %16.3e\n", gc.name, gc.kernel_class,
              amps_per_sec);
        std::printf("{\"bench\":\"perf_simulator\","
                    "\"section\":\"gate_throughput\",\"gate\":\"%s\","
                    "\"kernel_class\":\"%s\",\"qubits\":%zu,"
                    "\"lanes\":%zu,\"amps_per_sec\":%.3e}\n",
                    gc.name, gc.kernel_class, num_qubits, lanes,
                    amps_per_sec);
    }

    // Generic k-qubit path: a dense 8x8 unitary (kron of 1q gates).
    {
        const Matrix u8 = gates::h().kron(gates::t()).kron(gates::sx());
        StateVector sv(num_qubits);
        const std::vector<Qubit> qs = {a, mid, b};
        kernels::ParallelScope scope(pool, lanes);
        sv.applyMatrix(u8, qs);
        const auto start = std::chrono::steady_clock::now();
        for (std::size_t r = 0; r < reps; ++r)
            sv.applyMatrix(u8, qs);
        const double seconds = secondsSince(start);
        const double amps_per_sec =
            static_cast<double>(reps) *
            static_cast<double>(std::size_t{1} << num_qubits) /
            seconds;
        human("  %-8s %-16s %16.3e\n", "u8", "generic_k",
              amps_per_sec);
        std::printf("{\"bench\":\"perf_simulator\","
                    "\"section\":\"gate_throughput\",\"gate\":\"u8\","
                    "\"kernel_class\":\"generic_k\",\"qubits\":%zu,"
                    "\"lanes\":%zu,\"amps_per_sec\":%.3e}\n",
                    num_qubits, lanes, amps_per_sec);
    }
}

/**
 * Roofline: each vectorizable kernel class timed at every available
 * SIMD dispatch tier (forced via TierScope) on the same state, against
 * a measured copy-bandwidth ceiling over the same footprint. A pair
 * kernel streams read+write 16 B per amplitude — the same traffic as
 * the copy — so ceiling_amps_per_sec is the memory-bound limit and
 * amps_per_sec / ceiling the roofline fraction.
 *
 * @return per-class avx2-vs-scalar speedups (empty map when the CPU
 *         or build has no AVX2 tier), for the verdict line.
 */
std::map<std::string, double>
rooflineSection(std::size_t num_qubits)
{
    using kernels::simd::Tier;
    using kernels::simd::TierScope;

    const std::uint64_t n = std::uint64_t{1} << num_qubits;
    const Qubit mid = static_cast<Qubit>(num_qubits / 2);
    const Qubit hi = static_cast<Qubit>(num_qubits - 1);
    const std::size_t reps = 40;

    // Unitary operators so repeated application keeps |amps| bounded.
    const Matrix h = gates::h(), t = gates::t(), y = gates::y();
    const Matrix u4 = h.kron(t);
    struct RooflineCase
    {
        const char *kernel_class;
        std::function<void(Complex *)> apply;
    };
    const std::vector<RooflineCase> cases = {
        {"general_1q",
         [&](Complex *amps) {
             kernels::applyGeneral1q(amps, n, mid, h(0, 0), h(0, 1),
                                     h(1, 0), h(1, 1));
         }},
        {"diagonal_1q",
         [&](Complex *amps) {
             kernels::applyDiagonal1q(amps, n, mid, t(0, 0), t(1, 1));
         }},
        {"antidiagonal_1q",
         [&](Complex *amps) {
             kernels::applyAntiDiagonal1q(amps, n, mid, y(0, 1),
                                          y(1, 0));
         }},
        {"phase_mask",
         [&](Complex *amps) {
             kernels::applyPhaseOnMask(amps, n, std::uint64_t{1} << mid,
                                       Complex{0.0, 1.0});
         }},
        {"controlled_1q",
         [&](Complex *amps) {
             kernels::applyControlled1q(amps, n, hi, mid, y(0, 0),
                                        y(0, 1), y(1, 0), y(1, 1));
         }},
        {"general_2q",
         [&](Complex *amps) {
             kernels::applyGeneral2q(amps, n, mid, hi, u4);
         }},
    };

    // Bandwidth ceiling: a straight copy of the same footprint (reads
    // and writes 16 B per amplitude, like the streaming kernels).
    std::vector<Complex> src(n, Complex{0.5, -0.5});
    std::vector<Complex> dst(n);
    std::memcpy(dst.data(), src.data(), n * sizeof(Complex));
    const auto copy_start = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < reps; ++r)
        std::memcpy(r % 2 ? dst.data() : src.data(),
                    r % 2 ? src.data() : dst.data(),
                    n * sizeof(Complex));
    const double copy_s = secondsSince(copy_start);
    const double ceiling =
        static_cast<double>(reps) * static_cast<double>(n) / copy_s;
    human("  copy-bandwidth ceiling: %16.3e amps/sec "
          "(%zu qubits, 1 lane)\n",
          ceiling, num_qubits);

    const char *detected =
        kernels::simd::tierName(kernels::simd::detectedTier());
    std::printf("{\"bench\":\"perf_simulator\","
                "\"section\":\"roofline_ceiling\",\"qubits\":%zu,"
                "\"detected\":\"%s\","
                "\"ceiling_amps_per_sec\":%.3e}\n",
                num_qubits, detected, ceiling);

    std::map<std::string, double> avx2_speedups;
    human("  %-16s %-8s %16s %12s %10s\n", "kernel class", "tier",
          "amps/sec", "simd_speedup", "roofline");
    for (const RooflineCase &rc : cases) {
        double scalar_aps = 0.0;
        for (Tier tier : kernels::simd::availableTiers()) {
            std::vector<Complex> amps(n, Complex{0.5, -0.5});
            TierScope scope(static_cast<int>(tier));
            rc.apply(amps.data()); // warm-up
            const auto start = std::chrono::steady_clock::now();
            for (std::size_t r = 0; r < reps; ++r)
                rc.apply(amps.data());
            const double seconds = secondsSince(start);
            const double aps = static_cast<double>(reps) *
                               static_cast<double>(n) / seconds;
            if (tier == Tier::Scalar)
                scalar_aps = aps;
            const double speedup = aps / scalar_aps;
            if (tier == Tier::Avx2)
                avx2_speedups[rc.kernel_class] = speedup;
            human("  %-16s %-8s %16.3e %11.2fx %9.0f%%\n",
                  rc.kernel_class, kernels::simd::tierName(tier), aps,
                  speedup, 100.0 * aps / ceiling);
            std::printf(
                "{\"bench\":\"perf_simulator\","
                "\"section\":\"roofline\",\"kernel_class\":\"%s\","
                "\"qubits\":%zu,\"lanes\":1,\"tier\":\"%s\","
                "\"detected\":\"%s\",\"amps_per_sec\":%.3e,"
                "\"simd_speedup\":%.3f,"
                "\"ceiling_amps_per_sec\":%.3e,"
                "\"roofline_fraction\":%.3f}\n",
                rc.kernel_class, num_qubits,
                kernels::simd::tierName(tier), detected, aps, speedup,
                ceiling, aps / ceiling);
        }
    }
    return avx2_speedups;
}

/**
 * Reduction roofline: the measurement-pipeline reductions timed at
 * every available SIMD tier against the copy-bandwidth ceiling. A
 * reduction streams 16 B per amplitude read-only (computeProbabilities
 * adds an 8 B probability write), so the copy ceiling is again the
 * memory-bound limit. Returns per-class avx2-vs-scalar speedups and
 * sets @p parity_ok to the cross-tier bit-identity verdict: the
 * sampled counts of a measureAll and a subset-marginal circuit must
 * be *identical* (not close) on every tier, serially and under the
 * engine's threaded shard path.
 */
std::map<std::string, double>
reductionRooflineSection(std::size_t num_qubits, bool *parity_ok)
{
    using kernels::simd::Tier;
    using kernels::simd::TierScope;

    const std::uint64_t n = std::uint64_t{1} << num_qubits;
    const Qubit mid = static_cast<Qubit>(num_qubits / 2);
    const std::size_t reps = 40;

    const std::vector<Complex> amps(n, Complex{0.5, -0.5});
    std::vector<double> probs(n);
    const std::vector<Qubit> marginal_qs = {0, 2, mid,
                                            static_cast<Qubit>(
                                                num_qubits - 1)};

    struct ReduceCase
    {
        const char *kernel_class;
        std::function<double()> run;
    };
    volatile double sink = 0.0; // keep the reductions observable
    const std::vector<ReduceCase> cases = {
        {"compute_probabilities",
         [&]() {
             return kernels::computeProbabilities(amps.data(), n,
                                                  probs.data());
         }},
        {"norm_sq_mask",
         [&]() {
             return kernels::normSquaredOnMask(
                 amps.data(), n, std::uint64_t{1} << mid,
                 std::uint64_t{1} << mid);
         }},
        {"sum_weights",
         [&]() { return kernels::sumWeights(probs.data(), n); }},
        {"marginal_scatter",
         [&]() {
             return kernels::marginalProbabilities(amps.data(), n,
                                                   marginal_qs)[0];
         }},
    };

    // Same ceiling methodology as the gate roofline: a straight copy
    // of the amplitude footprint.
    std::vector<Complex> src(n, Complex{0.5, -0.5});
    std::vector<Complex> dst(n);
    std::memcpy(dst.data(), src.data(), n * sizeof(Complex));
    const auto copy_start = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < reps; ++r)
        std::memcpy(r % 2 ? dst.data() : src.data(),
                    r % 2 ? src.data() : dst.data(),
                    n * sizeof(Complex));
    const double copy_s = secondsSince(copy_start);
    const double ceiling =
        static_cast<double>(reps) * static_cast<double>(n) / copy_s;

    const char *detected =
        kernels::simd::tierName(kernels::simd::detectedTier());
    std::map<std::string, double> avx2_speedups;
    human("  %-22s %-8s %16s %14s %10s\n", "reduction class", "tier",
          "amps/sec", "reduce_speedup", "roofline");
    for (const ReduceCase &rc : cases) {
        double scalar_aps = 0.0;
        double scalar_value = 0.0;
        for (Tier tier : kernels::simd::availableTiers()) {
            TierScope scope(static_cast<int>(tier));
            const double value = rc.run(); // warm-up
            const auto start = std::chrono::steady_clock::now();
            for (std::size_t r = 0; r < reps; ++r)
                sink = rc.run();
            const double seconds = secondsSince(start);
            const double aps = static_cast<double>(reps) *
                               static_cast<double>(n) / seconds;
            if (tier == Tier::Scalar) {
                scalar_aps = aps;
                scalar_value = value;
            } else if (std::memcmp(&value, &scalar_value,
                                   sizeof(double)) != 0) {
                *parity_ok = false;
                human("  FAIL: %s value differs bitwise on tier %s\n",
                      rc.kernel_class, kernels::simd::tierName(tier));
            }
            const double speedup = aps / scalar_aps;
            if (tier == Tier::Avx2)
                avx2_speedups[rc.kernel_class] = speedup;
            human("  %-22s %-8s %16.3e %13.2fx %9.0f%%\n",
                  rc.kernel_class, kernels::simd::tierName(tier), aps,
                  speedup, 100.0 * aps / ceiling);
            std::printf(
                "{\"bench\":\"perf_simulator\","
                "\"section\":\"reduction_roofline\","
                "\"kernel_class\":\"%s\",\"qubits\":%zu,\"lanes\":1,"
                "\"tier\":\"%s\",\"detected\":\"%s\","
                "\"amps_per_sec\":%.3e,\"reduce_speedup\":%.3f,"
                "\"ceiling_amps_per_sec\":%.3e,"
                "\"roofline_fraction\":%.3f}\n",
                rc.kernel_class, num_qubits,
                kernels::simd::tierName(tier), detected, aps, speedup,
                ceiling, aps / ceiling);
        }
    }
    (void)sink;

    // Cross-tier/threads sampled-counts bit-identity: the whole point
    // of the lane-deterministic reductions. Hard verdict.
    Circuit full = randomCircuit(num_qubits >= 8 ? 8 : num_qubits,
                                 60, 17);
    full.measureAll();
    Circuit subset(8, 3);
    subset.h(0).cx(0, 3).ry(0.8, 5).cx(3, 5).h(2);
    subset.measure(4, 0).measure(1, 1).measure(5, 2);
    bool identical = true;
    auto engineCounts = [](const Circuit &c, int tier,
                           std::size_t threads) {
        runtime::ExecutionEngine engine(runtime::EngineOptions{
            .threads = threads,
            .shardShots = 1024,
            .maxShards = 4,
            .simdTier = tier});
        runtime::Job job(c, 4096, "statevector", 23);
        return engine.run(job).rawCounts();
    };
    for (const Circuit &c : {full, subset}) {
        std::map<std::uint64_t, std::size_t> sim_oracle;
        {
            TierScope scope(static_cast<int>(Tier::Scalar));
            StatevectorSimulator sim(23);
            sim_oracle = sim.run(c, 4096).rawCounts();
        }
        // Same shard plan at 1 and 4 threads: the engine's counts
        // depend only on the job, never on lanes or tier.
        const auto engine_oracle =
            engineCounts(c, static_cast<int>(Tier::Scalar), 1);
        for (Tier tier : kernels::simd::availableTiers()) {
            {
                TierScope scope(static_cast<int>(tier));
                StatevectorSimulator sim(23);
                if (sim.run(c, 4096).rawCounts() != sim_oracle)
                    identical = false;
            }
            if (engineCounts(c, static_cast<int>(tier), 4) !=
                engine_oracle)
                identical = false;
        }
    }
    if (!identical) {
        *parity_ok = false;
        human("  FAIL: sampled counts differ across tiers/threads\n");
    }
    std::printf("{\"bench\":\"perf_simulator\","
                "\"section\":\"reduction_parity\",\"qubits\":%zu,"
                "\"detected\":\"%s\",\"bit_identical\":%s}\n",
                num_qubits, detected, identical ? "true" : "false");
    return avx2_speedups;
}

void
fusionSection(std::size_t num_qubits)
{
    // 1q-dense workload: long single-qubit runs between sparse CX.
    Circuit c(num_qubits, num_qubits, "fusion");
    Rng rng(29);
    for (std::size_t i = 0; i < 400; ++i) {
        const Qubit q = static_cast<Qubit>(rng.below(num_qubits));
        switch (rng.below(5)) {
          case 0:
            c.h(q);
            break;
          case 1:
            c.t(q);
            break;
          case 2:
            c.rz(rng.uniform() * M_PI, q);
            break;
          case 3:
            c.ry(rng.uniform() * M_PI, q);
            break;
          default:
            c.cx(q, static_cast<Qubit>((q + 1) % num_qubits));
        }
    }

    const kernels::ExecutablePlan fused =
        kernels::ExecutablePlan::compile(c, true);
    const kernels::ExecutablePlan unfused =
        kernels::ExecutablePlan::compile(c, false);

    auto evolve = [&](const kernels::ExecutablePlan &plan) {
        StateVector sv(num_qubits);
        const auto start = std::chrono::steady_clock::now();
        for (const kernels::PlanEntry &entry : plan.entries())
            sv.applyKernel(entry);
        return secondsSince(start);
    };
    evolve(fused); // warm-up
    const double fused_s = evolve(fused);
    const double unfused_s = evolve(unfused);

    human("  source ops: %zu, entries unfused: %zu, fused: %zu "
          "(%zu gates absorbed)\n",
          fused.stats().sourceOps, unfused.stats().entries,
          fused.stats().entries, fused.stats().fusedGates);
    human("  evolve unfused: %.4fs, fused: %.4fs (%.2fx)\n",
          unfused_s, fused_s, unfused_s / fused_s);
    std::printf("{\"bench\":\"perf_simulator\","
                "\"section\":\"fusion\",\"qubits\":%zu,"
                "\"source_ops\":%zu,\"entries_unfused\":%zu,"
                "\"entries_fused\":%zu,\"fused_gates\":%zu,"
                "\"unfused_seconds\":%.5f,\"fused_seconds\":%.5f,"
                "\"speedup\":%.3f}\n",
                num_qubits, fused.stats().sourceOps,
                unfused.stats().entries, fused.stats().entries,
                fused.stats().fusedGates, unfused_s, fused_s,
                unfused_s / fused_s);
}

void
fusionDepthSection(std::size_t num_qubits)
{
    // 2q-fusable workload: H-CX-H sandwiches and 1q runs around a
    // sparse CX backbone.
    Circuit c(num_qubits, num_qubits, "fusion_depth");
    Rng rng(41);
    for (std::size_t i = 0; i < 300; ++i) {
        const Qubit q = static_cast<Qubit>(rng.below(num_qubits));
        const Qubit r =
            static_cast<Qubit>((q + 1 + rng.below(num_qubits - 1)) %
                               num_qubits);
        switch (rng.below(4)) {
          case 0:
            c.h(q);
            break;
          case 1:
            c.t(q);
            break;
          case 2:
            c.h(r).cx(q, r).h(r); // fuses to one CZ phase mask
            break;
          default:
            c.cx(q, r);
        }
    }

    double level0_s = 0.0;
    for (const int level :
         {kernels::kFusionNone, kernels::kFusion1q,
          kernels::kFusion2q}) {
        const kernels::ExecutablePlan plan =
            kernels::ExecutablePlan::compile(c, level);
        auto evolve = [&]() {
            StateVector sv(num_qubits);
            const auto start = std::chrono::steady_clock::now();
            for (const kernels::PlanEntry &entry : plan.entries())
                sv.applyKernel(entry);
            return secondsSince(start);
        };
        evolve(); // warm-up
        const double seconds = evolve();
        if (level == kernels::kFusionNone)
            level0_s = seconds;
        human("  level %d: %4zu entries, evolve %.4fs (%.2fx), "
              "%zu 2q windows\n",
              level, plan.entries().size(), seconds,
              level0_s / seconds, plan.stats().fused2qWindows);
        std::printf("{\"bench\":\"perf_simulator\","
                    "\"section\":\"fusion_depth\",\"qubits\":%zu,"
                    "\"level\":%d,\"entries\":%zu,"
                    "\"fused_2q_windows\":%zu,\"seconds\":%.5f,"
                    "\"speedup_vs_level0\":%.3f}\n",
                    num_qubits, level, plan.entries().size(),
                    plan.stats().fused2qWindows, seconds,
                    level0_s / seconds);
    }
}

void
marginalSamplingSection(std::size_t num_qubits, std::size_t shots)
{
    // Same payload, measured two ways: the whole register (identity
    // marginal, elementwise probability kernel) vs a 4-qubit
    // ancilla-style subset (blocked parallel marginal scatter).
    const std::size_t subset_size =
        std::min<std::size_t>(4, num_qubits - 1);
    double full_sps = 0.0, subset_sps = 0.0;
    for (const bool subset : {false, true}) {
        Circuit c = randomCircuit(num_qubits, 100, 7);
        std::size_t num_measured = 0;
        if (subset) {
            // Evenly spaced distinct qubits for any --qubits value.
            for (std::size_t j = 0; j < subset_size; ++j)
                c.measure(
                    static_cast<Qubit>(j * num_qubits / subset_size),
                    static_cast<Clbit>(j));
            num_measured = subset_size;
        } else {
            c.measureAll();
            num_measured = num_qubits;
        }
        StatevectorSimulator sim(23);
        sim.run(c, 16); // warm-up
        StatevectorSimulator timed(23);
        const auto start = std::chrono::steady_clock::now();
        const Result r = timed.run(c, shots);
        const double seconds = secondsSince(start);
        const double sps = static_cast<double>(r.shots()) / seconds;
        (subset ? subset_sps : full_sps) = sps;
        human("  %-14s (%2zu qubits measured): %12.1f shots/sec\n",
              subset ? "subset" : "full register", num_measured, sps);
    }
    std::printf("{\"bench\":\"perf_simulator\","
                "\"section\":\"marginal_sampling\",\"qubits\":%zu,"
                "\"shots\":%zu,\"subset_qubits\":%zu,"
                "\"full_shots_per_sec\":%.1f,"
                "\"subset_shots_per_sec\":%.1f}\n",
                num_qubits, shots, subset_size, full_sps, subset_sps);
}

/** @return plan-vs-legacy speedup on the noisy trajectory workload. */
double
trajectorySection(std::size_t num_qubits, std::size_t shots)
{
    // The paper's hot path: an assertion-style noisy workload under
    // depolarizing gate errors and readout confusion.
    Circuit c = randomCircuit(num_qubits, 100, 11);
    c.measureAll();
    NoiseModel noise;
    noise.setGateError(OpKind::CX, 0.01);
    noise.setGateError(OpKind::H, 0.001);
    noise.setGateError(OpKind::RY, 0.001);
    for (Qubit q = 0; q < num_qubits; ++q)
        noise.setReadoutError(q, ReadoutError(0.015, 0.03));

    // The legacy interpreter is far slower (30x-class); time a thin
    // slice of the shot budget and compare shots/sec.
    const std::size_t legacy_shots =
        std::max<std::size_t>(10, shots / 200);
    TrajectorySimulator legacy(23);
    legacy.setNoiseModel(&noise);
    legacy.setUseLoweredPlan(false);
    const auto legacy_start = std::chrono::steady_clock::now();
    legacy.run(c, legacy_shots);
    const double legacy_s = secondsSince(legacy_start);
    const double legacy_sps =
        static_cast<double>(legacy_shots) / legacy_s;

    TrajectorySimulator lowered(23);
    lowered.setNoiseModel(&noise);
    const auto plan_start = std::chrono::steady_clock::now();
    lowered.run(c, shots);
    const double plan_s = secondsSince(plan_start);
    const double plan_sps = static_cast<double>(shots) / plan_s;

    const double speedup = plan_sps / legacy_sps;
    human("  legacy interpreter: %10.1f shots/sec (%zu shots)\n",
          legacy_sps, legacy_shots);
    human("  lowered plan:       %10.1f shots/sec (%zu shots)\n",
          plan_sps, shots);
    human("  plan vs legacy: %.2fx\n", speedup);
    std::printf("{\"bench\":\"perf_simulator\","
                "\"section\":\"trajectory\",\"qubits\":%zu,"
                "\"shots\":%zu,\"legacy_shots_per_sec\":%.1f,"
                "\"plan_shots_per_sec\":%.1f,\"speedup\":%.3f}\n",
                num_qubits, shots, legacy_sps, plan_sps, speedup);
    return speedup;
}

/** @return alias-table shots/sec; also reports the legacy scan. */
double
samplingSection(std::size_t num_qubits, std::size_t shots)
{
    Circuit c = randomCircuit(num_qubits, 100, 7);
    c.measureAll();

    // Sampled execution end-to-end (plan + alias table).
    StatevectorSimulator sim(23);
    const auto run_start = std::chrono::steady_clock::now();
    const Result r = sim.run(c, shots);
    const double run_s = secondsSince(run_start);
    const double shots_per_sec =
        static_cast<double>(r.shots()) / run_s;

    // Legacy per-shot path: one O(2^n) cumulative scan per shot over
    // the same final state.
    StatevectorSimulator prep(23);
    const StateVector state = prep.finalState(c);
    Rng rng(23);
    const auto scan_start = std::chrono::steady_clock::now();
    std::uint64_t sink = 0;
    for (std::size_t s = 0; s < shots; ++s)
        sink ^= state.sample(rng);
    const double scan_s = secondsSince(scan_start);
    const double scan_shots_per_sec =
        static_cast<double>(shots) / scan_s;

    human("  sampled run (alias): %12.1f shots/sec  (%zu qubits, %zu "
          "shots)\n",
          shots_per_sec, num_qubits, shots);
    human("  per-shot scan:       %12.1f shots/sec  (sink %llu)\n",
          scan_shots_per_sec,
          static_cast<unsigned long long>(sink & 1));
    human("  alias vs scan: %.2fx\n", shots_per_sec /
                                          scan_shots_per_sec);
    std::printf("{\"bench\":\"perf_simulator\","
                "\"section\":\"sampling_throughput\",\"qubits\":%zu,"
                "\"shots\":%zu,\"alias_shots_per_sec\":%.1f,"
                "\"scan_shots_per_sec\":%.1f,\"speedup\":%.3f}\n",
                num_qubits, shots, shots_per_sec, scan_shots_per_sec,
                shots_per_sec / scan_shots_per_sec);
    return shots_per_sec / scan_shots_per_sec;
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t num_qubits = 16;
    std::size_t shots = 2000;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            g_json_only = true;
        } else if (std::strcmp(argv[i], "--qubits") == 0 &&
                   i + 1 < argc) {
            num_qubits = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--shots") == 0 &&
                   i + 1 < argc) {
            shots = std::strtoull(argv[++i], nullptr, 10);
        } else {
            std::fprintf(stderr,
                         "usage: perf_simulator [--json] "
                         "[--qubits N] [--shots N]\n");
            return 2;
        }
    }
    // The gate cases need three distinct operands; StateVector caps
    // at 24 qubits.
    if (num_qubits < 3 || num_qubits > 24 || shots == 0) {
        std::fprintf(stderr, "perf_simulator: --qubits must be in "
                             "[3, 24] and --shots positive\n");
        return 2;
    }

    const std::size_t threads = runtime::ThreadPool::defaultThreads();
    runtime::ThreadPool pool(threads);

    if (!g_json_only)
        bench::banner("P1", "gate-kernel and sampling throughput");

    human("\n-- gate throughput --\n");
    gateThroughputSection(num_qubits, 1, &pool);
    if (threads > 1) {
        human("\n");
        gateThroughputSection(num_qubits, threads, &pool);
    }

    human("\n-- SIMD roofline (per tier vs copy bandwidth) --\n");
    const std::map<std::string, double> avx2_speedups =
        rooflineSection(num_qubits);

    human("\n-- reduction roofline (measurement pipeline) --\n");
    bool reduce_parity_ok = true;
    const std::map<std::string, double> reduce_speedups =
        reductionRooflineSection(num_qubits, &reduce_parity_ok);

    human("\n-- single-qubit fusion --\n");
    fusionSection(num_qubits);

    human("\n-- fusion depth sweep --\n");
    fusionDepthSection(num_qubits);

    human("\n-- sampling throughput --\n");
    const double speedup = samplingSection(num_qubits, shots);

    human("\n-- marginal sampling --\n");
    marginalSamplingSection(num_qubits, shots);

    human("\n-- noisy trajectory (plan vs legacy) --\n");
    const double trajectory_speedup =
        trajectorySection(num_qubits, shots);

    // The SIMD target (>= 1.5x on the dense-arithmetic classes) is
    // warn-only: CI runners vary in AVX throughput, so drift is
    // documented by check_perf_regression.py instead of gating here.
    if (!avx2_speedups.empty()) {
        const bool simd_ok =
            avx2_speedups.count("general_1q") &&
            avx2_speedups.at("general_1q") >= 1.5 &&
            avx2_speedups.count("general_2q") &&
            avx2_speedups.at("general_2q") >= 1.5;
        if (!simd_ok)
            human("  WARN: avx2 general_1q/general_2q below the 1.5x "
                  "SIMD target (warn-only)\n");
        std::printf("{\"bench\":\"perf_simulator\","
                    "\"section\":\"simd_verdict\",\"qubits\":%zu,"
                    "\"simd_ok\":%s}\n",
                    num_qubits, simd_ok ? "true" : "false");
    }

    // Reduction throughput target (>= 2x avx2 on the fused
    // probability pass): warn-only like the gate SIMD target, for the
    // same runner-variance reason. The bit-identity verdict above is
    // hard and folds into the exit code.
    if (!reduce_speedups.empty()) {
        const bool reduce_fast =
            reduce_speedups.count("compute_probabilities") &&
            reduce_speedups.at("compute_probabilities") >= 2.0;
        if (!reduce_fast)
            human("  WARN: avx2 compute_probabilities below the 2x "
                  "reduction target (warn-only)\n");
        std::printf("{\"bench\":\"perf_simulator\","
                    "\"section\":\"reduce_verdict\",\"qubits\":%zu,"
                    "\"reduce_fast\":%s,\"bit_identical\":%s}\n",
                    num_qubits, reduce_fast ? "true" : "false",
                    reduce_parity_ok ? "true" : "false");
    }

    const bool ok = speedup >= 2.0 && trajectory_speedup >= 2.0 &&
                    reduce_parity_ok;
    if (!g_json_only)
        bench::verdict(ok,
                       "alias-table sampling >= 2x the per-shot scan, "
                       "the lowered trajectory plan >= 2x the legacy "
                       "interpreter, and sampled counts bit-identical "
                       "across SIMD tiers and thread counts");
    return ok ? 0 : 1;
}
