/**
 * @file
 * Ablation A5: amplitude estimation from assertion statistics — the
 * paper's remark (Secs. 3.1, 3.3) that assertion-error frequencies
 * over repeated runs estimate the amplitudes of the qubit under
 * test, made quantitative with confidence intervals.
 */

#include <cmath>
#include <memory>

#include "bench_util.hh"
#include "qra.hh"

using namespace qra;

namespace {

std::size_t
countErrors(const InstrumentedCircuit &inst, const Result &r)
{
    std::size_t errors = 0;
    for (const auto &[reg, n] : r.rawCounts())
        if (!inst.passed(reg))
            errors += n;
    return errors;
}

} // namespace

int
main()
{
    bench::banner("Ablation A5",
                  "estimating amplitudes from assertion-error "
                  "statistics (50k shots)");
    const std::size_t shots = 50000;
    bool ok = true;

    // Classical-assertion estimator: P(error) = |b|^2.
    bench::note("classical assertion on RY(theta)|0>: estimate "
                "|b|^2");
    std::printf("  %-12s %12s %22s %8s\n", "theta", "true |b|^2",
                "estimate (95% CI)", "covered");
    for (double theta : {0.4, 1.0, M_PI / 2, 2.3}) {
        Circuit payload(1, 0);
        payload.ry(theta, 0);
        AssertionSpec spec;
        spec.assertion = std::make_shared<ClassicalAssertion>(0);
        spec.targets = {0};
        spec.insertAt = 1;
        const InstrumentedCircuit inst = instrument(payload, {spec});

        StatevectorSimulator sim(
            static_cast<std::uint64_t>(theta * 1000));
        const Result r = sim.run(inst.circuit(), shots);
        const auto est = estimateFromClassicalAssertion(
            countErrors(inst, r), r.shots());

        const double truth = std::pow(std::sin(theta / 2.0), 2);
        const bool covered =
            std::abs(est.probOne.value - truth) <=
            est.probOne.halfWidth95 * 1.2;
        std::printf("  %-12s %12s %22s %8s\n",
                    formatDouble(theta, 2).c_str(),
                    formatDouble(truth, 4).c_str(),
                    est.probOne.str().c_str(),
                    covered ? "yes" : "NO");
        ok = ok && covered;
    }

    // Superposition-assertion estimator: P(error) = (1-2ab)/2.
    bench::note("");
    bench::note("superposition assertion on RY(theta)|0>: estimate "
                "a*b and {|a|^2, |b|^2}");
    std::printf("  %-12s %12s %22s %8s\n", "theta", "true a*b",
                "estimate (95% CI)", "covered");
    for (double theta : {0.5, 1.1, M_PI / 2, 2.5}) {
        Circuit payload(1, 0);
        payload.ry(theta, 0);
        AssertionSpec spec;
        spec.assertion = std::make_shared<SuperpositionAssertion>();
        spec.targets = {0};
        spec.insertAt = 1;
        const InstrumentedCircuit inst = instrument(payload, {spec});

        StatevectorSimulator sim(
            static_cast<std::uint64_t>(theta * 7777));
        const Result r = sim.run(inst.circuit(), shots);
        const auto est = estimateFromSuperpositionAssertion(
            countErrors(inst, r), r.shots());

        const double truth =
            std::cos(theta / 2.0) * std::sin(theta / 2.0);
        const bool covered = std::abs(est.product.value - truth) <=
                             est.product.halfWidth95 * 1.2;
        std::printf("  %-12s %12s %22s %8s\n",
                    formatDouble(theta, 2).c_str(),
                    formatDouble(truth, 4).c_str(),
                    est.product.str().c_str(),
                    covered ? "yes" : "NO");
        ok = ok && covered;

        if (est.probMajor) {
            const double a2 = std::pow(std::cos(theta / 2.0), 2);
            bench::note("    roots {" +
                        formatDouble(*est.probMajor, 4) + ", " +
                        formatDouble(*est.probMinor, 4) +
                        "} vs true {" +
                        formatDouble(std::max(a2, 1 - a2), 4) + ", " +
                        formatDouble(std::min(a2, 1 - a2), 4) + "}");
        }
    }

    // Convergence: CI width shrinks like 1/sqrt(shots).
    bench::note("");
    bench::note("CI width vs shots (classical estimator, theta = "
                "pi/2):");
    double previous_width = 1.0;
    for (std::size_t n : {1000u, 10000u, 100000u}) {
        Circuit payload(1, 0);
        payload.ry(M_PI / 2, 0);
        AssertionSpec spec;
        spec.assertion = std::make_shared<ClassicalAssertion>(0);
        spec.targets = {0};
        spec.insertAt = 1;
        const InstrumentedCircuit inst = instrument(payload, {spec});
        StatevectorSimulator sim(n);
        const Result r = sim.run(inst.circuit(), n);
        const auto est = estimateFromClassicalAssertion(
            countErrors(inst, r), r.shots());
        bench::note("  shots = " + std::to_string(n) + ": width " +
                    formatDouble(est.probOne.halfWidth95, 5));
        ok = ok && est.probOne.halfWidth95 < previous_width;
        previous_width = est.probOne.halfWidth95;
    }

    bench::verdict(ok,
                   "assertion-error statistics recover the input "
                   "amplitudes with well-calibrated confidence "
                   "intervals, as the paper's remarks anticipate");
    return ok ? 0 : 1;
}
