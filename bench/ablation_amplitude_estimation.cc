/**
 * @file
 * Ablation A5: amplitude estimation from assertion statistics — the
 * paper's remark (Secs. 3.1, 3.3) that assertion-error frequencies
 * over repeated runs estimate the amplitudes of the qubit under
 * test, made quantitative with confidence intervals.
 *
 * Unlike a fixed-budget sweep, every estimate here runs through the
 * adaptive ExecutionEngine with a StoppingRule: shot waves stop as
 * soon as the error statistic's Wilson 95% half-width reaches the
 * target, so easy amplitudes (error rates far from 1/2) spend far
 * fewer shots than the worst case. The shots saved across the whole
 * ablation are read back from the obs metrics registry
 * (engine.adaptive.budget_shots / engine.adaptive.shots_saved) and
 * reported as a JSON line for the bench trajectory.
 */

#include <cmath>
#include <cstdio>
#include <memory>

#include "bench_util.hh"
#include "qra.hh"

using namespace qra;
using namespace qra::runtime;

namespace {

std::size_t
countErrors(const InstrumentedCircuit &inst, const Result &r)
{
    std::size_t errors = 0;
    for (const auto &[reg, n] : r.rawCounts())
        if (!inst.passed(reg))
            errors += n;
    return errors;
}

/** Budget as whole shards so early stops reuse run()'s shard plan. */
constexpr std::size_t kShardShots = 1024;
constexpr std::size_t kBudget = 48 * kShardShots; // 49152

/**
 * Run @p inst through the adaptive engine until the any-error rate's
 * 95% half-width is <= @p target_half_width (or the budget runs out).
 */
Result
runAdaptive(ExecutionEngine &engine, const InstrumentedCircuit &inst,
            double target_half_width, std::uint64_t seed)
{
    Job job(inst.circuit(), kBudget, "statevector", seed);
    job.instrumented = std::make_shared<InstrumentedCircuit>(inst);
    job.stopping.statistic = StoppingRule::Statistic::AnyError;
    job.stopping.targetHalfWidth = target_half_width;
    job.stopping.minShots = 2 * kShardShots;
    job.stopping.waveShots = 4 * kShardShots;
    return engine.runAdaptive(job);
}

InstrumentedCircuit
classicalWorkload(double theta)
{
    Circuit payload(1, 0);
    payload.ry(theta, 0);
    AssertionSpec spec;
    spec.assertion = std::make_shared<ClassicalAssertion>(0);
    spec.targets = {0};
    spec.insertAt = 1;
    return instrument(payload, {spec});
}

} // namespace

int
main()
{
    bench::banner("Ablation A5",
                  "estimating amplitudes from assertion-error "
                  "statistics, adaptive waves up to " +
                      std::to_string(kBudget) + " shots");
    // Shots-saved accounting flows through the metrics registry, the
    // same counters qra_run --metrics surfaces.
    obs::setMetricsEnabled(true);

    const double target_half_width = 0.005;
    bool ok = true;

    ExecutionEngine engine(
        EngineOptions{.shardShots = kShardShots, .maxShards = 64});

    // Classical-assertion estimator: P(error) = |b|^2.
    bench::note("classical assertion on RY(theta)|0>: estimate "
                "|b|^2, stop at half-width <= " +
                formatDouble(target_half_width, 3));
    std::printf("  %-8s %12s %22s %8s %14s\n", "theta", "true |b|^2",
                "estimate (95% CI)", "covered", "shots used");
    for (double theta : {0.4, 1.0, M_PI / 2, 2.3}) {
        const InstrumentedCircuit inst = classicalWorkload(theta);
        const Result r =
            runAdaptive(engine, inst, target_half_width,
                        static_cast<std::uint64_t>(theta * 1000));
        const auto est = estimateFromClassicalAssertion(
            countErrors(inst, r), r.shots());

        const double truth = std::pow(std::sin(theta / 2.0), 2);
        const bool covered =
            std::abs(est.probOne.value - truth) <=
            est.probOne.halfWidth95 * 1.2;
        std::printf("  %-8s %12s %22s %8s %8zu/%zu%s\n",
                    formatDouble(theta, 2).c_str(),
                    formatDouble(truth, 4).c_str(),
                    est.probOne.str().c_str(),
                    covered ? "yes" : "NO", r.shots(),
                    r.shotsRequested(),
                    r.stoppedEarly() ? " (early)" : "");
        ok = ok && covered;
    }

    // Superposition-assertion estimator: P(error) = (1-2ab)/2.
    bench::note("");
    bench::note("superposition assertion on RY(theta)|0>: estimate "
                "a*b and {|a|^2, |b|^2}");
    std::printf("  %-8s %12s %22s %8s %14s\n", "theta", "true a*b",
                "estimate (95% CI)", "covered", "shots used");
    for (double theta : {0.5, 1.1, M_PI / 2, 2.5}) {
        Circuit payload(1, 0);
        payload.ry(theta, 0);
        AssertionSpec spec;
        spec.assertion = std::make_shared<SuperpositionAssertion>();
        spec.targets = {0};
        spec.insertAt = 1;
        const InstrumentedCircuit inst = instrument(payload, {spec});

        const Result r =
            runAdaptive(engine, inst, target_half_width,
                        static_cast<std::uint64_t>(theta * 7777));
        const auto est = estimateFromSuperpositionAssertion(
            countErrors(inst, r), r.shots());

        const double truth =
            std::cos(theta / 2.0) * std::sin(theta / 2.0);
        const bool covered = std::abs(est.product.value - truth) <=
                             est.product.halfWidth95 * 1.2;
        std::printf("  %-8s %12s %22s %8s %8zu/%zu%s\n",
                    formatDouble(theta, 2).c_str(),
                    formatDouble(truth, 4).c_str(),
                    est.product.str().c_str(),
                    covered ? "yes" : "NO", r.shots(),
                    r.shotsRequested(),
                    r.stoppedEarly() ? " (early)" : "");
        ok = ok && covered;

        if (est.probMajor) {
            const double a2 = std::pow(std::cos(theta / 2.0), 2);
            bench::note("    roots {" +
                        formatDouble(*est.probMajor, 4) + ", " +
                        formatDouble(*est.probMinor, 4) +
                        "} vs true {" +
                        formatDouble(std::max(a2, 1 - a2), 4) + ", " +
                        formatDouble(std::min(a2, 1 - a2), 4) + "}");
        }
    }

    // Tighter targets need more shots: the adaptive analogue of the
    // old fixed-shot CI-width sweep (width ~ 1/sqrt(shots), so shots
    // consumed ~ 1/target^2).
    bench::note("");
    bench::note("shots consumed vs half-width target (classical "
                "estimator, theta = pi/2):");
    const InstrumentedCircuit sweep_inst = classicalWorkload(M_PI / 2);
    std::size_t previous_shots = 0;
    for (double target : {0.02, 0.01, 0.005}) {
        const Result r = runAdaptive(engine, sweep_inst, target, 4242);
        bench::note("  target " + formatDouble(target, 3) + ": " +
                    std::to_string(r.shots()) + "/" +
                    std::to_string(r.shotsRequested()) + " shots" +
                    (r.stoppedEarly() ? " (early)" : ""));
        ok = ok && r.shots() >= previous_shots;
        previous_shots = r.shots();
    }

    // Shots-saved accounting, read back through the obs registry.
    const auto snap = obs::MetricsRegistry::global().snapshot();
    auto counter = [&](const char *name) -> std::uint64_t {
        const auto it = snap.counters.find(name);
        return it == snap.counters.end() ? 0 : it->second;
    };
    const std::uint64_t budget_shots =
        counter("engine.adaptive.budget_shots");
    const std::uint64_t shots_saved =
        counter("engine.adaptive.shots_saved");
    const double saved_frac =
        budget_shots == 0 ? 0.0
                          : static_cast<double>(shots_saved) /
                                static_cast<double>(budget_shots);
    bench::note("");
    bench::note("adaptive totals (metrics registry): budget " +
                std::to_string(budget_shots) + " shots, saved " +
                std::to_string(shots_saved) + " (" +
                formatDouble(saved_frac * 100.0, 1) + "%)");
    std::printf("{\"bench\":\"ablation_amplitude_estimation\","
                "\"section\":\"adaptive_summary\","
                "\"budget_shots\":%llu,\"shots_saved\":%llu,"
                "\"saved_frac\":%.4f,\"waves\":%llu}\n",
                static_cast<unsigned long long>(budget_shots),
                static_cast<unsigned long long>(shots_saved),
                saved_frac,
                static_cast<unsigned long long>(
                    counter("engine.waves")));
    ok = ok && shots_saved > 0;

    bench::verdict(ok,
                   "assertion-error statistics recover the input "
                   "amplitudes with well-calibrated confidence "
                   "intervals, and the stopping rule banks unused "
                   "budget on every easy amplitude");
    return ok ? 0 : 1;
}
