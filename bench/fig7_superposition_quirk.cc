/**
 * @file
 * Fig. 7 reproduction: the paper's QUIRK experiment for the
 * superposition assertion. A classical input is checked against |+>;
 * the run shows a 50% assertion-error rate and the qubit under test
 * emerging in an equal superposition after the ancilla measurement.
 */

#include <cmath>
#include <memory>

#include "bench_util.hh"
#include "qra.hh"

using namespace qra;

int
main()
{
    bench::banner("Figure 7",
                  "QUIRK-style verification of the superposition "
                  "assertion (classical input)");
    bool ok = true;

    // Payload: classical |0> input (the figure's buggy state).
    Circuit payload(1, 0, "fig7");

    AssertionSpec spec;
    spec.assertion = std::make_shared<SuperpositionAssertion>();
    spec.targets = {0};
    spec.insertAt = 0;
    const InstrumentedCircuit inst = instrument(payload, {spec});
    std::printf("%s\n", inst.circuit().draw().c_str());

    StatevectorSimulator sim(11);
    bench::rowHeader();

    // 50% assertion-error rate.
    const Result r = sim.run(inst.circuit(), 16384);
    double error_rate = 0.0;
    for (const auto &[reg, n] : r.rawCounts())
        if (!inst.passed(reg))
            error_rate += double(n) / double(r.shots());
    bench::row("assertion error rate", "50%",
               formatPercent(error_rate));
    ok = ok && std::abs(error_rate - 0.5) < 0.02;

    // The qubit under test is in an equal superposition afterwards,
    // on both measurement branches (exact statement).
    for (int outcome : {0, 1}) {
        Circuit conditioned = inst.circuit();
        conditioned.postSelect(inst.checks()[0].ancillas[0],
                               outcome);
        const StateVector sv = sim.finalState(conditioned);
        bench::row("P(q=1) | ancilla=" + std::to_string(outcome),
                   "0.5", formatDouble(sv.probabilityOfOne(0), 6),
                   "(forced into superposition)");
        ok = ok && std::abs(sv.probabilityOfOne(0) - 0.5) < 1e-9;

        // And it is a *pure* equal superposition (|k| = 1/sqrt2).
        ok = ok && std::abs(sv.qubitPurity(0) - 1.0) < 1e-9;
    }

    // Sanity contrast: a correct |+> input raises no errors.
    Circuit good(1, 0);
    good.h(0);
    AssertionSpec good_spec = spec;
    good_spec.insertAt = 1;
    const InstrumentedCircuit good_inst =
        instrument(good, {good_spec});
    const Result rg = sim.run(good_inst.circuit(), 8192);
    double good_errors = 0.0;
    for (const auto &[reg, n] : rg.rawCounts())
        if (!good_inst.passed(reg))
            good_errors += double(n);
    bench::row("error rate on correct |+>", "0%",
               formatPercent(good_errors / double(rg.shots())));
    ok = ok && good_errors == 0.0;

    bench::verdict(ok, "superposition assertion on a classical "
                       "input: 50% error rate and forcing into |+/->"
                       " superposition, as in the QUIRK run");
    return ok ? 0 : 1;
}
