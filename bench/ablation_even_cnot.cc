/**
 * @file
 * Ablation A1: the even-CNOT-count rule of Sec. 3.2. An odd number
 * of parity CNOTs leaves the ancilla entangled with the qubits under
 * test, so measuring it collapses the GHZ superposition and corrupts
 * downstream computation. This bench quantifies the damage.
 */

#include "bench_util.hh"
#include "qra.hh"

using namespace qra;

namespace {

/**
 * GHZ(3) + a parity check with the given CNOT sources into one
 * ancilla + ancilla measurement; returns the fidelity of the payload
 * marginal with the ideal GHZ distribution, and the residual GHZ
 * coherence (P(000)+P(111) stays 1 either way; the collapse shows in
 * per-shot determinism, measured here via the post-measurement
 * payload purity averaged over outcomes).
 */
struct Damage
{
    double offDiagonal; ///< |<000|rho|111>| after the check
    double subspaceWeight;
};

Damage
runWithCnots(const std::vector<Qubit> &sources)
{
    Circuit c(4, 1, "ghz_check");
    c.h(0).cx(0, 1).cx(1, 2);
    for (Qubit s : sources)
        c.cx(s, 3);
    c.measure(3, 0);

    DensityMatrixSimulator sim(99);
    const DensityMatrix rho = sim.finalState(c);

    Damage d;
    d.offDiagonal = std::abs(rho.matrix()(0b000, 0b111));
    const auto probs = rho.probabilities();
    d.subspaceWeight = probs[0b000] + probs[0b111];
    return d;
}

} // namespace

int
main()
{
    bench::banner("Ablation A1",
                  "even vs odd CNOT count in the multi-qubit "
                  "entanglement assertion (GHZ-3 payload)");
    bench::note("GHZ coherence = |<000|rho|111>| after the ancilla "
                "is measured; 0.5 = intact, 0 = collapsed.");
    bench::rowHeader();
    bool ok = true;

    // Paper circuit (Fig. 4): 4 CNOTs, sources 0, 1, 2, 2.
    {
        const Damage d = runWithCnots({0, 1, 2, 2});
        bench::row("4 CNOTs (paper, even)", "0.5",
                   formatDouble(d.offDiagonal, 6),
                   "ancilla disentangles");
        ok = ok && std::abs(d.offDiagonal - 0.5) < 1e-9;
    }

    // Naive circuit: one CNOT per qubit (3, odd) — the mistake the
    // paper warns against.
    {
        const Damage d = runWithCnots({0, 1, 2});
        bench::row("3 CNOTs (naive, odd)", "0.0",
                   formatDouble(d.offDiagonal, 6),
                   "ancilla stays entangled -> collapse");
        ok = ok && d.offDiagonal < 1e-9;
    }

    // Other even counts also work.
    {
        const Damage d2 = runWithCnots({0, 1});
        bench::row("2 CNOTs (pair subset)", "0.5",
                   formatDouble(d2.offDiagonal, 6));
        const Damage d6 = runWithCnots({0, 1, 2, 2, 0, 0});
        bench::row("6 CNOTs (even)", "0.5",
                   formatDouble(d6.offDiagonal, 6));
        ok = ok && std::abs(d2.offDiagonal - 0.5) < 1e-9 &&
             std::abs(d6.offDiagonal - 0.5) < 1e-9;
    }

    // Downstream consequence: interfere the GHZ back (inverse prep);
    // with the even check the state returns to |000>, with the odd
    // check it does not.
    bench::note("");
    bench::note("downstream interference test (uncompute GHZ, expect "
                "|000>):");
    for (bool even : {true, false}) {
        Circuit c(4, 1);
        c.h(0).cx(0, 1).cx(1, 2);
        c.cx(0, 3).cx(1, 3).cx(2, 3);
        if (even)
            c.cx(2, 3);
        c.measure(3, 0);
        c.cx(1, 2).cx(0, 1).h(0); // inverse preparation

        DensityMatrixSimulator sim(7);
        const auto probs = sim.finalState(c).probabilities();
        double p000 = 0.0;
        for (std::size_t i = 0; i < probs.size(); ++i)
            if ((i & 0b111) == 0)
                p000 += probs[i];
        bench::row(even ? "even check then uncompute"
                        : "odd check then uncompute",
                   even ? "1.0" : "0.5", formatDouble(p000, 6),
                   "(P of recovering |000>)");
        ok = ok && (even ? std::abs(p000 - 1.0) < 1e-9
                         : std::abs(p000 - 0.5) < 1e-9);
    }

    bench::verdict(ok,
                   "odd CNOT counts corrupt the program exactly as "
                   "Sec. 3.2 warns; even counts are transparent");
    return ok ? 0 : 1;
}
