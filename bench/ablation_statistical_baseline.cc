/**
 * @file
 * Ablation A3: dynamic assertions vs the statistical (stop-and-
 * measure) baseline the paper motivates against. Three axes:
 *   1. capability — a statistical assertion consumes the run, so it
 *      cannot coexist with the final result measurement; the dynamic
 *      assertion checks and delivers results in the same run;
 *   2. execution cost — k breakpoints cost k extra full batches for
 *      the baseline, zero for dynamic assertions;
 *   3. detection — both approaches catch the same planted bug.
 */

#include <memory>

#include "bench_util.hh"
#include "qra.hh"

using namespace qra;

namespace {

/** GHZ payload with an optional planted bug (missing CX). */
Circuit
ghzPayload(bool buggy)
{
    Circuit c(3, 3, buggy ? "ghz_buggy" : "ghz");
    c.h(0);
    c.cx(0, 1);
    if (!buggy)
        c.cx(1, 2);
    c.measureAll();
    return c;
}

} // namespace

int
main()
{
    bench::banner("Ablation A3",
                  "dynamic assertions vs statistical (ISCA'19) "
                  "baseline");
    bool ok = true;
    const std::size_t shots = 4096;

    // --- Axis 1 + 3: detection of a planted bug -------------------
    // The bug (missing CX 1->2) leaves Bell(0,1) (x) |0>_2. Note the
    // instructive subtlety: the paper's single-ancilla check reduces
    // to ONE pair parity (here q0 xor q1, which the buggy state
    // still satisfies), so it misses this bug; the chain-mode
    // extension checks every adjacent pair and catches it.
    for (bool buggy : {false, true}) {
        bench::note(std::string("payload: GHZ-3 ") +
                    (buggy ? "with planted bug (missing CX 1->2)"
                           : "correct"));
        const Circuit payload = ghzPayload(buggy);
        StatevectorSimulator sim(42);

        auto run_dynamic = [&](EntanglementAssertion::Mode mode) {
            AssertionSpec spec;
            spec.assertion = std::make_shared<EntanglementAssertion>(
                3, EntanglementAssertion::Parity::Even, mode);
            spec.targets = {0, 1, 2};
            spec.insertAt = 3;
            const InstrumentedCircuit inst =
                instrument(payload, {spec});
            return analyze(inst, sim.run(inst.circuit(), shots));
        };

        const AssertionReport pair_report =
            run_dynamic(EntanglementAssertion::Mode::PairParity);
        const AssertionReport chain_report =
            run_dynamic(EntanglementAssertion::Mode::Chain);
        const bool pair_flagged = pair_report.anyErrorRate > 0.1;
        const bool chain_flagged = chain_report.anyErrorRate > 0.1;

        // Statistical baseline: breakpoint run (no payload output).
        StatisticalAssertion baseline(AssertionKind::Entanglement,
                                      {0, 1, 2});
        const Circuit bp = baseline.breakpointCircuit(payload, 3);
        const Result rb = sim.run(bp, shots);
        stats::Counts counts;
        for (const auto &[k, n] : rb.rawCounts())
            counts[k] = n;
        const auto outcome = baseline.check(counts);

        bench::rowHeader();
        bench::row("dynamic pair-parity: flagged?",
                   buggy ? "blind spot" : "no",
                   pair_flagged ? "yes" : "no",
                   "error rate " +
                       formatPercent(pair_report.anyErrorRate));
        bench::row("dynamic chain: flagged?", buggy ? "yes" : "no",
                   chain_flagged ? "yes" : "no",
                   "error rate " +
                       formatPercent(chain_report.anyErrorRate));
        bench::row("statistical: flagged?", buggy ? "yes" : "no",
                   outcome.rejected ? "yes" : "no",
                   outcome.str());
        // Expected shape: pair-parity misses this particular bug
        // (it only sees the q0 xor q1 parity), chain and the
        // baseline both flag it.
        ok = ok && !pair_flagged && chain_flagged == buggy &&
             outcome.rejected == buggy;

        // Payload delivery: dynamic runs still have usable results.
        const bool has_payload = !chain_report.rawPayload.empty();
        bench::row("dynamic run delivers payload", "yes",
                   has_payload ? "yes" : "no");
        bench::row("statistical run delivers payload", "no",
                   "no", "(breakpoint measurement consumed it)");
        ok = ok && has_payload;
        bench::note("");
    }

    // --- Axis 2: execution cost for k assertion points -------------
    bench::note("execution batches needed (payload + k checks):");
    for (std::size_t k : {1u, 2u, 4u, 8u}) {
        // Statistical: one batch per breakpoint + 1 for the result.
        // Dynamic: one batch, k ancillas.
        bench::note("  k = " + std::to_string(k) +
                    ": statistical = " + std::to_string(k + 1) +
                    " batches, dynamic = 1 batch (+" +
                    std::to_string(k) + " ancillas)");
    }

    // --- The paper's central claim, demonstrated concretely --------
    // With the dynamic assertion the *same shots* that carry the
    // final answer can be filtered; the baseline cannot filter at
    // all. Show it on the noisy device model.
    bench::note("");
    bench::note("error filtering on ibmqx4 model (only dynamic can):");
    {
        const DeviceModel device = DeviceModel::ibmqx4();
        AssertionSpec spec;
        spec.assertion = std::make_shared<EntanglementAssertion>(2);
        spec.targets = {0, 1};
        spec.insertAt = 2;
        Circuit payload(2, 2);
        payload.h(0).cx(0, 1);
        payload.measure(0, 0).measure(1, 1);
        const InstrumentedCircuit inst =
            instrument(payload, {spec});
        const TranspileResult mapped =
            transpile(inst.circuit(), device.couplingMap());
        DensityMatrixSimulator noisy(7);
        noisy.setNoiseModel(&device.noiseModel());
        const stats::ErrorRateReport err = errorRates(
            inst, noisy.run(mapped.circuit, shots),
            [](std::uint64_t p) { return p == 0b01 || p == 0b10; });
        bench::row("raw -> filtered error", "-",
                   formatPercent(err.rawErrorRate) + " -> " +
                       formatPercent(err.filteredErrorRate));
        ok = ok && err.filteredErrorRate < err.rawErrorRate;
    }

    bench::verdict(ok,
                   "both approaches detect the planted bug, but only "
                   "the dynamic assertion checks within the result-"
                   "producing run and filters NISQ errors");
    return ok ? 0 : 1;
}
