/**
 * @file
 * Ablation A6: assertion checking at scale on the stabilizer
 * backend. Every assertion circuit in the paper is Clifford, so the
 * runtime-assertion methodology extends to register sizes far beyond
 * state-vector simulation — the scalability direction the paper's
 * conclusion points at. Also demonstrates bug *localisation*: a
 * chain-mode assertion pinpoints which link of a 100-qubit GHZ
 * preparation was dropped.
 */

#include <chrono>

#include "bench_util.hh"
#include "qra.hh"

using namespace qra;

namespace {

/** GHZ prep with an optional missing entangling link. */
Circuit
ghzChain(std::size_t n, int broken_link)
{
    Circuit c(n, 0, "ghz");
    c.h(0);
    for (Qubit q = 0; q + 1 < n; ++q) {
        if (static_cast<int>(q) == broken_link)
            continue; // planted bug: this CX is missing
        c.cx(q, q + 1);
    }
    return c;
}

double
wallMs(const std::function<void()> &fn)
{
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(stop - start)
        .count();
}

} // namespace

int
main()
{
    bench::banner("Ablation A6",
                  "assertion checking at scale (stabilizer backend)");
    bool ok = true;

    // Scaling sweep: pair-parity assertion on GHZ-n, 128 shots.
    bench::note("GHZ-n + pair-parity assertion, 128 shots:");
    std::printf("  %-10s %14s %14s\n", "n", "time (ms)",
                "assertion errors");
    for (std::size_t n : {16u, 64u, 128u, 256u}) {
        Circuit payload = ghzChain(n, -1);
        const Qubit anc = payload.addQubits(1);
        payload.addClbits(1);
        payload.cx(0, anc).cx(1, anc);
        payload.measure(anc, 0);

        StabilizerSimulator sim(5);
        std::size_t errors = 0;
        const double ms = wallMs([&] {
            const Result r = sim.run(payload, 128);
            errors = r.count(std::uint64_t{1});
        });
        std::printf("  %-10zu %14s %14zu\n", n,
                    formatDouble(ms, 1).c_str(), errors);
        ok = ok && errors == 0;
    }
    bench::note("(a 256-qubit state vector would need 2^256 "
                "amplitudes; the tableau needs ~0.5 MB)");

    // Bug localisation at n = 60: break one link, instrument with
    // the chain assertion, and read off the failing check index.
    // (n is bounded by the 63-bit classical register here — one
    // clbit per adjacent pair; examples/scale_debugging.cpp shows
    // the binary-search variant that scales past that limit.)
    bench::note("");
    bench::note("bug localisation on GHZ-60 (chain assertion, one "
                "ancilla per adjacent pair):");
    const std::size_t n = 60;
    const int broken = 41; // missing cx(41, 42)

    Circuit payload = ghzChain(n, broken);
    const Qubit first_anc = payload.addQubits(n - 1);
    payload.addClbits(n - 1);
    for (std::size_t j = 0; j + 1 < n; ++j) {
        const Qubit anc = first_anc + static_cast<Qubit>(j);
        payload.cx(static_cast<Qubit>(j), anc);
        payload.cx(static_cast<Qubit>(j + 1), anc);
        payload.measure(anc, static_cast<Clbit>(j));
    }

    StabilizerSimulator sim(7);
    const Result r = sim.run(payload, 256);

    // Count errors per check.
    std::vector<std::size_t> errors(n - 1, 0);
    for (const auto &[reg, count] : r.rawCounts())
        for (std::size_t j = 0; j + 1 < n; ++j)
            if ((reg >> j) & 1)
                errors[j] += count;

    int flagged = -1;
    std::size_t flagged_count = 0;
    std::size_t other_errors = 0;
    for (std::size_t j = 0; j + 1 < n; ++j) {
        if (errors[j] > flagged_count) {
            // Track the dominant failing check.
            if (flagged >= 0)
                other_errors += flagged_count;
            flagged = static_cast<int>(j);
            flagged_count = errors[j];
        } else {
            other_errors += errors[j];
        }
    }

    bench::rowHeader();
    bench::row("failing check index", std::to_string(broken),
               std::to_string(flagged),
               "(pair (q41, q42) decoupled)");
    bench::row("its error rate", "~50%",
               formatPercent(double(flagged_count) /
                             double(r.shots())));
    bench::row("all other checks", "0 errors",
               std::to_string(other_errors) + " errors");
    ok = ok && flagged == broken && other_errors == 0 &&
         flagged_count > r.shots() / 3;

    bench::verdict(ok,
                   "assertion checking is Clifford, so it scales to "
                   "hundreds of qubits and localises the broken GHZ "
                   "link exactly");
    return ok ? 0 : 1;
}
