/**
 * @file
 * P2: engine-parallel vs direct single-threaded execution throughput.
 *
 * Two sections:
 *  - per-shot: the same trajectory workload (mid-circuit measurement
 *    + reset, so every shot is a full state evolution) directly on
 *    StatevectorSimulator::run and through the ExecutionEngine with
 *    one shard per pool thread, at 4-16 qubits;
 *  - sampled: a terminal-measurement workload where the engine cost
 *    is one evolution + alias-table draws per shard, engine vs
 *    direct.
 *
 * A third section measures the JobQueue's cross-job sampling cache:
 * the same sampled job resubmitted through the queue reuses the
 * lowered plan and alias table, so warm jobs skip the evolution
 * entirely.
 *
 * Emits one JSON line per measurement for the bench trajectory, then
 * a human-readable table and a verdict: on hosts with >= 4 cores the
 * engine must deliver >= 2x shots/sec at 16 qubits on the per-shot
 * workload.
 *
 * Usage: perf_engine [SHOTS] [--json]   (default 96 per-shot shots;
 * --json emits only the JSON lines)
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench_util.hh"
#include "qra.hh"

using namespace qra;
using namespace qra::runtime;

namespace {

/**
 * A dense per-shot workload: random layers with one mid-circuit
 * measurement and reset of qubit 0, which disables the sample-at-end
 * fast path and makes every shot an independent trajectory — the
 * execution pattern assertion circuits with ancilla reuse produce.
 */
Circuit
trajectoryWorkload(std::size_t num_qubits, std::size_t num_gates,
                   std::uint64_t seed)
{
    Circuit c(num_qubits, num_qubits, "perf_engine");
    Rng rng(seed);
    auto random_layer = [&](std::size_t gates) {
        for (std::size_t i = 0; i < gates; ++i) {
            const Qubit q = static_cast<Qubit>(rng.below(num_qubits));
            switch (rng.below(4)) {
              case 0:
                c.h(q);
                break;
              case 1:
                c.t(q);
                break;
              case 2:
                c.ry(rng.uniform() * M_PI, q);
                break;
              default:
              {
                const Qubit r = static_cast<Qubit>(
                    (q + 1 + rng.below(num_qubits - 1)) % num_qubits);
                c.cx(q, r);
              }
            }
        }
    };
    random_layer(num_gates / 2);
    c.measure(0, 0);
    c.reset(0);
    random_layer(num_gates - num_gates / 2);
    c.measureAll();
    return c;
}

using bench::secondsSince;

} // namespace

int
main(int argc, char **argv)
{
    std::size_t shots = 96;
    bool json_only = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            json_only = true;
            continue;
        }
        char *end = nullptr;
        shots = std::strtoull(argv[i], &end, 10);
        if (end == argv[i] || *end != '\0' || shots == 0) {
            std::fprintf(stderr,
                         "usage: perf_engine [SHOTS] [--json]\n");
            return 2;
        }
    }
    const std::size_t threads = ThreadPool::defaultThreads();

    if (!json_only) {
        bench::banner("P2",
                      "engine-parallel vs direct single-threaded "
                      "state-vector execution");
        bench::note("host threads: " + std::to_string(threads) +
                    ", shots/size: " + std::to_string(shots));
        std::printf("  %-8s %14s %14s %10s\n", "qubits",
                    "direct sh/s", "engine sh/s", "speedup");
    }

    // One shard per pool thread keeps every worker busy exactly once.
    ExecutionEngine engine(EngineOptions{
        .threads = threads,
        .shardShots =
            std::max<std::size_t>(1, shots / std::max<std::size_t>(
                                              1, threads)),
        .maxShards = threads});

    double speedup_at_16 = 0.0;
    for (const std::size_t num_qubits : {4u, 8u, 12u, 16u}) {
        const Circuit circuit =
            trajectoryWorkload(num_qubits, 64, 17);

        const auto direct_start = std::chrono::steady_clock::now();
        StatevectorSimulator direct(23);
        const Result direct_result = direct.run(circuit, shots);
        const double direct_seconds = secondsSince(direct_start);

        const auto engine_start = std::chrono::steady_clock::now();
        const Result engine_result =
            engine.run(circuit, shots, "statevector", 23);
        const double engine_seconds = secondsSince(engine_start);

        const double direct_sps =
            static_cast<double>(direct_result.shots()) /
            direct_seconds;
        const double engine_sps =
            static_cast<double>(engine_result.shots()) /
            engine_seconds;
        const double speedup = engine_sps / direct_sps;
        if (num_qubits == 16)
            speedup_at_16 = speedup;

        if (!json_only)
            std::printf("  %-8zu %14.1f %14.1f %9.2fx\n", num_qubits,
                        direct_sps, engine_sps, speedup);
        // Machine-readable trajectory line.
        std::printf("{\"bench\":\"perf_engine\","
                    "\"section\":\"per_shot\",\"qubits\":%zu,"
                    "\"shots\":%zu,\"threads\":%zu,"
                    "\"direct_shots_per_sec\":%.1f,"
                    "\"engine_shots_per_sec\":%.1f,"
                    "\"speedup\":%.3f}\n",
                    num_qubits, shots, threads, direct_sps,
                    engine_sps, speedup);
    }

    // Sampled workload: terminal measurements only, so each shard is
    // one evolution plus O(1) alias-table draws per shot.
    {
        const std::size_t sampled_shots = shots * 40;
        // Same layer mix as the trajectory workload but without the
        // mid-circuit measure/reset, so sampled execution is legal.
        Circuit sampled(16, 16, "perf_engine_sampled");
        {
            Rng rng(19);
            for (std::size_t i = 0; i < 64; ++i) {
                const Qubit q = static_cast<Qubit>(rng.below(16));
                switch (rng.below(4)) {
                  case 0:
                    sampled.h(q);
                    break;
                  case 1:
                    sampled.t(q);
                    break;
                  case 2:
                    sampled.ry(rng.uniform() * M_PI, q);
                    break;
                  default:
                  {
                    const Qubit r = static_cast<Qubit>(
                        (q + 1 + rng.below(15)) % 16);
                    sampled.cx(q, r);
                  }
                }
            }
            sampled.measureAll();
        }

        const auto direct_start = std::chrono::steady_clock::now();
        StatevectorSimulator direct(23);
        const Result direct_result =
            direct.run(sampled, sampled_shots);
        const double direct_s = secondsSince(direct_start);

        const auto engine_start = std::chrono::steady_clock::now();
        const Result engine_result =
            engine.run(sampled, sampled_shots, "statevector", 23);
        const double engine_s = secondsSince(engine_start);

        const double direct_sps =
            static_cast<double>(direct_result.shots()) / direct_s;
        const double engine_sps =
            static_cast<double>(engine_result.shots()) / engine_s;
        if (!json_only)
            std::printf("  sampled (16 qubits, %zu shots): direct "
                        "%.1f sh/s, engine %.1f sh/s (%.2fx)\n",
                        sampled_shots, direct_sps, engine_sps,
                        engine_sps / direct_sps);
        std::printf("{\"bench\":\"perf_engine\","
                    "\"section\":\"sampled\",\"qubits\":16,"
                    "\"shots\":%zu,\"threads\":%zu,"
                    "\"direct_shots_per_sec\":%.1f,"
                    "\"engine_shots_per_sec\":%.1f,"
                    "\"speedup\":%.3f}\n",
                    sampled_shots, threads, direct_sps, engine_sps,
                    engine_sps / direct_sps);
    }

    // Sampling cache: one batch of identical sampled jobs cold (first
    // job builds plan + alias table), then the same batch warm (every
    // job hits). The ablation_noise_sweep pattern.
    {
        const std::size_t jobs = 8;
        Circuit sampled(16, 16, "perf_engine_cached");
        {
            Rng rng(29);
            for (std::size_t i = 0; i < 64; ++i) {
                const Qubit q = static_cast<Qubit>(rng.below(16));
                switch (rng.below(4)) {
                  case 0:
                    sampled.h(q);
                    break;
                  case 1:
                    sampled.t(q);
                    break;
                  case 2:
                    sampled.ry(rng.uniform() * M_PI, q);
                    break;
                  default:
                  {
                    const Qubit r = static_cast<Qubit>(
                        (q + 1 + rng.below(15)) % 16);
                    sampled.cx(q, r);
                  }
                }
            }
            sampled.measureAll();
        }

        JobQueue queue(engine);
        std::vector<JobSpec> batch;
        for (std::size_t j = 0; j < jobs; ++j) {
            JobSpec spec;
            spec.circuit = sampled;
            spec.shots = shots;
            spec.backend = "statevector";
            spec.seed = 100 + j;
            batch.push_back(spec);
        }

        const auto cold_start = std::chrono::steady_clock::now();
        queue.runAll(batch);
        const double cold_s = secondsSince(cold_start);
        const std::size_t cold_hits = queue.samplingCacheHits();

        const auto warm_start = std::chrono::steady_clock::now();
        queue.runAll(batch);
        const double warm_s = secondsSince(warm_start);

        if (!json_only)
            std::printf("  sampling cache (%zu jobs x %zu shots): "
                        "cold %.4fs, warm %.4fs (%.2fx), "
                        "%zu hits / %zu misses\n",
                        jobs, shots, cold_s, warm_s, cold_s / warm_s,
                        queue.samplingCacheHits(),
                        queue.samplingCacheMisses());
        std::printf("{\"bench\":\"perf_engine\","
                    "\"section\":\"sampling_cache\",\"qubits\":16,"
                    "\"jobs\":%zu,\"shots\":%zu,"
                    "\"cold_seconds\":%.5f,\"warm_seconds\":%.5f,"
                    "\"speedup\":%.3f,\"cold_hits\":%zu,"
                    "\"hits\":%zu,\"misses\":%zu}\n",
                    jobs, shots, cold_s, warm_s, cold_s / warm_s,
                    cold_hits, queue.samplingCacheHits(),
                    queue.samplingCacheMisses());
    }

    // The parallelism claim only applies where parallelism exists.
    bool ok = true;
    if (threads >= 4) {
        ok = speedup_at_16 >= 2.0;
        if (!json_only)
            bench::verdict(ok, "engine delivers >= 2x shots/sec over "
                               "direct single-threaded execution at "
                               "16 qubits on a >= 4-core host");
    } else if (!json_only) {
        bench::verdict(true,
                       "host has < 4 threads; speedup is "
                       "informational only on this machine");
    }
    return ok ? 0 : 1;
}
