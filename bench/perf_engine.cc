/**
 * @file
 * P2: engine-parallel vs direct single-threaded execution throughput.
 *
 * Two sections:
 *  - per-shot: the same trajectory workload (mid-circuit measurement
 *    + reset, so every shot is a full state evolution) directly on
 *    StatevectorSimulator::run and through the ExecutionEngine with
 *    one shard per pool thread, at 4-16 qubits;
 *  - sampled: a terminal-measurement workload where the engine cost
 *    is one evolution + alias-table draws per shard, engine vs
 *    direct.
 *
 * A third section measures the JobQueue's cross-job sampling cache:
 * the same sampled job resubmitted through the queue reuses the
 * lowered plan and alias table, so warm jobs skip the evolution
 * entirely.
 *
 * Compile-pipeline sections (deterministic, not timing-sensitive):
 *  - assertion_placement: inserted SWAPs for the legacy
 *    inject-then-transpile order vs the post-layout injection pass
 *    (ancillas bound next to their targets' live routed positions)
 *    over a batch of random assertion workloads on a 4x4 grid
 *    device;
 *  - compile_passes: per-pass compile timings of the prepare
 *    pipeline (compiles_per_sec per pass, so the perf-regression
 *    check can watch compile-time drift);
 *  - async_callbacks: JobQueue callback-based submission throughput
 *    vs future-join runAll on a batch of sampled jobs.
 *
 * A telemetry_overhead section runs the per-shot workload with
 * telemetry off vs fully on (metrics + tracing): the enabled path
 * must cost < 3% (min ratio over alternating off/on pairs) and the
 * counts must stay bit-identical, both part of the exit verdict.
 *
 * A robustness section exercises the hardened job lifecycle: a retry
 * policy on the fault-free path must be ~free (retry_overhead_frac,
 * min ratio over alternating pairs), a run that retries through
 * injected transient faults must reproduce the clean counts exactly,
 * and a job cancelled at a wave boundary then resumed from its
 * checkpoint must finish bit-identical to the uninterrupted run
 * without executing more total shots. Cancel latency (cancel() to
 * partial-result delivery, one in-flight wave) is informational.
 *
 * An auto_assert section compares statically derived assertions
 * (--auto-assert / InjectionStrategy::AutoGenerate) against the
 * paper's hand annotations on Bell, GHZ(3), GHZ(4) and W(3) under
 * ibmqx4 noise: the auto checks must detect at least the
 * hand-annotated error rate at <= 1.25x the inserted-gate overhead,
 * per circuit, as a deterministic part of the exit verdict.
 *
 * Emits one JSON line per measurement for the bench trajectory, then
 * a human-readable table and a verdict: on hosts with >= 4 cores the
 * engine must deliver >= 2x shots/sec at 16 qubits on the per-shot
 * workload.
 *
 * Usage: perf_engine [SHOTS] [--json]   (default 96 per-shot shots;
 * --json emits only the JSON lines)
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench_util.hh"
#include "qra.hh"

using namespace qra;
using namespace qra::runtime;

namespace {

/**
 * A dense per-shot workload: random layers with one mid-circuit
 * measurement and reset of qubit 0, which disables the sample-at-end
 * fast path and makes every shot an independent trajectory — the
 * execution pattern assertion circuits with ancilla reuse produce.
 */
Circuit
trajectoryWorkload(std::size_t num_qubits, std::size_t num_gates,
                   std::uint64_t seed)
{
    Circuit c(num_qubits, num_qubits, "perf_engine");
    Rng rng(seed);
    auto random_layer = [&](std::size_t gates) {
        for (std::size_t i = 0; i < gates; ++i) {
            const Qubit q = static_cast<Qubit>(rng.below(num_qubits));
            switch (rng.below(4)) {
              case 0:
                c.h(q);
                break;
              case 1:
                c.t(q);
                break;
              case 2:
                c.ry(rng.uniform() * M_PI, q);
                break;
              default:
              {
                const Qubit r = static_cast<Qubit>(
                    (q + 1 + rng.below(num_qubits - 1)) % num_qubits);
                c.cx(q, r);
              }
            }
        }
    };
    random_layer(num_gates / 2);
    c.measure(0, 0);
    c.reset(0);
    random_layer(num_gates - num_gates / 2);
    c.measureAll();
    return c;
}

using bench::secondsSince;

/** Rows x cols grid device (undirected edges both ways). */
CouplingMap
gridMap(std::size_t rows, std::size_t cols)
{
    CouplingMap map(rows * cols);
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
            const Qubit q = static_cast<Qubit>(r * cols + c);
            if (c + 1 < cols)
                map.addEdge(q, q + 1);
            if (r + 1 < rows)
                map.addEdge(q, static_cast<Qubit>(q + cols));
        }
    }
    return map;
}

/**
 * A random assertion workload: a 10-qubit random payload with five
 * entanglement checks in its latter half — by then routing has
 * dragged the targets away from their initial slots, which is
 * exactly where check-time ancilla binding beats the legacy order.
 */
void
assertionWorkload(std::uint64_t seed, Circuit &payload,
                  std::vector<AssertionSpec> &specs)
{
    const std::size_t num_qubits = 10;
    const std::size_t num_gates = 48;
    Rng rng(seed);
    payload = Circuit(num_qubits, num_qubits, "placement");
    for (std::size_t i = 0; i < num_gates; ++i) {
        const Qubit q = static_cast<Qubit>(rng.below(num_qubits));
        switch (rng.below(3)) {
          case 0:
            payload.h(q);
            break;
          case 1:
            payload.t(q);
            break;
          default:
          {
            const Qubit r = static_cast<Qubit>(
                (q + 1 + rng.below(num_qubits - 1)) % num_qubits);
            payload.cx(q, r);
          }
        }
    }
    payload.measureAll();

    specs.clear();
    for (std::size_t c = 0; c < 5; ++c) {
        AssertionSpec spec;
        spec.assertion = std::make_shared<EntanglementAssertion>(2);
        const Qubit a = static_cast<Qubit>(rng.below(num_qubits));
        spec.targets = {a, static_cast<Qubit>(
                               (a + 1 + rng.below(num_qubits - 1)) %
                               num_qubits)};
        spec.insertAt = num_gates / 2 + rng.below(num_gates / 2 + 1);
        specs.push_back(std::move(spec));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t shots = 96;
    bool json_only = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            json_only = true;
            continue;
        }
        char *end = nullptr;
        shots = std::strtoull(argv[i], &end, 10);
        if (end == argv[i] || *end != '\0' || shots == 0) {
            std::fprintf(stderr,
                         "usage: perf_engine [SHOTS] [--json]\n");
            return 2;
        }
    }
    const std::size_t threads = ThreadPool::defaultThreads();

    if (!json_only) {
        bench::banner("P2",
                      "engine-parallel vs direct single-threaded "
                      "state-vector execution");
        bench::note("host threads: " + std::to_string(threads) +
                    ", shots/size: " + std::to_string(shots));
        std::printf("  %-8s %14s %14s %10s\n", "qubits",
                    "direct sh/s", "engine sh/s", "speedup");
    }

    // One shard per pool thread keeps every worker busy exactly once.
    ExecutionEngine engine(EngineOptions{
        .threads = threads,
        .shardShots =
            std::max<std::size_t>(1, shots / std::max<std::size_t>(
                                              1, threads)),
        .maxShards = threads});

    double speedup_at_16 = 0.0;
    for (const std::size_t num_qubits : {4u, 8u, 12u, 16u}) {
        const Circuit circuit =
            trajectoryWorkload(num_qubits, 64, 17);

        const auto direct_start = std::chrono::steady_clock::now();
        StatevectorSimulator direct(23);
        const Result direct_result = direct.run(circuit, shots);
        const double direct_seconds = secondsSince(direct_start);

        const auto engine_start = std::chrono::steady_clock::now();
        const Result engine_result =
            engine.run(circuit, shots, "statevector", 23);
        const double engine_seconds = secondsSince(engine_start);

        const double direct_sps =
            static_cast<double>(direct_result.shots()) /
            direct_seconds;
        const double engine_sps =
            static_cast<double>(engine_result.shots()) /
            engine_seconds;
        const double speedup = engine_sps / direct_sps;
        if (num_qubits == 16)
            speedup_at_16 = speedup;

        if (!json_only)
            std::printf("  %-8zu %14.1f %14.1f %9.2fx\n", num_qubits,
                        direct_sps, engine_sps, speedup);
        // Machine-readable trajectory line.
        std::printf("{\"bench\":\"perf_engine\","
                    "\"section\":\"per_shot\",\"qubits\":%zu,"
                    "\"shots\":%zu,\"threads\":%zu,"
                    "\"direct_shots_per_sec\":%.1f,"
                    "\"engine_shots_per_sec\":%.1f,"
                    "\"speedup\":%.3f}\n",
                    num_qubits, shots, threads, direct_sps,
                    engine_sps, speedup);
    }

    // Sampled workload: terminal measurements only, so each shard is
    // one evolution plus O(1) alias-table draws per shot.
    {
        const std::size_t sampled_shots = shots * 40;
        // Same layer mix as the trajectory workload but without the
        // mid-circuit measure/reset, so sampled execution is legal.
        Circuit sampled(16, 16, "perf_engine_sampled");
        {
            Rng rng(19);
            for (std::size_t i = 0; i < 64; ++i) {
                const Qubit q = static_cast<Qubit>(rng.below(16));
                switch (rng.below(4)) {
                  case 0:
                    sampled.h(q);
                    break;
                  case 1:
                    sampled.t(q);
                    break;
                  case 2:
                    sampled.ry(rng.uniform() * M_PI, q);
                    break;
                  default:
                  {
                    const Qubit r = static_cast<Qubit>(
                        (q + 1 + rng.below(15)) % 16);
                    sampled.cx(q, r);
                  }
                }
            }
            sampled.measureAll();
        }

        const auto direct_start = std::chrono::steady_clock::now();
        StatevectorSimulator direct(23);
        const Result direct_result =
            direct.run(sampled, sampled_shots);
        const double direct_s = secondsSince(direct_start);

        const auto engine_start = std::chrono::steady_clock::now();
        const Result engine_result =
            engine.run(sampled, sampled_shots, "statevector", 23);
        const double engine_s = secondsSince(engine_start);

        const double direct_sps =
            static_cast<double>(direct_result.shots()) / direct_s;
        const double engine_sps =
            static_cast<double>(engine_result.shots()) / engine_s;
        if (!json_only)
            std::printf("  sampled (16 qubits, %zu shots): direct "
                        "%.1f sh/s, engine %.1f sh/s (%.2fx)\n",
                        sampled_shots, direct_sps, engine_sps,
                        engine_sps / direct_sps);
        std::printf("{\"bench\":\"perf_engine\","
                    "\"section\":\"sampled\",\"qubits\":16,"
                    "\"shots\":%zu,\"threads\":%zu,"
                    "\"direct_shots_per_sec\":%.1f,"
                    "\"engine_shots_per_sec\":%.1f,"
                    "\"speedup\":%.3f}\n",
                    sampled_shots, threads, direct_sps, engine_sps,
                    engine_sps / direct_sps);
    }

    // Sampling cache: one batch of identical sampled jobs cold (first
    // job builds plan + alias table), then the same batch warm (every
    // job hits). The ablation_noise_sweep pattern.
    {
        const std::size_t jobs = 8;
        Circuit sampled(16, 16, "perf_engine_cached");
        {
            Rng rng(29);
            for (std::size_t i = 0; i < 64; ++i) {
                const Qubit q = static_cast<Qubit>(rng.below(16));
                switch (rng.below(4)) {
                  case 0:
                    sampled.h(q);
                    break;
                  case 1:
                    sampled.t(q);
                    break;
                  case 2:
                    sampled.ry(rng.uniform() * M_PI, q);
                    break;
                  default:
                  {
                    const Qubit r = static_cast<Qubit>(
                        (q + 1 + rng.below(15)) % 16);
                    sampled.cx(q, r);
                  }
                }
            }
            sampled.measureAll();
        }

        JobQueue queue(engine);
        std::vector<JobSpec> batch;
        for (std::size_t j = 0; j < jobs; ++j) {
            JobSpec spec;
            spec.circuit = sampled;
            spec.shots = shots;
            spec.backend = "statevector";
            spec.seed = 100 + j;
            batch.push_back(spec);
        }

        const auto cold_start = std::chrono::steady_clock::now();
        queue.runAll(batch);
        const double cold_s = secondsSince(cold_start);
        const std::size_t cold_hits = queue.samplingCacheHits();

        const auto warm_start = std::chrono::steady_clock::now();
        queue.runAll(batch);
        const double warm_s = secondsSince(warm_start);

        if (!json_only)
            std::printf("  sampling cache (%zu jobs x %zu shots): "
                        "cold %.4fs, warm %.4fs (%.2fx), "
                        "%zu hits / %zu misses\n",
                        jobs, shots, cold_s, warm_s, cold_s / warm_s,
                        queue.samplingCacheHits(),
                        queue.samplingCacheMisses());
        std::printf("{\"bench\":\"perf_engine\","
                    "\"section\":\"sampling_cache\",\"qubits\":16,"
                    "\"jobs\":%zu,\"shots\":%zu,"
                    "\"cold_seconds\":%.5f,\"warm_seconds\":%.5f,"
                    "\"speedup\":%.3f,\"cold_hits\":%zu,"
                    "\"hits\":%zu,\"misses\":%zu}\n",
                    jobs, shots, cold_s, warm_s, cold_s / warm_s,
                    cold_hits, queue.samplingCacheHits(),
                    queue.samplingCacheMisses());
    }

    // Assertion placement: legacy inject-then-transpile vs the
    // post-layout injection pass, inserted SWAPs summed over a batch
    // of random workloads on a 4x4 grid device. Deterministic (fixed
    // seeds), so the reduction verdict is safe for CI.
    double swap_reduction = 0.0;
    {
        const CouplingMap map = gridMap(4, 4);
        const std::size_t instances = 20;
        std::size_t swaps_legacy = 0;
        std::size_t swaps_post = 0;
        std::size_t twoq_legacy = 0;
        std::size_t twoq_post = 0;
        double seconds_legacy = 0.0;
        double seconds_post = 0.0;
        // Per-pass compile-time aggregation across every prepare.
        struct PassTime
        {
            double seconds = 0.0;
            std::size_t runs = 0;
        };
        std::vector<std::pair<std::string, PassTime>> pass_times;
        auto record = [&](const compile::CompileContext &ctx) {
            for (const compile::PassStats &stats : ctx.passStats) {
                auto it = std::find_if(
                    pass_times.begin(), pass_times.end(),
                    [&](const auto &entry) {
                        return entry.first == stats.name;
                    });
                if (it == pass_times.end()) {
                    pass_times.push_back({stats.name, {}});
                    it = std::prev(pass_times.end());
                }
                it->second.seconds += stats.seconds;
                ++it->second.runs;
            }
        };

        Circuit payload(1);
        std::vector<AssertionSpec> specs;
        for (std::uint64_t seed = 1; seed <= instances; ++seed) {
            assertionWorkload(seed, payload, specs);
            compile::PrepareSpec prep;
            prep.assertions = specs;
            prep.coupling = &map;

            prep.injection = compile::InjectionStrategy::PreLayout;
            const auto legacy_start = std::chrono::steady_clock::now();
            const compile::CompileContext legacy =
                compile::prepare(payload, prep);
            seconds_legacy += secondsSince(legacy_start);
            record(legacy);
            swaps_legacy += legacy.insertedSwaps;
            twoq_legacy += legacy.circuit.twoQubitGateCount();

            prep.injection = compile::InjectionStrategy::PostLayout;
            const auto post_start = std::chrono::steady_clock::now();
            const compile::CompileContext post =
                compile::prepare(payload, prep);
            seconds_post += secondsSince(post_start);
            record(post);
            swaps_post += post.insertedSwaps;
            twoq_post += post.circuit.twoQubitGateCount();
        }
        swap_reduction =
            1.0 - static_cast<double>(swaps_post) /
                      static_cast<double>(swaps_legacy);

        if (!json_only)
            std::printf("  assertion placement (%zu workloads, 4x4 "
                        "grid): legacy %zu swaps, postlayout %zu "
                        "(%.1f%% fewer), 2q gates %zu -> %zu\n",
                        instances, swaps_legacy, swaps_post,
                        100.0 * swap_reduction, twoq_legacy,
                        twoq_post);
        std::printf("{\"bench\":\"perf_engine\","
                    "\"section\":\"assertion_placement\","
                    "\"qubits\":16,\"jobs\":%zu,"
                    "\"swaps_legacy\":%zu,\"swaps_postlayout\":%zu,"
                    "\"swap_reduction\":%.4f,"
                    "\"twoq_legacy\":%zu,\"twoq_postlayout\":%zu,"
                    "\"legacy_compiles_per_sec\":%.1f,"
                    "\"postlayout_compiles_per_sec\":%.1f}\n",
                    instances, swaps_legacy, swaps_post,
                    swap_reduction, twoq_legacy, twoq_post,
                    instances / seconds_legacy,
                    instances / seconds_post);

        // One record per pass so check_perf_regression.py can watch
        // compile-time drift at pass granularity.
        for (const auto &[name, time] : pass_times) {
            if (!json_only)
                std::printf("    pass %-18s %8.1f runs/sec "
                            "(%zu runs)\n",
                            name.c_str(), time.runs / time.seconds,
                            time.runs);
            std::printf("{\"bench\":\"perf_engine\","
                        "\"section\":\"compile_passes\","
                        "\"pass\":\"%s\",\"runs\":%zu,"
                        "\"seconds_total\":%.6f,"
                        "\"runs_per_sec\":%.1f}\n",
                        name.c_str(), time.runs, time.seconds,
                        time.runs / time.seconds);
        }
    }

    // Async callbacks: the same warm sampled batch delivered through
    // completion callbacks (no future-joins) vs runAll.
    {
        const std::size_t jobs = 16;
        Circuit sampled(12, 12, "perf_engine_async");
        {
            Rng rng(31);
            for (std::size_t i = 0; i < 48; ++i) {
                const Qubit q = static_cast<Qubit>(rng.below(12));
                switch (rng.below(4)) {
                  case 0:
                    sampled.h(q);
                    break;
                  case 1:
                    sampled.t(q);
                    break;
                  case 2:
                    sampled.ry(rng.uniform() * M_PI, q);
                    break;
                  default:
                  {
                    const Qubit r = static_cast<Qubit>(
                        (q + 1 + rng.below(11)) % 12);
                    sampled.cx(q, r);
                  }
                }
            }
            sampled.measureAll();
        }

        JobQueue queue(engine);
        std::vector<JobSpec> batch;
        for (std::size_t j = 0; j < jobs; ++j) {
            JobSpec spec;
            spec.circuit = sampled;
            spec.shots = shots;
            spec.backend = "statevector";
            spec.seed = 300 + j;
            batch.push_back(spec);
        }

        // Warm the prepare and sampling caches once, untimed, so
        // both timed paths measure submission mechanics rather than
        // first-run plan/alias-table builds.
        queue.runAll(batch);

        const auto future_start = std::chrono::steady_clock::now();
        queue.runAll(batch);
        const double future_s = secondsSince(future_start);

        std::atomic<std::size_t> delivered{0};
        const auto callback_start = std::chrono::steady_clock::now();
        for (const JobSpec &spec : batch)
            queue.submit(spec, [&delivered](Result result,
                                            std::exception_ptr) {
                delivered += result.shots() > 0 ? 1 : 0;
            });
        queue.waitIdle();
        const double callback_s = secondsSince(callback_start);

        if (!json_only)
            std::printf("  async callbacks (%zu jobs x %zu shots): "
                        "futures %.1f jobs/s, callbacks %.1f jobs/s "
                        "(%zu delivered)\n",
                        jobs, shots, jobs / future_s,
                        jobs / callback_s, delivered.load());
        std::printf("{\"bench\":\"perf_engine\","
                    "\"section\":\"async_callbacks\",\"qubits\":12,"
                    "\"jobs\":%zu,\"shots\":%zu,"
                    "\"future_jobs_per_sec\":%.1f,"
                    "\"callback_jobs_per_sec\":%.1f}\n",
                    jobs, shots, jobs / future_s, jobs / callback_s);
    }

    // Early stopping: the ablation-noise-sweep workload (Bell +
    // entanglement assertion on scaled ibmqx4 noise) run adaptively —
    // shot waves stop once the any-error rate's Wilson 95% half-width
    // reaches the target — vs the fixed 8192-shot budget. Counts are
    // bit-deterministic at any thread count, so shots_used and the
    // shots-saved verdict are CI-safe. Low noise converges fastest:
    // the interval tightens as sqrt(p(1-p)), so clean devices pay a
    // small fraction of the fixed budget.
    double best_saved_factor = 0.0;
    {
        const std::size_t budget = 8192;
        StoppingRule rule;
        rule.statistic = StoppingRule::Statistic::AnyError;
        rule.targetHalfWidth = 0.02;
        rule.minShots = 512;
        rule.waveShots = 256;

        Circuit payload(2, 2, "bell");
        payload.h(0).cx(0, 1);
        payload.measure(0, 0).measure(1, 1);
        AssertionSpec check;
        check.assertion = std::make_shared<EntanglementAssertion>(2);
        check.targets = {0, 1};
        check.insertAt = 2;

        // Shard = wave granularity: 256-shot shards so stopping can
        // trigger every 256 shots (the shared `engine` sizes shards
        // for the per-shot sections and may put the whole budget in
        // one shard).
        ExecutionEngine wave_engine(EngineOptions{
            .threads = threads, .shardShots = 256, .maxShards = 64});
        JobQueue queue(wave_engine);

        for (const double scale : {0.25, 1.0, 4.0}) {
            const DeviceModel device =
                DeviceModel::ibmqx4().scaledNoise(scale);
            JobSpec spec;
            spec.circuit = payload;
            spec.shots = budget;
            spec.backend = "trajectory";
            spec.seed = 41;
            spec.noise = &device.noiseModel();
            spec.assertions = {check};
            spec.stopping = rule;

            std::size_t waves = 0;
            double final_halfwidth = 1.0;
            double estimate = 0.0;
            const auto start = std::chrono::steady_clock::now();
            const Result result = queue
                                      .submit(spec)
                                      .get();
            const double seconds = secondsSince(start);
            // Waves/half-width from a pooled re-evaluation (identical
            // to the engine's last in-flight evaluation by counts
            // determinism).
            const auto inst = queue.instrumented(spec);
            const StoppingStatus status =
                evaluateStopping(rule, result, inst.get());
            estimate = status.estimate;
            final_halfwidth = status.halfWidth;
            waves = (result.shots() + rule.waveShots - 1) /
                    rule.waveShots;

            const double saved_frac =
                1.0 - static_cast<double>(result.shots()) /
                          static_cast<double>(result.shotsRequested());
            const double saved_factor =
                static_cast<double>(result.shotsRequested()) /
                static_cast<double>(result.shots());
            best_saved_factor =
                std::max(best_saved_factor, saved_factor);

            if (!json_only)
                std::printf("  early stopping (noise %gx): %zu of "
                            "%zu shots (%zu waves, %.2fx saved), "
                            "error %.3f +/- %.4f, %.3fs\n",
                            scale, result.shots(),
                            result.shotsRequested(), waves,
                            saved_factor, estimate, final_halfwidth,
                            seconds);
            std::printf("{\"bench\":\"perf_engine\","
                        "\"section\":\"early_stopping\","
                        "\"scale\":%g,\"shots\":%zu,"
                        "\"shots_used\":%zu,\"waves\":%zu,"
                        "\"target_halfwidth\":%g,"
                        "\"final_halfwidth\":%.5f,"
                        "\"estimate\":%.5f,"
                        "\"shots_saved_frac\":%.5f,"
                        "\"speedup\":%.3f}\n",
                        scale, budget, result.shots(), waves,
                        rule.targetHalfWidth, final_halfwidth,
                        estimate, saved_frac, saved_factor);
        }
    }

    // Telemetry overhead: the identical engine workload with
    // telemetry off vs fully on (metrics + tracing). Spans are
    // shard-granular, so the enabled path must stay within 3% and
    // counts must be bit-identical. 4x shots stretches each run to
    // tens of milliseconds; the overhead estimate is the minimum
    // ratio over alternating off/on pairs, so slow drift (thermal,
    // noisy neighbours) that best-of-N minima cannot cancel drops
    // out — each pair runs back to back on the same host state.
    double overhead_frac = 0.0;
    bool counts_identical = true;
    {
        const Circuit circuit = trajectoryWorkload(12, 64, 29);
        const std::size_t telemetry_shots = shots * 4;
        auto run_once = [&]() {
            const auto start = std::chrono::steady_clock::now();
            Result result = engine.run(circuit, telemetry_shots,
                                       "statevector", 31);
            return std::make_pair(secondsSince(start),
                                  std::move(result));
        };
        run_once(); // warm the pool and plan caches
        double best_off = 1e100;
        double best_on = 1e100;
        double best_ratio = 1e100;
        Result off_result;
        Result on_result;
        for (int rep = 0; rep < 7; ++rep) {
            obs::setMetricsEnabled(false);
            obs::setTracingEnabled(false);
            auto [off_seconds, off_r] = run_once();
            obs::setMetricsEnabled(true);
            obs::setTracingEnabled(true);
            auto [on_seconds, on_r] = run_once();
            best_off = std::min(best_off, off_seconds);
            best_on = std::min(best_on, on_seconds);
            best_ratio =
                std::min(best_ratio, on_seconds / off_seconds);
            off_result = std::move(off_r);
            on_result = std::move(on_r);
        }
        obs::setMetricsEnabled(false);
        obs::setTracingEnabled(false);
        obs::Tracer::global().clear();
        counts_identical =
            off_result.rawCounts() == on_result.rawCounts();
        overhead_frac = std::max(0.0, best_ratio - 1.0);

        if (!json_only)
            std::printf("  telemetry overhead (12 qubits, %zu "
                        "shots): off %.4fs, on %.4fs -> %.2f%% "
                        "(counts %s)\n",
                        telemetry_shots, best_off, best_on,
                        overhead_frac * 100.0,
                        counts_identical ? "identical" : "DIFFER");
        std::printf("{\"bench\":\"perf_engine\","
                    "\"section\":\"telemetry_overhead\","
                    "\"qubits\":12,\"shots\":%zu,"
                    "\"disabled_seconds\":%.6f,"
                    "\"enabled_seconds\":%.6f,"
                    "\"overhead_frac\":%.5f,"
                    "\"counts_identical\":%d}\n",
                    telemetry_shots, best_off, best_on, overhead_frac,
                    counts_identical ? 1 : 0);
    }

    // Robustness: the hardened job lifecycle's costs and contracts
    // on the per-shot workload. The count comparisons and the
    // resume-shot accounting are deterministic (fixed seeds, fixed
    // shard plans), so they fold into the exit verdict; the retry
    // overhead and cancel latency are timing-sensitive and left to
    // the warn-only regression check.
    double cancel_latency_ms = 0.0;
    double retry_overhead_frac = 0.0;
    bool retry_counts_identical = false;
    bool resume_counts_identical = false;
    std::size_t resume_total_shots = 0;
    std::size_t uninterrupted_shots = 0;
    {
        const Circuit circuit = trajectoryWorkload(12, 64, 37);
        const std::size_t robust_shots = shots * 4;
        // Eight shards = eight single-shard waves, so cancellation
        // and resume have real boundaries to work with.
        const std::size_t wave_shots =
            std::max<std::size_t>(1, robust_shots / 8);
        ExecutionEngine robust_engine(EngineOptions{
            .threads = threads,
            .shardShots = wave_shots,
            .maxShards = 64});

        auto clean_job = [&]() {
            return Job(circuit, robust_shots, "statevector", 43);
        };
        auto timed = [&](Job job) {
            const auto start = std::chrono::steady_clock::now();
            Result result = robust_engine.run(std::move(job));
            return std::make_pair(secondsSince(start),
                                  std::move(result));
        };
        robust_engine.run(clean_job()); // warm pool + plan caches

        // A retry policy on the fault-free path must be ~free: min
        // ratio over alternating pairs, the telemetry-section idiom.
        double best_ratio = 1e100;
        Result plain_result;
        for (int rep = 0; rep < 5; ++rep) {
            auto [plain_s, plain_r] = timed(clean_job());
            Job with_retry = clean_job();
            with_retry.retry.maxAttempts = 3;
            auto [retry_s, retry_r] = timed(std::move(with_retry));
            best_ratio = std::min(best_ratio, retry_s / plain_s);
            plain_result = std::move(plain_r);
        }
        retry_overhead_frac = std::max(0.0, best_ratio - 1.0);
        uninterrupted_shots = plain_result.shots();

        // Recovery: transient faults on two shards, retried with the
        // original RNG streams — counts must match the clean run.
        Job faulty = clean_job();
        faulty.retry.maxAttempts = 3;
        faulty.retry.baseBackoffMs = 0.01;
        faulty.faults = std::make_shared<const FaultPlan>(
            FaultPlan::parse("shard:1:throw,shard:3:badalloc"));
        const Result recovered = robust_engine.run(std::move(faulty));
        retry_counts_identical =
            recovered.rawCounts() == plain_result.rawCounts() &&
            recovered.execStats().retries == 2;

        // Cancel latency: cancel() inside the wave-1 progress
        // callback; the engine drains the one in-flight wave and
        // delivers the partial result.
        {
            Job job = clean_job();
            job.stopping.waveShots = wave_shots;
            const CancelToken token = job.cancel;
            std::chrono::steady_clock::time_point cancelled_at;
            const Result partial = robust_engine.runAdaptive(
                job,
                [&](const Result &, const StoppingStatus &status) {
                    if (status.wave == 1) {
                        cancelled_at =
                            std::chrono::steady_clock::now();
                        token.cancel();
                    }
                });
            cancel_latency_ms = secondsSince(cancelled_at) * 1000.0;
            if (!partial.cancelled())
                retry_counts_identical = false; // should never happen
        }

        // Checkpoint/resume: cancel at the wave-1 boundary, resume
        // from the checkpoint. Executed shots across both runs must
        // not exceed the uninterrupted budget (adopted checkpoint
        // shots are not re-run), and the final counts must match.
        {
            Job job = clean_job();
            job.stopping.waveShots = wave_shots;
            job.checkpoint = std::make_shared<JobCheckpoint>();
            const CancelToken token = job.cancel;
            const Result partial = robust_engine.runAdaptive(
                job,
                [&](const Result &, const StoppingStatus &status) {
                    if (status.wave == 1)
                        token.cancel();
                });

            Job resume_job = clean_job();
            resume_job.stopping.waveShots = wave_shots;
            resume_job.resumeFrom = job.checkpoint;
            const Result resumed =
                robust_engine.runAdaptive(std::move(resume_job));
            resume_total_shots =
                partial.shots() +
                (resumed.shots() -
                 resumed.execStats().resumedShots);
            resume_counts_identical =
                resumed.rawCounts() == plain_result.rawCounts();
        }

        if (!json_only)
            std::printf("  robustness (12 qubits, %zu shots): retry "
                        "overhead %.2f%%, recovered counts %s, "
                        "cancel latency %.2fms, resume %zu of %zu "
                        "shots (%s)\n",
                        robust_shots, retry_overhead_frac * 100.0,
                        retry_counts_identical ? "identical"
                                               : "DIFFER",
                        cancel_latency_ms, resume_total_shots,
                        uninterrupted_shots,
                        resume_counts_identical ? "identical"
                                                : "DIFFER");
        std::printf("{\"bench\":\"perf_engine\","
                    "\"section\":\"robustness\",\"qubits\":12,"
                    "\"shots\":%zu,"
                    "\"retry_overhead_frac\":%.5f,"
                    "\"retry_counts_identical\":%d,"
                    "\"cancel_latency_ms\":%.3f,"
                    "\"resume_total_shots\":%zu,"
                    "\"uninterrupted_shots\":%zu,"
                    "\"resume_counts_identical\":%d}\n",
                    robust_shots, retry_overhead_frac,
                    retry_counts_identical ? 1 : 0, cancel_latency_ms,
                    resume_total_shots, uninterrupted_shots,
                    resume_counts_identical ? 1 : 0);
    }

    // Auto-assertion quality: statically derived checks must detect
    // at least as many injected errors as the paper's hand-annotated
    // checks on the Bell/GHZ/W circuits under ibmqx4 noise, at
    // <= 1.25x the inserted-gate overhead. Fixed seeds keep counts
    // (and therefore both rates) bit-stable at any thread count, so
    // the comparison is a deterministic CI verdict, not a
    // statistical one.
    bool auto_assert_ok = true;
    {
        const DeviceModel aa_device = DeviceModel::ibmqx4();
        const std::size_t aa_shots = 4096;

        struct AutoCase
        {
            const char *name;
            Circuit payload;
            AssertionSpec hand;
        };
        auto entangledAt = [](std::size_t n, std::size_t cut) {
            AssertionSpec spec;
            spec.assertion =
                std::make_shared<EntanglementAssertion>(n);
            for (std::size_t q = 0; q < n; ++q)
                spec.targets.push_back(static_cast<Qubit>(q));
            spec.insertAt = cut;
            return spec;
        };
        std::vector<AutoCase> aa_cases;
        {
            Circuit bell = library::bellPair();
            bell.addClbits(bell.numQubits());
            bell.measureAll();
            aa_cases.push_back(
                {"bell", std::move(bell), entangledAt(2, 2)});
        }
        for (const std::size_t n : {3u, 4u}) {
            Circuit ghz = library::ghzState(n);
            ghz.addClbits(n);
            ghz.measureAll();
            aa_cases.push_back({n == 3 ? "ghz3" : "ghz4",
                                std::move(ghz), entangledAt(n, n)});
        }
        {
            // W(3): non-Clifford, but x(0) proves q0 = 1 — the
            // paper's hand annotation is that classical check.
            Circuit w = library::wState(3);
            w.addClbits(3);
            w.measureAll();
            AssertionSpec hand;
            hand.assertion = std::make_shared<ClassicalAssertion>(1);
            hand.targets = {0};
            hand.insertAt = 1;
            aa_cases.push_back(
                {"w3", std::move(w), std::move(hand)});
        }

        ExecutionEngine aa_engine(EngineOptions{.threads = threads});
        JobQueue aa_queue(aa_engine);
        if (!json_only)
            std::printf("  auto-assert vs hand annotation (ibmqx4 "
                        "noise, %zu shots):\n",
                        aa_shots);
        for (AutoCase &aa : aa_cases) {
            JobSpec base;
            base.circuit = aa.payload;
            base.shots = aa_shots;
            base.backend = "auto";
            base.seed = 101;
            base.noise = &aa_device.noiseModel();
            base.coupling = &aa_device.couplingMap();

            JobSpec hand_spec = base;
            hand_spec.assertions = {aa.hand};
            JobSpec auto_spec = base;
            auto_spec.injection =
                compile::InjectionStrategy::AutoGenerate;

            const auto hand_inst = aa_queue.instrumented(hand_spec);
            const auto auto_inst = aa_queue.instrumented(auto_spec);
            if (!hand_inst || !auto_inst ||
                auto_inst->checks().empty()) {
                auto_assert_ok = false;
                continue;
            }
            const double hand_inserted = static_cast<double>(
                hand_inst->circuit().size() - aa.payload.size());
            const double auto_inserted = static_cast<double>(
                auto_inst->circuit().size() - aa.payload.size());
            const double overhead_ratio =
                auto_inserted / hand_inserted;

            const Result hand_result =
                aa_queue.submit(hand_spec).get();
            const Result auto_result =
                aa_queue.submit(auto_spec).get();
            const double hand_rate =
                analyze(*hand_inst, hand_result).anyErrorRate;
            const double auto_rate =
                analyze(*auto_inst, auto_result).anyErrorRate;
            const std::size_t num_checks =
                auto_inst->checks().size();

            const bool case_ok = auto_rate + 1e-9 >= hand_rate &&
                                 overhead_ratio <= 1.25;
            auto_assert_ok = auto_assert_ok && case_ok;

            if (!json_only)
                std::printf("    %-5s auto %.2f%% vs hand %.2f%% "
                            "detected, %.2fx inserted gates, "
                            "%zu check%s%s\n",
                            aa.name, auto_rate * 100.0,
                            hand_rate * 100.0, overhead_ratio,
                            num_checks, num_checks == 1 ? "" : "s",
                            case_ok ? "" : "  [FAIL]");
            std::printf("{\"bench\":\"perf_engine\","
                        "\"section\":\"auto_assert\","
                        "\"circuit\":\"%s\",\"shots\":%zu,"
                        "\"auto_rate\":%.5f,\"hand_rate\":%.5f,"
                        "\"overhead_ratio\":%.3f,\"checks\":%zu}\n",
                        aa.name, aa_shots, auto_rate, hand_rate,
                        overhead_ratio, num_checks);
        }
    }

    // The parallelism claim only applies where parallelism exists.
    bool ok = true;
    if (threads >= 4) {
        ok = speedup_at_16 >= 2.0;
        if (!json_only)
            bench::verdict(ok, "engine delivers >= 2x shots/sec over "
                               "direct single-threaded execution at "
                               "16 qubits on a >= 4-core host");
    } else if (!json_only) {
        bench::verdict(true,
                       "host has < 4 threads; speedup is "
                       "informational only on this machine");
    }

    // Deterministic compile-quality claim: post-layout injection must
    // insert fewer SWAPs than the legacy inject-then-transpile order
    // on the grid workload batch.
    const bool placement_ok = swap_reduction > 0.0;
    if (!json_only)
        bench::verdict(placement_ok,
                       "post-layout assertion injection inserts fewer "
                       "SWAPs than inject-then-transpile");
    ok = ok && placement_ok;

    // Deterministic adaptive-execution claim: early stopping must
    // save >= 2x shots vs the fixed budget on at least one noise
    // point of the ablation sweep (counts — hence stopping points —
    // are bit-identical at any thread count).
    const bool stopping_ok = best_saved_factor >= 2.0;
    if (!json_only)
        bench::verdict(stopping_ok,
                       "confidence-driven early stopping saves >= 2x "
                       "shots vs the fixed budget on the noise sweep");
    ok = ok && stopping_ok;

    // Telemetry budget: enabled-path cost under 3% and counts
    // bit-identical with telemetry on or off.
    const bool telemetry_ok = counts_identical && overhead_frac < 0.03;
    if (!json_only)
        bench::verdict(telemetry_ok,
                       "telemetry enabled-path costs < 3% and leaves "
                       "counts bit-identical");
    ok = ok && telemetry_ok;

    // Robustness contract: retried and resumed jobs reproduce the
    // clean counts bit for bit, and resume never re-executes adopted
    // shots. Deterministic (fixed seeds, fixed shard plans), so safe
    // for CI.
    const bool robustness_ok =
        retry_counts_identical && resume_counts_identical &&
        resume_total_shots <= uninterrupted_shots;
    if (!json_only)
        bench::verdict(robustness_ok,
                       "retried and resumed jobs are bit-identical "
                       "to the clean run with no re-executed shots");
    ok = ok && robustness_ok;

    // Static-analysis contract: auto-derived checks match or beat
    // the hand annotations at bounded overhead (deterministic: fixed
    // seeds, thread-count-independent counts).
    if (!json_only)
        bench::verdict(auto_assert_ok,
                       "auto-derived assertions detect >= the "
                       "hand-annotated rate at <= 1.25x inserted "
                       "gates on Bell/GHZ/W under ibmqx4 noise");
    ok = ok && auto_assert_ok;
    return ok ? 0 : 1;
}
