/**
 * @file
 * P2: engine-parallel vs direct single-threaded execution throughput.
 *
 * Runs the same per-shot workload (mid-circuit measurement + reset,
 * so every shot is a full trajectory) directly on
 * StatevectorSimulator::run and through the ExecutionEngine with one
 * shard per pool thread, at 4-16 qubits. Emits one JSON line per
 * size for the bench trajectory, then a human-readable table and a
 * verdict: on hosts with >= 4 cores the engine must deliver >= 2x
 * shots/sec at 16 qubits.
 *
 * Usage: perf_engine [SHOTS]   (default 96)
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "bench_util.hh"
#include "qra.hh"

using namespace qra;
using namespace qra::runtime;

namespace {

/**
 * A dense per-shot workload: random layers with one mid-circuit
 * measurement and reset of qubit 0, which disables the sample-at-end
 * fast path and makes every shot an independent trajectory — the
 * execution pattern assertion circuits with ancilla reuse produce.
 */
Circuit
trajectoryWorkload(std::size_t num_qubits, std::size_t num_gates,
                   std::uint64_t seed)
{
    Circuit c(num_qubits, num_qubits, "perf_engine");
    Rng rng(seed);
    auto random_layer = [&](std::size_t gates) {
        for (std::size_t i = 0; i < gates; ++i) {
            const Qubit q = static_cast<Qubit>(rng.below(num_qubits));
            switch (rng.below(4)) {
              case 0:
                c.h(q);
                break;
              case 1:
                c.t(q);
                break;
              case 2:
                c.ry(rng.uniform() * M_PI, q);
                break;
              default:
              {
                const Qubit r = static_cast<Qubit>(
                    (q + 1 + rng.below(num_qubits - 1)) % num_qubits);
                c.cx(q, r);
              }
            }
        }
    };
    random_layer(num_gates / 2);
    c.measure(0, 0);
    c.reset(0);
    random_layer(num_gates - num_gates / 2);
    c.measureAll();
    return c;
}

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    const std::size_t shots =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 96;
    const std::size_t threads = ThreadPool::defaultThreads();

    bench::banner("P2",
                  "engine-parallel vs direct single-threaded "
                  "state-vector execution");
    bench::note("host threads: " + std::to_string(threads) +
                ", shots/size: " + std::to_string(shots));
    std::printf("  %-8s %14s %14s %10s\n", "qubits", "direct sh/s",
                "engine sh/s", "speedup");

    // One shard per pool thread keeps every worker busy exactly once.
    ExecutionEngine engine(EngineOptions{
        .threads = threads,
        .shardShots =
            std::max<std::size_t>(1, shots / std::max<std::size_t>(
                                              1, threads)),
        .maxShards = threads});

    double speedup_at_16 = 0.0;
    for (const std::size_t num_qubits : {4u, 8u, 12u, 16u}) {
        const Circuit circuit =
            trajectoryWorkload(num_qubits, 64, 17);

        const auto direct_start = std::chrono::steady_clock::now();
        StatevectorSimulator direct(23);
        const Result direct_result = direct.run(circuit, shots);
        const double direct_seconds = secondsSince(direct_start);

        const auto engine_start = std::chrono::steady_clock::now();
        const Result engine_result =
            engine.run(circuit, shots, "statevector", 23);
        const double engine_seconds = secondsSince(engine_start);

        const double direct_sps =
            static_cast<double>(direct_result.shots()) /
            direct_seconds;
        const double engine_sps =
            static_cast<double>(engine_result.shots()) /
            engine_seconds;
        const double speedup = engine_sps / direct_sps;
        if (num_qubits == 16)
            speedup_at_16 = speedup;

        std::printf("  %-8zu %14.1f %14.1f %9.2fx\n", num_qubits,
                    direct_sps, engine_sps, speedup);
        // Machine-readable trajectory line.
        std::printf("{\"bench\":\"perf_engine\",\"qubits\":%zu,"
                    "\"shots\":%zu,\"threads\":%zu,"
                    "\"direct_shots_per_sec\":%.1f,"
                    "\"engine_shots_per_sec\":%.1f,"
                    "\"speedup\":%.3f}\n",
                    num_qubits, shots, threads, direct_sps,
                    engine_sps, speedup);
    }

    // The parallelism claim only applies where parallelism exists.
    bool ok = true;
    if (threads >= 4) {
        ok = speedup_at_16 >= 2.0;
        bench::verdict(ok, "engine delivers >= 2x shots/sec over "
                           "direct single-threaded execution at 16 "
                           "qubits on a >= 4-core host");
    } else {
        bench::verdict(true,
                       "host has < 4 threads; speedup is "
                       "informational only on this machine");
    }
    return ok ? 0 : 1;
}
