/**
 * @file
 * Ablation A2: resource overhead of dynamic assertions, quantified
 * against (a) the uninstrumented payload and (b) an error-correction
 * style parity readout (the paper's motivation: assertions are far
 * cheaper than QEC because they only *check*).
 */

#include <memory>

#include "bench_util.hh"
#include "qra.hh"

using namespace qra;

namespace {

struct Cost
{
    std::size_t qubits;
    std::size_t gates;
    std::size_t twoQubit;
    std::size_t depth;
};

Cost
costOf(const Circuit &c)
{
    std::size_t gates = 0;
    for (const Operation &op : c.ops())
        if (opIsUnitary(op.kind) || op.kind == OpKind::Measure)
            ++gates;
    return {c.numQubits(), gates, c.twoQubitGateCount(), c.depth()};
}

void
costRow(const std::string &label, const Cost &cost)
{
    bench::note("  " + label + ": " + std::to_string(cost.qubits) +
                " qubits, " + std::to_string(cost.gates) + " ops, " +
                std::to_string(cost.twoQubit) + " 2q gates, depth " +
                std::to_string(cost.depth));
}

} // namespace

int
main()
{
    bench::banner("Ablation A2",
                  "overhead of dynamic assertions vs payload and "
                  "vs QEC-style checking");
    bool ok = true;

    // Payload: GHZ-3 with measurement.
    Circuit payload(3, 3, "ghz3");
    payload.h(0).cx(0, 1).cx(1, 2);
    payload.measureAll();
    const Cost base = costOf(payload);
    costRow("payload (GHZ-3)", base);

    // One paper-style entanglement assertion.
    AssertionSpec spec;
    spec.assertion = std::make_shared<EntanglementAssertion>(3);
    spec.targets = {0, 1, 2};
    spec.insertAt = 3;
    InstrumentOptions opts;
    opts.barriers = false;
    const InstrumentedCircuit asserted =
        instrument(payload, {spec}, opts);
    const Cost with_assert = costOf(asserted.circuit());
    costRow("payload + assertion", with_assert);

    // QEC-style alternative: the [[3,1]] bit-flip-code syndrome
    // readout — two ancillas, four CNOTs, repeated each round, plus
    // it must be followed by classically-controlled correction. We
    // count one round of syndrome extraction only (a lower bound on
    // real QEC cost).
    Circuit qec(5, 5, "bitflip_syndrome");
    qec.h(0).cx(0, 1).cx(1, 2);
    qec.cx(0, 3).cx(1, 3); // syndrome s1 = q0 xor q1
    qec.cx(1, 4).cx(2, 4); // syndrome s2 = q1 xor q2
    qec.measure(3, 3).measure(4, 4);
    qec.measure(0, 0).measure(1, 1).measure(2, 2);
    const Cost qec_cost = costOf(qec);
    costRow("payload + QEC syndrome round", qec_cost);

    bench::note("");
    bench::rowHeader();
    bench::row("assertion ancillas", "1",
               std::to_string(with_assert.qubits - base.qubits));
    bench::row("assertion extra 2q gates", "4 (Fig. 4)",
               std::to_string(with_assert.twoQubit - base.twoQubit));
    bench::row("QEC ancillas (1 round)", "2",
               std::to_string(qec_cost.qubits - base.qubits));
    bench::row("QEC extra 2q gates", "4 + correction",
               std::to_string(qec_cost.twoQubit - base.twoQubit));

    ok = ok && with_assert.qubits - base.qubits == 1;
    ok = ok && with_assert.twoQubit - base.twoQubit == 4;

    // Scaling with payload size: assertion cost stays one ancilla
    // and ~n CNOTs for an n-qubit GHZ check.
    bench::note("");
    bench::note("assertion cost scaling with GHZ size:");
    for (std::size_t n : {2u, 4u, 8u, 16u}) {
        const EntanglementAssertion a(n);
        bench::note("  n = " + std::to_string(n) + ": ancillas = " +
                    std::to_string(a.numAncillas()) + ", CNOTs = " +
                    std::to_string(a.pairParityCnotCount()));
        ok = ok && a.numAncillas() == 1;
    }

    // Runtime cost on the ibmqx4 model: extra wall-clock time.
    const DeviceModel device = DeviceModel::ibmqx4();
    auto duration = [&](const Circuit &c) {
        return scheduleDuration(computeTimedMoments(
            c, [&](const Operation &op) {
                return device.noiseModel().opDuration(op);
            }));
    };
    const double t_base = duration(payload);
    const double t_assert = duration(asserted.circuit());
    bench::note("");
    bench::row("schedule length (ns)", "-",
               formatDouble(t_base, 0) + " -> " +
                   formatDouble(t_assert, 0),
               "payload -> instrumented");
    ok = ok && t_assert > t_base;

    bench::verdict(ok,
                   "a dynamic assertion costs one ancilla and an "
                   "even handful of CNOTs — far below even one QEC "
                   "syndrome round with correction");
    return ok ? 0 : 1;
}
