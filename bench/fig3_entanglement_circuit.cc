/**
 * @file
 * Fig. 3 / Sec. 3.2 reproduction: the two-qubit entanglement (parity)
 * assertion circuit — deterministic pass on Bell states, ancilla
 * disentanglement, error weight on non-entangled inputs, and the
 * projection of passing/failing branches onto parity subspaces.
 */

#include <cmath>
#include <memory>

#include "bench_util.hh"
#include "qra.hh"

using namespace qra;

namespace {

struct CheckedState
{
    double errorProbability = 0.0;
    double ancillaPurity = 1.0;
    StateVector state{1};
};

/** Run the entanglement check on a 2-qubit payload, exactly. */
CheckedState
runCheck(const Circuit &payload,
         EntanglementAssertion::Parity parity)
{
    AssertionSpec spec;
    spec.assertion =
        std::make_shared<EntanglementAssertion>(2, parity);
    spec.targets = {0, 1};
    spec.insertAt = payload.size();
    InstrumentOptions opts;
    opts.barriers = false;
    const InstrumentedCircuit inst = instrument(payload, {spec}, opts);

    Circuit no_measure(inst.circuit().numQubits(), 0);
    for (const Operation &op : inst.circuit().ops())
        if (op.kind != OpKind::Measure)
            no_measure.append(op);

    StatevectorSimulator sim(1);
    CheckedState out;
    out.state = sim.finalState(no_measure);
    const Qubit anc = inst.checks()[0].ancillas[0];
    out.errorProbability = out.state.probabilityOfOne(anc);
    out.ancillaPurity = out.state.qubitPurity(anc);
    return out;
}

} // namespace

int
main()
{
    bench::banner("Figure 3 / Sec 3.2",
                  "dynamic assertion for entanglement (parity)");
    bench::rowHeader();
    bool ok = true;

    // Bell state a|00> + b|11>: ancilla deterministically |0> and
    // unentangled.
    {
        Circuit bell(2, 0);
        bell.h(0).cx(0, 1);
        const CheckedState r =
            runCheck(bell, EntanglementAssertion::Parity::Even);
        bench::row("P(err) on a|00>+b|11>", "0",
                   formatDouble(r.errorProbability, 6));
        bench::row("ancilla purity", "1",
                   formatDouble(r.ancillaPurity, 6),
                   "(paper: psi3 = psi (x) |0>)");
        ok = ok && r.errorProbability < 1e-12 &&
             std::abs(r.ancillaPurity - 1.0) < 1e-9;
    }

    // Odd-parity Bell a|01> + b|10> with the |1>-initialised ancilla.
    {
        Circuit odd(2, 0);
        odd.h(0).cx(0, 1).x(1);
        const CheckedState r =
            runCheck(odd, EntanglementAssertion::Parity::Odd);
        bench::row("P(err) on a|01>+b|10> (odd)", "0",
                   formatDouble(r.errorProbability, 6));
        ok = ok && r.errorProbability < 1e-12;
    }

    // Non-entangled inputs: P(err) equals the odd-parity weight
    // |c|^2 + |d|^2 of a|00>+b|11>+c|10>+d|01>.
    bench::note("");
    bench::note("non-entangled sweep: P(err) vs odd-parity weight");
    for (double theta : {0.5, 1.0, M_PI / 2, 2.2}) {
        Circuit payload(2, 0);
        payload.h(0).cx(0, 1).ry(theta, 1); // rotate out of Bell
        StatevectorSimulator sim(2);
        const auto marginal =
            sim.finalState(payload).marginalProbabilities({0, 1});
        const double odd_weight = marginal[0b01] + marginal[0b10];
        const CheckedState r =
            runCheck(payload, EntanglementAssertion::Parity::Even);
        bench::row("theta = " + formatDouble(theta, 2),
                   formatDouble(odd_weight, 6),
                   formatDouble(r.errorProbability, 6));
        ok = ok &&
             std::abs(r.errorProbability - odd_weight) < 1e-9;
    }

    // Projection claims: |+>|+> forced into an entangled state on
    // either measurement branch.
    bench::note("");
    bench::note("projection of |+>|+> by the ancilla measurement:");
    for (int outcome : {0, 1}) {
        Circuit payload(2, 0);
        payload.h(0).h(1);
        AssertionSpec spec;
        spec.assertion = std::make_shared<EntanglementAssertion>(2);
        spec.targets = {0, 1};
        spec.insertAt = 2;
        const InstrumentedCircuit inst = instrument(payload, {spec});
        Circuit conditioned = inst.circuit();
        conditioned.postSelect(inst.checks()[0].ancillas[0], outcome);
        StatevectorSimulator sim(3);
        const auto marginal = sim.finalState(conditioned)
                                  .marginalProbabilities({0, 1});
        const double inside = outcome
                                  ? marginal[0b01] + marginal[0b10]
                                  : marginal[0b00] + marginal[0b11];
        bench::row("ancilla reads " + std::to_string(outcome),
                   outcome ? "c'|10>+d'|01>" : "a'|00>+b'|11>",
                   "subspace weight " + formatDouble(inside, 6));
        ok = ok && std::abs(inside - 1.0) < 1e-9;
    }

    bench::verdict(ok, "entanglement assertion behaves exactly as "
                       "proven in Sec. 3.2");
    return ok ? 0 : 1;
}
