/**
 * @file
 * Sec. 4.3 reproduction: the superposition assertion on the ibmqx4
 * device model. The qubit under test is put into |+> by an H gate;
 * the assertion ancilla flags errors in ~15.6% of shots on the
 * paper's hardware run. Because the payload measurement of a |+>
 * qubit is uniformly random, the assertion ancilla is the *only*
 * error signal — exactly the situation the paper highlights.
 */

#include <memory>

#include "bench_util.hh"
#include "qra.hh"

using namespace qra;

int
main()
{
    bench::banner("Section 4.3",
                  "superposition assertion on |+>, ibmqx4 model, "
                  "8192 shots");

    const DeviceModel device = DeviceModel::ibmqx4();

    Circuit payload(1, 1, "sec43");
    payload.h(0);
    payload.measure(0, 0);

    AssertionSpec spec;
    spec.assertion = std::make_shared<SuperpositionAssertion>();
    spec.targets = {0};
    spec.insertAt = 1;
    const InstrumentedCircuit inst = instrument(payload, {spec});

    // Qubit under test on q1, ancilla on q0 (CNOT q1->q0 native).
    const Layout paper_layout({1, 0, 2, 3, 4});
    const RoutedCircuit routed =
        routeCircuit(inst.circuit(), device.couplingMap(),
                     paper_layout);
    const DirectionFixResult directed =
        fixDirections(routed.circuit, device.couplingMap());

    bench::note("physical circuit:");
    std::printf("%s\n", directed.circuit.draw().c_str());

    DensityMatrixSimulator sim(2022);
    sim.setNoiseModel(&device.noiseModel());
    const Result result = sim.run(directed.circuit, 8192);

    const AssertionReport report = analyze(inst, result);

    bench::rowHeader();
    bench::row("assertion error rate", "15.6%",
               formatPercent(report.anyErrorRate),
               "(ancilla flags noise on the |+> state)");

    // Payload statistics: ~uniform either way (the paper's point:
    // the output alone cannot reveal the error).
    const double p0 = report.rawPayload.count(0)
                          ? report.rawPayload.at(0)
                          : 0.0;
    bench::row("payload P(0), raw", "~50%", formatPercent(p0),
               "(uninformative with or without errors)");

    // Contrast with the ideal device: no assertion errors at all.
    DensityMatrixSimulator ideal(2023);
    const AssertionReport ideal_report =
        analyze(inst, ideal.run(inst.circuit(), 8192));
    bench::row("ideal-device error rate", "0%",
               formatPercent(ideal_report.anyErrorRate));

    const bool ok = report.anyErrorRate > 0.02 &&
                    report.anyErrorRate < 0.30 &&
                    ideal_report.anyErrorRate < 1e-9;
    bench::verdict(ok,
                   "the assertion ancilla reports a noticeable NISQ "
                   "error rate (paper: 15.6%) that the payload "
                   "measurement alone cannot expose");
    return ok ? 0 : 1;
}
