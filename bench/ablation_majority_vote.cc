/**
 * @file
 * Ablation A8: majority-voted assertion repetition. On NISQ devices
 * the assertion ancilla's own readout error creates false positives
 * that waste shots; repeating the (idempotent) check and voting
 * suppresses them quadratically while keeping genuine errors
 * flagged. Sweeps 1, 3, 5 repetitions under a readout-dominated
 * noise model (ibmqx4-class readout, light gate error).
 */

#include <memory>

#include "bench_util.hh"
#include "qra.hh"

using namespace qra;

namespace {

/** ibmqx4-class readout flips + light gate error, any width. */
NoiseModel
readoutDominatedNoise(std::size_t num_qubits)
{
    NoiseModel noise;
    noise.setGateError(OpKind::CX, 2e-3);
    for (Qubit q = 0; q < num_qubits; ++q)
        noise.setReadoutError(q, ReadoutError(0.03, 0.04));
    return noise;
}

struct VoteResult
{
    double falsePositiveRate; ///< flagged although payload correct
    double keptFraction;
    std::size_t ancillas;
};

VoteResult
runWithRepetitions(std::size_t reps)
{
    // Payload: idle |0> qubit; essentially every flag is a false
    // positive caused by ancilla readout error, the component the
    // vote is designed to remove.
    Circuit payload(1, 1);
    payload.measure(0, 0);

    AssertionSpec spec;
    spec.assertion = std::make_shared<ClassicalAssertion>(0);
    spec.targets = {0};
    spec.insertAt = 0;
    spec.repetitions = reps;
    const InstrumentedCircuit inst = instrument(payload, {spec});

    const NoiseModel noise =
        readoutDominatedNoise(inst.circuit().numQubits());
    DensityMatrixSimulator sim(17);
    sim.setNoiseModel(&noise);
    const AssertionReport report =
        analyze(inst, sim.run(inst.circuit(), 8192));

    VoteResult out;
    out.falsePositiveRate = report.anyErrorRate;
    out.keptFraction = report.keptFraction;
    out.ancillas = inst.circuit().numQubits() - 1;
    return out;
}

} // namespace

int
main()
{
    bench::banner("Ablation A8",
                  "majority-voted assertion repetition under "
                  "readout-dominated noise (idle |0> payload)");

    std::printf("  %-14s %14s %12s %10s\n", "repetitions",
                "flag rate", "kept", "ancillas");
    bool ok = true;
    double previous = 1.0;
    for (std::size_t reps : {1u, 3u, 5u}) {
        const VoteResult r = runWithRepetitions(reps);
        std::printf("  %-14zu %14s %12s %10zu\n", reps,
                    formatPercent(r.falsePositiveRate).c_str(),
                    formatPercent(r.keptFraction).c_str(),
                    r.ancillas);
        // The voted flag rate must drop with each repetition level.
        ok = ok && r.falsePositiveRate < previous;
        previous = r.falsePositiveRate;
    }

    bench::note("");
    bench::note("genuine bugs stay caught: |1> asserted ==|0> with "
                "majority-of-3 on the ideal device:");
    {
        Circuit payload(1, 1);
        payload.x(0);
        payload.measure(0, 0);
        AssertionSpec spec;
        spec.assertion = std::make_shared<ClassicalAssertion>(0);
        spec.targets = {0};
        spec.insertAt = 1;
        spec.repetitions = 3;
        const InstrumentedCircuit inst = instrument(payload, {spec});
        StatevectorSimulator sim(3);
        const AssertionReport report =
            analyze(inst, sim.run(inst.circuit(), 2000));
        bench::row("bug detection rate", "100%",
                   formatPercent(report.anyErrorRate));
        ok = ok && report.anyErrorRate > 0.999;
    }

    bench::verdict(ok,
                   "voting suppresses readout-driven false "
                   "positives monotonically while deterministic "
                   "violations remain always flagged");
    return ok ? 0 : 1;
}
