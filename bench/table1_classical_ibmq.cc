/**
 * @file
 * Table 1 reproduction: the classical assertion on the ibmqx4 device
 * model. The paper asserted (q1 == |0>) with q2 as the ancilla — a
 * choice forced by connectivity: the CNOT q1 -> q2 is not native, so
 * the compiler pays four Hadamards to reverse the native q2 -> q1
 * edge. We reproduce that exact physical configuration.
 *
 * Paper numbers (ibmqx4, labels q1 q2): 00 93.8%, 01 2.7%, 10 2.4%,
 * 11 1.1%; raw error 3.5% -> filtered 2.5%, a 28.5% reduction.
 */

#include <memory>

#include "bench_util.hh"
#include "qra.hh"

using namespace qra;

int
main()
{
    bench::banner("Table 1",
                  "classical assertion (q1 == |0>) on the ibmqx4 "
                  "model, ancilla q2, 8192 shots");

    const DeviceModel device = DeviceModel::ibmqx4();

    // Logical payload: one idle qubit expected to stay |0>.
    Circuit payload(1, 1, "table1");
    payload.measure(0, 0);

    AssertionSpec spec;
    spec.assertion = std::make_shared<ClassicalAssertion>(0);
    spec.targets = {0};
    spec.insertAt = 0;
    const InstrumentedCircuit inst = instrument(payload, {spec});

    // The paper's fixed placement: virtual 0 (qubit under test) on
    // physical q1, virtual 1 (ancilla) on physical q2.
    const Layout paper_layout({1, 2, 0, 3, 4});
    const RoutedCircuit routed =
        routeCircuit(inst.circuit(), device.couplingMap(),
                     paper_layout);
    const DirectionFixResult directed =
        fixDirections(routed.circuit, device.couplingMap());

    bench::note("physical circuit (q1 = qubit under test, q2 = "
                "ancilla; CNOT q1->q2 reversed via 4 H):");
    std::printf("%s\n", directed.circuit.draw().c_str());
    bench::note("reversed CNOTs: " +
                std::to_string(directed.reversedCx));

    DensityMatrixSimulator sim(2020);
    sim.setNoiseModel(&device.noiseModel());
    const Result result = sim.run(directed.circuit, 8192);
    const auto &dist = *result.exactDistribution();

    // Rows in the paper's q1 q2 order: clbit 0 = q1 (payload),
    // clbit 1 = q2 (assertion ancilla).
    struct Row
    {
        const char *label;
        std::uint64_t reg; // bit0 = payload, bit1 = ancilla
        double paper;
        const char *meaning;
    };
    const Row rows[] = {
        {"00", 0b00, 0.938, "no assertion error, q1 is 0"},
        {"01", 0b10, 0.027, "assertion error, q1 is 0"},
        {"10", 0b01, 0.024, "no assertion error, q1 is 1 (FN)"},
        {"11", 0b11, 0.011, "assertion error, q1 is 1"},
    };

    bench::rowHeader();
    for (const Row &r : rows) {
        const auto it = dist.find(r.reg);
        const double p = it == dist.end() ? 0.0 : it->second;
        bench::row(std::string("q1q2 = ") + r.label,
                   formatPercent(r.paper), formatPercent(p),
                   r.meaning);
    }

    // Error-rate accounting, exactly as the paper computes it.
    const stats::ErrorRateReport report = errorRates(
        inst, result,
        [](std::uint64_t payload_bits) { return payload_bits != 0; });

    bench::note("");
    bench::row("raw error rate", "3.5%",
               formatPercent(report.rawErrorRate));
    bench::row("filtered error rate", "2.5%",
               formatPercent(report.filteredErrorRate));
    bench::row("error-rate reduction", "28.5%",
               formatPercent(report.reduction()));

    const bool ok = report.rawErrorRate > 0.01 &&
                    report.rawErrorRate < 0.08 &&
                    report.filteredErrorRate < report.rawErrorRate &&
                    report.reduction() > 0.10 &&
                    report.reduction() < 0.60;
    bench::verdict(ok,
                   "filtering on the assertion ancilla reduces the "
                   "q1 error rate by a double-digit percentage "
                   "(paper: 3.5% -> 2.5%, -28.5%)");
    return ok ? 0 : 1;
}
