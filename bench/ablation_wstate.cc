/**
 * @file
 * Ablation A7: the detection envelope of the parity assertion. The
 * paper's entanglement check asserts GHZ-class correlation; W states
 * are genuinely entangled but live outside the even-parity subspace,
 * so the check flags them — documenting precisely *which* notion of
 * entanglement the circuit certifies.
 */

#include <memory>

#include "bench_util.hh"
#include "qra.hh"

using namespace qra;

namespace {

double
exactErrorProbability(const Circuit &payload,
                      const std::vector<Qubit> &targets)
{
    AssertionSpec spec;
    spec.assertion =
        std::make_shared<EntanglementAssertion>(targets.size());
    spec.targets = targets;
    spec.insertAt = payload.size();
    InstrumentOptions opts;
    opts.barriers = false;
    const InstrumentedCircuit inst = instrument(payload, {spec}, opts);

    Circuit no_measure(inst.circuit().numQubits(), 0);
    for (const Operation &op : inst.circuit().ops())
        if (op.kind != OpKind::Measure)
            no_measure.append(op);
    StatevectorSimulator sim(1);
    return sim.finalState(no_measure)
        .probabilityOfOne(inst.checks()[0].ancillas[0]);
}

} // namespace

int
main()
{
    bench::banner("Ablation A7",
                  "what the parity assertion certifies: GHZ class "
                  "vs W class vs product states");
    bench::rowHeader();
    bool ok = true;

    // GHZ states pass deterministically.
    for (std::size_t n : {2u, 3u, 4u}) {
        const double p = exactErrorProbability(
            library::ghzState(n),
            [&] {
                std::vector<Qubit> t(n);
                for (Qubit q = 0; q < n; ++q)
                    t[q] = q;
                return t;
            }());
        bench::row("GHZ-" + std::to_string(n), "0%",
                   formatPercent(p), "in the certified class");
        ok = ok && p < 1e-12;
    }

    // W states are entangled but flagged: the pair parity of the
    // measured subset is odd with the weight of the one-excitation
    // terms inside it.
    bench::note("");
    for (std::size_t n : {2u, 3u, 4u}) {
        std::vector<Qubit> targets(n);
        for (Qubit q = 0; q < n; ++q)
            targets[q] = q;
        const double p =
            exactErrorProbability(library::wState(n), targets);
        // The check measures parity of the first even-size subset;
        // for a W state exactly the terms with the excitation inside
        // that subset flip it: weight = subset_size / n.
        const std::size_t subset = n % 2 == 0 ? n : n - 1;
        const double expected =
            static_cast<double>(subset) / static_cast<double>(n);
        bench::row("W-" + std::to_string(n),
                   formatPercent(expected), formatPercent(p),
                   "entangled, but outside the class");
        ok = ok && std::abs(p - expected) < 1e-9;
    }

    // Product states sit at 50%.
    bench::note("");
    {
        Circuit plus2(2, 0);
        plus2.h(0).h(1);
        const double p = exactErrorProbability(plus2, {0, 1});
        bench::row("|+>|+> product", "50%", formatPercent(p));
        ok = ok && std::abs(p - 0.5) < 1e-12;
    }

    bench::note("");
    bench::note("takeaway: the Fig. 3 circuit certifies membership "
                "of the even-parity (GHZ-class) subspace, not "
                "entanglement per se. W-class states need the");
    bench::note("basis-rotated or chain variants (see "
                "EntanglementAssertion::Mode) or a different "
                "stabiliser set.");

    bench::verdict(ok,
                   "parity assertion accepts exactly the GHZ-class "
                   "subspace: GHZ 0% error, W-n flagged at "
                   "subset/n, products at 50%");
    return ok ? 0 : 1;
}
