/**
 * @file
 * Fig. 2 / Sec. 3.1 reproduction: the classical-value assertion
 * circuit, checked against every claim in the proof — deterministic
 * behaviour on classical inputs, error probability |b|^2 on superposed
 * inputs, and projection of the qubit under test on both branches.
 */

#include <cmath>
#include <memory>

#include "bench_util.hh"
#include "qra.hh"

using namespace qra;

namespace {

/** Exact ancilla error probability of a single end-of-payload check. */
double
exactErrorProbability(const Circuit &payload,
                      std::shared_ptr<const Assertion> assertion)
{
    AssertionSpec spec;
    spec.assertion = std::move(assertion);
    spec.targets = {0};
    spec.insertAt = payload.size();
    InstrumentOptions opts;
    opts.barriers = false;
    const InstrumentedCircuit inst = instrument(payload, {spec}, opts);

    Circuit no_measure(inst.circuit().numQubits(), 0);
    for (const Operation &op : inst.circuit().ops())
        if (op.kind != OpKind::Measure)
            no_measure.append(op);
    StatevectorSimulator sim(1);
    return sim.finalState(no_measure)
        .probabilityOfOne(inst.checks()[0].ancillas[0]);
}

} // namespace

int
main()
{
    bench::banner("Figure 2 / Sec 3.1",
                  "dynamic assertion for classical values");
    bench::rowHeader();
    bool ok = true;

    // Print the actual circuit once.
    {
        Circuit payload(1, 0, "fig2");
        AssertionSpec spec;
        spec.assertion = std::make_shared<ClassicalAssertion>(0);
        spec.targets = {0};
        spec.insertAt = 0;
        InstrumentOptions opts;
        opts.barriers = false;
        const InstrumentedCircuit inst =
            instrument(payload, {spec}, opts);
        std::printf("%s\n", inst.circuit().draw().c_str());
    }

    // Claim 1: classical inputs are classified deterministically.
    {
        Circuit zero(1, 0);
        const double p0 = exactErrorProbability(
            zero, std::make_shared<ClassicalAssertion>(0));
        bench::row("P(err) |0> assert ==|0>", "0", formatDouble(p0, 6));
        ok = ok && p0 < 1e-12;

        Circuit one(1, 0);
        one.x(0);
        const double p1 = exactErrorProbability(
            one, std::make_shared<ClassicalAssertion>(0));
        bench::row("P(err) |1> assert ==|0>", "1", formatDouble(p1, 6));
        ok = ok && std::abs(p1 - 1.0) < 1e-12;

        const double p2 = exactErrorProbability(
            one, std::make_shared<ClassicalAssertion>(1));
        bench::row("P(err) |1> assert ==|1>", "0", formatDouble(p2, 6));
        ok = ok && p2 < 1e-12;
    }

    // Claim 2: P(err) = |b|^2 for a|0> + b|1> (sweep).
    bench::note("");
    bench::note("sweep a|0>+b|1> asserted ==|0>: P(err) vs |b|^2");
    for (double theta : {0.4, 0.9, M_PI / 2, 2.1, 2.7}) {
        Circuit payload(1, 0);
        payload.ry(theta, 0);
        const double measured = exactErrorProbability(
            payload, std::make_shared<ClassicalAssertion>(0));
        const double expected = std::pow(std::sin(theta / 2.0), 2);
        bench::row("theta = " + formatDouble(theta, 2),
                   formatDouble(expected, 6),
                   formatDouble(measured, 6));
        ok = ok && std::abs(measured - expected) < 1e-9;
    }

    // Claim 3: the paper's projection ("auto-correction") property.
    bench::note("");
    bench::note("projection of the qubit under test (input |+>):");
    for (int outcome : {0, 1}) {
        Circuit payload(1, 0);
        payload.h(0);
        AssertionSpec spec;
        spec.assertion = std::make_shared<ClassicalAssertion>(0);
        spec.targets = {0};
        spec.insertAt = 1;
        const InstrumentedCircuit inst = instrument(payload, {spec});
        Circuit conditioned = inst.circuit();
        conditioned.postSelect(inst.checks()[0].ancillas[0], outcome);
        StatevectorSimulator sim(2);
        const double p1 =
            sim.finalState(conditioned).probabilityOfOne(0);
        bench::row("ancilla reads " + std::to_string(outcome),
                   outcome ? "qubit -> |1>" : "qubit -> |0>",
                   "P(1) = " + formatDouble(p1, 6));
        ok = ok && std::abs(p1 - outcome) < 1e-9;
    }

    bench::verdict(ok, "classical assertion circuit behaves exactly "
                       "as proven in Sec. 3.1");
    return ok ? 0 : 1;
}
