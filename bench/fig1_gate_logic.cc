/**
 * @file
 * Fig. 1 reproduction: the logic functions of the Hadamard and CNOT
 * gates, verified on the simulator against the truth tables the paper
 * states as background.
 */

#include <cmath>

#include "bench_util.hh"
#include "qra.hh"

using namespace qra;

namespace {

std::string
stateString(const StateVector &sv)
{
    std::string out;
    for (BasisIndex i = 0; i < sv.dim(); ++i) {
        const Complex a = sv.amplitude(i);
        if (std::abs(a) < 1e-9)
            continue;
        if (!out.empty())
            out += " + ";
        if (std::abs(a.imag()) < 1e-9) {
            out += formatDouble(a.real(), 3);
        } else {
            out += "(" + formatDouble(a.real(), 3) + "," +
                   formatDouble(a.imag(), 3) + ")";
        }
        out += "|" + toBitstring(i, sv.numQubits()) + ">";
    }
    return out;
}

} // namespace

int
main()
{
    bench::banner("Figure 1", "logic functions of H and CNOT");

    bool ok = true;

    // H|0> = (|0> + |1>)/sqrt2.
    {
        StateVector sv(1);
        sv.applyUnitary({.kind = OpKind::H, .qubits = {0}});
        bench::row("H|0>", "(|0>+|1>)/sqrt2", stateString(sv));
        ok = ok && std::abs(sv.amplitude(0).real() - kInvSqrt2) < 1e-9
                && std::abs(sv.amplitude(1).real() - kInvSqrt2) < 1e-9;
    }

    // H|1> = (|0> - |1>)/sqrt2.
    {
        StateVector sv(1);
        sv.applyUnitary({.kind = OpKind::X, .qubits = {0}});
        sv.applyUnitary({.kind = OpKind::H, .qubits = {0}});
        bench::row("H|1>", "(|0>-|1>)/sqrt2", stateString(sv));
        ok = ok && std::abs(sv.amplitude(0).real() - kInvSqrt2) < 1e-9
                && std::abs(sv.amplitude(1).real() + kInvSqrt2) < 1e-9;
    }

    // CNOT truth table: |psi, delta> -> |psi, psi XOR delta>.
    // Register rendering is |q1 q0> with q0 = control.
    for (int control = 0; control < 2; ++control) {
        for (int target = 0; target < 2; ++target) {
            StateVector sv(2);
            if (control)
                sv.applyUnitary({.kind = OpKind::X, .qubits = {0}});
            if (target)
                sv.applyUnitary({.kind = OpKind::X, .qubits = {1}});
            sv.applyUnitary({.kind = OpKind::CX, .qubits = {0, 1}});

            const int expect_target = target ^ control;
            const BasisIndex expect =
                static_cast<BasisIndex>(control) |
                (static_cast<BasisIndex>(expect_target) << 1);
            const std::string label =
                "CNOT |t=" + std::to_string(target) + ",c=" +
                std::to_string(control) + ">";
            const std::string paper =
                "|t=" + std::to_string(expect_target) + ",c=" +
                std::to_string(control) + ">";
            bench::row(label, paper, stateString(sv));
            ok = ok && std::abs(std::abs(sv.amplitude(expect)) - 1.0)
                           < 1e-9;
        }
    }

    // The algebraic identities behind the assertion circuits.
    bench::note("");
    bench::note("gate-algebra identities used by the proofs:");
    const bool hh = (gates::h() * gates::h()).isIdentity();
    const bool cxcx = (gates::cx() * gates::cx()).isIdentity();
    const bool hxh = (gates::h() * gates::x() * gates::h())
                         .approxEqual(gates::z(), 1e-12);
    bench::row("H·H == I", "true", hh ? "true" : "false");
    bench::row("CNOT·CNOT == I", "true", cxcx ? "true" : "false");
    bench::row("H·X·H == Z", "true", hxh ? "true" : "false");
    ok = ok && hh && cxcx && hxh;

    bench::verdict(ok, "H and CNOT implement the paper's Fig. 1 "
                       "logic functions");
    return ok ? 0 : 1;
}
