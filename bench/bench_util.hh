/**
 * @file
 * Shared output helpers for the benchmark harness: every bench prints
 * a banner, a paper-vs-measured table, and a verdict line, so the
 * whole harness can be eyeballed (or grepped) in one pass.
 */

#ifndef QRA_BENCH_BENCH_UTIL_HH
#define QRA_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/strings.hh"

namespace qra {
namespace bench {

/** Seconds elapsed since @p start (for throughput measurements). */
inline double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Print the bench banner. */
inline void
banner(const std::string &artefact, const std::string &description)
{
    std::printf("==============================================="
                "=================\n");
    std::printf("%s — %s\n", artefact.c_str(), description.c_str());
    std::printf("==============================================="
                "=================\n");
}

/** Print one aligned row of label / paper / measured / note. */
inline void
row(const std::string &label, const std::string &paper,
    const std::string &measured, const std::string &note = "")
{
    std::printf("  %-28s %14s %14s   %s\n", label.c_str(),
                paper.c_str(), measured.c_str(), note.c_str());
}

/** Print the table header for row(). */
inline void
rowHeader()
{
    std::printf("  %-28s %14s %14s\n", "", "paper", "measured");
}

/** Print a free-form note line. */
inline void
note(const std::string &text)
{
    std::printf("  %s\n", text.c_str());
}

/** Print the final verdict: does the measured shape match? */
inline void
verdict(bool ok, const std::string &claim)
{
    std::printf("  -> %s: %s\n\n", ok ? "SHAPE OK" : "SHAPE MISMATCH",
                claim.c_str());
}

} // namespace bench
} // namespace qra

#endif // QRA_BENCH_BENCH_UTIL_HH
