/**
 * @file
 * Table 2 reproduction: the entanglement assertion on the ibmqx4
 * device model. The paper entangles q1 and q2 into (|00>+|11>)/sqrt2
 * and uses q0 as the parity ancilla (both CNOTs q1->q0 and q2->q0
 * are native edges).
 *
 * Paper numbers (labels q0 q1 q2, q0 = ancilla): raw error 18.4% ->
 * filtered 12.6%, a 31.5% improvement.
 */

#include <memory>

#include "bench_util.hh"
#include "qra.hh"

using namespace qra;

int
main()
{
    bench::banner("Table 2",
                  "entanglement assertion on Bell(q1, q2), ancilla "
                  "q0, ibmqx4 model, 8192 shots");

    const DeviceModel device = DeviceModel::ibmqx4();

    // Logical payload: Bell pair, both qubits measured.
    Circuit payload(2, 2, "table2");
    payload.h(0).cx(0, 1);
    payload.measure(0, 0).measure(1, 1);

    AssertionSpec spec;
    spec.assertion = std::make_shared<EntanglementAssertion>(2);
    spec.targets = {0, 1};
    spec.insertAt = 2;
    const InstrumentedCircuit inst = instrument(payload, {spec});

    // Paper placement: virtual {0, 1} -> physical {q1, q2}, the
    // ancilla (virtual 2) -> physical q0.
    const Layout paper_layout({1, 2, 0, 3, 4});
    const RoutedCircuit routed =
        routeCircuit(inst.circuit(), device.couplingMap(),
                     paper_layout);
    const DirectionFixResult directed =
        fixDirections(routed.circuit, device.couplingMap());

    bench::note("physical circuit (Bell on q1,q2; parity ancilla "
                "q0):");
    std::printf("%s\n", directed.circuit.draw().c_str());

    DensityMatrixSimulator sim(2021);
    sim.setNoiseModel(&device.noiseModel());
    const Result result = sim.run(directed.circuit, 8192);
    const auto &dist = *result.exactDistribution();

    // Paper table rows, labels q0 q1 q2 (ancilla first). Our
    // register: bit0 = q1 payload, bit1 = q2 payload, bit2 = ancilla.
    struct Row
    {
        const char *label;
        std::uint64_t reg;
        double paper;
        const char *meaning;
    };
    const Row rows[] = {
        {"000", 0b000, 0.391, "pass, q1 q2 entangled"},
        {"001", 0b010, 0.063, "pass, q1 q2 differ (FN)"},
        {"010", 0b001, 0.044, "pass, q1 q2 differ (FN)"},
        {"011", 0b011, 0.346, "pass, q1 q2 entangled"},
        {"100", 0b100, 0.040, "error flagged (potential FP)"},
        {"101", 0b110, 0.056, "error flagged, q1 q2 differ"},
        {"110", 0b101, 0.021, "error flagged, q1 q2 differ"},
        {"111", 0b111, 0.039, "error flagged (potential FP)"},
    };

    bench::rowHeader();
    for (const Row &r : rows) {
        const auto it = dist.find(r.reg);
        const double p = it == dist.end() ? 0.0 : it->second;
        bench::row(std::string("q0q1q2 = ") + r.label,
                   formatPercent(r.paper), formatPercent(p),
                   r.meaning);
    }

    // Error accounting: payload error = Bell qubits disagree.
    const stats::ErrorRateReport report = errorRates(
        inst, result, [](std::uint64_t payload_bits) {
            return payload_bits == 0b01 || payload_bits == 0b10;
        });

    bench::note("");
    bench::row("raw error rate", "18.4%",
               formatPercent(report.rawErrorRate));
    bench::row("filtered error rate", "12.6%",
               formatPercent(report.filteredErrorRate));
    bench::row("error-rate reduction", "31.5%",
               formatPercent(report.reduction()));
    bench::row("kept fraction", "~86%",
               formatPercent(report.keptFraction));

    const bool ok = report.rawErrorRate > 0.04 &&
                    report.rawErrorRate < 0.35 &&
                    report.filteredErrorRate < report.rawErrorRate &&
                    report.reduction() > 0.10 &&
                    report.reduction() < 0.60;
    bench::verdict(ok,
                   "parity-ancilla filtering reduces the Bell "
                   "mismatch rate by a double-digit percentage "
                   "(paper: 18.4% -> 12.6%, -31.5%)");
    return ok ? 0 : 1;
}
