/**
 * @file
 * Ablation A4: error-rate reduction as a function of device noise
 * scale. Sweeps the ibmqx4 calibration from 0.25x to 4x and reports
 * raw/filtered error rates, the relative reduction, and the shot
 * cost, locating where assertion filtering helps most.
 */

#include <memory>

#include "bench_util.hh"
#include "qra.hh"

using namespace qra;

int
main()
{
    bench::banner("Ablation A4",
                  "assertion filtering vs device noise scale "
                  "(Bell + entanglement assertion)");

    Circuit payload(2, 2, "bell");
    payload.h(0).cx(0, 1);
    payload.measure(0, 0).measure(1, 1);

    AssertionSpec spec;
    spec.assertion = std::make_shared<EntanglementAssertion>(2);
    spec.targets = {0, 1};
    spec.insertAt = 2;
    const InstrumentedCircuit inst = instrument(payload, {spec});

    std::printf("  %-8s %10s %10s %12s %10s\n", "scale", "raw",
                "filtered", "reduction", "kept");

    bool ok = true;
    double previous_raw = -1.0;
    double reduction_at_1x = 0.0;

    for (double scale : {0.25, 0.5, 1.0, 2.0, 4.0}) {
        const DeviceModel device =
            DeviceModel::ibmqx4().scaledNoise(scale);
        const TranspileResult mapped =
            transpile(inst.circuit(), device.couplingMap());

        DensityMatrixSimulator sim(31);
        sim.setNoiseModel(&device.noiseModel());
        const stats::ErrorRateReport report = errorRates(
            inst, sim.run(mapped.circuit, 8192),
            [](std::uint64_t p) { return p == 0b01 || p == 0b10; });

        std::printf("  %-8s %10s %10s %12s %10s\n",
                    (formatDouble(scale, 2) + "x").c_str(),
                    formatPercent(report.rawErrorRate).c_str(),
                    formatPercent(report.filteredErrorRate).c_str(),
                    formatPercent(report.reduction()).c_str(),
                    formatPercent(report.keptFraction).c_str());

        // Shape checks: raw error grows with noise; filtering always
        // helps; kept fraction shrinks with noise.
        ok = ok && report.rawErrorRate > previous_raw;
        previous_raw = report.rawErrorRate;
        if (report.rawErrorRate > 1e-6)
            ok = ok &&
                 report.filteredErrorRate <= report.rawErrorRate;
        if (scale == 1.0)
            reduction_at_1x = report.reduction();
    }

    bench::note("");
    bench::note("paper operating point (1x): reduction " +
                formatPercent(reduction_at_1x) +
                " (paper reports 31.5% on hardware)");
    ok = ok && reduction_at_1x > 0.10 && reduction_at_1x < 0.60;

    bench::verdict(ok,
                   "filtering helps across the sweep, with raw error "
                   "monotone in noise scale and a ~30%-class "
                   "reduction at the calibrated 1x point");
    return ok ? 0 : 1;
}
