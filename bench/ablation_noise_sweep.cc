/**
 * @file
 * Ablation A4: error-rate reduction as a function of device noise
 * scale. Sweeps the ibmqx4 calibration from 0.25x to 4x and reports
 * raw/filtered error rates, the relative reduction, and the shot
 * cost, locating where assertion filtering helps most.
 *
 * The whole sweep is submitted as one batch through the runtime
 * JobQueue: five noise points share a single prepared (instrumented
 * + transpiled) circuit via the preparation cache, and their shards
 * interleave on the engine's thread pool.
 */

#include <memory>
#include <vector>

#include "bench_util.hh"
#include "qra.hh"

using namespace qra;
using namespace qra::runtime;

int
main()
{
    bench::banner("Ablation A4",
                  "assertion filtering vs device noise scale "
                  "(Bell + entanglement assertion)");

    Circuit payload(2, 2, "bell");
    payload.h(0).cx(0, 1);
    payload.measure(0, 0).measure(1, 1);

    AssertionSpec spec;
    spec.assertion = std::make_shared<EntanglementAssertion>(2);
    spec.targets = {0, 1};
    spec.insertAt = 2;

    const std::vector<double> scales = {0.25, 0.5, 1.0, 2.0, 4.0};
    std::vector<DeviceModel> devices;
    for (const double scale : scales)
        devices.push_back(DeviceModel::ibmqx4().scaledNoise(scale));

    // One batch: five noise points over one shared prepared circuit.
    ExecutionEngine engine;
    JobQueue queue(engine);
    std::vector<JobSpec> jobs;
    for (const DeviceModel &device : devices) {
        JobSpec job;
        job.circuit = payload;
        job.shots = 8192;
        job.backend = "density";
        job.seed = 31;
        job.noise = &device.noiseModel();
        job.coupling = &device.couplingMap();
        job.assertions = {spec};
        jobs.push_back(job);
    }
    const std::vector<Result> results = queue.runAll(jobs);
    const auto inst = queue.instrumented(jobs.front());

    std::printf("  %-8s %10s %10s %12s %10s\n", "scale", "raw",
                "filtered", "reduction", "kept");

    bool ok = true;
    double previous_raw = -1.0;
    double reduction_at_1x = 0.0;

    for (std::size_t i = 0; i < scales.size(); ++i) {
        const double scale = scales[i];
        const stats::ErrorRateReport report = errorRates(
            *inst, results[i],
            [](std::uint64_t p) { return p == 0b01 || p == 0b10; });

        std::printf("  %-8s %10s %10s %12s %10s\n",
                    (formatDouble(scale, 2) + "x").c_str(),
                    formatPercent(report.rawErrorRate).c_str(),
                    formatPercent(report.filteredErrorRate).c_str(),
                    formatPercent(report.reduction()).c_str(),
                    formatPercent(report.keptFraction).c_str());

        // Shape checks: raw error grows with noise; filtering always
        // helps; kept fraction shrinks with noise.
        ok = ok && report.rawErrorRate > previous_raw;
        previous_raw = report.rawErrorRate;
        if (report.rawErrorRate > 1e-6)
            ok = ok &&
                 report.filteredErrorRate <= report.rawErrorRate;
        if (scale == 1.0)
            reduction_at_1x = report.reduction();
    }

    bench::note("");
    bench::note("prepare cache over the sweep: " +
                std::to_string(queue.cacheMisses()) + " miss, " +
                std::to_string(queue.cacheHits()) + " hits");
    ok = ok && queue.cacheMisses() == 1 && queue.cacheHits() == 4;

    bench::note("paper operating point (1x): reduction " +
                formatPercent(reduction_at_1x) +
                " (paper reports 31.5% on hardware)");
    ok = ok && reduction_at_1x > 0.10 && reduction_at_1x < 0.60;

    bench::verdict(ok,
                   "filtering helps across the sweep, with raw error "
                   "monotone in noise scale and a ~30%-class "
                   "reduction at the calibrated 1x point");
    return ok ? 0 : 1;
}
