/**
 * @file
 * Fig. 4 reproduction: asserting that three (and more) qubits are
 * entangled with a single ancilla and an *even* number of CNOTs, the
 * structural rule Sec. 3.2 derives.
 */

#include <memory>

#include "bench_util.hh"
#include "qra.hh"

using namespace qra;

namespace {

/** GHZ state preparation over n qubits. */
Circuit
ghz(std::size_t n)
{
    Circuit c(n, 0, "ghz" + std::to_string(n));
    c.h(0);
    for (Qubit q = 0; q + 1 < n; ++q)
        c.cx(q, q + 1);
    return c;
}

} // namespace

int
main()
{
    bench::banner("Figure 4",
                  "entanglement assertion for 3+ qubits (even CNOT "
                  "count)");
    bench::rowHeader();
    bool ok = true;

    for (std::size_t n : {2u, 3u, 4u, 5u}) {
        const EntanglementAssertion assertion(n);
        const std::size_t cnots = assertion.pairParityCnotCount();

        // Build and run the check on a GHZ payload.
        Circuit payload = ghz(n);
        AssertionSpec spec;
        spec.assertion = std::make_shared<EntanglementAssertion>(n);
        std::vector<Qubit> targets(n);
        for (Qubit q = 0; q < n; ++q)
            targets[q] = q;
        spec.targets = targets;
        spec.insertAt = payload.size();
        InstrumentOptions opts;
        opts.barriers = false;
        const InstrumentedCircuit inst =
            instrument(payload, {spec}, opts);

        // Exact: ancilla must read 0, GHZ must survive.
        Circuit no_measure(inst.circuit().numQubits(), 0);
        for (const Operation &op : inst.circuit().ops())
            if (op.kind != OpKind::Measure)
                no_measure.append(op);
        StatevectorSimulator sim(1);
        const StateVector sv = sim.finalState(no_measure);
        const Qubit anc = inst.checks()[0].ancillas[0];

        const double p_err = sv.probabilityOfOne(anc);
        const double purity = sv.qubitPurity(anc);
        bench::row(std::to_string(n) + "-qubit GHZ: CNOTs",
                   n % 2 ? std::to_string(n + 1)
                         : std::to_string(n),
                   std::to_string(cnots),
                   "(even count required)");
        bench::row("  P(assertion error)", "0",
                   formatDouble(p_err, 6));
        bench::row("  ancilla purity", "1", formatDouble(purity, 6));
        ok = ok && cnots % 2 == 0 && p_err < 1e-12 &&
             std::abs(purity - 1.0) < 1e-9;
    }

    // GHZ survives the measurement: full payload marginal intact.
    bench::note("");
    {
        Circuit payload = ghz(3);
        AssertionSpec spec;
        spec.assertion = std::make_shared<EntanglementAssertion>(3);
        spec.targets = {0, 1, 2};
        spec.insertAt = payload.size();
        const InstrumentedCircuit inst = instrument(payload, {spec});
        StatevectorSimulator sim(2);
        const StateVector sv =
            sim.evolveWithMeasurements(inst.circuit());
        const auto marginal = sv.marginalProbabilities({0, 1, 2});
        bench::row("GHZ after measured check", "0.5 / 0.5",
                   formatDouble(marginal[0b000], 3) + " / " +
                       formatDouble(marginal[0b111], 3),
                   "(P(000) / P(111))");
        ok = ok && std::abs(marginal[0b000] - 0.5) < 1e-9 &&
             std::abs(marginal[0b111] - 0.5) < 1e-9;
    }

    bench::verdict(ok, "multi-qubit entanglement assertion uses an "
                       "even CNOT count and leaves GHZ intact");
    return ok ? 0 : 1;
}
