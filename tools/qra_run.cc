/**
 * @file
 * qra_run — command-line assertion runner.
 *
 * Reads an OpenQASM 2.0 file annotated with `// qra:assert-*`
 * directives, instruments it, executes it through the runtime
 * execution engine on a registry backend, and prints the assertion
 * report plus the (raw and filtered) payload distribution.
 *
 * Usage:
 *   qra_run FILE.qasm [--shots N] [--device ideal|ibmqx4]
 *           [--backend NAME|auto] [--jobs N] [--threads N]
 *           [--intra-threads N] [--fusion 0|1|2] [--seed S]
 *           [--passes legacy|postlayout] [--auto-assert]
 *           [--max-checks N] [--min-depth N] [--reuse-ancillas]
 *           [--no-barriers] [--target-halfwidth W] [--min-shots N]
 *           [--wave-shots N] [--simd scalar|portable|avx2|avx512]
 *           [--deadline-ms MS] [--retries N] [--inject-fault=SPEC]
 *           [--metrics[=FILE]] [--trace=FILE]
 *           [--trace-jsonl=FILE] [--dump-pipeline] [--draw]
 *   qra_run --list-backends
 *   qra_run --list-simd
 *
 * --target-halfwidth enables confidence-driven early stopping: shots
 * run in waves and stop once the any-assertion error rate's Wilson
 * 95% half-width is at or below W (requires qra:assert-* directives;
 * --shots becomes the budget rather than a fixed count).
 *
 * --auto-assert derives checks statically: the compile pipeline runs
 * the analyze pass (tableau-prefix / separability / known-basis
 * dataflow) and injects the assertions it can prove, subject to
 * --max-checks and --min-depth; qra:assert-* directives in the file
 * are woven in alongside the derived checks. --dump-pipeline shows
 * the resulting pass list.
 *
 * Robustness: --deadline-ms cancels the run once the wall clock
 * passes MS milliseconds (the partial result is reported, exit 3);
 * --retries N re-runs transiently failed shards up to N extra times
 * with their original RNG streams (recovered counts are bit-identical
 * to a fault-free run); --inject-fault installs a deterministic
 * fault plan (grammar in runtime/fault.hh, e.g. shard:2:throw) for
 * exercising those paths end to end.
 *
 * Telemetry: --metrics prints a metrics table after the report
 * (--metrics=FILE writes the JSON snapshot instead); --trace=FILE
 * writes Chrome trace-event JSON (open in Perfetto or
 * chrome://tracing), --trace-jsonl=FILE the same events as JSON
 * lines. Either flag routes execution through the streaming wave
 * path so traces contain prepare, per-pass, shard, and wave spans —
 * counts are bit-identical to the plain path.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "assertions/directives.hh"
#include "qra.hh"

using namespace qra;
using namespace qra::runtime;

namespace {

struct Options
{
    std::string file;
    std::size_t shots = 8192;
    std::string device = "ideal";
    std::string backend = "auto";
    std::size_t jobs = 1;
    std::size_t threads = 0;      // 0 = hardware concurrency
    std::size_t intraThreads = 0; // 0 = auto (pool / shards)
    int fusion = kernels::kFusionDefault; // 0 none, 1 runs, 2 windows
    std::uint64_t seed = 7;
    compile::InjectionStrategy injection =
        compile::InjectionStrategy::PreLayout;
    bool autoAssert = false;
    compile::AutoAssertOptions autoOptions;
    bool reuseAncillas = false;
    bool barriers = true;
    double targetHalfWidth = 0.0; // 0 = fixed-shot execution
    std::size_t minShots = 0;
    std::size_t waveShots = 0;
    double deadlineMs = 0.0; // 0 = none
    std::size_t retries = 0; // extra attempts per shard
    std::string faultSpec;   // "" = no injection
    bool metricsStdout = false;
    std::string metricsFile;
    std::string traceFile;
    std::string traceJsonlFile;
    bool dumpPipeline = false;
    bool draw = false;
    bool listBackends = false;
    int simdTier = -1; // -1 = auto (cpuid + QRA_SIMD)
    bool listSimd = false;
};

void
usage()
{
    std::fprintf(
        stderr,
        "usage: qra_run FILE.qasm [--shots N] [--device "
        "ideal|ibmqx4]\n"
        "               [--backend NAME|auto] [--jobs N] "
        "[--threads N]\n"
        "               [--intra-threads N] [--fusion 0|1|2] [--seed "
        "S]\n"
        "               [--passes legacy|postlayout] "
        "[--auto-assert]\n"
        "               [--max-checks N] [--min-depth N] "
        "[--reuse-ancillas]\n"
        "               [--no-barriers] [--target-halfwidth W]\n"
        "               [--min-shots N] [--wave-shots N]\n"
        "               [--simd scalar|portable|avx2|avx512]\n"
        "               [--deadline-ms MS] [--retries N]\n"
        "               [--inject-fault=SPEC]\n"
        "               [--metrics[=FILE]] [--trace=FILE]\n"
        "               [--trace-jsonl=FILE]\n"
        "               [--dump-pipeline] [--draw]\n"
        "       qra_run --list-backends\n"
        "       qra_run --list-simd\n");
}

bool
parseArgs(int argc, char **argv, Options &opts)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "--shots") {
            const char *v = next();
            if (!v)
                return false;
            opts.shots = std::strtoull(v, nullptr, 10);
        } else if (arg == "--device") {
            const char *v = next();
            if (!v)
                return false;
            opts.device = v;
        } else if (arg == "--backend") {
            const char *v = next();
            if (!v)
                return false;
            opts.backend = v;
        } else if (arg == "--jobs") {
            const char *v = next();
            if (!v)
                return false;
            opts.jobs = std::strtoull(v, nullptr, 10);
            if (opts.jobs == 0) {
                std::fprintf(stderr, "--jobs must be >= 1\n");
                return false;
            }
        } else if (arg == "--threads") {
            const char *v = next();
            if (!v)
                return false;
            opts.threads = std::strtoull(v, nullptr, 10);
        } else if (arg == "--intra-threads") {
            const char *v = next();
            if (!v)
                return false;
            opts.intraThreads = std::strtoull(v, nullptr, 10);
        } else if (arg == "--fusion") {
            const char *v = next();
            if (!v)
                return false;
            opts.fusion = static_cast<int>(std::strtol(v, nullptr, 10));
            if (opts.fusion < kernels::kFusionNone ||
                opts.fusion > kernels::kFusion2q) {
                std::fprintf(stderr, "--fusion must be 0, 1 or 2\n");
                return false;
            }
        } else if (arg == "--seed") {
            const char *v = next();
            if (!v)
                return false;
            opts.seed = std::strtoull(v, nullptr, 10);
        } else if (arg == "--passes") {
            const char *v = next();
            if (!v)
                return false;
            if (std::strcmp(v, "legacy") == 0) {
                opts.injection = compile::InjectionStrategy::PreLayout;
            } else if (std::strcmp(v, "postlayout") == 0) {
                opts.injection =
                    compile::InjectionStrategy::PostLayout;
            } else {
                std::fprintf(stderr, "--passes must be legacy or "
                                     "postlayout\n");
                return false;
            }
        } else if (arg == "--auto-assert") {
            opts.autoAssert = true;
        } else if (arg == "--max-checks") {
            const char *v = next();
            if (!v)
                return false;
            opts.autoOptions.maxChecks =
                std::strtoull(v, nullptr, 10);
        } else if (arg == "--min-depth") {
            const char *v = next();
            if (!v)
                return false;
            opts.autoOptions.minPrefixDepth =
                std::strtoull(v, nullptr, 10);
        } else if (arg == "--target-halfwidth") {
            const char *v = next();
            if (!v)
                return false;
            opts.targetHalfWidth = std::strtod(v, nullptr);
            if (opts.targetHalfWidth <= 0.0 ||
                opts.targetHalfWidth >= 1.0) {
                std::fprintf(stderr, "--target-halfwidth must be in "
                                     "(0, 1)\n");
                return false;
            }
        } else if (arg == "--min-shots") {
            const char *v = next();
            if (!v)
                return false;
            opts.minShots = std::strtoull(v, nullptr, 10);
        } else if (arg == "--wave-shots") {
            const char *v = next();
            if (!v)
                return false;
            opts.waveShots = std::strtoull(v, nullptr, 10);
        } else if (arg == "--deadline-ms") {
            const char *v = next();
            if (!v)
                return false;
            opts.deadlineMs = std::strtod(v, nullptr);
            if (opts.deadlineMs <= 0.0) {
                std::fprintf(stderr,
                             "--deadline-ms must be positive\n");
                return false;
            }
        } else if (arg == "--retries") {
            const char *v = next();
            if (!v)
                return false;
            opts.retries = std::strtoull(v, nullptr, 10);
        } else if (arg.rfind("--retries=", 0) == 0) {
            opts.retries = std::strtoull(
                arg.c_str() + std::strlen("--retries="), nullptr, 10);
        } else if (arg == "--inject-fault" ||
                   arg.rfind("--inject-fault=", 0) == 0) {
            if (arg == "--inject-fault") {
                const char *v = next();
                if (!v)
                    return false;
                opts.faultSpec = v;
            } else {
                opts.faultSpec =
                    arg.substr(std::strlen("--inject-fault="));
            }
        } else if (arg == "--simd" || arg.rfind("--simd=", 0) == 0) {
            const char *v;
            if (arg == "--simd") {
                v = next();
                if (!v)
                    return false;
            } else {
                v = arg.c_str() + std::strlen("--simd=");
            }
            kernels::simd::Tier tier;
            if (!kernels::simd::parseTier(v, &tier)) {
                std::fprintf(stderr, "--simd must be scalar, portable, "
                                     "avx2 or avx512\n");
                return false;
            }
            opts.simdTier = static_cast<int>(tier);
        } else if (arg == "--metrics") {
            opts.metricsStdout = true;
        } else if (arg.rfind("--metrics=", 0) == 0) {
            opts.metricsFile = arg.substr(std::strlen("--metrics="));
        } else if (arg == "--trace-jsonl" ||
                   arg.rfind("--trace-jsonl=", 0) == 0) {
            if (arg == "--trace-jsonl") {
                const char *v = next();
                if (!v)
                    return false;
                opts.traceJsonlFile = v;
            } else {
                opts.traceJsonlFile =
                    arg.substr(std::strlen("--trace-jsonl="));
            }
        } else if (arg == "--trace" || arg.rfind("--trace=", 0) == 0) {
            if (arg == "--trace") {
                const char *v = next();
                if (!v)
                    return false;
                opts.traceFile = v;
            } else {
                opts.traceFile = arg.substr(std::strlen("--trace="));
            }
        } else if (arg == "--reuse-ancillas") {
            opts.reuseAncillas = true;
        } else if (arg == "--no-barriers") {
            opts.barriers = false;
        } else if (arg == "--dump-pipeline") {
            opts.dumpPipeline = true;
        } else if (arg == "--draw") {
            opts.draw = true;
        } else if (arg == "--list-backends") {
            opts.listBackends = true;
        } else if (arg == "--list-simd") {
            opts.listSimd = true;
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
            return false;
        } else if (opts.file.empty()) {
            opts.file = arg;
        } else {
            std::fprintf(stderr, "unexpected argument %s\n",
                         arg.c_str());
            return false;
        }
    }
    return opts.listBackends || opts.listSimd || !opts.file.empty();
}

void
listBackends()
{
    std::printf("%-14s %-6s %-12s %-6s %-10s %s\n", "name", "noise",
                "mid-measure", "exact", "max-qubits", "sharding");
    for (const std::string &name :
         BackendRegistry::global().names()) {
        const BackendPtr backend =
            BackendRegistry::global().create(name);
        const BackendCapabilities &caps = backend->capabilities();
        std::printf("%-14s %-6s %-12s %-6s %-10zu %s\n", name.c_str(),
                    caps.supportsNoise ? "yes" : "no",
                    caps.supportsMidCircuitMeasurement ? "yes" : "no",
                    caps.exactDistribution ? "yes" : "no",
                    caps.maxQubits,
                    caps.shardable ? "parallel" : "single");
    }
}

void
listSimd()
{
    using namespace qra::kernels::simd;
    std::printf("compiled: %s\n", tierName(compiledTier()));
    std::printf("detected: %s\n", tierName(detectedTier()));
    std::printf("selected: %s%s\n", tierName(currentTier()),
                std::getenv("QRA_SIMD") ? " (QRA_SIMD)" : "");
    std::printf("available:");
    for (Tier tier : availableTiers())
        std::printf(" %s", tierName(tier));
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    if (!parseArgs(argc, argv, opts)) {
        usage();
        return 2;
    }
    if (opts.listBackends) {
        listBackends();
        return 0;
    }
    if (opts.listSimd) {
        listSimd();
        return 0;
    }

    // Telemetry switches must be on before any engine work so every
    // span/counter of the run is captured.
    const bool want_metrics =
        opts.metricsStdout || !opts.metricsFile.empty();
    const bool want_trace =
        !opts.traceFile.empty() || !opts.traceJsonlFile.empty();
    obs::setMetricsEnabled(want_metrics);
    obs::setTracingEnabled(want_trace);

    std::ifstream in(opts.file);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", opts.file.c_str());
        return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();

    try {
        const AnnotatedProgram program =
            parseAnnotatedQasm(buffer.str());

        // Device model selection governs both the transpile target
        // and the noise the simulator applies.
        const NoiseModel *noise = nullptr;
        const CouplingMap *coupling = nullptr;
        std::optional<DeviceModel> device;
        if (opts.device == "ibmqx4") {
            device.emplace(DeviceModel::ibmqx4());
            noise = &device->noiseModel();
            coupling = &device->couplingMap();
        } else if (opts.device != "ideal") {
            std::fprintf(stderr, "unknown device '%s'\n",
                         opts.device.c_str());
            return 2;
        }

        // One spec per job; jobs split the shot budget and get
        // independent seed streams, so --jobs N models N submissions
        // of the same program batched through the queue.
        JobSpec spec;
        spec.circuit = program.payload;
        spec.backend = opts.backend;
        spec.noise = noise;
        spec.coupling = coupling;
        spec.assertions = program.specs;
        spec.instrumentOptions.reuseAncillas = opts.reuseAncillas;
        spec.instrumentOptions.barriers = opts.barriers;
        spec.injection = opts.injection;
        if (opts.autoAssert) {
            // Statically derived checks; any qra:assert-* directives
            // in the file are woven in alongside them.
            spec.injection =
                compile::InjectionStrategy::AutoGenerate;
            spec.autoAssert = opts.autoOptions;
        }
        if (opts.targetHalfWidth > 0.0) {
            // Confidence-driven early stopping on the any-assertion
            // error rate; --shots is the per-job budget.
            spec.stopping.statistic =
                StoppingRule::Statistic::AnyError;
            spec.stopping.targetHalfWidth = opts.targetHalfWidth;
            spec.stopping.minShots = opts.minShots;
            spec.stopping.waveShots = opts.waveShots;
        }
        spec.deadlineMs = opts.deadlineMs;
        if (opts.retries > 0)
            spec.retry.maxAttempts = opts.retries + 1;
        if (!opts.faultSpec.empty())
            spec.faults = std::make_shared<const FaultPlan>(
                FaultPlan::parse(opts.faultSpec));

        if (opts.dumpPipeline) {
            // The declarative compile recipe this run would use, with
            // its stable fingerprint — goldenable output for CI.
            // Printed before any engine (thread pool) comes up: the
            // flag runs nothing.
            std::printf("%s\n",
                        compile::preparePipeline(prepareSpec(spec))
                            .describe()
                            .c_str());
            return 0;
        }

        EngineOptions engine_options{.threads = opts.threads,
                                     .intraThreads = opts.intraThreads,
                                     .fusionLevel = opts.fusion,
                                     .simdTier = opts.simdTier};
        // Waves are shard-granular; an explicit wave size also sizes
        // the shards so stopping can trigger at that granularity
        // (shardable backends only — density stays single-shard).
        if (opts.targetHalfWidth > 0.0 && opts.waveShots > 0)
            engine_options.shardShots = opts.waveShots;
        ExecutionEngine engine(engine_options);
        JobQueue queue(engine);

        std::vector<JobSpec> batch;
        for (std::size_t job = 0; job < opts.jobs; ++job) {
            spec.shots = opts.shots / opts.jobs +
                         (job < opts.shots % opts.jobs ? 1 : 0);
            spec.seed = splitSeed(opts.seed, 0x10000 + job);
            batch.push_back(spec);
        }

        std::vector<Result> results(batch.size());
        std::size_t waves = 0;
        // Telemetry also routes through the streaming wave path so
        // the trace contains wave spans; with a disabled stopping
        // rule every wave runs and counts are bit-identical to the
        // plain path.
        if (opts.targetHalfWidth > 0.0 || want_trace || want_metrics) {
            // Streaming submission: count waves across the batch and
            // let each job stop as soon as its interval is tight.
            std::mutex mutex;
            std::exception_ptr first_error;
            for (std::size_t i = 0; i < batch.size(); ++i)
                queue.submit(
                    batch[i],
                    [&](const Result &, const StoppingStatus &) {
                        std::lock_guard<std::mutex> lock(mutex);
                        ++waves;
                    },
                    [&, i](Result partial, std::exception_ptr error) {
                        std::lock_guard<std::mutex> lock(mutex);
                        if (error && !first_error)
                            first_error = error;
                        results[i] = std::move(partial);
                    });
            queue.waitIdle();
            if (first_error)
                std::rethrow_exception(first_error);
        } else {
            results = queue.runAll(batch);
        }

        Result result(results.front().numClbits());
        for (const Result &partial : results)
            result.merge(partial);

        // Plain QASM (no qra:assert-* directives) still runs; the
        // report then has no checks and filtering is the identity.
        std::shared_ptr<const InstrumentedCircuit> inst =
            queue.instrumented(batch.front());
        if (!inst)
            inst = std::make_shared<const InstrumentedCircuit>(
                instrument(program.payload, {}));

        if (opts.draw)
            std::printf("%s\n", inst->circuit().draw().c_str());

        std::printf("backend: %s, device: %s, shots: %zu, jobs: %zu, "
                    "threads: %zu (prepare cache: %zu hit%s)\n\n",
                    opts.backend.c_str(), opts.device.c_str(),
                    result.shots(), opts.jobs, engine.threads(),
                    queue.cacheHits(),
                    queue.cacheHits() == 1 ? "" : "s");

        if (result.cancelled())
            std::printf("cancelled (%s): %zu of %zu requested shots "
                        "completed before the cutoff\n\n",
                        result.cancelReason().c_str(), result.shots(),
                        result.shotsRequested());

        if (opts.targetHalfWidth > 0.0) {
            // Pooled convergence summary over the merged batch.
            const StoppingStatus pooled = evaluateStopping(
                batch.front().stopping, result, inst.get());
            std::printf("early stopping: used %zu of %zu requested "
                        "shots in %zu wave%s (%s); pooled %s +/- %s "
                        "(target %s)\n\n",
                        result.shots(), result.shotsRequested(),
                        waves, waves == 1 ? "" : "s",
                        result.stoppedEarly() ? "stopped early"
                                              : "budget exhausted",
                        formatPercent(pooled.estimate).c_str(),
                        formatPercent(pooled.halfWidth).c_str(),
                        formatPercent(opts.targetHalfWidth).c_str());
        }

        const AssertionReport report = analyze(*inst, result);
        std::printf("%s\n", report.str(*inst).c_str());

        std::printf("raw payload:      %s\n",
                    stats::distributionToString(
                        report.rawPayload, inst->payloadClbits())
                        .c_str());
        std::printf("filtered payload: %s\n",
                    stats::distributionToString(
                        report.filteredPayload, inst->payloadClbits())
                        .c_str());

        // Telemetry exports, after the instrumented work quiesced.
        if (!opts.traceFile.empty()) {
            std::ofstream trace_out(opts.traceFile);
            if (!trace_out) {
                std::fprintf(stderr, "cannot write %s\n",
                             opts.traceFile.c_str());
                return 2;
            }
            obs::Tracer::global().writeChromeJson(trace_out);
        }
        if (!opts.traceJsonlFile.empty()) {
            std::ofstream jsonl_out(opts.traceJsonlFile);
            if (!jsonl_out) {
                std::fprintf(stderr, "cannot write %s\n",
                             opts.traceJsonlFile.c_str());
                return 2;
            }
            obs::Tracer::global().writeJsonLines(jsonl_out);
        }
        if (want_metrics) {
            const obs::MetricsSnapshot snap =
                obs::MetricsRegistry::global().snapshot();
            if (opts.metricsFile.empty()) {
                std::printf("\nmetrics:\n%s", snap.str().c_str());
            } else {
                std::ofstream metrics_out(opts.metricsFile);
                if (!metrics_out) {
                    std::fprintf(stderr, "cannot write %s\n",
                                 opts.metricsFile.c_str());
                    return 2;
                }
                metrics_out << snap.toJson() << "\n";
            }
        }

        // Exit status mirrors the assertion outcome so the tool can
        // gate CI pipelines: 0 = all checks clean (on an ideal
        // device) or mostly clean (noisy), 1 = a check fired hard,
        // 3 = the run was cancelled (deadline) with a partial result.
        if (result.cancelled())
            return 3;
        const bool failed = report.anyErrorRate > 0.45;
        return failed ? 1 : 0;
    } catch (const Error &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    } catch (const std::exception &e) {
        // Injected bad_alloc / stall faults and other stdlib errors
        // get the same clean one-liner as runtime Errors.
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
}
