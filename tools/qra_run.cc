/**
 * @file
 * qra_run — command-line assertion runner.
 *
 * Reads an OpenQASM 2.0 file annotated with `// qra:assert-*`
 * directives, instruments it, executes it on a chosen backend and
 * device model, and prints the assertion report plus the (raw and
 * filtered) payload distribution.
 *
 * Usage:
 *   qra_run FILE.qasm [--shots N] [--device ideal|ibmqx4]
 *           [--backend auto|statevector|density|trajectory|stabilizer]
 *           [--seed S] [--draw]
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "assertions/directives.hh"
#include "qra.hh"
#include "stabilizer/stabilizer_simulator.hh"

using namespace qra;

namespace {

struct Options
{
    std::string file;
    std::size_t shots = 8192;
    std::string device = "ideal";
    std::string backend = "auto";
    std::uint64_t seed = 7;
    bool draw = false;
};

void
usage()
{
    std::fprintf(
        stderr,
        "usage: qra_run FILE.qasm [--shots N] [--device "
        "ideal|ibmqx4]\n"
        "               [--backend auto|statevector|density|"
        "trajectory|stabilizer]\n"
        "               [--seed S] [--draw]\n");
}

bool
parseArgs(int argc, char **argv, Options &opts)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "--shots") {
            const char *v = next();
            if (!v)
                return false;
            opts.shots = std::strtoull(v, nullptr, 10);
        } else if (arg == "--device") {
            const char *v = next();
            if (!v)
                return false;
            opts.device = v;
        } else if (arg == "--backend") {
            const char *v = next();
            if (!v)
                return false;
            opts.backend = v;
        } else if (arg == "--seed") {
            const char *v = next();
            if (!v)
                return false;
            opts.seed = std::strtoull(v, nullptr, 10);
        } else if (arg == "--draw") {
            opts.draw = true;
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
            return false;
        } else if (opts.file.empty()) {
            opts.file = arg;
        } else {
            std::fprintf(stderr, "unexpected argument %s\n",
                         arg.c_str());
            return false;
        }
    }
    return !opts.file.empty();
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    if (!parseArgs(argc, argv, opts)) {
        usage();
        return 2;
    }

    std::ifstream in(opts.file);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", opts.file.c_str());
        return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();

    try {
        const InstrumentedCircuit inst =
            instrumentAnnotatedQasm(buffer.str());
        Circuit circuit = inst.circuit();

        // Map to the device if one was requested.
        if (opts.device == "ibmqx4") {
            const DeviceModel device = DeviceModel::ibmqx4();
            const TranspileResult mapped =
                transpile(circuit, device.couplingMap());
            std::printf("%s\n", mapped.str().c_str());
            circuit = mapped.circuit;
        } else if (opts.device != "ideal") {
            std::fprintf(stderr, "unknown device '%s'\n",
                         opts.device.c_str());
            return 2;
        }

        if (opts.draw)
            std::printf("%s\n", circuit.draw().c_str());

        // Pick the backend.
        std::string backend = opts.backend;
        if (backend == "auto") {
            if (opts.device == "ibmqx4")
                backend = "density";
            else if (StabilizerSimulator::supports(circuit) &&
                     circuit.numQubits() > 16)
                backend = "stabilizer";
            else
                backend = "statevector";
        }

        Result result;
        const DeviceModel device = DeviceModel::ibmqx4();
        if (backend == "statevector") {
            StatevectorSimulator sim(opts.seed);
            result = sim.run(circuit, opts.shots);
        } else if (backend == "density") {
            DensityMatrixSimulator sim(opts.seed);
            if (opts.device == "ibmqx4")
                sim.setNoiseModel(&device.noiseModel());
            result = sim.run(circuit, opts.shots);
        } else if (backend == "trajectory") {
            TrajectorySimulator sim(opts.seed);
            if (opts.device == "ibmqx4")
                sim.setNoiseModel(&device.noiseModel());
            result = sim.run(circuit, opts.shots);
        } else if (backend == "stabilizer") {
            StabilizerSimulator sim(opts.seed);
            result = sim.run(circuit, opts.shots);
        } else {
            std::fprintf(stderr, "unknown backend '%s'\n",
                         backend.c_str());
            return 2;
        }

        std::printf("backend: %s, device: %s, shots: %zu\n\n",
                    backend.c_str(), opts.device.c_str(),
                    result.shots());

        const AssertionReport report = analyze(inst, result);
        std::printf("%s\n", report.str(inst).c_str());

        std::printf("raw payload:      %s\n",
                    stats::distributionToString(
                        report.rawPayload, inst.payloadClbits())
                        .c_str());
        std::printf("filtered payload: %s\n",
                    stats::distributionToString(
                        report.filteredPayload, inst.payloadClbits())
                        .c_str());

        // Exit status mirrors the assertion outcome so the tool can
        // gate CI pipelines: 0 = all checks clean (on an ideal
        // device) or mostly clean (noisy), 1 = a check fired hard.
        const bool failed = report.anyErrorRate > 0.45;
        return failed ? 1 : 0;
    } catch (const Error &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
}
