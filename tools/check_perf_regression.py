#!/usr/bin/env python3
"""Warn-only perf-regression check for the bench JSON trajectory.

Usage: check_perf_regression.py BASELINE.json CURRENT.json...

Both inputs are JSON-lines files as emitted by `perf_simulator --json`
and `perf_engine --json` (the committed baseline may concatenate
several). Records are matched on their identifying keys (bench,
section, gate, qubits, lanes, ...) and every higher-is-better metric
(*_per_sec, speedup*) is compared. A drop of more than THRESHOLD
prints a GitHub Actions warning annotation plus a summary table.

The exit code is always 0: shared CI runners are noisy neighbours, so
this step documents drift instead of gating merges.
"""

import json
import sys

THRESHOLD = 0.25

# Lower-is-better metrics checked against an absolute ceiling instead
# of drift vs baseline: telemetry overhead is a hard design budget
# (enabled-path cost < 3%), a retry policy on the fault-free path
# must stay within 10% (it only adds a try/catch and an atomic), and
# auto-derived assertions may insert at most 1.25x the hand-annotated
# gate overhead, so the current value alone decides.
LOWER_IS_BETTER_ABS = {
    "overhead_frac": 0.03,
    "retry_overhead_frac": 0.10,
    "overhead_ratio": 1.25,
}

# Keys that identify a record rather than measure it. "threads" is
# deliberately absent: it describes the host (the committed baseline
# comes from a 1-core container, CI runners have more), and including
# it would unmatch every perf_engine record. Records that exist only
# on one side (e.g. extra-lane gate rows on wider hosts) are skipped.
# "tier" and "detected" identify roofline records: a record measured
# at avx2 on an avx512 host only matches a baseline measured the same
# way — comparing across ISAs (or against a scalar-only CI leg) would
# flag meaningless "regressions", so unmatched rows are skipped.
IDENTITY_KEYS = (
    "bench", "section", "gate", "kernel_class", "qubits", "lanes",
    "shots", "jobs", "level", "subset_qubits", "pass", "pipeline",
    "scale", "tier", "detected", "traversal", "circuit",
)


def is_metric(key, value):
    if not isinstance(value, (int, float)):
        return False
    return (key.endswith("_per_sec") or key.startswith("speedup")
            or key == "simd_speedup" or key == "reduce_speedup"
            or key == "swap_reduction"
            or key == "shots_saved_frac" or key == "saved_frac"
            or key == "auto_rate" or key == "hand_rate")


def load_records(paths):
    records = {}
    for path in paths:
        try:
            handle = open(path, encoding="utf-8")
        except OSError as error:
            # Warn-only: a missing artifact (failed bench step) must
            # not turn this step red on top of the real failure.
            print(f"perf-regression: skipping {path}: {error}")
            continue
        with handle:
            for line in handle:
                line = line.strip()
                if not line.startswith("{"):
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                key = tuple(
                    (k, record[k]) for k in IDENTITY_KEYS if k in record
                )
                records[key] = record
    return records


def main(argv):
    if len(argv) < 3:
        print(__doc__.strip(), file=sys.stderr)
        return 0  # warn-only even on usage errors in CI

    baseline = load_records([argv[1]])
    current = load_records(argv[2:])

    drops = []
    compared = 0
    # Ceiling checks read the *current* records directly so a section
    # absent from the committed baseline still gets gated.
    for key, cur_record in current.items():
        for metric, ceiling in LOWER_IS_BETTER_ABS.items():
            cur_value = cur_record.get(metric)
            if not isinstance(cur_value, (int, float)):
                continue
            compared += 1
            if cur_value > ceiling:
                label = "/".join(str(v) for _, v in key if v != "")
                drops.append((label, metric, ceiling, cur_value,
                              cur_value - ceiling))
    for key, base_record in baseline.items():
        cur_record = current.get(key)
        if cur_record is None:
            continue
        for metric, base_value in base_record.items():
            if not is_metric(metric, base_value) or base_value <= 0:
                continue
            cur_value = cur_record.get(metric)
            if not isinstance(cur_value, (int, float)):
                continue
            compared += 1
            drop = 1.0 - cur_value / base_value
            if drop > THRESHOLD:
                label = "/".join(
                    str(v) for _, v in key if v != ""
                )
                drops.append((label, metric, base_value, cur_value,
                              drop))

    if not drops:
        print(f"perf-regression: {compared} metrics compared, none "
              f"dropped more than {THRESHOLD:.0%} vs baseline")
        return 0

    print(f"perf-regression: {len(drops)} of {compared} metrics "
          f"dropped more than {THRESHOLD:.0%} vs baseline")
    print(f"{'record':<50} {'metric':<24} {'baseline':>12} "
          f"{'current':>12} {'drop':>7}")
    for label, metric, base_value, cur_value, drop in drops:
        print(f"{label:<50} {metric:<24} {base_value:>12.1f} "
              f"{cur_value:>12.1f} {drop:>6.1%}")
    summary = "; ".join(
        f"{label} {metric} -{drop:.0%}"
        for label, metric, _, _, drop in drops[:5]
    )
    print(f"::warning title=perf regression vs committed baseline::"
          f"{summary}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
