/**
 * @file
 * qra_lint — static circuit linter.
 *
 * Reads an OpenQASM 2.0 file (qra:assert-* directives included),
 * runs the static analyzer over it, and prints every lint warning
 * (QRA-L001..L005, see compile/analysis/lint.hh) in a stable,
 * grep-friendly format:
 *
 *   FILE:QRA-Lxxx: message
 *
 * Usage:
 *   qra_lint FILE.qasm... [--device ideal|ibmqx4] [--quiet]
 *
 * --device ibmqx4 also checks routability against the device's
 * coupling map (QRA-L005). Exit status: 0 when every file is clean,
 * 1 when any warning fired, 2 on usage or parse errors — so the tool
 * can gate CI the same way a classical linter does.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "assertions/directives.hh"
#include "qra.hh"

using namespace qra;
using namespace qra::compile;

namespace {

struct Options
{
    std::vector<std::string> files;
    std::string device = "ideal";
    bool quiet = false;
};

void
usage()
{
    std::fprintf(stderr,
                 "usage: qra_lint FILE.qasm... [--device "
                 "ideal|ibmqx4] [--quiet]\n");
}

bool
parseArgs(int argc, char **argv, Options &opts)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--device") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for --device\n");
                return false;
            }
            opts.device = argv[++i];
        } else if (arg == "--quiet") {
            opts.quiet = true;
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
            return false;
        } else {
            opts.files.push_back(arg);
        }
    }
    return !opts.files.empty();
}

/** Lint one file; returns the number of warnings (or -1 on error). */
int
lintFile(const std::string &path, const CouplingMap *coupling,
         bool quiet)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "%s: cannot open\n", path.c_str());
        return -1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();

    try {
        const AnnotatedProgram program =
            parseAnnotatedQasm(buffer.str());
        const analysis::CircuitAnalysis a =
            analysis::analyzeCircuit(program.payload);
        const std::vector<analysis::LintWarning> warnings =
            analysis::lintCircuit(program.payload, a, program.specs,
                                  coupling);
        if (!quiet)
            for (const analysis::LintWarning &warning : warnings)
                std::printf("%s:%s\n", path.c_str(),
                            warning.str().c_str());
        return static_cast<int>(warnings.size());
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(), e.what());
        return -1;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    if (!parseArgs(argc, argv, opts)) {
        usage();
        return 2;
    }

    const CouplingMap *coupling = nullptr;
    std::optional<DeviceModel> device;
    if (opts.device == "ibmqx4") {
        device.emplace(DeviceModel::ibmqx4());
        coupling = &device->couplingMap();
    } else if (opts.device != "ideal") {
        std::fprintf(stderr, "unknown device '%s'\n",
                     opts.device.c_str());
        return 2;
    }

    std::size_t total = 0;
    bool failed = false;
    for (const std::string &file : opts.files) {
        const int warnings = lintFile(file, coupling, opts.quiet);
        if (warnings < 0)
            failed = true;
        else
            total += static_cast<std::size_t>(warnings);
    }
    if (failed)
        return 2;
    if (!opts.quiet && total > 0)
        std::printf("%zu warning%s\n", total, total == 1 ? "" : "s");
    return total > 0 ? 1 : 0;
}
