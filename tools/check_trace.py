#!/usr/bin/env python3
"""Validate qra_run telemetry exports for CI.

Checks a Chrome trace-event JSON file (``--trace``), and optionally a
JSON-lines event stream (``--jsonl``) and a metrics snapshot
(``--metrics``), against the schema qra_run emits:

* the trace parses as JSON and holds a ``traceEvents`` array;
* every event has name/cat/ph/pid/tid/ts with the right types;
* async begin ('b') and end ('e') events pair up by id;
* per-thread timestamps are monotonic (non-decreasing);
* each ``--require SUBSTR`` matches at least one event name
  (``pass:`` style prefixes match by substring);
* the JSON-lines file parses line-by-line with the same event count;
* the metrics snapshot has counters/gauges/histograms maps, every
  histogram is internally consistent (buckets = bounds + 1, count =
  sum of buckets), and every ``--require-counter NAME[>=N]`` holds.

Exit status: 0 = all checks pass, 1 = a check failed, 2 = bad usage.
"""

import argparse
import json
import sys
from collections import defaultdict

FAILURES = []


def fail(msg):
    FAILURES.append(msg)
    print(f"FAIL: {msg}")


def ok(msg):
    print(f"  ok: {msg}")


def check_trace(path, require):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: not parseable JSON: {e}")
        return None
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: missing traceEvents array")
        return None
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents is empty")
        return None
    ok(f"{path}: {len(events)} events parsed")

    last_ts = {}
    async_open = defaultdict(int)
    names = set()
    for i, ev in enumerate(events):
        for key, types in (
            ("name", str),
            ("cat", str),
            ("ph", str),
            ("pid", int),
            ("tid", int),
            ("ts", (int, float)),
        ):
            if not isinstance(ev.get(key), types):
                fail(f"{path}: event {i} bad/missing '{key}': {ev}")
                return None
        ph = ev["ph"]
        if ph not in ("X", "i", "b", "e"):
            fail(f"{path}: event {i} unexpected phase '{ph}'")
            return None
        if ph == "X" and not isinstance(ev.get("dur"), (int, float)):
            fail(f"{path}: complete event {i} missing 'dur'")
            return None
        if ph in ("b", "e"):
            if not isinstance(ev.get("id"), int):
                fail(f"{path}: async event {i} missing 'id'")
                return None
            async_open[ev["id"]] += 1 if ph == "b" else -1
            if async_open[ev["id"]] < 0:
                fail(f"{path}: async id {ev['id']} ends before begin")
                return None
        tid = ev["tid"]
        if tid in last_ts and ev["ts"] < last_ts[tid]:
            fail(
                f"{path}: event {i} breaks per-thread timestamp "
                f"monotonicity (tid {tid}: {ev['ts']} < {last_ts[tid]})"
            )
            return None
        last_ts[tid] = ev["ts"]
        names.add(ev["name"])

    unclosed = {k: v for k, v in async_open.items() if v != 0}
    if unclosed:
        fail(f"{path}: unmatched async begin/end pairs: {unclosed}")
        return None
    ok(f"{path}: phases valid, async pairs matched, "
       f"per-thread timestamps monotonic over {len(last_ts)} threads")

    for substr in require:
        if not any(substr in name for name in names):
            fail(
                f"{path}: no event name contains '{substr}' "
                f"(have: {sorted(names)})"
            )
        else:
            ok(f"{path}: span '{substr}' present")
    return len(events)


def check_jsonl(path, expected_count):
    try:
        with open(path) as f:
            lines = [line for line in f if line.strip()]
    except OSError as e:
        fail(f"{path}: {e}")
        return
    count = 0
    for i, line in enumerate(lines):
        try:
            ev = json.loads(line)
        except json.JSONDecodeError as e:
            fail(f"{path}: line {i + 1} not JSON: {e}")
            return
        for key in ("type", "name", "cat", "tid", "ts_ns"):
            if key not in ev:
                fail(f"{path}: line {i + 1} missing '{key}'")
                return
        count += 1
    if expected_count is not None and count != expected_count:
        fail(
            f"{path}: {count} events but the Chrome trace has "
            f"{expected_count}"
        )
        return
    ok(f"{path}: {count} JSON-lines events parsed")


def check_metrics(path, require_counters):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: not parseable JSON: {e}")
        return
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(doc.get(section), dict):
            fail(f"{path}: missing '{section}' object")
            return
    for name, hist in doc["histograms"].items():
        bounds = hist.get("bounds")
        buckets = hist.get("buckets")
        if not isinstance(bounds, list) or not isinstance(buckets, list):
            fail(f"{path}: histogram {name} missing bounds/buckets")
            return
        if len(buckets) != len(bounds) + 1:
            fail(
                f"{path}: histogram {name} has {len(buckets)} buckets "
                f"for {len(bounds)} bounds (want bounds+1)"
            )
            return
        if sum(buckets) != hist.get("count"):
            fail(
                f"{path}: histogram {name} count {hist.get('count')} "
                f"!= bucket sum {sum(buckets)}"
            )
            return
        if bounds != sorted(bounds):
            fail(f"{path}: histogram {name} bounds not ascending")
            return
    ok(
        f"{path}: {len(doc['counters'])} counters, "
        f"{len(doc['gauges'])} gauges, "
        f"{len(doc['histograms'])} histograms, all consistent"
    )
    for req in require_counters:
        if ">=" in req:
            name, _, minimum = req.partition(">=")
            minimum = int(minimum)
        else:
            name, minimum = req, 1
        value = doc["counters"].get(name)
        if value is None:
            fail(f"{path}: counter '{name}' absent")
        elif value < minimum:
            fail(f"{path}: counter '{name}' = {value} < {minimum}")
        else:
            ok(f"{path}: counter {name} = {value} (>= {minimum})")


def main():
    parser = argparse.ArgumentParser(
        description="validate qra_run telemetry exports"
    )
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument("--jsonl", help="JSON-lines event stream")
    parser.add_argument("--metrics", help="metrics snapshot JSON")
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="SUBSTR",
        help="require an event name containing SUBSTR (repeatable)",
    )
    parser.add_argument(
        "--require-counter",
        action="append",
        default=[],
        metavar="NAME[>=N]",
        help="require a counter at or above N (default 1, repeatable)",
    )
    args = parser.parse_args()

    count = check_trace(args.trace, args.require)
    if args.jsonl:
        check_jsonl(args.jsonl, count)
    if args.metrics:
        check_metrics(args.metrics, args.require_counter)

    if FAILURES:
        print(f"\n{len(FAILURES)} check(s) failed")
        return 1
    print("\nall telemetry checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
