/** @file Tests for the NoiseModel configuration and queries. */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "noise/noise_model.hh"

namespace qra {
namespace {

TEST(NoiseModelTest, EmptyModelIsDisabled)
{
    NoiseModel noise;
    EXPECT_FALSE(noise.enabled());
    Operation h{.kind = OpKind::H, .qubits = {0}};
    EXPECT_TRUE(noise.channelsFor(h).empty());
    EXPECT_EQ(noise.readoutFor(0), nullptr);
    EXPECT_FALSE(noise.relaxationFor(0, 100.0).has_value());
    EXPECT_DOUBLE_EQ(noise.opDuration(h), 0.0);
}

TEST(NoiseModelTest, GateErrorByKind)
{
    NoiseModel noise;
    noise.setGateError(OpKind::CX, 0.05);
    EXPECT_TRUE(noise.enabled());

    Operation cx{.kind = OpKind::CX, .qubits = {0, 1}};
    const auto chans = noise.channelsFor(cx);
    ASSERT_EQ(chans.size(), 1u);
    EXPECT_EQ(chans[0].qubits, (std::vector<Qubit>{0, 1}));
    EXPECT_EQ(chans[0].channel.numQubits(), 2u);

    Operation h{.kind = OpKind::H, .qubits = {0}};
    EXPECT_TRUE(noise.channelsFor(h).empty());
}

TEST(NoiseModelTest, PerOperandOverridesKind)
{
    NoiseModel noise;
    noise.setGateError(OpKind::CX, 0.01);
    noise.setGateError(OpKind::CX, {1, 0}, 0.0); // edge 1->0 perfect

    Operation generic{.kind = OpKind::CX, .qubits = {2, 3}};
    EXPECT_EQ(noise.channelsFor(generic).size(), 1u);

    Operation calibrated{.kind = OpKind::CX, .qubits = {1, 0}};
    EXPECT_TRUE(noise.channelsFor(calibrated).empty());
}

TEST(NoiseModelTest, OperandOrderMatters)
{
    NoiseModel noise;
    noise.setGateError(OpKind::CX, {0, 1}, 0.0);
    noise.setGateError(OpKind::CX, 0.5);
    Operation reversed{.kind = OpKind::CX, .qubits = {1, 0}};
    // {1,0} has no per-operand entry: falls back to kind default.
    EXPECT_EQ(noise.channelsFor(reversed).size(), 1u);
}

TEST(NoiseModelTest, ConfigValidation)
{
    NoiseModel noise;
    EXPECT_THROW(noise.setGateError(OpKind::Measure, 0.1), NoiseError);
    EXPECT_THROW(noise.setGateError(OpKind::H, 1.5), NoiseError);
    EXPECT_THROW(noise.setGateError(OpKind::CX, {0}, 0.1), NoiseError);
    EXPECT_THROW(noise.setGateDuration(OpKind::H, -1.0), NoiseError);
    EXPECT_THROW(noise.setQubitRelaxation(0, -1.0, 1.0), NoiseError);
    EXPECT_THROW(noise.setQubitRelaxation(0, 1000.0, 2001.0),
                 NoiseError);
}

TEST(NoiseModelTest, RelaxationQueries)
{
    NoiseModel noise;
    noise.setQubitRelaxation(2, 50000.0, 25000.0);
    EXPECT_FALSE(noise.relaxationFor(0, 100.0).has_value());
    EXPECT_FALSE(noise.relaxationFor(2, 0.0).has_value());
    const auto chan = noise.relaxationFor(2, 100.0);
    ASSERT_TRUE(chan.has_value());
    EXPECT_TRUE(chan->isTracePreserving());
}

TEST(NoiseModelTest, DurationLookup)
{
    NoiseModel noise;
    noise.setGateDuration(OpKind::CX, 350.0);
    Operation cx{.kind = OpKind::CX, .qubits = {0, 1}};
    EXPECT_DOUBLE_EQ(noise.opDuration(cx), 350.0);
}

TEST(NoiseModelTest, ReadoutLookup)
{
    NoiseModel noise;
    noise.setReadoutError(1, ReadoutError(0.02, 0.03));
    EXPECT_EQ(noise.readoutFor(0), nullptr);
    ASSERT_NE(noise.readoutFor(1), nullptr);
    EXPECT_DOUBLE_EQ(noise.readoutFor(1)->pRead1Given0(), 0.02);

    // Perfect readout entries behave as absent.
    noise.setReadoutError(2, ReadoutError(0.0, 0.0));
    EXPECT_EQ(noise.readoutFor(2), nullptr);
}

TEST(NoiseModelTest, ScaledZeroDisablesEverything)
{
    NoiseModel noise;
    noise.setGateError(OpKind::CX, 0.1);
    noise.setQubitRelaxation(0, 1000.0, 1000.0);
    noise.setReadoutError(0, ReadoutError(0.1, 0.1));

    const NoiseModel off = noise.scaled(0.0);
    Operation cx{.kind = OpKind::CX, .qubits = {0, 1}};
    EXPECT_TRUE(off.channelsFor(cx).empty());
    EXPECT_EQ(off.readoutFor(0), nullptr);
    EXPECT_FALSE(off.relaxationFor(0, 100.0).has_value());
}

TEST(NoiseModelTest, ScaledClampsProbabilities)
{
    NoiseModel noise;
    noise.setGateError(OpKind::CX, 0.4);
    const NoiseModel heavy = noise.scaled(10.0);
    Operation cx{.kind = OpKind::CX, .qubits = {0, 1}};
    // Scaled to 4.0, clamped to 1.0: channel still valid.
    const auto chans = heavy.channelsFor(cx);
    ASSERT_EQ(chans.size(), 1u);
    EXPECT_TRUE(chans[0].channel.isTracePreserving());
}

TEST(NoiseModelTest, ScaledNegativeThrows)
{
    NoiseModel noise;
    EXPECT_THROW(noise.scaled(-1.0), NoiseError);
}

TEST(NoiseModelTest, ReadoutErrorSampler)
{
    ReadoutError ro(1.0, 0.0); // always misread 0 as 1
    Rng rng(1);
    EXPECT_EQ(ro.sampleReadout(0, rng), 1);
    EXPECT_EQ(ro.sampleReadout(1, rng), 1);
    EXPECT_DOUBLE_EQ(ro.confusion(0, 1), 1.0);
    EXPECT_DOUBLE_EQ(ro.confusion(1, 1), 1.0);
    EXPECT_THROW(ReadoutError(-0.1, 0.0), NoiseError);
}

TEST(NoiseModelTest, CcxGetsPairwiseChannels)
{
    NoiseModel noise;
    noise.setGateError(OpKind::CCX, 0.05);
    Operation ccx{.kind = OpKind::CCX, .qubits = {0, 1, 2}};
    const auto chans = noise.channelsFor(ccx);
    EXPECT_EQ(chans.size(), 2u);
}

} // namespace
} // namespace qra
