/** @file Tests for Kraus channels and the standard channel factories. */

#include <cmath>

#include <gtest/gtest.h>

#include "common/error.hh"
#include "math/gates.hh"
#include "noise/channels.hh"
#include "noise/kraus.hh"

namespace qra {
namespace {

TEST(KrausChannelTest, CompletenessValidated)
{
    // Operators that do not satisfy sum K^t K = I are rejected.
    std::vector<Matrix> bad{gates::h() * Complex{0.5, 0.0}};
    EXPECT_THROW(KrausChannel(std::move(bad)), NoiseError);
}

TEST(KrausChannelTest, EmptyRejected)
{
    EXPECT_THROW(KrausChannel(std::vector<Matrix>{}), NoiseError);
}

TEST(KrausChannelTest, MixedDimensionsRejected)
{
    EXPECT_THROW(KrausChannel({gates::h(), gates::cx()}), NoiseError);
}

TEST(KrausChannelTest, UnitaryChannelIsIdentityCheck)
{
    KrausChannel id({Matrix::identity(2)});
    EXPECT_TRUE(id.isIdentity());
    KrausChannel x_chan({gates::x()});
    EXPECT_FALSE(x_chan.isIdentity());
}

TEST(KrausChannelTest, NumQubits)
{
    EXPECT_EQ(KrausChannel({gates::x()}).numQubits(), 1u);
    EXPECT_EQ(KrausChannel({gates::cx()}).numQubits(), 2u);
    EXPECT_EQ(KrausChannel({gates::ccx()}).numQubits(), 3u);
}

TEST(KrausChannelTest, ComposePreservesCptp)
{
    const KrausChannel composed =
        channels::amplitudeDamping(0.2).composeWith(
            channels::phaseDamping(0.3));
    EXPECT_TRUE(composed.isTracePreserving());
    EXPECT_EQ(composed.operators().size(), 4u);
}

TEST(KrausChannelTest, ComposeDimensionMismatchThrows)
{
    KrausChannel one({gates::x()});
    KrausChannel two({gates::cx()});
    EXPECT_THROW(one.composeWith(two), NoiseError);
}

TEST(ChannelsTest, AllFactoriesAreCptp)
{
    for (double p : {0.0, 0.01, 0.3, 0.9, 1.0}) {
        EXPECT_TRUE(channels::depolarizing1(p).isTracePreserving())
            << p;
        EXPECT_TRUE(channels::depolarizing2(p).isTracePreserving())
            << p;
        EXPECT_TRUE(channels::bitFlip(p).isTracePreserving()) << p;
        EXPECT_TRUE(channels::phaseFlip(p).isTracePreserving()) << p;
        EXPECT_TRUE(channels::bitPhaseFlip(p).isTracePreserving()) << p;
        EXPECT_TRUE(channels::amplitudeDamping(p).isTracePreserving())
            << p;
        EXPECT_TRUE(channels::phaseDamping(p).isTracePreserving()) << p;
    }
}

TEST(ChannelsTest, ProbabilityRangeValidated)
{
    EXPECT_THROW(channels::depolarizing1(-0.1), NoiseError);
    EXPECT_THROW(channels::depolarizing1(1.1), NoiseError);
    EXPECT_THROW(channels::bitFlip(2.0), NoiseError);
    EXPECT_THROW(channels::amplitudeDamping(-1e-9), NoiseError);
}

TEST(ChannelsTest, Depolarizing2Has16Operators)
{
    EXPECT_EQ(channels::depolarizing2(0.1).operators().size(), 16u);
}

TEST(ChannelsTest, ThermalRelaxationIsCptp)
{
    const KrausChannel tr =
        channels::thermalRelaxation(50000.0, 30000.0, 100.0);
    EXPECT_TRUE(tr.isTracePreserving());
}

TEST(ChannelsTest, ThermalRelaxationValidatesTimes)
{
    EXPECT_THROW(channels::thermalRelaxation(-1.0, 1.0, 1.0),
                 NoiseError);
    EXPECT_THROW(channels::thermalRelaxation(1.0, 3.0, 1.0),
                 NoiseError); // T2 > 2 T1
    EXPECT_THROW(channels::thermalRelaxation(1.0, 1.0, -5.0),
                 NoiseError);
}

TEST(ChannelsTest, ThermalRelaxationZeroDurationIsIdentityLike)
{
    const KrausChannel tr =
        channels::thermalRelaxation(50000.0, 30000.0, 0.0);
    // gamma = lambda = 0: first operator is the identity.
    EXPECT_TRUE(tr.operators()[0].isIdentity(1e-12));
}

TEST(ChannelsTest, PauliChannelIsCptp)
{
    EXPECT_TRUE(
        channels::pauliChannel(0.1, 0.2, 0.3).isTracePreserving());
    EXPECT_TRUE(
        channels::pauliChannel(0.0, 0.0, 0.0).isTracePreserving());
    // Exhausts the probability budget exactly.
    EXPECT_TRUE(
        channels::pauliChannel(0.5, 0.25, 0.25).isTracePreserving());
}

TEST(ChannelsTest, PauliChannelValidation)
{
    EXPECT_THROW(channels::pauliChannel(-0.1, 0.0, 0.0), NoiseError);
    EXPECT_THROW(channels::pauliChannel(0.5, 0.4, 0.2), NoiseError);
}

TEST(ChannelsTest, PauliChannelSpecialisesToBitFlip)
{
    // (p, 0, 0) must act identically to bitFlip(p).
    const KrausChannel general = channels::pauliChannel(0.2, 0.0, 0.0);
    const KrausChannel specific = channels::bitFlip(0.2);
    ASSERT_EQ(general.operators().size(),
              specific.operators().size());
    for (std::size_t k = 0; k < general.operators().size(); ++k)
        EXPECT_TRUE(general.operators()[k].approxEqual(
            specific.operators()[k], 1e-12));
}

TEST(ChannelsTest, CoherentOverrotationIsUnitaryChannel)
{
    const KrausChannel err = channels::coherentOverrotation(0.05);
    EXPECT_TRUE(err.isTracePreserving());
    ASSERT_EQ(err.operators().size(), 1u);
    EXPECT_TRUE(err.operators()[0].isUnitary());
}

TEST(ChannelsTest, CoherentErrorAccumulatesQuadratically)
{
    // After k applications of RX(eps) to |0>, P(1) = sin^2(k eps/2):
    // quadratic in k for small k, unlike stochastic noise which is
    // linear. Check the ratio P(4 steps) / P(1 step) ~ 16.
    auto p1_after = [](int k) {
        Matrix u = Matrix::identity(2);
        for (int i = 0; i < k; ++i)
            u = gates::rx(0.01) * u;
        return std::norm(u(1, 0));
    };
    const double ratio = p1_after(4) / p1_after(1);
    EXPECT_NEAR(ratio, 16.0, 0.1);
}

} // namespace
} // namespace qra
