/** @file Tests for DeviceModel and the ibmqx4 calibration factory. */

#include <gtest/gtest.h>

#include "noise/device_model.hh"

namespace qra {
namespace {

TEST(DeviceModelTest, Ibmqx4Shape)
{
    const DeviceModel dev = DeviceModel::ibmqx4();
    EXPECT_EQ(dev.name(), "ibmqx4");
    EXPECT_EQ(dev.numQubits(), 5u);
    EXPECT_TRUE(dev.noiseModel().enabled());
    EXPECT_EQ(dev.couplingMap().edges().size(), 6u);
}

TEST(DeviceModelTest, Ibmqx4DirectedEdges)
{
    const DeviceModel device = DeviceModel::ibmqx4();
    const CouplingMap &map = device.couplingMap();
    // The six native directions.
    EXPECT_TRUE(map.hasEdge(1, 0));
    EXPECT_TRUE(map.hasEdge(2, 0));
    EXPECT_TRUE(map.hasEdge(2, 1));
    EXPECT_TRUE(map.hasEdge(3, 2));
    EXPECT_TRUE(map.hasEdge(3, 4));
    EXPECT_TRUE(map.hasEdge(4, 2));
    // Reverse directions are NOT native.
    EXPECT_FALSE(map.hasEdge(0, 1));
    EXPECT_FALSE(map.hasEdge(0, 2));
    EXPECT_FALSE(map.hasEdge(1, 2));
    // But pairs are connected bidirectionally.
    EXPECT_TRUE(map.connected(0, 1));
    EXPECT_TRUE(map.connected(2, 4));
    // Not every pair is coupled.
    EXPECT_FALSE(map.connected(0, 3));
    EXPECT_FALSE(map.connected(0, 4));
    EXPECT_FALSE(map.connected(1, 3));
    EXPECT_FALSE(map.connected(1, 4));
}

TEST(DeviceModelTest, Ibmqx4IsConnected)
{
    EXPECT_TRUE(DeviceModel::ibmqx4().couplingMap().isConnected());
}

TEST(DeviceModelTest, Ibmqx4NoiseMagnitudes)
{
    const DeviceModel device = DeviceModel::ibmqx4();
    const NoiseModel &noise = device.noiseModel();

    // CNOT noisier than single-qubit gates.
    Operation cx{.kind = OpKind::CX, .qubits = {1, 0}};
    Operation h{.kind = OpKind::H, .qubits = {0}};
    ASSERT_EQ(noise.channelsFor(cx).size(), 1u);
    ASSERT_EQ(noise.channelsFor(h).size(), 1u);

    // CNOT slower than 1q gates, measure slowest.
    Operation meas{.kind = OpKind::Measure, .qubits = {0}, .clbit = 0};
    EXPECT_GT(noise.opDuration(cx), noise.opDuration(h));
    EXPECT_GT(noise.opDuration(meas), noise.opDuration(cx));

    // Every qubit has relaxation and readout entries.
    for (Qubit q = 0; q < 5; ++q) {
        EXPECT_TRUE(noise.relaxationFor(q, 100.0).has_value()) << q;
        EXPECT_NE(noise.readoutFor(q), nullptr) << q;
    }
}

TEST(DeviceModelTest, IdealDeviceHasNoNoise)
{
    const DeviceModel dev = DeviceModel::ideal(4);
    EXPECT_FALSE(dev.noiseModel().enabled());
    // All-to-all coupling.
    for (Qubit a = 0; a < 4; ++a)
        for (Qubit b = 0; b < 4; ++b)
            if (a != b)
                EXPECT_TRUE(dev.couplingMap().hasEdge(a, b));
}

TEST(DeviceModelTest, ScaledNoiseDevice)
{
    const DeviceModel half = DeviceModel::ibmqx4().scaledNoise(0.5);
    EXPECT_TRUE(half.noiseModel().enabled());
    const DeviceModel off = DeviceModel::ibmqx4().scaledNoise(0.0);
    Operation cx{.kind = OpKind::CX, .qubits = {1, 0}};
    EXPECT_TRUE(off.noiseModel().channelsFor(cx).empty());
    // Coupling map is preserved.
    EXPECT_EQ(off.couplingMap().edges().size(), 6u);
}

} // namespace
} // namespace qra
