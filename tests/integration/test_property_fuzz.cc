/**
 * @file
 * Randomised property tests across module boundaries: QASM
 * round-trips of random circuits, transpiler semantic preservation
 * under fuzzing, complex-phase extensions of the paper's proofs, and
 * register-limit enforcement.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "assertions/injector.hh"
#include "assertions/superposition_assertion.hh"
#include "circuit/qasm.hh"
#include "common/error.hh"
#include "noise/device_model.hh"
#include "sim/statevector_simulator.hh"
#include "testutil.hh"
#include "transpile/transpiler.hh"

namespace qra {
namespace {

/** Random circuit over a configurable gate alphabet. */
Circuit
randomCircuit(std::size_t num_qubits, std::size_t num_gates,
              Rng &rng, bool with_measures)
{
    Circuit c(num_qubits, with_measures ? num_qubits : 0, "fuzz");
    for (std::size_t i = 0; i < num_gates; ++i) {
        const Qubit q = static_cast<Qubit>(rng.below(num_qubits));
        const Qubit r = static_cast<Qubit>(
            (q + 1 + rng.below(num_qubits - 1)) % num_qubits);
        switch (rng.below(10)) {
          case 0: c.h(q); break;
          case 1: c.x(q); break;
          case 2: c.s(q); break;
          case 3: c.t(q); break;
          case 4: c.rx(rng.uniform() * 2 * M_PI, q); break;
          case 5: c.rz(rng.uniform() * 2 * M_PI, q); break;
          case 6: c.u(rng.uniform() * M_PI, rng.uniform(),
                      rng.uniform(), q);
                  break;
          case 7: c.cx(q, r); break;
          case 8: c.cz(q, r); break;
          default: c.swap(q, r); break;
        }
    }
    if (with_measures)
        c.measureAll();
    return c;
}

class FuzzSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(FuzzSweep, QasmRoundTripPreservesCircuit)
{
    Rng rng(1000 + GetParam());
    const Circuit original = randomCircuit(4, 30, rng, true);
    const Circuit back = fromQasm(toQasm(original));
    ASSERT_EQ(back.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(back.ops()[i].kind, original.ops()[i].kind) << i;
        EXPECT_EQ(back.ops()[i].qubits, original.ops()[i].qubits)
            << i;
        ASSERT_EQ(back.ops()[i].params.size(),
                  original.ops()[i].params.size());
        for (std::size_t p = 0; p < back.ops()[i].params.size(); ++p)
            EXPECT_NEAR(back.ops()[i].params[p],
                        original.ops()[i].params[p], 1e-9);
    }
}

TEST_P(FuzzSweep, QasmRoundTripPreservesSemantics)
{
    Rng rng(2000 + GetParam());
    const Circuit original = randomCircuit(4, 25, rng, false);
    const Circuit back = fromQasm(toQasm(original));
    StatevectorSimulator sim(1);
    const StateVector a = sim.finalState(original);
    const StateVector b = sim.finalState(back);
    EXPECT_NEAR(a.fidelityWith(b), 1.0, 1e-9);
}

TEST_P(FuzzSweep, TranspilerPreservesDistributions)
{
    Rng rng(3000 + GetParam());
    const Circuit original = randomCircuit(4, 20, rng, true);
    const DeviceModel device = DeviceModel::ibmqx4();
    const TranspileResult mapped =
        transpile(original, device.couplingMap());

    // Every 2-qubit gate must respect the coupling map.
    for (const Operation &op : mapped.circuit.ops()) {
        if (op.qubits.size() == 2 && opIsUnitary(op.kind)) {
            EXPECT_TRUE(device.couplingMap().connected(op.qubits[0],
                                                       op.qubits[1]))
                << op.str();
            if (op.kind == OpKind::CX)
                EXPECT_TRUE(device.couplingMap().hasEdge(
                    op.qubits[0], op.qubits[1]))
                    << op.str();
        }
    }

    // Outcome distributions agree within sampling noise.
    StatevectorSimulator sim(50 + GetParam());
    const Result ideal = sim.run(original, 20000);
    sim.seed(90 + GetParam());
    const Result routed = sim.run(mapped.circuit, 20000);
    for (const auto &[key, n] : ideal.rawCounts()) {
        EXPECT_NEAR(double(n) / 20000.0, routed.probability(key),
                    0.025)
            << "outcome " << key;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep, ::testing::Range(0, 8));

// ---------------------------------------------------------------
// Complex-phase extension of the Sec. 3.3 proof: for a general
// state a|0> + b|1> (complex b), the superposition assertion's
// error probability is |a - b|^2 / 2.
// ---------------------------------------------------------------

class ComplexPhaseSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(ComplexPhaseSweep, SuperpositionErrorIsHalfDistanceSquared)
{
    const double phi = GetParam();
    for (double theta : {0.5, M_PI / 2, 2.0}) {
        // |psi> = cos(t/2)|0> + e^{i phi} sin(t/2)|1>.
        Circuit payload(1, 0);
        payload.u(theta, phi, 0.0, 0);

        AssertionSpec spec;
        spec.assertion = std::make_shared<SuperpositionAssertion>();
        spec.targets = {0};
        spec.insertAt = 1;
        InstrumentOptions opts;
        opts.barriers = false;
        const InstrumentedCircuit inst =
            instrument(payload, {spec}, opts);

        Circuit no_measure(inst.circuit().numQubits(), 0);
        for (const Operation &op : inst.circuit().ops())
            if (op.kind != OpKind::Measure)
                no_measure.append(op);

        StatevectorSimulator sim(1);
        const double measured =
            sim.finalState(no_measure)
                .probabilityOfOne(inst.checks()[0].ancillas[0]);

        const Complex a{std::cos(theta / 2.0), 0.0};
        const Complex b =
            std::polar(std::sin(theta / 2.0), phi);
        const double expected = std::norm(a - b) / 2.0;
        EXPECT_NEAR(measured, expected, 1e-10)
            << "theta " << theta << " phi " << phi;
    }
}

INSTANTIATE_TEST_SUITE_P(PhiGrid, ComplexPhaseSweep,
                         ::testing::Values(0.0, 0.5, M_PI / 2, 2.0,
                                           M_PI, 4.5));

// ---------------------------------------------------------------
// Classical register limits (results pack into 64-bit words).
// ---------------------------------------------------------------

TEST(RegisterLimitTest, ClbitCapEnforced)
{
    EXPECT_NO_THROW(Circuit(2, 63));
    EXPECT_THROW(Circuit(2, 64), CircuitError);

    Circuit c(2, 60);
    EXPECT_NO_THROW(c.addClbits(3));
    EXPECT_THROW(c.addClbits(1), CircuitError);
}

TEST(RegisterLimitTest, WideRegisterStillWorks)
{
    // 63 clbits: the top bit (62) must round-trip through Result.
    Circuit c(2, 63);
    c.x(0).measure(0, 62);
    StatevectorSimulator sim(1);
    const Result r = sim.run(c, 10);
    EXPECT_EQ(r.count(std::uint64_t{1} << 62), 10u);
}

} // namespace
} // namespace qra
