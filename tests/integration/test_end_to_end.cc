/**
 * @file
 * End-to-end pipeline tests: build -> instrument -> transpile ->
 * simulate -> analyse, plus QASM round-trips of instrumented
 * circuits and cross-backend consistency.
 */

#include <gtest/gtest.h>

#include "assertions/entanglement_assertion.hh"
#include "assertions/injector.hh"
#include "assertions/report.hh"
#include "assertions/superposition_assertion.hh"
#include "circuit/qasm.hh"
#include "noise/device_model.hh"
#include "sim/density_simulator.hh"
#include "sim/statevector_simulator.hh"
#include "sim/trajectory_simulator.hh"
#include "stats/distance.hh"
#include "transpile/transpiler.hh"

namespace qra {
namespace {

InstrumentedCircuit
bellWithCheck()
{
    Circuit payload(2, 2, "bell");
    payload.h(0).cx(0, 1);
    payload.measure(0, 0).measure(1, 1);
    AssertionSpec spec;
    spec.assertion = std::make_shared<EntanglementAssertion>(2);
    spec.targets = {0, 1};
    spec.insertAt = 2;
    return instrument(payload, {spec});
}

TEST(EndToEndTest, InstrumentedCircuitSurvivesQasmRoundTrip)
{
    const InstrumentedCircuit inst = bellWithCheck();
    const Circuit back = fromQasm(toQasm(inst.circuit()));

    StatevectorSimulator sim(1);
    const Result a = sim.run(inst.circuit(), 2000);
    sim.seed(1);
    const Result b = sim.run(back, 2000);
    EXPECT_EQ(a.rawCounts(), b.rawCounts());
}

TEST(EndToEndTest, TranspiledInstrumentedCircuitStillPasses)
{
    const InstrumentedCircuit inst = bellWithCheck();
    const DeviceModel device = DeviceModel::ibmqx4();
    const TranspileResult mapped =
        transpile(inst.circuit(), device.couplingMap());

    StatevectorSimulator sim(2);
    const Result r = sim.run(mapped.circuit, 2000);
    for (const auto &[reg, n] : r.rawCounts())
        EXPECT_TRUE(inst.passed(reg)) << reg;
}

TEST(EndToEndTest, ThreeBackendsAgreeOnIdealCircuit)
{
    const InstrumentedCircuit inst = bellWithCheck();

    StatevectorSimulator sv(3);
    DensityMatrixSimulator dm(3);
    TrajectorySimulator tj(3);

    const Result r_sv = sv.run(inst.circuit(), 30000);
    const Result r_dm = dm.run(inst.circuit(), 30000);
    const Result r_tj = tj.run(inst.circuit(), 30000);

    auto to_dist = [](const Result &r) {
        stats::Distribution d;
        for (const auto &[k, n] : r.rawCounts())
            d[k] = double(n) / double(r.shots());
        return d;
    };

    EXPECT_LT(stats::totalVariation(to_dist(r_sv), to_dist(r_dm)),
              0.02);
    EXPECT_LT(stats::totalVariation(to_dist(r_sv), to_dist(r_tj)),
              0.02);
}

TEST(EndToEndTest, DensityAndTrajectoryAgreeUnderIbmqx4Noise)
{
    const InstrumentedCircuit inst = bellWithCheck();
    const DeviceModel device = DeviceModel::ibmqx4();
    const TranspileResult mapped =
        transpile(inst.circuit(), device.couplingMap());

    DensityMatrixSimulator dm(4);
    dm.setNoiseModel(&device.noiseModel());
    const auto exact = dm.exactDistribution(mapped.circuit);

    TrajectorySimulator tj(4);
    tj.setNoiseModel(&device.noiseModel());
    const Result r = tj.run(mapped.circuit, 30000);

    stats::Distribution exact_dist(exact.begin(), exact.end());
    stats::Distribution empirical;
    for (const auto &[k, n] : r.rawCounts())
        empirical[k] = double(n) / double(r.shots());

    EXPECT_LT(stats::totalVariation(empirical, exact_dist), 0.02);
}

TEST(EndToEndTest, AnalysisIdenticalAcrossTranspilation)
{
    // The report depends only on clbits, so the physical mapping
    // must not change the analysis.
    const InstrumentedCircuit inst = bellWithCheck();
    const DeviceModel device = DeviceModel::ibmqx4();
    const TranspileResult mapped =
        transpile(inst.circuit(), device.couplingMap());

    DensityMatrixSimulator sim(5);
    const AssertionReport direct =
        analyze(inst, sim.run(inst.circuit(), 1000));
    const AssertionReport via_device =
        analyze(inst, sim.run(mapped.circuit, 1000));

    EXPECT_NEAR(direct.anyErrorRate, via_device.anyErrorRate, 1e-9);
    EXPECT_NEAR(direct.rawPayload.at(0b00),
                via_device.rawPayload.at(0b00), 1e-9);
}

TEST(EndToEndTest, MixedKindInstrumentationOnDevice)
{
    Circuit payload(3, 3, "mixed");
    payload.h(0).cx(0, 1).h(2);
    payload.measure(0, 0).measure(1, 1).measure(2, 2);

    AssertionSpec ent;
    ent.assertion = std::make_shared<EntanglementAssertion>(2);
    ent.targets = {0, 1};
    ent.insertAt = 2;

    AssertionSpec sup;
    sup.assertion = std::make_shared<SuperpositionAssertion>();
    sup.targets = {2};
    sup.insertAt = 3;

    const InstrumentedCircuit inst = instrument(payload, {ent, sup});
    const DeviceModel device = DeviceModel::ibmqx4();
    const TranspileResult mapped =
        transpile(inst.circuit(), device.couplingMap());

    DensityMatrixSimulator sim(6);
    sim.setNoiseModel(&device.noiseModel());
    const AssertionReport report =
        analyze(inst, sim.run(mapped.circuit, 4096));

    // Under realistic noise both checks fire occasionally but not
    // wildly; the filtered payload keeps the Bell correlation
    // stronger than the raw payload.
    for (double rate : report.checkErrorRates) {
        EXPECT_GT(rate, 0.0);
        EXPECT_LT(rate, 0.3);
    }

    auto bell_error = [](const stats::Distribution &d) {
        double err = 0.0;
        for (const auto &[payload_bits, p] : d) {
            const int b0 = payload_bits & 1;
            const int b1 = (payload_bits >> 1) & 1;
            if (b0 != b1)
                err += p;
        }
        return err;
    };
    EXPECT_LT(bell_error(report.filteredPayload),
              bell_error(report.rawPayload));
}

} // namespace
} // namespace qra
