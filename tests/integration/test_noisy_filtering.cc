/**
 * @file
 * Integration tests of the paper's NISQ error-filtering claim: on the
 * calibrated ibmqx4 model, discarding shots flagged by the assertion
 * ancilla lowers the payload error rate (Tables 1-2 shape).
 */

#include <gtest/gtest.h>

#include "assertions/classical_assertion.hh"
#include "assertions/entanglement_assertion.hh"
#include "assertions/injector.hh"
#include "assertions/report.hh"
#include "noise/device_model.hh"
#include "sim/density_simulator.hh"
#include "transpile/transpiler.hh"

namespace qra {
namespace {

TEST(NoisyFilteringTest, ClassicalAssertionReducesErrorRate)
{
    // Table 1 workload: q under test stays |0>, ancilla checks it.
    const DeviceModel device = DeviceModel::ibmqx4();

    Circuit payload(1, 1, "t1");
    payload.measure(0, 0);

    AssertionSpec spec;
    spec.assertion = std::make_shared<ClassicalAssertion>(0);
    spec.targets = {0};
    spec.insertAt = 0;
    const InstrumentedCircuit inst = instrument(payload, {spec});

    const TranspileResult mapped =
        transpile(inst.circuit(), device.couplingMap());

    DensityMatrixSimulator sim(1);
    sim.setNoiseModel(&device.noiseModel());
    const Result r = sim.run(mapped.circuit, 8192);

    const stats::ErrorRateReport report = errorRates(
        inst, r, [](std::uint64_t payload_bits) {
            return payload_bits != 0;
        });

    EXPECT_GT(report.rawErrorRate, 0.005);
    EXPECT_LT(report.rawErrorRate, 0.15);
    EXPECT_LT(report.filteredErrorRate, report.rawErrorRate);
    EXPECT_GT(report.reduction(), 0.05);
}

TEST(NoisyFilteringTest, EntanglementAssertionReducesErrorRate)
{
    // Table 2 workload: Bell pair + parity check ancilla.
    const DeviceModel device = DeviceModel::ibmqx4();

    Circuit payload(2, 2, "t2");
    payload.h(0).cx(0, 1);
    payload.measure(0, 0).measure(1, 1);

    AssertionSpec spec;
    spec.assertion = std::make_shared<EntanglementAssertion>(2);
    spec.targets = {0, 1};
    spec.insertAt = 2;
    const InstrumentedCircuit inst = instrument(payload, {spec});

    const TranspileResult mapped =
        transpile(inst.circuit(), device.couplingMap());

    DensityMatrixSimulator sim(2);
    sim.setNoiseModel(&device.noiseModel());
    const Result r = sim.run(mapped.circuit, 8192);

    const stats::ErrorRateReport report = errorRates(
        inst, r, [](std::uint64_t payload_bits) {
            // Error when the Bell qubits disagree.
            return payload_bits == 0b01 || payload_bits == 0b10;
        });

    EXPECT_GT(report.rawErrorRate, 0.02);
    EXPECT_LT(report.rawErrorRate, 0.35);
    EXPECT_LT(report.filteredErrorRate, report.rawErrorRate);
    EXPECT_GT(report.reduction(), 0.1);
}

TEST(NoisyFilteringTest, FilteringCostsShots)
{
    // The filter trades shots for fidelity: kept fraction < 1 under
    // noise, == 1 without noise.
    const DeviceModel device = DeviceModel::ibmqx4();

    Circuit payload(2, 2);
    payload.h(0).cx(0, 1);
    payload.measure(0, 0).measure(1, 1);

    AssertionSpec spec;
    spec.assertion = std::make_shared<EntanglementAssertion>(2);
    spec.targets = {0, 1};
    spec.insertAt = 2;
    const InstrumentedCircuit inst = instrument(payload, {spec});
    const TranspileResult mapped =
        transpile(inst.circuit(), device.couplingMap());

    DensityMatrixSimulator noisy(3);
    noisy.setNoiseModel(&device.noiseModel());
    const AssertionReport noisy_report =
        analyze(inst, noisy.run(mapped.circuit, 8192));
    EXPECT_LT(noisy_report.keptFraction, 0.999);
    EXPECT_GT(noisy_report.keptFraction, 0.5);

    DensityMatrixSimulator ideal(4);
    const AssertionReport ideal_report =
        analyze(inst, ideal.run(mapped.circuit, 8192));
    EXPECT_NEAR(ideal_report.keptFraction, 1.0, 1e-9);
}

TEST(NoisyFilteringTest, ReductionShrinksAsNoiseVanishes)
{
    // With noise scaled toward zero the raw error rate goes to zero;
    // the absolute benefit of filtering must shrink with it.
    Circuit payload(2, 2);
    payload.h(0).cx(0, 1);
    payload.measure(0, 0).measure(1, 1);

    AssertionSpec spec;
    spec.assertion = std::make_shared<EntanglementAssertion>(2);
    spec.targets = {0, 1};
    spec.insertAt = 2;
    const InstrumentedCircuit inst = instrument(payload, {spec});

    double previous_raw = 1.0;
    for (double scale : {1.0, 0.5, 0.1}) {
        const DeviceModel device =
            DeviceModel::ibmqx4().scaledNoise(scale);
        const TranspileResult mapped =
            transpile(inst.circuit(), device.couplingMap());
        DensityMatrixSimulator sim(5);
        sim.setNoiseModel(&device.noiseModel());
        const stats::ErrorRateReport report = errorRates(
            inst, sim.run(mapped.circuit, 4096),
            [](std::uint64_t p) { return p == 0b01 || p == 0b10; });
        EXPECT_LT(report.rawErrorRate, previous_raw);
        previous_raw = report.rawErrorRate;
    }
    EXPECT_LT(previous_raw, 0.05);
}

} // namespace
} // namespace qra
