/**
 * @file
 * Integration tests: real algorithms instrumented with assertions,
 * including the paper's motivating debugging scenarios (bugs caught
 * by the right assertion at the right program point).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "assertions/classical_assertion.hh"
#include "assertions/entanglement_assertion.hh"
#include "assertions/injector.hh"
#include "assertions/report.hh"
#include "assertions/superposition_assertion.hh"
#include "sim/statevector_simulator.hh"

namespace qra {
namespace {

/** Two-qubit Grover search for the marked item |11>. */
Circuit
grover2(bool inject_bug)
{
    Circuit c(2, 2, "grover2");
    // Superposition preamble (buggy version forgets H on q1).
    c.h(0);
    if (!inject_bug)
        c.h(1);
    // Oracle for |11>: CZ.
    c.cz(0, 1);
    // Diffusion.
    c.h(0).h(1);
    c.x(0).x(1);
    c.cz(0, 1);
    c.x(0).x(1);
    c.h(0).h(1);
    c.measureAll();
    return c;
}

/** Teleport the state RY(theta)|0> from qubit 0 to qubit 2. */
Circuit
teleport(double theta)
{
    Circuit c(3, 3, "teleport");
    c.ry(theta, 0);          // message
    c.h(1).cx(1, 2);         // Bell resource
    c.cx(0, 1).h(0);         // Bell measurement basis
    c.measure(0, 0).measure(1, 1);
    // Deferred corrections (quantum-controlled equivalent).
    c.cx(1, 2);
    c.cz(0, 2);
    c.measure(2, 2);
    return c;
}

double
assertionErrorRate(const InstrumentedCircuit &inst, const Result &r)
{
    double error = 0.0;
    for (const auto &[reg, n] : r.rawCounts())
        if (!inst.passed(reg))
            error += double(n) / double(r.shots());
    return error;
}

TEST(GroverIntegrationTest, CorrectGroverFindsMarkedItem)
{
    StatevectorSimulator sim(1);
    const Result r = sim.run(grover2(false), 2000);
    // One iteration of 2-qubit Grover is exact.
    EXPECT_EQ(r.count(0b11), 2000u);
}

TEST(GroverIntegrationTest, SuperpositionAssertionPassesOnCorrectCode)
{
    const Circuit payload = grover2(false);
    // Assert both input qubits are in |+> after the preamble
    // (instruction index 2 = after h(0), h(1)).
    std::vector<AssertionSpec> specs;
    for (Qubit q : {Qubit{0}, Qubit{1}}) {
        AssertionSpec spec;
        spec.assertion = std::make_shared<SuperpositionAssertion>();
        spec.targets = {q};
        spec.insertAt = 2;
        specs.push_back(spec);
    }
    const InstrumentedCircuit inst = instrument(payload, specs);
    StatevectorSimulator sim(2);
    const Result r = sim.run(inst.circuit(), 4000);
    EXPECT_NEAR(assertionErrorRate(inst, r), 0.0, 1e-12);
}

TEST(GroverIntegrationTest, SuperpositionAssertionCatchesMissingH)
{
    const Circuit payload = grover2(true);
    AssertionSpec spec;
    spec.assertion = std::make_shared<SuperpositionAssertion>();
    spec.targets = {1};  // the qubit whose H was dropped
    spec.insertAt = 1;   // after the (buggy) preamble
    const InstrumentedCircuit inst = instrument(payload, {spec});
    StatevectorSimulator sim(3);
    const Result r = sim.run(inst.circuit(), 20000);
    // Classical input to the superposition check: ~50% error rate,
    // unmistakably flagging the bug.
    EXPECT_NEAR(assertionErrorRate(inst, r), 0.5, 0.02);
}

TEST(TeleportIntegrationTest, TeleportDeliversTheState)
{
    const double theta = 1.1;
    StatevectorSimulator sim(4);
    const Result r = sim.run(teleport(theta), 40000);
    // P(q2 == 1) must equal sin^2(theta/2) regardless of the
    // correction bits.
    double p1 = 0.0;
    for (const auto &[reg, n] : r.rawCounts())
        if ((reg >> 2) & 1)
            p1 += double(n) / double(r.shots());
    EXPECT_NEAR(p1, std::pow(std::sin(theta / 2.0), 2), 0.01);
}

TEST(TeleportIntegrationTest, EntanglementAssertionGuardsResource)
{
    // Insert the entanglement check right after the Bell resource
    // is prepared (ops: ry, h, cx -> index 3).
    const Circuit payload = teleport(0.7);
    AssertionSpec spec;
    spec.assertion = std::make_shared<EntanglementAssertion>(2);
    spec.targets = {1, 2};
    spec.insertAt = 3;
    spec.label = "bell resource";
    const InstrumentedCircuit inst = instrument(payload, {spec});

    StatevectorSimulator sim(5);
    const Result r = sim.run(inst.circuit(), 4000);
    EXPECT_NEAR(assertionErrorRate(inst, r), 0.0, 1e-12);

    // Teleportation still works with the check in place.
    double p1 = 0.0;
    for (const auto &[reg, n] : r.rawCounts())
        if ((inst.payloadBits(reg) >> 2) & 1)
            p1 += double(n) / double(r.shots());
    EXPECT_NEAR(p1, std::pow(std::sin(0.35), 2), 0.02);
}

TEST(TeleportIntegrationTest, EntanglementAssertionCatchesBrokenBell)
{
    // Bug: the resource CX is dropped, so qubits 1,2 are |+>|0>.
    Circuit payload(3, 3, "teleport_buggy");
    payload.ry(0.7, 0);
    payload.h(1); // missing cx(1, 2)
    payload.cx(0, 1).h(0);
    payload.measure(0, 0).measure(1, 1);
    payload.cx(1, 2).cz(0, 2);
    payload.measure(2, 2);

    AssertionSpec spec;
    spec.assertion = std::make_shared<EntanglementAssertion>(2);
    spec.targets = {1, 2};
    spec.insertAt = 2;
    const InstrumentedCircuit inst = instrument(payload, {spec});

    StatevectorSimulator sim(6);
    const Result r = sim.run(inst.circuit(), 20000);
    // |+>|0> has odd parity with probability 1/2.
    EXPECT_NEAR(assertionErrorRate(inst, r), 0.5, 0.02);
}

TEST(BernsteinVaziraniTest, ClassicalAssertionValidatesAnswer)
{
    // BV with secret s = 101: output register must read s.
    const std::uint64_t secret = 0b101;
    Circuit c(4, 3, "bv");
    // Input register 0..2, oracle ancilla 3 in |->.
    c.x(3).h(3);
    c.h(0).h(1).h(2);
    for (Qubit q = 0; q < 3; ++q)
        if ((secret >> q) & 1)
            c.cx(q, 3);
    c.h(0).h(1).h(2);

    // Dynamic classical assertion: the answer register equals s
    // *before* the final measurement — exactly what the statistical
    // approach cannot do without consuming the state.
    AssertionSpec spec;
    spec.assertion = std::make_shared<ClassicalAssertion>(secret, 3);
    spec.targets = {0, 1, 2};
    spec.insertAt = c.size();
    InstrumentedCircuit inst = instrument(c, {spec});
    for (Qubit q = 0; q < 3; ++q)
        inst.circuit().measure(q, q);

    StatevectorSimulator sim(7);
    const Result r = sim.run(inst.circuit(), 2000);
    for (const auto &[reg, n] : r.rawCounts()) {
        EXPECT_TRUE(inst.passed(reg));
        EXPECT_EQ(inst.payloadBits(reg), secret);
    }
}

TEST(ChainedAssertionsTest, GhzPipelineWithThreeKinds)
{
    // Build GHZ, then assert: q0 classical ==0 pre-H, q0 in |+>
    // post-H, and all three entangled at the end.
    Circuit payload(3, 3, "ghz");
    payload.h(0);         // index 0
    payload.cx(0, 1);     // index 1
    payload.cx(1, 2);     // index 2
    payload.measureAll();

    AssertionSpec classical;
    classical.assertion = std::make_shared<ClassicalAssertion>(0);
    classical.targets = {1};
    classical.insertAt = 0; // before anything: q1 is |0>

    AssertionSpec superpos;
    superpos.assertion = std::make_shared<SuperpositionAssertion>();
    superpos.targets = {0};
    superpos.insertAt = 1; // right after h(0)

    AssertionSpec entangle;
    entangle.assertion = std::make_shared<EntanglementAssertion>(3);
    entangle.targets = {0, 1, 2};
    entangle.insertAt = 3; // after the full GHZ prep

    const InstrumentedCircuit inst =
        instrument(payload, {classical, superpos, entangle});
    StatevectorSimulator sim(8);
    const Result r = sim.run(inst.circuit(), 4000);

    const AssertionReport report = analyze(inst, r);
    for (double rate : report.checkErrorRates)
        EXPECT_NEAR(rate, 0.0, 1e-12);
    // GHZ statistics intact on the payload.
    EXPECT_NEAR(report.rawPayload.at(0b000), 0.5, 0.03);
    EXPECT_NEAR(report.rawPayload.at(0b111), 0.5, 0.03);
}

} // namespace
} // namespace qra
