/** @file Tests for router, direction fixer, decomposer, optimiser. */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "noise/device_model.hh"
#include "testutil.hh"
#include "transpile/decomposer.hh"
#include "transpile/direction_fixer.hh"
#include "transpile/optimizer.hh"
#include "transpile/router.hh"

namespace qra {
namespace {

CouplingMap
lineMap(std::size_t n)
{
    CouplingMap map(n);
    for (Qubit q = 0; q + 1 < n; ++q)
        map.addEdge(q, q + 1);
    return map;
}

TEST(RouterTest, CoupledGatePassesThrough)
{
    const CouplingMap map = lineMap(3);
    Circuit c(3);
    c.cx(0, 1);
    const RoutedCircuit routed = routeCircuit(c, map, Layout(3));
    EXPECT_EQ(routed.insertedSwaps, 0u);
    EXPECT_EQ(routed.circuit.size(), 1u);
}

TEST(RouterTest, InsertsSwapsForDistantPair)
{
    const CouplingMap map = lineMap(4);
    Circuit c(4);
    c.cx(0, 3);
    const RoutedCircuit routed = routeCircuit(c, map, Layout(4));
    EXPECT_EQ(routed.insertedSwaps, 2u);
    // Every 2q gate in the output must be coupled.
    for (const Operation &op : routed.circuit.ops()) {
        if (op.qubits.size() == 2)
            EXPECT_TRUE(map.connected(op.qubits[0], op.qubits[1]))
                << op.str();
    }
}

TEST(RouterTest, RoutedCircuitPreservesSemantics)
{
    const CouplingMap map = lineMap(4);
    Circuit c(4);
    c.h(0).cx(0, 3).cx(1, 2).h(3);
    const RoutedCircuit routed = routeCircuit(c, map, Layout(4));

    // Execute both; undo the final layout permutation on the routed
    // result by comparing marginals of virtual qubits.
    StatevectorSimulator sim(3);
    const StateVector ideal = sim.finalState(c);
    const StateVector mapped = sim.finalState(routed.circuit);

    for (Qubit v = 0; v < 4; ++v) {
        const Qubit p = routed.finalLayout.physical(v);
        EXPECT_NEAR(ideal.probabilityOfOne(v),
                    mapped.probabilityOfOne(p), 1e-9)
            << "virtual " << v;
    }
}

TEST(RouterTest, CcxRejected)
{
    const CouplingMap map = lineMap(3);
    Circuit c(3);
    c.ccx(0, 1, 2);
    EXPECT_THROW(routeCircuit(c, map, Layout(3)), TranspileError);
}

TEST(RouterTest, DisconnectedMapRejected)
{
    CouplingMap map(4);
    map.addEdge(0, 1);
    map.addEdge(2, 3);
    Circuit c(4);
    c.cx(0, 3);
    EXPECT_THROW(routeCircuit(c, map, Layout(4)), TranspileError);
}

TEST(DirectionFixerTest, NativeDirectionUntouched)
{
    const CouplingMap map = DeviceModel::ibmqx4().couplingMap();
    Circuit c(5);
    c.cx(1, 0);
    const DirectionFixResult fixed = fixDirections(c, map);
    EXPECT_EQ(fixed.reversedCx, 0u);
    EXPECT_EQ(fixed.circuit.size(), 1u);
}

TEST(DirectionFixerTest, ReversedCxGetsHadamards)
{
    const CouplingMap map = DeviceModel::ibmqx4().couplingMap();
    Circuit c(5);
    c.cx(0, 1); // native is 1->0
    const DirectionFixResult fixed = fixDirections(c, map);
    EXPECT_EQ(fixed.reversedCx, 1u);
    EXPECT_EQ(fixed.circuit.size(), 5u); // 4 H + 1 CX
    const auto counts = fixed.circuit.countOps();
    EXPECT_EQ(counts.at("h"), 4u);
    EXPECT_EQ(counts.at("cx"), 1u);
}

TEST(DirectionFixerTest, ReversalPreservesUnitary)
{
    CouplingMap map(2);
    map.addEdge(1, 0);
    Circuit c(2);
    c.cx(0, 1);
    const DirectionFixResult fixed = fixDirections(c, map);
    test::expectUnitaryEquivalent(c, fixed.circuit);
}

TEST(DirectionFixerTest, SymmetricGatesPass)
{
    CouplingMap map(2);
    map.addEdge(1, 0);
    Circuit c(2);
    c.cz(0, 1).swap(0, 1);
    const DirectionFixResult fixed = fixDirections(c, map);
    EXPECT_EQ(fixed.reversedCx, 0u);
    EXPECT_EQ(fixed.circuit.size(), 2u);
}

TEST(DirectionFixerTest, UncoupledPairRejected)
{
    const CouplingMap map = DeviceModel::ibmqx4().couplingMap();
    Circuit c(5);
    c.cx(0, 3);
    EXPECT_THROW(fixDirections(c, map), TranspileError);
}

TEST(DecomposerTest, SwapBecomesThreeCx)
{
    Circuit c(2);
    c.swap(0, 1);
    const Circuit lowered = decompose(c);
    EXPECT_EQ(lowered.countOps().at("cx"), 3u);
    test::expectUnitaryEquivalent(c, lowered);
}

TEST(DecomposerTest, CcxDecompositionIsCorrect)
{
    Circuit c(3);
    c.ccx(0, 1, 2);
    const Circuit lowered = decompose(c);
    EXPECT_EQ(lowered.countOps().at("cx"), 6u);
    EXPECT_EQ(lowered.countOps().count("ccx"), 0u);
    test::expectUnitaryEquivalent(c, lowered);
}

TEST(DecomposerTest, ControlledPaulisOptIn)
{
    Circuit c(2);
    c.cz(0, 1).cy(0, 1);
    DecomposeOptions opts;
    opts.decomposeControlledPaulis = true;
    const Circuit lowered = decompose(c, opts);
    EXPECT_EQ(lowered.countOps().count("cz"), 0u);
    EXPECT_EQ(lowered.countOps().count("cy"), 0u);
    test::expectUnitaryEquivalent(c, lowered);
}

TEST(OptimizerTest, CancelsAdjacentInversePairs)
{
    Circuit c(2);
    c.h(0).h(0).cx(0, 1).cx(0, 1).s(1).sdg(1).t(0).tdg(0).x(1).x(1);
    const OptimizeResult opt = optimizeCircuit(c);
    EXPECT_TRUE(opt.circuit.empty());
    EXPECT_EQ(opt.cancelledGates, 10u);
}

TEST(OptimizerTest, KeepsNonCancellingGates)
{
    Circuit c(2);
    c.h(0).cx(0, 1).h(0);
    const OptimizeResult opt = optimizeCircuit(c);
    EXPECT_EQ(opt.circuit.size(), 3u);
    EXPECT_EQ(opt.cancelledGates, 0u);
}

TEST(OptimizerTest, DifferentOperandsDoNotCancel)
{
    Circuit c(3);
    c.cx(0, 1).cx(1, 0).cx(0, 2).cx(0, 2);
    const OptimizeResult opt = optimizeCircuit(c);
    // Only the cx(0,2) pair cancels.
    EXPECT_EQ(opt.circuit.size(), 2u);
}

TEST(OptimizerTest, BarrierBlocksCancellation)
{
    Circuit c(1);
    c.h(0).barrier().h(0);
    const OptimizeResult opt = optimizeCircuit(c);
    EXPECT_EQ(opt.circuit.countOps().at("h"), 2u);
}

TEST(OptimizerTest, MergesRotations)
{
    Circuit c(1);
    c.rx(0.3, 0).rx(0.4, 0);
    const OptimizeResult opt = optimizeCircuit(c);
    ASSERT_EQ(opt.circuit.size(), 1u);
    EXPECT_NEAR(opt.circuit.ops()[0].params[0], 0.7, 1e-12);
    EXPECT_EQ(opt.mergedRotations, 1u);
}

TEST(OptimizerTest, MergedNullRotationVanishes)
{
    Circuit c(1);
    c.rz(1.1, 0).rz(-1.1, 0);
    const OptimizeResult opt = optimizeCircuit(c);
    EXPECT_TRUE(opt.circuit.empty());
}

TEST(OptimizerTest, CascadingCancellation)
{
    // x h h x collapses completely via repeated passes.
    Circuit c(1);
    c.x(0).h(0).h(0).x(0);
    const OptimizeResult opt = optimizeCircuit(c);
    EXPECT_TRUE(opt.circuit.empty());
}

TEST(OptimizerTest, PreservesSemantics)
{
    Circuit c(2);
    c.h(0).t(0).tdg(0).cx(0, 1).x(1).x(1).s(0);
    const OptimizeResult opt = optimizeCircuit(c);
    test::expectUnitaryEquivalent(c, opt.circuit);
}

} // namespace
} // namespace qra
