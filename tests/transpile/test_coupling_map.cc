/** @file Tests for the CouplingMap graph. */

#include <limits>

#include <gtest/gtest.h>

#include "common/error.hh"
#include "transpile/coupling_map.hh"

namespace qra {
namespace {

CouplingMap
lineMap(std::size_t n)
{
    CouplingMap map(n);
    for (Qubit q = 0; q + 1 < n; ++q)
        map.addEdge(q, q + 1);
    return map;
}

TEST(CouplingMapTest, EdgeBasics)
{
    CouplingMap map(3);
    map.addEdge(0, 1);
    EXPECT_TRUE(map.hasEdge(0, 1));
    EXPECT_FALSE(map.hasEdge(1, 0));
    EXPECT_TRUE(map.connected(0, 1));
    EXPECT_TRUE(map.connected(1, 0));
    EXPECT_FALSE(map.connected(0, 2));
}

TEST(CouplingMapTest, Validation)
{
    CouplingMap map(2);
    EXPECT_THROW(map.addEdge(0, 0), TranspileError);
    EXPECT_THROW(map.addEdge(0, 5), TranspileError);
    EXPECT_THROW(CouplingMap(0), TranspileError);
}

TEST(CouplingMapTest, DuplicateEdgeIgnored)
{
    CouplingMap map(2);
    map.addEdge(0, 1);
    map.addEdge(0, 1);
    EXPECT_EQ(map.edges().size(), 1u);
}

TEST(CouplingMapTest, Neighbors)
{
    CouplingMap map(4);
    map.addEdge(0, 1);
    map.addEdge(2, 0);
    const auto nb = map.neighbors(0);
    EXPECT_EQ(nb.size(), 2u);
}

TEST(CouplingMapTest, ShortestPathOnLine)
{
    const CouplingMap map = lineMap(5);
    const auto path = map.shortestPath(0, 4);
    EXPECT_EQ(path, (std::vector<Qubit>{0, 1, 2, 3, 4}));
    EXPECT_EQ(map.distance(0, 4), 4u);
    EXPECT_EQ(map.distance(2, 2), 0u);
    EXPECT_EQ(map.shortestPath(3, 3), (std::vector<Qubit>{3}));
}

TEST(CouplingMapTest, PathIgnoresDirection)
{
    CouplingMap map(3);
    map.addEdge(1, 0);
    map.addEdge(2, 1);
    // 0 -> 2 exists undirected.
    EXPECT_EQ(map.distance(0, 2), 2u);
}

TEST(CouplingMapTest, Disconnected)
{
    CouplingMap map(4);
    map.addEdge(0, 1);
    map.addEdge(2, 3);
    EXPECT_FALSE(map.isConnected());
    EXPECT_TRUE(map.shortestPath(0, 3).empty());
    EXPECT_EQ(map.distance(0, 3),
              std::numeric_limits<std::size_t>::max());
}

TEST(CouplingMapTest, StrListsEdges)
{
    CouplingMap map(2);
    map.addEdge(1, 0);
    EXPECT_EQ(map.str(), "1->0");
}

} // namespace
} // namespace qra
