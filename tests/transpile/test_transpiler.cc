/** @file Tests for the full transpiler pipeline. */

#include <gtest/gtest.h>

#include "noise/device_model.hh"
#include "testutil.hh"
#include "transpile/transpiler.hh"

namespace qra {
namespace {

/** Every 2q gate lies on a native directed edge. */
void
expectDeviceCompatible(const Circuit &c, const CouplingMap &map)
{
    for (const Operation &op : c.ops()) {
        if (op.qubits.size() != 2 || !opIsUnitary(op.kind))
            continue;
        if (op.kind == OpKind::CX) {
            EXPECT_TRUE(map.hasEdge(op.qubits[0], op.qubits[1]))
                << op.str();
        } else {
            EXPECT_TRUE(map.connected(op.qubits[0], op.qubits[1]))
                << op.str();
        }
    }
}

TEST(TranspilerTest, BellCircuitOnIbmqx4)
{
    const CouplingMap map = DeviceModel::ibmqx4().couplingMap();
    Circuit c(2, 2);
    c.h(0).cx(0, 1).measureAll();
    const TranspileResult result = transpile(c, map);
    expectDeviceCompatible(result.circuit, map);
    EXPECT_EQ(result.circuit.numQubits(), 5u);
    EXPECT_EQ(result.circuit.numClbits(), 2u);
}

TEST(TranspilerTest, PreservesMeasurementWiring)
{
    const CouplingMap map = DeviceModel::ibmqx4().couplingMap();
    Circuit c(2, 2);
    c.x(0).measure(0, 0).measure(1, 1);
    const TranspileResult result = transpile(c, map);

    // Executing the transpiled circuit gives the same register
    // distribution (clbits are independent of the physical layout).
    StatevectorSimulator sim(1);
    const Result ideal = sim.run(c, 200);
    const Result mapped = sim.run(result.circuit, 200);
    EXPECT_EQ(ideal.rawCounts(), mapped.rawCounts());
}

TEST(TranspilerTest, DistantPairGetsRouted)
{
    const CouplingMap map = DeviceModel::ibmqx4().couplingMap();
    Circuit c(5, 5);
    c.h(0).cx(0, 3).measureAll(); // 0 and 3 are not coupled
    TranspileOptions opts;
    opts.useGreedyLayout = false; // force a routing-hostile layout
    const TranspileResult result = transpile(c, map, opts);
    expectDeviceCompatible(result.circuit, map);
    EXPECT_GT(result.insertedSwaps + result.reversedCx, 0u);
}

TEST(TranspilerTest, GreedyLayoutAvoidsSwapsWherePossible)
{
    const CouplingMap map = DeviceModel::ibmqx4().couplingMap();
    Circuit c(3, 3);
    c.h(0).cx(0, 1).cx(0, 2).measureAll();
    const TranspileResult greedy = transpile(c, map);
    EXPECT_EQ(greedy.insertedSwaps, 0u);
}

TEST(TranspilerTest, SemanticsPreservedThroughPipeline)
{
    const CouplingMap map = DeviceModel::ibmqx4().couplingMap();
    Circuit c(3, 3);
    c.h(0).cx(0, 1).t(1).cx(1, 2).h(2).measureAll();
    const TranspileResult result = transpile(c, map);

    StatevectorSimulator sim(99);
    const Result ideal = sim.run(c, 20000);
    sim.seed(99);
    const Result mapped = sim.run(result.circuit, 20000);

    // Compare distributions (both over the payload clbits).
    for (const auto &[key, n] : ideal.rawCounts()) {
        EXPECT_NEAR(double(n) / 20000.0,
                    mapped.probability(key), 0.02)
            << "outcome " << key;
    }
}

TEST(TranspilerTest, CcxLoweredBeforeRouting)
{
    const CouplingMap map = DeviceModel::ibmqx4().couplingMap();
    Circuit c(3, 3);
    c.ccx(0, 1, 2).measureAll();
    const TranspileResult result = transpile(c, map);
    expectDeviceCompatible(result.circuit, map);
    EXPECT_EQ(result.circuit.countOps().count("ccx"), 0u);
}

TEST(TranspilerTest, StrSummarises)
{
    const CouplingMap map = DeviceModel::ibmqx4().couplingMap();
    Circuit c(2);
    c.cx(0, 1);
    const TranspileResult result = transpile(c, map);
    EXPECT_NE(result.str().find("transpiled:"), std::string::npos);
}

} // namespace
} // namespace qra
