/** @file Tests for Layout and layout selection strategies. */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "noise/device_model.hh"
#include "transpile/layout.hh"

namespace qra {
namespace {

TEST(LayoutTest, IdentityLayout)
{
    Layout layout(4);
    for (Qubit q = 0; q < 4; ++q) {
        EXPECT_EQ(layout.physical(q), q);
        EXPECT_EQ(layout.virtualOf(q), q);
    }
}

TEST(LayoutTest, ExplicitLayoutValidatesBijection)
{
    EXPECT_NO_THROW(Layout({2, 0, 1}));
    EXPECT_THROW(Layout({0, 0, 1}), TranspileError);
    EXPECT_THROW(Layout({0, 5, 1}), TranspileError);
}

TEST(LayoutTest, SwapPhysicalUpdatesBothDirections)
{
    Layout layout(3);
    layout.swapPhysical(0, 2);
    EXPECT_EQ(layout.physical(0), 2u);
    EXPECT_EQ(layout.physical(2), 0u);
    EXPECT_EQ(layout.virtualOf(2), 0u);
    EXPECT_EQ(layout.virtualOf(0), 2u);
    EXPECT_EQ(layout.physical(1), 1u);
}

TEST(LayoutTest, OutOfRangeThrows)
{
    Layout layout(2);
    EXPECT_THROW(layout.physical(2), TranspileError);
    EXPECT_THROW(layout.virtualOf(9), TranspileError);
}

TEST(LayoutTest, TrivialLayoutRequiresFit)
{
    const CouplingMap map = DeviceModel::ibmqx4().couplingMap();
    Circuit big(6);
    EXPECT_THROW(trivialLayout(big, map), TranspileError);
    Circuit ok(3);
    EXPECT_EQ(trivialLayout(ok, map).numQubits(), 5u);
}

TEST(LayoutTest, GreedyPlacesInteractingPairAdjacent)
{
    const CouplingMap map = DeviceModel::ibmqx4().couplingMap();
    // Virtual qubits 0 and 1 interact heavily.
    Circuit c(3);
    c.cx(0, 1).cx(0, 1).cx(0, 1).cx(1, 2);
    const Layout layout = greedyLayout(c, map);
    EXPECT_TRUE(map.connected(layout.physical(0), layout.physical(1)));
}

TEST(LayoutTest, GreedyIsBijective)
{
    const CouplingMap map = DeviceModel::ibmqx4().couplingMap();
    Circuit c(5);
    c.cx(0, 4).cx(4, 2).cx(1, 3);
    const Layout layout = greedyLayout(c, map);
    std::vector<bool> used(5, false);
    for (Qubit v = 0; v < 5; ++v) {
        const Qubit p = layout.physical(v);
        EXPECT_FALSE(used[p]);
        used[p] = true;
    }
}

TEST(LayoutTest, GreedyHandlesNoInteractions)
{
    const CouplingMap map = DeviceModel::ibmqx4().couplingMap();
    Circuit c(3);
    c.h(0).h(1).h(2);
    EXPECT_NO_THROW(greedyLayout(c, map));
}

} // namespace
} // namespace qra
