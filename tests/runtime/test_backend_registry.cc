/**
 * @file
 * BackendRegistry: builtin registration, capability flags, creation,
 * custom registration, and auto-selection policy.
 */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "library/algorithms.hh"
#include "noise/device_model.hh"
#include "runtime/backend_registry.hh"
#include "runtime/builtin_backends.hh"

using namespace qra;
using namespace qra::runtime;

TEST(BackendRegistry, GlobalHasAllBuiltins)
{
    const auto names = BackendRegistry::global().names();
    EXPECT_EQ(names.size(), 4u);
    for (const char *name :
         {"density", "stabilizer", "statevector", "trajectory"})
        EXPECT_TRUE(BackendRegistry::global().contains(name))
            << "missing builtin backend " << name;
}

TEST(BackendRegistry, CreateReturnsCachedInstance)
{
    auto &registry = BackendRegistry::global();
    const BackendPtr a = registry.create("statevector");
    const BackendPtr b = registry.create("statevector");
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a.get(), b.get()) << "stateless backends should be cached";
    EXPECT_EQ(a->name(), "statevector");
}

TEST(BackendRegistry, UnknownNameThrowsListingKnown)
{
    try {
        BackendRegistry::global().create("qpu9000");
        FAIL() << "expected ValueError";
    } catch (const ValueError &e) {
        const std::string message = e.what();
        EXPECT_NE(message.find("qpu9000"), std::string::npos);
        EXPECT_NE(message.find("statevector"), std::string::npos);
    }
}

TEST(BackendRegistry, CapabilityFlags)
{
    auto &registry = BackendRegistry::global();
    const auto &sv = registry.create("statevector")->capabilities();
    EXPECT_FALSE(sv.supportsNoise);
    EXPECT_TRUE(sv.supportsMidCircuitMeasurement);
    EXPECT_TRUE(sv.shardable);

    const auto &density = registry.create("density")->capabilities();
    EXPECT_TRUE(density.supportsNoise);
    EXPECT_FALSE(density.supportsMidCircuitMeasurement);
    EXPECT_TRUE(density.exactDistribution);
    EXPECT_FALSE(density.shardable);

    const auto &traj = registry.create("trajectory")->capabilities();
    EXPECT_TRUE(traj.supportsNoise);
    EXPECT_TRUE(traj.supportsMidCircuitMeasurement);

    const auto &stab = registry.create("stabilizer")->capabilities();
    EXPECT_TRUE(stab.cliffordOnly);
    EXPECT_GT(stab.maxQubits, sv.maxQubits);
}

TEST(BackendRegistry, RejectReasons)
{
    auto &registry = BackendRegistry::global();
    Circuit t_gate(1, 1);
    t_gate.t(0).measure(0, 0);
    EXPECT_FALSE(
        registry.create("stabilizer")->supports(t_gate, nullptr));
    EXPECT_TRUE(
        registry.create("statevector")->supports(t_gate, nullptr));

    // Ancilla reuse: measured qubit gated again.
    Circuit reuse(2, 2);
    reuse.h(0).measure(0, 0).x(0).measure(1, 1);
    EXPECT_FALSE(registry.create("density")->supports(reuse, nullptr));
    EXPECT_TRUE(
        registry.create("trajectory")->supports(reuse, nullptr));

    // Noise on a noiseless backend.
    const DeviceModel device = DeviceModel::ibmqx4();
    Circuit bell(2, 2);
    bell.h(0).cx(0, 1).measureAll();
    EXPECT_FALSE(registry.create("statevector")
                     ->supports(bell, &device.noiseModel()));
    EXPECT_TRUE(registry.create("density")
                    ->supports(bell, &device.noiseModel()));
}

TEST(BackendRegistry, AutoPicksStatevectorForSmallIdealCircuits)
{
    Circuit bell(2, 2);
    bell.h(0).cx(0, 1).measureAll();
    const BackendPtr backend =
        BackendRegistry::global().resolveAuto(bell, nullptr);
    EXPECT_EQ(backend->name(), "statevector");
}

TEST(BackendRegistry, AutoPicksDensityForNoisyCircuits)
{
    const DeviceModel device = DeviceModel::ibmqx4();
    Circuit bell(2, 2);
    bell.h(0).cx(0, 1).measureAll();
    const BackendPtr backend = BackendRegistry::global().resolveAuto(
        bell, &device.noiseModel());
    EXPECT_EQ(backend->name(), "density");
}

TEST(BackendRegistry, AutoFallsBackToTrajectoryForNoisyReuse)
{
    const DeviceModel device = DeviceModel::ibmqx4();
    Circuit reuse(2, 2);
    reuse.h(0).measure(0, 0).x(0).measure(1, 1);
    const BackendPtr backend = BackendRegistry::global().resolveAuto(
        reuse, &device.noiseModel());
    EXPECT_EQ(backend->name(), "trajectory");
}

TEST(BackendRegistry, AutoPicksStabilizerForLargeCliffordCircuits)
{
    Circuit ghz = library::ghzState(24);
    ghz.addClbits(24);
    ghz.measureAll();
    const BackendPtr backend =
        BackendRegistry::global().resolveAuto(ghz, nullptr);
    EXPECT_EQ(backend->name(), "stabilizer");
}

TEST(BackendRegistry, ResolveRoutesAutoAndNames)
{
    Circuit bell(2, 2);
    bell.h(0).cx(0, 1).measureAll();
    auto &registry = BackendRegistry::global();
    EXPECT_EQ(registry.resolve("auto", bell)->name(), "statevector");
    EXPECT_EQ(registry.resolve("trajectory", bell)->name(),
              "trajectory");
}

TEST(BackendRegistry, CustomRegistration)
{
    BackendRegistry registry;
    EXPECT_TRUE(registry.names().empty());
    registerBuiltinBackends(registry);
    EXPECT_EQ(registry.names().size(), 4u);

    // Replace one name with another factory.
    registry.registerBackend("statevector", makeTrajectoryBackend);
    EXPECT_EQ(registry.create("statevector")->name(), "trajectory");
}
