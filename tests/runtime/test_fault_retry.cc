/**
 * @file
 * Fault injection and retry: the FaultPlan grammar, the transient/
 * permanent error taxonomy, seeded backoff, and the recovery
 * contract — a job that retries through injected transient faults
 * produces counts bit-identical to a fault-free run.
 */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "runtime/execution_engine.hh"
#include "runtime/fault.hh"
#include "runtime/job_queue.hh"
#include "runtime/retry.hh"

using namespace qra;
using namespace qra::runtime;

namespace {

Circuit
bellCircuit()
{
    Circuit c(2, 2, "bell");
    c.h(0).cx(0, 1).measureAll();
    return c;
}

EngineOptions
eightShardOptions(std::size_t threads)
{
    EngineOptions options;
    options.threads = threads;
    options.shardShots = 256;
    return options;
}

RetryPolicy
fastRetry(std::size_t attempts)
{
    RetryPolicy retry;
    retry.maxAttempts = attempts;
    retry.baseBackoffMs = 0.01; // keep test wall time negligible
    return retry;
}

std::shared_ptr<const FaultPlan>
plan(const std::string &spec)
{
    return std::make_shared<const FaultPlan>(FaultPlan::parse(spec));
}

} // namespace

TEST(FaultPlan, ParseGrammar)
{
    const FaultPlan p = FaultPlan::parse(
        "shard:2:throw,shard:5:badalloc:3,wave:1:throw:perm,"
        "prepare:stall,rate:0.25:badalloc,seed:42,stall-ms:7");
    ASSERT_EQ(p.sites.size(), 4u);
    EXPECT_EQ(p.sites[0].scope, FaultSite::Scope::Shard);
    EXPECT_EQ(p.sites[0].index, 2u);
    EXPECT_EQ(p.sites[0].kind, FaultKind::Throw);
    EXPECT_EQ(p.sites[0].times, 1u);
    EXPECT_FALSE(p.sites[0].permanent);
    EXPECT_EQ(p.sites[1].kind, FaultKind::BadAlloc);
    EXPECT_EQ(p.sites[1].times, 3u);
    EXPECT_EQ(p.sites[2].scope, FaultSite::Scope::Wave);
    EXPECT_TRUE(p.sites[2].permanent);
    EXPECT_EQ(p.sites[3].scope, FaultSite::Scope::Prepare);
    EXPECT_EQ(p.sites[3].kind, FaultKind::Stall);
    EXPECT_DOUBLE_EQ(p.shardFaultRate, 0.25);
    EXPECT_EQ(p.rateKind, FaultKind::BadAlloc);
    EXPECT_EQ(p.seed, 42u);
    EXPECT_EQ(p.stallMs, 7u);
    EXPECT_FALSE(p.empty());
    EXPECT_TRUE(FaultPlan{}.empty());
    // str() re-renders in the spec grammar.
    EXPECT_NE(p.str().find("shard:2:throw"), std::string::npos);
    EXPECT_NE(p.str().find("rate:0.25:badalloc"), std::string::npos);
}

TEST(FaultPlan, ParseRejectsMalformedSpecs)
{
    EXPECT_THROW(FaultPlan::parse("shard:2"), ValueError);
    EXPECT_THROW(FaultPlan::parse("shard:x:throw"), ValueError);
    EXPECT_THROW(FaultPlan::parse("shard:1:explode"), ValueError);
    EXPECT_THROW(FaultPlan::parse("shard:1:throw:0"), ValueError);
    EXPECT_THROW(FaultPlan::parse("rate:1.5:throw"), ValueError);
    EXPECT_THROW(FaultPlan::parse("rate:0.5"), ValueError);
    EXPECT_THROW(FaultPlan::parse("gremlin:1:throw"), ValueError);
    EXPECT_THROW(FaultPlan::parse("seed:"), ValueError);
}

TEST(FaultPlan, FiresDeterministically)
{
    const FaultPlan p =
        FaultPlan::parse("shard:2:throw:2,wave:1:badalloc:perm");
    FaultKind kind;
    bool permanent;
    // Fixed site: attempts 0 and 1 fire, attempt 2 does not.
    EXPECT_TRUE(p.shouldFire(FaultSite::Scope::Shard, 2, 0, &kind,
                             &permanent));
    EXPECT_TRUE(p.shouldFire(FaultSite::Scope::Shard, 2, 1, &kind,
                             &permanent));
    EXPECT_FALSE(p.shouldFire(FaultSite::Scope::Shard, 2, 2, &kind,
                              &permanent));
    EXPECT_FALSE(p.shouldFire(FaultSite::Scope::Shard, 3, 0, &kind,
                              &permanent));
    // Permanent site: every attempt.
    EXPECT_TRUE(p.shouldFire(FaultSite::Scope::Wave, 1, 7, &kind,
                             &permanent));
    EXPECT_TRUE(permanent);

    // Rate sites: the same (plan seed, shard, attempt) triple always
    // decides the same way.
    const FaultPlan r1 = FaultPlan::parse("rate:0.5:throw,seed:9");
    const FaultPlan r2 = FaultPlan::parse("rate:0.5:throw,seed:9");
    for (std::size_t shard = 0; shard < 32; ++shard) {
        FaultKind k1, k2;
        bool p1, p2;
        EXPECT_EQ(r1.shouldFire(FaultSite::Scope::Shard, shard, 0,
                                &k1, &p1),
                  r2.shouldFire(FaultSite::Scope::Shard, shard, 0,
                                &k2, &p2));
    }
}

TEST(ErrorTaxonomy, IsTransientClassification)
{
    EXPECT_FALSE(isTransient(nullptr));
    EXPECT_TRUE(isTransient(std::make_exception_ptr(
        TransientSimulationError("flaky"))));
    EXPECT_FALSE(isTransient(
        std::make_exception_ptr(SimulationError("broken"))));
    EXPECT_FALSE(
        isTransient(std::make_exception_ptr(ValueError("bad arg"))));
    EXPECT_TRUE(isTransient(std::make_exception_ptr(std::bad_alloc())));
    EXPECT_FALSE(
        isTransient(std::make_exception_ptr(std::runtime_error("?"))));
}

TEST(RetryBackoff, SeededExponentialJitter)
{
    RetryPolicy policy;
    policy.baseBackoffMs = 2.0;
    policy.jitterFrac = 0.25;
    EXPECT_DOUBLE_EQ(retryBackoffMs(policy, 0, 7), 0.0);

    // Deterministic: same (policy, attempt, seed) → same delay.
    EXPECT_DOUBLE_EQ(retryBackoffMs(policy, 1, 7),
                     retryBackoffMs(policy, 1, 7));
    // Exponential envelope with ±25% jitter.
    for (std::size_t attempt = 1; attempt <= 6; ++attempt) {
        const double base = 2.0 * static_cast<double>(1u << (attempt - 1));
        const double d = retryBackoffMs(policy, attempt, 7);
        EXPECT_GE(d, base * 0.75);
        EXPECT_LE(d, base * 1.25);
    }
    // Jitter off: exact exponential.
    policy.jitterFrac = 0.0;
    EXPECT_DOUBLE_EQ(retryBackoffMs(policy, 3, 123), 8.0);
}

TEST(Retry, RecoveredRunIsBitIdenticalToFaultFree)
{
    // Two transient faults (throw + bad_alloc) on different shards;
    // with retries the job completes and — because retried shards
    // reuse their original RNG streams — the counts match the
    // fault-free run exactly. The acceptance criterion of the
    // robustness work.
    for (const std::size_t threads : {1u, 4u}) {
        ExecutionEngine engine(eightShardOptions(threads));
        const Result clean = engine.run(Job(bellCircuit(), 2048));

        Job job(bellCircuit(), 2048);
        job.retry = fastRetry(3);
        job.faults = plan("shard:2:throw,shard:5:badalloc");
        const Result recovered = engine.run(job);

        EXPECT_EQ(recovered.rawCounts(), clean.rawCounts());
        EXPECT_EQ(recovered.execStats().retries, 2u);
        EXPECT_FALSE(recovered.cancelled());
    }
}

TEST(Retry, AdaptiveRecoveryMatchesToo)
{
    ExecutionEngine engine(eightShardOptions(1));
    const Result clean = engine.run(Job(bellCircuit(), 2048));

    Job job(bellCircuit(), 2048);
    job.stopping.waveShots = 512;
    job.retry = fastRetry(3);
    job.faults = plan("shard:1:throw:2");
    const Result recovered = engine.runAdaptive(job);

    EXPECT_EQ(recovered.rawCounts(), clean.rawCounts());
    EXPECT_EQ(recovered.execStats().retries, 2u);
}

TEST(Retry, PermanentAndExhaustedFaultsPropagate)
{
    ExecutionEngine engine(eightShardOptions(1));

    // Permanent faults are never retried, however generous the
    // policy.
    Job permanent(bellCircuit(), 2048);
    permanent.retry = fastRetry(5);
    permanent.faults = plan("shard:2:throw:perm");
    EXPECT_THROW(engine.run(permanent), SimulationError);

    // A transient fault outlasting the attempt budget propagates as
    // the transient error it is.
    Job exhausted(bellCircuit(), 2048);
    exhausted.retry = fastRetry(2);
    exhausted.faults = plan("shard:2:throw:5");
    EXPECT_THROW(engine.run(exhausted), TransientSimulationError);

    // No policy at all: the first transient failure propagates.
    Job bare(bellCircuit(), 2048);
    bare.faults = plan("shard:2:throw");
    EXPECT_THROW(engine.run(bare), TransientSimulationError);
}

TEST(JobQueue, PrepareFaultEvictsPoisonedKey)
{
    // Regression: a throw inside prepare must evict the in-flight
    // cache entry, so the same spec can be prepared again — the
    // second submission builds cleanly instead of inheriting the
    // first one's failure, and the third hits the cache.
    ExecutionEngine engine(eightShardOptions(1));
    JobQueue queue(engine);

    JobSpec spec;
    spec.circuit = bellCircuit();
    spec.shots = 512;
    spec.faults = plan("prepare:throw");

    EXPECT_THROW(queue.submit(spec), TransientSimulationError);
    EXPECT_EQ(queue.cacheMisses(), 0u);

    const Result result = queue.submit(spec).get();
    EXPECT_EQ(result.shots(), 512u);
    EXPECT_EQ(queue.cacheMisses(), 1u);

    queue.submit(spec).get();
    EXPECT_EQ(queue.cacheHits(), 1u);
}
