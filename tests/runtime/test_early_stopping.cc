/**
 * @file
 * Adaptive wave-based execution: the determinism contract (waved
 * counts bit-identical to a single block), confidence-driven early
 * stopping, result streaming, and stopping-rule evaluation.
 */

#include <mutex>
#include <vector>

#include <gtest/gtest.h>

#include "assertions/entanglement_assertion.hh"
#include "common/error.hh"
#include "runtime/job_queue.hh"
#include "runtime/stopping.hh"

using namespace qra;
using namespace qra::runtime;

namespace {

Circuit
bellCircuit()
{
    Circuit c(2, 2, "bell");
    c.h(0).cx(0, 1).measureAll();
    return c;
}

AssertionSpec
bellCheck()
{
    AssertionSpec check;
    check.assertion = std::make_shared<EntanglementAssertion>(2);
    check.targets = {0, 1};
    check.insertAt = 2;
    return check;
}

} // namespace

TEST(EvaluateStopping, WilsonNumbersAndConvergence)
{
    Result r(1);
    r.record(0, 50);
    r.record(1, 50);

    StoppingRule rule;
    rule.statistic = StoppingRule::Statistic::OutcomeProbability;
    rule.outcome = "1";
    rule.targetHalfWidth = 0.2;
    const StoppingStatus status = evaluateStopping(rule, r, nullptr);
    EXPECT_EQ(status.shotsDone, 100u);
    EXPECT_NEAR(status.estimate, 0.5, 1e-12);
    // Classic n=100, p=0.5 Wilson half-width ~ 9.5%.
    EXPECT_NEAR(status.halfWidth, 0.095, 0.01);
    EXPECT_TRUE(status.converged);

    // A minShots floor vetoes convergence.
    rule.minShots = 1000;
    EXPECT_FALSE(evaluateStopping(rule, r, nullptr).converged);

    // str() mentions the shot progress.
    StoppingStatus s = status;
    s.wave = 2;
    s.shotsRequested = 400;
    EXPECT_NE(s.str().find("100/400"), std::string::npos);
}

TEST(EvaluateStopping, MisconfiguredRulesThrow)
{
    Result r(2);
    r.record(0, 10);

    StoppingRule rule; // AnyError needs instrumentation
    rule.targetHalfWidth = 0.1;
    EXPECT_THROW(evaluateStopping(rule, r, nullptr), ValueError);

    rule.statistic = StoppingRule::Statistic::OutcomeProbability;
    rule.outcome = ""; // empty outcome string
    EXPECT_THROW(evaluateStopping(rule, r, nullptr), ValueError);

    const InstrumentedCircuit inst =
        instrument(bellCircuit(), {bellCheck()});
    rule.statistic = StoppingRule::Statistic::CheckError;
    rule.checkIndex = 5; // out of range (one check)
    EXPECT_THROW(evaluateStopping(rule, r, &inst), ValueError);
}

TEST(EarlyStopping, WavedCountsBitIdenticalToSingleBlock)
{
    // The acceptance contract: for a fixed seed, adaptive execution
    // that runs its whole budget produces bit-identical merged counts
    // to run() of the same total, at any thread/shard/wave setting.
    constexpr std::size_t kBudget = 2048;
    constexpr std::uint64_t kSeed = 77;

    for (const std::size_t shard_shots : {128u, 256u, 500u}) {
        ExecutionEngine reference_engine(EngineOptions{
            .threads = 2, .shardShots = shard_shots, .maxShards = 64});
        const Result reference = reference_engine.run(
            bellCircuit(), kBudget, "statevector", kSeed);

        for (const std::size_t threads : {1u, 4u}) {
            for (const std::size_t wave_shots :
                 {0u, 128u, 512u, 2048u}) {
                ExecutionEngine engine(EngineOptions{
                    .threads = threads,
                    .shardShots = shard_shots,
                    .maxShards = 64});
                Job job(bellCircuit(), kBudget, "statevector", kSeed);
                job.stopping.waveShots = wave_shots;
                // No convergence target: every wave runs.
                const Result waved = engine.runAdaptive(job);
                EXPECT_EQ(waved.shots(), kBudget);
                EXPECT_FALSE(waved.stoppedEarly());
                EXPECT_EQ(waved.shotsRequested(), kBudget);
                EXPECT_EQ(waved.rawCounts(), reference.rawCounts())
                    << "shardShots " << shard_shots << ", threads "
                    << threads << ", waveShots " << wave_shots;
            }
        }
    }
}

TEST(EarlyStopping, NoisyBackendWavedCountsMatchSingleBlock)
{
    // Same contract on the trajectory backend (per-shot sampling).
    NoiseModel noise;
    noise.setGateError(OpKind::CX, 0.05);

    ExecutionEngine reference_engine(EngineOptions{
        .threads = 2, .shardShots = 128, .maxShards = 64});
    const Result reference = reference_engine.run(
        bellCircuit(), 1024, "trajectory", 13, &noise);

    ExecutionEngine engine(EngineOptions{
        .threads = 4, .shardShots = 128, .maxShards = 64});
    Job job(bellCircuit(), 1024, "trajectory", 13, &noise);
    job.stopping.waveShots = 256;
    const Result waved = engine.runAdaptive(job);
    EXPECT_EQ(waved.rawCounts(), reference.rawCounts());
}

TEST(EarlyStopping, StopsEarlyOnTightDistribution)
{
    // Ideal Bell pair: the entanglement check never fires, so the
    // any-error estimate is pinned at 0 and its interval collapses
    // within a few hundred shots — far below the 8192 budget.
    ExecutionEngine engine(EngineOptions{
        .threads = 2, .shardShots = 256, .maxShards = 64});
    JobQueue queue(engine);

    JobSpec spec;
    spec.circuit = bellCircuit();
    spec.shots = 8192;
    spec.backend = "statevector";
    spec.seed = 5;
    spec.assertions = {bellCheck()};
    spec.stopping.statistic = StoppingRule::Statistic::AnyError;
    spec.stopping.targetHalfWidth = 0.02;
    spec.stopping.minShots = 256;
    spec.stopping.waveShots = 256;

    const Result result = queue.submit(spec).get();
    EXPECT_TRUE(result.stoppedEarly());
    EXPECT_LT(result.shots(), 8192u);
    EXPECT_GE(result.shots(), 256u);
    EXPECT_EQ(result.shotsRequested(), 8192u);

    // The early-stopped prefix equals a fixed run of the same total:
    // the budget's shard plan is uniform (8192 = 32 x 256), so the
    // executed shards are exactly shardPlan(result.shots()).
    const auto inst = queue.instrumented(spec);
    const Result fixed = engine.run(inst->circuit(), result.shots(),
                                    "statevector", 5);
    EXPECT_EQ(result.rawCounts(), fixed.rawCounts());
}

TEST(EarlyStopping, MinShotsFloorHoldsBackConvergence)
{
    ExecutionEngine engine(EngineOptions{
        .threads = 2, .shardShots = 256, .maxShards = 64});
    JobQueue queue(engine);

    JobSpec spec;
    spec.circuit = bellCircuit();
    spec.shots = 4096;
    spec.backend = "statevector";
    spec.seed = 5;
    spec.assertions = {bellCheck()};
    spec.stopping.targetHalfWidth = 0.2; // trivially loose
    spec.stopping.minShots = 1024;
    spec.stopping.waveShots = 256;

    const Result result = queue.submit(spec).get();
    // Convergence is immediate, but the floor forces 1024 shots.
    EXPECT_EQ(result.shots(), 1024u);
    EXPECT_TRUE(result.stoppedEarly());
}

TEST(EarlyStopping, OutcomeProbabilityRuleOnPlainCircuit)
{
    // No assertions: watch P(register == "00") of an ideal Bell pair
    // (~0.5, the widest-variance case) to a 5% half-width.
    ExecutionEngine engine(EngineOptions{
        .threads = 2, .shardShots = 128, .maxShards = 64});
    Job job(bellCircuit(), 8192, "statevector", 21);
    job.stopping.statistic =
        StoppingRule::Statistic::OutcomeProbability;
    job.stopping.outcome = "00";
    job.stopping.targetHalfWidth = 0.05;
    job.stopping.waveShots = 128;

    const Result result = engine.runAdaptive(job);
    EXPECT_TRUE(result.stoppedEarly());
    EXPECT_LT(result.shots(), 2048u);
    EXPECT_NEAR(result.probability(std::uint64_t{0}), 0.5, 0.15);
}

TEST(EarlyStopping, ProgressStreamsOncePerWave)
{
    ExecutionEngine engine(EngineOptions{
        .threads = 4, .shardShots = 128, .maxShards = 64});
    JobQueue queue(engine);

    JobSpec spec;
    spec.circuit = bellCircuit();
    spec.shots = 1024;
    spec.backend = "statevector";
    spec.seed = 9;
    spec.stopping.waveShots = 256; // disabled rule: all waves run

    std::mutex mutex;
    std::vector<StoppingStatus> statuses;
    Result final_result;
    bool completed = false;
    queue.submit(
        spec,
        [&](const Result &partial, const StoppingStatus &status) {
            std::lock_guard<std::mutex> lock(mutex);
            EXPECT_EQ(partial.shots(), status.shotsDone);
            statuses.push_back(status);
        },
        [&](Result result, std::exception_ptr error) {
            std::lock_guard<std::mutex> lock(mutex);
            EXPECT_EQ(error, nullptr);
            final_result = std::move(result);
            completed = true;
        });
    queue.waitIdle();

    ASSERT_TRUE(completed);
    ASSERT_EQ(statuses.size(), 4u); // 1024 shots / 256-shot waves
    for (std::size_t i = 0; i < statuses.size(); ++i) {
        EXPECT_EQ(statuses[i].wave, i + 1);
        EXPECT_EQ(statuses[i].shotsDone, 256 * (i + 1));
        EXPECT_EQ(statuses[i].shotsRequested, 1024u);
        EXPECT_EQ(statuses[i].finished, i + 1 == statuses.size());
    }
    EXPECT_EQ(final_result.shots(), 1024u);
    EXPECT_FALSE(final_result.stoppedEarly());

    // Streamed delivery is deterministic too: identical counts to
    // the future-based submission of the same spec.
    EXPECT_EQ(final_result.rawCounts(),
              queue.submit(spec).get().rawCounts());
}

TEST(EarlyStopping, AdaptiveSubmitRejectsBadRulesSynchronously)
{
    ExecutionEngine engine(EngineOptions{.threads = 2});
    JobQueue queue(engine);

    // Any-error rule without assertions: nothing to watch.
    JobSpec spec;
    spec.circuit = bellCircuit();
    spec.shots = 512;
    spec.backend = "statevector";
    spec.stopping.targetHalfWidth = 0.05;
    EXPECT_THROW(queue.submit(spec).get(), ValueError);

    // Check index out of range.
    spec.assertions = {bellCheck()};
    spec.stopping.statistic = StoppingRule::Statistic::CheckError;
    spec.stopping.checkIndex = 3;
    EXPECT_THROW(queue.submit(spec), ValueError);
    queue.waitIdle();
}

TEST(EarlyStopping, MaxShotsOverridesJobBudget)
{
    ExecutionEngine engine(EngineOptions{
        .threads = 2, .shardShots = 128, .maxShards = 64});
    Job job(bellCircuit(), 4096, "statevector", 3);
    job.stopping.maxShots = 512; // tighter than job.shots
    const Result result = engine.runAdaptive(job);
    EXPECT_EQ(result.shots(), 512u);
    EXPECT_EQ(result.shotsRequested(), 512u);
    EXPECT_FALSE(result.stoppedEarly());
}
