/**
 * @file
 * ThreadPool: task execution, result plumbing, exception propagation,
 * and clean shutdown under load.
 */

#include <atomic>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/thread_pool.hh"

using namespace qra;
using runtime::ThreadPool;

TEST(ThreadPool, RunsEveryTask)
{
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 100; ++i)
        futures.push_back(pool.submit([&counter] { ++counter; }));
    for (auto &future : futures)
        future.get();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ReturnsTaskValues)
{
    ThreadPool pool(2);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 32; ++i)
        futures.push_back(pool.submit([i] { return i * i; }));
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures)
{
    ThreadPool pool(2);
    auto future = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, SingleWorkerStillDrainsQueue)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.size(), 1u);
    std::atomic<int> counter{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 50; ++i)
        futures.push_back(pool.submit([&counter] { ++counter; }));
    for (auto &future : futures)
        future.get();
    EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks)
{
    std::atomic<int> counter{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 64; ++i)
            pool.submit([&counter] { ++counter; });
    }
    EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, DefaultThreadsIsPositive)
{
    EXPECT_GE(ThreadPool::defaultThreads(), 1u);
}
