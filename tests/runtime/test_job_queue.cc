/**
 * @file
 * JobQueue: batch submission, preparation caching keyed by circuit
 * hash, and the assertion/transpile prepare pipeline.
 */

#include <mutex>

#include <gtest/gtest.h>

#include "assertions/entanglement_assertion.hh"
#include "common/error.hh"
#include "noise/device_model.hh"
#include "runtime/job_queue.hh"

using namespace qra;
using namespace qra::runtime;

namespace {

Circuit
bellCircuit()
{
    Circuit c(2, 2, "bell");
    c.h(0).cx(0, 1).measureAll();
    return c;
}

JobSpec
bellSpec(std::uint64_t seed = 7)
{
    JobSpec spec;
    spec.circuit = bellCircuit();
    spec.shots = 512;
    spec.backend = "statevector";
    spec.seed = seed;
    return spec;
}

} // namespace

TEST(CircuitHash, SemanticInvariants)
{
    const Circuit a = bellCircuit();
    Circuit b = bellCircuit();
    b.setName("renamed"); // names are cosmetic
    EXPECT_EQ(a.hash(), b.hash());

    Circuit c = bellCircuit();
    c.x(0); // trailing gate changes semantics
    EXPECT_NE(a.hash(), c.hash());

    Circuit d(2, 2);
    d.h(1).cx(1, 0).measureAll(); // same ops, different wires
    EXPECT_NE(a.hash(), d.hash());

    Circuit e(2, 2);
    e.rx(0.5, 0);
    Circuit f(2, 2);
    f.rx(0.25, 0); // parameters participate
    EXPECT_NE(e.hash(), f.hash());
}

TEST(JobQueue, RepeatedSubmissionHitsPrepareCache)
{
    ExecutionEngine engine(EngineOptions{.threads = 2});
    JobQueue queue(engine);

    const DeviceModel device = DeviceModel::ibmqx4();
    JobSpec spec;
    spec.circuit = bellCircuit();
    spec.shots = 256;
    spec.backend = "statevector";
    spec.coupling = &device.couplingMap();

    std::vector<std::future<Result>> futures;
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
        spec.seed = seed;
        futures.push_back(queue.submit(spec));
    }
    for (auto &future : futures)
        EXPECT_EQ(future.get().shots(), 256u);

    // Seeds and shots are not part of the prepare key: one miss,
    // then five hits on the transpiled circuit.
    EXPECT_EQ(queue.cacheMisses(), 1u);
    EXPECT_EQ(queue.cacheHits(), 5u);
}

TEST(JobQueue, DistinctCircuitsMissSeparately)
{
    ExecutionEngine engine(EngineOptions{.threads = 2});
    JobQueue queue(engine);

    JobSpec bell = bellSpec();
    JobSpec flipped = bellSpec();
    flipped.circuit = Circuit(2, 2);
    flipped.circuit.h(1).cx(1, 0).measureAll();

    queue.submit(bell).get();
    queue.submit(flipped).get();
    queue.submit(bell).get();
    EXPECT_EQ(queue.cacheMisses(), 2u);
    EXPECT_EQ(queue.cacheHits(), 1u);

    queue.clearCache();
    EXPECT_EQ(queue.cacheMisses(), 0u);
    queue.submit(bell).get();
    EXPECT_EQ(queue.cacheMisses(), 1u);
}

TEST(JobQueue, RunAllPreservesOrderAndSeeds)
{
    ExecutionEngine engine(EngineOptions{
        .threads = 4, .shardShots = 64, .maxShards = 16});
    JobQueue queue(engine);

    std::vector<JobSpec> specs;
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
        JobSpec spec = bellSpec(seed);
        spec.shots = 128 + 16 * seed;
        specs.push_back(spec);
    }
    const std::vector<Result> results = queue.runAll(specs);
    ASSERT_EQ(results.size(), specs.size());
    for (std::size_t i = 0; i < results.size(); ++i)
        EXPECT_EQ(results[i].shots(), specs[i].shots);

    // Re-running a spec reproduces its counts exactly.
    const Result again = queue.submit(specs[3]).get();
    EXPECT_EQ(again.rawCounts(), results[3].rawCounts());
}

TEST(JobQueue, SamplingCacheSkipsRepeatedArtifactBuilds)
{
    ExecutionEngine engine(EngineOptions{.threads = 2});
    JobQueue queue(engine);

    // First sampled job builds the plan and the sampled distribution
    // (two misses); the repeat hits the distribution directly.
    const Result first = queue.submit(bellSpec(7)).get();
    EXPECT_EQ(queue.samplingCacheMisses(), 2u);
    EXPECT_EQ(queue.samplingCacheHits(), 0u);

    const Result second = queue.submit(bellSpec(7)).get();
    EXPECT_EQ(queue.samplingCacheMisses(), 2u);
    EXPECT_EQ(queue.samplingCacheHits(), 1u);

    // Cache hits change nothing observable: same seed, same counts.
    EXPECT_EQ(first.rawCounts(), second.rawCounts());

    // And a cold queue produces those counts too: caching is purely
    // an execution shortcut.
    JobQueue cold(engine);
    EXPECT_EQ(cold.submit(bellSpec(7)).get().rawCounts(),
              first.rawCounts());

    queue.clearCache();
    EXPECT_EQ(queue.samplingCacheMisses(), 0u);
    queue.submit(bellSpec(7)).get();
    EXPECT_EQ(queue.samplingCacheMisses(), 2u);
}

TEST(JobQueue, SamplingCacheShardsShareOneBuild)
{
    // Many shards of one sampled job on a single worker (so shards
    // serialize and the counters are deterministic): exactly one
    // distribution build plus one plan build, every other shard a
    // hit. With more workers, racing shards may build private copies
    // instead of blocking — results are identical either way.
    ExecutionEngine engine(EngineOptions{
        .threads = 1, .shardShots = 64, .maxShards = 8});
    JobQueue queue(engine);
    JobSpec spec = bellSpec(3);
    spec.shots = 512; // 8 shards
    queue.submit(spec).get();
    EXPECT_EQ(queue.samplingCacheMisses(), 2u);
    EXPECT_EQ(queue.samplingCacheHits(), 7u);
}

TEST(JobQueue, SamplingCacheKeysTrajectoryPlansByNoise)
{
    ExecutionEngine engine(EngineOptions{.threads = 2});
    JobQueue queue(engine);

    NoiseModel noise;
    noise.setGateError(OpKind::CX, 0.05);
    const NoiseModel doubled = noise.scaled(2.0);

    JobSpec spec = bellSpec(11);
    spec.backend = "trajectory";
    spec.noise = &noise;
    queue.submit(spec).get();
    queue.submit(spec).get();
    // One trajectory-plan build, one hit.
    EXPECT_EQ(queue.samplingCacheMisses(), 1u);
    EXPECT_EQ(queue.samplingCacheHits(), 1u);

    // A semantically different model may not share the plan.
    spec.noise = &doubled;
    queue.submit(spec).get();
    EXPECT_EQ(queue.samplingCacheMisses(), 2u);
}

TEST(JobQueue, TranspileOptionsParticipateInPrepareKey)
{
    ExecutionEngine engine(EngineOptions{.threads = 2});
    JobQueue queue(engine);

    const DeviceModel device = DeviceModel::ibmqx4();
    JobSpec spec = bellSpec();
    spec.coupling = &device.couplingMap();

    queue.submit(spec).get();
    spec.transpileOptions.optimize = false;
    queue.submit(spec).get();
    spec.transpileOptions.useGreedyLayout = false;
    queue.submit(spec).get();
    // Three distinct preparations: the options change the pipeline.
    EXPECT_EQ(queue.cacheMisses(), 3u);
    EXPECT_EQ(queue.cacheHits(), 0u);

    // Repeating any of them hits.
    queue.submit(spec).get();
    EXPECT_EQ(queue.cacheHits(), 1u);

    // Without a coupling map the options are inert and must not
    // fragment the cache.
    JobQueue untranspiled(engine);
    JobSpec plain = bellSpec();
    untranspiled.submit(plain).get();
    plain.transpileOptions.optimize = false;
    untranspiled.submit(plain).get();
    EXPECT_EQ(untranspiled.cacheMisses(), 1u);
    EXPECT_EQ(untranspiled.cacheHits(), 1u);
}

TEST(JobQueue, AssertionKeyingIsSemantic)
{
    ExecutionEngine engine(EngineOptions{.threads = 2});
    JobQueue queue(engine);

    auto make_spec = [](std::size_t repetitions) {
        JobSpec spec;
        spec.circuit = bellCircuit();
        spec.shots = 128;
        spec.backend = "statevector";
        AssertionSpec check;
        // A fresh assertion object per call: keying must look
        // through the pointer at the semantics.
        check.assertion = std::make_shared<EntanglementAssertion>(2);
        check.targets = {0, 1};
        check.insertAt = 2;
        check.repetitions = repetitions;
        spec.assertions = {check};
        return spec;
    };

    queue.submit(make_spec(1)).get();
    queue.submit(make_spec(1)).get();
    // Semantically identical resubmission with a distinct assertion
    // object hits the cache.
    EXPECT_EQ(queue.cacheMisses(), 1u);
    EXPECT_EQ(queue.cacheHits(), 1u);

    // Any semantic change (here: repetitions) misses.
    queue.submit(make_spec(3)).get();
    EXPECT_EQ(queue.cacheMisses(), 2u);
}

TEST(JobQueue, InstrumentOptionsParticipateInPrepareKey)
{
    ExecutionEngine engine(EngineOptions{.threads = 2});
    JobQueue queue(engine);

    JobSpec spec = bellSpec();
    AssertionSpec check;
    check.assertion = std::make_shared<EntanglementAssertion>(2);
    check.targets = {0, 1};
    check.insertAt = 2;
    check.repetitions = 2;
    spec.assertions = {check};

    queue.submit(spec).get();
    spec.instrumentOptions.barriers = false;
    queue.submit(spec).get();
    // Two distinct preparations: the options change the woven
    // circuit, so they may not alias one prepared entry.
    EXPECT_EQ(queue.cacheMisses(), 2u);
    EXPECT_EQ(queue.cacheHits(), 0u);

    // Without assertions the options are inert and must not
    // fragment the cache.
    JobQueue plain_queue(engine);
    JobSpec plain = bellSpec();
    plain_queue.submit(plain).get();
    plain.instrumentOptions.reuseAncillas = true;
    plain.injection = compile::InjectionStrategy::PostLayout;
    plain_queue.submit(plain).get();
    EXPECT_EQ(plain_queue.cacheMisses(), 1u);
    EXPECT_EQ(plain_queue.cacheHits(), 1u);
}

TEST(JobQueue, InjectionStrategyParticipatesInPrepareKey)
{
    ExecutionEngine engine(EngineOptions{.threads = 2});
    JobQueue queue(engine);
    const DeviceModel device = DeviceModel::ibmqx4();

    JobSpec spec = bellSpec();
    spec.coupling = &device.couplingMap();
    AssertionSpec check;
    check.assertion = std::make_shared<EntanglementAssertion>(2);
    check.targets = {0, 1};
    check.insertAt = 2;
    spec.assertions = {check};

    queue.submit(spec).get();
    spec.injection = compile::InjectionStrategy::PostLayout;
    queue.submit(spec).get();
    EXPECT_EQ(queue.cacheMisses(), 2u);
    queue.submit(spec).get();
    EXPECT_EQ(queue.cacheHits(), 1u);
}

TEST(JobQueue, CallbackSubmissionMatchesFutures)
{
    ExecutionEngine engine(EngineOptions{
        .threads = 4, .shardShots = 64, .maxShards = 8});
    JobQueue queue(engine);

    std::vector<JobSpec> specs;
    for (std::uint64_t seed = 0; seed < 6; ++seed)
        specs.push_back(bellSpec(seed));
    const std::vector<Result> expected = queue.runAll(specs);

    std::mutex mutex;
    std::vector<Result> delivered(specs.size());
    std::size_t count = 0;
    for (std::size_t i = 0; i < specs.size(); ++i)
        queue.submit(specs[i],
                     [&, i](Result result, std::exception_ptr error) {
                         std::lock_guard<std::mutex> lock(mutex);
                         EXPECT_EQ(error, nullptr);
                         delivered[i] = std::move(result);
                         ++count;
                     });
    queue.waitIdle();

    EXPECT_EQ(count, specs.size());
    // Callback delivery is merge-order deterministic: counts are
    // bit-identical to the future-based path.
    for (std::size_t i = 0; i < specs.size(); ++i)
        EXPECT_EQ(delivered[i].rawCounts(), expected[i].rawCounts());
}

TEST(JobQueue, CallbackSubmissionRejectsSynchronously)
{
    ExecutionEngine engine(EngineOptions{.threads = 2});
    JobQueue queue(engine);
    JobSpec spec = bellSpec();
    spec.backend = "no-such-backend";
    EXPECT_THROW(
        queue.submit(spec, [](Result, std::exception_ptr) {}),
        Error);
    // The failed submission does not leak an outstanding slot.
    queue.waitIdle();
}

TEST(JobQueue, AssertionInjectionFlowsThroughQueue)
{
    ExecutionEngine engine(EngineOptions{.threads = 2});
    JobQueue queue(engine);

    JobSpec spec;
    spec.circuit = Circuit(2, 2, "bell");
    spec.circuit.h(0).cx(0, 1).measureAll();
    spec.shots = 1024;
    spec.backend = "statevector";

    AssertionSpec check;
    check.assertion = std::make_shared<EntanglementAssertion>(2);
    check.targets = {0, 1};
    check.insertAt = 2;
    spec.assertions = {check};

    const Result result = queue.submit(spec).get();
    const auto inst = queue.instrumented(spec);
    ASSERT_NE(inst, nullptr);
    // Prepared once by submit(); the instrumented() lookup is
    // introspection and does not move the hit/miss counters.
    EXPECT_EQ(queue.cacheMisses(), 1u);
    EXPECT_EQ(queue.cacheHits(), 0u);

    const AssertionReport report = analyze(*inst, result);
    EXPECT_NEAR(report.anyErrorRate, 0.0, 1e-12);

    // Specs without assertions expose no instrumented circuit.
    EXPECT_EQ(queue.instrumented(bellSpec()), nullptr);
}
