/**
 * @file
 * Checkpoint/resume: a cancelled (or failed) adaptive job resumed
 * from its JobCheckpoint replays exactly the shards an uninterrupted
 * run would have executed — bit-identical counts, never more total
 * shots — across thread counts and wave sizes. Plus the validation
 * that refuses checkpoints from a different job.
 */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "runtime/execution_engine.hh"
#include "runtime/fault.hh"
#include "runtime/job_queue.hh"

using namespace qra;
using namespace qra::runtime;

namespace {

Circuit
bellCircuit()
{
    Circuit c(2, 2, "bell");
    c.h(0).cx(0, 1).measureAll();
    return c;
}

EngineOptions
eightShardOptions(std::size_t threads)
{
    EngineOptions options;
    options.threads = threads;
    options.shardShots = 256;
    return options;
}

/** Run adaptively, cancelling via the wave-1 progress callback, and
    return the written checkpoint. Cancellation is polled at wave
    boundaries and wave 2 is already in flight when the wave-1
    callback runs, so exactly two waves' worth of shots complete. */
std::shared_ptr<JobCheckpoint>
cancelAtFirstWave(ExecutionEngine &engine, Job job)
{
    job.checkpoint = std::make_shared<JobCheckpoint>();
    const CancelToken token = job.cancel;
    const Result partial = engine.runAdaptive(
        job, [&](const Result &, const StoppingStatus &status) {
            if (status.wave == 1)
                token.cancel();
        });
    EXPECT_TRUE(partial.cancelled());
    EXPECT_EQ(partial.shots(),
              std::min<std::size_t>(2 * job.stopping.waveShots,
                                    job.shots));
    return job.checkpoint;
}

} // namespace

TEST(CheckpointResume, CancelledThenResumedEqualsUninterrupted)
{
    // The satellite contract: cancel at a wave boundary, resume from
    // the checkpoint, and the final counts are bit-identical to an
    // uninterrupted run of the full budget — at 1 and 4 threads,
    // across wave sizes.
    for (const std::size_t threads : {1u, 4u}) {
        for (const std::size_t wave_shots : {256u, 512u, 1024u}) {
            ExecutionEngine engine(eightShardOptions(threads));
            const Result uninterrupted =
                engine.run(Job(bellCircuit(), 2048));

            Job job(bellCircuit(), 2048);
            job.stopping.waveShots = wave_shots;
            const std::shared_ptr<JobCheckpoint> ck =
                cancelAtFirstWave(engine, job);
            ASSERT_TRUE(ck->valid());
            // Two 1024-shot waves already cover the 2048 budget, so
            // that checkpoint is exhausted; the smaller waves leave a
            // genuine remainder to resume.
            EXPECT_EQ(ck->exhausted(), 2 * wave_shots >= 2048u);
            EXPECT_NE(ck->str().find("checkpoint("),
                      std::string::npos);

            Job resume(bellCircuit(), 2048);
            resume.stopping.waveShots = wave_shots;
            resume.resumeFrom = ck;
            const Result resumed = engine.runAdaptive(resume);

            EXPECT_EQ(resumed.rawCounts(),
                      uninterrupted.rawCounts());
            EXPECT_EQ(resumed.shots(), 2048u);
            EXPECT_FALSE(resumed.cancelled());
            EXPECT_EQ(resumed.execStats().resumedShots,
                      ck->merged.shots());
        }
    }
}

TEST(CheckpointResume, TighterTargetUsesNoMoreShotsThanDirect)
{
    // Converge at a loose half-width, then resume the checkpoint with
    // a tighter target: the resumed job reaches it using exactly the
    // shots a from-scratch run with the tight target takes — resumed
    // shots are adopted, not re-executed. P("00") of an ideal Bell
    // pair (~0.5) is the slowest-converging estimate, so the loose
    // and tight targets trip at well-separated wave boundaries.
    auto make_job = [&](double half_width) {
        Job job(bellCircuit(), 8192);
        job.stopping.statistic =
            StoppingRule::Statistic::OutcomeProbability;
        job.stopping.outcome = "00";
        job.stopping.targetHalfWidth = half_width;
        job.stopping.waveShots = 256;
        return job;
    };

    EngineOptions options;
    options.threads = 1;
    options.shardShots = 256;
    options.maxShards = 64;
    ExecutionEngine engine(options);

    const Result direct = engine.runAdaptive(make_job(0.04));
    EXPECT_TRUE(direct.stoppedEarly());

    Job loose = make_job(0.08);
    loose.checkpoint = std::make_shared<JobCheckpoint>();
    const Result first = engine.runAdaptive(loose);
    EXPECT_TRUE(first.stoppedEarly());
    ASSERT_TRUE(loose.checkpoint->valid());
    EXPECT_LT(loose.checkpoint->merged.shots(), direct.shots());

    Job tight = make_job(0.04);
    tight.resumeFrom = loose.checkpoint;
    const Result resumed = engine.runAdaptive(tight);

    // Same wave boundaries → the tight target trips at the same
    // cumulative shot count, and the merged counts match exactly.
    EXPECT_LE(resumed.shots(), direct.shots());
    EXPECT_EQ(resumed.rawCounts(), direct.rawCounts());
    EXPECT_EQ(resumed.execStats().resumedShots,
              loose.checkpoint->merged.shots());
}

TEST(CheckpointResume, WaveFailureRewindsCursor)
{
    // A wave epilogue failure discards that wave's parts; the
    // checkpoint cursor rewinds to the wave's first shard so a
    // resume re-runs the lost shots and still matches end to end.
    ExecutionEngine engine(eightShardOptions(1));
    const Result uninterrupted = engine.run(Job(bellCircuit(), 2048));

    Job job(bellCircuit(), 2048);
    job.stopping.waveShots = 512; // two shards per wave
    job.checkpoint = std::make_shared<JobCheckpoint>();
    job.faults = std::make_shared<const FaultPlan>(
        FaultPlan::parse("wave:1:throw"));
    EXPECT_THROW(engine.runAdaptive(job), TransientSimulationError);

    const JobCheckpoint &ck = *job.checkpoint;
    ASSERT_TRUE(ck.valid());
    EXPECT_EQ(ck.nextShard, 2u); // wave 1's first shard, not 4
    EXPECT_EQ(ck.merged.shots(), 512u);

    // The transient condition cleared (no fault plan on the resume).
    Job resume(bellCircuit(), 2048);
    resume.stopping.waveShots = 512;
    resume.resumeFrom = job.checkpoint;
    const Result resumed = engine.runAdaptive(resume);
    EXPECT_EQ(resumed.rawCounts(), uninterrupted.rawCounts());
    EXPECT_EQ(resumed.shots(), 2048u);
}

TEST(CheckpointResume, ExhaustedCheckpointJustRedelivers)
{
    ExecutionEngine engine(eightShardOptions(1));
    Job job(bellCircuit(), 2048);
    job.checkpoint = std::make_shared<JobCheckpoint>();
    const Result full = engine.runAdaptive(job);
    ASSERT_TRUE(job.checkpoint->valid());
    EXPECT_TRUE(job.checkpoint->exhausted());

    Job resume(bellCircuit(), 2048);
    resume.resumeFrom = job.checkpoint;
    const Result redelivered = engine.runAdaptive(resume);
    EXPECT_EQ(redelivered.rawCounts(), full.rawCounts());
    EXPECT_EQ(redelivered.shots(), 2048u);
    EXPECT_EQ(redelivered.execStats().resumedShots, 2048u);
}

TEST(CheckpointResume, MismatchedCheckpointsAreRefused)
{
    ExecutionEngine engine(eightShardOptions(1));
    Job job(bellCircuit(), 2048);
    job.stopping.waveShots = 256;
    const std::shared_ptr<JobCheckpoint> ck =
        cancelAtFirstWave(engine, job);

    // Never-written checkpoint.
    Job invalid(bellCircuit(), 2048);
    invalid.resumeFrom = std::make_shared<JobCheckpoint>();
    EXPECT_THROW(engine.runAdaptive(invalid), ValueError);

    // Different seed.
    Job wrong_seed(bellCircuit(), 2048);
    wrong_seed.seed = 12345;
    wrong_seed.resumeFrom = ck;
    EXPECT_THROW(engine.runAdaptive(wrong_seed), ValueError);

    // Different budget.
    Job wrong_budget(bellCircuit(), 4096);
    wrong_budget.resumeFrom = ck;
    EXPECT_THROW(engine.runAdaptive(wrong_budget), ValueError);

    // Different circuit.
    Circuit ghz(3, 3, "ghz");
    ghz.h(0).cx(0, 1).cx(1, 2).measureAll();
    Job wrong_circuit(ghz, 2048);
    wrong_circuit.resumeFrom = ck;
    EXPECT_THROW(engine.runAdaptive(wrong_circuit), ValueError);

    // Different shard decomposition (engine options).
    EngineOptions coarse;
    coarse.threads = 1;
    coarse.shardShots = 1024;
    ExecutionEngine coarse_engine(coarse);
    Job wrong_plan(bellCircuit(), 2048);
    wrong_plan.resumeFrom = ck;
    EXPECT_THROW(coarse_engine.runAdaptive(wrong_plan), ValueError);
}

TEST(CheckpointResume, JobQueueRoutesCheckpointSpecs)
{
    // JobSpec-level wiring: a checkpoint sink routes through the wave
    // engine even without a stopping rule, and a resume spec picks up
    // where the cancelled submission stopped.
    ExecutionEngine engine(eightShardOptions(1));
    JobQueue queue(engine);

    JobSpec spec;
    spec.circuit = bellCircuit();
    spec.shots = 2048;
    spec.stopping.waveShots = 256;
    spec.checkpoint = std::make_shared<JobCheckpoint>();
    const CancelToken token = spec.cancel;

    std::size_t waves = 0;
    Result partial;
    std::exception_ptr error;
    queue.submit(
        spec,
        [&](const Result &, const StoppingStatus &status) {
            if (++waves == 1)
                token.cancel();
        },
        [&](Result result, std::exception_ptr e) {
            partial = std::move(result);
            error = e;
        });
    queue.waitIdle();
    ASSERT_FALSE(error);
    EXPECT_TRUE(partial.cancelled());
    ASSERT_TRUE(spec.checkpoint->valid());

    JobSpec resume = spec;
    resume.cancel = CancelToken();
    resume.checkpoint = nullptr;
    resume.resumeFrom = spec.checkpoint;
    const Result resumed = queue.submit(resume).get();
    EXPECT_EQ(resumed.shots(), 2048u);

    // Reference through the queue too, so both runs execute the same
    // prepared circuit.
    JobSpec fresh = spec;
    fresh.cancel = CancelToken();
    fresh.checkpoint = nullptr;
    const Result reference = queue.submit(fresh).get();
    EXPECT_EQ(resumed.rawCounts(), reference.rawCounts());
}
