/**
 * @file
 * ExecutionEngine: deterministic sharded execution. The load-bearing
 * property: for a fixed seed, merged counts are bit-identical at any
 * thread count, on every backend.
 */

#include <map>

#include <gtest/gtest.h>

#include "assertions/entanglement_assertion.hh"
#include "common/error.hh"
#include "library/algorithms.hh"
#include "noise/device_model.hh"
#include "runtime/execution_engine.hh"

using namespace qra;
using namespace qra::runtime;

namespace {

Circuit
bellCircuit()
{
    Circuit c(2, 2, "bell");
    c.h(0).cx(0, 1).measureAll();
    return c;
}

/** Run the same job at several thread counts; expect equal counts. */
void
expectThreadCountInvariance(const Circuit &circuit,
                            const std::string &backend,
                            const NoiseModel *noise = nullptr)
{
    constexpr std::size_t kShots = 2048;
    constexpr std::uint64_t kSeed = 99;
    // Small shards force multi-shard plans even at modest shot counts.
    std::map<std::uint64_t, std::size_t> reference;
    for (const std::size_t threads : {1u, 2u, 8u}) {
        ExecutionEngine engine(EngineOptions{
            .threads = threads, .shardShots = 256, .maxShards = 64});
        const Result result =
            engine.run(circuit, kShots, backend, kSeed, noise);
        EXPECT_EQ(result.shots(), kShots);
        if (reference.empty())
            reference = result.rawCounts();
        else
            EXPECT_EQ(result.rawCounts(), reference)
                << backend << " counts changed at " << threads
                << " threads";
    }
    ASSERT_FALSE(reference.empty());
}

} // namespace

TEST(ExecutionEngine, ShardPlanIsThreadIndependentAndSeedSplit)
{
    ExecutionEngine one(EngineOptions{
        .threads = 1, .shardShots = 100, .maxShards = 64});
    ExecutionEngine many(EngineOptions{
        .threads = 8, .shardShots = 100, .maxShards = 64});
    const BackendPtr backend =
        BackendRegistry::global().create("statevector");

    const auto plan_one = one.shardPlan(1000, 42, *backend);
    const auto plan_many = many.shardPlan(1000, 42, *backend);
    ASSERT_EQ(plan_one.size(), 10u);
    ASSERT_EQ(plan_many.size(), 10u);

    std::size_t total = 0;
    for (std::size_t i = 0; i < plan_one.size(); ++i) {
        EXPECT_EQ(plan_one[i].shots, plan_many[i].shots);
        EXPECT_EQ(plan_one[i].seed, plan_many[i].seed);
        total += plan_one[i].shots;
        for (std::size_t j = 0; j < i; ++j)
            EXPECT_NE(plan_one[i].seed, plan_one[j].seed)
                << "shard seeds must be distinct";
    }
    EXPECT_EQ(total, 1000u);
}

TEST(ExecutionEngine, ShardPlanRespectsMaxShards)
{
    ExecutionEngine engine(EngineOptions{
        .threads = 1, .shardShots = 1, .maxShards = 8});
    const BackendPtr backend =
        BackendRegistry::global().create("statevector");
    EXPECT_EQ(engine.shardPlan(100000, 1, *backend).size(), 8u);
}

TEST(ExecutionEngine, UnshardableBackendGetsSingleShard)
{
    ExecutionEngine engine(EngineOptions{
        .threads = 4, .shardShots = 16, .maxShards = 64});
    const BackendPtr density =
        BackendRegistry::global().create("density");
    EXPECT_EQ(engine.shardPlan(10000, 1, *density).size(), 1u);
}

TEST(ExecutionEngine, DeterministicAcrossThreads_Statevector)
{
    expectThreadCountInvariance(bellCircuit(), "statevector");
}

TEST(ExecutionEngine, DeterministicAcrossThreads_Density)
{
    const DeviceModel device = DeviceModel::ibmqx4();
    Circuit bell(5, 2, "bell");
    bell.h(1).cx(1, 0).measure(1, 0).measure(0, 1);
    expectThreadCountInvariance(bell, "density",
                                &device.noiseModel());
}

TEST(ExecutionEngine, DeterministicAcrossThreads_Trajectory)
{
    const DeviceModel device = DeviceModel::ibmqx4();
    Circuit bell(5, 2, "bell");
    bell.h(1).cx(1, 0).measure(1, 0).measure(0, 1);
    expectThreadCountInvariance(bell, "trajectory",
                                &device.noiseModel());
}

TEST(ExecutionEngine, DeterministicAcrossThreads_Stabilizer)
{
    Circuit ghz = library::ghzState(12);
    ghz.addClbits(12);
    ghz.measureAll();
    expectThreadCountInvariance(ghz, "stabilizer");
}

TEST(ExecutionEngine, AutoBackendRoutesThroughRegistry)
{
    ExecutionEngine engine(EngineOptions{.threads = 2});
    const Result result = engine.run(bellCircuit(), 512, "auto", 3);
    EXPECT_EQ(result.shots(), 512u);
    // A Bell pair only ever reads 00 or 11 on an ideal backend.
    EXPECT_EQ(result.count(std::uint64_t{0}) + result.count(3), 512u);
}

TEST(ExecutionEngine, SubmitReturnsMergedFuture)
{
    ExecutionEngine engine(EngineOptions{
        .threads = 4, .shardShots = 64, .maxShards = 64});
    std::vector<std::future<Result>> futures;
    for (int i = 0; i < 8; ++i)
        futures.push_back(engine.submit(
            Job(bellCircuit(), 256, "statevector",
                static_cast<std::uint64_t>(i))));
    std::size_t total = 0;
    for (auto &future : futures)
        total += future.get().shots();
    EXPECT_EQ(total, 8u * 256u);
}

TEST(ExecutionEngine, MergesRetainedFractionAcrossShards)
{
    // Post-select half the amplitude away: retained fraction ~0.5,
    // and it must survive shard merging as a weighted average.
    Circuit c(1, 1, "postselect");
    c.h(0).postSelect(0, 1).measure(0, 0);
    ExecutionEngine engine(EngineOptions{
        .threads = 4, .shardShots = 128, .maxShards = 64});
    const Result result = engine.run(c, 1024, "statevector", 5);
    EXPECT_NEAR(result.retainedFraction(), 0.5, 0.1);
    EXPECT_EQ(result.count(std::uint64_t{1}), result.shots());
}

TEST(ExecutionEngine, JobWithoutCircuitThrows)
{
    ExecutionEngine engine(EngineOptions{.threads = 1});
    EXPECT_THROW(engine.run(Job{}), ValueError);
    EXPECT_THROW(engine.submit(Job{}), ValueError);
}

TEST(ResultMerge, PoolsRetentionByAttemptedShots)
{
    // 100 kept of 100 attempted pooled with 100 kept of 400
    // attempted: true retention is 200/500, not the kept-weighted
    // mean 0.625.
    Result a(1);
    a.record(0, 100);
    a.setRetainedFraction(1.0);
    Result b(1);
    b.record(1, 100);
    b.setRetainedFraction(0.25);
    a.merge(b);
    EXPECT_NEAR(a.retainedFraction(), 0.4, 1e-12);
    EXPECT_EQ(a.shots(), 200u);
}

TEST(ExecutionEngine, UnsupportedCircuitThrowsWithReason)
{
    ExecutionEngine engine(EngineOptions{.threads = 1});
    Circuit t_gate(1, 1);
    t_gate.t(0).measure(0, 0);
    EXPECT_THROW(engine.run(t_gate, 16, "stabilizer", 1),
                 SimulationError);
    EXPECT_THROW(engine.run(t_gate, 16, "nonesuch", 1), ValueError);
}

TEST(ExecutionEngine, RunInstrumentedDecodesAssertionReport)
{
    Circuit payload(2, 2, "bell");
    payload.h(0).cx(0, 1).measureAll();
    AssertionSpec spec;
    spec.assertion = std::make_shared<EntanglementAssertion>(2);
    spec.targets = {0, 1};
    spec.insertAt = 2;
    const InstrumentedCircuit inst = instrument(payload, {spec});

    ExecutionEngine engine(EngineOptions{
        .threads = 2, .shardShots = 256, .maxShards = 16});
    Result raw;
    const AssertionReport report = engine.runInstrumented(
        inst, 2048, "statevector", 11, nullptr, &raw);
    EXPECT_EQ(raw.shots(), 2048u);
    // Ideal Bell pair: the entanglement check never fires.
    EXPECT_NEAR(report.anyErrorRate, 0.0, 1e-12);
    EXPECT_NEAR(report.keptFraction, 1.0, 1e-12);
}
