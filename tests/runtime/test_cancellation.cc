/**
 * @file
 * Cancellation and deadlines: CancelToken semantics, shard-granular
 * skipping on the fixed-budget paths, wave-boundary stopping on the
 * adaptive path, and the partial-result contract (merged counts
 * bit-identical to the shards that completed).
 */

#include <chrono>

#include <gtest/gtest.h>

#include "runtime/cancel.hh"
#include "runtime/execution_engine.hh"
#include "runtime/fault.hh"

using namespace qra;
using namespace qra::runtime;

namespace {

Circuit
bellCircuit()
{
    Circuit c(2, 2, "bell");
    c.h(0).cx(0, 1).measureAll();
    return c;
}

EngineOptions
eightShardOptions(std::size_t threads)
{
    EngineOptions options;
    options.threads = threads;
    options.shardShots = 256;
    return options;
}

} // namespace

TEST(CancelToken, LatchesAndSharesState)
{
    CancelToken token;
    EXPECT_FALSE(token.cancelled());
    EXPECT_EQ(token.reason(), CancelReason::None);
    EXPECT_FALSE(token.poll());

    const CancelToken copy = token; // aliases the same state
    copy.cancel();
    EXPECT_TRUE(token.cancelled());
    EXPECT_TRUE(token.poll());
    EXPECT_EQ(token.reason(), CancelReason::User);

    // First reason wins: a later deadline cannot overwrite User.
    token.cancel(CancelReason::Deadline);
    EXPECT_EQ(token.reason(), CancelReason::User);

    EXPECT_STREQ(cancelReasonName(CancelReason::User), "user");
    EXPECT_STREQ(cancelReasonName(CancelReason::Deadline), "deadline");
    EXPECT_STREQ(cancelReasonName(CancelReason::None), "none");
}

TEST(CancelToken, DeadlineLatchesOnPoll)
{
    CancelToken token;
    EXPECT_FALSE(token.deadlineArmed());
    token.armDeadline(CancelToken::Clock::now() +
                      std::chrono::hours(1));
    EXPECT_TRUE(token.deadlineArmed());
    EXPECT_FALSE(token.poll());
    EXPECT_FALSE(token.cancelled());

    token.armDeadline(CancelToken::Clock::now() -
                      std::chrono::milliseconds(1));
    EXPECT_TRUE(token.poll());
    EXPECT_TRUE(token.cancelled());
    EXPECT_EQ(token.reason(), CancelReason::Deadline);
}

TEST(Cancellation, PreCancelledFixedJobRunsNothing)
{
    ExecutionEngine engine(eightShardOptions(1));
    Job job(bellCircuit(), 2048);
    job.cancel.cancel();

    const Result result = engine.run(job);
    EXPECT_EQ(result.shots(), 0u);
    EXPECT_TRUE(result.cancelled());
    EXPECT_EQ(result.cancelReason(), "user");
    EXPECT_EQ(result.shotsRequested(), 2048u);
}

TEST(Cancellation, DeadlinePartialIsBitIdenticalPrefix)
{
    // Shard 0 stalls past the deadline; with one worker the remaining
    // shards dequeue after expiry and skip, so the merge is exactly
    // shard 0 — which (shard plans being deterministic) equals a
    // 256-shot run outright.
    ExecutionEngine engine(eightShardOptions(1));
    Job job(bellCircuit(), 2048);
    job.deadlineMs = 5.0;
    FaultPlan plan = FaultPlan::parse("shard:0:stall,stall-ms:100");
    job.faults = std::make_shared<const FaultPlan>(plan);

    const Result partial = engine.run(job);
    EXPECT_TRUE(partial.cancelled());
    EXPECT_EQ(partial.cancelReason(), "deadline");
    EXPECT_EQ(partial.shots(), 256u);
    EXPECT_EQ(partial.shotsRequested(), 2048u);

    ExecutionEngine reference(eightShardOptions(1));
    const Result prefix = reference.run(Job(bellCircuit(), 256));
    EXPECT_EQ(partial.rawCounts(), prefix.rawCounts());
}

TEST(Cancellation, AdaptiveStopsAtWaveBoundary)
{
    // Cancelling inside the wave-1 progress callback lets the already
    // launched wave 2 finish (waves never tear), then stops: exactly
    // two waves of shots, bit-identical to a 512-shot run.
    for (const std::size_t threads : {1u, 4u}) {
        ExecutionEngine engine(eightShardOptions(threads));
        Job job(bellCircuit(), 2048);
        job.stopping.waveShots = 256; // one shard per wave
        job.checkpoint = std::make_shared<JobCheckpoint>();
        const CancelToken token = job.cancel;

        std::size_t waves_seen = 0;
        bool saw_cancelled_status = false;
        const Result partial = engine.runAdaptive(
            job, [&](const Result &, const StoppingStatus &status) {
                ++waves_seen;
                if (status.wave == 1)
                    token.cancel();
                saw_cancelled_status |= status.cancelled;
            });

        EXPECT_TRUE(partial.cancelled());
        EXPECT_EQ(partial.cancelReason(), "user");
        EXPECT_TRUE(saw_cancelled_status);
        EXPECT_EQ(waves_seen, 2u);
        EXPECT_EQ(partial.shots(), 512u);
        EXPECT_FALSE(partial.stoppedEarly());
        EXPECT_EQ(partial.shotsRequested(), 2048u);

        ExecutionEngine reference(eightShardOptions(1));
        const Result prefix = reference.run(Job(bellCircuit(), 512));
        EXPECT_EQ(partial.rawCounts(), prefix.rawCounts());

        // The checkpoint cursor sits at the wave boundary with the
        // raw (unstamped) merge of the completed shards.
        const JobCheckpoint &ck = *job.checkpoint;
        EXPECT_TRUE(ck.valid());
        EXPECT_EQ(ck.nextShard, 2u);
        EXPECT_EQ(ck.planShards, 8u);
        EXPECT_EQ(ck.merged.shots(), 512u);
        EXPECT_FALSE(ck.merged.cancelled());
    }
}

TEST(Cancellation, AdaptiveDeadlineReportsReason)
{
    // Every wave stalls 20ms against a 5ms deadline: wave 1 merges in
    // full, then the boundary poll latches the deadline.
    ExecutionEngine engine(eightShardOptions(1));
    Job job(bellCircuit(), 2048);
    job.stopping.waveShots = 256;
    job.deadlineMs = 5.0;
    FaultPlan plan =
        FaultPlan::parse("shard:0:stall,shard:1:stall,stall-ms:20");
    job.faults = std::make_shared<const FaultPlan>(plan);

    const Result partial = engine.runAdaptive(job);
    EXPECT_TRUE(partial.cancelled());
    EXPECT_EQ(partial.cancelReason(), "deadline");
    EXPECT_EQ(partial.shots(), 256u);
    EXPECT_EQ(partial.execStats().waves, 1u);
}
