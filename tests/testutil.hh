/**
 * @file
 * Shared helpers for the QRA test suite.
 */

#ifndef QRA_TESTS_TESTUTIL_HH
#define QRA_TESTS_TESTUTIL_HH

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "math/types.hh"
#include "sim/state_vector.hh"
#include "sim/statevector_simulator.hh"

namespace qra {
namespace test {

/** EXPECT two complex numbers equal within tol. */
inline void
expectComplexNear(const Complex &a, const Complex &b, double tol = 1e-9)
{
    EXPECT_NEAR(a.real(), b.real(), tol);
    EXPECT_NEAR(a.imag(), b.imag(), tol);
}

/** EXPECT two amplitude vectors equal within tol (no phase slack). */
inline void
expectAmplitudesNear(const std::vector<Complex> &a,
                     const std::vector<Complex> &b, double tol = 1e-9)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_NEAR(a[i].real(), b[i].real(), tol)
            << "amplitude " << i << " (real)";
        EXPECT_NEAR(a[i].imag(), b[i].imag(), tol)
            << "amplitude " << i << " (imag)";
    }
}

/** EXPECT |<a|b>|^2 ~= 1 (equality up to global phase). */
inline void
expectSameState(const StateVector &a, const StateVector &b,
                double tol = 1e-9)
{
    EXPECT_NEAR(a.fidelityWith(b), 1.0, tol);
}

/**
 * Full unitary matrix of a (measure-free) circuit, built column by
 * column through the simulator. Exponential; use on small circuits.
 */
inline Matrix
circuitUnitary(const Circuit &circuit)
{
    const std::size_t dim = std::size_t{1} << circuit.numQubits();
    Matrix u(dim, dim);
    for (std::size_t col = 0; col < dim; ++col) {
        std::vector<Complex> basis(dim, Complex{0.0, 0.0});
        basis[col] = 1.0;
        StateVector sv = StateVector::fromAmplitudes(std::move(basis));
        for (const Operation &op : circuit.ops()) {
            if (op.kind == OpKind::Barrier)
                continue;
            sv.applyUnitary(op);
        }
        for (std::size_t row = 0; row < dim; ++row)
            u(row, col) = sv.amplitude(row);
    }
    return u;
}

/** EXPECT two circuits implement the same unitary (global phase ok). */
inline void
expectUnitaryEquivalent(const Circuit &a, const Circuit &b,
                        double tol = 1e-8)
{
    EXPECT_TRUE(circuitUnitary(a).equalUpToGlobalPhase(
        circuitUnitary(b), tol))
        << "circuits are not unitarily equivalent:\n"
        << a.draw() << "\n" << b.draw();
}

/** Prepare a single-qubit pure state a|0> + b|1> on wire 0 of n. */
inline StateVector
makeSingleQubitState(double theta, double phi, std::size_t num_qubits = 1)
{
    StateVector sv(num_qubits);
    Operation op{.kind = OpKind::U, .qubits = {0},
                 .params = {theta, phi, 0.0}};
    sv.applyUnitary(op);
    return sv;
}

} // namespace test
} // namespace qra

#endif // QRA_TESTS_TESTUTIL_HH
