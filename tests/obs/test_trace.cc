/**
 * @file
 * Tracer: event recording and collection order, ring-buffer wrap
 * semantics, Chrome/JSON-lines export shape, span guards, and the
 * engine's counts staying bit-identical with tracing on or off.
 */

#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "circuit/circuit.hh"
#include "obs/trace.hh"
#include "runtime/execution_engine.hh"
#include "sim/result.hh"

using namespace qra;
using obs::TraceEvent;
using obs::Tracer;

namespace {

/** Restores the global telemetry switches on scope exit. */
struct TelemetryGuard
{
    TelemetryGuard()
    {
        obs::setMetricsEnabled(false);
        obs::setTracingEnabled(false);
        Tracer::global().clear();
    }
    ~TelemetryGuard()
    {
        obs::setMetricsEnabled(false);
        obs::setTracingEnabled(false);
        Tracer::global().clear();
    }
};

TEST(Tracer, CompleteEventRoundTrips)
{
    Tracer tracer;
    const auto begin = Tracer::Clock::now();
    const auto end = begin + std::chrono::microseconds(12);
    tracer.recordComplete("unit", "myspan", begin, end,
                          {{"shots", 42}, {"wave", 3}});
    const auto events = tracer.collect();
    ASSERT_EQ(events.size(), 1u);
    const TraceEvent &ev = events[0];
    EXPECT_STREQ(ev.name, "myspan");
    EXPECT_STREQ(ev.cat, "unit");
    EXPECT_EQ(ev.ph, 'X');
    EXPECT_EQ(ev.durNs, 12000u);
    ASSERT_EQ(ev.numArgs, 2);
    EXPECT_STREQ(ev.argKey[0], "shots");
    EXPECT_EQ(ev.argVal[0], 42u);
    EXPECT_STREQ(ev.argKey[1], "wave");
    EXPECT_EQ(ev.argVal[1], 3u);
}

TEST(Tracer, LongNamesAreTruncatedNotOverflowed)
{
    Tracer tracer;
    const std::string long_name(3 * TraceEvent::kNameLen, 'n');
    tracer.recordInstant("category-name-way-too-long", long_name);
    const auto events = tracer.collect();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(std::string(events[0].name).size(),
              TraceEvent::kNameLen - 1);
    EXPECT_EQ(std::string(events[0].cat).size(),
              TraceEvent::kCatLen - 1);
}

TEST(Tracer, CollectSortsGloballyAndPerThreadMonotonic)
{
    Tracer tracer;
    std::vector<std::thread> workers;
    for (int t = 0; t < 4; ++t)
        workers.emplace_back([&tracer] {
            for (int i = 0; i < 50; ++i)
                tracer.recordInstant("unit", "tick");
        });
    for (auto &w : workers)
        w.join();

    const auto events = tracer.collect();
    ASSERT_EQ(events.size(), 200u);
    std::map<std::uint32_t, std::uint64_t> last_per_thread;
    std::uint64_t last = 0;
    for (const TraceEvent &ev : events) {
        EXPECT_GE(ev.tsNs, last);
        last = ev.tsNs;
        const auto it = last_per_thread.find(ev.tid);
        if (it != last_per_thread.end())
            EXPECT_GE(ev.tsNs, it->second);
        last_per_thread[ev.tid] = ev.tsNs;
    }
    EXPECT_EQ(last_per_thread.size(), 4u);
}

TEST(Tracer, AsyncBeginEndShareAnId)
{
    Tracer tracer;
    const std::uint64_t id = tracer.nextAsyncId();
    EXPECT_NE(id, tracer.nextAsyncId());
    tracer.recordAsyncBegin("unit", "wave", id, {{"wave", 1}});
    tracer.recordAsyncEnd("unit", "wave", id);
    const auto events = tracer.collect();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].ph, 'b');
    EXPECT_EQ(events[1].ph, 'e');
    EXPECT_EQ(events[0].id, id);
    EXPECT_EQ(events[1].id, id);
    EXPECT_LE(events[0].tsNs, events[1].tsNs);
}

TEST(Tracer, RingWrapKeepsNewestEventsAndCountsDrops)
{
    Tracer tracer;
    tracer.setRingCapacity(16); // 16 is the enforced minimum
    for (std::uint64_t i = 0; i < 40; ++i)
        tracer.recordInstant("unit", "tick", {{"i", i}});
    const auto events = tracer.collect();
    ASSERT_EQ(events.size(), 16u);
    EXPECT_EQ(tracer.dropped(), 24u);
    for (std::size_t i = 0; i < events.size(); ++i)
        EXPECT_EQ(events[i].argVal[0], 24 + i); // oldest survivor first
}

TEST(Tracer, ChromeJsonHasTraceEventShape)
{
    Tracer tracer;
    const auto begin = Tracer::Clock::now();
    tracer.recordComplete("unit", "spanx", begin,
                          begin + std::chrono::nanoseconds(1500));
    tracer.recordInstant("unit", "mark");
    const std::uint64_t id = tracer.nextAsyncId();
    tracer.recordAsyncBegin("unit", "async", id);
    tracer.recordAsyncEnd("unit", "async", id);

    const std::string json = tracer.chromeJson();
    EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
    EXPECT_NE(json.find("\"dur\":1.500"), std::string::npos);
    EXPECT_NE(json.find("]}"), std::string::npos);

    // One event object per line; comma-separated except the last.
    std::istringstream lines(json);
    std::string line;
    std::size_t event_lines = 0;
    while (std::getline(lines, line))
        if (line.rfind("{\"name\":", 0) == 0)
            ++event_lines;
    EXPECT_EQ(event_lines, 4u);
}

TEST(Tracer, JsonLinesMatchesCollectedEvents)
{
    Tracer tracer;
    for (int i = 0; i < 5; ++i)
        tracer.recordInstant("unit", "tick", {{"i", 7}});
    std::ostringstream os;
    tracer.writeJsonLines(os);
    std::istringstream lines(os.str());
    std::string line;
    std::size_t count = 0;
    while (std::getline(lines, line)) {
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
        EXPECT_NE(line.find("\"ts_ns\":"), std::string::npos);
        EXPECT_NE(line.find("\"i\":7"), std::string::npos);
        ++count;
    }
    EXPECT_EQ(count, tracer.collect().size());
}

TEST(Span, RecordsOnlyWhenTracingEnabled)
{
    TelemetryGuard guard;
    {
        obs::Span span("unit", "invisible");
    }
    EXPECT_TRUE(Tracer::global().collect().empty());

    obs::setTracingEnabled(true);
    {
        obs::Span span("unit", "visible", {{"shots", 9}});
        span.arg("shots", 10); // overwrite, not append
        span.arg("extra", 1);
    }
    obs::setTracingEnabled(false);
    const auto events = Tracer::global().collect();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_STREQ(events[0].name, "visible");
    ASSERT_EQ(events[0].numArgs, 2);
    EXPECT_EQ(events[0].argVal[0], 10u);
    EXPECT_STREQ(events[0].argKey[1], "extra");
}

TEST(TimedSpan, MeasuresEvenWhenTracingDisabled)
{
    TelemetryGuard guard;
    obs::TimedSpan span("unit", "timed");
    volatile std::uint64_t sink = 0;
    for (std::uint64_t i = 0; i < 50000; ++i)
        sink += i;
    const double seconds = span.stop();
    EXPECT_GT(seconds, 0.0);
    EXPECT_DOUBLE_EQ(span.stop(), seconds); // idempotent
    EXPECT_TRUE(Tracer::global().collect().empty());
}

TEST(Engine, CountsBitIdenticalWithTelemetryOnAndOff)
{
    TelemetryGuard guard;
    Circuit circuit(3, 3, "trace_identity");
    circuit.h(0);
    circuit.cx(0, 1);
    circuit.ry(0.7, 2);
    circuit.measureAll();

    runtime::EngineOptions options;
    options.threads = 2;
    options.shardShots = 128;
    runtime::ExecutionEngine engine(options);

    const Result plain = engine.run(circuit, 512, "statevector", 5);

    obs::setMetricsEnabled(true);
    obs::setTracingEnabled(true);
    const Result traced = engine.run(circuit, 512, "statevector", 5);
    obs::setMetricsEnabled(false);
    obs::setTracingEnabled(false);

    EXPECT_EQ(traced.rawCounts(), plain.rawCounts());
    // The traced run must actually have recorded shard spans.
    bool saw_shard = false;
    for (const TraceEvent &ev : Tracer::global().collect())
        if (std::string(ev.name) == "shard")
            saw_shard = true;
    EXPECT_TRUE(saw_shard);
}

} // namespace
