/**
 * @file
 * MetricsRegistry: deterministic snapshots under any thread count,
 * histogram bucket semantics, capacity limits, and the zero-cost
 * (allocation-free) disabled path shared with the tracer.
 */

#include <atomic>
#include <cstdlib>
#include <new>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

using namespace qra;
using obs::MetricsRegistry;

// Global allocation counter for the disabled-path test: the claim is
// that telemetry updates with telemetry off never reach the heap.
namespace {
std::atomic<std::size_t> g_allocations{0};
} // namespace

void *
operator new(std::size_t size)
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace {

/**
 * A fixed workload — 1200 counter increments and histogram
 * observations with a deterministic value pattern — split across
 * @p num_threads threads, on a fresh registry.
 */
obs::MetricsSnapshot
runWorkload(std::size_t num_threads)
{
    MetricsRegistry reg;
    const auto items = reg.counter("work.items");
    const auto latency =
        reg.histogram("work.latency", {10, 100, 1000});

    constexpr std::size_t kTotal = 1200;
    std::vector<std::thread> workers;
    for (std::size_t t = 0; t < num_threads; ++t) {
        const std::size_t begin = kTotal * t / num_threads;
        const std::size_t end = kTotal * (t + 1) / num_threads;
        workers.emplace_back([&, begin, end] {
            for (std::size_t i = begin; i < end; ++i) {
                reg.add(items, 1);
                reg.observe(latency, (i * 7) % 1500);
            }
        });
    }
    for (auto &w : workers)
        w.join();
    return reg.snapshot();
}

TEST(MetricsRegistry, RegistrationIsIdempotentByName)
{
    MetricsRegistry reg;
    EXPECT_EQ(reg.counter("a").id, reg.counter("a").id);
    EXPECT_NE(reg.counter("a").id, reg.counter("b").id);
    EXPECT_EQ(reg.gauge("g").id, reg.gauge("g").id);
    EXPECT_EQ(reg.histogram("h").id, reg.histogram("h").id);
}

TEST(MetricsRegistry, CountersAccumulateAndSnapshot)
{
    MetricsRegistry reg;
    const auto c = reg.counter("events");
    reg.add(c, 5);
    reg.add(c);
    EXPECT_EQ(reg.counterValue(c), 6u);
    const auto snap = reg.snapshot();
    ASSERT_TRUE(snap.counters.count("events"));
    EXPECT_EQ(snap.counters.at("events"), 6u);
}

TEST(MetricsRegistry, SnapshotIsDeterministicAcrossThreadCounts)
{
    const auto s1 = runWorkload(1);
    for (std::size_t threads : {4u, 8u}) {
        const auto sn = runWorkload(threads);
        EXPECT_EQ(sn.counters, s1.counters) << threads << " threads";
        ASSERT_TRUE(sn.histograms.count("work.latency"));
        const auto &a = s1.histograms.at("work.latency");
        const auto &b = sn.histograms.at("work.latency");
        EXPECT_EQ(b.buckets, a.buckets) << threads << " threads";
        EXPECT_EQ(b.count, a.count);
        EXPECT_EQ(b.sum, a.sum);
        EXPECT_EQ(b.min, a.min);
        EXPECT_EQ(b.max, a.max);
    }
}

TEST(MetricsRegistry, HistogramBucketBoundariesAreInclusive)
{
    MetricsRegistry reg;
    const auto h = reg.histogram("lat", {10, 100, 1000});
    // One value per interesting position: below, on, and just above
    // each inclusive upper bound, plus the overflow bucket.
    for (std::uint64_t v : {5, 10, 11, 100, 101, 1000, 1001})
        reg.observe(h, v);
    const auto snap = reg.snapshot();
    const auto &hist = snap.histograms.at("lat");
    ASSERT_EQ(hist.bounds, (std::vector<std::uint64_t>{10, 100, 1000}));
    ASSERT_EQ(hist.buckets.size(), 4u);
    EXPECT_EQ(hist.buckets,
              (std::vector<std::uint64_t>{2, 2, 2, 1}));
    EXPECT_EQ(hist.count, 7u);
    EXPECT_EQ(hist.sum, 5u + 10 + 11 + 100 + 101 + 1000 + 1001);
    EXPECT_EQ(hist.min, 5u);
    EXPECT_EQ(hist.max, 1001u);
}

TEST(MetricsRegistry, DefaultLatencyBoundsArePowersOfFour)
{
    MetricsRegistry reg;
    const auto h = reg.histogram("latency.default");
    reg.observe(h, 1);
    const auto snap = reg.snapshot();
    const auto &hist = snap.histograms.at("latency.default");
    ASSERT_FALSE(hist.bounds.empty());
    EXPECT_EQ(hist.bounds.front(), 1000u);
    EXPECT_EQ(hist.bounds.back(), 16'777'216'000ull); // 1us * 4^12
    for (std::size_t i = 1; i < hist.bounds.size(); ++i)
        EXPECT_EQ(hist.bounds[i], hist.bounds[i - 1] * 4);
    EXPECT_EQ(hist.buckets.size(), hist.bounds.size() + 1);
}

TEST(MetricsRegistry, GaugesAreLastWriteWins)
{
    MetricsRegistry reg;
    const auto g = reg.gauge("depth");
    reg.set(g, 1.5);
    reg.set(g, 2.5);
    EXPECT_DOUBLE_EQ(reg.snapshot().gauges.at("depth"), 2.5);
}

TEST(MetricsRegistry, CounterCapacityIsEnforced)
{
    MetricsRegistry reg;
    for (std::size_t i = 0; i < MetricsRegistry::kMaxCounters; ++i)
        reg.counter("c" + std::to_string(i));
    EXPECT_THROW(reg.counter("one-too-many"), ValueError);
    // Existing names still resolve after the failed registration.
    EXPECT_EQ(reg.counter("c0").id, 0u);
}

TEST(MetricsRegistry, HistogramBoundsMustAscend)
{
    MetricsRegistry reg;
    EXPECT_THROW(reg.histogram("bad", {100, 10}), ValueError);
}

TEST(MetricsRegistry, ResetZeroesValuesButKeepsDefinitions)
{
    MetricsRegistry reg;
    const auto c = reg.counter("events");
    const auto h = reg.histogram("lat", {10});
    reg.add(c, 3);
    reg.observe(h, 7);
    reg.reset();
    const auto snap = reg.snapshot();
    EXPECT_EQ(snap.counters.at("events"), 0u);
    EXPECT_EQ(snap.histograms.at("lat").count, 0u);
    EXPECT_EQ(reg.counter("events").id, c.id);
}

TEST(MetricsRegistry, SnapshotJsonHasAllSections)
{
    MetricsRegistry reg;
    reg.add(reg.counter("c"), 1);
    reg.set(reg.gauge("g"), 0.5);
    reg.observe(reg.histogram("h", {10}), 3);
    const std::string json = reg.snapshot().toJson();
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"gauges\""), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
    EXPECT_NE(json.find("\"bounds\""), std::string::npos);
}

TEST(MetricsRegistry, DisabledPathIsInvisibleAndAllocationFree)
{
    auto &reg = MetricsRegistry::global();
    const auto c = reg.counter("test.disabled.counter");
    const auto g = reg.gauge("test.disabled.gauge");
    const auto h = reg.histogram("test.disabled.hist");

    // Warm the thread-local shard so the loop below measures the
    // steady state, not first-touch setup.
    obs::setMetricsEnabled(true);
    obs::count(c);
    obs::setMetricsEnabled(false);
    obs::setTracingEnabled(false);
    const std::uint64_t before = reg.counterValue(c);

    const std::size_t allocs0 =
        g_allocations.load(std::memory_order_relaxed);
    for (int i = 0; i < 1000; ++i) {
        obs::count(c, 2);
        obs::setGauge(g, 1.0);
        obs::observe(h, 12345);
        obs::Span span("test", "disabled_span", {{"i", 1}});
        obs::instant("test", "disabled_instant");
    }
    const std::size_t allocs1 =
        g_allocations.load(std::memory_order_relaxed);

    EXPECT_EQ(allocs1 - allocs0, 0u)
        << "disabled telemetry path reached the heap";
    EXPECT_EQ(reg.counterValue(c), before);
}

} // namespace
