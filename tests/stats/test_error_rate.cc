/** @file Tests for the raw-vs-filtered error-rate accounting. */

#include <cmath>

#include <gtest/gtest.h>

#include "stats/error_rate.hh"

namespace qra {
namespace stats {
namespace {

/**
 * Reconstruct the paper's Table 1 arithmetic. Register layout:
 * bit 0 = payload (q1), bit 1 = assertion ancilla (q2).
 * Paper distribution: 00 93.8%, 01 2.7%, 10 2.4%, 11 1.1%, where the
 * table's label order is q1 q2 (payload first); our register value
 * packs the payload in bit 0 and the ancilla in bit 1.
 */
Distribution
table1Distribution()
{
    // q1 q2 -> (payload, assertion): 00 -> p0 a0, 01 -> p0 a1, etc.
    Distribution dist;
    dist[0b00] = 0.938; // payload 0, assertion 0
    dist[0b10] = 0.027; // payload 0, assertion 1
    dist[0b01] = 0.024; // payload 1, assertion 0 (false negative)
    dist[0b11] = 0.011; // payload 1, assertion 1
    return dist;
}

TEST(ErrorRateTest, ReproducesTable1Arithmetic)
{
    const ErrorRateReport report = computeErrorRates(
        table1Distribution(),
        [](std::uint64_t reg) { return (reg & 1) == 1; },
        [](std::uint64_t reg) { return ((reg >> 1) & 1) == 0; });

    // Raw error rate: 2.4% + 1.1% = 3.5%.
    EXPECT_NEAR(report.rawErrorRate, 0.035, 1e-9);
    // Filtered: 2.4 / (93.8 + 2.4) = 2.494%.
    EXPECT_NEAR(report.filteredErrorRate, 0.024 / 0.962, 1e-9);
    // Reduction ~ 28.7% (paper rounds to 28.5%).
    EXPECT_NEAR(report.reduction(), 0.287, 0.01);
    EXPECT_NEAR(report.keptFraction, 0.962, 1e-9);
}

TEST(ErrorRateTest, NoErrorsGivesZeroRates)
{
    Distribution dist{{0, 1.0}};
    const ErrorRateReport report = computeErrorRates(
        dist, [](std::uint64_t) { return false; },
        [](std::uint64_t) { return true; });
    EXPECT_DOUBLE_EQ(report.rawErrorRate, 0.0);
    EXPECT_DOUBLE_EQ(report.filteredErrorRate, 0.0);
    EXPECT_DOUBLE_EQ(report.reduction(), 0.0);
}

TEST(ErrorRateTest, PerfectFilterRemovesAllErrors)
{
    // Errors occur only when the assertion also fires.
    Distribution dist{{0b00, 0.9}, {0b11, 0.1}};
    const ErrorRateReport report = computeErrorRates(
        dist, [](std::uint64_t reg) { return (reg & 1) == 1; },
        [](std::uint64_t reg) { return ((reg >> 1) & 1) == 0; });
    EXPECT_NEAR(report.rawErrorRate, 0.1, 1e-12);
    EXPECT_NEAR(report.filteredErrorRate, 0.0, 1e-12);
    EXPECT_NEAR(report.reduction(), 1.0, 1e-12);
    EXPECT_NEAR(report.keptFraction, 0.9, 1e-12);
}

TEST(ErrorRateTest, UselessFilterKeepsRate)
{
    // Assertion fires independently of the payload error.
    Distribution dist{{0b00, 0.45}, {0b01, 0.05},
                      {0b10, 0.45}, {0b11, 0.05}};
    const ErrorRateReport report = computeErrorRates(
        dist, [](std::uint64_t reg) { return (reg & 1) == 1; },
        [](std::uint64_t reg) { return ((reg >> 1) & 1) == 0; });
    EXPECT_NEAR(report.rawErrorRate, 0.1, 1e-12);
    EXPECT_NEAR(report.filteredErrorRate, 0.1, 1e-12);
    EXPECT_NEAR(report.reduction(), 0.0, 1e-12);
}

TEST(ErrorRateTest, AllRejectingFilterIsNotAPerfectFilter)
{
    // Every shot erroneous, filter keeps nothing: the conditional
    // error rate is undefined, and reduction() must not report the
    // bogus "100% reduction, kept 0%" a defaulted 0.0 produced.
    Distribution dist{{0b01, 0.6}, {0b11, 0.4}};
    const ErrorRateReport report = computeErrorRates(
        dist, [](std::uint64_t reg) { return (reg & 1) == 1; },
        [](std::uint64_t reg) { return ((reg >> 1) & 1) == 0 &&
                                       (reg & 1) == 0; });
    EXPECT_NEAR(report.rawErrorRate, 1.0, 1e-12);
    EXPECT_FALSE(report.hasFiltered);
    EXPECT_TRUE(std::isnan(report.filteredErrorRate));
    EXPECT_DOUBLE_EQ(report.reduction(), 0.0);
    EXPECT_DOUBLE_EQ(report.keptFraction, 0.0);
    EXPECT_NE(report.str().find("no shots passed"),
              std::string::npos);
}

TEST(ErrorRateTest, EmptyDistributionHasNoFilteredRate)
{
    const ErrorRateReport report = computeErrorRates(
        Distribution{}, [](std::uint64_t) { return false; },
        [](std::uint64_t) { return true; });
    EXPECT_DOUBLE_EQ(report.rawErrorRate, 0.0);
    EXPECT_FALSE(report.hasFiltered);
    EXPECT_DOUBLE_EQ(report.reduction(), 0.0);
}

TEST(ErrorRateTest, StrMentionsRates)
{
    ErrorRateReport report;
    report.rawErrorRate = 0.035;
    report.filteredErrorRate = 0.025;
    report.keptFraction = 0.96;
    const std::string s = report.str();
    EXPECT_NE(s.find("3.5%"), std::string::npos);
    EXPECT_NE(s.find("2.5%"), std::string::npos);
}

} // namespace
} // namespace stats
} // namespace qra
