/** @file Tests for counts/distribution utilities. */

#include <gtest/gtest.h>

#include "stats/histogram.hh"

namespace qra {
namespace stats {
namespace {

TEST(HistogramTest, TotalShots)
{
    Counts counts{{0, 10}, {3, 30}};
    EXPECT_EQ(totalShots(counts), 40u);
    EXPECT_EQ(totalShots({}), 0u);
}

TEST(HistogramTest, ToDistribution)
{
    Counts counts{{0, 25}, {1, 75}};
    const Distribution dist = toDistribution(counts);
    EXPECT_DOUBLE_EQ(dist.at(0), 0.25);
    EXPECT_DOUBLE_EQ(dist.at(1), 0.75);
    EXPECT_TRUE(toDistribution({}).empty());
}

TEST(HistogramTest, FilterDistributionKeepsAndRenormalises)
{
    Distribution dist{{0, 0.5}, {1, 0.25}, {2, 0.25}};
    const double retained = filterDistribution(dist, {0, 2});
    EXPECT_DOUBLE_EQ(retained, 0.75);
    EXPECT_DOUBLE_EQ(dist.at(0), 2.0 / 3.0);
    EXPECT_DOUBLE_EQ(dist.at(2), 1.0 / 3.0);
    EXPECT_EQ(dist.count(1), 0u);
}

TEST(HistogramTest, FilterToNothing)
{
    Distribution dist{{0, 1.0}};
    const double retained = filterDistribution(dist, {7});
    EXPECT_DOUBLE_EQ(retained, 0.0);
    EXPECT_TRUE(dist.empty());
}

TEST(HistogramTest, MarginalizeSelectsBits)
{
    // Joint over 3 bits; marginalise to bits {0, 2}.
    Distribution dist{{0b000, 0.1}, {0b001, 0.2}, {0b100, 0.3},
                      {0b110, 0.4}};
    const Distribution m = marginalize(dist, {0, 2});
    // bit0 of new key = old bit0, bit1 of new key = old bit2.
    EXPECT_DOUBLE_EQ(m.at(0b00), 0.1);
    EXPECT_DOUBLE_EQ(m.at(0b01), 0.2);
    EXPECT_DOUBLE_EQ(m.at(0b10), 0.7);
}

TEST(HistogramTest, MarginalizeReordersBits)
{
    Distribution dist{{0b01, 1.0}};
    // New bit 0 = old bit 1, new bit 1 = old bit 0.
    const Distribution m = marginalize(dist, {1, 0});
    EXPECT_DOUBLE_EQ(m.at(0b10), 1.0);
}

TEST(HistogramTest, DistributionToString)
{
    Distribution dist{{0, 0.5}, {3, 0.5}};
    const std::string s = distributionToString(dist, 2);
    EXPECT_NE(s.find("00:0.500"), std::string::npos);
    EXPECT_NE(s.find("11:0.500"), std::string::npos);
}

} // namespace
} // namespace stats
} // namespace qra
