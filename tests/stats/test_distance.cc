/** @file Tests for distribution distances and confidence intervals. */

#include <gtest/gtest.h>

#include "stats/distance.hh"

namespace qra {
namespace stats {
namespace {

TEST(DistanceTest, TotalVariationIdentical)
{
    Distribution p{{0, 0.5}, {1, 0.5}};
    EXPECT_DOUBLE_EQ(totalVariation(p, p), 0.0);
}

TEST(DistanceTest, TotalVariationDisjoint)
{
    Distribution p{{0, 1.0}};
    Distribution q{{1, 1.0}};
    EXPECT_DOUBLE_EQ(totalVariation(p, q), 1.0);
}

TEST(DistanceTest, TotalVariationPartialOverlap)
{
    Distribution p{{0, 0.5}, {1, 0.5}};
    Distribution q{{0, 1.0}};
    EXPECT_DOUBLE_EQ(totalVariation(p, q), 0.5);
}

TEST(DistanceTest, TotalVariationSymmetric)
{
    Distribution p{{0, 0.7}, {1, 0.3}};
    Distribution q{{0, 0.2}, {2, 0.8}};
    EXPECT_DOUBLE_EQ(totalVariation(p, q), totalVariation(q, p));
}

TEST(DistanceTest, HellingerBounds)
{
    Distribution p{{0, 1.0}};
    Distribution q{{1, 1.0}};
    EXPECT_DOUBLE_EQ(hellinger(p, p), 0.0);
    EXPECT_DOUBLE_EQ(hellinger(p, q), 1.0);

    Distribution r{{0, 0.5}, {1, 0.5}};
    const double h = hellinger(p, r);
    EXPECT_GT(h, 0.0);
    EXPECT_LT(h, 1.0);
}

TEST(DistanceTest, WilsonHalfWidthShrinksWithN)
{
    const double w100 = wilsonHalfWidth(0.5, 100);
    const double w10000 = wilsonHalfWidth(0.5, 10000);
    EXPECT_GT(w100, w10000);
    // Classic n=100, p=0.5 half-width is about 9.5%.
    EXPECT_NEAR(w100, 0.095, 0.01);
    EXPECT_DOUBLE_EQ(wilsonHalfWidth(0.5, 0), 1.0);
}

TEST(DistanceTest, WilsonAtExtremes)
{
    // Zero successes still leaves nonzero uncertainty.
    EXPECT_GT(wilsonHalfWidth(0.0, 100), 0.0);
    EXPECT_GT(wilsonHalfWidth(1.0, 100), 0.0);
    // The boundary cases shrink with n like the interior ones.
    EXPECT_LT(wilsonHalfWidth(0.0, 10000), wilsonHalfWidth(0.0, 100));
    EXPECT_LT(wilsonHalfWidth(1.0, 10000), wilsonHalfWidth(1.0, 100));
    // And stay narrower than the maximum-variance midpoint.
    EXPECT_LT(wilsonHalfWidth(0.0, 100), wilsonHalfWidth(0.5, 100));
}

TEST(DistanceTest, WilsonWithNoShotsIsVacuous)
{
    // n = 0: no information, a full-width interval at any p_hat —
    // the value early-stopping rules compare against their target,
    // so it must be the never-converged extreme, not a division by
    // zero.
    EXPECT_DOUBLE_EQ(wilsonHalfWidth(0.0, 0), 1.0);
    EXPECT_DOUBLE_EQ(wilsonHalfWidth(0.5, 0), 1.0);
    EXPECT_DOUBLE_EQ(wilsonHalfWidth(1.0, 0), 1.0);
}

} // namespace
} // namespace stats
} // namespace qra
