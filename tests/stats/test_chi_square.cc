/** @file Tests for the chi-square goodness-of-fit machinery. */

#include <cmath>

#include <gtest/gtest.h>

#include "common/error.hh"
#include "stats/chi_square.hh"

namespace qra {
namespace stats {
namespace {

TEST(GammaTest, KnownValues)
{
    // Q(a, 0) = 1.
    EXPECT_NEAR(regularizedGammaQ(1.0, 0.0), 1.0, 1e-12);
    // Q(1, x) = exp(-x) (chi-square with 2 dof).
    for (double x : {0.1, 1.0, 2.5, 10.0})
        EXPECT_NEAR(regularizedGammaQ(1.0, x), std::exp(-x), 1e-10)
            << x;
    // Q(0.5, x) = erfc(sqrt(x)) (chi-square with 1 dof).
    for (double x : {0.5, 1.0, 4.0})
        EXPECT_NEAR(regularizedGammaQ(0.5, x),
                    std::erfc(std::sqrt(x)), 1e-9)
            << x;
}

TEST(GammaTest, ChiSquareCriticalValues)
{
    // Familiar 95th percentiles: chi2(1) = 3.841, chi2(3) = 7.815.
    EXPECT_NEAR(regularizedGammaQ(0.5, 3.841 / 2.0), 0.05, 2e-4);
    EXPECT_NEAR(regularizedGammaQ(1.5, 7.815 / 2.0), 0.05, 2e-4);
}

TEST(GammaTest, Validation)
{
    EXPECT_THROW(regularizedGammaQ(0.0, 1.0), ValueError);
    EXPECT_THROW(regularizedGammaQ(1.0, -1.0), ValueError);
}

TEST(ChiSquareTest, PerfectFitHasHighPValue)
{
    Counts observed{{0, 5000}, {1, 5000}};
    Distribution expected{{0, 0.5}, {1, 0.5}};
    const ChiSquareResult r = chiSquareTest(observed, expected);
    EXPECT_EQ(r.degreesOfFreedom, 1u);
    EXPECT_NEAR(r.statistic, 0.0, 1e-12);
    EXPECT_NEAR(r.pValue, 1.0, 1e-9);
    EXPECT_FALSE(r.reject());
}

TEST(ChiSquareTest, GrossMismatchRejects)
{
    Counts observed{{0, 9000}, {1, 1000}};
    Distribution expected{{0, 0.5}, {1, 0.5}};
    const ChiSquareResult r = chiSquareTest(observed, expected);
    EXPECT_TRUE(r.reject(0.001));
    EXPECT_GT(r.statistic, 1000.0);
}

TEST(ChiSquareTest, ImpossibleOutcomeForcesRejection)
{
    Counts observed{{0, 99}, {5, 1}};
    Distribution expected{{0, 1.0}};
    const ChiSquareResult r = chiSquareTest(observed, expected);
    EXPECT_TRUE(std::isinf(r.statistic));
    EXPECT_DOUBLE_EQ(r.pValue, 0.0);
    EXPECT_TRUE(r.reject());
}

TEST(ChiSquareTest, SmallDeviationNotRejected)
{
    // 5070 vs 4930 on 10000 shots: chi2 ~ 1.96, p ~ 0.16.
    Counts observed{{0, 5070}, {1, 4930}};
    Distribution expected{{0, 0.5}, {1, 0.5}};
    const ChiSquareResult r = chiSquareTest(observed, expected);
    EXPECT_FALSE(r.reject(0.05));
    EXPECT_GT(r.pValue, 0.1);
}

TEST(ChiSquareTest, DegreesOfFreedomCountsCategories)
{
    Counts observed{{0, 25}, {1, 25}, {2, 25}, {3, 25}};
    Distribution expected{{0, 0.25}, {1, 0.25}, {2, 0.25}, {3, 0.25}};
    const ChiSquareResult r = chiSquareTest(observed, expected);
    EXPECT_EQ(r.degreesOfFreedom, 3u);
}

TEST(ChiSquareTest, MissingObservedCategoryCounts)
{
    // Expected support includes 1, but nothing was observed there.
    Counts observed{{0, 100}};
    Distribution expected{{0, 0.9}, {1, 0.1}};
    const ChiSquareResult r = chiSquareTest(observed, expected);
    // statistic = (100-90)^2/90 + (0-10)^2/10 = 1.111 + 10.
    EXPECT_NEAR(r.statistic, 100.0 / 90.0 + 10.0, 1e-9);
}

TEST(ChiSquareTest, ZeroShotsThrows)
{
    EXPECT_THROW(chiSquareTest({}, {{0, 1.0}}), ValueError);
}

TEST(ChiSquareTest, SingleCategoryPerfectFit)
{
    Counts observed{{0, 100}};
    Distribution expected{{0, 1.0}};
    const ChiSquareResult r = chiSquareTest(observed, expected);
    EXPECT_EQ(r.degreesOfFreedom, 0u);
    EXPECT_FALSE(r.reject());
}

} // namespace
} // namespace stats
} // namespace qra
