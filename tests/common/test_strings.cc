/** @file Tests for bitstring and formatting helpers. */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "common/strings.hh"

namespace qra {
namespace {

TEST(StringsTest, ToBitstringBasic)
{
    EXPECT_EQ(toBitstring(0, 3), "000");
    EXPECT_EQ(toBitstring(1, 3), "001");
    EXPECT_EQ(toBitstring(2, 3), "010");
    EXPECT_EQ(toBitstring(5, 3), "101");
    EXPECT_EQ(toBitstring(7, 3), "111");
}

TEST(StringsTest, ToBitstringWidthOne)
{
    EXPECT_EQ(toBitstring(0, 1), "0");
    EXPECT_EQ(toBitstring(1, 1), "1");
}

TEST(StringsTest, ToBitstringTruncatesHighBits)
{
    // Only the low `width` bits are rendered.
    EXPECT_EQ(toBitstring(0b1101, 2), "01");
}

TEST(StringsTest, FromBitstringRoundTrip)
{
    for (std::uint64_t v = 0; v < 64; ++v)
        EXPECT_EQ(fromBitstring(toBitstring(v, 6)), v);
}

TEST(StringsTest, FromBitstringRejectsJunk)
{
    EXPECT_THROW(fromBitstring("01x"), ValueError);
    EXPECT_THROW(fromBitstring("2"), ValueError);
}

TEST(StringsTest, JoinBasics)
{
    EXPECT_EQ(join({}, ", "), "");
    EXPECT_EQ(join({"a"}, ", "), "a");
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringsTest, FormatPercent)
{
    EXPECT_EQ(formatPercent(0.935, 1), "93.5%");
    EXPECT_EQ(formatPercent(0.0, 1), "0.0%");
    EXPECT_EQ(formatPercent(1.0, 0), "100%");
    EXPECT_EQ(formatPercent(0.12345, 2), "12.35%");
}

TEST(StringsTest, FormatDouble)
{
    EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(formatDouble(-0.5, 1), "-0.5");
    EXPECT_EQ(formatDouble(2.0, 0), "2");
}

} // namespace
} // namespace qra
