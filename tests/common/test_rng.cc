/** @file Tests for the xoshiro256++ RNG and discrete sampling. */

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hh"

namespace qra {
namespace {

TEST(RngTest, Deterministic)
{
    Xoshiro256 a(42);
    Xoshiro256 b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Xoshiro256 a(1);
    Xoshiro256 b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a() == b())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(RngTest, ReseedRestoresStream)
{
    Xoshiro256 a(7);
    std::vector<std::uint64_t> first;
    for (int i = 0; i < 16; ++i)
        first.push_back(a());
    a.seed(7);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a(), first[i]);
}

TEST(RngTest, UniformInUnitInterval)
{
    Xoshiro256 rng(123);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(RngTest, UniformMeanIsHalf)
{
    Xoshiro256 rng(99);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, BelowStaysBelow)
{
    Xoshiro256 rng(5);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t v = rng.below(10);
        EXPECT_LT(v, 10u);
        seen.insert(v);
    }
    // All ten residues should appear over 1000 draws.
    EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, SampleDiscreteDegenerate)
{
    Xoshiro256 rng(1);
    const std::vector<double> probs{0.0, 1.0, 0.0};
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(sampleDiscrete(probs, rng), 1u);
}

TEST(RngTest, SampleDiscreteProportions)
{
    Xoshiro256 rng(2024);
    const std::vector<double> probs{0.2, 0.5, 0.3};
    std::vector<int> hist(3, 0);
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        ++hist[sampleDiscrete(probs, rng)];
    EXPECT_NEAR(hist[0] / double(n), 0.2, 0.01);
    EXPECT_NEAR(hist[1] / double(n), 0.5, 0.01);
    EXPECT_NEAR(hist[2] / double(n), 0.3, 0.01);
}

TEST(RngTest, SampleDiscreteToleratesDrift)
{
    Xoshiro256 rng(3);
    // Sums to slightly under one; the tail must absorb the slack.
    const std::vector<double> probs{0.5, 0.4999999};
    for (int i = 0; i < 1000; ++i) {
        const std::size_t s = sampleDiscrete(probs, rng);
        EXPECT_LT(s, 2u);
    }
}

TEST(RngTest, SampleDiscreteEmptyThrows)
{
    Xoshiro256 rng(4);
    EXPECT_ANY_THROW(sampleDiscrete({}, rng));
}

} // namespace
} // namespace qra
