/**
 * @file
 * Logger: runtime level filtering through the atomic minimum level,
 * structured key=value suffixes, and concurrent level changes not
 * racing with emission.
 */

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.hh"

using namespace qra;

namespace {

/** Restores the global log level on scope exit. */
struct LevelGuard
{
    LogLevel saved = Logger::level();
    ~LevelGuard() { Logger::setLevel(saved); }
};

TEST(Logger, LevelRoundTrips)
{
    LevelGuard guard;
    Logger::setLevel(LogLevel::Debug);
    EXPECT_EQ(Logger::level(), LogLevel::Debug);
    Logger::setLevel(LogLevel::Silent);
    EXPECT_EQ(Logger::level(), LogLevel::Silent);
}

TEST(Logger, FiltersBelowMinimumLevel)
{
    LevelGuard guard;
    Logger::setLevel(LogLevel::Warn);
    testing::internal::CaptureStderr();
    logDebug("quiet");
    logInfo("quiet");
    logWarn("loud");
    const std::string out = testing::internal::GetCapturedStderr();
    EXPECT_EQ(out, "[qra:warn] loud\n");
}

TEST(Logger, SilentSuppressesEverything)
{
    LevelGuard guard;
    Logger::setLevel(LogLevel::Silent);
    testing::internal::CaptureStderr();
    logDebug("a");
    logInfo("b");
    logWarn("c");
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST(Logger, StructuredFieldsAppendKeyValueSuffixes)
{
    LevelGuard guard;
    Logger::setLevel(LogLevel::Info);
    testing::internal::CaptureStderr();
    logInfo("wave converged", {{"wave", "3"}, {"shots", "2048"}});
    EXPECT_EQ(testing::internal::GetCapturedStderr(),
              "[qra:info] wave converged wave=3 shots=2048\n");
}

TEST(Logger, FieldsRespectFiltering)
{
    LevelGuard guard;
    Logger::setLevel(LogLevel::Silent);
    testing::internal::CaptureStderr();
    logWarn("hidden", {{"k", "v"}});
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST(Logger, ConcurrentLevelChangesAndEmissionDoNotRace)
{
    LevelGuard guard;
    testing::internal::CaptureStderr();
    std::vector<std::thread> workers;
    for (int t = 0; t < 4; ++t)
        workers.emplace_back([t] {
            for (int i = 0; i < 200; ++i) {
                if (t % 2 == 0)
                    Logger::setLevel(i % 2 == 0 ? LogLevel::Silent
                                                : LogLevel::Warn);
                else
                    logWarn("tick", {{"i", std::to_string(i)}});
            }
        });
    for (auto &w : workers)
        w.join();
    // The assertion is the absence of a data race (TSan) / crash;
    // emitted lines, if any, must each be well-formed.
    const std::string out = testing::internal::GetCapturedStderr();
    std::size_t pos = 0;
    while ((pos = out.find("[qra:", pos)) != std::string::npos) {
        EXPECT_EQ(out.compare(pos, 10, "[qra:warn]"), 0);
        ++pos;
    }
}

} // namespace
