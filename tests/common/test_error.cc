/** @file Tests for the error/exception machinery. */

#include <gtest/gtest.h>

#include "common/error.hh"

namespace qra {
namespace {

TEST(ErrorTest, FatalThrowsValueError)
{
    EXPECT_THROW(QRA_FATAL("bad input"), ValueError);
}

TEST(ErrorTest, PanicThrowsBaseError)
{
    EXPECT_THROW(QRA_PANIC("broken invariant"), Error);
}

TEST(ErrorTest, FatalMessageCarriesFileAndLine)
{
    try {
        QRA_FATAL("something specific");
        FAIL() << "expected throw";
    } catch (const ValueError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("something specific"), std::string::npos);
        EXPECT_NE(what.find("test_error.cc"), std::string::npos);
        EXPECT_NE(what.find("fatal"), std::string::npos);
    }
}

TEST(ErrorTest, AssertMacroPassesOnTrue)
{
    EXPECT_NO_THROW(QRA_ASSERT(1 + 1 == 2, "arithmetic"));
}

TEST(ErrorTest, AssertMacroThrowsOnFalse)
{
    EXPECT_THROW(QRA_ASSERT(1 + 1 == 3, "arithmetic"), Error);
}

TEST(ErrorTest, HierarchyIsCatchableAsBase)
{
    try {
        throw CircuitError("circuit problem");
    } catch (const Error &e) {
        EXPECT_STREQ(e.what(), "circuit problem");
    }

    try {
        throw SimulationError("sim problem");
    } catch (const Error &e) {
        EXPECT_STREQ(e.what(), "sim problem");
    }
}

TEST(ErrorTest, DistinctTypesAreDistinct)
{
    EXPECT_THROW(throw QasmError("x"), QasmError);
    EXPECT_THROW(throw NoiseError("x"), NoiseError);
    EXPECT_THROW(throw TranspileError("x"), TranspileError);
    EXPECT_THROW(throw AssertionError("x"), AssertionError);
    EXPECT_THROW(throw IndexError("x"), IndexError);
}

} // namespace
} // namespace qra
