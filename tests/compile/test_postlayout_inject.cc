/**
 * @file
 * PostLayoutInjectPass: device compatibility of the routed output,
 * check-time ancilla binding, determinism, and the SWAP reduction vs
 * the legacy inject-then-transpile order on a grid-device batch.
 */

#include <gtest/gtest.h>

#include "assertions/classical_assertion.hh"
#include "assertions/entanglement_assertion.hh"
#include "compile/pipelines.hh"
#include "noise/device_model.hh"
#include "sim/statevector_simulator.hh"

namespace qra {
namespace {

using compile::CompileContext;
using compile::InjectionStrategy;
using compile::PrepareSpec;

CouplingMap
gridMap(std::size_t rows, std::size_t cols)
{
    CouplingMap map(rows * cols);
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
            const Qubit q = static_cast<Qubit>(r * cols + c);
            if (c + 1 < cols)
                map.addEdge(q, q + 1);
            if (r + 1 < rows)
                map.addEdge(q, static_cast<Qubit>(q + cols));
        }
    }
    return map;
}

Circuit
randomPayload(std::size_t num_qubits, std::size_t num_gates, Rng &rng)
{
    Circuit c(num_qubits, num_qubits, "payload");
    for (std::size_t i = 0; i < num_gates; ++i) {
        const Qubit q = static_cast<Qubit>(rng.below(num_qubits));
        switch (rng.below(3)) {
          case 0: c.h(q); break;
          case 1: c.t(q); break;
          default:
          {
            const Qubit r = static_cast<Qubit>(
                (q + 1 + rng.below(num_qubits - 1)) % num_qubits);
            c.cx(q, r);
          }
        }
    }
    c.measureAll();
    return c;
}

std::vector<AssertionSpec>
randomChecks(std::size_t num_qubits, std::size_t num_gates,
             std::size_t count, Rng &rng)
{
    std::vector<AssertionSpec> specs;
    for (std::size_t c = 0; c < count; ++c) {
        AssertionSpec spec;
        spec.assertion = std::make_shared<EntanglementAssertion>(2);
        const Qubit a = static_cast<Qubit>(rng.below(num_qubits));
        spec.targets = {a, static_cast<Qubit>(
                               (a + 1 + rng.below(num_qubits - 1)) %
                               num_qubits)};
        spec.insertAt =
            num_gates / 2 + rng.below(num_gates / 2 + 1);
        specs.push_back(std::move(spec));
    }
    return specs;
}

TEST(PostLayoutInject, OutputIsDeviceCompatible)
{
    const CouplingMap map = gridMap(3, 3);
    Rng rng(5);
    const Circuit payload = randomPayload(6, 24, rng);
    PrepareSpec prep;
    prep.assertions = randomChecks(6, 24, 3, rng);
    prep.coupling = &map;
    prep.injection = InjectionStrategy::PostLayout;

    const CompileContext ctx = compile::prepare(payload, prep);
    EXPECT_EQ(ctx.circuit.numQubits(), map.numQubits());
    for (const Operation &op : ctx.circuit.ops()) {
        if (op.qubits.size() != 2 || !opIsUnitary(op.kind))
            continue;
        if (op.kind == OpKind::CX)
            EXPECT_TRUE(map.hasEdge(op.qubits[0], op.qubits[1]))
                << op.str();
        else
            EXPECT_TRUE(map.connected(op.qubits[0], op.qubits[1]))
                << op.str();
    }
    // Bookkeeping flows through: three checks, clbits widened.
    ASSERT_NE(ctx.instrumented, nullptr);
    EXPECT_EQ(ctx.instrumented->checks().size(), 3u);
    EXPECT_EQ(ctx.circuit.numClbits(),
              payload.numClbits() + 3u);
}

TEST(PostLayoutInject, IsDeterministic)
{
    const CouplingMap map = gridMap(4, 4);
    Rng rng(7);
    const Circuit payload = randomPayload(8, 32, rng);
    PrepareSpec prep;
    prep.assertions = randomChecks(8, 32, 4, rng);
    prep.coupling = &map;
    prep.injection = InjectionStrategy::PostLayout;

    const CompileContext a = compile::prepare(payload, prep);
    const CompileContext b = compile::prepare(payload, prep);
    EXPECT_TRUE(a.circuit == b.circuit);
    EXPECT_EQ(a.insertedSwaps, b.insertedSwaps);
}

TEST(PostLayoutInject, AdjacentAncillaNeedsNoSwaps)
{
    // Single-qubit classical check on a 3-qubit line: the ancilla
    // binds to the free slot next to its target, so the instrumented
    // circuit routes without a single SWAP.
    CouplingMap line(3);
    for (Qubit q = 0; q + 1 < 3; ++q)
        line.addEdge(q, q + 1);
    Circuit payload(1, 1, "x");
    payload.x(0).measureAll();

    AssertionSpec check;
    check.assertion = std::make_shared<ClassicalAssertion>(1);
    check.targets = {0};
    check.insertAt = 1;

    PrepareSpec prep;
    prep.assertions = {check};
    prep.coupling = &line;
    prep.injection = InjectionStrategy::PostLayout;
    prep.transpileOptions.useGreedyLayout = false;

    const CompileContext ctx = compile::prepare(payload, prep);
    EXPECT_EQ(ctx.insertedSwaps, 0u);
}

TEST(PostLayoutInject, ReducesSwapsVersusLegacyOnGridBatch)
{
    // The acceptance-criteria batch: random late-check workloads on a
    // 4x4 grid. Deterministic seeds, so this is a hard bound, not a
    // statistical one.
    const CouplingMap map = gridMap(4, 4);
    std::size_t legacy_swaps = 0;
    std::size_t post_swaps = 0;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        Rng rng(seed);
        const Circuit payload = randomPayload(10, 48, rng);
        const std::vector<AssertionSpec> specs =
            randomChecks(10, 48, 5, rng);
        PrepareSpec prep;
        prep.assertions = specs;
        prep.coupling = &map;

        prep.injection = InjectionStrategy::PreLayout;
        legacy_swaps += compile::prepare(payload, prep).insertedSwaps;
        prep.injection = InjectionStrategy::PostLayout;
        post_swaps += compile::prepare(payload, prep).insertedSwaps;
    }
    EXPECT_LT(post_swaps, legacy_swaps)
        << "post-layout injection must insert fewer SWAPs";
}

TEST(PostLayoutInject, InsertAtIndexesPayloadInstructions)
{
    // insertAt counts *payload* instructions. A CCX payload lowers to
    // many gates; the check placed after the CCX must still run after
    // the whole decomposition, never in the middle of it — so a
    // classical assert on the Toffoli output passes exactly.
    CouplingMap line(5);
    for (Qubit q = 0; q + 1 < 5; ++q)
        line.addEdge(q, q + 1);
    Circuit payload(3, 3, "toffoli");
    payload.x(0).x(1).ccx(0, 1, 2).measureAll();

    AssertionSpec check;
    check.assertion = std::make_shared<ClassicalAssertion>(1);
    check.targets = {2};
    check.insertAt = 3; // after the CCX, payload numbering

    for (const auto injection : {InjectionStrategy::PreLayout,
                                 InjectionStrategy::PostLayout}) {
        PrepareSpec prep;
        prep.assertions = {check};
        prep.coupling = &line;
        prep.injection = injection;
        const CompileContext ctx = compile::prepare(payload, prep);

        StatevectorSimulator sim(5);
        const Result result = sim.run(ctx.circuit, 256);
        ASSERT_NE(ctx.instrumented, nullptr);
        for (const auto &[reg, count] : result.rawCounts())
            EXPECT_TRUE(ctx.instrumented->passed(reg))
                << "register " << reg;
    }
}

TEST(PostLayoutInject, ReuseAncillasBindsOnePool)
{
    const CouplingMap map = gridMap(3, 3);
    Circuit payload(4, 4, "p");
    payload.h(0).cx(0, 1).cx(2, 3).measureAll();

    std::vector<AssertionSpec> specs;
    for (const Qubit t : {Qubit{0}, Qubit{2}}) {
        AssertionSpec spec;
        spec.assertion = std::make_shared<EntanglementAssertion>(2);
        spec.targets = {t, static_cast<Qubit>(t + 1)};
        spec.insertAt = 100;
        specs.push_back(std::move(spec));
    }
    PrepareSpec prep;
    prep.assertions = specs;
    prep.coupling = &map;
    prep.injection = InjectionStrategy::PostLayout;
    prep.instrumentOptions.reuseAncillas = true;

    const CompileContext ctx = compile::prepare(payload, prep);
    // One shared ancilla wire: width payload + 1 before routing.
    ASSERT_NE(ctx.instrumented, nullptr);
    EXPECT_EQ(ctx.instrumented->circuit().numQubits(),
              payload.numQubits() + 1);
    // Both checks decode independently.
    EXPECT_EQ(ctx.instrumented->checks().size(), 2u);
}

} // namespace
} // namespace qra
