/**
 * @file
 * Randomized legacy-parity suite: the pass pipeline must reproduce
 * the handwritten stage chain bit-for-bit — transpile() equals the
 * monolithic decompose/layout/route/direction-fix/optimize sequence,
 * prepare() equals instrument()-then-transpile(), and prepared jobs
 * produce identical counts at any thread/lane count. Plus
 * pass-fencing: assertion barriers still fence the optimizer when it
 * runs as a pass.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "assertions/entanglement_assertion.hh"
#include "assertions/superposition_assertion.hh"
#include "compile/passes.hh"
#include "compile/pipelines.hh"
#include "noise/device_model.hh"
#include "runtime/job_queue.hh"
#include "testutil.hh"
#include "transpile/decomposer.hh"
#include "transpile/direction_fixer.hh"
#include "transpile/optimizer.hh"
#include "transpile/router.hh"
#include "transpile/transpiler.hh"

namespace qra {
namespace {

using namespace qra::runtime;

Circuit
randomCircuit(std::size_t num_qubits, std::size_t num_gates, Rng &rng)
{
    Circuit c(num_qubits, num_qubits, "fuzz");
    for (std::size_t i = 0; i < num_gates; ++i) {
        const Qubit q = static_cast<Qubit>(rng.below(num_qubits));
        const Qubit r = static_cast<Qubit>(
            (q + 1 + rng.below(num_qubits - 1)) % num_qubits);
        switch (rng.below(8)) {
          case 0: c.h(q); break;
          case 1: c.x(q); break;
          case 2: c.s(q); break;
          case 3: c.t(q); break;
          case 4: c.rz(rng.uniform() * 2 * M_PI, q); break;
          case 5: c.cx(q, r); break;
          case 6: c.cz(q, r); break;
          default: c.swap(q, r); break;
        }
    }
    c.measureAll();
    return c;
}

/** The pre-pass monolithic transpiler, stage by stage. */
Circuit
legacyTranspile(const Circuit &circuit, const CouplingMap &map,
                const TranspileOptions &options)
{
    DecomposeOptions dopts;
    dopts.decomposeSwap = false;
    dopts.decomposeCcx = true;
    const Circuit lowered = decompose(circuit, dopts);
    const Layout initial = options.useGreedyLayout
                               ? greedyLayout(lowered, map)
                               : trivialLayout(lowered, map);
    const RoutedCircuit routed = routeCircuit(lowered, map, initial);
    DecomposeOptions swap_opts;
    swap_opts.decomposeSwap = true;
    swap_opts.decomposeCcx = false;
    const Circuit swap_free = decompose(routed.circuit, swap_opts);
    const DirectionFixResult directed = fixDirections(swap_free, map);
    if (!options.optimize)
        return directed.circuit;
    return optimizeCircuit(directed.circuit).circuit;
}

AssertionSpec
entangledCheck(Qubit a, Qubit b, std::size_t at)
{
    AssertionSpec spec;
    spec.assertion = std::make_shared<EntanglementAssertion>(2);
    spec.targets = {a, b};
    spec.insertAt = at;
    return spec;
}

class EquivalenceSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(EquivalenceSweep, PipelineMatchesLegacyStageChain)
{
    Rng rng(1000 + GetParam());
    const Circuit payload = randomCircuit(5, 24, rng);
    const CouplingMap map = DeviceModel::ibmqx4().couplingMap();
    for (const bool greedy : {true, false}) {
        for (const bool optimize : {true, false}) {
            TranspileOptions opts;
            opts.useGreedyLayout = greedy;
            opts.optimize = optimize;
            const TranspileResult result =
                transpile(payload, map, opts);
            const Circuit reference =
                legacyTranspile(payload, map, opts);
            // Bit-for-bit: same ops, operands, params, wiring.
            EXPECT_TRUE(result.circuit == reference)
                << "greedy=" << greedy << " optimize=" << optimize;
        }
    }
}

TEST_P(EquivalenceSweep, PrepareMatchesInstrumentThenTranspile)
{
    Rng rng(2000 + GetParam());
    // 3 payload qubits + 2 check ancillas fill the 5-qubit device.
    const Circuit payload = randomCircuit(3, 16, rng);
    const CouplingMap map = DeviceModel::ibmqx4().couplingMap();
    const std::vector<AssertionSpec> specs = {
        entangledCheck(0, 1, 8), entangledCheck(1, 2, 100)};

    compile::PrepareSpec prep;
    prep.assertions = specs;
    prep.coupling = &map;
    const compile::CompileContext ctx =
        compile::prepare(payload, prep);

    const InstrumentedCircuit inst = instrument(payload, specs);
    const Circuit reference =
        transpile(inst.circuit(), map).circuit;
    EXPECT_TRUE(ctx.circuit == reference);
    ASSERT_NE(ctx.instrumented, nullptr);
    EXPECT_TRUE(ctx.instrumented->circuit() == inst.circuit());
    EXPECT_EQ(ctx.instrumented->checks().size(), specs.size());
}

TEST_P(EquivalenceSweep, CountsIdenticalAtAnyThreadAndLaneCount)
{
    Rng rng(3000 + GetParam());
    const Circuit payload = randomCircuit(4, 16, rng);
    const DeviceModel device = DeviceModel::ibmqx4();

    for (const auto injection :
         {compile::InjectionStrategy::PreLayout,
          compile::InjectionStrategy::PostLayout}) {
        JobSpec spec;
        spec.circuit = payload;
        spec.shots = 512;
        spec.backend = "statevector";
        spec.seed = 11 + GetParam();
        spec.assertions = {entangledCheck(0, 1, 100)};
        spec.coupling = &device.couplingMap();
        spec.injection = injection;

        ExecutionEngine one(EngineOptions{
            .threads = 1, .shardShots = 64, .maxShards = 8});
        ExecutionEngine many(EngineOptions{
            .threads = 4, .shardShots = 64, .maxShards = 8,
            .intraThreads = 2});
        JobQueue queue_one(one);
        JobQueue queue_many(many);
        const Result a = queue_one.submit(spec).get();
        const Result b = queue_many.submit(spec).get();
        EXPECT_EQ(a.rawCounts(), b.rawCounts());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceSweep,
                         ::testing::Range(0, 6));

TEST(PipelineEquivalence, InstrumentWrapperMatchesWeave)
{
    Circuit payload(2, 2);
    payload.h(0).cx(0, 1).measureAll();
    const std::vector<AssertionSpec> specs = {
        entangledCheck(0, 1, 100)};
    for (const bool reuse : {false, true}) {
        InstrumentOptions opts;
        opts.reuseAncillas = reuse;
        const InstrumentedCircuit via_wrapper =
            instrument(payload, specs, opts);
        const InstrumentedCircuit via_detail =
            detail::weaveAssertions(payload, specs, opts);
        EXPECT_TRUE(via_wrapper.circuit() == via_detail.circuit());
        EXPECT_EQ(via_wrapper.assertionMask(),
                  via_detail.assertionMask());
    }
}

TEST(PipelineEquivalence, PostLayoutPreservesSemantics)
{
    // GHZ payload + entanglement check on an 8-qubit line: the check
    // must pass exactly and the filtered payload must match the ideal
    // GHZ distribution under both injection orders.
    CouplingMap line(8);
    for (Qubit q = 0; q + 1 < 8; ++q)
        line.addEdge(q, q + 1);
    Circuit ghz(3, 3, "ghz");
    ghz.h(0).cx(0, 1).cx(1, 2).measureAll();

    AssertionSpec check;
    check.assertion = std::make_shared<EntanglementAssertion>(3);
    check.targets = {0, 1, 2};
    check.insertAt = 3;

    ExecutionEngine engine(EngineOptions{.threads = 2});
    JobQueue queue(engine);
    for (const auto injection :
         {compile::InjectionStrategy::PreLayout,
          compile::InjectionStrategy::PostLayout}) {
        JobSpec spec;
        spec.circuit = ghz;
        spec.shots = 4096;
        spec.backend = "statevector";
        spec.assertions = {check};
        spec.coupling = &line;
        spec.injection = injection;
        const Result result = queue.submit(spec).get();
        const auto inst = queue.instrumented(spec);
        ASSERT_NE(inst, nullptr);
        const AssertionReport report = analyze(*inst, result);
        EXPECT_NEAR(report.anyErrorRate, 0.0, 1e-12);
        double kept = 0.0;
        for (const auto &[key, p] : report.filteredPayload) {
            EXPECT_TRUE(key == 0 || key == 7) << "outcome " << key;
            kept += p;
        }
        EXPECT_NEAR(kept, 1.0, 1e-9);
    }
}

TEST(PipelineEquivalence, BarriersFenceOptimizerThroughPassBoundary)
{
    // A superposition check emits H gates next to the payload's own
    // H; the instrument barriers must keep the optimizer pass from
    // cancelling across the check boundary.
    Circuit payload(1, 1);
    payload.h(0);
    AssertionSpec check;
    check.assertion = std::make_shared<SuperpositionAssertion>();
    check.targets = {0};
    check.insertAt = 1;

    const InstrumentedCircuit inst =
        instrument(payload, {check}); // barriers on by default
    compile::PassManager pm;
    pm.add(std::make_shared<compile::OptimizePass>());
    const compile::CompileContext ctx = pm.run(inst.circuit());
    // Nothing may cancel: the check is fenced on both sides.
    EXPECT_EQ(ctx.circuit.size(), inst.circuit().size());
    EXPECT_EQ(ctx.cancelledGates, 0u);
}

} // namespace
} // namespace qra
