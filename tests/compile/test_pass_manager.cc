/**
 * @file
 * PassManager: pipeline construction, per-pass stats, describe(), and
 * the stability/sensitivity of the pipeline fingerprint.
 */

#include <gtest/gtest.h>

#include "assertions/entanglement_assertion.hh"
#include "common/error.hh"
#include "compile/passes.hh"
#include "compile/pipelines.hh"
#include "noise/device_model.hh"

namespace qra {
namespace {

using compile::CompileContext;
using compile::InjectionStrategy;
using compile::PassManager;
using compile::PrepareSpec;

AssertionSpec
entangledCheck(Qubit a, Qubit b, std::size_t at,
               std::size_t repetitions = 1)
{
    AssertionSpec spec;
    spec.assertion = std::make_shared<EntanglementAssertion>(2);
    spec.targets = {a, b};
    spec.insertAt = at;
    spec.repetitions = repetitions;
    return spec;
}

TEST(PassManager, RunsPassesInOrderWithStats)
{
    const CouplingMap map = DeviceModel::ibmqx4().couplingMap();
    Circuit c(2, 2);
    c.h(0).cx(0, 1).measureAll();

    const PassManager pm = compile::transpilePipeline();
    const CompileContext ctx = pm.run(c, &map);

    ASSERT_EQ(ctx.passStats.size(), pm.size());
    const std::vector<std::string> names = pm.passNames();
    for (std::size_t i = 0; i < names.size(); ++i)
        EXPECT_EQ(ctx.passStats[i].name, names[i]);
    // The route pass annotates its stats entry.
    bool found_route_note = false;
    for (const compile::PassStats &stats : ctx.passStats)
        if (stats.name == "route" &&
            stats.note.find("swaps") != std::string::npos)
            found_route_note = true;
    EXPECT_TRUE(found_route_note);
    EXPECT_TRUE(ctx.initialLayout.has_value());
    EXPECT_TRUE(ctx.finalLayout.has_value());
}

TEST(PassManager, DescribeListsPassesAndFingerprint)
{
    const PassManager pm = compile::transpilePipeline();
    const std::string dump = pm.describe();
    for (const std::string &name : pm.passNames())
        EXPECT_NE(dump.find(name), std::string::npos) << name;
    EXPECT_NE(dump.find("fingerprint:"), std::string::npos);
}

TEST(PassManager, FingerprintIsStable)
{
    TranspileOptions opts;
    EXPECT_EQ(compile::transpilePipeline(opts).fingerprint(),
              compile::transpilePipeline(opts).fingerprint());
}

TEST(PassManager, FingerprintSeesOptions)
{
    TranspileOptions a;
    TranspileOptions b;
    b.useGreedyLayout = false;
    TranspileOptions c;
    c.optimize = false;
    const std::uint64_t fa =
        compile::transpilePipeline(a).fingerprint();
    const std::uint64_t fb =
        compile::transpilePipeline(b).fingerprint();
    const std::uint64_t fc =
        compile::transpilePipeline(c).fingerprint();
    EXPECT_NE(fa, fb);
    EXPECT_NE(fa, fc);
    EXPECT_NE(fb, fc);
}

TEST(PassManager, FingerprintSeesPassOrder)
{
    DecomposeOptions dopts;
    PassManager ab;
    ab.add(std::make_shared<compile::DecomposePass>(dopts));
    ab.add(std::make_shared<compile::OptimizePass>());
    PassManager ba;
    ba.add(std::make_shared<compile::OptimizePass>());
    ba.add(std::make_shared<compile::DecomposePass>(dopts));
    EXPECT_NE(ab.fingerprint(), ba.fingerprint());
}

TEST(PassManager, AssertionFingerprintIsSemantic)
{
    // Two distinct assertion objects with equal semantics fold to the
    // same fingerprint; any semantic field change folds differently.
    const std::uint64_t h = 0x1234;
    const std::uint64_t base =
        compile::foldAssertionSpec(h, entangledCheck(0, 1, 2));
    EXPECT_EQ(base,
              compile::foldAssertionSpec(h, entangledCheck(0, 1, 2)));
    EXPECT_NE(base,
              compile::foldAssertionSpec(h, entangledCheck(1, 0, 2)));
    EXPECT_NE(base,
              compile::foldAssertionSpec(h, entangledCheck(0, 1, 3)));
    EXPECT_NE(base, compile::foldAssertionSpec(
                        h, entangledCheck(0, 1, 2, 3)));
}

TEST(PassManager, PreparePipelineOmitsInertPasses)
{
    // No coupling map: transpile knobs must not appear in the
    // pipeline (or its fingerprint), and neither must instrumentation
    // knobs without assertions.
    PrepareSpec plain;
    PrepareSpec tweaked = plain;
    tweaked.transpileOptions.optimize = false;
    tweaked.instrumentOptions.reuseAncillas = true;
    tweaked.injection = InjectionStrategy::PostLayout;
    EXPECT_EQ(compile::preparePipeline(plain).fingerprint(),
              compile::preparePipeline(tweaked).fingerprint());
    EXPECT_EQ(compile::preparePipeline(plain).size(), 0u);
}

TEST(PassManager, PreparePipelineSeesActiveKnobs)
{
    const CouplingMap map = DeviceModel::ibmqx4().couplingMap();
    PrepareSpec spec;
    spec.coupling = &map;
    spec.assertions = {entangledCheck(0, 1, 2)};

    PrepareSpec reuse = spec;
    reuse.instrumentOptions.reuseAncillas = true;
    PrepareSpec post = spec;
    post.injection = InjectionStrategy::PostLayout;

    const std::uint64_t f0 =
        compile::preparePipeline(spec).fingerprint();
    EXPECT_NE(f0, compile::preparePipeline(reuse).fingerprint());
    EXPECT_NE(f0, compile::preparePipeline(post).fingerprint());
}

TEST(PassManager, PostLayoutWithoutLayoutThrows)
{
    const CouplingMap map = DeviceModel::ibmqx4().couplingMap();
    Circuit c(2, 2);
    c.h(0).cx(0, 1).measureAll();
    PassManager pm;
    pm.add(std::make_shared<compile::PostLayoutInjectPass>(
        std::vector<AssertionSpec>{entangledCheck(0, 1, 2)},
        InstrumentOptions{}));
    EXPECT_THROW(pm.run(c, &map), TranspileError);
    EXPECT_THROW(pm.run(c, nullptr), TranspileError);
}

TEST(PassManager, DeviceTooSmallForAncillasThrows)
{
    // 2-qubit device cannot host payload + ancilla.
    CouplingMap map(2);
    map.addEdge(0, 1);
    Circuit c(2, 2);
    c.h(0).cx(0, 1).measureAll();
    PrepareSpec spec;
    spec.coupling = &map;
    spec.assertions = {entangledCheck(0, 1, 2)};
    spec.injection = InjectionStrategy::PostLayout;
    EXPECT_THROW(compile::prepare(c, spec), TranspileError);
}

} // namespace
} // namespace qra
