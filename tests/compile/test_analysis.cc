/**
 * @file
 * Static circuit analysis: tableau-prefix facts against stabilizer
 * ground truth on random Clifford circuits, the split-aware
 * separability partition against brute-force reachability, the lint
 * warning codes, and auto-assertion generation end to end through the
 * JobQueue (determinism across thread counts, memoisation, graceful
 * degradation on non-Clifford circuits).
 */

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "assertions/entanglement_assertion.hh"
#include "assertions/report.hh"
#include "common/rng.hh"
#include "compile/analysis/analysis.hh"
#include "compile/analysis/auto_assert.hh"
#include "compile/analysis/lint.hh"
#include "library/algorithms.hh"
#include "noise/device_model.hh"
#include "runtime/job_queue.hh"
#include "stabilizer/stabilizer_state.hh"

using namespace qra;
using namespace qra::compile;
using namespace qra::runtime;
using analysis::CircuitAnalysis;
using analysis::GroupFact;
using analysis::GroupState;
using analysis::LintCode;
using analysis::LintWarning;

namespace {

/** Random measurement-free Clifford circuit over @p n qubits. */
Circuit
randomClifford(std::size_t n, std::size_t gates, std::uint64_t seed)
{
    Circuit c(n, n, "random_clifford");
    Rng rng(seed);
    for (std::size_t g = 0; g < gates; ++g) {
        const std::uint64_t pick = rng.below(8);
        const Qubit a = static_cast<Qubit>(rng.below(n));
        Qubit b = static_cast<Qubit>(rng.below(n - 1));
        if (b >= a)
            ++b;
        switch (pick) {
          case 0: c.h(a); break;
          case 1: c.s(a); break;
          case 2: c.x(a); break;
          case 3: c.z(a); break;
          case 4: c.sdg(a); break;
          case 5: c.cx(a, b); break;
          case 6: c.cz(a, b); break;
          default: c.swap(a, b); break;
        }
    }
    return c;
}

/** Replay ops[0..cut) of an all-Clifford circuit on a fresh tableau. */
StabilizerState
groundTruthAt(const Circuit &circuit, std::size_t cut)
{
    StabilizerState state(circuit.numQubits());
    for (std::size_t i = 0; i < cut; ++i)
        state.applyUnitary(circuit.ops()[i]);
    return state;
}

/** Check one fact's claims against the true tableau at its cut. */
void
expectFactHolds(const Circuit &circuit, const GroupFact &fact)
{
    StabilizerState truth = groundTruthAt(circuit, fact.cutIndex);
    SCOPED_TRACE("cut " + std::to_string(fact.cutIndex) + ", " +
                 std::string(analysis::groupStateName(fact.state)));
    switch (fact.state) {
      case GroupState::KnownBasis:
        for (std::size_t j = 0; j < fact.qubits.size(); ++j) {
            const double expected = (fact.basisBits >> j) & 1 ? 1.0
                                                              : 0.0;
            EXPECT_EQ(truth.probabilityOfOne(fact.qubits[j]),
                      expected);
        }
        break;
      case GroupState::UniformSuperposition: {
        ASSERT_EQ(fact.qubits.size(), 1u);
        const Qubit q = fact.qubits[0];
        EXPECT_EQ(truth.probabilityOfOne(q), 0.5);
        truth.applyH(q);
        EXPECT_EQ(truth.probabilityOfOne(q),
                  fact.minusPhase ? 1.0 : 0.0);
        break;
      }
      case GroupState::GhzLike: {
        ASSERT_GE(fact.qubits.size(), 2u);
        // Post-select the first member: every other member must
        // collapse to the complement-pair pattern, and both branches
        // must exist.
        EXPECT_EQ(truth.probabilityOfOne(fact.qubits[0]), 0.5);
        ASSERT_EQ(truth.postSelect(fact.qubits[0], 0), 0.5);
        for (std::size_t j = 1; j < fact.qubits.size(); ++j) {
            const double expected =
                (fact.qubits.size() == 2 && fact.oddParity) ? 1.0
                                                            : 0.0;
            EXPECT_EQ(truth.probabilityOfOne(fact.qubits[j]),
                      expected);
        }
        break;
      }
      case GroupState::Other:
        break;
    }
}

/** Brute-force interaction reachability (transitive 2q closure). */
std::vector<std::uint32_t>
reachabilityGroups(const Circuit &circuit)
{
    std::vector<std::uint32_t> group(circuit.numQubits());
    for (std::size_t q = 0; q < group.size(); ++q)
        group[q] = static_cast<std::uint32_t>(q);
    bool changed = true;
    while (changed) {
        changed = false;
        for (const Operation &op : circuit.ops()) {
            if (!opIsUnitary(op.kind) || op.qubits.size() < 2)
                continue;
            std::uint32_t lowest = group[op.qubits[0]];
            for (Qubit q : op.qubits)
                lowest = std::min(lowest, group[q]);
            for (Qubit q : op.qubits)
                if (group[q] != lowest) {
                    group[q] = lowest;
                    changed = true;
                }
        }
    }
    return group;
}

JobSpec
autoSpec(Circuit circuit, std::size_t shots = 1024)
{
    JobSpec spec;
    spec.circuit = std::move(circuit);
    spec.shots = shots;
    spec.backend = "statevector";
    spec.seed = 11;
    spec.injection = InjectionStrategy::AutoGenerate;
    return spec;
}

} // namespace

// ---------------------------------------------------------------------
// Tableau-prefix facts vs stabilizer ground truth.
// ---------------------------------------------------------------------

TEST(AnalysisFacts, RandomCliffordFactsMatchGroundTruth)
{
    for (std::uint64_t seed = 1; seed <= 24; ++seed) {
        const Circuit c = randomClifford(5, 40, seed);
        const CircuitAnalysis a = analysis::analyzeCircuit(c);
        SCOPED_TRACE("seed " + std::to_string(seed));
        // Measurement-free all-Clifford circuit: every qubit's prefix
        // is the whole program, so the facts tile all qubits at the
        // final cut.
        std::set<Qubit> covered;
        for (const GroupFact &fact : a.facts) {
            EXPECT_EQ(fact.cutIndex, c.size());
            for (Qubit q : fact.qubits)
                EXPECT_TRUE(covered.insert(q).second);
            expectFactHolds(c, fact);
        }
        EXPECT_EQ(covered.size(), c.numQubits());
        EXPECT_EQ(a.cliffordPrefixGates, c.size());
    }
}

TEST(AnalysisFacts, BellGhzAndWShapes)
{
    // Bell pair: one GHZ-like (even) group at the first measurement.
    {
        Circuit bell = library::bellPair();
        bell.addClbits(bell.numQubits());
        bell.measureAll();
        const CircuitAnalysis a = analysis::analyzeCircuit(bell);
        ASSERT_EQ(a.facts.size(), 1u);
        EXPECT_EQ(a.facts[0].state, GroupState::GhzLike);
        EXPECT_FALSE(a.facts[0].oddParity);
        EXPECT_EQ(a.facts[0].qubits, (std::vector<Qubit>{0, 1}));
        EXPECT_EQ(a.facts[0].cutIndex, 2u); // before the measures
    }
    // Psi+ Bell pair: the 2-qubit odd-parity class.
    {
        Circuit psi(2, 2, "psi_plus");
        psi.h(0).x(1).cx(0, 1).measureAll();
        const CircuitAnalysis a = analysis::analyzeCircuit(psi);
        ASSERT_EQ(a.facts.size(), 1u);
        EXPECT_EQ(a.facts[0].state, GroupState::GhzLike);
        EXPECT_TRUE(a.facts[0].oddParity);
    }
    // GHZ(4): one 4-qubit GHZ-like group.
    {
        Circuit ghz = library::ghzState(4);
        ghz.addClbits(ghz.numQubits());
        ghz.measureAll();
        const CircuitAnalysis a = analysis::analyzeCircuit(ghz);
        ASSERT_EQ(a.facts.size(), 1u);
        EXPECT_EQ(a.facts[0].state, GroupState::GhzLike);
        EXPECT_EQ(a.facts[0].qubits.size(), 4u);
        EXPECT_EQ(a.facts[0].prefixGates, 4u); // h + 3 cx
    }
    // W(3) starts x(0) then goes non-Clifford: the tableau gives up
    // early, but the known-basis frontier still proves q0 = 1 until
    // the first unknown-control CNOT touches it.
    {
        Circuit w = library::wState(3);
        w.addClbits(w.numQubits());
        w.measureAll();
        const CircuitAnalysis a = analysis::analyzeCircuit(w);
        bool found = false;
        for (const analysis::FrontierFact &fact : a.frontier)
            if (fact.qubit == 0 && fact.value == 1 &&
                fact.opsTouched >= 1)
                found = true;
        EXPECT_TRUE(found);
    }
}

TEST(AnalysisFacts, UniformSuperpositionPlusAndMinus)
{
    Circuit c(2, 2, "plus_minus");
    c.h(0).x(1).h(1).measureAll();
    const CircuitAnalysis a = analysis::analyzeCircuit(c);
    ASSERT_EQ(a.facts.size(), 2u);
    EXPECT_EQ(a.facts[0].state, GroupState::UniformSuperposition);
    EXPECT_FALSE(a.facts[0].minusPhase);
    EXPECT_EQ(a.facts[1].state, GroupState::UniformSuperposition);
    EXPECT_TRUE(a.facts[1].minusPhase);
}

// ---------------------------------------------------------------------
// Separability partition.
// ---------------------------------------------------------------------

TEST(AnalysisPartition, CancellationAwareSplits)
{
    // CX·CX cancels: the groups never merge.
    {
        Circuit c(2);
        c.cx(0, 1).cx(0, 1);
        const CircuitAnalysis a = analysis::analyzeCircuit(c);
        EXPECT_EQ(a.finalGroups.size(), 2u);
    }
    // CX then CZ on the same pair does not cancel.
    {
        Circuit c(2);
        c.cx(0, 1).cz(0, 1);
        const CircuitAnalysis a = analysis::analyzeCircuit(c);
        EXPECT_EQ(a.finalGroups.size(), 1u);
    }
    // H-conjugated CX run collapsing to a SWAP keeps the wires
    // separable but exchanges their groups.
    {
        Circuit c(3);
        c.cx(0, 1).swap(1, 2);
        const CircuitAnalysis a = analysis::analyzeCircuit(c);
        ASSERT_EQ(a.finalGroups.size(), 2u);
        EXPECT_EQ(a.finalGroups[0], (std::vector<Qubit>{0, 2}));
        EXPECT_EQ(a.finalGroups[1], (std::vector<Qubit>{1}));
    }
    // Three CX gates alternating direction = SWAP: separable, wires
    // exchanged.
    {
        Circuit c(2);
        c.x(0).cx(0, 1).cx(1, 0).cx(0, 1);
        const CircuitAnalysis a = analysis::analyzeCircuit(c);
        EXPECT_EQ(a.finalGroups.size(), 2u);
        // The |1> travelled from wire 0 to wire 1.
        bool q1_is_one = false;
        for (const analysis::GroupFact &fact : a.facts)
            if (fact.qubits == std::vector<Qubit>{1})
                q1_is_one = fact.state == GroupState::KnownBasis &&
                            fact.basisBits == 1;
        EXPECT_TRUE(q1_is_one);
    }
    // Measurement returns the wire to its own group.
    {
        Circuit c(2, 2);
        c.h(0).cx(0, 1).measure(0, 0);
        const CircuitAnalysis a = analysis::analyzeCircuit(c);
        EXPECT_EQ(a.finalGroups.size(), 2u);
    }
}

TEST(AnalysisPartition, RefinesBruteForceReachability)
{
    // On arbitrary circuits (non-Clifford gates, swaps, measures) the
    // split-aware partition must always be a refinement of plain
    // interaction reachability: anything it claims separable at the
    // end really is unreachable or cancelled.
    for (std::uint64_t seed = 100; seed < 112; ++seed) {
        Circuit c = randomClifford(5, 30, seed);
        c.t(static_cast<Qubit>(seed % 5));
        const CircuitAnalysis a = analysis::analyzeCircuit(c);
        const std::vector<std::uint32_t> coarse =
            reachabilityGroups(c);
        SCOPED_TRACE("seed " + std::to_string(seed));
        std::size_t merged = 0;
        for (const auto &group : a.finalGroups) {
            ++merged;
            for (Qubit q : group)
                EXPECT_EQ(coarse[q], coarse[group[0]])
                    << "partition merged wires reachability keeps "
                       "apart";
        }
        EXPECT_EQ(merged, a.finalGroups.size());
    }
    // And without swaps or repeated pairs it matches reachability
    // exactly.
    for (std::uint64_t seed = 200; seed < 206; ++seed) {
        Circuit c(4, 4);
        Rng rng(seed);
        Qubit last_a = 0, last_b = 0;
        for (int g = 0; g < 20; ++g) {
            Qubit a = static_cast<Qubit>(rng.below(4));
            Qubit b = static_cast<Qubit>(rng.below(3));
            if (b >= a)
                ++b;
            if ((a == last_a && b == last_b) ||
                (a == last_b && b == last_a)) {
                c.t(a); // break any would-be cancellation run
            }
            c.cx(a, b);
            last_a = a;
            last_b = b;
        }
        const CircuitAnalysis a = analysis::analyzeCircuit(c);
        const std::vector<std::uint32_t> coarse =
            reachabilityGroups(c);
        std::set<std::uint32_t> coarse_ids(coarse.begin(),
                                           coarse.end());
        EXPECT_EQ(a.finalGroups.size(), coarse_ids.size());
    }
}

// ---------------------------------------------------------------------
// Lint.
// ---------------------------------------------------------------------

TEST(Lint, FlagsEachBrokenPattern)
{
    // L001: gated but never observed.
    {
        Circuit c(2, 2);
        c.h(0).measure(0, 0).x(1);
        const auto warnings = analysis::lintCircuit(
            c, analysis::analyzeCircuit(c));
        ASSERT_EQ(warnings.size(), 1u);
        EXPECT_EQ(warnings[0].code, LintCode::NeverObserved);
        EXPECT_EQ(warnings[0].qubits, (std::vector<Qubit>{1}));
    }
    // L002: gate after the final measurement.
    {
        Circuit c(1, 1);
        c.h(0).measure(0, 0).x(0);
        const auto warnings = analysis::lintCircuit(
            c, analysis::analyzeCircuit(c));
        ASSERT_EQ(warnings.size(), 1u);
        EXPECT_EQ(warnings[0].code, LintCode::GateAfterMeasure);
        EXPECT_EQ(warnings[0].opIndex, 2u);
    }
    // L003: entanglement check over provably separable targets.
    {
        Circuit c(2, 2);
        c.h(0).h(1).measureAll();
        AssertionSpec spec;
        spec.assertion = std::make_shared<EntanglementAssertion>(2);
        spec.targets = {0, 1};
        spec.insertAt = 2;
        const auto warnings = analysis::lintCircuit(
            c, analysis::analyzeCircuit(c), {spec});
        ASSERT_EQ(warnings.size(), 1u);
        EXPECT_EQ(warnings[0].code, LintCode::VacuousEntanglement);
        // The same spec on a real Bell pair is clean.
        Circuit bell(2, 2);
        bell.h(0).cx(0, 1).measureAll();
        EXPECT_TRUE(analysis::lintCircuit(
                        bell, analysis::analyzeCircuit(bell), {spec})
                        .empty());
    }
    // L004: measured qubit reused in a 2q gate without reset.
    {
        Circuit c(2, 2);
        c.h(0).measure(0, 0).cx(0, 1).measure(1, 1);
        const auto warnings = analysis::lintCircuit(
            c, analysis::analyzeCircuit(c));
        ASSERT_EQ(warnings.size(), 1u);
        EXPECT_EQ(warnings[0].code, LintCode::ReuseWithoutReset);
        // With a reset in between the reuse is legitimate.
        Circuit ok(2, 2);
        ok.h(0).measure(0, 0).reset(0).cx(0, 1).measure(1, 1);
        EXPECT_TRUE(
            analysis::lintCircuit(ok, analysis::analyzeCircuit(ok))
                .empty());
    }
    // L005: more qubits than the device has.
    {
        const CouplingMap map = DeviceModel::ibmqx4().couplingMap();
        Circuit c(6, 6);
        c.h(0).cx(4, 5).measureAll();
        const auto warnings = analysis::lintCircuit(
            c, analysis::analyzeCircuit(c), {}, &map);
        ASSERT_EQ(warnings.size(), 1u);
        EXPECT_EQ(warnings[0].code, LintCode::Unroutable);
    }
    // A well-formed Bell circuit on the device is completely clean.
    {
        const CouplingMap map = DeviceModel::ibmqx4().couplingMap();
        Circuit bell(2, 2);
        bell.h(0).cx(0, 1).measureAll();
        EXPECT_TRUE(analysis::lintCircuit(
                        bell, analysis::analyzeCircuit(bell), {}, &map)
                        .empty());
    }
}

// ---------------------------------------------------------------------
// Auto-assertion generation.
// ---------------------------------------------------------------------

TEST(AutoAssert, GhzMatchesHandAnnotation)
{
    Circuit ghz = library::ghzState(3);
    ghz.addClbits(ghz.numQubits());
    ghz.measureAll();
    const auto specs = generateAssertions(
        analysis::analyzeCircuit(ghz), AutoAssertOptions{});
    ASSERT_EQ(specs.size(), 1u);
    EXPECT_EQ(specs[0].assertion->kind(),
              AssertionKind::Entanglement);
    EXPECT_EQ(specs[0].targets, (std::vector<Qubit>{0, 1, 2}));
    EXPECT_EQ(specs[0].insertAt, 3u);
    EXPECT_EQ(specs[0].label, "auto:entangled");

    // The woven circuit is bit-identical to the hand-annotated one.
    AssertionSpec hand;
    hand.assertion = std::make_shared<EntanglementAssertion>(3);
    hand.targets = {0, 1, 2};
    hand.insertAt = 3;
    const auto auto_inst =
        detail::weaveAssertions(ghz, specs, InstrumentOptions{});
    const auto hand_inst =
        detail::weaveAssertions(ghz, {hand}, InstrumentOptions{});
    EXPECT_EQ(auto_inst.circuit().hash(), hand_inst.circuit().hash());
}

TEST(AutoAssert, BudgetAndDepthFilters)
{
    Circuit ghz = library::ghzState(3);
    ghz.addClbits(ghz.numQubits());
    ghz.measureAll();
    AutoAssertOptions opts;
    opts.minPrefixDepth = 10; // deeper than the whole prefix
    EXPECT_TRUE(
        generateAssertions(analysis::analyzeCircuit(ghz), opts)
            .empty());

    // maxChecks caps the selection at the deepest candidates.
    Circuit many(4, 4);
    many.x(0).x(1).x(2).x(3).measureAll();
    AutoAssertOptions capped;
    capped.maxChecks = 2;
    const auto specs = generateAssertions(
        analysis::analyzeCircuit(many), capped);
    EXPECT_EQ(specs.size(), 2u);
}

TEST(AutoAssert, NonCliffordFromGateZeroInjectsNothing)
{
    // Graceful degradation: nothing provable, nothing injected.
    Circuit c(2, 2);
    c.ry(0.3, 0).ry(0.7, 1).cx(0, 1).measureAll();
    const auto specs = generateAssertions(
        analysis::analyzeCircuit(c), AutoAssertOptions{});
    EXPECT_TRUE(specs.empty());

    ExecutionEngine engine(EngineOptions{.threads = 2});
    runtime::JobQueue queue(engine);
    const JobSpec spec = autoSpec(c);
    const auto inst = queue.instrumented(spec);
    ASSERT_NE(inst, nullptr);
    EXPECT_TRUE(inst->checks().empty());
    const Result result = queue.submit(spec).get();
    EXPECT_EQ(result.shots(), 1024u);
}

TEST(AutoAssert, IdealBackendPassesEveryGeneratedCheck)
{
    // Soundness end to end: every auto-derived check must hold on a
    // noiseless backend, for library circuits and random Cliffords.
    std::vector<Circuit> circuits;
    {
        Circuit bell = library::bellPair();
        bell.addClbits(bell.numQubits());
        bell.measureAll();
        circuits.push_back(bell);
    }
    {
        Circuit ghz = library::ghzState(4);
        ghz.addClbits(ghz.numQubits());
        ghz.measureAll();
        circuits.push_back(ghz);
    }
    {
        Circuit w = library::wState(3);
        w.addClbits(w.numQubits());
        w.measureAll();
        circuits.push_back(w);
    }
    for (std::uint64_t seed = 31; seed < 37; ++seed) {
        Circuit c = randomClifford(4, 24, seed);
        c.measureAll();
        circuits.push_back(c);
    }

    ExecutionEngine engine(EngineOptions{.threads = 2});
    runtime::JobQueue queue(engine);
    std::size_t total_checks = 0;
    for (const Circuit &c : circuits) {
        SCOPED_TRACE(c.name());
        const JobSpec spec = autoSpec(c, 256);
        const auto inst = queue.instrumented(spec);
        ASSERT_NE(inst, nullptr);
        total_checks += inst->checks().size();
        const Result result = queue.submit(spec).get();
        const AssertionReport report = analyze(*inst, result);
        EXPECT_EQ(report.anyErrorRate, 0.0);
        EXPECT_EQ(report.keptFraction, 1.0);
    }
    EXPECT_GT(total_checks, 0u);
}

TEST(AutoAssert, BitIdenticalCountsAcrossThreadCounts)
{
    Circuit ghz = library::ghzState(3);
    ghz.addClbits(ghz.numQubits());
    ghz.measureAll();

    ExecutionEngine engine1(EngineOptions{.threads = 1});
    runtime::JobQueue queue1(engine1);
    ExecutionEngine engine4(EngineOptions{.threads = 4});
    runtime::JobQueue queue4(engine4);

    const JobSpec spec = autoSpec(ghz, 2048);
    const Result r1 = queue1.submit(spec).get();
    const Result r4 = queue4.submit(spec).get();
    EXPECT_EQ(r1.counts(), r4.counts());
}

TEST(AutoAssert, AnalysisMemoisedInPrepareCache)
{
    Circuit ghz = library::ghzState(3);
    ghz.addClbits(ghz.numQubits());
    ghz.measureAll();
    ExecutionEngine engine(EngineOptions{.threads = 2});
    runtime::JobQueue queue(engine);

    const JobSpec spec = autoSpec(ghz);
    const auto first = queue.analysis(spec);
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(first->cliffordPrefixGates, 3u);
    // Same spec: the cached Prepared entry (and its analysis) is
    // shared, not recomputed.
    EXPECT_EQ(queue.analysis(spec).get(), first.get());

    // A different budget is a different pipeline fingerprint.
    JobSpec tighter = spec;
    tighter.autoAssert.maxChecks = 1;
    EXPECT_EQ(queue.cacheMisses(), 0u); // introspection counts nothing
    queue.submit(spec).get();
    queue.submit(tighter).get();
    EXPECT_EQ(queue.cacheMisses(), 1u); // spec was already prepared
    queue.submit(tighter).get();
    EXPECT_EQ(queue.cacheHits(), 2u);

    // No analysis on pipelines without the analyze stage.
    JobSpec plain = spec;
    plain.injection = InjectionStrategy::PreLayout;
    EXPECT_EQ(queue.analysis(plain), nullptr);
}

TEST(AutoAssert, FrontierClassicalCheckOnWState)
{
    // W(3): non-Clifford from gate 1, but x(0) proves q0 = 1 on the
    // known-basis frontier; the generated check must be classical on
    // qubit 0 and the woven circuit must still behave.
    Circuit w = library::wState(3);
    w.addClbits(w.numQubits());
    w.measureAll();
    const auto specs = generateAssertions(
        analysis::analyzeCircuit(w), AutoAssertOptions{});
    ASSERT_FALSE(specs.empty());
    bool classical_on_q0 = false;
    for (const AssertionSpec &spec : specs)
        classical_on_q0 =
            classical_on_q0 ||
            (spec.assertion->kind() == AssertionKind::Classical &&
             spec.targets == std::vector<Qubit>{0});
    EXPECT_TRUE(classical_on_q0);
}
