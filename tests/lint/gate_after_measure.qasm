// QRA-L002: the final x on q[0] lands after the qubit's last
// measurement — dead code nothing downstream can observe.
OPENQASM 2.0;
qreg q[1];
creg c[1];
h q[0];
measure q[0] -> c[0];
x q[0];
