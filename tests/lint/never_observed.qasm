// QRA-L001: q[1] is gated but never measured, asserted, or
// post-selected — everything done to it is unobservable.
OPENQASM 2.0;
qreg q[2];
creg c[2];
h q[0];
x q[1];
measure q[0] -> c[0];
