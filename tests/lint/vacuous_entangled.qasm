// QRA-L003: the entanglement assertion targets two qubits the
// analyzer proves are in a product state (no 2q gate ever joins
// them), so the parity check is vacuous.
OPENQASM 2.0;
qreg q[2];
creg c[2];
h q[0];
h q[1];
// qra:assert-entangled q[0], q[1]
measure q[0] -> c[0];
measure q[1] -> c[1];
