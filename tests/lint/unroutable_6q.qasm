// QRA-L005 (with --device ibmqx4): six qubits cannot be laid out on
// the five-qubit ibmqx4 device under any mapping.
OPENQASM 2.0;
qreg q[6];
creg c[6];
h q[0];
cx q[4],q[5];
measure q[0] -> c[0];
measure q[1] -> c[1];
measure q[2] -> c[2];
measure q[3] -> c[3];
measure q[4] -> c[4];
measure q[5] -> c[5];
