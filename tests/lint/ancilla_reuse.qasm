// QRA-L004: q[0] is measured, then reused as a CNOT control with no
// intervening reset — the collapsed outcome leaks into q[1].
OPENQASM 2.0;
qreg q[2];
creg c[2];
h q[0];
measure q[0] -> c[0];
cx q[0],q[1];
measure q[1] -> c[1];
