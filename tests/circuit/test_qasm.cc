/** @file Tests for OpenQASM 2.0 export and import. */

#include <gtest/gtest.h>

#include "circuit/qasm.hh"
#include "common/error.hh"

namespace qra {
namespace {

TEST(QasmTest, ExportHeaderAndRegisters)
{
    Circuit c(3, 2);
    const std::string qasm = toQasm(c);
    EXPECT_NE(qasm.find("OPENQASM 2.0;"), std::string::npos);
    EXPECT_NE(qasm.find("qreg q[3];"), std::string::npos);
    EXPECT_NE(qasm.find("creg c[2];"), std::string::npos);
}

TEST(QasmTest, ExportGatesAndMeasure)
{
    Circuit c(2, 2);
    c.h(0).cx(0, 1).measure(1, 0);
    const std::string qasm = toQasm(c);
    EXPECT_NE(qasm.find("h q[0];"), std::string::npos);
    EXPECT_NE(qasm.find("cx q[0], q[1];"), std::string::npos);
    EXPECT_NE(qasm.find("measure q[1] -> c[0];"), std::string::npos);
}

TEST(QasmTest, ExportParameters)
{
    Circuit c(1);
    c.rx(0.5, 0);
    EXPECT_NE(toQasm(c).find("rx(0.5) q[0];"), std::string::npos);
}

TEST(QasmTest, RoundTripSimple)
{
    Circuit c(2, 2);
    c.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
    const Circuit back = fromQasm(toQasm(c));
    EXPECT_EQ(back.numQubits(), 2u);
    EXPECT_EQ(back.numClbits(), 2u);
    ASSERT_EQ(back.size(), c.size());
    for (std::size_t i = 0; i < c.size(); ++i)
        EXPECT_TRUE(back.ops()[i] == c.ops()[i]) << i;
}

TEST(QasmTest, RoundTripAllGateKinds)
{
    Circuit c(3, 1);
    c.i(0).x(0).y(1).z(2).h(0).s(1).sdg(2).t(0).tdg(1).sx(2);
    c.rx(0.1, 0).ry(0.2, 1).rz(0.3, 2).p(0.4, 0).u(0.5, 0.6, 0.7, 1);
    c.cx(0, 1).cy(1, 2).cz(0, 2).swap(0, 1).ccx(0, 1, 2);
    c.reset(0).barrier().measure(2, 0);

    const Circuit back = fromQasm(toQasm(c));
    ASSERT_EQ(back.size(), c.size());
    for (std::size_t i = 0; i < c.size(); ++i)
        EXPECT_TRUE(back.ops()[i] == c.ops()[i])
            << i << ": " << c.ops()[i].str();
}

TEST(QasmTest, RoundTripPostSelectDirective)
{
    Circuit c(2, 1);
    c.h(0).postSelect(0, 1).measure(1, 0);
    const Circuit back = fromQasm(toQasm(c));
    ASSERT_EQ(back.size(), 3u);
    EXPECT_EQ(back.ops()[1].kind, OpKind::PostSelect);
    EXPECT_EQ(back.ops()[1].postselectValue, 1);
}

TEST(QasmTest, ImportPiExpressions)
{
    const std::string text = R"(OPENQASM 2.0;
qreg q[1];
rx(pi/2) q[0];
rz(-pi) q[0];
p(2*pi/4) q[0];
ry(pi/2 + pi/4) q[0];
)";
    const Circuit c = fromQasm(text);
    ASSERT_EQ(c.size(), 4u);
    EXPECT_NEAR(c.ops()[0].params[0], M_PI / 2, 1e-12);
    EXPECT_NEAR(c.ops()[1].params[0], -M_PI, 1e-12);
    EXPECT_NEAR(c.ops()[2].params[0], M_PI / 2, 1e-12);
    EXPECT_NEAR(c.ops()[3].params[0], 0.75 * M_PI, 1e-12);
}

TEST(QasmTest, ImportParenthesisedExpression)
{
    const std::string text =
        "OPENQASM 2.0;\nqreg q[1];\nrx((1+2)*0.5) q[0];\n";
    const Circuit c = fromQasm(text);
    EXPECT_NEAR(c.ops()[0].params[0], 1.5, 1e-12);
}

TEST(QasmTest, ImportU2U3Aliases)
{
    const std::string text = R"(OPENQASM 2.0;
qreg q[1];
u3(0.1, 0.2, 0.3) q[0];
u2(0.4, 0.5) q[0];
u1(0.6) q[0];
)";
    const Circuit c = fromQasm(text);
    ASSERT_EQ(c.size(), 3u);
    EXPECT_EQ(c.ops()[0].kind, OpKind::U);
    EXPECT_EQ(c.ops()[1].kind, OpKind::U);
    EXPECT_NEAR(c.ops()[1].params[0], M_PI / 2, 1e-12);
    EXPECT_EQ(c.ops()[2].kind, OpKind::P);
}

TEST(QasmTest, ImportIgnoresComments)
{
    const std::string text = R"(OPENQASM 2.0;
// a comment line
qreg q[1]; // trailing comment
h q[0];
)";
    const Circuit c = fromQasm(text);
    EXPECT_EQ(c.size(), 1u);
}

TEST(QasmTest, ImportErrors)
{
    EXPECT_THROW(fromQasm("OPENQASM 2.0;\nh q[0];\n"), QasmError);
    EXPECT_THROW(fromQasm("OPENQASM 2.0;\nqreg q[1];\nfrobnicate "
                          "q[0];\n"),
                 QasmError);
    EXPECT_THROW(
        fromQasm("OPENQASM 2.0;\nqreg q[1];\nqreg q[2];\nh q[0];\n"),
        QasmError);
    EXPECT_THROW(
        fromQasm("OPENQASM 2.0;\nqreg q[1];\nrx(1/0) q[0];\n"),
        QasmError);
    EXPECT_THROW(
        fromQasm("OPENQASM 2.0;\nqreg q[1];\nmeasure q[0];\n"),
        QasmError);
}

TEST(QasmTest, ImportDivisionByZeroExpression)
{
    EXPECT_THROW(
        fromQasm("OPENQASM 2.0;\nqreg q[1];\nrx(pi/(1-1)) q[0];\n"),
        QasmError);
}

TEST(QasmTest, BarrierSubsetRoundTrip)
{
    Circuit c(3);
    c.barrier({0, 2});
    const Circuit back = fromQasm(toQasm(c));
    ASSERT_EQ(back.size(), 1u);
    EXPECT_EQ(back.ops()[0].kind, OpKind::Barrier);
    EXPECT_EQ(back.ops()[0].qubits, (std::vector<Qubit>{0, 2}));
}

} // namespace
} // namespace qra
