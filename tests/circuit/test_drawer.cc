/** @file Tests for the ASCII circuit drawer. */

#include <gtest/gtest.h>

#include "circuit/circuit.hh"
#include "circuit/drawer.hh"

namespace qra {
namespace {

TEST(DrawerTest, SingleQubitGateAppears)
{
    Circuit c(1, 0, "one");
    c.h(0);
    const std::string art = c.draw();
    EXPECT_NE(art.find("one"), std::string::npos);
    EXPECT_NE(art.find("q0:"), std::string::npos);
    EXPECT_NE(art.find("H"), std::string::npos);
}

TEST(DrawerTest, CnotShowsControlAndTarget)
{
    Circuit c(2);
    c.cx(0, 1);
    const std::string art = c.draw();
    EXPECT_NE(art.find("*"), std::string::npos);
    EXPECT_NE(art.find("X"), std::string::npos);
    EXPECT_NE(art.find("|"), std::string::npos);
}

TEST(DrawerTest, MeasureUsesM)
{
    Circuit c(1, 1);
    c.measure(0, 0);
    EXPECT_NE(c.draw().find("M"), std::string::npos);
}

TEST(DrawerTest, RotationsShowAngle)
{
    Circuit c(1);
    c.rx(1.57, 0);
    EXPECT_NE(c.draw().find("rx(1.57)"), std::string::npos);
}

TEST(DrawerTest, PostSelectShowsValue)
{
    Circuit c(1);
    c.postSelect(0, 1);
    EXPECT_NE(c.draw().find("P1"), std::string::npos);
}

TEST(DrawerTest, EveryQubitGetsAWire)
{
    Circuit c(4);
    c.h(2);
    const std::string art = c.draw();
    for (int q = 0; q < 4; ++q) {
        const std::string label = "q" + std::to_string(q) + ":";
        EXPECT_NE(art.find(label), std::string::npos) << label;
    }
}

TEST(DrawerTest, ConnectorSpansNonAdjacentQubits)
{
    Circuit c(3);
    c.cx(0, 2);
    const std::string art = c.draw();
    // Middle wire must carry the connector.
    EXPECT_NE(art.find("|"), std::string::npos);
}

TEST(DrawerTest, ParallelGatesShareColumn)
{
    Circuit parallel(2);
    parallel.h(0).h(1);
    Circuit serial(2);
    serial.h(0).h(0);

    // Parallel circuit is drawn narrower than the serial one
    // (compare wire lines only; the title line has a fixed width).
    const auto width = [](const std::string &art) {
        std::size_t longest = 0, line_start = 0;
        bool first_line = true;
        for (std::size_t i = 0; i <= art.size(); ++i) {
            if (i == art.size() || art[i] == '\n') {
                if (!first_line)
                    longest = std::max(longest, i - line_start);
                first_line = false;
                line_start = i + 1;
            }
        }
        return longest;
    };
    EXPECT_LT(width(parallel.draw()), width(serial.draw()));
}

} // namespace
} // namespace qra
