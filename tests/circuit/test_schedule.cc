/** @file Tests for moment scheduling. */

#include <gtest/gtest.h>

#include "circuit/schedule.hh"

namespace qra {
namespace {

TEST(ScheduleTest, ParallelGatesShareMoment)
{
    Circuit c(3);
    c.h(0).h(1).h(2);
    const auto moments = computeMoments(c);
    ASSERT_EQ(moments.size(), 1u);
    EXPECT_EQ(moments[0].opIndices.size(), 3u);
}

TEST(ScheduleTest, DependentGatesSerialize)
{
    Circuit c(2);
    c.h(0).cx(0, 1).h(1);
    const auto moments = computeMoments(c);
    ASSERT_EQ(moments.size(), 3u);
    EXPECT_EQ(moments[0].opIndices, (std::vector<std::size_t>{0}));
    EXPECT_EQ(moments[1].opIndices, (std::vector<std::size_t>{1}));
    EXPECT_EQ(moments[2].opIndices, (std::vector<std::size_t>{2}));
}

TEST(ScheduleTest, IndependentChainsPack)
{
    Circuit c(4);
    c.h(0).x(0).h(2).x(2).y(1);
    const auto moments = computeMoments(c);
    ASSERT_EQ(moments.size(), 2u);
    // Moment 0: h(0), h(2), y(1); moment 1: x(0), x(2).
    EXPECT_EQ(moments[0].opIndices.size(), 3u);
    EXPECT_EQ(moments[1].opIndices.size(), 2u);
}

TEST(ScheduleTest, BarrierForcesNewMoment)
{
    Circuit c(2);
    c.h(0).barrier().h(1);
    const auto moments = computeMoments(c);
    // Without the barrier h(1) would share moment 0.
    ASSERT_EQ(moments.size(), 2u);
    EXPECT_EQ(moments[0].opIndices, (std::vector<std::size_t>{0}));
    EXPECT_EQ(moments[1].opIndices, (std::vector<std::size_t>{2}));
}

TEST(ScheduleTest, PartialBarrierOnlyFencesItsQubits)
{
    Circuit c(3);
    c.h(0).barrier({0, 1}).h(1).h(2);
    const auto moments = computeMoments(c);
    ASSERT_EQ(moments.size(), 2u);
    // h(2) is not fenced: it lands in moment 0.
    EXPECT_EQ(moments[0].opIndices.size(), 2u); // h(0), h(2)
    EXPECT_EQ(moments[1].opIndices.size(), 1u); // h(1)
}

TEST(ScheduleTest, TimedMomentsAccumulate)
{
    Circuit c(2);
    c.h(0).cx(0, 1).h(0);
    auto duration = [](const Operation &op) {
        return op.kind == OpKind::CX ? 300.0 : 80.0;
    };
    const auto timed = computeTimedMoments(c, duration);
    ASSERT_EQ(timed.size(), 3u);
    EXPECT_DOUBLE_EQ(timed[0].startNs, 0.0);
    EXPECT_DOUBLE_EQ(timed[0].durationNs, 80.0);
    EXPECT_DOUBLE_EQ(timed[1].startNs, 80.0);
    EXPECT_DOUBLE_EQ(timed[1].durationNs, 300.0);
    EXPECT_DOUBLE_EQ(timed[2].startNs, 380.0);
    EXPECT_DOUBLE_EQ(scheduleDuration(timed), 460.0);
}

TEST(ScheduleTest, MomentDurationIsSlowestMember)
{
    Circuit c(3);
    c.h(0).cx(1, 2); // same moment
    auto duration = [](const Operation &op) {
        return op.kind == OpKind::CX ? 300.0 : 80.0;
    };
    const auto timed = computeTimedMoments(c, duration);
    ASSERT_EQ(timed.size(), 1u);
    EXPECT_DOUBLE_EQ(timed[0].durationNs, 300.0);
}

TEST(ScheduleTest, EmptyCircuit)
{
    Circuit c(1);
    EXPECT_TRUE(computeMoments(c).empty());
    EXPECT_DOUBLE_EQ(
        scheduleDuration(computeTimedMoments(
            c, [](const Operation &) { return 1.0; })),
        0.0);
}

} // namespace
} // namespace qra
