/** @file Tests for the Circuit IR and builder. */

#include <gtest/gtest.h>

#include "circuit/circuit.hh"
#include "common/error.hh"
#include "math/gates.hh"

namespace qra {
namespace {

TEST(CircuitTest, ConstructionBasics)
{
    Circuit c(3, 2, "demo");
    EXPECT_EQ(c.numQubits(), 3u);
    EXPECT_EQ(c.numClbits(), 2u);
    EXPECT_EQ(c.name(), "demo");
    EXPECT_TRUE(c.empty());
}

TEST(CircuitTest, ZeroQubitsThrows)
{
    EXPECT_THROW(Circuit(0), CircuitError);
}

TEST(CircuitTest, TooManyQubitsThrows)
{
    // The IR allows wide circuits (stabilizer backend) but guards
    // absurd sizes.
    EXPECT_NO_THROW(Circuit(100));
    EXPECT_THROW(Circuit(5000), CircuitError);
}

TEST(CircuitTest, BuilderChainsAndRecords)
{
    Circuit c(2, 2);
    c.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
    ASSERT_EQ(c.size(), 4u);
    EXPECT_EQ(c.ops()[0].kind, OpKind::H);
    EXPECT_EQ(c.ops()[1].kind, OpKind::CX);
    EXPECT_EQ(c.ops()[1].qubits, (std::vector<Qubit>{0, 1}));
    EXPECT_EQ(c.ops()[2].kind, OpKind::Measure);
    EXPECT_EQ(*c.ops()[2].clbit, 0u);
}

TEST(CircuitTest, QubitOutOfRangeThrows)
{
    Circuit c(2);
    EXPECT_THROW(c.h(2), CircuitError);
    EXPECT_THROW(c.cx(0, 5), CircuitError);
}

TEST(CircuitTest, DuplicateOperandThrows)
{
    Circuit c(2);
    EXPECT_THROW(c.cx(1, 1), CircuitError);
    Circuit c3(3);
    EXPECT_THROW(c3.ccx(0, 2, 2), CircuitError);
}

TEST(CircuitTest, ClbitOutOfRangeThrows)
{
    Circuit c(2, 1);
    EXPECT_THROW(c.measure(0, 1), CircuitError);
}

TEST(CircuitTest, MeasureWithoutClbitThrows)
{
    Circuit c(1, 1);
    Operation op{.kind = OpKind::Measure, .qubits = {0}};
    EXPECT_THROW(c.append(op), CircuitError);
}

TEST(CircuitTest, ParamCountValidated)
{
    Circuit c(1);
    Operation rx{.kind = OpKind::RX, .qubits = {0}, .params = {}};
    EXPECT_THROW(c.append(rx), CircuitError);
    Operation u{.kind = OpKind::U, .qubits = {0}, .params = {1.0}};
    EXPECT_THROW(c.append(u), CircuitError);
}

TEST(CircuitTest, PostSelectValueValidated)
{
    Circuit c(1);
    Operation ps{.kind = OpKind::PostSelect, .qubits = {0}};
    ps.postselectValue = 2;
    EXPECT_THROW(c.append(ps), CircuitError);
    EXPECT_NO_THROW(c.postSelect(0, 1));
}

TEST(CircuitTest, MeasureAllRequiresClbits)
{
    Circuit narrow(3, 2);
    EXPECT_THROW(narrow.measureAll(), CircuitError);
    Circuit wide(3, 3);
    wide.measureAll();
    EXPECT_EQ(wide.size(), 3u);
}

TEST(CircuitTest, DepthSerialVsParallel)
{
    Circuit serial(1);
    serial.h(0).h(0).h(0);
    EXPECT_EQ(serial.depth(), 3u);

    Circuit parallel(3);
    parallel.h(0).h(1).h(2);
    EXPECT_EQ(parallel.depth(), 1u);

    Circuit mixed(2);
    mixed.h(0).cx(0, 1).h(1);
    EXPECT_EQ(mixed.depth(), 3u);
}

TEST(CircuitTest, BarrierAddsNoDepth)
{
    Circuit c(2);
    c.h(0).barrier().h(1);
    EXPECT_EQ(c.depth(), 1u);
}

TEST(CircuitTest, BarrierSynchronises)
{
    // h(0); barrier; h(0) stays serial on the same wire.
    Circuit c(2);
    c.h(0).barrier().x(0);
    EXPECT_EQ(c.depth(), 2u);
}

TEST(CircuitTest, CountOps)
{
    Circuit c(2, 2);
    c.h(0).h(1).cx(0, 1).measure(0, 0);
    const auto counts = c.countOps();
    EXPECT_EQ(counts.at("h"), 2u);
    EXPECT_EQ(counts.at("cx"), 1u);
    EXPECT_EQ(counts.at("measure"), 1u);
}

TEST(CircuitTest, TwoQubitGateCount)
{
    Circuit c(3);
    c.h(0).cx(0, 1).cz(1, 2).swap(0, 2).t(1);
    EXPECT_EQ(c.twoQubitGateCount(), 3u);
}

TEST(CircuitTest, HasMeasurements)
{
    Circuit c(1, 1);
    EXPECT_FALSE(c.hasMeasurements());
    c.measure(0, 0);
    EXPECT_TRUE(c.hasMeasurements());
}

TEST(CircuitTest, ComposeWithMapping)
{
    Circuit inner(2, 1);
    inner.h(0).cx(0, 1).measure(1, 0);

    Circuit outer(4, 3);
    outer.compose(inner, {2, 3}, {1});
    ASSERT_EQ(outer.size(), 3u);
    EXPECT_EQ(outer.ops()[0].qubits[0], 2u);
    EXPECT_EQ(outer.ops()[1].qubits, (std::vector<Qubit>{2, 3}));
    EXPECT_EQ(*outer.ops()[2].clbit, 1u);
}

TEST(CircuitTest, ComposeMapSizeMismatchThrows)
{
    Circuit inner(2);
    inner.h(0);
    Circuit outer(4);
    EXPECT_THROW(outer.compose(inner, {0}), CircuitError);
}

TEST(CircuitTest, ComposeMeasurementNeedsClbitMap)
{
    Circuit inner(1, 1);
    inner.measure(0, 0);
    Circuit outer(2, 2);
    EXPECT_THROW(outer.compose(inner, {0}), CircuitError);
}

TEST(CircuitTest, InverseReversesAndInverts)
{
    Circuit c(2);
    c.h(0).s(0).cx(0, 1).t(1);
    Circuit inv = c.inverse();
    ASSERT_EQ(inv.size(), 4u);
    EXPECT_EQ(inv.ops()[0].kind, OpKind::Tdg);
    EXPECT_EQ(inv.ops()[1].kind, OpKind::CX);
    EXPECT_EQ(inv.ops()[2].kind, OpKind::Sdg);
    EXPECT_EQ(inv.ops()[3].kind, OpKind::H);
}

TEST(CircuitTest, InverseOfParameterizedGates)
{
    Circuit c(1);
    c.rx(0.3, 0).u(0.1, 0.2, 0.3, 0);
    Circuit inv = c.inverse();
    EXPECT_EQ(inv.ops()[0].kind, OpKind::U);
    EXPECT_DOUBLE_EQ(inv.ops()[0].params[0], -0.1);
    EXPECT_DOUBLE_EQ(inv.ops()[0].params[1], -0.3);
    EXPECT_DOUBLE_EQ(inv.ops()[0].params[2], -0.2);
    EXPECT_EQ(inv.ops()[1].kind, OpKind::RX);
    EXPECT_DOUBLE_EQ(inv.ops()[1].params[0], -0.3);
}

TEST(CircuitTest, InverseOfMeasureThrows)
{
    Circuit c(1, 1);
    c.measure(0, 0);
    EXPECT_THROW(c.inverse(), CircuitError);
}

TEST(CircuitTest, UnitaryOnlyStripsNonUnitary)
{
    Circuit c(2, 2);
    c.h(0).measure(0, 0).barrier().cx(0, 1).postSelect(1, 0);
    Circuit u = c.unitaryOnly();
    EXPECT_EQ(u.size(), 2u);
    EXPECT_EQ(u.ops()[0].kind, OpKind::H);
    EXPECT_EQ(u.ops()[1].kind, OpKind::CX);
}

TEST(CircuitTest, AddQubitsAndClbits)
{
    Circuit c(2, 1);
    const Qubit first_new = c.addQubits(2);
    EXPECT_EQ(first_new, 2u);
    EXPECT_EQ(c.numQubits(), 4u);
    c.h(3); // now valid
    const Clbit new_clbit = c.addClbits(1);
    EXPECT_EQ(new_clbit, 1u);
    c.measure(3, new_clbit);
}

TEST(CircuitTest, InsertAtPosition)
{
    Circuit c(1);
    c.h(0).h(0);
    c.insert(1, Operation{.kind = OpKind::X, .qubits = {0}});
    ASSERT_EQ(c.size(), 3u);
    EXPECT_EQ(c.ops()[1].kind, OpKind::X);
    EXPECT_THROW(
        c.insert(99, Operation{.kind = OpKind::X, .qubits = {0}}),
        CircuitError);
}

TEST(CircuitTest, OperationMatrixMatchesGateLibrary)
{
    Operation h{.kind = OpKind::H, .qubits = {0}};
    EXPECT_TRUE(h.matrix().approxEqual(gates::h()));
    Operation cx{.kind = OpKind::CX, .qubits = {0, 1}};
    EXPECT_TRUE(cx.matrix().approxEqual(gates::cx()));
    Operation meas{.kind = OpKind::Measure, .qubits = {0}, .clbit = 0};
    EXPECT_THROW(meas.matrix(), CircuitError);
}

TEST(CircuitTest, OperationStr)
{
    Operation cx{.kind = OpKind::CX, .qubits = {1, 0}};
    EXPECT_EQ(cx.str(), "cx q1, q0");
    Operation m{.kind = OpKind::Measure, .qubits = {2}, .clbit = 1};
    EXPECT_EQ(m.str(), "measure q2 -> c1");
}

TEST(CircuitTest, EqualityComparesOps)
{
    Circuit a(2), b(2);
    a.h(0).cx(0, 1);
    b.h(0).cx(0, 1);
    EXPECT_TRUE(a == b);
    b.x(0);
    EXPECT_FALSE(a == b);
}

} // namespace
} // namespace qra
