/** @file Tests for the CHP stabilizer tableau. */

#include <algorithm>

#include <gtest/gtest.h>

#include "common/error.hh"
#include "stabilizer/stabilizer_state.hh"

namespace qra {
namespace {

TEST(StabilizerStateTest, InitialStabilizersAreZ)
{
    StabilizerState s(3);
    const auto strs = s.stabilizerStrings();
    ASSERT_EQ(strs.size(), 3u);
    EXPECT_EQ(strs[0], "+ZII");
    EXPECT_EQ(strs[1], "+IZI");
    EXPECT_EQ(strs[2], "+IIZ");
}

TEST(StabilizerStateTest, SizeLimits)
{
    EXPECT_THROW(StabilizerState(0), SimulationError);
    EXPECT_THROW(StabilizerState(5000), SimulationError);
    EXPECT_NO_THROW(StabilizerState(1024));
}

TEST(StabilizerStateTest, HadamardMakesX)
{
    StabilizerState s(1);
    s.applyH(0);
    EXPECT_EQ(s.stabilizerStrings()[0], "+X");
    EXPECT_FALSE(s.isDeterministic(0));
    EXPECT_DOUBLE_EQ(s.probabilityOfOne(0), 0.5);
}

TEST(StabilizerStateTest, XFlipsOutcome)
{
    StabilizerState s(1);
    s.applyX(0);
    EXPECT_EQ(s.stabilizerStrings()[0], "-Z");
    EXPECT_TRUE(s.isDeterministic(0));
    EXPECT_DOUBLE_EQ(s.probabilityOfOne(0), 1.0);
}

TEST(StabilizerStateTest, PauliSigns)
{
    StabilizerState s(1);
    s.applyH(0); // +X
    s.applyZ(0); // -X
    EXPECT_EQ(s.stabilizerStrings()[0], "-X");
    s.applyY(0); // Y X Y = -X -> back to +X
    EXPECT_EQ(s.stabilizerStrings()[0], "+X");
}

TEST(StabilizerStateTest, SMakesY)
{
    StabilizerState s(1);
    s.applyH(0); // +X
    s.applyS(0); // S X Sdg = Y
    EXPECT_EQ(s.stabilizerStrings()[0], "+Y");
    s.applySdg(0);
    EXPECT_EQ(s.stabilizerStrings()[0], "+X");
}

TEST(StabilizerStateTest, SxEqualsHSH)
{
    StabilizerState a(1), b(1);
    a.applySx(0);
    b.applyH(0);
    b.applyS(0);
    b.applyH(0);
    EXPECT_EQ(a.stabilizerStrings(), b.stabilizerStrings());
}

TEST(StabilizerStateTest, BellStabilizers)
{
    StabilizerState s(2);
    s.applyH(0);
    s.applyCx(0, 1);
    const auto strs = s.stabilizerStrings();
    // Generators of the Bell pair: XX and ZZ (in some order/signs).
    EXPECT_TRUE(std::find(strs.begin(), strs.end(), "+XX") !=
                strs.end());
    EXPECT_TRUE(std::find(strs.begin(), strs.end(), "+ZZ") !=
                strs.end());
}

TEST(StabilizerStateTest, BellMeasurementCorrelated)
{
    Rng rng(5);
    for (int trial = 0; trial < 50; ++trial) {
        StabilizerState s(2);
        s.applyH(0);
        s.applyCx(0, 1);
        const int first = s.measure(0, rng);
        EXPECT_TRUE(s.isDeterministic(1));
        EXPECT_EQ(s.measure(1, rng), first);
    }
}

TEST(StabilizerStateTest, MeasurementIsRepeatable)
{
    Rng rng(7);
    StabilizerState s(1);
    s.applyH(0);
    const int outcome = s.measure(0, rng);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(s.measure(0, rng), outcome);
}

TEST(StabilizerStateTest, RandomOutcomeFrequencies)
{
    Rng rng(11);
    int ones = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i) {
        StabilizerState s(1);
        s.applyH(0);
        ones += s.measure(0, rng);
    }
    EXPECT_NEAR(ones / double(n), 0.5, 0.02);
}

TEST(StabilizerStateTest, CzViaConjugation)
{
    // CZ |+>|+> produces the cluster-state stabilizers XZ, ZX.
    StabilizerState s(2);
    s.applyH(0);
    s.applyH(1);
    s.applyCz(0, 1);
    const auto strs = s.stabilizerStrings();
    EXPECT_TRUE(std::find(strs.begin(), strs.end(), "+XZ") !=
                strs.end());
    EXPECT_TRUE(std::find(strs.begin(), strs.end(), "+ZX") !=
                strs.end());
}

TEST(StabilizerStateTest, SwapMovesState)
{
    Rng rng(13);
    StabilizerState s(2);
    s.applyX(0);
    s.applySwap(0, 1);
    EXPECT_DOUBLE_EQ(s.probabilityOfOne(0), 0.0);
    EXPECT_DOUBLE_EQ(s.probabilityOfOne(1), 1.0);
}

TEST(StabilizerStateTest, PostSelectBranches)
{
    // Bell pair: post-select q0 = 1 -> q1 must be 1.
    StabilizerState s(2);
    s.applyH(0);
    s.applyCx(0, 1);
    const double p = s.postSelect(0, 1);
    EXPECT_DOUBLE_EQ(p, 0.5);
    EXPECT_DOUBLE_EQ(s.probabilityOfOne(1), 1.0);

    // Impossible branch: |0> post-selected to 1 has p = 0 and the
    // state is untouched.
    StabilizerState zero(1);
    EXPECT_DOUBLE_EQ(zero.postSelect(0, 1), 0.0);
    EXPECT_DOUBLE_EQ(zero.probabilityOfOne(0), 0.0);

    // Deterministic match: p = 1.
    EXPECT_DOUBLE_EQ(zero.postSelect(0, 0), 1.0);
}

TEST(StabilizerStateTest, ResetQubit)
{
    Rng rng(17);
    for (int i = 0; i < 20; ++i) {
        StabilizerState s(2);
        s.applyH(0);
        s.applyCx(0, 1);
        s.resetQubit(0, rng);
        EXPECT_DOUBLE_EQ(s.probabilityOfOne(0), 0.0);
        // Partner collapsed to a classical state.
        EXPECT_TRUE(s.isDeterministic(1));
    }
}

TEST(StabilizerStateTest, NonCliffordRejected)
{
    StabilizerState s(1);
    EXPECT_THROW(
        s.applyUnitary({.kind = OpKind::T, .qubits = {0}}),
        SimulationError);
    EXPECT_THROW(
        s.applyUnitary(
            {.kind = OpKind::RX, .qubits = {0}, .params = {0.3}}),
        SimulationError);
    EXPECT_FALSE(StabilizerState::isCliffordOp(OpKind::T));
    EXPECT_TRUE(StabilizerState::isCliffordOp(OpKind::H));
}

TEST(StabilizerStateTest, GhzAtScale)
{
    // 500-qubit GHZ: far beyond state-vector reach.
    const std::size_t n = 500;
    StabilizerState s(n);
    s.applyH(0);
    for (Qubit q = 0; q + 1 < n; ++q)
        s.applyCx(q, q + 1);

    EXPECT_FALSE(s.isDeterministic(0));

    Rng rng(19);
    const int first = s.measure(0, rng);
    // Every other qubit is now deterministic and equal.
    for (Qubit q = 1; q < n; q += 97)
        EXPECT_EQ(s.measure(q, rng), first) << q;
}

TEST(StabilizerStateTest, OutOfRangeThrows)
{
    StabilizerState s(2);
    Rng rng(1);
    EXPECT_THROW(s.applyH(2), IndexError);
    EXPECT_THROW(s.measure(9, rng), IndexError);
    EXPECT_THROW(s.applyCx(0, 0), SimulationError);
}

} // namespace
} // namespace qra
