/** @file Tests for the stabilizer shot simulator, including
 *  cross-backend agreement with the state vector. */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "sim/statevector_simulator.hh"
#include "stabilizer/stabilizer_simulator.hh"
#include "stats/distance.hh"

namespace qra {
namespace {

stats::Distribution
toDist(const Result &r)
{
    stats::Distribution d;
    for (const auto &[k, n] : r.rawCounts())
        d[k] = double(n) / double(r.shots());
    return d;
}

TEST(StabilizerSimulatorTest, SupportsPredicate)
{
    Circuit clifford(2, 2);
    clifford.h(0).cx(0, 1).s(1).measureAll();
    EXPECT_TRUE(StabilizerSimulator::supports(clifford));

    Circuit nonclifford(1, 1);
    nonclifford.t(0).measure(0, 0);
    EXPECT_FALSE(StabilizerSimulator::supports(nonclifford));
}

TEST(StabilizerSimulatorTest, DeterministicCircuit)
{
    Circuit c(2, 2);
    c.x(0).measureAll();
    StabilizerSimulator sim(1);
    const Result r = sim.run(c, 100);
    EXPECT_EQ(r.count(std::uint64_t{0b01}), 100u);
}

TEST(StabilizerSimulatorTest, BellAgreesWithStatevector)
{
    Circuit c(2, 2);
    c.h(0).cx(0, 1).measureAll();

    StabilizerSimulator stab(3);
    StatevectorSimulator sv(3);
    const Result r_stab = stab.run(c, 20000);
    const Result r_sv = sv.run(c, 20000);

    EXPECT_LT(stats::totalVariation(toDist(r_stab), toDist(r_sv)),
              0.02);
    EXPECT_EQ(r_stab.count(0b01) + r_stab.count(0b10), 0u);
}

TEST(StabilizerSimulatorTest, RandomCliffordAgreesWithStatevector)
{
    // Random 4-qubit Clifford circuits: outcome distributions of the
    // two backends must agree.
    Rng gen(2024);
    for (int trial = 0; trial < 5; ++trial) {
        Circuit c(4, 4);
        for (int step = 0; step < 30; ++step) {
            const Qubit q = static_cast<Qubit>(gen.below(4));
            const Qubit r =
                static_cast<Qubit>((q + 1 + gen.below(3)) % 4);
            switch (gen.below(6)) {
              case 0: c.h(q); break;
              case 1: c.s(q); break;
              case 2: c.x(q); break;
              case 3: c.cx(q, r); break;
              case 4: c.cz(q, r); break;
              default: c.sdg(q); break;
            }
        }
        c.measureAll();

        StabilizerSimulator stab(100 + trial);
        StatevectorSimulator sv(200 + trial);
        const Result r_stab = stab.run(c, 20000);
        const Result r_sv = sv.run(c, 20000);
        EXPECT_LT(
            stats::totalVariation(toDist(r_stab), toDist(r_sv)),
            0.03)
            << "trial " << trial;
    }
}

TEST(StabilizerSimulatorTest, MidCircuitMeasureAndReuse)
{
    Circuit c(2, 2);
    c.h(0).cx(0, 1).measure(1, 0).reset(1).cx(0, 1).measure(1, 1);
    StabilizerSimulator sim(5);
    const Result r = sim.run(c, 2000);
    for (const auto &[key, n] : r.rawCounts())
        EXPECT_EQ(key & 1, (key >> 1) & 1) << key;
}

TEST(StabilizerSimulatorTest, PostSelectConditioning)
{
    Circuit c(2, 2);
    c.h(0).cx(0, 1).postSelect(0, 1).measureAll();
    StabilizerSimulator sim(7);
    const Result r = sim.run(c, 1000);
    EXPECT_EQ(r.count(std::uint64_t{0b11}), 1000u);
    EXPECT_NEAR(r.retainedFraction(), 0.5, 0.05);
}

TEST(StabilizerSimulatorTest, ImpossiblePostSelectThrows)
{
    Circuit c(1, 1);
    c.postSelect(0, 1).measure(0, 0);
    StabilizerSimulator sim(9);
    EXPECT_THROW(sim.run(c, 10), SimulationError);
}

TEST(StabilizerSimulatorTest, NonCliffordCircuitThrows)
{
    Circuit c(1, 1);
    c.t(0).measure(0, 0);
    StabilizerSimulator sim(11);
    EXPECT_THROW(sim.run(c, 10), SimulationError);
}

TEST(StabilizerSimulatorTest, LargeGhzWithAssertionAncilla)
{
    // The paper's entanglement assertion at 200 qubits: GHZ-200 plus
    // a parity ancilla with an even CNOT count; the ancilla always
    // reads 0 and the payload stays perfectly correlated.
    const std::size_t n = 200;
    Circuit c(n + 1, 3);
    c.h(0);
    for (Qubit q = 0; q + 1 < n; ++q)
        c.cx(q, q + 1);
    const Qubit anc = static_cast<Qubit>(n);
    c.cx(0, anc).cx(1, anc); // even pair-parity check
    c.measure(anc, 0);
    c.measure(0, 1);
    c.measure(static_cast<Qubit>(n - 1), 2);

    StabilizerSimulator sim(13);
    const Result r = sim.run(c, 500);
    for (const auto &[key, cnt] : r.rawCounts()) {
        EXPECT_EQ(key & 1, 0u) << "assertion fired";
        EXPECT_EQ((key >> 1) & 1, (key >> 2) & 1)
            << "GHZ ends decorrelated";
    }
}

TEST(StabilizerSimulatorTest, EvolveOneReturnsState)
{
    Circuit c(2, 0);
    c.h(0).cx(0, 1);
    StabilizerSimulator sim(15);
    const StabilizerState s = sim.evolveOne(c);
    EXPECT_EQ(s.numQubits(), 2u);
    EXPECT_DOUBLE_EQ(s.probabilityOfOne(0), 0.5);
}

} // namespace
} // namespace qra
