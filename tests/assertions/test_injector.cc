/** @file Tests for the assertion instrumentation pass. */

#include <gtest/gtest.h>

#include "assertions/classical_assertion.hh"
#include "assertions/entanglement_assertion.hh"
#include "assertions/injector.hh"
#include "assertions/superposition_assertion.hh"
#include "common/error.hh"
#include "sim/statevector_simulator.hh"
#include "sim/trajectory_simulator.hh"

namespace qra {
namespace {

AssertionSpec
classicalSpec(Qubit target, int expected, std::size_t at,
              std::string label = "")
{
    AssertionSpec spec;
    spec.assertion = std::make_shared<ClassicalAssertion>(expected);
    spec.targets = {target};
    spec.insertAt = at;
    spec.label = std::move(label);
    return spec;
}

TEST(InjectorTest, AllocatesAncillasAboveAndClbitsAbove)
{
    Circuit payload(2, 2);
    payload.h(0).cx(0, 1).measureAll();

    const InstrumentedCircuit inst = instrument(
        payload,
        {classicalSpec(0, 0, 0), classicalSpec(1, 0, 0)});

    EXPECT_EQ(inst.payloadQubits(), 2u);
    EXPECT_EQ(inst.payloadClbits(), 2u);
    EXPECT_EQ(inst.circuit().numQubits(), 4u);
    EXPECT_EQ(inst.circuit().numClbits(), 4u);
    ASSERT_EQ(inst.checks().size(), 2u);
    EXPECT_EQ(inst.checks()[0].ancillas[0], 2u);
    EXPECT_EQ(inst.checks()[1].ancillas[0], 3u);
    EXPECT_EQ(inst.checks()[0].clbits[0], 2u);
    EXPECT_EQ(inst.checks()[1].clbits[0], 3u);
}

TEST(InjectorTest, AssertionMaskAndPredicates)
{
    Circuit payload(1, 1);
    payload.h(0).measure(0, 0);
    const InstrumentedCircuit inst =
        instrument(payload, {classicalSpec(0, 0, 0)});

    EXPECT_EQ(inst.assertionMask(), 0b10u);
    EXPECT_TRUE(inst.passed(0b00));
    EXPECT_TRUE(inst.passed(0b01));
    EXPECT_FALSE(inst.passed(0b10));
    EXPECT_FALSE(inst.passed(0b11));
    EXPECT_EQ(inst.payloadBits(0b11), 0b01u);
    EXPECT_TRUE(inst.checkPassed(0, 0b01));
    EXPECT_FALSE(inst.checkPassed(0, 0b10));
    EXPECT_THROW(inst.checkPassed(5, 0), AssertionError);
}

TEST(InjectorTest, InsertionPointRespected)
{
    // Payload: x(0), h(0). Check at index 1 must see |1>, not H|1>.
    Circuit payload(1, 0);
    payload.x(0).h(0);

    const InstrumentedCircuit inst =
        instrument(payload, {classicalSpec(0, 1, 1)});
    StatevectorSimulator sim(1);
    const Result r = sim.run(inst.circuit(), 500);
    for (const auto &[reg, n] : r.rawCounts())
        EXPECT_TRUE(inst.passed(reg)) << reg;
}

TEST(InjectorTest, EndInsertionForLargeIndex)
{
    Circuit payload(1, 0);
    payload.x(0);
    const InstrumentedCircuit inst =
        instrument(payload, {classicalSpec(0, 1, 999)});
    StatevectorSimulator sim(2);
    const Result r = sim.run(inst.circuit(), 200);
    for (const auto &[reg, n] : r.rawCounts())
        EXPECT_TRUE(inst.passed(reg));
}

TEST(InjectorTest, MultipleChecksAtDifferentPoints)
{
    Circuit payload(2, 2);
    payload.x(0).cx(0, 1).measureAll();

    std::vector<AssertionSpec> specs{
        classicalSpec(0, 1, 1, "after x"),
        classicalSpec(1, 1, 2, "after cx"),
    };
    const InstrumentedCircuit inst = instrument(payload, specs);
    EXPECT_EQ(inst.checks().size(), 2u);
    EXPECT_EQ(inst.checks()[0].spec.label, "after x");

    StatevectorSimulator sim(3);
    const Result r = sim.run(inst.circuit(), 500);
    for (const auto &[reg, n] : r.rawCounts()) {
        EXPECT_TRUE(inst.passed(reg)) << reg;
        // Payload still measures 11.
        EXPECT_EQ(inst.payloadBits(reg), 0b11u);
    }
}

TEST(InjectorTest, SpecValidation)
{
    Circuit payload(2, 0);

    AssertionSpec no_assertion;
    no_assertion.targets = {0};
    EXPECT_THROW(instrument(payload, {no_assertion}), AssertionError);

    AssertionSpec wrong_arity = classicalSpec(0, 0, 0);
    wrong_arity.targets = {0, 1};
    EXPECT_THROW(instrument(payload, {wrong_arity}), AssertionError);

    AssertionSpec out_of_range = classicalSpec(5, 0, 0);
    EXPECT_THROW(instrument(payload, {out_of_range}), AssertionError);
}

TEST(InjectorTest, BarriersWrapChecksByDefault)
{
    Circuit payload(1, 0);
    payload.h(0);
    const InstrumentedCircuit with_barriers =
        instrument(payload, {classicalSpec(0, 0, 1)});
    EXPECT_GE(with_barriers.circuit().countOps().at("barrier"), 2u);

    InstrumentOptions opts;
    opts.barriers = false;
    const InstrumentedCircuit no_barriers =
        instrument(payload, {classicalSpec(0, 0, 1)}, opts);
    EXPECT_EQ(no_barriers.circuit().countOps().count("barrier"), 0u);
}

TEST(InjectorTest, AncillaReusePoolsQubits)
{
    Circuit payload(2, 2);
    payload.h(0).cx(0, 1).measureAll();

    std::vector<AssertionSpec> specs{
        classicalSpec(0, 0, 0),
        classicalSpec(1, 0, 1),
        classicalSpec(0, 0, 2),
    };

    InstrumentOptions opts;
    opts.reuseAncillas = true;
    const InstrumentedCircuit pooled =
        instrument(payload, specs, opts);
    // One shared ancilla, three clbits.
    EXPECT_EQ(pooled.circuit().numQubits(), 3u);
    EXPECT_EQ(pooled.circuit().numClbits(), 5u);
    // Reset appears between reuses.
    EXPECT_GE(pooled.circuit().countOps().at("reset"), 2u);

    const InstrumentedCircuit unpooled = instrument(payload, specs);
    EXPECT_EQ(unpooled.circuit().numQubits(), 5u);
}

TEST(InjectorTest, AncillaReuseSemanticsOnTrajectoryBackend)
{
    // All three checks on |0> payload must pass with a reused
    // ancilla.
    Circuit payload(1, 0);
    std::vector<AssertionSpec> specs{
        classicalSpec(0, 0, 0),
        classicalSpec(0, 0, 0),
        classicalSpec(0, 0, 0),
    };
    InstrumentOptions opts;
    opts.reuseAncillas = true;
    const InstrumentedCircuit inst =
        instrument(payload, specs, opts);

    TrajectorySimulator sim(4);
    const Result r = sim.run(inst.circuit(), 500);
    for (const auto &[reg, n] : r.rawCounts())
        EXPECT_TRUE(inst.passed(reg)) << reg;
}

TEST(InjectorTest, MixedAssertionKindsTogether)
{
    Circuit payload(3, 3);
    payload.h(0).cx(0, 1).h(2).measureAll();

    AssertionSpec ent;
    ent.assertion = std::make_shared<EntanglementAssertion>(2);
    ent.targets = {0, 1};
    ent.insertAt = 2;

    AssertionSpec sup;
    sup.assertion = std::make_shared<SuperpositionAssertion>();
    sup.targets = {2};
    sup.insertAt = 3;

    const InstrumentedCircuit inst = instrument(payload, {ent, sup});
    StatevectorSimulator sim(5);
    const Result r = sim.run(inst.circuit(), 1000);
    for (const auto &[reg, n] : r.rawCounts())
        EXPECT_TRUE(inst.passed(reg)) << reg;
}

TEST(InjectorTest, PayloadOpsPreservedInOrder)
{
    Circuit payload(2, 0);
    payload.h(0).cx(0, 1).t(1);
    InstrumentOptions opts;
    opts.barriers = false;
    const InstrumentedCircuit inst =
        instrument(payload, {classicalSpec(0, 0, 1)}, opts);

    // Expect: h, [cx anc, measure anc], cx, t.
    const auto &ops = inst.circuit().ops();
    ASSERT_EQ(ops.size(), 5u);
    EXPECT_EQ(ops[0].kind, OpKind::H);
    EXPECT_EQ(ops[1].kind, OpKind::CX); // assertion CNOT
    EXPECT_EQ(ops[1].qubits[1], 2u);    // into the ancilla
    EXPECT_EQ(ops[2].kind, OpKind::Measure);
    EXPECT_EQ(ops[3].kind, OpKind::CX); // payload CX
    EXPECT_EQ(ops[4].kind, OpKind::T);
}

} // namespace
} // namespace qra
