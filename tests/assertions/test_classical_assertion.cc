/** @file Tests for the classical-value assertion (paper Sec. 3.1). */

#include <cmath>

#include <gtest/gtest.h>

#include "assertions/classical_assertion.hh"
#include "assertions/injector.hh"
#include "common/error.hh"
#include "sim/statevector_simulator.hh"
#include "testutil.hh"

namespace qra {
namespace {

/** Instrument a payload with one end-of-circuit classical check. */
InstrumentedCircuit
withCheck(const Circuit &payload, int expected, Qubit target)
{
    AssertionSpec spec;
    spec.assertion = std::make_shared<ClassicalAssertion>(expected);
    spec.targets = {target};
    spec.insertAt = payload.size();
    return instrument(payload, {spec});
}

TEST(ClassicalAssertionTest, Arity)
{
    ClassicalAssertion a(0);
    EXPECT_EQ(a.kind(), AssertionKind::Classical);
    EXPECT_EQ(a.numTargets(), 1u);
    EXPECT_EQ(a.numAncillas(), 1u);
    EXPECT_EQ(a.describe(), "assert qubit == |0>");
    EXPECT_EQ(ClassicalAssertion(1).describe(), "assert qubit == |1>");
}

TEST(ClassicalAssertionTest, ConstructorValidation)
{
    EXPECT_THROW(ClassicalAssertion(2), AssertionError);
    EXPECT_THROW(ClassicalAssertion(0b111, 2), AssertionError);
    EXPECT_THROW(ClassicalAssertion(0, 0), AssertionError);
}

TEST(ClassicalAssertionTest, PassesOnMatchingClassicalState)
{
    // |0> asserted == |0>: ancilla always reads 0.
    Circuit payload(1, 0);
    const InstrumentedCircuit inst = withCheck(payload, 0, 0);
    StatevectorSimulator sim(1);
    const Result r = sim.run(inst.circuit(), 500);
    for (const auto &[reg, n] : r.rawCounts())
        EXPECT_TRUE(inst.passed(reg)) << reg;
}

TEST(ClassicalAssertionTest, FailsOnMismatchedClassicalState)
{
    // |1> asserted == |0>: ancilla always reads 1.
    Circuit payload(1, 0);
    payload.x(0);
    const InstrumentedCircuit inst = withCheck(payload, 0, 0);
    StatevectorSimulator sim(2);
    const Result r = sim.run(inst.circuit(), 500);
    for (const auto &[reg, n] : r.rawCounts())
        EXPECT_FALSE(inst.passed(reg)) << reg;
}

TEST(ClassicalAssertionTest, AssertOneVariant)
{
    // |1> asserted == |1> passes; |0> asserted == |1> fails.
    Circuit one(1, 0);
    one.x(0);
    const InstrumentedCircuit pass_inst = withCheck(one, 1, 0);
    StatevectorSimulator sim(3);
    const Result pass = sim.run(pass_inst.circuit(), 200);
    for (const auto &[reg, n] : pass.rawCounts())
        EXPECT_TRUE(pass_inst.passed(reg));

    Circuit zero(1, 0);
    const InstrumentedCircuit fail_inst = withCheck(zero, 1, 0);
    const Result fail = sim.run(fail_inst.circuit(), 200);
    for (const auto &[reg, n] : fail.rawCounts())
        EXPECT_FALSE(fail_inst.passed(reg));
}

TEST(ClassicalAssertionTest, SuperposedInputErrorProbabilityIsB2)
{
    // |psi> = cos(t/2)|0> + sin(t/2)|1> asserted == |0>:
    // P(error) = sin^2(t/2) (paper Sec. 3.1).
    for (double theta : {0.3, 0.9, M_PI / 2, 2.2}) {
        Circuit payload(1, 0);
        payload.ry(theta, 0);
        const InstrumentedCircuit inst = withCheck(payload, 0, 0);
        StatevectorSimulator sim(4);
        const Result r = sim.run(inst.circuit(), 40000);

        double error = 0.0;
        for (const auto &[reg, n] : r.rawCounts())
            if (!inst.passed(reg))
                error += double(n) / double(r.shots());

        const double b2 = std::pow(std::sin(theta / 2.0), 2);
        EXPECT_NEAR(error, b2, 0.02) << "theta " << theta;
    }
}

TEST(ClassicalAssertionTest, PassingCheckProjectsQubitToZero)
{
    // The paper's auto-correction property: asserting |0> on |+> and
    // passing forces the qubit into |0>.
    Circuit payload(1, 0);
    payload.h(0);

    AssertionSpec spec;
    spec.assertion = std::make_shared<ClassicalAssertion>(0);
    spec.targets = {0};
    spec.insertAt = payload.size();
    InstrumentedCircuit inst = instrument(payload, {spec});

    // Post-select the ancilla on the passing outcome.
    const Qubit ancilla = inst.checks()[0].ancillas[0];
    Circuit conditioned = inst.circuit();
    conditioned.postSelect(ancilla, 0);

    StatevectorSimulator sim(5);
    const StateVector sv = sim.finalState(conditioned);
    EXPECT_NEAR(sv.probabilityOfOne(0), 0.0, 1e-9);
}

TEST(ClassicalAssertionTest, FailingCheckProjectsQubitToOne)
{
    Circuit payload(1, 0);
    payload.h(0);

    AssertionSpec spec;
    spec.assertion = std::make_shared<ClassicalAssertion>(0);
    spec.targets = {0};
    spec.insertAt = payload.size();
    InstrumentedCircuit inst = instrument(payload, {spec});

    const Qubit ancilla = inst.checks()[0].ancillas[0];
    Circuit conditioned = inst.circuit();
    conditioned.postSelect(ancilla, 1);

    StatevectorSimulator sim(6);
    const StateVector sv = sim.finalState(conditioned);
    EXPECT_NEAR(sv.probabilityOfOne(0), 1.0, 1e-9);
}

TEST(ClassicalAssertionTest, MultiQubitRegisterAssert)
{
    // Register |q1 q0> = |10> asserted == 0b10.
    Circuit payload(2, 0);
    payload.x(1);

    AssertionSpec spec;
    spec.assertion = std::make_shared<ClassicalAssertion>(0b10, 2);
    spec.targets = {0, 1};
    spec.insertAt = payload.size();
    const InstrumentedCircuit inst = instrument(payload, {spec});

    StatevectorSimulator sim(7);
    const Result r = sim.run(inst.circuit(), 300);
    for (const auto &[reg, n] : r.rawCounts())
        EXPECT_TRUE(inst.passed(reg)) << reg;

    // Wrong expected value fails deterministically.
    AssertionSpec bad = spec;
    bad.assertion = std::make_shared<ClassicalAssertion>(0b01, 2);
    const InstrumentedCircuit bad_inst = instrument(payload, {bad});
    const Result rb = sim.run(bad_inst.circuit(), 300);
    for (const auto &[reg, n] : rb.rawCounts())
        EXPECT_FALSE(bad_inst.passed(reg)) << reg;
}

TEST(ClassicalAssertionTest, DescribeMultiQubit)
{
    ClassicalAssertion a(0b101, 3);
    EXPECT_EQ(a.describe(), "assert register == |101>");
}

TEST(ClassicalAssertionTest, CircuitCostIsOneCnotPerQubit)
{
    Circuit payload(3, 0);
    AssertionSpec spec;
    spec.assertion = std::make_shared<ClassicalAssertion>(0b000, 3);
    spec.targets = {0, 1, 2};
    spec.insertAt = 0;
    InstrumentOptions opts;
    opts.barriers = false;
    const InstrumentedCircuit inst = instrument(payload, {spec}, opts);
    const auto counts = inst.circuit().countOps();
    EXPECT_EQ(counts.at("cx"), 3u);
    EXPECT_EQ(counts.at("measure"), 3u);
    EXPECT_EQ(counts.count("x"), 0u); // expected bits all zero
}

} // namespace
} // namespace qra
