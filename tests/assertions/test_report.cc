/** @file Tests for the assertion result analyser. */

#include <gtest/gtest.h>

#include "assertions/classical_assertion.hh"
#include "assertions/report.hh"
#include "sim/density_simulator.hh"
#include "sim/statevector_simulator.hh"

namespace qra {
namespace {

InstrumentedCircuit
superposedPayloadWithCheck()
{
    // RY(theta) with P(1) = 0.25, asserted == |0>, measured payload.
    Circuit payload(1, 1);
    payload.ry(2.0 * std::asin(0.5), 0);
    payload.measure(0, 0);

    AssertionSpec spec;
    spec.assertion = std::make_shared<ClassicalAssertion>(0);
    spec.targets = {0};
    spec.insertAt = 1; // after the RY, before the measurement
    spec.label = "mid";
    return instrument(payload, {spec});
}

TEST(ReportTest, CheckErrorRateMatchesTheory)
{
    const InstrumentedCircuit inst = superposedPayloadWithCheck();
    StatevectorSimulator sim(1);
    const Result r = sim.run(inst.circuit(), 40000);
    const AssertionReport report = analyze(inst, r);

    ASSERT_EQ(report.checkErrorRates.size(), 1u);
    EXPECT_NEAR(report.checkErrorRates[0], 0.25, 0.02);
    EXPECT_NEAR(report.anyErrorRate, 0.25, 0.02);
    EXPECT_NEAR(report.keptFraction, 0.75, 0.02);
}

TEST(ReportTest, FilteredPayloadConditionsOnPass)
{
    const InstrumentedCircuit inst = superposedPayloadWithCheck();
    StatevectorSimulator sim(2);
    const Result r = sim.run(inst.circuit(), 40000);
    const AssertionReport report = analyze(inst, r);

    // Raw payload: 25% ones. Filtered (assertion passed -> qubit
    // projected to |0>): payload reads 0 always.
    EXPECT_NEAR(report.rawPayload.at(1), 0.25, 0.02);
    EXPECT_NEAR(report.filteredPayload.at(0), 1.0, 1e-9);
    EXPECT_EQ(report.filteredPayload.count(1), 0u);
}

TEST(ReportTest, NothingPassedLeavesFilteredPayloadEmpty)
{
    // Payload pinned to |1>, asserted == |0>: the check fires on
    // every shot. The filtered distribution is undefined, so it must
    // come back explicitly empty (not an unnormalised all-zero map),
    // even from an exact backend whose distribution enumerates
    // zero-probability outcomes.
    Circuit payload(1, 1);
    payload.x(0);
    payload.measure(0, 0);
    AssertionSpec spec;
    spec.assertion = std::make_shared<ClassicalAssertion>(0);
    spec.targets = {0};
    spec.insertAt = 1;
    const InstrumentedCircuit inst = instrument(payload, {spec});

    for (const bool exact : {false, true}) {
        Result r;
        if (exact) {
            DensityMatrixSimulator sim(4);
            r = sim.run(inst.circuit(), 10);
        } else {
            StatevectorSimulator sim(4);
            r = sim.run(inst.circuit(), 1000);
        }
        const AssertionReport report = analyze(inst, r);
        EXPECT_NEAR(report.anyErrorRate, 1.0, 1e-9) << exact;
        EXPECT_NEAR(report.keptFraction, 0.0, 1e-9) << exact;
        EXPECT_TRUE(report.filteredPayload.empty()) << exact;
    }
}

TEST(ReportTest, UsesExactDistributionWhenAvailable)
{
    const InstrumentedCircuit inst = superposedPayloadWithCheck();
    DensityMatrixSimulator sim(3);
    const Result r = sim.run(inst.circuit(), 10);
    const AssertionReport report = analyze(inst, r);
    // With only 10 sampled shots the empirical estimate would be
    // coarse; the exact distribution gives the precise 0.25.
    EXPECT_NEAR(report.checkErrorRates[0], 0.25, 1e-9);
}

TEST(ReportTest, ErrorRatesAgainstPredicate)
{
    const InstrumentedCircuit inst = superposedPayloadWithCheck();
    DensityMatrixSimulator sim(4);
    const Result r = sim.run(inst.circuit(), 10);
    const stats::ErrorRateReport err = errorRates(
        inst, r,
        [](std::uint64_t payload) { return payload == 1; });
    EXPECT_NEAR(err.rawErrorRate, 0.25, 1e-9);
    EXPECT_NEAR(err.filteredErrorRate, 0.0, 1e-9);
    EXPECT_NEAR(err.reduction(), 1.0, 1e-9);
}

TEST(ReportTest, StrIncludesLabel)
{
    const InstrumentedCircuit inst = superposedPayloadWithCheck();
    StatevectorSimulator sim(5);
    const Result r = sim.run(inst.circuit(), 100);
    const AssertionReport report = analyze(inst, r);
    const std::string s = report.str(inst);
    EXPECT_NE(s.find("mid"), std::string::npos);
    EXPECT_NE(s.find("assert qubit == |0>"), std::string::npos);
}

TEST(ReportTest, MultipleChecksReportedIndependently)
{
    Circuit payload(2, 0);
    payload.x(1);

    AssertionSpec good;
    good.assertion = std::make_shared<ClassicalAssertion>(1);
    good.targets = {1};
    good.insertAt = 1;

    AssertionSpec bad;
    bad.assertion = std::make_shared<ClassicalAssertion>(1);
    bad.targets = {0}; // q0 is |0>: always fails
    bad.insertAt = 1;

    const InstrumentedCircuit inst = instrument(payload, {good, bad});
    StatevectorSimulator sim(6);
    const Result r = sim.run(inst.circuit(), 1000);
    const AssertionReport report = analyze(inst, r);
    ASSERT_EQ(report.checkErrorRates.size(), 2u);
    EXPECT_NEAR(report.checkErrorRates[0], 0.0, 1e-9);
    EXPECT_NEAR(report.checkErrorRates[1], 1.0, 1e-9);
    EXPECT_NEAR(report.keptFraction, 0.0, 1e-9);
    EXPECT_TRUE(report.filteredPayload.empty());
}

} // namespace
} // namespace qra
