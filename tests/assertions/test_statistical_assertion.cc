/** @file Tests for the statistical-assertion baseline (ISCA'19). */

#include <gtest/gtest.h>

#include "assertions/statistical_assertion.hh"
#include "common/error.hh"
#include "sim/statevector_simulator.hh"

namespace qra {
namespace {

stats::Counts
runBreakpoint(const Circuit &breakpoint, std::size_t shots,
              std::uint64_t seed)
{
    StatevectorSimulator sim(seed);
    const Result r = sim.run(breakpoint, shots);
    stats::Counts counts;
    for (const auto &[key, n] : r.rawCounts())
        counts[key] = n;
    return counts;
}

TEST(StatisticalAssertionTest, Validation)
{
    EXPECT_THROW(
        StatisticalAssertion(AssertionKind::Classical, {}),
        AssertionError);
    EXPECT_THROW(
        StatisticalAssertion(AssertionKind::Entanglement, {0}),
        AssertionError);
    EXPECT_THROW(
        StatisticalAssertion(AssertionKind::Classical, {0}, 0b10),
        AssertionError);
}

TEST(StatisticalAssertionTest, BreakpointTruncatesProgram)
{
    Circuit payload(2, 2);
    payload.x(0).cx(0, 1).measureAll();

    StatisticalAssertion assertion(AssertionKind::Classical, {0}, 1);
    const Circuit bp = assertion.breakpointCircuit(payload, 1);
    // Only x(0) survives, plus the diagnostic measurement.
    EXPECT_EQ(bp.countOps().count("cx"), 0u);
    EXPECT_EQ(bp.countOps().at("measure"), 1u);
    EXPECT_EQ(bp.numClbits(), 1u);
}

TEST(StatisticalAssertionTest, BreakpointSkipsPayloadMeasures)
{
    Circuit payload(1, 1);
    payload.h(0).measure(0, 0).h(0);
    StatisticalAssertion assertion(AssertionKind::Superposition, {0});
    const Circuit bp = assertion.breakpointCircuit(payload, 3);
    // The payload's own measure is dropped; one diagnostic measure.
    EXPECT_EQ(bp.countOps().at("measure"), 1u);
}

TEST(StatisticalAssertionTest, ExpectedDistributions)
{
    StatisticalAssertion classical(AssertionKind::Classical, {0, 1},
                                   0b10);
    const auto dc = classical.expectedDistribution();
    EXPECT_DOUBLE_EQ(dc.at(0b10), 1.0);
    EXPECT_EQ(dc.size(), 1u);

    StatisticalAssertion uniform(AssertionKind::Superposition,
                                 {0, 1});
    const auto du = uniform.expectedDistribution();
    EXPECT_EQ(du.size(), 4u);
    EXPECT_DOUBLE_EQ(du.at(0), 0.25);

    StatisticalAssertion ghz(AssertionKind::Entanglement, {0, 1, 2});
    const auto dg = ghz.expectedDistribution();
    EXPECT_DOUBLE_EQ(dg.at(0), 0.5);
    EXPECT_DOUBLE_EQ(dg.at(0b111), 0.5);
}

TEST(StatisticalAssertionTest, ClassicalHoldsOnCorrectProgram)
{
    Circuit payload(1, 0);
    payload.x(0);
    StatisticalAssertion assertion(AssertionKind::Classical, {0}, 1);
    const Circuit bp = assertion.breakpointCircuit(payload, 1);
    const auto counts = runBreakpoint(bp, 4096, 1);
    EXPECT_FALSE(assertion.check(counts).rejected);
}

TEST(StatisticalAssertionTest, ClassicalCatchesWrongValue)
{
    Circuit payload(1, 0); // |0>, asserted |1>
    StatisticalAssertion assertion(AssertionKind::Classical, {0}, 1);
    const Circuit bp = assertion.breakpointCircuit(payload, 0);
    const auto counts = runBreakpoint(bp, 4096, 2);
    EXPECT_TRUE(assertion.check(counts).rejected);
}

TEST(StatisticalAssertionTest, SuperpositionHoldsOnH)
{
    Circuit payload(1, 0);
    payload.h(0);
    StatisticalAssertion assertion(AssertionKind::Superposition, {0});
    const Circuit bp = assertion.breakpointCircuit(payload, 1);
    const auto counts = runBreakpoint(bp, 8192, 3);
    EXPECT_FALSE(assertion.check(counts).rejected);
}

TEST(StatisticalAssertionTest, SuperpositionCatchesMissingH)
{
    Circuit payload(1, 0); // bug: H omitted
    StatisticalAssertion assertion(AssertionKind::Superposition, {0});
    const Circuit bp = assertion.breakpointCircuit(payload, 0);
    const auto counts = runBreakpoint(bp, 8192, 4);
    EXPECT_TRUE(assertion.check(counts).rejected);
}

TEST(StatisticalAssertionTest, EntanglementHoldsOnBell)
{
    Circuit payload(2, 0);
    payload.h(0).cx(0, 1);
    StatisticalAssertion assertion(AssertionKind::Entanglement,
                                   {0, 1});
    const Circuit bp = assertion.breakpointCircuit(payload, 2);
    // A 5% significance test flags ~1 in 20 correct runs by design;
    // average over seeds and require the typical case to hold.
    int rejections = 0;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        const auto counts = runBreakpoint(bp, 8192, seed);
        if (assertion.check(counts).rejected)
            ++rejections;
    }
    EXPECT_LE(rejections, 2);
}

TEST(StatisticalAssertionTest, EntanglementCatchesProductState)
{
    Circuit payload(2, 0);
    payload.h(0).h(1); // bug: H instead of CX
    StatisticalAssertion assertion(AssertionKind::Entanglement,
                                   {0, 1});
    const Circuit bp = assertion.breakpointCircuit(payload, 2);
    const auto counts = runBreakpoint(bp, 8192, 6);
    EXPECT_TRUE(assertion.check(counts).rejected);
}

TEST(StatisticalAssertionTest, CannotDistinguishGhzFromMixture)
{
    // The known blind spot of Z-basis statistics: a classical 50/50
    // mixture of |00> and |11> passes the entanglement test. The
    // dynamic assertion (which measures parity coherently) shares
    // this limit only for the Z-parity; the statistical baseline
    // cannot do better without basis changes.
    stats::Counts mixture{{0b00, 4096}, {0b11, 4096}};
    StatisticalAssertion assertion(AssertionKind::Entanglement,
                                   {0, 1});
    EXPECT_FALSE(assertion.check(mixture).rejected);
}

TEST(StatisticalAssertionTest, OutcomeStr)
{
    Circuit payload(1, 0);
    StatisticalAssertion assertion(AssertionKind::Classical, {0}, 0);
    const Circuit bp = assertion.breakpointCircuit(payload, 0);
    const auto counts = runBreakpoint(bp, 1024, 7);
    const auto outcome = assertion.check(counts);
    EXPECT_NE(outcome.str().find("chi2"), std::string::npos);
    EXPECT_NE(outcome.str().find("assertion holds"),
              std::string::npos);
}

} // namespace
} // namespace qra
