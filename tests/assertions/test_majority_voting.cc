/** @file Tests for repeated checks with majority voting. */

#include <gtest/gtest.h>

#include "assertions/classical_assertion.hh"
#include "assertions/entanglement_assertion.hh"
#include "assertions/injector.hh"
#include "assertions/report.hh"
#include "common/error.hh"
#include "sim/density_simulator.hh"
#include "sim/statevector_simulator.hh"
#include "sim/trajectory_simulator.hh"

namespace qra {
namespace {

AssertionSpec
classicalSpec(Qubit target, int expected, std::size_t at,
              std::size_t reps)
{
    AssertionSpec spec;
    spec.assertion = std::make_shared<ClassicalAssertion>(expected);
    spec.targets = {target};
    spec.insertAt = at;
    spec.repetitions = reps;
    return spec;
}

TEST(MajorityVotingTest, AllocatesPerRepetition)
{
    Circuit payload(1, 0);
    const InstrumentedCircuit inst =
        instrument(payload, {classicalSpec(0, 0, 0, 3)});
    EXPECT_EQ(inst.circuit().numQubits(), 4u); // 1 payload + 3 anc
    EXPECT_EQ(inst.circuit().numClbits(), 3u);
    ASSERT_EQ(inst.checks().size(), 1u);
    EXPECT_EQ(inst.checks()[0].ancillas.size(), 3u);
    EXPECT_EQ(inst.checks()[0].clbits.size(), 3u);
    EXPECT_EQ(inst.checks()[0].clbitsPerRepetition, 1u);
}

TEST(MajorityVotingTest, ZeroRepetitionsRejected)
{
    Circuit payload(1, 0);
    EXPECT_THROW(instrument(payload, {classicalSpec(0, 0, 0, 0)}),
                 AssertionError);
}

TEST(MajorityVotingTest, MajorityDecides)
{
    Circuit payload(1, 0);
    const InstrumentedCircuit inst =
        instrument(payload, {classicalSpec(0, 0, 0, 3)});
    // Assertion clbits are 0, 1, 2 (payload has none).
    EXPECT_TRUE(inst.passed(0b000));
    EXPECT_TRUE(inst.passed(0b001));  // 1 of 3 fired: vote passes
    EXPECT_TRUE(inst.passed(0b100));
    EXPECT_FALSE(inst.passed(0b011)); // 2 of 3 fired
    EXPECT_FALSE(inst.passed(0b111));
}

TEST(MajorityVotingTest, CleanStatePassesAllRepetitions)
{
    Circuit payload(1, 0);
    const InstrumentedCircuit inst =
        instrument(payload, {classicalSpec(0, 0, 0, 5)});
    StatevectorSimulator sim(1);
    const Result r = sim.run(inst.circuit(), 500);
    for (const auto &[reg, n] : r.rawCounts()) {
        EXPECT_EQ(reg, 0u);
        EXPECT_TRUE(inst.passed(reg));
    }
}

TEST(MajorityVotingTest, DeterministicBugStillAlwaysCaught)
{
    Circuit payload(1, 0);
    payload.x(0); // |1> asserted == |0>
    const InstrumentedCircuit inst =
        instrument(payload, {classicalSpec(0, 0, 1, 3)});
    StatevectorSimulator sim(2);
    const Result r = sim.run(inst.circuit(), 500);
    for (const auto &[reg, n] : r.rawCounts())
        EXPECT_FALSE(inst.passed(reg)) << reg;
}

TEST(MajorityVotingTest, RepetitionsAgreeAfterProjection)
{
    // On a superposed input the FIRST check projects; the remaining
    // repetitions must deterministically agree with it.
    Circuit payload(1, 0);
    payload.h(0);
    const InstrumentedCircuit inst =
        instrument(payload, {classicalSpec(0, 0, 1, 3)});
    StatevectorSimulator sim(3);
    const Result r = sim.run(inst.circuit(), 2000);
    for (const auto &[reg, n] : r.rawCounts()) {
        const int b0 = (reg >> 0) & 1;
        const int b1 = (reg >> 1) & 1;
        const int b2 = (reg >> 2) & 1;
        EXPECT_EQ(b0, b1) << reg;
        EXPECT_EQ(b1, b2) << reg;
    }
}

TEST(MajorityVotingTest, SuppressesReadoutFalsePositives)
{
    // Pure readout noise on the ancillas: a single check false-fires
    // with probability p; majority-of-3 with ~3p^2. Model: perfect
    // gates, 10% readout flip on every qubit.
    NoiseModel noise;
    for (Qubit q = 0; q < 4; ++q)
        noise.setReadoutError(q, ReadoutError(0.1, 0.1));

    Circuit payload(1, 0);

    DensityMatrixSimulator sim(4);
    sim.setNoiseModel(&noise);

    const InstrumentedCircuit single =
        instrument(payload, {classicalSpec(0, 0, 0, 1)});
    const AssertionReport r1 =
        analyze(single, sim.run(single.circuit(), 1000));
    EXPECT_NEAR(r1.anyErrorRate, 0.10, 0.01);

    const InstrumentedCircuit voted =
        instrument(payload, {classicalSpec(0, 0, 0, 3)});
    const AssertionReport r3 =
        analyze(voted, sim.run(voted.circuit(), 1000));
    // P(>= 2 of 3 flips) = 3 p^2 (1-p) + p^3 = 0.028.
    EXPECT_NEAR(r3.anyErrorRate, 0.028, 0.01);
    EXPECT_LT(r3.anyErrorRate, r1.anyErrorRate / 2.0);
}

TEST(MajorityVotingTest, WorksWithMultiAncillaChecks)
{
    Circuit payload(3, 0);
    payload.h(0).cx(0, 1).cx(1, 2);

    AssertionSpec spec;
    spec.assertion = std::make_shared<EntanglementAssertion>(
        3, EntanglementAssertion::Parity::Even,
        EntanglementAssertion::Mode::Chain);
    spec.targets = {0, 1, 2};
    spec.insertAt = 3;
    spec.repetitions = 3;
    const InstrumentedCircuit inst = instrument(payload, {spec});

    // 2 ancillas per repetition, 3 repetitions.
    EXPECT_EQ(inst.checks()[0].clbits.size(), 6u);
    EXPECT_EQ(inst.checks()[0].clbitsPerRepetition, 2u);

    StatevectorSimulator sim(5);
    const Result r = sim.run(inst.circuit(), 500);
    for (const auto &[reg, n] : r.rawCounts())
        EXPECT_TRUE(inst.passed(reg)) << reg;
}

TEST(MajorityVotingTest, AncillaReuseComposesWithRepetition)
{
    Circuit payload(1, 0);
    InstrumentOptions opts;
    opts.reuseAncillas = true;
    const InstrumentedCircuit inst =
        instrument(payload, {classicalSpec(0, 0, 0, 3)}, opts);
    // One pooled ancilla, three clbits, resets in between.
    EXPECT_EQ(inst.circuit().numQubits(), 2u);
    EXPECT_EQ(inst.circuit().numClbits(), 3u);
    EXPECT_GE(inst.circuit().countOps().at("reset"), 2u);

    TrajectorySimulator sim(6);
    const Result r = sim.run(inst.circuit(), 300);
    for (const auto &[reg, n] : r.rawCounts())
        EXPECT_TRUE(inst.passed(reg)) << reg;
}

} // namespace
} // namespace qra
