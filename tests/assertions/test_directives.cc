/** @file Tests for QASM assertion-comment directives. */

#include <gtest/gtest.h>

#include "assertions/directives.hh"
#include "common/error.hh"
#include "sim/statevector_simulator.hh"

namespace qra {
namespace {

TEST(DirectivesTest, ClassicalDirective)
{
    const std::string text = R"(OPENQASM 2.0;
qreg q[2];
creg c[2];
x q[0];
// qra:assert-classical q[0] == 1
measure q[0] -> c[0];
measure q[1] -> c[1];
)";
    const AnnotatedProgram program = parseAnnotatedQasm(text);
    ASSERT_EQ(program.specs.size(), 1u);
    EXPECT_EQ(program.specs[0].insertAt, 1u); // after x q[0]
    EXPECT_EQ(program.specs[0].assertion->kind(),
              AssertionKind::Classical);
    EXPECT_EQ(program.payload.size(), 3u);

    const InstrumentedCircuit inst = instrumentAnnotatedQasm(text);
    StatevectorSimulator sim(1);
    const Result r = sim.run(inst.circuit(), 500);
    for (const auto &[reg, n] : r.rawCounts())
        EXPECT_TRUE(inst.passed(reg)) << reg;
}

TEST(DirectivesTest, ClassicalMultiQubitMsbFirst)
{
    // Value "10" with qubits listed q[1], q[0]: q1 = 1, q0 = 0.
    const std::string text = R"(OPENQASM 2.0;
qreg q[2];
x q[1];
// qra:assert-classical q[1], q[0] == 10
)";
    const InstrumentedCircuit inst = instrumentAnnotatedQasm(text);
    StatevectorSimulator sim(2);
    const Result r = sim.run(inst.circuit(), 300);
    for (const auto &[reg, n] : r.rawCounts())
        EXPECT_TRUE(inst.passed(reg)) << reg;
}

TEST(DirectivesTest, SuperpositionDirectivePlusAndMinus)
{
    const std::string plus_text = R"(OPENQASM 2.0;
qreg q[1];
h q[0];
// qra:assert-superposition q[0] +
)";
    const InstrumentedCircuit plus =
        instrumentAnnotatedQasm(plus_text);
    StatevectorSimulator sim(3);
    const Result rp = sim.run(plus.circuit(), 500);
    for (const auto &[reg, n] : rp.rawCounts())
        EXPECT_TRUE(plus.passed(reg));

    const std::string minus_text = R"(OPENQASM 2.0;
qreg q[1];
x q[0];
h q[0];
// qra:assert-superposition q[0] -
)";
    const InstrumentedCircuit minus =
        instrumentAnnotatedQasm(minus_text);
    const Result rm = sim.run(minus.circuit(), 500);
    for (const auto &[reg, n] : rm.rawCounts())
        EXPECT_TRUE(minus.passed(reg));
}

TEST(DirectivesTest, EntangledDirectiveWithModes)
{
    const std::string text = R"(OPENQASM 2.0;
qreg q[3];
h q[0];
cx q[0], q[1];
cx q[1], q[2];
// qra:assert-entangled q[0], q[1], q[2] chain
)";
    const AnnotatedProgram program = parseAnnotatedQasm(text);
    ASSERT_EQ(program.specs.size(), 1u);
    EXPECT_EQ(program.specs[0].insertAt, 3u);
    EXPECT_EQ(program.specs[0].assertion->numAncillas(), 2u);

    const InstrumentedCircuit inst = instrumentAnnotatedQasm(text);
    StatevectorSimulator sim(4);
    const Result r = sim.run(inst.circuit(), 500);
    for (const auto &[reg, n] : r.rawCounts())
        EXPECT_TRUE(inst.passed(reg));
}

TEST(DirectivesTest, OddParityDirective)
{
    const std::string text = R"(OPENQASM 2.0;
qreg q[2];
h q[0];
cx q[0], q[1];
x q[1];
// qra:assert-entangled q[0], q[1] odd
)";
    const InstrumentedCircuit inst = instrumentAnnotatedQasm(text);
    StatevectorSimulator sim(5);
    const Result r = sim.run(inst.circuit(), 500);
    for (const auto &[reg, n] : r.rawCounts())
        EXPECT_TRUE(inst.passed(reg));
}

TEST(DirectivesTest, DirectivePositionMatters)
{
    // The check sits between x and h: it must see |1>, not H|1>.
    const std::string text = R"(OPENQASM 2.0;
qreg q[1];
x q[0];
// qra:assert-classical q[0] == 1
h q[0];
)";
    const AnnotatedProgram program = parseAnnotatedQasm(text);
    EXPECT_EQ(program.specs[0].insertAt, 1u);

    const InstrumentedCircuit inst = instrumentAnnotatedQasm(text);
    StatevectorSimulator sim(6);
    const Result r = sim.run(inst.circuit(), 500);
    for (const auto &[reg, n] : r.rawCounts())
        EXPECT_TRUE(inst.passed(reg));
}

TEST(DirectivesTest, MultipleDirectives)
{
    const std::string text = R"(OPENQASM 2.0;
qreg q[2];
creg c[2];
// qra:assert-classical q[0] == 0
h q[0];
// qra:assert-superposition q[0] +
cx q[0], q[1];
// qra:assert-entangled q[0], q[1]
measure q[0] -> c[0];
measure q[1] -> c[1];
)";
    const AnnotatedProgram program = parseAnnotatedQasm(text);
    ASSERT_EQ(program.specs.size(), 3u);
    EXPECT_EQ(program.specs[0].insertAt, 0u);
    EXPECT_EQ(program.specs[1].insertAt, 1u);
    EXPECT_EQ(program.specs[2].insertAt, 2u);

    const InstrumentedCircuit inst = instrumentAnnotatedQasm(text);
    StatevectorSimulator sim(7);
    const Result r = sim.run(inst.circuit(), 1000);
    for (const auto &[reg, n] : r.rawCounts()) {
        EXPECT_TRUE(inst.passed(reg)) << reg;
        const std::uint64_t payload = inst.payloadBits(reg);
        EXPECT_TRUE(payload == 0b00 || payload == 0b11) << payload;
    }
}

TEST(DirectivesTest, DetectsPlantedBug)
{
    // Missing H: the superposition directive fires ~50%.
    const std::string text = R"(OPENQASM 2.0;
qreg q[1];
// qra:assert-superposition q[0] +
)";
    const InstrumentedCircuit inst = instrumentAnnotatedQasm(text);
    StatevectorSimulator sim(8);
    const Result r = sim.run(inst.circuit(), 20000);
    double errors = 0.0;
    for (const auto &[reg, n] : r.rawCounts())
        if (!inst.passed(reg))
            errors += double(n) / double(r.shots());
    EXPECT_NEAR(errors, 0.5, 0.02);
}

TEST(DirectivesTest, MalformedDirectivesThrow)
{
    const char *bad_texts[] = {
        // Unknown directive name.
        "OPENQASM 2.0;\nqreg q[1];\n// qra:assert-frobnicate "
        "q[0]\n",
        // Classical without value.
        "OPENQASM 2.0;\nqreg q[1];\n// qra:assert-classical q[0]\n",
        // Width mismatch.
        "OPENQASM 2.0;\nqreg q[2];\n// qra:assert-classical q[0] == "
        "10\n",
        // Superposition on two qubits.
        "OPENQASM 2.0;\nqreg q[2];\n// qra:assert-superposition "
        "q[0], q[1] +\n",
        // No qubits.
        "OPENQASM 2.0;\nqreg q[1];\n// qra:assert-entangled\n",
        // Bad qubit token.
        "OPENQASM 2.0;\nqreg q[1];\n// qra:assert-classical foo == "
        "0\n",
    };
    for (const char *text : bad_texts)
        EXPECT_THROW(parseAnnotatedQasm(text), QasmError) << text;
}

TEST(DirectivesTest, PostselectDirectiveStillWorks)
{
    // qra:postselect (the QASM exporter's directive) is not an
    // assertion directive and must flow into the payload.
    const std::string text = R"(OPENQASM 2.0;
qreg q[1];
h q[0];
// qra:postselect q[0] == 1
// qra:assert-classical q[0] == 1
)";
    const AnnotatedProgram program = parseAnnotatedQasm(text);
    ASSERT_EQ(program.specs.size(), 1u);
    EXPECT_EQ(program.payload.size(), 2u); // h + postselect
    EXPECT_EQ(program.specs[0].insertAt, 2u);

    const InstrumentedCircuit inst = instrumentAnnotatedQasm(text);
    StatevectorSimulator sim(9);
    const Result r = sim.run(inst.circuit(), 300);
    for (const auto &[reg, n] : r.rawCounts())
        EXPECT_TRUE(inst.passed(reg)) << reg;
}

} // namespace
} // namespace qra
