/** @file Tests for the entanglement assertion (paper Sec. 3.2). */

#include <gtest/gtest.h>

#include "assertions/entanglement_assertion.hh"
#include "assertions/injector.hh"
#include "common/error.hh"
#include "sim/statevector_simulator.hh"
#include "stabilizer/stabilizer_simulator.hh"
#include "testutil.hh"

namespace qra {
namespace {

using Parity = EntanglementAssertion::Parity;
using Mode = EntanglementAssertion::Mode;

InstrumentedCircuit
withCheck(const Circuit &payload, std::vector<Qubit> targets,
          Parity parity = Parity::Even, Mode mode = Mode::PairParity)
{
    AssertionSpec spec;
    spec.assertion = std::make_shared<EntanglementAssertion>(
        targets.size(), parity, mode);
    spec.targets = std::move(targets);
    spec.insertAt = payload.size();
    return instrument(payload, {spec});
}

TEST(EntanglementAssertionTest, ArityAndValidation)
{
    EntanglementAssertion a(2);
    EXPECT_EQ(a.kind(), AssertionKind::Entanglement);
    EXPECT_EQ(a.numTargets(), 2u);
    EXPECT_EQ(a.numAncillas(), 1u);
    EXPECT_THROW(EntanglementAssertion(1), AssertionError);
    EXPECT_THROW(EntanglementAssertion(3, Parity::Odd),
                 AssertionError);

    EntanglementAssertion chain(4, Parity::Even, Mode::Chain);
    EXPECT_EQ(chain.numAncillas(), 3u);
}

TEST(EntanglementAssertionTest, EvenCnotCountRule)
{
    // Paper Sec. 3.2: always an even number of CNOTs.
    EXPECT_EQ(EntanglementAssertion(2).pairParityCnotCount(), 2u);
    EXPECT_EQ(EntanglementAssertion(3).pairParityCnotCount(), 4u);
    EXPECT_EQ(EntanglementAssertion(4).pairParityCnotCount(), 4u);
    EXPECT_EQ(EntanglementAssertion(5).pairParityCnotCount(), 6u);
}

TEST(EntanglementAssertionTest, BellPairPasses)
{
    Circuit payload(2, 0);
    payload.h(0).cx(0, 1);
    const InstrumentedCircuit inst = withCheck(payload, {0, 1});
    StatevectorSimulator sim(1);
    const Result r = sim.run(inst.circuit(), 1000);
    for (const auto &[reg, n] : r.rawCounts())
        EXPECT_TRUE(inst.passed(reg)) << reg;
}

TEST(EntanglementAssertionTest, OddParityBellPasses)
{
    // |01> + |10> with the Odd variant.
    Circuit payload(2, 0);
    payload.h(0).cx(0, 1).x(1);
    const InstrumentedCircuit inst =
        withCheck(payload, {0, 1}, Parity::Odd);
    StatevectorSimulator sim(2);
    const Result r = sim.run(inst.circuit(), 1000);
    for (const auto &[reg, n] : r.rawCounts())
        EXPECT_TRUE(inst.passed(reg)) << reg;
}

TEST(EntanglementAssertionTest, OddParityStateFailsEvenCheck)
{
    Circuit payload(2, 0);
    payload.h(0).cx(0, 1).x(1); // |01>+|10>
    const InstrumentedCircuit inst =
        withCheck(payload, {0, 1}, Parity::Even);
    StatevectorSimulator sim(3);
    const Result r = sim.run(inst.circuit(), 1000);
    for (const auto &[reg, n] : r.rawCounts())
        EXPECT_FALSE(inst.passed(reg)) << reg;
}

TEST(EntanglementAssertionTest, ProductStateErrorsHalfTheTime)
{
    // |+>|+> has all four parities equally: error rate 1/2.
    Circuit payload(2, 0);
    payload.h(0).h(1);
    const InstrumentedCircuit inst = withCheck(payload, {0, 1});
    StatevectorSimulator sim(4);
    const Result r = sim.run(inst.circuit(), 40000);
    double error = 0.0;
    for (const auto &[reg, n] : r.rawCounts())
        if (!inst.passed(reg))
            error += double(n) / double(r.shots());
    EXPECT_NEAR(error, 0.5, 0.02);
}

TEST(EntanglementAssertionTest, AncillaDisentanglesOnBellInput)
{
    // Paper proof: |psi3> = |psi> (x) |0>; the Bell pair must be
    // untouched and the ancilla pure after the check.
    Circuit payload(2, 0);
    payload.h(0).cx(0, 1);

    AssertionSpec spec;
    spec.assertion = std::make_shared<EntanglementAssertion>(2);
    spec.targets = {0, 1};
    spec.insertAt = payload.size();
    const InstrumentedCircuit inst = instrument(payload, {spec});

    // Drop the ancilla measurement to inspect the pre-measurement
    // state: the ancilla must already be |0> and unentangled.
    Circuit no_measure(inst.circuit().numQubits(), 0);
    for (const Operation &op : inst.circuit().ops())
        if (op.kind != OpKind::Measure && op.kind != OpKind::Barrier)
            no_measure.append(op);

    StatevectorSimulator sim(5);
    const StateVector sv = sim.finalState(no_measure);
    const Qubit ancilla = inst.checks()[0].ancillas[0];
    EXPECT_NEAR(sv.probabilityOfOne(ancilla), 0.0, 1e-9);
    EXPECT_NEAR(sv.qubitPurity(ancilla), 1.0, 1e-9);
    // Bell pair intact.
    EXPECT_NEAR(std::abs(sv.amplitude(0b00)), kInvSqrt2, 1e-9);
    EXPECT_NEAR(std::abs(sv.amplitude(0b11)), kInvSqrt2, 1e-9);
}

TEST(EntanglementAssertionTest, PassingCheckForcesEntangledState)
{
    // Paper: a product state passing the check is projected into the
    // even-parity (entangled) subspace.
    Circuit payload(2, 0);
    payload.h(0).h(1);

    AssertionSpec spec;
    spec.assertion = std::make_shared<EntanglementAssertion>(2);
    spec.targets = {0, 1};
    spec.insertAt = payload.size();
    const InstrumentedCircuit inst = instrument(payload, {spec});

    Circuit conditioned = inst.circuit();
    conditioned.postSelect(inst.checks()[0].ancillas[0], 0);
    StatevectorSimulator sim(6);
    const StateVector sv = sim.finalState(conditioned);
    // All weight on even-parity basis states of the two targets.
    const auto marginal = sv.marginalProbabilities({0, 1});
    EXPECT_NEAR(marginal[0b01] + marginal[0b10], 0.0, 1e-9);
    EXPECT_NEAR(marginal[0b00] + marginal[0b11], 1.0, 1e-9);
}

TEST(EntanglementAssertionTest, GhzPassesWithEvenCnots)
{
    Circuit payload(3, 0);
    payload.h(0).cx(0, 1).cx(1, 2);
    const InstrumentedCircuit inst = withCheck(payload, {0, 1, 2});
    StatevectorSimulator sim(7);
    const Result r = sim.run(inst.circuit(), 1000);
    for (const auto &[reg, n] : r.rawCounts())
        EXPECT_TRUE(inst.passed(reg)) << reg;
}

TEST(EntanglementAssertionTest, GhzStateUnperturbedByCheck)
{
    Circuit payload(3, 0);
    payload.h(0).cx(0, 1).cx(1, 2);

    AssertionSpec spec;
    spec.assertion = std::make_shared<EntanglementAssertion>(3);
    spec.targets = {0, 1, 2};
    spec.insertAt = payload.size();
    const InstrumentedCircuit inst = instrument(payload, {spec});

    StatevectorSimulator sim(8);
    const StateVector sv =
        sim.evolveWithMeasurements(inst.circuit());
    // GHZ amplitudes survive the ancilla measurement.
    const auto marginal = sv.marginalProbabilities({0, 1, 2});
    EXPECT_NEAR(marginal[0b000], 0.5, 1e-9);
    EXPECT_NEAR(marginal[0b111], 0.5, 1e-9);
}

TEST(EntanglementAssertionTest, ChainModeCatchesPartialEntanglement)
{
    // Bell(0,1) (x) |0>_2 pretending to be a 3-qubit GHZ: the pair
    // (1,2) parity check must flag it with probability 1/2, while the
    // PairParity single check on (0,1)-ish parity may miss it.
    Circuit payload(3, 0);
    payload.h(0).cx(0, 1);

    const InstrumentedCircuit chain = withCheck(
        payload, {0, 1, 2}, Parity::Even, Mode::Chain);
    StatevectorSimulator sim(9);
    const Result r = sim.run(chain.circuit(), 20000);
    double flagged = 0.0;
    for (const auto &[reg, n] : r.rawCounts())
        if (!chain.passed(reg))
            flagged += double(n) / double(r.shots());
    EXPECT_NEAR(flagged, 0.5, 0.02);
}

TEST(EntanglementAssertionTest, ChainModeAncillasDisentangle)
{
    Circuit payload(4, 0);
    payload.h(0).cx(0, 1).cx(1, 2).cx(2, 3);

    AssertionSpec spec;
    spec.assertion = std::make_shared<EntanglementAssertion>(
        4, Parity::Even, Mode::Chain);
    spec.targets = {0, 1, 2, 3};
    spec.insertAt = payload.size();
    const InstrumentedCircuit inst = instrument(payload, {spec});

    Circuit no_measure(inst.circuit().numQubits(), 0);
    for (const Operation &op : inst.circuit().ops())
        if (op.kind != OpKind::Measure && op.kind != OpKind::Barrier)
            no_measure.append(op);

    StatevectorSimulator sim(10);
    const StateVector sv = sim.finalState(no_measure);
    for (const Qubit anc : inst.checks()[0].ancillas) {
        EXPECT_NEAR(sv.probabilityOfOne(anc), 0.0, 1e-9) << anc;
        EXPECT_NEAR(sv.qubitPurity(anc), 1.0, 1e-9) << anc;
    }
}

TEST(EntanglementAssertionTest, FullModeAcceptsGhzStates)
{
    for (std::size_t n : {2u, 3u, 4u}) {
        Circuit payload(n, 0);
        payload.h(0);
        for (Qubit q = 0; q + 1 < n; ++q)
            payload.cx(q, q + 1);
        std::vector<Qubit> targets(n);
        for (Qubit q = 0; q < n; ++q)
            targets[q] = q;
        const InstrumentedCircuit inst = withCheck(
            payload, targets, Parity::Even, Mode::Full);
        StatevectorSimulator sim(11);
        const Result r = sim.run(inst.circuit(), 500);
        for (const auto &[reg, cnt] : r.rawCounts())
            EXPECT_TRUE(inst.passed(reg)) << "n=" << n << " " << reg;
    }
}

TEST(EntanglementAssertionTest, FullModeCatchesPhaseFlip)
{
    // Phi- passes the paper's parity check but fails the X-type
    // stabiliser measurement deterministically.
    Circuit payload(2, 0);
    payload.h(0).cx(0, 1).z(0); // (|00> - |11>)/sqrt2

    const InstrumentedCircuit parity_only =
        withCheck(payload, {0, 1}, Parity::Even, Mode::PairParity);
    StatevectorSimulator sim(12);
    const Result rp = sim.run(parity_only.circuit(), 500);
    for (const auto &[reg, cnt] : rp.rawCounts())
        EXPECT_TRUE(parity_only.passed(reg)) << "parity is blind";

    const InstrumentedCircuit full =
        withCheck(payload, {0, 1}, Parity::Even, Mode::Full);
    const Result rf = sim.run(full.circuit(), 500);
    for (const auto &[reg, cnt] : rf.rawCounts())
        EXPECT_FALSE(full.passed(reg)) << "full mode must catch it";
}

TEST(EntanglementAssertionTest, FullModeCatchesGhzPhaseBug)
{
    Circuit payload(3, 0);
    payload.h(0).cx(0, 1).cx(1, 2).z(2); // phase-broken GHZ
    const InstrumentedCircuit inst =
        withCheck(payload, {0, 1, 2}, Parity::Even, Mode::Full);
    StatevectorSimulator sim(13);
    const Result r = sim.run(inst.circuit(), 500);
    for (const auto &[reg, cnt] : r.rawCounts())
        EXPECT_FALSE(inst.passed(reg)) << reg;
}

TEST(EntanglementAssertionTest, FullModeFlagsAmplitudeImbalance)
{
    // a|00> + b|11> with a != b: Z-checks silent, X-check fires
    // with probability |a - b|^2 / 2.
    const double theta = 1.1;
    Circuit payload(2, 0);
    payload.ry(theta, 0).cx(0, 1);

    const InstrumentedCircuit inst =
        withCheck(payload, {0, 1}, Parity::Even, Mode::Full);
    StatevectorSimulator sim(14);
    const Result r = sim.run(inst.circuit(), 40000);
    double error = 0.0;
    for (const auto &[reg, cnt] : r.rawCounts())
        if (!inst.passed(reg))
            error += double(cnt) / double(r.shots());
    const double a = std::cos(theta / 2.0);
    const double b = std::sin(theta / 2.0);
    EXPECT_NEAR(error, (a - b) * (a - b) / 2.0, 0.01);
}

TEST(EntanglementAssertionTest, FullModeIsClifford)
{
    // The complete stabiliser check still runs on the tableau
    // backend (scales to wide registers).
    Circuit payload(2, 0);
    payload.h(0).cx(0, 1);
    const InstrumentedCircuit inst =
        withCheck(payload, {0, 1}, Parity::Even, Mode::Full);
    EXPECT_TRUE(StabilizerSimulator::supports(inst.circuit()));
    StabilizerSimulator sim(15);
    const Result r = sim.run(inst.circuit(), 300);
    for (const auto &[reg, cnt] : r.rawCounts())
        EXPECT_TRUE(inst.passed(reg)) << reg;
}

TEST(EntanglementAssertionTest, FullModeGhzSurvivesCheck)
{
    Circuit payload(3, 0);
    payload.h(0).cx(0, 1).cx(1, 2);
    AssertionSpec spec;
    spec.assertion = std::make_shared<EntanglementAssertion>(
        3, Parity::Even, Mode::Full);
    spec.targets = {0, 1, 2};
    spec.insertAt = payload.size();
    const InstrumentedCircuit inst = instrument(payload, {spec});

    StatevectorSimulator sim(16);
    const StateVector sv =
        sim.evolveWithMeasurements(inst.circuit());
    const auto marginal = sv.marginalProbabilities({0, 1, 2});
    EXPECT_NEAR(marginal[0b000], 0.5, 1e-9);
    EXPECT_NEAR(marginal[0b111], 0.5, 1e-9);
}

TEST(EntanglementAssertionTest, DescribeMentionsModeAndParity)
{
    EXPECT_NE(EntanglementAssertion(2).describe().find("entangled"),
              std::string::npos);
    EXPECT_NE(EntanglementAssertion(2, Parity::Odd)
                  .describe()
                  .find("a|01>+b|10>"),
              std::string::npos);
    EXPECT_NE(EntanglementAssertion(3, Parity::Even, Mode::Chain)
                  .describe()
                  .find("chain"),
              std::string::npos);
}

} // namespace
} // namespace qra
