/** @file Tests for the superposition assertion (paper Sec. 3.3). */

#include <cmath>

#include <gtest/gtest.h>

#include "assertions/injector.hh"
#include "assertions/superposition_assertion.hh"
#include "common/error.hh"
#include "sim/statevector_simulator.hh"
#include "testutil.hh"

namespace qra {
namespace {

using Target = SuperpositionAssertion::Target;

InstrumentedCircuit
withCheck(const Circuit &payload,
          std::shared_ptr<const Assertion> assertion, Qubit target)
{
    AssertionSpec spec;
    spec.assertion = std::move(assertion);
    spec.targets = {target};
    spec.insertAt = payload.size();
    return instrument(payload, {spec});
}

double
errorRate(const InstrumentedCircuit &inst, const Result &r)
{
    double error = 0.0;
    for (const auto &[reg, n] : r.rawCounts())
        if (!inst.passed(reg))
            error += double(n) / double(r.shots());
    return error;
}

TEST(SuperpositionAssertionTest, ArityAndValidation)
{
    SuperpositionAssertion a(Target::Plus);
    EXPECT_EQ(a.kind(), AssertionKind::Superposition);
    EXPECT_EQ(a.numTargets(), 1u);
    EXPECT_EQ(a.numAncillas(), 1u);
    EXPECT_THROW(SuperpositionAssertion(Target::Basis),
                 AssertionError);
}

TEST(SuperpositionAssertionTest, PlusStateNeverErrors)
{
    Circuit payload(1, 0);
    payload.h(0);
    const InstrumentedCircuit inst = withCheck(
        payload, std::make_shared<SuperpositionAssertion>(), 0);
    StatevectorSimulator sim(1);
    const Result r = sim.run(inst.circuit(), 2000);
    EXPECT_DOUBLE_EQ(errorRate(inst, r), 0.0);
}

TEST(SuperpositionAssertionTest, MinusStateAlwaysErrorsPlusCheck)
{
    Circuit payload(1, 0);
    payload.x(0).h(0); // |->
    const InstrumentedCircuit inst = withCheck(
        payload, std::make_shared<SuperpositionAssertion>(), 0);
    StatevectorSimulator sim(2);
    const Result r = sim.run(inst.circuit(), 2000);
    EXPECT_DOUBLE_EQ(errorRate(inst, r), 1.0);
}

TEST(SuperpositionAssertionTest, MinusVariantAcceptsMinus)
{
    Circuit payload(1, 0);
    payload.x(0).h(0); // |->
    const InstrumentedCircuit inst = withCheck(
        payload,
        std::make_shared<SuperpositionAssertion>(Target::Minus), 0);
    StatevectorSimulator sim(3);
    const Result r = sim.run(inst.circuit(), 2000);
    EXPECT_DOUBLE_EQ(errorRate(inst, r), 0.0);

    // And rejects |+> deterministically.
    Circuit plus(1, 0);
    plus.h(0);
    const InstrumentedCircuit inst2 = withCheck(
        plus, std::make_shared<SuperpositionAssertion>(Target::Minus),
        0);
    const Result r2 = sim.run(inst2.circuit(), 2000);
    EXPECT_DOUBLE_EQ(errorRate(inst2, r2), 1.0);
}

TEST(SuperpositionAssertionTest, ClassicalInputErrorsHalfTheTime)
{
    // Paper Sec. 3.3: classical |0> or |1> input gives a 50% error
    // rate on the |+> check.
    for (int bit : {0, 1}) {
        Circuit payload(1, 0);
        if (bit)
            payload.x(0);
        const InstrumentedCircuit inst = withCheck(
            payload, std::make_shared<SuperpositionAssertion>(), 0);
        StatevectorSimulator sim(4 + bit);
        const Result r = sim.run(inst.circuit(), 40000);
        EXPECT_NEAR(errorRate(inst, r), 0.5, 0.02) << bit;
    }
}

TEST(SuperpositionAssertionTest, ErrorProbabilityClosedForm)
{
    // For real a, b: P(error) = (1 - 2ab)/2 (paper derivation).
    for (double theta : {0.4, 1.0, M_PI / 2, 2.0, 2.8}) {
        const double a = std::cos(theta / 2.0);
        const double b = std::sin(theta / 2.0);
        Circuit payload(1, 0);
        payload.ry(theta, 0);
        const InstrumentedCircuit inst = withCheck(
            payload, std::make_shared<SuperpositionAssertion>(), 0);
        StatevectorSimulator sim(6);
        const Result r = sim.run(inst.circuit(), 40000);
        EXPECT_NEAR(errorRate(inst, r), (1.0 - 2.0 * a * b) / 2.0,
                    0.02)
            << theta;
    }
}

TEST(SuperpositionAssertionTest, AncillaUnentangledOnPlusInput)
{
    Circuit payload(1, 0);
    payload.h(0);
    AssertionSpec spec;
    spec.assertion = std::make_shared<SuperpositionAssertion>();
    spec.targets = {0};
    spec.insertAt = payload.size();
    const InstrumentedCircuit inst = instrument(payload, {spec});

    Circuit no_measure(inst.circuit().numQubits(), 0);
    for (const Operation &op : inst.circuit().ops())
        if (op.kind != OpKind::Measure && op.kind != OpKind::Barrier)
            no_measure.append(op);

    StatevectorSimulator sim(7);
    const StateVector sv = sim.finalState(no_measure);
    const Qubit anc = inst.checks()[0].ancillas[0];
    EXPECT_NEAR(sv.probabilityOfOne(anc), 0.0, 1e-9);
    EXPECT_NEAR(sv.qubitPurity(anc), 1.0, 1e-9);
    // The target is still |+>.
    EXPECT_NEAR(sv.probabilityOfOne(0), 0.5, 1e-9);
}

TEST(SuperpositionAssertionTest, ClassicalInputForcedIntoSuperposition)
{
    // Paper Fig. 7 effect: classical input + measured ancilla leaves
    // the target in an equal superposition either way.
    for (int outcome : {0, 1}) {
        Circuit payload(1, 0);
        payload.x(0);
        AssertionSpec spec;
        spec.assertion = std::make_shared<SuperpositionAssertion>();
        spec.targets = {0};
        spec.insertAt = payload.size();
        const InstrumentedCircuit inst = instrument(payload, {spec});

        Circuit conditioned = inst.circuit();
        conditioned.postSelect(inst.checks()[0].ancillas[0], outcome);
        StatevectorSimulator sim(8);
        const StateVector sv = sim.finalState(conditioned);
        EXPECT_NEAR(sv.probabilityOfOne(0), 0.5, 1e-9)
            << "ancilla outcome " << outcome;
    }
}

TEST(SuperpositionAssertionTest, BasisModeAcceptsMatchingState)
{
    const double theta = 1.1, phi = 0.6;
    Circuit payload(1, 0);
    payload.u(theta, phi, 0.0, 0);
    const InstrumentedCircuit inst = withCheck(
        payload,
        std::make_shared<SuperpositionAssertion>(theta, phi), 0);
    StatevectorSimulator sim(9);
    const Result r = sim.run(inst.circuit(), 2000);
    EXPECT_NEAR(errorRate(inst, r), 0.0, 1e-12);
}

TEST(SuperpositionAssertionTest, BasisModeRestoresTargetState)
{
    const double theta = 0.8, phi = -0.4;
    Circuit payload(1, 0);
    payload.u(theta, phi, 0.0, 0);

    AssertionSpec spec;
    spec.assertion =
        std::make_shared<SuperpositionAssertion>(theta, phi);
    spec.targets = {0};
    spec.insertAt = payload.size();
    const InstrumentedCircuit inst = instrument(payload, {spec});

    StatevectorSimulator sim(10);
    const StateVector after =
        sim.evolveWithMeasurements(inst.circuit());

    StateVector expected = test::makeSingleQubitState(
        theta, phi, inst.circuit().numQubits());
    EXPECT_NEAR(after.probabilityOfOne(0),
                expected.probabilityOfOne(0), 1e-9);
    EXPECT_NEAR(after.qubitPurity(0), 1.0, 1e-9);
}

TEST(SuperpositionAssertionTest, BasisModeErrorIsOrthogonalOverlap)
{
    // Prepared RY(t1), asserted RY(t2): P(error) = sin^2((t1-t2)/2).
    const double t1 = 2.0, t2 = 0.7;
    Circuit payload(1, 0);
    payload.ry(t1, 0);
    const InstrumentedCircuit inst = withCheck(
        payload, std::make_shared<SuperpositionAssertion>(t2, 0.0),
        0);
    StatevectorSimulator sim(11);
    const Result r = sim.run(inst.circuit(), 40000);
    const double expected = std::pow(std::sin((t1 - t2) / 2.0), 2);
    EXPECT_NEAR(errorRate(inst, r), expected, 0.02);
}

TEST(SuperpositionAssertionTest, Describe)
{
    EXPECT_EQ(SuperpositionAssertion().describe(),
              "assert qubit == |+>");
    EXPECT_EQ(SuperpositionAssertion(Target::Minus).describe(),
              "assert qubit == |->");
    EXPECT_NE(SuperpositionAssertion(0.5, 0.25).describe().find("U("),
              std::string::npos);
}

} // namespace
} // namespace qra
