/** @file Tests for amplitude estimation from assertion statistics. */

#include <cmath>

#include <gtest/gtest.h>

#include "assertions/amplitude_estimator.hh"
#include "assertions/classical_assertion.hh"
#include "assertions/injector.hh"
#include "assertions/superposition_assertion.hh"
#include "common/error.hh"
#include "sim/statevector_simulator.hh"

namespace qra {
namespace {

TEST(AmplitudeEstimatorTest, ClassicalPointEstimates)
{
    const auto est = estimateFromClassicalAssertion(2500, 10000);
    EXPECT_NEAR(est.probOne.value, 0.25, 1e-12);
    EXPECT_NEAR(est.probZero.value, 0.75, 1e-12);
    EXPECT_GT(est.probOne.halfWidth95, 0.0);
    EXPECT_LT(est.probOne.halfWidth95, 0.02);
}

TEST(AmplitudeEstimatorTest, ClassicalValidation)
{
    EXPECT_THROW(estimateFromClassicalAssertion(1, 0), ValueError);
    EXPECT_THROW(estimateFromClassicalAssertion(11, 10), ValueError);
}

TEST(AmplitudeEstimatorTest, SuperpositionProductFormula)
{
    // P(error) = 0 -> ab = 1/2 (exactly |+>).
    const auto plus = estimateFromSuperpositionAssertion(0, 10000);
    EXPECT_NEAR(plus.product.value, 0.5, 1e-12);
    EXPECT_FALSE(plus.clamped);
    ASSERT_TRUE(plus.probMajor.has_value());
    EXPECT_NEAR(*plus.probMajor, 0.5, 1e-9);
    EXPECT_NEAR(*plus.probMinor, 0.5, 1e-9);

    // P(error) = 1/2 -> ab = 0 (classical state), exactly on the
    // physical boundary: no clamp.
    const auto classical =
        estimateFromSuperpositionAssertion(5000, 10000);
    EXPECT_NEAR(classical.product.value, 0.0, 1e-12);
    EXPECT_FALSE(classical.clamped);
    ASSERT_TRUE(classical.probMajor.has_value());
    EXPECT_NEAR(*classical.probMajor, 1.0, 1e-9);
    EXPECT_NEAR(*classical.probMinor, 0.0, 1e-9);
}

TEST(AmplitudeEstimatorTest, UnphysicalStatisticIsClampedAndFlagged)
{
    // P(error) > 1/2 means ab < 0 — impossible for the non-negative
    // amplitudes the estimator assumes, so it can only be sampling
    // noise. The product is clamped to the boundary and flagged, and
    // the root solve still returns a valid (boundary) split.
    for (std::size_t errors : {5001u, 6000u, 9000u, 10000u}) {
        const auto est =
            estimateFromSuperpositionAssertion(errors, 10000);
        EXPECT_TRUE(est.clamped) << errors;
        EXPECT_DOUBLE_EQ(est.product.value, 0.0) << errors;
        ASSERT_TRUE(est.probMajor.has_value()) << errors;
        EXPECT_NEAR(*est.probMajor, 1.0, 1e-12);
        EXPECT_NEAR(*est.probMinor, 0.0, 1e-12);
    }
}

TEST(AmplitudeEstimatorTest, RootsAlwaysDefinedAndNormalised)
{
    for (std::size_t errors : {0u, 100u, 5000u, 9000u, 10000u}) {
        const auto est =
            estimateFromSuperpositionAssertion(errors, 10000);
        EXPECT_TRUE(est.probMajor.has_value()) << errors;
        EXPECT_GE(*est.probMajor, *est.probMinor);
        EXPECT_NEAR(*est.probMajor + *est.probMinor, 1.0, 1e-9);
        EXPECT_GE(est.product.value, 0.0);
        EXPECT_LE(est.product.value, 0.5);
    }
}

TEST(AmplitudeEstimatorTest, EndToEndClassicalEstimation)
{
    // Prepare RY(theta), assert ==|0>, estimate |b|^2 from errors.
    const double theta = 1.2;
    const double b2 = std::pow(std::sin(theta / 2.0), 2);

    Circuit payload(1, 0);
    payload.ry(theta, 0);
    AssertionSpec spec;
    spec.assertion = std::make_shared<ClassicalAssertion>(0);
    spec.targets = {0};
    spec.insertAt = 1;
    const InstrumentedCircuit inst = instrument(payload, {spec});

    StatevectorSimulator sim(9);
    const Result r = sim.run(inst.circuit(), 50000);
    std::size_t errors = 0;
    for (const auto &[reg, n] : r.rawCounts())
        if (!inst.passed(reg))
            errors += n;

    const auto est =
        estimateFromClassicalAssertion(errors, r.shots());
    EXPECT_NEAR(est.probOne.value, b2, 3.0 * est.probOne.halfWidth95);
}

TEST(AmplitudeEstimatorTest, EndToEndSuperpositionEstimation)
{
    const double theta = 0.9;
    const double ab =
        std::cos(theta / 2.0) * std::sin(theta / 2.0);

    Circuit payload(1, 0);
    payload.ry(theta, 0);
    AssertionSpec spec;
    spec.assertion = std::make_shared<SuperpositionAssertion>();
    spec.targets = {0};
    spec.insertAt = 1;
    const InstrumentedCircuit inst = instrument(payload, {spec});

    StatevectorSimulator sim(10);
    const Result r = sim.run(inst.circuit(), 50000);
    std::size_t errors = 0;
    for (const auto &[reg, n] : r.rawCounts())
        if (!inst.passed(reg))
            errors += n;

    const auto est =
        estimateFromSuperpositionAssertion(errors, r.shots());
    EXPECT_NEAR(est.product.value, ab,
                3.0 * est.product.halfWidth95);
}

TEST(AmplitudeEstimatorTest, EstimateStr)
{
    Estimate e{0.25, 0.01};
    EXPECT_NE(e.str().find("0.25"), std::string::npos);
    EXPECT_NE(e.str().find("+/-"), std::string::npos);
}

} // namespace
} // namespace qra
