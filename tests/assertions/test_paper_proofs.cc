/**
 * @file
 * The paper's Section 3 derivations as parameterized property tests.
 *
 * Each TEST_P sweep verifies a closed-form prediction of the proofs
 * in Secs. 3.1-3.3 against exact simulator amplitudes (no sampling),
 * across a grid of input states.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "assertions/classical_assertion.hh"
#include "assertions/entanglement_assertion.hh"
#include "assertions/injector.hh"
#include "assertions/superposition_assertion.hh"
#include "sim/statevector_simulator.hh"
#include "testutil.hh"

namespace qra {
namespace {

/** Build the instrumented circuit, no barriers, check at the end. */
InstrumentedCircuit
instrumented(const Circuit &payload,
             std::shared_ptr<const Assertion> assertion,
             std::vector<Qubit> targets)
{
    AssertionSpec spec;
    spec.assertion = std::move(assertion);
    spec.targets = std::move(targets);
    spec.insertAt = payload.size();
    InstrumentOptions opts;
    opts.barriers = false;
    return instrument(payload, {spec}, opts);
}

/**
 * Exact P(ancilla reads 1) of a single-check instrumentation: evolve
 * unitaries only and inspect the ancilla marginal just before its
 * measurement.
 */
double
exactAncillaErrorProbability(const InstrumentedCircuit &inst)
{
    Circuit no_measure(inst.circuit().numQubits(), 0);
    for (const Operation &op : inst.circuit().ops())
        if (op.kind != OpKind::Measure)
            no_measure.append(op);
    StatevectorSimulator sim(1);
    const StateVector sv = sim.finalState(no_measure);
    return sv.probabilityOfOne(inst.checks()[0].ancillas[0]);
}

// ---------------------------------------------------------------
// Sec. 3.1 sweep: classical assertion on a|0> + b|1>.
// Prediction: P(error) = |b|^2; pass branch projects onto |0>.
// ---------------------------------------------------------------

class ClassicalProofSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(ClassicalProofSweep, ErrorProbabilityEqualsB2)
{
    const double theta = GetParam();
    Circuit payload(1, 0);
    payload.ry(theta, 0);
    const InstrumentedCircuit inst = instrumented(
        payload, std::make_shared<ClassicalAssertion>(0), {0});
    const double expected = std::pow(std::sin(theta / 2.0), 2);
    EXPECT_NEAR(exactAncillaErrorProbability(inst), expected, 1e-10);
}

TEST_P(ClassicalProofSweep, PassBranchProjectsToZero)
{
    const double theta = GetParam();
    // Skip the |1> endpoint where the pass branch has no weight.
    if (std::abs(std::cos(theta / 2.0)) < 1e-6)
        GTEST_SKIP();

    Circuit payload(1, 0);
    payload.ry(theta, 0);
    InstrumentedCircuit inst = instrumented(
        payload, std::make_shared<ClassicalAssertion>(0), {0});
    Circuit conditioned = inst.circuit();
    conditioned.postSelect(inst.checks()[0].ancillas[0], 0);
    StatevectorSimulator sim(2);
    const StateVector sv = sim.finalState(conditioned);
    EXPECT_NEAR(sv.probabilityOfOne(0), 0.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(ThetaGrid, ClassicalProofSweep,
                         ::testing::Values(0.0, 0.25, 0.5, 1.0,
                                           M_PI / 2, 2.0, 2.5, 3.0,
                                           M_PI));

// ---------------------------------------------------------------
// Sec. 3.3 sweep: superposition assertion on a|0> + b|1>, real a, b.
// Predictions: P(error) = (1 - 2ab)/2; either branch forces the
// qubit into an equal-magnitude superposition.
// ---------------------------------------------------------------

class SuperpositionProofSweep
    : public ::testing::TestWithParam<double>
{
};

TEST_P(SuperpositionProofSweep, ErrorProbabilityClosedForm)
{
    const double theta = GetParam();
    const double a = std::cos(theta / 2.0);
    const double b = std::sin(theta / 2.0);
    Circuit payload(1, 0);
    payload.ry(theta, 0);
    const InstrumentedCircuit inst = instrumented(
        payload, std::make_shared<SuperpositionAssertion>(), {0});
    EXPECT_NEAR(exactAncillaErrorProbability(inst),
                (1.0 - 2.0 * a * b) / 2.0, 1e-10);
}

TEST_P(SuperpositionProofSweep, BothBranchesForceEqualSuperposition)
{
    const double theta = GetParam();
    for (int outcome : {0, 1}) {
        const double a = std::cos(theta / 2.0);
        const double b = std::sin(theta / 2.0);
        const double p_branch = outcome
                                    ? (1.0 - 2.0 * a * b) / 2.0
                                    : (1.0 + 2.0 * a * b) / 2.0;
        if (p_branch < 1e-9)
            continue; // empty branch (|+> or |-> exactly)

        Circuit payload(1, 0);
        payload.ry(theta, 0);
        InstrumentedCircuit inst = instrumented(
            payload, std::make_shared<SuperpositionAssertion>(),
            {0});
        Circuit conditioned = inst.circuit();
        conditioned.postSelect(inst.checks()[0].ancillas[0],
                               outcome);
        StatevectorSimulator sim(3);
        const StateVector sv = sim.finalState(conditioned);
        EXPECT_NEAR(sv.probabilityOfOne(0), 0.5, 1e-10)
            << "theta " << theta << " outcome " << outcome;
        EXPECT_NEAR(sv.qubitPurity(0), 1.0, 1e-10);
    }
}

INSTANTIATE_TEST_SUITE_P(ThetaGrid, SuperpositionProofSweep,
                         ::testing::Values(0.0, 0.3, 0.7, M_PI / 2,
                                           1.9, 2.4, 2.9, M_PI));

// ---------------------------------------------------------------
// Sec. 3.2 sweep: entanglement assertion on
// a|00> + b|11> + c|10> + d|01>.
// Predictions: P(error) = |c|^2 + |d|^2; ancilla disentangles on
// parity eigenstates; pass branch projects onto span{|00>, |11>}.
// ---------------------------------------------------------------

struct EntanglementCase
{
    double theta_pair; ///< weight between even/odd parity subspaces
    double theta_in;   ///< rotation inside the even subspace
};

class EntanglementProofSweep
    : public ::testing::TestWithParam<EntanglementCase>
{
  protected:
    /**
     * Prepare a|00> + b|11> + c|10> + d|01> with
     * |c|^2 + |d|^2 = sin^2(theta_pair / 2).
     */
    static Circuit
    preparePayload(const EntanglementCase &param)
    {
        Circuit payload(2, 0);
        // RY on q0 sets the even/odd split after the entangler;
        // RY on q1 before the CX shapes the inner distribution.
        payload.ry(param.theta_in, 0);
        payload.cx(0, 1);
        payload.ry(param.theta_pair, 1);
        return payload;
    }
};

TEST_P(EntanglementProofSweep, ErrorProbabilityIsOddParityWeight)
{
    const EntanglementCase param = GetParam();
    Circuit payload = preparePayload(param);

    // Exact odd-parity weight of the payload state.
    StatevectorSimulator sim(4);
    const StateVector before = sim.finalState(payload);
    const auto marginal = before.marginalProbabilities({0, 1});
    const double odd_weight = marginal[0b01] + marginal[0b10];

    const InstrumentedCircuit inst = instrumented(
        payload, std::make_shared<EntanglementAssertion>(2), {0, 1});
    EXPECT_NEAR(exactAncillaErrorProbability(inst), odd_weight,
                1e-10);
}

TEST_P(EntanglementProofSweep, PassBranchProjectsOntoEvenParity)
{
    const EntanglementCase param = GetParam();
    Circuit payload = preparePayload(param);

    StatevectorSimulator sim(5);
    const StateVector before = sim.finalState(payload);
    const auto marginal_before =
        before.marginalProbabilities({0, 1});
    const double even_weight =
        marginal_before[0b00] + marginal_before[0b11];
    if (even_weight < 1e-9)
        GTEST_SKIP();

    InstrumentedCircuit inst = instrumented(
        payload, std::make_shared<EntanglementAssertion>(2), {0, 1});
    Circuit conditioned = inst.circuit();
    conditioned.postSelect(inst.checks()[0].ancillas[0], 0);
    const StateVector after = sim.finalState(conditioned);
    const auto marginal = after.marginalProbabilities({0, 1});
    EXPECT_NEAR(marginal[0b01] + marginal[0b10], 0.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    PairGrid, EntanglementProofSweep,
    ::testing::Values(EntanglementCase{0.0, M_PI / 2},
                      EntanglementCase{0.0, 1.0},
                      EntanglementCase{0.5, M_PI / 2},
                      EntanglementCase{1.2, 0.8},
                      EntanglementCase{M_PI / 2, M_PI / 2},
                      EntanglementCase{2.2, 1.4},
                      EntanglementCase{M_PI, M_PI / 2}));

// ---------------------------------------------------------------
// The ancilla-disentanglement invariant, swept across kinds: on a
// state that satisfies the asserted property, measuring the ancilla
// must leave the payload state exactly invariant (fidelity 1).
// ---------------------------------------------------------------

TEST(PaperInvariants, PassingAssertionLeavesPayloadInvariant)
{
    struct Case
    {
        Circuit payload;
        std::shared_ptr<const Assertion> assertion;
        std::vector<Qubit> targets;
    };

    std::vector<Case> cases;
    {
        Circuit c(1, 0); // |0> with classical ==0 check
        cases.push_back({c, std::make_shared<ClassicalAssertion>(0),
                         {0}});
    }
    {
        Circuit c(1, 0);
        c.h(0); // |+> with superposition check
        cases.push_back({c, std::make_shared<SuperpositionAssertion>(),
                         {0}});
    }
    {
        Circuit c(2, 0);
        c.h(0).cx(0, 1); // Bell with entanglement check
        cases.push_back({c, std::make_shared<EntanglementAssertion>(2),
                         {0, 1}});
    }
    {
        Circuit c(3, 0);
        c.h(0).cx(0, 1).cx(1, 2); // GHZ
        cases.push_back({c, std::make_shared<EntanglementAssertion>(3),
                         {0, 1, 2}});
    }

    for (std::size_t i = 0; i < cases.size(); ++i) {
        Case &test_case = cases[i];
        const InstrumentedCircuit inst = instrumented(
            test_case.payload, test_case.assertion,
            test_case.targets);

        StatevectorSimulator sim(6);
        const StateVector before =
            sim.finalState(test_case.payload);
        const StateVector after =
            sim.evolveWithMeasurements(inst.circuit());

        // Compare the payload-qubit marginals before and after.
        std::vector<Qubit> payload_qubits(
            test_case.payload.numQubits());
        for (Qubit q = 0; q < payload_qubits.size(); ++q)
            payload_qubits[q] = q;
        const auto m_before =
            before.marginalProbabilities(payload_qubits);
        const auto m_after =
            after.marginalProbabilities(payload_qubits);
        for (std::size_t k = 0; k < m_before.size(); ++k)
            EXPECT_NEAR(m_before[k], m_after[k], 1e-9)
                << "case " << i << " basis " << k;
    }
}

// ---------------------------------------------------------------
// Sec. 3.2's even-CNOT-count warning, verified: an odd number of
// CNOTs on a GHZ state leaves the ancilla entangled, so measuring
// it destroys the GHZ superposition.
// ---------------------------------------------------------------

TEST(PaperInvariants, OddCnotCountCorruptsGhz)
{
    // Hand-build the *wrong* 3-CNOT check the paper warns about.
    Circuit wrong(4, 1);
    wrong.h(0).cx(0, 1).cx(1, 2);        // GHZ on 0,1,2
    wrong.cx(0, 3).cx(1, 3).cx(2, 3);    // 3 CNOTs into ancilla q3
    wrong.measure(3, 0);

    StatevectorSimulator sim(7);
    const StateVector sv = sim.evolveWithMeasurements(wrong);
    // The GHZ superposition has collapsed: the payload is now a
    // classical state (all-zeros or all-ones), not a superposition.
    const auto marginal = sv.marginalProbabilities({0, 1, 2});
    const bool collapsed =
        std::abs(marginal[0b000] - 1.0) < 1e-9 ||
        std::abs(marginal[0b111] - 1.0) < 1e-9;
    EXPECT_TRUE(collapsed);

    // The paper's even-count circuit keeps the superposition alive.
    Circuit right(4, 1);
    right.h(0).cx(0, 1).cx(1, 2);
    right.cx(0, 3).cx(1, 3).cx(2, 3).cx(2, 3); // 4 CNOTs
    right.measure(3, 0);
    const StateVector ok = sim.evolveWithMeasurements(right);
    const auto m_ok = ok.marginalProbabilities({0, 1, 2});
    EXPECT_NEAR(m_ok[0b000], 0.5, 1e-9);
    EXPECT_NEAR(m_ok[0b111], 0.5, 1e-9);
}

} // namespace
} // namespace qra
