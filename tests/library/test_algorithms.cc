/** @file Tests for the algorithm circuit factories. */

#include <cmath>

#include <gtest/gtest.h>

#include "common/error.hh"
#include "library/algorithms.hh"
#include "sim/statevector_simulator.hh"
#include "testutil.hh"

namespace qra {
namespace {

using namespace library;

StateVector
finalState(const Circuit &c)
{
    StatevectorSimulator sim(1);
    return sim.finalState(c);
}

TEST(AlgorithmsTest, BellPairsAllFour)
{
    struct Case
    {
        BellKind kind;
        BasisIndex a, b;
        double sign; // relative sign of the second amplitude
    };
    const Case cases[] = {
        {BellKind::PhiPlus, 0b00, 0b11, 1.0},
        {BellKind::PhiMinus, 0b00, 0b11, -1.0},
        {BellKind::PsiPlus, 0b10, 0b01, 1.0},
        {BellKind::PsiMinus, 0b10, 0b01, -1.0},
    };
    for (const Case &c : cases) {
        const StateVector sv = finalState(bellPair(c.kind));
        const Complex amp_a = sv.amplitude(c.a);
        const Complex amp_b = sv.amplitude(c.b);
        EXPECT_NEAR(std::abs(amp_a), kInvSqrt2, 1e-9);
        EXPECT_NEAR(std::abs(amp_b), kInvSqrt2, 1e-9);
        // Relative phase.
        EXPECT_NEAR((amp_b / amp_a).real(), c.sign, 1e-9);
    }
}

TEST(AlgorithmsTest, GhzState)
{
    for (std::size_t n : {2u, 3u, 5u}) {
        const StateVector sv = finalState(ghzState(n));
        const BasisIndex ones = (BasisIndex{1} << n) - 1;
        EXPECT_NEAR(std::abs(sv.amplitude(0)), kInvSqrt2, 1e-9);
        EXPECT_NEAR(std::abs(sv.amplitude(ones)), kInvSqrt2, 1e-9);
    }
    EXPECT_THROW(ghzState(1), ValueError);
}

TEST(AlgorithmsTest, WStateHasUniformSingleExcitation)
{
    for (std::size_t n : {2u, 3u, 4u, 5u}) {
        const StateVector sv = finalState(wState(n));
        const double expected = 1.0 / static_cast<double>(n);
        double total = 0.0;
        for (BasisIndex i = 0; i < sv.dim(); ++i) {
            const double p = std::norm(sv.amplitude(i));
            const int popcount = __builtin_popcountll(i);
            if (popcount == 1) {
                EXPECT_NEAR(p, expected, 1e-9)
                    << "n=" << n << " basis " << i;
                total += p;
            } else {
                EXPECT_NEAR(p, 0.0, 1e-9)
                    << "n=" << n << " basis " << i;
            }
        }
        EXPECT_NEAR(total, 1.0, 1e-9);
    }
    EXPECT_THROW(wState(1), ValueError);
}

TEST(AlgorithmsTest, QftOnBasisStateGivesUniform)
{
    // QFT|0> = uniform superposition with flat phases.
    const StateVector sv = finalState(qft(3));
    for (BasisIndex i = 0; i < 8; ++i)
        EXPECT_NEAR(std::norm(sv.amplitude(i)), 0.125, 1e-9) << i;
}

TEST(AlgorithmsTest, QftInverseRoundTrip)
{
    for (std::size_t n : {1u, 2u, 3u, 4u}) {
        Circuit round_trip(n, 0);
        round_trip.compose(qft(n));
        round_trip.compose(inverseQft(n));
        // Apply to a non-trivial input.
        Circuit with_input(n, 0);
        with_input.x(0);
        if (n > 1)
            with_input.h(n - 1);
        Circuit full(n, 0);
        full.compose(with_input);
        full.compose(round_trip);

        const StateVector expected = finalState(with_input);
        const StateVector actual = finalState(full);
        EXPECT_NEAR(actual.fidelityWith(expected), 1.0, 1e-9)
            << "n=" << n;
    }
}

TEST(AlgorithmsTest, QftMatchesDft)
{
    // QFT amplitudes of |x> are exp(2 pi i x k / N) / sqrt(N).
    const std::size_t n = 3;
    const std::size_t dim = 8;
    for (BasisIndex x : {1u, 5u}) {
        Circuit c(n, 0);
        for (std::size_t b = 0; b < n; ++b)
            if ((x >> b) & 1)
                c.x(static_cast<Qubit>(b));
        c.compose(qft(n));
        const StateVector sv = finalState(c);
        for (BasisIndex k = 0; k < dim; ++k) {
            const double angle = 2.0 * M_PI *
                                 static_cast<double>(x * k) /
                                 static_cast<double>(dim);
            const Complex expected =
                std::polar(1.0 / std::sqrt(8.0), angle);
            EXPECT_NEAR(std::abs(sv.amplitude(k) - expected), 0.0,
                        1e-9)
                << "x=" << x << " k=" << k;
        }
    }
}

TEST(AlgorithmsTest, GroverFindsMarked)
{
    StatevectorSimulator sim(3);
    const Result r = sim.run(groverSearch2(), 500);
    EXPECT_EQ(r.count(std::uint64_t{0b11}), 500u);
}

TEST(AlgorithmsTest, GroverBugsChangeOutcome)
{
    StatevectorSimulator sim(5);
    const Result missing_h =
        sim.run(groverSearch2(GroverBug::MissingPreambleH), 2000);
    // The buggy run no longer returns |11> deterministically.
    EXPECT_LT(missing_h.probability(std::uint64_t{0b11}), 0.9);

    const Result wrong_oracle =
        sim.run(groverSearch2(GroverBug::WrongOracle), 2000);
    EXPECT_EQ(wrong_oracle.count(std::uint64_t{0b10}), 2000u);
}

TEST(AlgorithmsTest, BernsteinVaziraniRecoversSecret)
{
    for (std::uint64_t secret : {0b000ull, 0b101ull, 0b111ull}) {
        StatevectorSimulator sim(7);
        const Result r = sim.run(bernsteinVazirani(secret, 3), 200);
        EXPECT_EQ(r.count(secret), 200u) << secret;
    }
    EXPECT_THROW(bernsteinVazirani(0b100, 2), ValueError);
    EXPECT_THROW(bernsteinVazirani(0, 0), ValueError);
}

TEST(AlgorithmsTest, TeleportationDeliversState)
{
    const double theta = 0.987;
    StatevectorSimulator sim(9);
    const Result r = sim.run(teleportation(theta), 40000);
    double p1 = 0.0;
    for (const auto &[reg, n] : r.rawCounts())
        if ((reg >> 2) & 1)
            p1 += double(n) / double(r.shots());
    EXPECT_NEAR(p1, std::pow(std::sin(theta / 2.0), 2), 0.01);
}

} // namespace
} // namespace qra
