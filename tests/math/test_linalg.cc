/** @file Tests for vector/density-matrix linear algebra helpers. */

#include <cmath>

#include <gtest/gtest.h>

#include "common/error.hh"
#include "math/gates.hh"
#include "math/linalg.hh"

namespace qra {
namespace {

TEST(LinalgTest, InnerProductConjugatesLeft)
{
    const std::vector<Complex> a{Complex{0.0, 1.0}, 0.0};
    const std::vector<Complex> b{1.0, 0.0};
    // <a|b> = conj(i) * 1 = -i.
    const Complex ip = linalg::innerProduct(a, b);
    EXPECT_NEAR(ip.real(), 0.0, 1e-12);
    EXPECT_NEAR(ip.imag(), -1.0, 1e-12);
}

TEST(LinalgTest, InnerProductMismatchThrows)
{
    EXPECT_THROW(
        linalg::innerProduct({1.0}, {1.0, 0.0}), ValueError);
}

TEST(LinalgTest, NormAndNormalize)
{
    std::vector<Complex> v{3.0, 4.0};
    EXPECT_NEAR(linalg::norm(v), 5.0, 1e-12);
    linalg::normalize(v);
    EXPECT_NEAR(linalg::norm(v), 1.0, 1e-12);
    EXPECT_NEAR(v[0].real(), 0.6, 1e-12);
}

TEST(LinalgTest, NormalizeZeroThrows)
{
    std::vector<Complex> v{0.0, 0.0};
    EXPECT_THROW(linalg::normalize(v), ValueError);
}

TEST(LinalgTest, StateFidelityExtremes)
{
    const std::vector<Complex> zero{1.0, 0.0};
    const std::vector<Complex> one{0.0, 1.0};
    const std::vector<Complex> plus{kInvSqrt2, kInvSqrt2};
    EXPECT_NEAR(linalg::stateFidelity(zero, zero), 1.0, 1e-12);
    EXPECT_NEAR(linalg::stateFidelity(zero, one), 0.0, 1e-12);
    EXPECT_NEAR(linalg::stateFidelity(zero, plus), 0.5, 1e-12);
}

TEST(LinalgTest, OuterProducesPureDensity)
{
    const std::vector<Complex> plus{kInvSqrt2, kInvSqrt2};
    const Matrix rho = linalg::outer(plus);
    EXPECT_NEAR(rho.trace().real(), 1.0, 1e-12);
    EXPECT_NEAR(linalg::purity(rho), 1.0, 1e-12);
    EXPECT_NEAR(rho(0, 1).real(), 0.5, 1e-12);
}

TEST(LinalgTest, MixedStateFidelity)
{
    // Maximally mixed single qubit vs |0>: fidelity 1/2.
    Matrix rho = Matrix::identity(2) * Complex{0.5, 0.0};
    EXPECT_NEAR(linalg::mixedStateFidelity(rho, {1.0, 0.0}), 0.5,
                1e-12);
}

TEST(LinalgTest, PurityOfMixedState)
{
    Matrix rho = Matrix::identity(2) * Complex{0.5, 0.0};
    EXPECT_NEAR(linalg::purity(rho), 0.5, 1e-12);
}

TEST(LinalgTest, PartialTraceOfProductState)
{
    // |0> (x) |+>: tracing out either qubit leaves a pure state.
    // Basis ordering: bit 0 = first qubit.
    std::vector<Complex> psi(4, Complex{0.0, 0.0});
    // qubit0 = |0>, qubit1 = |+>: amplitudes at indices 0 (00) and
    // 2 (10) are 1/sqrt2.
    psi[0] = kInvSqrt2;
    psi[2] = kInvSqrt2;
    const Matrix rho = linalg::outer(psi);

    const Matrix rho0 = linalg::partialTrace(rho, 2, {1});
    EXPECT_NEAR(rho0(0, 0).real(), 1.0, 1e-12); // qubit0 is |0>

    const Matrix rho1 = linalg::partialTrace(rho, 2, {0});
    EXPECT_NEAR(rho1(0, 1).real(), 0.5, 1e-12); // qubit1 is |+>
    EXPECT_NEAR(linalg::purity(rho1), 1.0, 1e-12);
}

TEST(LinalgTest, PartialTraceOfBellStateIsMixed)
{
    std::vector<Complex> bell(4, Complex{0.0, 0.0});
    bell[0] = kInvSqrt2;
    bell[3] = kInvSqrt2;
    const Matrix rho = linalg::outer(bell);

    const Matrix reduced = linalg::partialTrace(rho, 2, {1});
    EXPECT_NEAR(reduced(0, 0).real(), 0.5, 1e-12);
    EXPECT_NEAR(reduced(1, 1).real(), 0.5, 1e-12);
    EXPECT_NEAR(std::abs(reduced(0, 1)), 0.0, 1e-12);
    EXPECT_NEAR(linalg::purity(reduced), 0.5, 1e-12);
}

TEST(LinalgTest, PartialTracePreservesTrace)
{
    // Random-ish 3-qubit pure state.
    std::vector<Complex> psi(8);
    for (int i = 0; i < 8; ++i)
        psi[i] = Complex{std::cos(0.3 * i + 0.1),
                         std::sin(0.7 * i - 0.2)};
    linalg::normalize(psi);
    const Matrix rho = linalg::outer(psi);

    for (std::size_t q = 0; q < 3; ++q) {
        const Matrix reduced = linalg::partialTrace(rho, 3, {q});
        EXPECT_NEAR(reduced.trace().real(), 1.0, 1e-10);
        EXPECT_EQ(reduced.rows(), 4u);
    }

    const Matrix single = linalg::partialTrace(rho, 3, {0, 2});
    EXPECT_NEAR(single.trace().real(), 1.0, 1e-10);
    EXPECT_EQ(single.rows(), 2u);
}

TEST(LinalgTest, PartialTraceValidation)
{
    const Matrix rho = Matrix::identity(4) * Complex{0.25, 0.0};
    EXPECT_THROW(linalg::partialTrace(rho, 2, {5}), ValueError);
    EXPECT_THROW(linalg::partialTrace(rho, 2, {0, 0}), ValueError);
    EXPECT_THROW(linalg::partialTrace(rho, 3, {0}), ValueError);
}

} // namespace
} // namespace qra
