/** @file Tests for the canonical gate matrices. */

#include <cmath>

#include <gtest/gtest.h>

#include "math/gates.hh"

namespace qra {
namespace {

TEST(GatesTest, AllFixedGatesAreUnitary)
{
    EXPECT_TRUE(gates::i1().isUnitary());
    EXPECT_TRUE(gates::x().isUnitary());
    EXPECT_TRUE(gates::y().isUnitary());
    EXPECT_TRUE(gates::z().isUnitary());
    EXPECT_TRUE(gates::h().isUnitary());
    EXPECT_TRUE(gates::s().isUnitary());
    EXPECT_TRUE(gates::sdg().isUnitary());
    EXPECT_TRUE(gates::t().isUnitary());
    EXPECT_TRUE(gates::tdg().isUnitary());
    EXPECT_TRUE(gates::sx().isUnitary());
    EXPECT_TRUE(gates::cx().isUnitary());
    EXPECT_TRUE(gates::cy().isUnitary());
    EXPECT_TRUE(gates::cz().isUnitary());
    EXPECT_TRUE(gates::swap().isUnitary());
    EXPECT_TRUE(gates::ccx().isUnitary());
}

TEST(GatesTest, ParameterizedGatesAreUnitary)
{
    for (double theta : {0.0, 0.1, M_PI / 3, M_PI, 2.5 * M_PI}) {
        EXPECT_TRUE(gates::rx(theta).isUnitary());
        EXPECT_TRUE(gates::ry(theta).isUnitary());
        EXPECT_TRUE(gates::rz(theta).isUnitary());
        EXPECT_TRUE(gates::p(theta).isUnitary());
        EXPECT_TRUE(gates::u(theta, 0.7, -1.3).isUnitary());
    }
}

TEST(GatesTest, PauliAlgebra)
{
    // X^2 = Y^2 = Z^2 = I; XY = iZ.
    EXPECT_TRUE((gates::x() * gates::x()).isIdentity());
    EXPECT_TRUE((gates::y() * gates::y()).isIdentity());
    EXPECT_TRUE((gates::z() * gates::z()).isIdentity());
    EXPECT_TRUE((gates::x() * gates::y())
                    .approxEqual(gates::z() * kI));
}

TEST(GatesTest, HadamardConjugatesXZ)
{
    // H X H = Z and H Z H = X.
    EXPECT_TRUE((gates::h() * gates::x() * gates::h())
                    .approxEqual(gates::z(), 1e-12));
    EXPECT_TRUE((gates::h() * gates::z() * gates::h())
                    .approxEqual(gates::x(), 1e-12));
}

TEST(GatesTest, HadamardLogicFunction)
{
    // Fig. 1 of the paper: H|0> = (|0>+|1>)/sqrt2, H|1> = (|0>-|1>)/sqrt2.
    const Matrix h = gates::h();
    EXPECT_NEAR(h(0, 0).real(), kInvSqrt2, 1e-12);
    EXPECT_NEAR(h(1, 0).real(), kInvSqrt2, 1e-12);
    EXPECT_NEAR(h(0, 1).real(), kInvSqrt2, 1e-12);
    EXPECT_NEAR(h(1, 1).real(), -kInvSqrt2, 1e-12);
}

TEST(GatesTest, SSquaredIsZ)
{
    EXPECT_TRUE((gates::s() * gates::s()).approxEqual(gates::z()));
    EXPECT_TRUE((gates::s() * gates::sdg()).isIdentity());
}

TEST(GatesTest, TSquaredIsS)
{
    EXPECT_TRUE((gates::t() * gates::t()).approxEqual(gates::s(), 1e-12));
    EXPECT_TRUE((gates::t() * gates::tdg()).isIdentity());
}

TEST(GatesTest, SxSquaredIsX)
{
    EXPECT_TRUE((gates::sx() * gates::sx()).approxEqual(gates::x(),
                                                        1e-12));
}

TEST(GatesTest, RotationComposition)
{
    // RX(a) RX(b) = RX(a + b).
    const Matrix lhs = gates::rx(0.4) * gates::rx(0.9);
    EXPECT_TRUE(lhs.approxEqual(gates::rx(1.3), 1e-12));
}

TEST(GatesTest, RotationsAtPi)
{
    // RX(pi) = -iX, RY(pi) = -iY, RZ(pi) = -iZ.
    EXPECT_TRUE(gates::rx(M_PI).equalUpToGlobalPhase(gates::x()));
    EXPECT_TRUE(gates::ry(M_PI).equalUpToGlobalPhase(gates::y()));
    EXPECT_TRUE(gates::rz(M_PI).equalUpToGlobalPhase(gates::z()));
}

TEST(GatesTest, UGateSpecialCases)
{
    // u(pi/2, 0, pi) = H; u(pi, 0, pi) = X; u(0, 0, l) = P(l) phase.
    EXPECT_TRUE(gates::u(M_PI / 2, 0.0, M_PI)
                    .approxEqual(gates::h(), 1e-12));
    EXPECT_TRUE(gates::u(M_PI, 0.0, M_PI)
                    .approxEqual(gates::x(), 1e-12));
    EXPECT_TRUE(gates::u(0.0, 0.0, 1.1)
                    .equalUpToGlobalPhase(gates::p(1.1), 1e-12));
}

TEST(GatesTest, CnotLogicFunction)
{
    // Fig. 1: CNOT maps |psi, delta> -> |psi, psi XOR delta>.
    // Our convention: control = matrix bit 0, target = bit 1.
    const Matrix cx = gates::cx();
    // |c=0, t=0> (index 0) -> index 0.
    EXPECT_EQ(cx(0, 0), Complex(1.0, 0.0));
    // |c=1, t=0> (index 1) -> |c=1, t=1> (index 3).
    EXPECT_EQ(cx(3, 1), Complex(1.0, 0.0));
    // |c=0, t=1> (index 2) -> index 2.
    EXPECT_EQ(cx(2, 2), Complex(1.0, 0.0));
    // |c=1, t=1> (index 3) -> |c=1, t=0> (index 1).
    EXPECT_EQ(cx(1, 3), Complex(1.0, 0.0));
}

TEST(GatesTest, CnotSelfInverse)
{
    EXPECT_TRUE((gates::cx() * gates::cx()).isIdentity());
    EXPECT_TRUE((gates::swap() * gates::swap()).isIdentity());
    EXPECT_TRUE((gates::ccx() * gates::ccx()).isIdentity());
}

TEST(GatesTest, CzIsDiagonalSymmetric)
{
    const Matrix cz = gates::cz();
    EXPECT_EQ(cz(3, 3), Complex(-1.0, 0.0));
    EXPECT_EQ(cz(0, 0), Complex(1.0, 0.0));
    EXPECT_TRUE(cz.approxEqual(cz.transpose()));
}

TEST(GatesTest, SwapExchangesBasisStates)
{
    const Matrix sw = gates::swap();
    EXPECT_EQ(sw(2, 1), Complex(1.0, 0.0));
    EXPECT_EQ(sw(1, 2), Complex(1.0, 0.0));
    EXPECT_EQ(sw(0, 0), Complex(1.0, 0.0));
    EXPECT_EQ(sw(3, 3), Complex(1.0, 0.0));
}

TEST(GatesTest, ToffoliFlipsOnlyWhenBothControlsSet)
{
    const Matrix ccx = gates::ccx();
    // Controls are bits 0 and 1; target bit 2.
    // |011> (3) <-> |111> (7).
    EXPECT_EQ(ccx(7, 3), Complex(1.0, 0.0));
    EXPECT_EQ(ccx(3, 7), Complex(1.0, 0.0));
    for (int i : {0, 1, 2, 4, 5, 6})
        EXPECT_EQ(ccx(i, i), Complex(1.0, 0.0));
}

TEST(GatesTest, ProjectorsSumToIdentity)
{
    EXPECT_TRUE((gates::proj0() + gates::proj1()).isIdentity());
    EXPECT_TRUE((gates::proj0() * gates::proj0())
                    .approxEqual(gates::proj0()));
    EXPECT_TRUE((gates::proj0() * gates::proj1())
                    .approxEqual(Matrix(2, 2)));
}

} // namespace
} // namespace qra
