/** @file Tests for the dense complex Matrix type. */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "math/gates.hh"
#include "math/matrix.hh"

namespace qra {
namespace {

TEST(MatrixTest, ZeroConstruction)
{
    Matrix m(2, 3);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    for (std::size_t r = 0; r < 2; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            EXPECT_EQ(m(r, c), Complex(0.0, 0.0));
}

TEST(MatrixTest, InitializerList)
{
    Matrix m{{1.0, 2.0}, {3.0, 4.0}};
    EXPECT_EQ(m(0, 0), Complex(1.0, 0.0));
    EXPECT_EQ(m(0, 1), Complex(2.0, 0.0));
    EXPECT_EQ(m(1, 0), Complex(3.0, 0.0));
    EXPECT_EQ(m(1, 1), Complex(4.0, 0.0));
}

TEST(MatrixTest, RaggedInitializerThrows)
{
    EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), ValueError);
}

TEST(MatrixTest, IdentityIsIdentity)
{
    EXPECT_TRUE(Matrix::identity(4).isIdentity());
    EXPECT_FALSE(gates::x().isIdentity());
}

TEST(MatrixTest, AdditionSubtraction)
{
    Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    Matrix b{{4.0, 3.0}, {2.0, 1.0}};
    Matrix sum = a + b;
    EXPECT_EQ(sum(0, 0), Complex(5.0, 0.0));
    EXPECT_EQ(sum(1, 1), Complex(5.0, 0.0));
    Matrix diff = sum - b;
    EXPECT_TRUE(diff.approxEqual(a));
}

TEST(MatrixTest, DimensionMismatchThrows)
{
    Matrix a(2, 2);
    Matrix b(3, 3);
    EXPECT_THROW(a + b, ValueError);
    EXPECT_THROW(a - b, ValueError);
    EXPECT_THROW(a * b, ValueError);
    EXPECT_THROW(a.maxAbsDiff(b), ValueError);
}

TEST(MatrixTest, Multiplication)
{
    Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    Matrix b{{0.0, 1.0}, {1.0, 0.0}};
    Matrix prod = a * b;
    EXPECT_EQ(prod(0, 0), Complex(2.0, 0.0));
    EXPECT_EQ(prod(0, 1), Complex(1.0, 0.0));
    EXPECT_EQ(prod(1, 0), Complex(4.0, 0.0));
    EXPECT_EQ(prod(1, 1), Complex(3.0, 0.0));
}

TEST(MatrixTest, ScalarMultiplication)
{
    Matrix a{{1.0, 0.0}, {0.0, 1.0}};
    Matrix scaled = a * Complex{0.0, 2.0};
    EXPECT_EQ(scaled(0, 0), Complex(0.0, 2.0));
    Matrix scaled2 = Complex{0.0, 2.0} * a;
    EXPECT_TRUE(scaled.approxEqual(scaled2));
}

TEST(MatrixTest, AdjointConjugatesAndTransposes)
{
    Matrix m{{Complex{1.0, 1.0}, Complex{2.0, -1.0}},
             {Complex{0.0, 3.0}, Complex{4.0, 0.0}}};
    Matrix adj = m.adjoint();
    EXPECT_EQ(adj(0, 0), Complex(1.0, -1.0));
    EXPECT_EQ(adj(0, 1), Complex(0.0, -3.0));
    EXPECT_EQ(adj(1, 0), Complex(2.0, 1.0));
    EXPECT_EQ(adj(1, 1), Complex(4.0, 0.0));
}

TEST(MatrixTest, TransposeDoesNotConjugate)
{
    Matrix m{{Complex{1.0, 1.0}, Complex{2.0, 0.0}},
             {Complex{3.0, 0.0}, Complex{4.0, 0.0}}};
    Matrix t = m.transpose();
    EXPECT_EQ(t(0, 0), Complex(1.0, 1.0));
    EXPECT_EQ(t(0, 1), Complex(3.0, 0.0));
}

TEST(MatrixTest, KronProductDimensions)
{
    Matrix a(2, 2);
    Matrix b(3, 3);
    Matrix k = a.kron(b);
    EXPECT_EQ(k.rows(), 6u);
    EXPECT_EQ(k.cols(), 6u);
}

TEST(MatrixTest, KronOfPaulis)
{
    // X (x) Z has Z in the off-diagonal blocks.
    Matrix k = gates::x().kron(gates::z());
    EXPECT_EQ(k(0, 2), Complex(1.0, 0.0));
    EXPECT_EQ(k(1, 3), Complex(-1.0, 0.0));
    EXPECT_EQ(k(2, 0), Complex(1.0, 0.0));
    EXPECT_EQ(k(3, 1), Complex(-1.0, 0.0));
    EXPECT_EQ(k(0, 0), Complex(0.0, 0.0));
}

TEST(MatrixTest, KronIdentityGivesBlockDiagonal)
{
    Matrix k = Matrix::identity(2).kron(gates::h());
    // Top-left block is H, bottom-right block is H.
    EXPECT_NEAR(k(0, 0).real(), kInvSqrt2, 1e-12);
    EXPECT_NEAR(k(3, 3).real(), -kInvSqrt2, 1e-12);
    EXPECT_EQ(k(0, 2), Complex(0.0, 0.0));
}

TEST(MatrixTest, TraceOfIdentity)
{
    EXPECT_EQ(Matrix::identity(5).trace(), Complex(5.0, 0.0));
}

TEST(MatrixTest, TraceNonSquareThrows)
{
    EXPECT_THROW(Matrix(2, 3).trace(), ValueError);
}

TEST(MatrixTest, FrobeniusNorm)
{
    Matrix m{{3.0, 0.0}, {0.0, 4.0}};
    EXPECT_NEAR(m.frobeniusNorm(), 5.0, 1e-12);
}

TEST(MatrixTest, UnitarityChecks)
{
    EXPECT_TRUE(gates::h().isUnitary());
    EXPECT_TRUE(gates::x().isUnitary());
    EXPECT_TRUE(gates::cx().isUnitary());
    Matrix not_unitary{{1.0, 1.0}, {0.0, 1.0}};
    EXPECT_FALSE(not_unitary.isUnitary());
    EXPECT_FALSE(Matrix(2, 3).isUnitary());
}

TEST(MatrixTest, HermiticityChecks)
{
    EXPECT_TRUE(gates::x().isHermitian());
    EXPECT_TRUE(gates::y().isHermitian());
    EXPECT_TRUE(gates::z().isHermitian());
    EXPECT_FALSE(gates::s().isHermitian());
}

TEST(MatrixTest, GlobalPhaseEquality)
{
    const Matrix h = gates::h();
    const Matrix phased = h * std::polar(1.0, 1.234);
    EXPECT_TRUE(phased.equalUpToGlobalPhase(h));
    EXPECT_FALSE(phased.approxEqual(h));
    EXPECT_FALSE(gates::x().equalUpToGlobalPhase(gates::z()));
}

TEST(MatrixTest, ColumnVector)
{
    Matrix v = Matrix::columnVector({1.0, 2.0, 3.0});
    EXPECT_EQ(v.rows(), 3u);
    EXPECT_EQ(v.cols(), 1u);
    EXPECT_EQ(v(1, 0), Complex(2.0, 0.0));
}

TEST(MatrixTest, StrRendersSomething)
{
    const std::string s = gates::h().str();
    EXPECT_NE(s.find("0.7071"), std::string::npos);
}

} // namespace
} // namespace qra
