/** @file Tests for Pauli-string observables. */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "library/algorithms.hh"
#include "math/pauli.hh"
#include "sim/density_matrix.hh"
#include "sim/statevector_simulator.hh"

namespace qra {
namespace {

StateVector
finalState(const Circuit &c)
{
    StatevectorSimulator sim(1);
    return sim.finalState(c);
}

TEST(PauliStringTest, ParseAndValidate)
{
    PauliString p("XZI");
    EXPECT_EQ(p.numQubits(), 3u);
    EXPECT_EQ(p.label(0), 'X');
    EXPECT_EQ(p.label(2), 'I');
    EXPECT_EQ(p.support(), (std::vector<Qubit>{0, 1}));
    EXPECT_FALSE(p.isIdentity());
    EXPECT_TRUE(PauliString("III").isIdentity());
    EXPECT_THROW(PauliString(""), ValueError);
    EXPECT_THROW(PauliString("XQ"), ValueError);
}

TEST(PauliStringTest, ToMatrixMatchesKron)
{
    // "XZ" = Z (x) X with qubit 0 as the low factor.
    const Matrix m = PauliString("XZ").toMatrix();
    EXPECT_EQ(m.rows(), 4u);
    // X on qubit 0 flips bit 0; Z on qubit 1 signs bit 1.
    EXPECT_EQ(m(1, 0), Complex(1.0, 0.0));
    EXPECT_EQ(m(3, 2), Complex(-1.0, 0.0));
}

TEST(PauliStringTest, SingleQubitExpectations)
{
    // |0>: <Z> = 1, <X> = 0. |+>: <X> = 1, <Z> = 0.
    StateVector zero(1);
    EXPECT_NEAR(PauliString("Z").expectation(zero), 1.0, 1e-12);
    EXPECT_NEAR(PauliString("X").expectation(zero), 0.0, 1e-12);

    Circuit plus_c(1, 0);
    plus_c.h(0);
    const StateVector plus = finalState(plus_c);
    EXPECT_NEAR(PauliString("X").expectation(plus), 1.0, 1e-12);
    EXPECT_NEAR(PauliString("Z").expectation(plus), 0.0, 1e-12);

    // |i> = S|+>: <Y> = 1.
    Circuit yplus_c(1, 0);
    yplus_c.h(0).s(0);
    EXPECT_NEAR(PauliString("Y").expectation(finalState(yplus_c)),
                1.0, 1e-12);
}

TEST(PauliStringTest, BellCorrelations)
{
    // Phi+: <XX> = <ZZ> = 1, <YY> = -1, single-qubit Paulis = 0.
    const StateVector bell = finalState(library::bellPair());
    EXPECT_NEAR(PauliString("XX").expectation(bell), 1.0, 1e-12);
    EXPECT_NEAR(PauliString("ZZ").expectation(bell), 1.0, 1e-12);
    EXPECT_NEAR(PauliString("YY").expectation(bell), -1.0, 1e-12);
    EXPECT_NEAR(PauliString("XI").expectation(bell), 0.0, 1e-12);
    EXPECT_NEAR(PauliString("IZ").expectation(bell), 0.0, 1e-12);
}

TEST(PauliStringTest, GhzStabilizerExpectations)
{
    // GHZ-3 stabilizers: XXX, ZZI, IZZ all have expectation +1.
    const StateVector ghz = finalState(library::ghzState(3));
    EXPECT_NEAR(PauliString("XXX").expectation(ghz), 1.0, 1e-12);
    EXPECT_NEAR(PauliString("ZZI").expectation(ghz), 1.0, 1e-12);
    EXPECT_NEAR(PauliString("IZZ").expectation(ghz), 1.0, 1e-12);
    // Non-stabilizer: XII has expectation 0.
    EXPECT_NEAR(PauliString("XII").expectation(ghz), 0.0, 1e-12);
}

TEST(PauliStringTest, DensityMatrixExpectations)
{
    DensityMatrix bell(2);
    bell.applyUnitary({.kind = OpKind::H, .qubits = {0}});
    bell.applyUnitary({.kind = OpKind::CX, .qubits = {0, 1}});
    EXPECT_NEAR(PauliString("XX").expectation(bell), 1.0, 1e-10);
    EXPECT_NEAR(PauliString("ZZ").expectation(bell), 1.0, 1e-10);

    // Dephasing kills <XX> but not <ZZ>.
    bell.dephase(0);
    EXPECT_NEAR(PauliString("XX").expectation(bell), 0.0, 1e-10);
    EXPECT_NEAR(PauliString("ZZ").expectation(bell), 1.0, 1e-10);
}

TEST(PauliStringTest, EntanglementWitnessOnAssertionPassPath)
{
    // The assertion disentanglement claim via a witness: after a
    // passing (measured) entanglement check, <XX> of the Bell pair
    // must remain 1 — coherence, not just parity, is preserved.
    Circuit c = library::bellPair();
    const Qubit anc = c.addQubits(1);
    c.addClbits(1);
    c.cx(0, anc).cx(1, anc);
    c.measure(anc, 0);

    StatevectorSimulator sim(3);
    const StateVector sv = sim.evolveWithMeasurements(c);
    // Trace out the ancilla implicitly: XXI acts as XX (x) I.
    EXPECT_NEAR(PauliString("XXI").expectation(sv), 1.0, 1e-9);
    EXPECT_NEAR(PauliString("ZZI").expectation(sv), 1.0, 1e-9);
}

TEST(PauliStringTest, WidthMismatchThrows)
{
    StateVector sv(2);
    EXPECT_THROW(PauliString("X").expectation(sv), ValueError);
    DensityMatrix dm(1);
    EXPECT_THROW(PauliString("XX").expectation(dm), ValueError);
}

} // namespace
} // namespace qra
