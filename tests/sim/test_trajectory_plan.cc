/**
 * @file
 * Trajectory plan-lowering tests: the pre-lowered noisy plan must
 * reproduce the legacy Operation interpreter bit-for-bit (same RNG
 * stream, fusion off), stay statistically faithful with fusion on,
 * classify noise sites correctly, and keep merged counts bit-identical
 * at any thread/lane count.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "noise/device_model.hh"
#include "runtime/execution_engine.hh"
#include "sim/kernels/noise_plan.hh"
#include "sim/kernels/plan_cache.hh"
#include "sim/trajectory_simulator.hh"
#include "stats/distance.hh"
#include "testutil.hh"

namespace qra {
namespace {

/** Depolarising + readout model over @p num_qubits qubits. */
NoiseModel
depolarizingReadoutNoise(std::size_t num_qubits)
{
    NoiseModel noise;
    noise.setGateError(OpKind::CX, 0.03);
    noise.setGateError(OpKind::H, 0.004);
    noise.setGateError(OpKind::RY, 0.002);
    for (Qubit q = 0; q < num_qubits; ++q)
        noise.setReadoutError(q, ReadoutError(0.015, 0.03));
    return noise;
}

/** Random noisy workload with mid-circuit measurement and reset. */
Circuit
randomNoisyCircuit(std::size_t num_qubits, std::size_t num_gates,
                   std::uint64_t seed)
{
    Circuit c(num_qubits, num_qubits);
    Rng rng(seed);
    auto layer = [&](std::size_t gates) {
        for (std::size_t i = 0; i < gates; ++i) {
            const Qubit q = static_cast<Qubit>(rng.below(num_qubits));
            switch (rng.below(5)) {
              case 0:
                c.h(q);
                break;
              case 1:
                c.t(q);
                break;
              case 2:
                c.ry(rng.uniform() * M_PI, q);
                break;
              case 3:
                c.rz(rng.uniform() * M_PI, q);
                break;
              default:
              {
                const Qubit r = static_cast<Qubit>(
                    (q + 1 + rng.below(num_qubits - 1)) % num_qubits);
                c.cx(q, r);
              }
            }
        }
    };
    layer(num_gates / 2);
    c.measure(0, 0);
    c.reset(0);
    layer(num_gates - num_gates / 2);
    c.measureAll();
    return c;
}

TEST(TrajectoryPlanTest, UnfusedPlanMatchesLegacyInterpreterExactly)
{
    // Fusion off, identical seed: the plan path consumes the same RNG
    // stream through the same kernels, so counts must match
    // bit-for-bit, per shot, under gate + readout noise.
    for (const std::uint64_t seed : {11u, 12u, 13u, 14u}) {
        const std::size_t n = 5;
        const Circuit c = randomNoisyCircuit(n, 36, 500 + seed);
        const NoiseModel noise = depolarizingReadoutNoise(n);

        kernels::FusionScope fusion(kernels::kFusionNone);
        TrajectorySimulator legacy(seed);
        legacy.setNoiseModel(&noise);
        legacy.setUseLoweredPlan(false);
        const Result a = legacy.run(c, 400);

        TrajectorySimulator lowered(seed);
        lowered.setNoiseModel(&noise);
        const Result b = lowered.run(c, 400);

        EXPECT_EQ(a.rawCounts(), b.rawCounts()) << "seed " << seed;
        EXPECT_EQ(a.retainedFraction(), b.retainedFraction());
    }
}

TEST(TrajectoryPlanTest, UnfusedPlanMatchesLegacyUnderRelaxation)
{
    // Thermal relaxation exercises the state-dependent (non-unitary
    // Kraus) sites; the copy-free weight computation must track the
    // legacy branch weights.
    const std::size_t n = 4;
    Circuit c(n, n);
    c.h(0).cx(0, 1).cx(1, 2).cx(2, 3).measureAll();
    NoiseModel noise;
    noise.setGateError(OpKind::CX, 0.02);
    noise.setGateDuration(OpKind::CX, 300.0);
    noise.setGateDuration(OpKind::H, 50.0);
    for (Qubit q = 0; q < n; ++q)
        noise.setQubitRelaxation(q, 50000.0, 30000.0);

    kernels::FusionScope fusion(kernels::kFusionNone);
    TrajectorySimulator legacy(21);
    legacy.setNoiseModel(&noise);
    legacy.setUseLoweredPlan(false);
    TrajectorySimulator lowered(21);
    lowered.setNoiseModel(&noise);

    EXPECT_EQ(legacy.run(c, 600).rawCounts(),
              lowered.run(c, 600).rawCounts());
}

TEST(TrajectoryPlanTest, FusedPlanMatchesUnfusedCounts)
{
    // Fusion only rearranges clean unitary segments; site structure
    // and draw sequence are unchanged, so with a shared seed the two
    // runs diverge only where a probability shifted by ULPs lands
    // exactly on a draw boundary. Counts must agree up to a handful
    // of such flips — never the O(0.1) shift a semantic fusion bug
    // produces. (Exact equality would hinge on FMA/libm luck.)
    for (const std::uint64_t seed : {31u, 32u}) {
        const std::size_t n = 6;
        const Circuit c = randomNoisyCircuit(n, 40, 700 + seed);
        const NoiseModel noise = depolarizingReadoutNoise(n);

        Result results[2];
        const int levels[2] = {kernels::kFusionNone,
                               kernels::kFusion2q};
        for (int i = 0; i < 2; ++i) {
            kernels::FusionScope fusion(levels[i]);
            TrajectorySimulator sim(seed);
            sim.setNoiseModel(&noise);
            results[i] = sim.run(c, 500);
        }
        EXPECT_EQ(results[0].shots(), results[1].shots());
        const double tv = stats::totalVariation(
            stats::toDistribution(results[0].rawCounts()),
            stats::toDistribution(results[1].rawCounts()));
        EXPECT_LE(tv, 0.02) << "seed " << seed;
    }
}

TEST(TrajectoryPlanTest, CountsBitIdenticalAcrossThreadsAndLanes)
{
    const std::size_t n = 6;
    const Circuit c = randomNoisyCircuit(n, 32, 900);
    const NoiseModel noise = depolarizingReadoutNoise(n);

    runtime::ExecutionEngine one(runtime::EngineOptions{
        .threads = 1, .shardShots = 128, .intraThreads = 1});
    runtime::ExecutionEngine four(runtime::EngineOptions{
        .threads = 4, .shardShots = 128, .intraThreads = 4});
    const Result a = one.run(c, 512, "trajectory", 77, &noise);
    const Result b = four.run(c, 512, "trajectory", 77, &noise);
    EXPECT_EQ(a.rawCounts(), b.rawCounts());
}

TEST(TrajectoryPlanTest, DepolarizingSitesHaveFixedWeights)
{
    Circuit c(2, 2);
    c.h(0).cx(0, 1).measureAll();
    NoiseModel noise;
    noise.setGateError(OpKind::CX, 0.1);
    noise.setReadoutError(0, ReadoutError(0.02, 0.03));

    const kernels::TrajectoryPlan plan =
        kernels::TrajectoryPlan::compile(c, &noise,
                                         kernels::kFusionNone);
    ASSERT_EQ(plan.numSites(), 1u);
    const kernels::KrausSite &site = plan.site(0);
    EXPECT_TRUE(site.fixedWeights);
    ASSERT_EQ(site.weights.size(), site.branches.size());
    double total = 0.0;
    for (const double w : site.weights)
        total += w;
    EXPECT_NEAR(total, 1.0, 1e-10);
    // Every branch of a depolarising channel is a (scaled) Pauli
    // tensor product, so the pre-lowered kernels must all be cheap
    // structural 1q classes — never a dense 4x4.
    for (const std::vector<kernels::PlanEntry> &branch : site.branches)
        for (const kernels::PlanEntry &entry : branch)
            EXPECT_NE(entry.kind, kernels::KernelKind::General2q);

    // Readout on qubit 0 only: its Measure entry carries the site,
    // qubit 1's does not.
    int readout_sites = 0;
    for (const kernels::PlanEntry &entry : plan.entries()) {
        if (entry.kind != kernels::KernelKind::Measure)
            continue;
        if (entry.q0 == 0) {
            EXPECT_GE(entry.site, 0);
            ++readout_sites;
        } else {
            EXPECT_LT(entry.site, 0);
        }
    }
    EXPECT_EQ(readout_sites, 1);
}

TEST(TrajectoryPlanTest, RelaxationSitesAreStateDependent)
{
    Circuit c(1, 1);
    c.h(0).measure(0, 0);
    NoiseModel noise;
    noise.setGateDuration(OpKind::H, 100.0);
    noise.setQubitRelaxation(0, 50000.0, 30000.0);

    const kernels::TrajectoryPlan plan =
        kernels::TrajectoryPlan::compile(c, &noise,
                                         kernels::kFusionNone);
    ASSERT_GE(plan.numSites(), 1u);
    EXPECT_FALSE(plan.site(0).fixedWeights);
    EXPECT_FALSE(plan.site(0).ops.empty());
}

TEST(TrajectoryPlanTest, CleanSegmentsFuseNoisyGatesFence)
{
    // Noise only on CX: 1q runs fuse, the noisy CX stays fenced by
    // its sample site.
    Circuit c(2, 2);
    c.h(0).t(0).h(1).t(1).cx(0, 1).h(0).h(0).measureAll();
    NoiseModel noise;
    noise.setGateError(OpKind::CX, 0.05);

    const kernels::TrajectoryPlan fused =
        kernels::TrajectoryPlan::compile(c, &noise,
                                         kernels::kFusion2q);
    const kernels::TrajectoryPlan unfused =
        kernels::TrajectoryPlan::compile(c, &noise,
                                         kernels::kFusionNone);
    EXPECT_LT(fused.entries().size(), unfused.entries().size());
    EXPECT_GE(fused.stats().fusedGates, 4u); // t·h runs + h·h vanish

    bool has_site = false;
    for (const kernels::PlanEntry &entry : fused.entries())
        has_site = has_site ||
                   entry.kind == kernels::KernelKind::SampleKraus;
    EXPECT_TRUE(has_site);
}

TEST(TrajectoryPlanTest, BarriersFenceTrajectoryFusion)
{
    // The moment schedule drops barriers, but the plan must still
    // honour them as fusion fences — same contract as ExecutablePlan.
    Circuit hh(1, 1);
    hh.h(0).barrier().h(0).measure(0, 0);
    const kernels::TrajectoryPlan fenced1q =
        kernels::TrajectoryPlan::compile(hh, nullptr,
                                         kernels::kFusion2q);
    // H, H, Measure — the pair must not cancel across the barrier.
    EXPECT_EQ(fenced1q.entries().size(), 3u);

    Circuit cxcx(2, 2);
    cxcx.cx(0, 1).barrier().cx(0, 1).measureAll();
    const kernels::TrajectoryPlan fenced2q =
        kernels::TrajectoryPlan::compile(cxcx, nullptr,
                                         kernels::kFusion2q);
    std::size_t cx_entries = 0;
    for (const kernels::PlanEntry &entry : fenced2q.entries())
        if (entry.kind == kernels::KernelKind::ControlledX)
            ++cx_entries;
    EXPECT_EQ(cx_entries, 2u);

    // Without the barrier both collapse.
    Circuit free2q(2, 2);
    free2q.cx(0, 1).cx(0, 1).measureAll();
    const kernels::TrajectoryPlan open =
        kernels::TrajectoryPlan::compile(free2q, nullptr,
                                         kernels::kFusion2q);
    for (const kernels::PlanEntry &entry : open.entries())
        EXPECT_NE(entry.kind, kernels::KernelKind::ControlledX);
}

TEST(TrajectoryPlanTest, IdealPlanMatchesIdealLegacy)
{
    // No noise model at all: the plan path must still reproduce the
    // legacy interpreter (pure trajectory semantics).
    const Circuit c = randomNoisyCircuit(5, 30, 1300);
    kernels::FusionScope fusion(kernels::kFusionNone);
    TrajectorySimulator legacy(5);
    legacy.setUseLoweredPlan(false);
    TrajectorySimulator lowered(5);
    EXPECT_EQ(legacy.run(c, 300).rawCounts(),
              lowered.run(c, 300).rawCounts());
}

TEST(TrajectoryPlanTest, PlanCacheReusesTrajectoryPlans)
{
    const Circuit c = randomNoisyCircuit(4, 20, 1500);
    const NoiseModel noise = depolarizingReadoutNoise(4);

    kernels::PlanCache cache;
    kernels::PlanCacheScope scope(&cache);
    TrajectorySimulator sim(9);
    sim.setNoiseModel(&noise);
    const Result a = sim.run(c, 100);
    EXPECT_EQ(cache.stats().misses, 1u);

    sim.seed(9);
    const Result b = sim.run(c, 100);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(a.rawCounts(), b.rawCounts());

    // A different noise model (different fingerprint) must miss.
    const NoiseModel scaled = noise.scaled(2.0);
    TrajectorySimulator sim2(9);
    sim2.setNoiseModel(&scaled);
    sim2.run(c, 50);
    EXPECT_EQ(cache.stats().misses, 2u);
}

} // namespace
} // namespace qra
