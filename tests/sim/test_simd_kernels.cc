/**
 * @file
 * Bit-exactness parity suite for the SIMD kernel tiers and the
 * cache-blocked traversal.
 *
 * The contract under test (simd/dispatch.hh): every vectorized tier
 * and every traversal produces amplitudes *bit-identical* to the
 * scalar oracle loops in kernels.cc — not merely close. Each case
 * therefore compares raw bytes (memcmp), never EXPECT_NEAR: a single
 * FMA contraction, addend reordering, or −0.0 sign flip fails loudly.
 *
 * Tiers above what this CPU supports are clamped away by dispatch, so
 * the suite exercises exactly availableTiers() and stays green on
 * scalar-only hardware and -DQRA_ENABLE_AVX2=OFF builds.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "circuit/circuit.hh"
#include "common/error.hh"
#include "common/rng.hh"
#include "math/matrix.hh"
#include "math/types.hh"
#include "obs/metrics.hh"
#include "runtime/execution_engine.hh"
#include "runtime/thread_pool.hh"
#include "sim/kernels/kernels.hh"
#include "sim/kernels/parallel.hh"
#include "sim/kernels/simd/dispatch.hh"
#include "sim/kernels/traversal.hh"
#include "sim/statevector_simulator.hh"

using namespace qra;
using namespace qra::kernels;
using simd::Tier;
using simd::TierScope;

namespace {

/** Unnormalised random state: parity needs arithmetic, not physics. */
std::vector<Complex>
randomState(std::size_t num_qubits, std::uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    std::vector<Complex> amps(std::size_t{1} << num_qubits);
    for (Complex &a : amps)
        a = Complex{dist(rng), dist(rng)};
    return amps;
}

Complex
randomComplex(std::mt19937_64 &rng)
{
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    const double re = dist(rng);
    return Complex{re, dist(rng)};
}

::testing::AssertionResult
bitIdentical(const std::vector<Complex> &a, const std::vector<Complex> &b)
{
    if (a.size() != b.size())
        return ::testing::AssertionFailure() << "size mismatch";
    if (std::memcmp(a.data(), b.data(), a.size() * sizeof(Complex)) == 0)
        return ::testing::AssertionSuccess();
    for (std::size_t i = 0; i < a.size(); ++i)
        if (std::memcmp(&a[i], &b[i], sizeof(Complex)) != 0)
            return ::testing::AssertionFailure()
                   << "first divergence at amplitude " << i << ": ("
                   << a[i].real() << "," << a[i].imag() << ") vs ("
                   << b[i].real() << "," << b[i].imag() << ")";
    return ::testing::AssertionFailure() << "memcmp mismatch";
}

/**
 * Run @p apply on copies of the same random state under a forced
 * scalar scope and under every wider available tier; every pair must
 * be bit-identical. @p apply gets the raw amplitude vector.
 */
template <typename Apply>
void
expectTierParity(std::size_t num_qubits, std::uint64_t seed,
                 const Apply &apply)
{
    const std::vector<Complex> input = randomState(num_qubits, seed);

    std::vector<Complex> oracle = input;
    {
        TierScope scope(static_cast<int>(Tier::Scalar));
        apply(oracle);
    }

    for (Tier tier : simd::availableTiers()) {
        if (tier == Tier::Scalar)
            continue;
        std::vector<Complex> candidate = input;
        {
            TierScope scope(static_cast<int>(tier));
            apply(candidate);
        }
        EXPECT_TRUE(bitIdentical(oracle, candidate))
            << "tier " << simd::tierName(tier) << " on " << num_qubits
            << " qubits";
    }
}

} // namespace

// ---- per-kernel-class parity, every geometry --------------------------

TEST(SimdParity, General1qAllTargetsAllSizes)
{
    std::mt19937_64 rng(11);
    for (std::size_t nq : {1u, 2u, 3u, 5u, 8u, 11u}) {
        for (Qubit q = 0; q < nq; ++q) {
            const Complex m00 = randomComplex(rng);
            const Complex m01 = randomComplex(rng);
            const Complex m10 = randomComplex(rng);
            const Complex m11 = randomComplex(rng);
            expectTierParity(nq, 100 * nq + q, [&](auto &amps) {
                applyGeneral1q(amps.data(), amps.size(), q, m00, m01,
                               m10, m11);
            });
        }
    }
}

TEST(SimdParity, Diagonal1qAllTargetsAllSizes)
{
    std::mt19937_64 rng(12);
    for (std::size_t nq : {1u, 2u, 3u, 5u, 9u}) {
        for (Qubit q = 0; q < nq; ++q) {
            const Complex d0 = randomComplex(rng);
            const Complex d1 = randomComplex(rng);
            expectTierParity(nq, 200 * nq + q, [&](auto &amps) {
                applyDiagonal1q(amps.data(), amps.size(), q, d0, d1);
            });
        }
    }
}

TEST(SimdParity, AntiDiagonal1qAllTargetsAllSizes)
{
    std::mt19937_64 rng(13);
    for (std::size_t nq : {1u, 2u, 3u, 5u, 9u}) {
        for (Qubit q = 0; q < nq; ++q) {
            const Complex a01 = randomComplex(rng);
            const Complex a10 = randomComplex(rng);
            expectTierParity(nq, 300 * nq + q, [&](auto &amps) {
                applyAntiDiagonal1q(amps.data(), amps.size(), q, a01,
                                    a10);
            });
        }
    }
}

TEST(SimdParity, PhaseOnMaskSingleMultiAndOddMasks)
{
    std::mt19937_64 rng(14);
    const std::size_t nq = 9;
    std::vector<std::uint64_t> masks;
    for (Qubit q = 0; q < nq; ++q)
        masks.push_back(std::uint64_t{1} << q); // Z on each qubit
    masks.push_back(0b11);        // CZ, includes bit 0 (odd mask)
    masks.push_back(0b110);       // CZ on {1,2}, even mask
    masks.push_back(0b101);       // CCZ-shape with bit 0
    masks.push_back(0b101000);    // multi-bit, even
    masks.push_back((std::uint64_t{1} << nq) - 1); // all qubits
    for (std::uint64_t mask : masks) {
        const Complex phase = randomComplex(rng);
        expectTierParity(nq, 400 + mask, [&](auto &amps) {
            applyPhaseOnMask(amps.data(), amps.size(), mask, phase);
        });
    }
}

TEST(SimdParity, Controlled1qAllPairs)
{
    std::mt19937_64 rng(15);
    for (std::size_t nq : {2u, 3u, 5u, 8u}) {
        for (Qubit c = 0; c < nq; ++c) {
            for (Qubit t = 0; t < nq; ++t) {
                if (c == t)
                    continue;
                const Complex m00 = randomComplex(rng);
                const Complex m01 = randomComplex(rng);
                const Complex m10 = randomComplex(rng);
                const Complex m11 = randomComplex(rng);
                expectTierParity(nq, 500 * nq + 16 * c + t,
                                 [&](auto &amps) {
                                     applyControlled1q(
                                         amps.data(), amps.size(), c, t,
                                         m00, m01, m10, m11);
                                 });
            }
        }
    }
}

TEST(SimdParity, General2qAllPairs)
{
    std::mt19937_64 rng(16);
    for (std::size_t nq : {2u, 3u, 5u, 8u}) {
        for (Qubit q0 = 0; q0 < nq; ++q0) {
            for (Qubit q1 = 0; q1 < nq; ++q1) {
                if (q0 == q1)
                    continue;
                Matrix u(4, 4);
                for (std::size_t r = 0; r < 4; ++r)
                    for (std::size_t col = 0; col < 4; ++col)
                        u(r, col) = randomComplex(rng);
                expectTierParity(nq, 600 * nq + 16 * q0 + q1,
                                 [&](auto &amps) {
                                     applyGeneral2q(amps.data(),
                                                    amps.size(), q0, q1,
                                                    u);
                                 });
            }
        }
    }
}

TEST(SimdParity, RandomizedCircuitEndToEnd)
{
    // Full production path — plan lowering, fusion, classification —
    // on a random circuit: the final state must be bit-identical at
    // every tier (fused matrices are themselves tier-independent
    // because every kernel the fuser runs is bit-exact).
    const std::size_t nq = 9;
    Circuit c(nq, nq, "simd_parity");
    Rng rng(123);
    for (std::size_t i = 0; i < 120; ++i) {
        const Qubit q = static_cast<Qubit>(rng.below(nq));
        const Qubit r = static_cast<Qubit>(
            (q + 1 + rng.below(nq - 1)) % nq);
        switch (rng.below(6)) {
        case 0:
            c.h(q);
            break;
        case 1:
            c.t(q);
            break;
        case 2:
            c.ry(rng.uniform() * 3.0, q);
            break;
        case 3:
            c.cx(q, r);
            break;
        case 4:
            c.cz(q, r);
            break;
        default:
            c.rz(rng.uniform() * 3.0, q);
        }
    }

    std::vector<Complex> oracle;
    {
        TierScope scope(static_cast<int>(Tier::Scalar));
        StatevectorSimulator sim(7);
        oracle = sim.finalState(c).amplitudes();
    }
    for (Tier tier : simd::availableTiers()) {
        if (tier == Tier::Scalar)
            continue;
        TierScope scope(static_cast<int>(tier));
        StatevectorSimulator sim(7);
        const std::vector<Complex> amps =
            sim.finalState(c).amplitudes();
        EXPECT_TRUE(bitIdentical(oracle, amps))
            << "tier " << simd::tierName(tier);
    }
}

// ---- parity under lane-split execution --------------------------------

TEST(SimdParity, MultiThreadedLanesMatchSerialScalar)
{
    // 17 qubits: the compact ranges exceed 2 * kParallelGrain, so a
    // 4-lane scope genuinely splits — and splits at arbitrary (non
    // power-of-two-aligned) chunk bounds, exercising the vector
    // bodies' scalar peel/tail against the oracle.
    const std::size_t nq = 17;
    std::mt19937_64 rng(17);
    const Complex m00 = randomComplex(rng), m01 = randomComplex(rng);
    const Complex m10 = randomComplex(rng), m11 = randomComplex(rng);
    Matrix u(4, 4);
    for (std::size_t r = 0; r < 4; ++r)
        for (std::size_t col = 0; col < 4; ++col)
            u(r, col) = randomComplex(rng);

    const std::vector<Complex> input = randomState(nq, 99);
    auto applyAll = [&](std::vector<Complex> &amps) {
        applyGeneral1q(amps.data(), amps.size(), 0, m00, m01, m10, m11);
        applyGeneral1q(amps.data(), amps.size(), 16, m00, m01, m10,
                       m11);
        applyControlled1q(amps.data(), amps.size(), 16, 0, m00, m01,
                          m10, m11);
        applyGeneral2q(amps.data(), amps.size(), 0, 16, u);
        applyGeneral2q(amps.data(), amps.size(), 7, 8, u);
    };

    std::vector<Complex> oracle = input;
    {
        TierScope scope(static_cast<int>(Tier::Scalar));
        applyAll(oracle); // serial: no ParallelScope
    }

    runtime::ThreadPool pool(4);
    for (Tier tier : simd::availableTiers()) {
        std::vector<Complex> candidate = input;
        {
            TierScope scope(static_cast<int>(tier));
            ParallelScope lanes(&pool, 4);
            applyAll(candidate);
        }
        EXPECT_TRUE(bitIdentical(oracle, candidate))
            << "tier " << simd::tierName(tier) << " with 4 lanes";
    }
}

// ---- blocked vs linear traversal --------------------------------------

TEST(TraversalParity, BlockedMatchesLinearAtEveryTier)
{
    // A tiny 4 KiB budget makes qubit 12's 64 KiB pair stride blocked
    // even on a 13-qubit state, so the tiled walk runs in-test.
    setCacheBlockBytes(4096);
    const std::size_t nq = 13;
    const Qubit hi = 12;
    std::mt19937_64 rng(18);
    const Complex m00 = randomComplex(rng), m01 = randomComplex(rng);
    const Complex m10 = randomComplex(rng), m11 = randomComplex(rng);
    Matrix u(4, 4);
    for (std::size_t r = 0; r < 4; ++r)
        for (std::size_t col = 0; col < 4; ++col)
            u(r, col) = randomComplex(rng);

    const std::vector<Complex> input = randomState(nq, 77);
    for (Tier tier : simd::availableTiers()) {
        TierScope scope(static_cast<int>(tier));
        std::vector<Complex> linear = input;
        std::vector<Complex> blocked = input;

        applyGeneral1q(linear.data(), linear.size(), hi, m00, m01, m10,
                       m11, Traversal::Linear);
        applyGeneral1q(blocked.data(), blocked.size(), hi, m00, m01,
                       m10, m11, Traversal::Blocked);
        applyAntiDiagonal1q(linear.data(), linear.size(), hi, m01, m10,
                            Traversal::Linear);
        applyAntiDiagonal1q(blocked.data(), blocked.size(), hi, m01,
                            m10, Traversal::Blocked);
        applyControlled1q(linear.data(), linear.size(), hi, 3, m00, m01,
                          m10, m11, Traversal::Linear);
        applyControlled1q(blocked.data(), blocked.size(), hi, 3, m00,
                          m01, m10, m11, Traversal::Blocked);
        applyGeneral2q(linear.data(), linear.size(), 2, hi, u,
                       Traversal::Linear);
        applyGeneral2q(blocked.data(), blocked.size(), 2, hi, u,
                       Traversal::Blocked);

        EXPECT_TRUE(bitIdentical(linear, blocked))
            << "tier " << simd::tierName(tier);
    }
    setCacheBlockBytes(0); // restore default/env
}

TEST(TraversalParity, ResolvePicksBlockedOnlyAboveBudget)
{
    setCacheBlockBytes(4096);
    // Stride 1<<12 * 16 B = 64 KiB > 4 KiB and 4096 compact indices
    // span multiple tiles: blocked.
    EXPECT_EQ(resolveTraversal(Traversal::Auto, std::uint64_t{1} << 13,
                               std::uint64_t{1} << 12, 2),
              Traversal::Blocked);
    // Low qubit: 16 B stride sits inside any budget: linear.
    EXPECT_EQ(resolveTraversal(Traversal::Auto, std::uint64_t{1} << 13,
                               1, 2),
              Traversal::Linear);
    // Explicit requests pass through.
    EXPECT_EQ(resolveTraversal(Traversal::Linear,
                               std::uint64_t{1} << 13,
                               std::uint64_t{1} << 12, 2),
              Traversal::Linear);
    EXPECT_EQ(resolveTraversal(Traversal::Blocked,
                               std::uint64_t{1} << 13, 1, 2),
              Traversal::Blocked);
    setCacheBlockBytes(0);
}

// ---- dispatch plumbing ------------------------------------------------

TEST(SimdDispatch, AvailableTiersAscendingFromScalar)
{
    const std::vector<Tier> tiers = simd::availableTiers();
    ASSERT_FALSE(tiers.empty());
    EXPECT_EQ(tiers.front(), Tier::Scalar);
    for (std::size_t i = 1; i < tiers.size(); ++i)
        EXPECT_LT(static_cast<int>(tiers[i - 1]),
                  static_cast<int>(tiers[i]));
    EXPECT_LE(simd::detectedTier(), simd::compiledTier());
}

TEST(SimdDispatch, ForcedTierClampsToDetected)
{
    // Forcing a wider tier than the CPU/build has must clamp, never
    // select unusable code.
    TierScope scope(static_cast<int>(Tier::Avx512));
    EXPECT_LE(simd::currentTier(), simd::detectedTier());
}

TEST(SimdDispatch, ProcessTierOverridesAndRestores)
{
    simd::setProcessTier(static_cast<int>(Tier::Scalar));
    EXPECT_EQ(simd::currentTier(), Tier::Scalar);
    {
        // Thread-local scope wins over the process setting.
        TierScope scope(static_cast<int>(simd::detectedTier()));
        EXPECT_EQ(simd::currentTier(), simd::detectedTier());
    }
    simd::setProcessTier(-1);
    EXPECT_LE(simd::currentTier(), simd::detectedTier());
}

TEST(SimdDispatch, ParseTierRoundTrips)
{
    Tier tier;
    ASSERT_TRUE(simd::parseTier("scalar", &tier));
    EXPECT_EQ(tier, Tier::Scalar);
    ASSERT_TRUE(simd::parseTier("portable", &tier));
    EXPECT_EQ(tier, Tier::Portable);
    ASSERT_TRUE(simd::parseTier("avx2", &tier));
    EXPECT_EQ(tier, Tier::Avx2);
    ASSERT_TRUE(simd::parseTier("avx512", &tier));
    EXPECT_EQ(tier, Tier::Avx512);
    EXPECT_FALSE(simd::parseTier("sse9", &tier));
    EXPECT_FALSE(simd::parseTier("", &tier));
    for (Tier t : simd::availableTiers()) {
        Tier back;
        ASSERT_TRUE(simd::parseTier(simd::tierName(t), &back));
        EXPECT_EQ(back, t);
    }
}

TEST(SimdDispatch, DispatchCountersRecordSelectedTier)
{
    auto &registry = obs::MetricsRegistry::global();
    const auto before =
        registry.snapshot().counters["sim.kernels.dispatch.scalar"];
    obs::setMetricsEnabled(true);
    {
        TierScope scope(static_cast<int>(Tier::Scalar));
        std::vector<Complex> amps = randomState(6, 1);
        applyGeneral1q(amps.data(), amps.size(), 3, Complex{0, 1},
                       Complex{1, 0}, Complex{0, -1}, Complex{-1, 0});
    }
    obs::setMetricsEnabled(false);
    const auto after =
        registry.snapshot().counters["sim.kernels.dispatch.scalar"];
    EXPECT_GT(after, before);
}

TEST(SimdDispatch, EngineOptionsValidatesTier)
{
    EXPECT_THROW(runtime::ExecutionEngine(
                     runtime::EngineOptions{.threads = 1, .simdTier = 4}),
                 ValueError);
    // -1 (auto) and every real tier construct fine; the tier is
    // clamped at dispatch time, not rejected.
    for (int tier = -1; tier <= 3; ++tier)
        EXPECT_NO_THROW(runtime::ExecutionEngine(
            runtime::EngineOptions{.threads = 1, .simdTier = tier}));
}

// ---- expandIndex contract ---------------------------------------------

TEST(ExpandIndex, DebugAssertsRejectMalformedBitArrays)
{
#ifdef NDEBUG
    GTEST_SKIP() << "expandIndex contract asserts compile out under "
                    "NDEBUG";
#else
    const std::uint64_t zero_entry[] = {0};
    EXPECT_THROW(expandIndex(5, zero_entry, 1), Error);
    const std::uint64_t multi_bit[] = {0b110};
    EXPECT_THROW(expandIndex(5, multi_bit, 1), Error);
    const std::uint64_t descending[] = {4, 2};
    EXPECT_THROW(expandIndex(5, descending, 2), Error);
#endif
}

TEST(ExpandIndex, WellFormedInsertionMatchesManualBitMath)
{
    // Insert zeros at bits 1 and 3: compact 0b111 -> 0b10101.
    const std::uint64_t bits[] = {2, 8};
    EXPECT_EQ(expandIndex(0b111, bits, 2), 0b10101u);
    EXPECT_EQ(expandIndex(0, bits, 2), 0u);
}
