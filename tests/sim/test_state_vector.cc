/** @file Tests for the StateVector backend. */

#include <cmath>

#include <gtest/gtest.h>

#include "common/error.hh"
#include "math/gates.hh"
#include "sim/state_vector.hh"
#include "testutil.hh"

namespace qra {
namespace {

TEST(StateVectorTest, InitialisesToAllZeros)
{
    StateVector sv(3);
    EXPECT_EQ(sv.dim(), 8u);
    EXPECT_NEAR(std::abs(sv.amplitude(0)), 1.0, 1e-12);
    for (BasisIndex i = 1; i < 8; ++i)
        EXPECT_NEAR(std::abs(sv.amplitude(i)), 0.0, 1e-12);
}

TEST(StateVectorTest, SizeLimits)
{
    EXPECT_THROW(StateVector(0), SimulationError);
    EXPECT_THROW(StateVector(25), SimulationError);
}

TEST(StateVectorTest, FromAmplitudesNormalises)
{
    StateVector sv = StateVector::fromAmplitudes({2.0, 0.0});
    EXPECT_NEAR(std::abs(sv.amplitude(0)), 1.0, 1e-12);
    EXPECT_THROW(StateVector::fromAmplitudes({1.0, 0.0, 0.0}),
                 SimulationError);
}

TEST(StateVectorTest, HadamardCreatesPlus)
{
    StateVector sv(1);
    sv.applyUnitary({.kind = OpKind::H, .qubits = {0}});
    EXPECT_NEAR(sv.amplitude(0).real(), kInvSqrt2, 1e-12);
    EXPECT_NEAR(sv.amplitude(1).real(), kInvSqrt2, 1e-12);
    EXPECT_NEAR(sv.probabilityOfOne(0), 0.5, 1e-12);
}

TEST(StateVectorTest, XFlips)
{
    StateVector sv(2);
    sv.applyUnitary({.kind = OpKind::X, .qubits = {1}});
    EXPECT_NEAR(std::abs(sv.amplitude(0b10)), 1.0, 1e-12);
}

TEST(StateVectorTest, BellStateConstruction)
{
    StateVector sv(2);
    sv.applyUnitary({.kind = OpKind::H, .qubits = {0}});
    sv.applyUnitary({.kind = OpKind::CX, .qubits = {0, 1}});
    EXPECT_NEAR(std::abs(sv.amplitude(0b00)), kInvSqrt2, 1e-12);
    EXPECT_NEAR(std::abs(sv.amplitude(0b11)), kInvSqrt2, 1e-12);
    EXPECT_NEAR(std::abs(sv.amplitude(0b01)), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(sv.amplitude(0b10)), 0.0, 1e-12);
}

TEST(StateVectorTest, GhzConstruction)
{
    StateVector sv(3);
    sv.applyUnitary({.kind = OpKind::H, .qubits = {0}});
    sv.applyUnitary({.kind = OpKind::CX, .qubits = {0, 1}});
    sv.applyUnitary({.kind = OpKind::CX, .qubits = {1, 2}});
    EXPECT_NEAR(std::abs(sv.amplitude(0b000)), kInvSqrt2, 1e-12);
    EXPECT_NEAR(std::abs(sv.amplitude(0b111)), kInvSqrt2, 1e-12);
}

TEST(StateVectorTest, CxRespectsOperandOrder)
{
    // Control = qubit 1, target = qubit 0.
    StateVector sv(2);
    sv.applyUnitary({.kind = OpKind::X, .qubits = {1}}); // |10>
    sv.applyUnitary({.kind = OpKind::CX, .qubits = {1, 0}});
    EXPECT_NEAR(std::abs(sv.amplitude(0b11)), 1.0, 1e-12); // |11>
}

TEST(StateVectorTest, GeneralMatrixPathMatchesSpecialised)
{
    // Apply CX twice: once via the fast path, once as a raw matrix.
    StateVector a(3), b(3);
    a.applyUnitary({.kind = OpKind::H, .qubits = {1}});
    b.applyUnitary({.kind = OpKind::H, .qubits = {1}});

    a.applyUnitary({.kind = OpKind::CX, .qubits = {1, 2}});
    b.applyMatrix(gates::cx(), {1, 2});
    test::expectAmplitudesNear(a.amplitudes(), b.amplitudes());
}

TEST(StateVectorTest, ThreeQubitMatrixApplication)
{
    StateVector a(3), b(3);
    a.applyUnitary({.kind = OpKind::X, .qubits = {0}});
    a.applyUnitary({.kind = OpKind::X, .qubits = {1}});
    b.applyUnitary({.kind = OpKind::X, .qubits = {0}});
    b.applyUnitary({.kind = OpKind::X, .qubits = {1}});

    a.applyUnitary({.kind = OpKind::CCX, .qubits = {0, 1, 2}});
    b.applyMatrix(gates::ccx(), {0, 1, 2});
    test::expectAmplitudesNear(a.amplitudes(), b.amplitudes());
    EXPECT_NEAR(std::abs(a.amplitude(0b111)), 1.0, 1e-12);
}

TEST(StateVectorTest, NonAdjacentTargets)
{
    // CX between qubits 0 and 2 of a 3-qubit register.
    StateVector sv(3);
    sv.applyUnitary({.kind = OpKind::X, .qubits = {0}});
    sv.applyUnitary({.kind = OpKind::CX, .qubits = {0, 2}});
    EXPECT_NEAR(std::abs(sv.amplitude(0b101)), 1.0, 1e-12);
}

TEST(StateVectorTest, WrongMatrixSizeThrows)
{
    StateVector sv(2);
    EXPECT_THROW(sv.applyMatrix(gates::cx(), {0}), SimulationError);
    EXPECT_THROW(sv.applyMatrix(gates::h(), {0, 1}), SimulationError);
}

TEST(StateVectorTest, NormPreservedByRandomCircuit)
{
    StateVector sv(4);
    Rng rng(11);
    for (int step = 0; step < 200; ++step) {
        const Qubit q = static_cast<Qubit>(rng.below(4));
        const Qubit r = static_cast<Qubit>((q + 1 + rng.below(3)) % 4);
        switch (rng.below(5)) {
          case 0:
            sv.applyUnitary({.kind = OpKind::H, .qubits = {q}});
            break;
          case 1:
            sv.applyUnitary({.kind = OpKind::T, .qubits = {q}});
            break;
          case 2:
            sv.applyUnitary({.kind = OpKind::CX, .qubits = {q, r}});
            break;
          case 3:
            sv.applyUnitary({.kind = OpKind::RY,
                             .qubits = {q},
                             .params = {rng.uniform() * M_PI}});
            break;
          default:
            sv.applyUnitary({.kind = OpKind::S, .qubits = {q}});
        }
    }
    EXPECT_NEAR(sv.norm(), 1.0, 1e-9);
}

TEST(StateVectorTest, MeasureCollapsesDeterministicState)
{
    StateVector sv(1);
    Rng rng(3);
    EXPECT_EQ(sv.measure(0, rng), 0);
    sv.applyUnitary({.kind = OpKind::X, .qubits = {0}});
    EXPECT_EQ(sv.measure(0, rng), 1);
}

TEST(StateVectorTest, MeasureStatisticsOnPlus)
{
    Rng rng(17);
    int ones = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        StateVector sv(1);
        sv.applyUnitary({.kind = OpKind::H, .qubits = {0}});
        ones += sv.measure(0, rng);
    }
    EXPECT_NEAR(ones / double(n), 0.5, 0.02);
}

TEST(StateVectorTest, MeasureCollapsesEntangledPartner)
{
    Rng rng(5);
    for (int i = 0; i < 50; ++i) {
        StateVector sv(2);
        sv.applyUnitary({.kind = OpKind::H, .qubits = {0}});
        sv.applyUnitary({.kind = OpKind::CX, .qubits = {0, 1}});
        const int first = sv.measure(0, rng);
        const int second = sv.measure(1, rng);
        EXPECT_EQ(first, second);
    }
}

TEST(StateVectorTest, PostSelectReturnsBranchProbability)
{
    StateVector sv(1);
    sv.applyUnitary({.kind = OpKind::RY,
                     .qubits = {0},
                     .params = {2.0 * std::acos(std::sqrt(0.3))}});
    // P(0) = 0.3 by construction.
    const double p = sv.postSelect(0, 0);
    EXPECT_NEAR(p, 0.3, 1e-9);
    EXPECT_NEAR(std::abs(sv.amplitude(0)), 1.0, 1e-9);
}

TEST(StateVectorTest, PostSelectImpossibleBranchThrows)
{
    StateVector sv(1); // |0>
    EXPECT_THROW(sv.postSelect(0, 1), SimulationError);
}

TEST(StateVectorTest, MarginalProbabilities)
{
    StateVector sv(3);
    sv.applyUnitary({.kind = OpKind::H, .qubits = {0}});
    sv.applyUnitary({.kind = OpKind::CX, .qubits = {0, 2}});
    // Marginal over {0, 2}: half 00, half 11.
    const auto marginal = sv.marginalProbabilities({0, 2});
    ASSERT_EQ(marginal.size(), 4u);
    EXPECT_NEAR(marginal[0b00], 0.5, 1e-12);
    EXPECT_NEAR(marginal[0b11], 0.5, 1e-12);
    EXPECT_NEAR(marginal[0b01], 0.0, 1e-12);
    // Marginal over just qubit 1: deterministic 0.
    const auto m1 = sv.marginalProbabilities({1});
    EXPECT_NEAR(m1[0], 1.0, 1e-12);
}

TEST(StateVectorTest, SampleMatchesDistribution)
{
    StateVector sv(2);
    sv.applyUnitary({.kind = OpKind::H, .qubits = {0}});
    sv.applyUnitary({.kind = OpKind::CX, .qubits = {0, 1}});
    Rng rng(29);
    int count00 = 0, count11 = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const BasisIndex s = sv.sample(rng);
        if (s == 0b00)
            ++count00;
        else if (s == 0b11)
            ++count11;
        else
            FAIL() << "sampled impossible outcome " << s;
    }
    EXPECT_NEAR(count00 / double(n), 0.5, 0.02);
    EXPECT_NEAR(count11 / double(n), 0.5, 0.02);
}

TEST(StateVectorTest, ResetQubit)
{
    Rng rng(31);
    for (int i = 0; i < 20; ++i) {
        StateVector sv(2);
        sv.applyUnitary({.kind = OpKind::H, .qubits = {0}});
        sv.applyUnitary({.kind = OpKind::X, .qubits = {1}});
        sv.resetQubit(0, rng);
        EXPECT_NEAR(sv.probabilityOfOne(0), 0.0, 1e-12);
        EXPECT_NEAR(sv.probabilityOfOne(1), 1.0, 1e-12);
    }
}

TEST(StateVectorTest, ExpectationZ)
{
    StateVector sv(1);
    EXPECT_NEAR(sv.expectationZ(0), 1.0, 1e-12);
    sv.applyUnitary({.kind = OpKind::X, .qubits = {0}});
    EXPECT_NEAR(sv.expectationZ(0), -1.0, 1e-12);
    sv.applyUnitary({.kind = OpKind::H, .qubits = {0}});
    EXPECT_NEAR(sv.expectationZ(0), 0.0, 1e-12);
}

TEST(StateVectorTest, ReducedDensityOfProductStateIsPure)
{
    StateVector sv(2);
    sv.applyUnitary({.kind = OpKind::H, .qubits = {0}});
    EXPECT_NEAR(sv.qubitPurity(0), 1.0, 1e-12);
    EXPECT_NEAR(sv.qubitPurity(1), 1.0, 1e-12);
}

TEST(StateVectorTest, ReducedDensityOfBellPairIsMixed)
{
    StateVector sv(2);
    sv.applyUnitary({.kind = OpKind::H, .qubits = {0}});
    sv.applyUnitary({.kind = OpKind::CX, .qubits = {0, 1}});
    EXPECT_NEAR(sv.qubitPurity(0), 0.5, 1e-12);
    EXPECT_NEAR(sv.qubitPurity(1), 0.5, 1e-12);
    const Matrix rho = sv.reducedQubitDensity(0);
    EXPECT_NEAR(rho(0, 0).real(), 0.5, 1e-12);
    EXPECT_NEAR(std::abs(rho(0, 1)), 0.0, 1e-12);
}

TEST(StateVectorTest, FidelityBetweenStates)
{
    StateVector a(1), b(1);
    EXPECT_NEAR(a.fidelityWith(b), 1.0, 1e-12);
    b.applyUnitary({.kind = OpKind::X, .qubits = {0}});
    EXPECT_NEAR(a.fidelityWith(b), 0.0, 1e-12);
    StateVector c(2);
    EXPECT_THROW(a.fidelityWith(c), SimulationError);
}

TEST(StateVectorTest, HhIsIdentity)
{
    StateVector sv(1);
    sv.applyUnitary({.kind = OpKind::H, .qubits = {0}});
    sv.applyUnitary({.kind = OpKind::H, .qubits = {0}});
    EXPECT_NEAR(std::abs(sv.amplitude(0)), 1.0, 1e-12);
}

TEST(StateVectorTest, OutOfRangeQubitThrows)
{
    StateVector sv(2);
    Rng rng(1);
    EXPECT_THROW(sv.probabilityOfOne(2), IndexError);
    EXPECT_THROW(sv.measure(5, rng), IndexError);
    EXPECT_THROW(sv.postSelect(3, 0), IndexError);
}

} // namespace
} // namespace qra
