/** @file Tests for the ideal shot-based simulator. */

#include <gtest/gtest.h>

#include "sim/statevector_simulator.hh"
#include "testutil.hh"

namespace qra {
namespace {

TEST(StatevectorSimulatorTest, DeterministicCircuit)
{
    Circuit c(2, 2);
    c.x(0).measureAll();
    StatevectorSimulator sim(1);
    const Result r = sim.run(c, 100);
    EXPECT_EQ(r.shots(), 100u);
    EXPECT_EQ(r.count("01"), 100u); // clbit0 (rightmost) is 1
}

TEST(StatevectorSimulatorTest, BellPairCorrelations)
{
    Circuit c(2, 2);
    c.h(0).cx(0, 1).measureAll();
    StatevectorSimulator sim(42);
    const Result r = sim.run(c, 10000);
    EXPECT_EQ(r.count(0b01), 0u);
    EXPECT_EQ(r.count(0b10), 0u);
    EXPECT_NEAR(r.probability(std::uint64_t{0b00}), 0.5, 0.03);
    EXPECT_NEAR(r.probability(std::uint64_t{0b11}), 0.5, 0.03);
}

TEST(StatevectorSimulatorTest, NoMeasurementsYieldsZeroRegister)
{
    Circuit c(1, 1);
    c.h(0);
    StatevectorSimulator sim(2);
    const Result r = sim.run(c, 10);
    EXPECT_EQ(r.count(std::uint64_t{0}), 10u);
}

TEST(StatevectorSimulatorTest, PartialMeasurement)
{
    Circuit c(3, 1);
    c.x(2).measure(2, 0);
    StatevectorSimulator sim(3);
    const Result r = sim.run(c, 50);
    EXPECT_EQ(r.count(std::uint64_t{1}), 50u);
}

TEST(StatevectorSimulatorTest, MidCircuitMeasurementForcesPerShot)
{
    // Measure then keep operating on the measured qubit: per-shot
    // path must handle the collapse correctly.
    Circuit c(1, 2);
    c.h(0).measure(0, 0).x(0).measure(0, 1);
    StatevectorSimulator sim(7);
    const Result r = sim.run(c, 2000);
    // Second bit is always the complement of the first.
    for (const auto &[key, n] : r.rawCounts()) {
        const int b0 = key & 1;
        const int b1 = (key >> 1) & 1;
        EXPECT_NE(b0, b1) << "outcome " << key << " x" << n;
    }
    EXPECT_NEAR(r.probability(std::uint64_t{0b10}), 0.5, 0.05);
}

TEST(StatevectorSimulatorTest, ResetPath)
{
    Circuit c(1, 1);
    c.h(0).reset(0).measure(0, 0);
    StatevectorSimulator sim(11);
    const Result r = sim.run(c, 500);
    EXPECT_EQ(r.count(std::uint64_t{0}), 500u);
}

TEST(StatevectorSimulatorTest, PostSelectConditionsDistribution)
{
    // Bell pair, post-select q0 == 1: all shots read 11.
    Circuit c(2, 2);
    c.h(0).cx(0, 1).postSelect(0, 1).measureAll();
    StatevectorSimulator sim(13);
    const Result r = sim.run(c, 300);
    EXPECT_EQ(r.count(0b11), 300u);
    EXPECT_NEAR(r.retainedFraction(), 0.5, 1e-9);
}

TEST(StatevectorSimulatorTest, FinalStateSkipsMeasurements)
{
    Circuit c(2, 2);
    c.h(0).cx(0, 1).measureAll();
    StatevectorSimulator sim(17);
    const StateVector sv = sim.finalState(c);
    // Bell state: measurements were not applied.
    EXPECT_NEAR(std::abs(sv.amplitude(0b00)), kInvSqrt2, 1e-12);
    EXPECT_NEAR(std::abs(sv.amplitude(0b11)), kInvSqrt2, 1e-12);
}

TEST(StatevectorSimulatorTest, FinalStateHonoursPostSelect)
{
    Circuit c(1);
    c.h(0).postSelect(0, 1);
    StatevectorSimulator sim(19);
    const StateVector sv = sim.finalState(c);
    EXPECT_NEAR(std::abs(sv.amplitude(1)), 1.0, 1e-12);
}

TEST(StatevectorSimulatorTest, EvolveWithMeasurementsCollapses)
{
    Circuit c(2, 0);
    c.h(0).cx(0, 1);
    // Add a measurement on q0 only.
    Circuit cm(2, 1);
    cm.h(0).cx(0, 1).measure(0, 0);
    StatevectorSimulator sim(23);
    const StateVector sv = sim.evolveWithMeasurements(cm);
    // After measuring one half of a Bell pair the state is a product
    // state: both qubits agree and purity is 1.
    EXPECT_NEAR(sv.qubitPurity(0), 1.0, 1e-12);
    EXPECT_NEAR(sv.qubitPurity(1), 1.0, 1e-12);
    EXPECT_NEAR(sv.probabilityOfOne(0), sv.probabilityOfOne(1), 1e-12);
}

TEST(StatevectorSimulatorTest, SeedReproducibility)
{
    Circuit c(1, 1);
    c.h(0).measure(0, 0);
    StatevectorSimulator a(1234), b(1234);
    const Result ra = a.run(c, 500);
    const Result rb = b.run(c, 500);
    EXPECT_EQ(ra.rawCounts(), rb.rawCounts());
}

TEST(StatevectorSimulatorTest, GhzScalesTo10Qubits)
{
    Circuit c(10, 10);
    c.h(0);
    for (Qubit q = 0; q + 1 < 10; ++q)
        c.cx(q, q + 1);
    c.measureAll();
    StatevectorSimulator sim(5);
    const Result r = sim.run(c, 2000);
    const std::uint64_t all_ones = (std::uint64_t{1} << 10) - 1;
    EXPECT_EQ(r.count(std::uint64_t{0}) + r.count(all_ones), 2000u);
    EXPECT_NEAR(r.probability(std::uint64_t{0}), 0.5, 0.05);
}

} // namespace
} // namespace qra
