/**
 * @file
 * Result: merge semantics (counts, exact-distribution adoption and
 * conflict detection) and adaptive-run metadata.
 */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "sim/result.hh"

using namespace qra;

TEST(ResultMerge, AdoptsExactDistributionFromEitherSide)
{
    Result left(1);
    left.record(0, 10);
    Result right(1);
    right.record(1, 10);
    right.setExactDistribution({{0, 0.5}, {1, 0.5}});

    left.merge(right);
    ASSERT_TRUE(left.exactDistribution().has_value());
    EXPECT_DOUBLE_EQ(left.exactDistribution()->at(0), 0.5);
    EXPECT_EQ(left.shots(), 20u);
}

TEST(ResultMerge, IdenticalExactDistributionsMerge)
{
    // Shards of one job carry identical copies; merging them is fine.
    Result a(1);
    a.record(0, 5);
    a.setExactDistribution({{0, 0.5}, {1, 0.5}});
    Result b(1);
    b.record(1, 5);
    b.setExactDistribution({{0, 0.5}, {1, 0.5}});
    a.merge(b);
    EXPECT_EQ(a.shots(), 10u);
    EXPECT_DOUBLE_EQ(a.exactDistribution()->at(1), 0.5);
}

TEST(ResultMerge, ConflictingExactDistributionsRefuse)
{
    // Distinct jobs carry distinct exact distributions; silently
    // keeping the left one would misdescribe the merged counts.
    Result a(1);
    a.record(0, 5);
    a.setExactDistribution({{0, 1.0}});
    Result b(1);
    b.record(1, 5);
    b.setExactDistribution({{0, 0.5}, {1, 0.5}});
    EXPECT_THROW(a.merge(b), ValueError);
}

TEST(ResultMerge, WidthMismatchStillRefuses)
{
    Result a(1);
    Result b(2);
    EXPECT_THROW(a.merge(b), ValueError);
}

TEST(ResultMetadata, ShotsRequestedDefaultsToShots)
{
    Result r(1);
    r.record(0, 100);
    EXPECT_EQ(r.shotsRequested(), 100u);
    EXPECT_FALSE(r.stoppedEarly());

    r.setShotsRequested(400);
    r.setStoppedEarly(true);
    EXPECT_EQ(r.shotsRequested(), 400u);
    EXPECT_TRUE(r.stoppedEarly());
}

TEST(ResultMetadata, MergeSumsBudgetsAndOrsStoppedEarly)
{
    // Two early-stopped jobs of a batch: the union used 300 of 800.
    Result a(1);
    a.record(0, 100);
    a.setShotsRequested(400);
    a.setStoppedEarly(true);
    Result b(1);
    b.record(0, 200);
    b.setShotsRequested(400);

    a.merge(b);
    EXPECT_EQ(a.shots(), 300u);
    EXPECT_EQ(a.shotsRequested(), 800u);
    EXPECT_TRUE(a.stoppedEarly());
}

TEST(ResultMetadata, MergeWithImplicitBudgetUsesShots)
{
    // One adaptive result (explicit budget) merged with a plain one
    // (budget = its shots).
    Result adaptive(1);
    adaptive.record(0, 128);
    adaptive.setShotsRequested(1024);
    adaptive.setStoppedEarly(true);
    Result plain(1);
    plain.record(1, 256);

    adaptive.merge(plain);
    EXPECT_EQ(adaptive.shotsRequested(), 1024u + 256u);
    EXPECT_TRUE(adaptive.stoppedEarly());
}
