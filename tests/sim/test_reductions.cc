/**
 * @file
 * Bit-exactness parity suite for the vectorized measurement pipeline:
 * the reduction kernels (normSquaredOnMask, computeProbabilities,
 * sumWeights, marginalProbabilities), the fused-total AliasTable
 * handoff and its renormalisation guards, the CacheBlockScope budget
 * override, and the end-to-end sampled-counts invariant.
 *
 * The contract (kernels.hh "parallel measurement/sampling
 * reductions"): every reduction accumulates fixed kReduceBlock blocks
 * into a fixed 8-double lane array folded in a static order, so the
 * result is *bit-identical* — memcmp, never EXPECT_NEAR — across SIMD
 * tiers, thread counts, and lane counts. The forced-scalar loops are
 * the oracle, exactly like the gate-kernel suite. Tiers above what
 * this CPU supports are clamped away by dispatch, so the suite
 * exercises exactly availableTiers() and stays green on scalar-only
 * hardware and -DQRA_ENABLE_*=OFF builds.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include "circuit/circuit.hh"
#include "common/error.hh"
#include "math/types.hh"
#include "obs/metrics.hh"
#include "runtime/execution_engine.hh"
#include "runtime/thread_pool.hh"
#include "sim/kernels/alias_table.hh"
#include "sim/kernels/kernels.hh"
#include "sim/kernels/parallel.hh"
#include "sim/kernels/simd/dispatch.hh"
#include "sim/kernels/traversal.hh"
#include "sim/state_vector.hh"
#include "sim/statevector_simulator.hh"

using namespace qra;
using namespace qra::kernels;
using runtime::EngineOptions;
using runtime::ExecutionEngine;
using runtime::Job;
using simd::Tier;
using simd::TierScope;

namespace {

/** Unnormalised random state: parity needs arithmetic, not physics. */
std::vector<Complex>
randomState(std::size_t num_qubits, std::uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    std::vector<Complex> amps(std::size_t{1} << num_qubits);
    for (Complex &a : amps)
        a = Complex{dist(rng), dist(rng)};
    return amps;
}

/** Random plain weights, odd sizes included. */
std::vector<double>
randomWeights(std::size_t n, std::uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    std::vector<double> w(n);
    for (double &x : w)
        x = dist(rng);
    return w;
}

/** Bitwise double equality: distinguishes -0.0/0.0, catches NaN. */
::testing::AssertionResult
bitEqual(double a, double b)
{
    if (std::memcmp(&a, &b, sizeof(double)) == 0)
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << a << " and " << b << " differ bitwise";
}

::testing::AssertionResult
bitEqual(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.size() != b.size())
        return ::testing::AssertionFailure() << "size mismatch";
    for (std::size_t i = 0; i < a.size(); ++i)
        if (std::memcmp(&a[i], &b[i], sizeof(double)) != 0)
            return ::testing::AssertionFailure()
                   << "first divergence at entry " << i << ": " << a[i]
                   << " vs " << b[i];
    return ::testing::AssertionSuccess();
}

/**
 * Evaluate @p reduce under a forced scalar scope (serial), then under
 * every available tier serially and with 4 lanes; every result must
 * be bitwise equal to the scalar oracle.
 */
template <typename Reduce>
void
expectReductionParity(const Reduce &reduce, const char *what)
{
    double oracle;
    {
        TierScope scope(static_cast<int>(Tier::Scalar));
        oracle = reduce();
    }
    runtime::ThreadPool pool(4);
    for (Tier tier : simd::availableTiers()) {
        TierScope scope(static_cast<int>(tier));
        EXPECT_TRUE(bitEqual(oracle, reduce()))
            << what << ": tier " << simd::tierName(tier) << " serial";
        {
            ParallelScope lanes(&pool, 4);
            EXPECT_TRUE(bitEqual(oracle, reduce()))
                << what << ": tier " << simd::tierName(tier)
                << " with 4 lanes";
        }
    }
}

} // namespace

// ---- normSquaredOnMask -------------------------------------------------

TEST(ReductionParity, NormSquaredOnMaskAcrossTiersAndLanes)
{
    // 17 qubits = two kReduceBlock blocks plus a ragged tail in the
    // compact space once a mask strips bits.
    const std::vector<Complex> amps = randomState(17, 101);
    const std::uint64_t n = amps.size();

    struct Case
    {
        std::uint64_t mask;
        std::uint64_t match;
    };
    const Case cases[] = {
        {0, 0},                   // total norm, pure sum
        {1, 1},                   // q0: vector support rejected (k>0,
                                  // lowest bit < 4) -> scalar fallback
        {2, 0},                   // q1: still scalar fallback
        {4, 4},                   // q2: lowest vector-friendly qubit
        {std::uint64_t{1} << 16, 0},            // high qubit
        {(std::uint64_t{1} << 16) | 4, 4},      // multi-bit mask
        {0b11000, 0b01000},                     // adjacent mid bits
    };
    for (const Case &c : cases)
        expectReductionParity(
            [&]() {
                return normSquaredOnMask(amps.data(), n, c.mask,
                                         c.match);
            },
            "normSquaredOnMask");
}

TEST(ReductionParity, NormSquaredOnMaskSmallAndEdgeSizes)
{
    // Sizes around the vector width: tails of every phase, plus the
    // single-amplitude state.
    for (std::size_t nq : {0u, 1u, 2u, 3u, 5u}) {
        const std::vector<Complex> amps = randomState(nq, 7 + nq);
        expectReductionParity(
            [&]() {
                return normSquaredOnMask(amps.data(), amps.size(), 0,
                                         0);
            },
            "normSquaredOnMask small");
    }
}

// ---- computeProbabilities ----------------------------------------------

TEST(ReductionParity, ComputeProbabilitiesAcrossTiersAndLanes)
{
    const std::vector<Complex> amps = randomState(16, 202);
    const std::uint64_t n = amps.size();

    std::vector<double> oracle_probs(n);
    double oracle_total;
    {
        TierScope scope(static_cast<int>(Tier::Scalar));
        oracle_total =
            computeProbabilities(amps.data(), n, oracle_probs.data());
    }
    // The scalar elementwise values are std::norm exactly.
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_TRUE(bitEqual(oracle_probs[i], std::norm(amps[i])));

    runtime::ThreadPool pool(4);
    for (Tier tier : simd::availableTiers()) {
        TierScope scope(static_cast<int>(tier));
        for (int lanes = 1; lanes <= 4; lanes += 3) {
            std::vector<double> probs(n, -1.0);
            double total;
            if (lanes > 1) {
                ParallelScope scope_lanes(&pool, 4);
                total = computeProbabilities(amps.data(), n,
                                             probs.data());
            } else {
                total = computeProbabilities(amps.data(), n,
                                             probs.data());
            }
            EXPECT_TRUE(bitEqual(oracle_total, total))
                << "tier " << simd::tierName(tier) << " lanes "
                << lanes;
            EXPECT_TRUE(bitEqual(oracle_probs, probs))
                << "tier " << simd::tierName(tier) << " lanes "
                << lanes;
        }
    }
}

TEST(ReductionParity, FusedTotalMatchesSumWeightsExactly)
{
    // The documented contract: the fused total is the exact value a
    // subsequent sumWeights over the written probabilities returns,
    // on every tier — AliasTable's two-arg constructor relies on it.
    const std::vector<Complex> amps = randomState(14, 303);
    for (Tier tier : simd::availableTiers()) {
        TierScope scope(static_cast<int>(tier));
        std::vector<double> probs(amps.size());
        const double total = computeProbabilities(
            amps.data(), amps.size(), probs.data());
        EXPECT_TRUE(bitEqual(
            total, sumWeights(probs.data(), probs.size())))
            << "tier " << simd::tierName(tier);
    }
}

// ---- sumWeights --------------------------------------------------------

TEST(ReductionParity, SumWeightsOddSizesAcrossTiersAndLanes)
{
    // Odd / prime / block-straddling lengths: every tail shape.
    for (std::size_t n :
         {std::size_t{1}, std::size_t{3}, std::size_t{7},
          std::size_t{1000}, std::size_t{(1 << 16) - 1},
          std::size_t{(1 << 16) + 13}}) {
        const std::vector<double> w = randomWeights(n, n);
        expectReductionParity(
            [&]() { return sumWeights(w.data(), n); }, "sumWeights");
    }
}

// ---- marginalProbabilities ---------------------------------------------

TEST(ReductionParity, MarginalProbabilitiesAcrossTiersAndLanes)
{
    const std::vector<Complex> amps = randomState(12, 404);
    const std::uint64_t n = amps.size();

    const std::vector<std::vector<Qubit>> marginals = {
        {0},           // single low qubit
        {11},          // single high qubit
        {0, 3, 5},     // scattered ascending
        {5, 3, 0},     // scattered descending (bit order matters)
        {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}, // identity-width
    };
    runtime::ThreadPool pool(4);
    for (const std::vector<Qubit> &qubits : marginals) {
        std::vector<double> oracle;
        {
            TierScope scope(static_cast<int>(Tier::Scalar));
            oracle = marginalProbabilities(amps.data(), n, qubits);
        }
        for (Tier tier : simd::availableTiers()) {
            TierScope scope(static_cast<int>(tier));
            EXPECT_TRUE(bitEqual(
                oracle, marginalProbabilities(amps.data(), n, qubits)))
                << "tier " << simd::tierName(tier) << " serial";
            {
                ParallelScope lanes(&pool, 4);
                EXPECT_TRUE(bitEqual(
                    oracle,
                    marginalProbabilities(amps.data(), n, qubits)))
                    << "tier " << simd::tierName(tier)
                    << " with 4 lanes";
            }
        }
    }
}

// ---- StateVector measure-probability path ------------------------------

TEST(ReductionParity, ProbabilityOfOneAcrossTiers)
{
    Circuit circuit(9);
    for (Qubit q = 0; q < 9; ++q)
        circuit.h(q);
    for (Qubit q = 0; q + 1 < 9; ++q)
        circuit.cx(q, q + 1);
    circuit.rz(0.37, 4).ry(1.1, 7);

    std::vector<double> oracle(9);
    {
        TierScope scope(static_cast<int>(Tier::Scalar));
        StatevectorSimulator sim(5);
        const StateVector state = sim.finalState(circuit);
        for (Qubit q = 0; q < 9; ++q)
            oracle[q] = state.probabilityOfOne(q);
    }
    for (Tier tier : simd::availableTiers()) {
        TierScope scope(static_cast<int>(tier));
        StatevectorSimulator sim(5);
        const StateVector state = sim.finalState(circuit);
        for (Qubit q = 0; q < 9; ++q)
            EXPECT_TRUE(bitEqual(oracle[q], state.probabilityOfOne(q)))
                << "tier " << simd::tierName(tier) << " qubit " << q;
    }
}

// ---- AliasTable guards ---------------------------------------------------

TEST(AliasTableGuards, ZeroTotalThrowsInsteadOfDividing)
{
    EXPECT_THROW(AliasTable({0.0, 0.0, 0.0}), ValueError);
    EXPECT_THROW(AliasTable({0.25, 0.75}, 0.0), ValueError);
}

TEST(AliasTableGuards, NonFiniteTotalThrowsInsteadOfDividing)
{
    const double inf = std::numeric_limits<double>::infinity();
    const double nan = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(AliasTable({1.0, inf}), ValueError);
    EXPECT_THROW(AliasTable({1.0, nan}), ValueError);
    EXPECT_THROW(AliasTable({0.5, 0.5}, inf), ValueError);
    EXPECT_THROW(AliasTable({0.5, 0.5}, nan), ValueError);
}

TEST(AliasTableGuards, DenormalUnderflowStateThrowsNotGarbage)
{
    // |amp|^2 of a ~1e-300 amplitude underflows past the subnormal
    // range to exactly 0.0, so the fused total of a denormal-heavy
    // state is 0 — the renormalising constructor must refuse it.
    std::vector<Complex> amps(1 << 6, Complex{1e-300, 0.0});
    std::vector<double> probs(amps.size());
    const double total =
        computeProbabilities(amps.data(), amps.size(), probs.data());
    EXPECT_EQ(total, 0.0);
    EXPECT_THROW(AliasTable(probs, total), ValueError);
}

TEST(AliasTableGuards, InfiniteAmplitudeSurfacesThroughFusedTotal)
{
    std::vector<Complex> amps = randomState(6, 55);
    amps[17] = Complex{std::numeric_limits<double>::infinity(), 0.0};
    std::vector<double> probs(amps.size());
    const double total =
        computeProbabilities(amps.data(), amps.size(), probs.data());
    EXPECT_FALSE(std::isfinite(total));
    EXPECT_THROW(AliasTable(probs, total), ValueError);
}

TEST(AliasTableGuards, FusedTotalConstructorSamplesLikeOnePass)
{
    // Same weights, delegating vs fused-total construction: identical
    // tables, hence identical draws under the same RNG stream.
    const std::vector<double> w = randomWeights(97, 31);
    const AliasTable one_arg(w);
    const AliasTable two_arg(w, sumWeights(w.data(), w.size()));
    Rng rng_a(123), rng_b(123);
    for (int i = 0; i < 500; ++i)
        EXPECT_EQ(one_arg.sample(rng_a), two_arg.sample(rng_b));
}

// ---- CacheBlockScope -----------------------------------------------------

TEST(CacheBlock, ScopeOverridesAndRestores)
{
    const std::size_t ambient = cacheBlockBytes();
    {
        CacheBlockScope scope(8192);
        EXPECT_EQ(cacheBlockBytes(), 8192u);
        {
            // 0 inherits the surrounding selection.
            CacheBlockScope inner(0);
            EXPECT_EQ(cacheBlockBytes(), 8192u);
        }
        {
            // Non-power-of-two rounds down; tiny values hit the floor.
            CacheBlockScope inner(12345);
            EXPECT_EQ(cacheBlockBytes(), 8192u);
        }
        {
            CacheBlockScope inner(1);
            EXPECT_EQ(cacheBlockBytes(), 4096u);
        }
        EXPECT_EQ(cacheBlockBytes(), 8192u);
    }
    EXPECT_EQ(cacheBlockBytes(), ambient);
}

TEST(CacheBlock, ScopeWinsOverProcessSetting)
{
    setCacheBlockBytes(1 << 16);
    {
        CacheBlockScope scope(4096);
        EXPECT_EQ(cacheBlockBytes(), 4096u);
    }
    EXPECT_EQ(cacheBlockBytes(), std::size_t{1} << 16);
    setCacheBlockBytes(0);
}

// ---- obs counters --------------------------------------------------------

TEST(ReduceCounters, RecordSelectedTier)
{
    auto &registry = obs::MetricsRegistry::global();
    const auto before =
        registry.snapshot().counters["sim.kernels.reduce.scalar"];
    obs::setMetricsEnabled(true);
    {
        TierScope scope(static_cast<int>(Tier::Scalar));
        const std::vector<Complex> amps = randomState(6, 1);
        normSquaredOnMask(amps.data(), amps.size(), 0, 0);
    }
    obs::setMetricsEnabled(false);
    const auto after =
        registry.snapshot().counters["sim.kernels.reduce.scalar"];
    EXPECT_GT(after, before);
}

// ---- end-to-end sampled counts -------------------------------------------

namespace {

/** Terminal-measurement circuit hitting the identity-marginal path. */
Circuit
measureAllCircuit()
{
    Circuit circuit(5, 5);
    circuit.h(0).cx(0, 1).cx(1, 2).ry(0.4, 3).cx(2, 4).rz(0.9, 4);
    circuit.measureAll();
    return circuit;
}

/** Scrambled-subset measurement: the true-marginal alias path. */
Circuit
subsetMeasureCircuit()
{
    Circuit circuit(6, 3);
    circuit.h(0).cx(0, 3).ry(0.8, 5).cx(3, 5).h(2);
    circuit.measure(4, 0).measure(1, 1).measure(5, 2);
    return circuit;
}

std::map<std::uint64_t, std::size_t>
sampledCounts(const Circuit &circuit, int tier, std::size_t threads,
              bool adaptive)
{
    ExecutionEngine engine(EngineOptions{.threads = threads,
                                         .shardShots = 512,
                                         .maxShards = 8,
                                         .simdTier = tier});
    Job job(circuit, 2048, "statevector", 99);
    if (!adaptive)
        return engine.run(job).rawCounts();
    job.stopping.waveShots = 512;
    return engine.runAdaptive(job).rawCounts();
}

} // namespace

TEST(SampledCountsParity, IdenticalAcrossTiersThreadsAndWaves)
{
    for (const Circuit &circuit :
         {measureAllCircuit(), subsetMeasureCircuit()}) {
        const auto oracle = sampledCounts(
            circuit, static_cast<int>(Tier::Scalar), 1, false);
        ASSERT_FALSE(oracle.empty());
        for (Tier tier : simd::availableTiers()) {
            for (std::size_t threads : {std::size_t{1},
                                        std::size_t{4}}) {
                EXPECT_EQ(oracle,
                          sampledCounts(circuit,
                                        static_cast<int>(tier),
                                        threads, false))
                    << "run: tier " << simd::tierName(tier)
                    << " threads " << threads;
                EXPECT_EQ(oracle,
                          sampledCounts(circuit,
                                        static_cast<int>(tier),
                                        threads, true))
                    << "runAdaptive: tier " << simd::tierName(tier)
                    << " threads " << threads;
            }
        }
    }
}

TEST(SampledCountsParity, CacheBlockBudgetIsCountsInvariant)
{
    // The blocked-traversal budget is a pure locality knob: forcing a
    // tiny per-plan budget (so Auto picks Blocked everywhere) must
    // not move a single count.
    const Circuit circuit = measureAllCircuit();
    const auto oracle = sampledCounts(
        circuit, static_cast<int>(Tier::Scalar), 1, false);
    ExecutionEngine engine(EngineOptions{.threads = 4,
                                         .shardShots = 512,
                                         .maxShards = 8,
                                         .simdTier = -1,
                                         .cacheBlockBytes = 4096});
    Job job(circuit, 2048, "statevector", 99);
    EXPECT_EQ(oracle, engine.run(job).rawCounts());
}
