/** @file Tests for the density-matrix and trajectory noisy engines. */

#include <cmath>

#include <gtest/gtest.h>

#include "common/error.hh"
#include "noise/device_model.hh"
#include "sim/density_simulator.hh"
#include "sim/trajectory_simulator.hh"
#include "stats/distance.hh"

namespace qra {
namespace {

NoiseModel
simpleNoise()
{
    NoiseModel noise;
    noise.setGateError(OpKind::CX, 0.05);
    noise.setGateError(OpKind::H, 0.002);
    noise.setReadoutError(0, ReadoutError(0.02, 0.04));
    noise.setReadoutError(1, ReadoutError(0.02, 0.04));
    return noise;
}

TEST(DensitySimulatorTest, IdealBellDistribution)
{
    Circuit c(2, 2);
    c.h(0).cx(0, 1).measureAll();
    DensityMatrixSimulator sim(3);
    const auto dist = sim.exactDistribution(c);
    EXPECT_NEAR(dist.at(0b00), 0.5, 1e-10);
    EXPECT_NEAR(dist.at(0b11), 0.5, 1e-10);
    EXPECT_EQ(dist.count(0b01), 0u);
}

TEST(DensitySimulatorTest, RunCarriesExactDistribution)
{
    Circuit c(1, 1);
    c.h(0).measure(0, 0);
    DensityMatrixSimulator sim(5);
    const Result r = sim.run(c, 1000);
    ASSERT_TRUE(r.exactDistribution().has_value());
    EXPECT_NEAR(r.exactDistribution()->at(0), 0.5, 1e-10);
    EXPECT_EQ(r.shots(), 1000u);
}

TEST(DensitySimulatorTest, UnmeasuredQubitsAreMarginalised)
{
    Circuit c(2, 1);
    c.h(0).cx(0, 1).measure(1, 0);
    DensityMatrixSimulator sim(7);
    const auto dist = sim.exactDistribution(c);
    EXPECT_NEAR(dist.at(0), 0.5, 1e-10);
    EXPECT_NEAR(dist.at(1), 0.5, 1e-10);
}

TEST(DensitySimulatorTest, GateNoiseShowsInDistribution)
{
    Circuit c(2, 2);
    c.h(0).cx(0, 1).measureAll();
    NoiseModel noise;
    noise.setGateError(OpKind::CX, 0.1);
    DensityMatrixSimulator sim(9);
    sim.setNoiseModel(&noise);
    const auto dist = sim.exactDistribution(c);
    // Error outcomes 01/10 appear with noticeable probability.
    EXPECT_GT(dist.at(0b01), 0.005);
    EXPECT_GT(dist.at(0b10), 0.005);
    double total = 0.0;
    for (const auto &[k, p] : dist)
        total += p;
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(DensitySimulatorTest, ReadoutErrorOnDeterministicState)
{
    Circuit c(1, 1);
    c.x(0).measure(0, 0);
    NoiseModel noise;
    noise.setReadoutError(0, ReadoutError(0.0, 0.1));
    DensityMatrixSimulator sim(11);
    sim.setNoiseModel(&noise);
    const auto dist = sim.exactDistribution(c);
    EXPECT_NEAR(dist.at(0), 0.1, 1e-10);
    EXPECT_NEAR(dist.at(1), 0.9, 1e-10);
}

TEST(DensitySimulatorTest, RelaxationDuringIdle)
{
    // Qubit 1 idles while qubit 0 runs many gates; with T1 noise its
    // excited state decays even though nothing touches it.
    Circuit c(2, 1);
    c.x(1);
    for (int i = 0; i < 50; ++i)
        c.x(0).x(0);
    // Fence so the measurement happens after the idle window rather
    // than being scheduled ASAP into the first moments.
    c.barrier();
    c.measure(1, 0);

    NoiseModel noise;
    noise.setGateDuration(OpKind::X, 1000.0);
    noise.setQubitRelaxation(1, 20000.0, 20000.0);
    DensityMatrixSimulator sim(13);
    sim.setNoiseModel(&noise);
    const auto dist = sim.exactDistribution(c);
    // ~101 us of idling at T1 = 20 us: survival well below 1.
    EXPECT_LT(dist.at(1), 0.05);
}

TEST(DensitySimulatorTest, MeasuredQubitReuseRejected)
{
    Circuit c(1, 1);
    c.measure(0, 0).x(0);
    DensityMatrixSimulator sim(15);
    EXPECT_THROW(sim.exactDistribution(c), SimulationError);
}

TEST(DensitySimulatorTest, MidCircuitMeasureOfAncillaWorks)
{
    // Ancilla measured mid-circuit, then only OTHER qubits evolve:
    // exactly the paper's assertion pattern.
    Circuit c(2, 2);
    c.h(0).cx(0, 1).measure(1, 1).h(0).measure(0, 0);
    DensityMatrixSimulator sim(17);
    const auto dist = sim.exactDistribution(c);
    double total = 0.0;
    for (const auto &[k, p] : dist)
        total += p;
    EXPECT_NEAR(total, 1.0, 1e-9);
    // After measuring q1, q0 collapses to a classical state; H gives
    // 50/50 on q0 independent of q1's bit.
    EXPECT_NEAR(dist.at(0b00) + dist.at(0b01), 0.5, 1e-9);
}

TEST(DensitySimulatorTest, PostSelectTracksRetainedFraction)
{
    Circuit c(1, 1);
    c.h(0).postSelect(0, 0).measure(0, 0);
    DensityMatrixSimulator sim(19);
    const auto dist = sim.exactDistribution(c);
    EXPECT_NEAR(dist.at(0), 1.0, 1e-10);
}

TEST(TrajectorySimulatorTest, IdealMatchesStatevector)
{
    Circuit c(2, 2);
    c.h(0).cx(0, 1).measureAll();
    TrajectorySimulator sim(21);
    const Result r = sim.run(c, 5000);
    EXPECT_NEAR(r.probability(std::uint64_t{0b00}), 0.5, 0.03);
    EXPECT_NEAR(r.probability(std::uint64_t{0b11}), 0.5, 0.03);
    EXPECT_EQ(r.count(0b01) + r.count(0b10), 0u);
}

TEST(TrajectorySimulatorTest, AgreesWithDensityUnderNoise)
{
    Circuit c(2, 2);
    c.h(0).cx(0, 1).measureAll();
    const NoiseModel noise = simpleNoise();

    DensityMatrixSimulator exact(23);
    exact.setNoiseModel(&noise);
    const auto dist = exact.exactDistribution(c);

    TrajectorySimulator mc(25);
    mc.setNoiseModel(&noise);
    const Result r = mc.run(c, 20000);

    stats::Distribution empirical;
    for (const auto &[k, n] : r.rawCounts())
        empirical[k] = double(n) / double(r.shots());
    stats::Distribution exact_dist(dist.begin(), dist.end());

    EXPECT_LT(stats::totalVariation(empirical, exact_dist), 0.02);
}

TEST(TrajectorySimulatorTest, HandlesAncillaReuse)
{
    // Measure, reset, reuse: rejected by the density backend but
    // fine here.
    Circuit c(2, 2);
    c.h(0).cx(0, 1).measure(1, 0).reset(1).cx(0, 1).measure(1, 1);
    TrajectorySimulator sim(27);
    const Result r = sim.run(c, 3000);
    // Bits 0 and 1 must agree (same Bell branch measured twice).
    for (const auto &[key, n] : r.rawCounts()) {
        EXPECT_EQ(key & 1, (key >> 1) & 1) << key;
    }
}

TEST(TrajectorySimulatorTest, ReadoutFlipsApplied)
{
    Circuit c(1, 1);
    c.x(0).measure(0, 0);
    NoiseModel noise;
    noise.setReadoutError(0, ReadoutError(0.0, 0.25));
    TrajectorySimulator sim(29);
    sim.setNoiseModel(&noise);
    const Result r = sim.run(c, 20000);
    EXPECT_NEAR(r.probability(std::uint64_t{0}), 0.25, 0.02);
}

TEST(TrajectorySimulatorTest, PostSelectDiscardsAndReports)
{
    Circuit c(1, 1);
    c.h(0).postSelect(0, 1).measure(0, 0);
    TrajectorySimulator sim(31);
    const Result r = sim.run(c, 1000);
    EXPECT_EQ(r.count(std::uint64_t{1}), 1000u);
    EXPECT_NEAR(r.retainedFraction(), 0.5, 0.06);
}

TEST(TrajectorySimulatorTest, ImpossiblePostSelectThrows)
{
    Circuit c(1, 1);
    c.postSelect(0, 1).measure(0, 0); // |0> post-selected on 1
    TrajectorySimulator sim(33);
    EXPECT_THROW(sim.run(c, 10), SimulationError);
}

TEST(TrajectorySimulatorTest, RelaxationDecaysExcitedState)
{
    Circuit c(1, 1);
    c.x(0);
    for (int i = 0; i < 20; ++i)
        c.i(0);
    c.measure(0, 0);
    NoiseModel noise;
    noise.setGateDuration(OpKind::I, 5000.0);
    noise.setGateDuration(OpKind::X, 100.0);
    noise.setQubitRelaxation(0, 50000.0, 50000.0);
    TrajectorySimulator sim(35);
    sim.setNoiseModel(&noise);
    const Result r = sim.run(c, 5000);
    // 100 us at T1 = 50 us: survival ~ exp(-2) ~ 0.135.
    EXPECT_NEAR(r.probability(std::uint64_t{1}), std::exp(-2.0), 0.05);
}

TEST(IbmqxDeviceSmokeTest, BellOnIbmqx4HasErrorsButMostlyCorrect)
{
    const DeviceModel device = DeviceModel::ibmqx4();
    Circuit c(5, 2);
    c.h(1).cx(1, 0).measure(1, 0).measure(0, 1);
    DensityMatrixSimulator sim(37);
    sim.setNoiseModel(&device.noiseModel());
    const auto dist = sim.exactDistribution(c);
    const double correct = dist.at(0b00) + dist.at(0b11);
    EXPECT_GT(correct, 0.85);
    EXPECT_LT(correct, 0.999);
}

} // namespace
} // namespace qra
