/**
 * @file
 * Kernel-subsystem tests: every specialized gate kernel (and the
 * fusion pass) must match the generic dense-matrix path on random
 * states, at one lane and at several; intra-shot parallelism must be
 * bit-deterministic; the alias table must reproduce its distribution.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/error.hh"
#include "common/rng.hh"
#include "runtime/execution_engine.hh"
#include "runtime/thread_pool.hh"
#include "sim/kernels/alias_table.hh"
#include "sim/kernels/kernels.hh"
#include "sim/kernels/parallel.hh"
#include "sim/kernels/plan.hh"
#include "sim/shot_util.hh"
#include "sim/statevector_simulator.hh"
#include "testutil.hh"

namespace qra {
namespace {

/** Random normalized state over n qubits. */
StateVector
randomState(std::size_t num_qubits, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Complex> amps(std::size_t{1} << num_qubits);
    for (Complex &a : amps)
        a = Complex{rng.uniform() - 0.5, rng.uniform() - 0.5};
    return StateVector::fromAmplitudes(std::move(amps));
}

/** Random operation drawn over the whole gate vocabulary. */
Operation
randomOperation(std::size_t num_qubits, Rng &rng)
{
    static const std::vector<OpKind> kinds = {
        OpKind::I,  OpKind::X,    OpKind::Y,  OpKind::Z,  OpKind::H,
        OpKind::S,  OpKind::Sdg,  OpKind::T,  OpKind::Tdg,
        OpKind::SX, OpKind::RX,   OpKind::RY, OpKind::RZ, OpKind::P,
        OpKind::U,  OpKind::CX,   OpKind::CY, OpKind::CZ,
        OpKind::Swap, OpKind::CCX};
    for (;;) {
        const OpKind kind = kinds[rng.below(kinds.size())];
        const std::size_t arity = opNumQubits(kind);
        if (arity > num_qubits)
            continue;
        Operation op{.kind = kind};
        // Distinct random operands.
        while (op.qubits.size() < arity) {
            const Qubit q = static_cast<Qubit>(rng.below(num_qubits));
            bool dup = false;
            for (Qubit used : op.qubits)
                dup = dup || used == q;
            if (!dup)
                op.qubits.push_back(q);
        }
        for (std::size_t p = 0; p < opNumParams(kind); ++p)
            op.params.push_back(rng.uniform() * 2.0 * M_PI);
        return op;
    }
}

/** Apply @p op through the generic dense path only (the reference). */
void
applyDense(StateVector &sv, const Operation &op)
{
    std::vector<Complex> amps = sv.amplitudes();
    kernels::applyGenericK(amps.data(), amps.size(), op.matrix(),
                           op.qubits);
    sv = StateVector::fromAmplitudes(std::move(amps));
}

TEST(KernelsTest, SpecializedKernelsMatchDensePath)
{
    Rng rng(101);
    for (int round = 0; round < 200; ++round) {
        const std::size_t n = 2 + rng.below(4); // 2..5 qubits
        const Operation op = randomOperation(n, rng);
        StateVector fast = randomState(n, 7000 + round);
        StateVector reference = fast;
        fast.applyUnitary(op); // kernel dispatch
        applyDense(reference, op);
        test::expectAmplitudesNear(fast.amplitudes(),
                                   reference.amplitudes(), 1e-12);
    }
}

TEST(KernelsTest, KernelsMatchDensePathMultiThreaded)
{
    runtime::ThreadPool pool(4);
    Rng rng(103);
    for (int round = 0; round < 60; ++round) {
        const std::size_t n = 2 + rng.below(4);
        const Operation op = randomOperation(n, rng);
        StateVector fast = randomState(n, 9000 + round);
        StateVector reference = fast;
        {
            kernels::ParallelScope scope(&pool, 4);
            fast.applyUnitary(op);
        }
        applyDense(reference, op);
        test::expectAmplitudesNear(fast.amplitudes(),
                                   reference.amplitudes(), 1e-12);
    }
}

TEST(KernelsTest, ParallelGateApplicationIsBitIdentical)
{
    // Large enough state that the amplitude loops actually split.
    runtime::ThreadPool pool(4);
    const Operation ops[] = {
        {.kind = OpKind::H, .qubits = {9}},
        {.kind = OpKind::RZ, .qubits = {3}, .params = {0.7}},
        {.kind = OpKind::X, .qubits = {14}},
        {.kind = OpKind::CX, .qubits = {2, 12}},
        {.kind = OpKind::CZ, .qubits = {0, 15}},
        {.kind = OpKind::CCX, .qubits = {1, 8, 13}},
    };
    StateVector serial = randomState(16, 42);
    StateVector parallel = serial;
    for (const Operation &op : ops)
        serial.applyUnitary(op);
    {
        kernels::ParallelScope scope(&pool, 4);
        for (const Operation &op : ops)
            parallel.applyUnitary(op);
    }
    // Bit-identical, not just close: splits touch disjoint elements.
    EXPECT_EQ(serial.amplitudes(), parallel.amplitudes());
}

TEST(KernelsTest, ParallelReductionsAreBitIdentical)
{
    runtime::ThreadPool pool(4);
    const StateVector sv = randomState(17, 57);
    const double serial_p1 = sv.probabilityOfOne(5);
    const double serial_norm = sv.norm();
    double parallel_p1 = 0.0, parallel_norm = 0.0;
    {
        kernels::ParallelScope scope(&pool, 4);
        parallel_p1 = sv.probabilityOfOne(5);
        parallel_norm = sv.norm();
    }
    // Fixed-block reduction: identical rounding at any lane count.
    EXPECT_EQ(serial_p1, parallel_p1);
    EXPECT_EQ(serial_norm, parallel_norm);
}

TEST(KernelsTest, FusionMatchesUnfusedOnRandomCircuits)
{
    Rng rng(211);
    for (int round = 0; round < 40; ++round) {
        const std::size_t n = 2 + rng.below(3);
        Circuit c(n, n);
        for (int g = 0; g < 30; ++g)
            c.append(randomOperation(n, rng));

        const kernels::ExecutablePlan fused =
            kernels::ExecutablePlan::compile(c, true);
        const kernels::ExecutablePlan unfused =
            kernels::ExecutablePlan::compile(c, false);
        EXPECT_LE(fused.entries().size(), unfused.entries().size());

        StateVector fast = randomState(n, 5000 + round);
        StateVector reference = fast;
        for (const kernels::PlanEntry &entry : fused.entries())
            fast.applyKernel(entry);
        for (const Operation &op : c.ops()) {
            if (op.kind != OpKind::Barrier && op.kind != OpKind::I)
                applyDense(reference, op);
        }
        test::expectAmplitudesNear(fast.amplitudes(),
                                   reference.amplitudes(), 1e-12);
    }
}

TEST(KernelsTest, FusionCollapsesInverseRunsToNothing)
{
    Circuit c(1, 1);
    c.h(0).h(0); // H H = I exactly
    const kernels::ExecutablePlan plan =
        kernels::ExecutablePlan::compile(c, true);
    EXPECT_TRUE(plan.entries().empty());
    EXPECT_EQ(plan.stats().fusedGates, 2u);
}

TEST(KernelsTest, FusionStopsAtBarriersAndMeasurements)
{
    Circuit c(2, 2);
    c.h(0).barrier().h(0); // barrier fences fusion
    const kernels::ExecutablePlan fenced =
        kernels::ExecutablePlan::compile(c, true);
    EXPECT_EQ(fenced.entries().size(), 2u);

    Circuit cm(1, 1);
    cm.h(0).measure(0, 0).h(0);
    const kernels::ExecutablePlan measured =
        kernels::ExecutablePlan::compile(cm, true);
    // H, Measure, H: the measurement pins both hadamards in place.
    ASSERT_EQ(measured.entries().size(), 3u);
    EXPECT_EQ(measured.entries()[1].kind,
              kernels::KernelKind::Measure);
}

TEST(KernelsTest, SampledCountsBitIdenticalAcrossLaneCounts)
{
    // End-to-end determinism: same seed, 1 vs 4 intra-shot lanes,
    // merged counts must match exactly.
    Circuit c(12, 12);
    Rng rng(31);
    for (int g = 0; g < 60; ++g)
        c.append(randomOperation(12, rng));
    c.measureAll();

    runtime::ExecutionEngine one_lane(runtime::EngineOptions{
        .threads = 1, .shardShots = 256, .intraThreads = 1});
    runtime::ExecutionEngine four_lanes(runtime::EngineOptions{
        .threads = 4, .shardShots = 256, .intraThreads = 4});
    const Result a = one_lane.run(c, 1024, "statevector", 77);
    const Result b = four_lanes.run(c, 1024, "statevector", 77);
    EXPECT_EQ(a.rawCounts(), b.rawCounts());
}

TEST(KernelsTest, PerShotCountsBitIdenticalAcrossLaneCounts)
{
    // Mid-circuit measurement forces the per-shot path; measurement
    // collapse probabilities come from the deterministic reduction.
    Circuit c(10, 2);
    Rng rng(33);
    for (int g = 0; g < 30; ++g)
        c.append(randomOperation(10, rng));
    c.measure(0, 0).reset(0);
    for (int g = 0; g < 10; ++g)
        c.append(randomOperation(10, rng));
    c.measure(0, 1);

    runtime::ExecutionEngine one_lane(runtime::EngineOptions{
        .threads = 1, .shardShots = 64, .intraThreads = 1});
    runtime::ExecutionEngine four_lanes(runtime::EngineOptions{
        .threads = 4, .shardShots = 64, .intraThreads = 4});
    const Result a = one_lane.run(c, 128, "statevector", 99);
    const Result b = four_lanes.run(c, 128, "statevector", 99);
    EXPECT_EQ(a.rawCounts(), b.rawCounts());
}

TEST(KernelsTest, AliasTableReproducesDistribution)
{
    const std::vector<double> weights = {0.5, 0.25, 0.125, 0.125};
    const kernels::AliasTable table(weights);
    Rng rng(5);
    std::vector<std::size_t> counts(weights.size(), 0);
    const std::size_t draws = 200000;
    for (std::size_t i = 0; i < draws; ++i)
        ++counts[table.sample(rng)];
    for (std::size_t i = 0; i < weights.size(); ++i)
        EXPECT_NEAR(static_cast<double>(counts[i]) / draws,
                    weights[i], 0.01)
            << "outcome " << i;
}

TEST(KernelsTest, AliasTableHandlesEdgeCases)
{
    // Deterministic single outcome.
    const kernels::AliasTable point({0.0, 3.0, 0.0});
    Rng rng(9);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(point.sample(rng), 1u);

    // Unnormalised weights are fine; invalid ones throw.
    EXPECT_NO_THROW((kernels::AliasTable({2.0, 6.0})));
    EXPECT_THROW((kernels::AliasTable({})), ValueError);
    EXPECT_THROW((kernels::AliasTable({0.0, 0.0})), ValueError);
    EXPECT_THROW((kernels::AliasTable({1.0, -0.5})), ValueError);
}

TEST(KernelsTest, AliasTableMatchesStateVectorProbabilities)
{
    const StateVector sv = randomState(6, 77);
    const kernels::AliasTable table(sv.probabilities());
    Rng rng(13);
    std::vector<std::size_t> counts(sv.dim(), 0);
    const std::size_t draws = 300000;
    for (std::size_t i = 0; i < draws; ++i)
        ++counts[table.sample(rng)];
    const std::vector<double> probs = sv.probabilities();
    for (std::size_t i = 0; i < sv.dim(); ++i)
        EXPECT_NEAR(static_cast<double>(counts[i]) / draws, probs[i],
                    0.01);
}

TEST(KernelsTest, BoundsCheckedFastPaths)
{
    // X, Z, CZ used to index out of range without a check (only CX
    // threw); all specializations must reject bad operands now.
    StateVector sv(2);
    EXPECT_THROW(
        sv.applyUnitary({.kind = OpKind::X, .qubits = {2}}),
        IndexError);
    EXPECT_THROW(
        sv.applyUnitary({.kind = OpKind::Z, .qubits = {5}}),
        IndexError);
    EXPECT_THROW(
        sv.applyUnitary({.kind = OpKind::CZ, .qubits = {0, 2}}),
        IndexError);
    EXPECT_THROW(
        sv.applyUnitary({.kind = OpKind::CX, .qubits = {3, 0}}),
        IndexError);
    EXPECT_THROW(
        sv.applyUnitary({.kind = OpKind::Swap, .qubits = {0, 4}}),
        IndexError);
    EXPECT_THROW(
        sv.applyUnitary({.kind = OpKind::H, .qubits = {2}}),
        IndexError);
    // Mask-kernel operands >= 64 would wrap the bit shift before the
    // state-size check can see it; they must throw, not alias.
    EXPECT_THROW(
        sv.applyUnitary({.kind = OpKind::Z, .qubits = {64}}),
        IndexError);
    EXPECT_THROW(
        sv.applyUnitary({.kind = OpKind::CZ, .qubits = {0, 130}}),
        IndexError);
}

TEST(KernelsTest, AttemptBudgetSaturatesInsteadOfOverflowing)
{
    EXPECT_EQ(postSelectAttemptBudget(10), 2000u);
    const std::size_t huge =
        std::numeric_limits<std::size_t>::max() / 2;
    EXPECT_EQ(postSelectAttemptBudget(huge),
              std::numeric_limits<std::size_t>::max());
    EXPECT_GT(postSelectAttemptBudget(huge), huge);
}

TEST(KernelsTest, ParallelForPropagatesExceptions)
{
    runtime::ThreadPool pool(2);
    kernels::ParallelScope scope(&pool, 2);
    EXPECT_THROW(
        kernels::parallelFor(std::uint64_t{1} << 16, /*grain=*/1,
                             [](std::uint64_t begin, std::uint64_t) {
                                 if (begin == 0)
                                     throw ValueError("boom");
                             }),
        ValueError);
}

} // namespace
} // namespace qra
