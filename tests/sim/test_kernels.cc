/**
 * @file
 * Kernel-subsystem tests: every specialized gate kernel (and the
 * fusion pass) must match the generic dense-matrix path on random
 * states, at one lane and at several; intra-shot parallelism must be
 * bit-deterministic; the alias table must reproduce its distribution.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/error.hh"
#include "common/rng.hh"
#include "runtime/execution_engine.hh"
#include "runtime/thread_pool.hh"
#include "sim/kernels/alias_table.hh"
#include "sim/kernels/kernels.hh"
#include "sim/kernels/parallel.hh"
#include "sim/kernels/plan.hh"
#include "sim/shot_util.hh"
#include "sim/statevector_simulator.hh"
#include "testutil.hh"

namespace qra {
namespace {

/** Random normalized state over n qubits. */
StateVector
randomState(std::size_t num_qubits, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Complex> amps(std::size_t{1} << num_qubits);
    for (Complex &a : amps)
        a = Complex{rng.uniform() - 0.5, rng.uniform() - 0.5};
    return StateVector::fromAmplitudes(std::move(amps));
}

/** Random operation drawn over the whole gate vocabulary. */
Operation
randomOperation(std::size_t num_qubits, Rng &rng)
{
    static const std::vector<OpKind> kinds = {
        OpKind::I,  OpKind::X,    OpKind::Y,  OpKind::Z,  OpKind::H,
        OpKind::S,  OpKind::Sdg,  OpKind::T,  OpKind::Tdg,
        OpKind::SX, OpKind::RX,   OpKind::RY, OpKind::RZ, OpKind::P,
        OpKind::U,  OpKind::CX,   OpKind::CY, OpKind::CZ,
        OpKind::Swap, OpKind::CCX};
    for (;;) {
        const OpKind kind = kinds[rng.below(kinds.size())];
        const std::size_t arity = opNumQubits(kind);
        if (arity > num_qubits)
            continue;
        Operation op{.kind = kind};
        // Distinct random operands.
        while (op.qubits.size() < arity) {
            const Qubit q = static_cast<Qubit>(rng.below(num_qubits));
            bool dup = false;
            for (Qubit used : op.qubits)
                dup = dup || used == q;
            if (!dup)
                op.qubits.push_back(q);
        }
        for (std::size_t p = 0; p < opNumParams(kind); ++p)
            op.params.push_back(rng.uniform() * 2.0 * M_PI);
        return op;
    }
}

/** Apply @p op through the generic dense path only (the reference). */
void
applyDense(StateVector &sv, const Operation &op)
{
    std::vector<Complex> amps = sv.amplitudes();
    kernels::applyGenericK(amps.data(), amps.size(), op.matrix(),
                           op.qubits);
    sv = StateVector::fromAmplitudes(std::move(amps));
}

TEST(KernelsTest, SpecializedKernelsMatchDensePath)
{
    Rng rng(101);
    for (int round = 0; round < 200; ++round) {
        const std::size_t n = 2 + rng.below(4); // 2..5 qubits
        const Operation op = randomOperation(n, rng);
        StateVector fast = randomState(n, 7000 + round);
        StateVector reference = fast;
        fast.applyUnitary(op); // kernel dispatch
        applyDense(reference, op);
        test::expectAmplitudesNear(fast.amplitudes(),
                                   reference.amplitudes(), 1e-12);
    }
}

TEST(KernelsTest, KernelsMatchDensePathMultiThreaded)
{
    runtime::ThreadPool pool(4);
    Rng rng(103);
    for (int round = 0; round < 60; ++round) {
        const std::size_t n = 2 + rng.below(4);
        const Operation op = randomOperation(n, rng);
        StateVector fast = randomState(n, 9000 + round);
        StateVector reference = fast;
        {
            kernels::ParallelScope scope(&pool, 4);
            fast.applyUnitary(op);
        }
        applyDense(reference, op);
        test::expectAmplitudesNear(fast.amplitudes(),
                                   reference.amplitudes(), 1e-12);
    }
}

TEST(KernelsTest, ParallelGateApplicationIsBitIdentical)
{
    // Large enough state that the amplitude loops actually split.
    runtime::ThreadPool pool(4);
    const Operation ops[] = {
        {.kind = OpKind::H, .qubits = {9}},
        {.kind = OpKind::RZ, .qubits = {3}, .params = {0.7}},
        {.kind = OpKind::X, .qubits = {14}},
        {.kind = OpKind::CX, .qubits = {2, 12}},
        {.kind = OpKind::CZ, .qubits = {0, 15}},
        {.kind = OpKind::CCX, .qubits = {1, 8, 13}},
    };
    StateVector serial = randomState(16, 42);
    StateVector parallel = serial;
    for (const Operation &op : ops)
        serial.applyUnitary(op);
    {
        kernels::ParallelScope scope(&pool, 4);
        for (const Operation &op : ops)
            parallel.applyUnitary(op);
    }
    // Bit-identical, not just close: splits touch disjoint elements.
    EXPECT_EQ(serial.amplitudes(), parallel.amplitudes());
}

TEST(KernelsTest, ParallelReductionsAreBitIdentical)
{
    runtime::ThreadPool pool(4);
    const StateVector sv = randomState(17, 57);
    const double serial_p1 = sv.probabilityOfOne(5);
    const double serial_norm = sv.norm();
    double parallel_p1 = 0.0, parallel_norm = 0.0;
    {
        kernels::ParallelScope scope(&pool, 4);
        parallel_p1 = sv.probabilityOfOne(5);
        parallel_norm = sv.norm();
    }
    // Fixed-block reduction: identical rounding at any lane count.
    EXPECT_EQ(serial_p1, parallel_p1);
    EXPECT_EQ(serial_norm, parallel_norm);
}

TEST(KernelsTest, FusionMatchesUnfusedOnRandomCircuits)
{
    Rng rng(211);
    for (int round = 0; round < 40; ++round) {
        const std::size_t n = 2 + rng.below(3);
        Circuit c(n, n);
        for (int g = 0; g < 30; ++g)
            c.append(randomOperation(n, rng));

        const kernels::ExecutablePlan fused =
            kernels::ExecutablePlan::compile(c, true);
        const kernels::ExecutablePlan unfused =
            kernels::ExecutablePlan::compile(c, false);
        EXPECT_LE(fused.entries().size(), unfused.entries().size());

        StateVector fast = randomState(n, 5000 + round);
        StateVector reference = fast;
        for (const kernels::PlanEntry &entry : fused.entries())
            fast.applyKernel(entry);
        for (const Operation &op : c.ops()) {
            if (op.kind != OpKind::Barrier && op.kind != OpKind::I)
                applyDense(reference, op);
        }
        test::expectAmplitudesNear(fast.amplitudes(),
                                   reference.amplitudes(), 1e-12);
    }
}

TEST(KernelsTest, TwoQubitWindowFusionMatchesDenseReference)
{
    Rng rng(223);
    for (int round = 0; round < 40; ++round) {
        const std::size_t n = 2 + rng.below(3);
        Circuit c(n, n);
        for (int g = 0; g < 30; ++g)
            c.append(randomOperation(n, rng));

        const kernels::ExecutablePlan fused =
            kernels::ExecutablePlan::compile(c, kernels::kFusion2q);
        const kernels::ExecutablePlan unfused =
            kernels::ExecutablePlan::compile(c, kernels::kFusionNone);
        EXPECT_LE(fused.entries().size(), unfused.entries().size());

        StateVector fast = randomState(n, 6000 + round);
        StateVector reference = fast;
        for (const kernels::PlanEntry &entry : fused.entries())
            fast.applyKernel(entry);
        for (const Operation &op : c.ops()) {
            if (op.kind != OpKind::Barrier && op.kind != OpKind::I)
                applyDense(reference, op);
        }
        test::expectAmplitudesNear(fast.amplitudes(),
                                   reference.amplitudes(), 1e-12);
    }
}

TEST(KernelsTest, WindowFusionFindsStructure)
{
    // H-CX-H on the target is CZ: one phase-mask entry.
    Circuit hch(2, 2);
    hch.h(1).cx(0, 1).h(1);
    const kernels::ExecutablePlan cz =
        kernels::ExecutablePlan::compile(hch, kernels::kFusion2q);
    ASSERT_EQ(cz.entries().size(), 1u);
    EXPECT_EQ(cz.entries()[0].kind, kernels::KernelKind::PhaseOnMask);
    EXPECT_EQ(cz.entries()[0].mask, 0b11u);

    // CX-CX cancels to nothing.
    Circuit cxcx(2, 2);
    cxcx.cx(0, 1).cx(0, 1);
    EXPECT_TRUE(kernels::ExecutablePlan::compile(
                    cxcx, kernels::kFusion2q)
                    .entries()
                    .empty());

    // H then CX is NOT cheaper as one dense 4x4: the cost model must
    // refuse and keep both entries.
    Circuit hcx(2, 2);
    hcx.h(0).cx(0, 1);
    EXPECT_EQ(kernels::ExecutablePlan::compile(hcx,
                                               kernels::kFusion2q)
                  .entries()
                  .size(),
              2u);

    // Windows must not cross a barrier.
    Circuit fenced(2, 2);
    fenced.cx(0, 1).barrier().cx(0, 1);
    EXPECT_EQ(kernels::ExecutablePlan::compile(fenced,
                                               kernels::kFusion2q)
                  .entries()
                  .size(),
              2u);
}

TEST(KernelsTest, Classify2qDetectsSeparableAndControlled)
{
    // X ⊗ I (acts on q0 only) classifies down to the 1q permutation.
    Complex x_on_q0[16] = {};
    x_on_q0[0 * 4 + 1] = 1.0;
    x_on_q0[1 * 4 + 0] = 1.0;
    x_on_q0[2 * 4 + 3] = 1.0;
    x_on_q0[3 * 4 + 2] = 1.0;
    const kernels::PlanEntry x_entry =
        kernels::classify2q(3, 5, x_on_q0);
    EXPECT_EQ(x_entry.kind, kernels::KernelKind::PauliX);
    EXPECT_EQ(x_entry.q0, 3u);

    // Controlled-on-q1 phase structure.
    Complex cs[16] = {};
    cs[0] = cs[5] = cs[10] = 1.0;
    cs[15] = Complex{0.0, 1.0};
    const kernels::PlanEntry cs_entry = kernels::classify2q(0, 1, cs);
    EXPECT_EQ(cs_entry.kind, kernels::KernelKind::PhaseOnMask);
    EXPECT_EQ(cs_entry.mask, 0b11u);

    // Swap permutation.
    Complex swap[16] = {};
    swap[0] = swap[15] = 1.0;
    swap[2 * 4 + 1] = 1.0;
    swap[1 * 4 + 2] = 1.0;
    EXPECT_EQ(kernels::classify2q(0, 1, swap).kind,
              kernels::KernelKind::SwapQubits);
}

TEST(KernelsTest, MarginalMatchesSerialReference)
{
    // 17 qubits: above the reduce-block size, so the blocked scatter
    // path actually engages.
    const StateVector sv = randomState(17, 91);
    Rng rng(17);
    for (int round = 0; round < 6; ++round) {
        std::vector<Qubit> qubits;
        const std::size_t k = 1 + rng.below(5);
        while (qubits.size() < k) {
            const Qubit q = static_cast<Qubit>(rng.below(17));
            bool dup = false;
            for (Qubit used : qubits)
                dup = dup || used == q;
            if (!dup)
                qubits.push_back(q);
        }

        // Serial reference: the pre-PR scatter.
        std::vector<double> reference(std::size_t{1} << k, 0.0);
        const auto &amps = sv.amplitudes();
        for (std::uint64_t i = 0; i < amps.size(); ++i) {
            std::uint64_t key = 0;
            for (std::size_t j = 0; j < k; ++j)
                if ((i >> qubits[j]) & 1)
                    key |= std::uint64_t{1} << j;
            reference[key] += std::norm(amps[i]);
        }

        const std::vector<double> blocked =
            sv.marginalProbabilities(qubits);
        ASSERT_EQ(blocked.size(), reference.size());
        for (std::size_t j = 0; j < blocked.size(); ++j)
            EXPECT_NEAR(blocked[j], reference[j], 1e-12);
    }
}

TEST(KernelsTest, MarginalBitIdenticalAcrossLaneCounts)
{
    const StateVector sv = randomState(17, 93);
    const std::vector<Qubit> qubits = {2, 9, 14, 4};
    const std::vector<double> serial =
        sv.marginalProbabilities(qubits);
    runtime::ThreadPool pool(4);
    std::vector<double> parallel;
    {
        kernels::ParallelScope scope(&pool, 4);
        parallel = sv.marginalProbabilities(qubits);
    }
    // Fixed-block merge: identical rounding at any lane count.
    EXPECT_EQ(serial, parallel);
}

TEST(KernelsTest, SubsetSampledHistogramMatchesMarginal)
{
    // Ancilla-subset measurement through the sampled path must
    // reproduce the dense marginal distribution.
    Circuit c(8, 3);
    Rng rng(47);
    for (int g = 0; g < 40; ++g)
        c.append(randomOperation(8, rng));
    const std::vector<Qubit> measured = {1, 4, 6};
    for (std::size_t j = 0; j < measured.size(); ++j)
        c.measure(measured[j], static_cast<Clbit>(j));

    StatevectorSimulator prep(3);
    Circuit bare(8, 3);
    for (const Operation &op : c.ops())
        if (op.kind != OpKind::Measure)
            bare.append(op);
    const std::vector<double> marginal =
        prep.finalState(bare).marginalProbabilities(measured);

    StatevectorSimulator sim(29);
    const std::size_t shots = 60000;
    const Result result = sim.run(c, shots);
    for (std::size_t b = 0; b < marginal.size(); ++b)
        EXPECT_NEAR(result.probability(b), marginal[b], 0.01)
            << "outcome " << b;
}

TEST(KernelsTest, FusionCollapsesInverseRunsToNothing)
{
    Circuit c(1, 1);
    c.h(0).h(0); // H H = I exactly
    const kernels::ExecutablePlan plan =
        kernels::ExecutablePlan::compile(c, true);
    EXPECT_TRUE(plan.entries().empty());
    EXPECT_EQ(plan.stats().fusedGates, 2u);
}

TEST(KernelsTest, FusionStopsAtBarriersAndMeasurements)
{
    Circuit c(2, 2);
    c.h(0).barrier().h(0); // barrier fences fusion
    const kernels::ExecutablePlan fenced =
        kernels::ExecutablePlan::compile(c, true);
    EXPECT_EQ(fenced.entries().size(), 2u);

    Circuit cm(1, 1);
    cm.h(0).measure(0, 0).h(0);
    const kernels::ExecutablePlan measured =
        kernels::ExecutablePlan::compile(cm, true);
    // H, Measure, H: the measurement pins both hadamards in place.
    ASSERT_EQ(measured.entries().size(), 3u);
    EXPECT_EQ(measured.entries()[1].kind,
              kernels::KernelKind::Measure);
}

TEST(KernelsTest, SampledCountsBitIdenticalAcrossLaneCounts)
{
    // End-to-end determinism: same seed, 1 vs 4 intra-shot lanes,
    // merged counts must match exactly.
    Circuit c(12, 12);
    Rng rng(31);
    for (int g = 0; g < 60; ++g)
        c.append(randomOperation(12, rng));
    c.measureAll();

    runtime::ExecutionEngine one_lane(runtime::EngineOptions{
        .threads = 1, .shardShots = 256, .intraThreads = 1});
    runtime::ExecutionEngine four_lanes(runtime::EngineOptions{
        .threads = 4, .shardShots = 256, .intraThreads = 4});
    const Result a = one_lane.run(c, 1024, "statevector", 77);
    const Result b = four_lanes.run(c, 1024, "statevector", 77);
    EXPECT_EQ(a.rawCounts(), b.rawCounts());
}

TEST(KernelsTest, PerShotCountsBitIdenticalAcrossLaneCounts)
{
    // Mid-circuit measurement forces the per-shot path; measurement
    // collapse probabilities come from the deterministic reduction.
    Circuit c(10, 2);
    Rng rng(33);
    for (int g = 0; g < 30; ++g)
        c.append(randomOperation(10, rng));
    c.measure(0, 0).reset(0);
    for (int g = 0; g < 10; ++g)
        c.append(randomOperation(10, rng));
    c.measure(0, 1);

    runtime::ExecutionEngine one_lane(runtime::EngineOptions{
        .threads = 1, .shardShots = 64, .intraThreads = 1});
    runtime::ExecutionEngine four_lanes(runtime::EngineOptions{
        .threads = 4, .shardShots = 64, .intraThreads = 4});
    const Result a = one_lane.run(c, 128, "statevector", 99);
    const Result b = four_lanes.run(c, 128, "statevector", 99);
    EXPECT_EQ(a.rawCounts(), b.rawCounts());
}

TEST(KernelsTest, AliasTableReproducesDistribution)
{
    const std::vector<double> weights = {0.5, 0.25, 0.125, 0.125};
    const kernels::AliasTable table(weights);
    Rng rng(5);
    std::vector<std::size_t> counts(weights.size(), 0);
    const std::size_t draws = 200000;
    for (std::size_t i = 0; i < draws; ++i)
        ++counts[table.sample(rng)];
    for (std::size_t i = 0; i < weights.size(); ++i)
        EXPECT_NEAR(static_cast<double>(counts[i]) / draws,
                    weights[i], 0.01)
            << "outcome " << i;
}

TEST(KernelsTest, AliasTableHandlesEdgeCases)
{
    // Deterministic single outcome.
    const kernels::AliasTable point({0.0, 3.0, 0.0});
    Rng rng(9);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(point.sample(rng), 1u);

    // Unnormalised weights are fine; invalid ones throw.
    EXPECT_NO_THROW((kernels::AliasTable({2.0, 6.0})));
    EXPECT_THROW((kernels::AliasTable({})), ValueError);
    EXPECT_THROW((kernels::AliasTable({0.0, 0.0})), ValueError);
    EXPECT_THROW((kernels::AliasTable({1.0, -0.5})), ValueError);
}

TEST(KernelsTest, AliasTableMatchesStateVectorProbabilities)
{
    const StateVector sv = randomState(6, 77);
    const kernels::AliasTable table(sv.probabilities());
    Rng rng(13);
    std::vector<std::size_t> counts(sv.dim(), 0);
    const std::size_t draws = 300000;
    for (std::size_t i = 0; i < draws; ++i)
        ++counts[table.sample(rng)];
    const std::vector<double> probs = sv.probabilities();
    for (std::size_t i = 0; i < sv.dim(); ++i)
        EXPECT_NEAR(static_cast<double>(counts[i]) / draws, probs[i],
                    0.01);
}

TEST(KernelsTest, BoundsCheckedFastPaths)
{
    // X, Z, CZ used to index out of range without a check (only CX
    // threw); all specializations must reject bad operands now.
    StateVector sv(2);
    EXPECT_THROW(
        sv.applyUnitary({.kind = OpKind::X, .qubits = {2}}),
        IndexError);
    EXPECT_THROW(
        sv.applyUnitary({.kind = OpKind::Z, .qubits = {5}}),
        IndexError);
    EXPECT_THROW(
        sv.applyUnitary({.kind = OpKind::CZ, .qubits = {0, 2}}),
        IndexError);
    EXPECT_THROW(
        sv.applyUnitary({.kind = OpKind::CX, .qubits = {3, 0}}),
        IndexError);
    EXPECT_THROW(
        sv.applyUnitary({.kind = OpKind::Swap, .qubits = {0, 4}}),
        IndexError);
    EXPECT_THROW(
        sv.applyUnitary({.kind = OpKind::H, .qubits = {2}}),
        IndexError);
    // Mask-kernel operands >= 64 would wrap the bit shift before the
    // state-size check can see it; they must throw, not alias.
    EXPECT_THROW(
        sv.applyUnitary({.kind = OpKind::Z, .qubits = {64}}),
        IndexError);
    EXPECT_THROW(
        sv.applyUnitary({.kind = OpKind::CZ, .qubits = {0, 130}}),
        IndexError);
}

TEST(KernelsTest, AttemptBudgetSaturatesInsteadOfOverflowing)
{
    EXPECT_EQ(postSelectAttemptBudget(10), 2000u);
    const std::size_t huge =
        std::numeric_limits<std::size_t>::max() / 2;
    EXPECT_EQ(postSelectAttemptBudget(huge),
              std::numeric_limits<std::size_t>::max());
    EXPECT_GT(postSelectAttemptBudget(huge), huge);
}

TEST(KernelsTest, ParallelForPropagatesExceptions)
{
    runtime::ThreadPool pool(2);
    kernels::ParallelScope scope(&pool, 2);
    EXPECT_THROW(
        kernels::parallelFor(std::uint64_t{1} << 16, /*grain=*/1,
                             [](std::uint64_t begin, std::uint64_t) {
                                 if (begin == 0)
                                     throw ValueError("boom");
                             }),
        ValueError);
}

} // namespace
} // namespace qra
