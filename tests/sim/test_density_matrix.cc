/** @file Tests for the DensityMatrix backend. */

#include <cmath>

#include <gtest/gtest.h>

#include "common/error.hh"
#include "math/gates.hh"
#include "noise/channels.hh"
#include "sim/density_matrix.hh"
#include "sim/state_vector.hh"

namespace qra {
namespace {

/** Evolve the same ops on a StateVector for cross-checking. */
StateVector
statevectorReference(std::size_t nq, const std::vector<Operation> &ops)
{
    StateVector sv(nq);
    for (const Operation &op : ops)
        sv.applyUnitary(op);
    return sv;
}

TEST(DensityMatrixTest, InitialStateIsPureZero)
{
    DensityMatrix dm(2);
    EXPECT_NEAR(dm.matrix()(0, 0).real(), 1.0, 1e-12);
    EXPECT_NEAR(dm.trace(), 1.0, 1e-12);
    EXPECT_NEAR(dm.purity(), 1.0, 1e-12);
}

TEST(DensityMatrixTest, SizeLimits)
{
    EXPECT_THROW(DensityMatrix(0), SimulationError);
    EXPECT_THROW(DensityMatrix(13), SimulationError);
}

TEST(DensityMatrixTest, UnitaryEvolutionMatchesStateVector)
{
    const std::vector<Operation> ops{
        {.kind = OpKind::H, .qubits = {0}},
        {.kind = OpKind::CX, .qubits = {0, 1}},
        {.kind = OpKind::T, .qubits = {1}},
        {.kind = OpKind::RY, .qubits = {2}, .params = {0.7}},
        {.kind = OpKind::CZ, .qubits = {1, 2}},
    };
    DensityMatrix dm(3);
    for (const Operation &op : ops)
        dm.applyUnitary(op);

    const StateVector sv = statevectorReference(3, ops);
    EXPECT_NEAR(dm.fidelityWithPure(sv.amplitudes()), 1.0, 1e-10);
    EXPECT_NEAR(dm.purity(), 1.0, 1e-10);
}

TEST(DensityMatrixTest, ProbabilitiesMatchStateVector)
{
    const std::vector<Operation> ops{
        {.kind = OpKind::H, .qubits = {0}},
        {.kind = OpKind::CX, .qubits = {0, 1}},
    };
    DensityMatrix dm(2);
    for (const Operation &op : ops)
        dm.applyUnitary(op);
    const StateVector sv = statevectorReference(2, ops);

    const auto dm_probs = dm.probabilities();
    const auto sv_probs = sv.probabilities();
    for (std::size_t i = 0; i < dm_probs.size(); ++i)
        EXPECT_NEAR(dm_probs[i], sv_probs[i], 1e-12) << i;
}

TEST(DensityMatrixTest, FromPureState)
{
    DensityMatrix dm = DensityMatrix::fromPureState(
        {kInvSqrt2, 0.0, 0.0, kInvSqrt2});
    EXPECT_NEAR(dm.purity(), 1.0, 1e-12);
    EXPECT_NEAR(dm.probabilityOfOne(0), 0.5, 1e-12);
    EXPECT_NEAR(dm.probabilityOfOne(1), 0.5, 1e-12);
}

TEST(DensityMatrixTest, DephaseKillsCoherence)
{
    DensityMatrix dm(1);
    dm.applyUnitary({.kind = OpKind::H, .qubits = {0}});
    EXPECT_NEAR(std::abs(dm.matrix()(0, 1)), 0.5, 1e-12);
    dm.dephase(0);
    EXPECT_NEAR(std::abs(dm.matrix()(0, 1)), 0.0, 1e-12);
    // Populations survive.
    EXPECT_NEAR(dm.probabilityOfOne(0), 0.5, 1e-12);
    EXPECT_NEAR(dm.purity(), 0.5, 1e-12);
}

TEST(DensityMatrixTest, DephaseOnlyTargetsQubit)
{
    DensityMatrix dm(2);
    dm.applyUnitary({.kind = OpKind::H, .qubits = {0}});
    dm.applyUnitary({.kind = OpKind::H, .qubits = {1}});
    dm.dephase(0);
    // Qubit 1 keeps its coherence: rho(0,2) couples q1's 0 and 1
    // with q0 fixed at 0.
    EXPECT_NEAR(std::abs(dm.matrix()(0, 2)), 0.25, 1e-12);
}

TEST(DensityMatrixTest, PostSelectProjects)
{
    DensityMatrix dm(2);
    dm.applyUnitary({.kind = OpKind::H, .qubits = {0}});
    dm.applyUnitary({.kind = OpKind::CX, .qubits = {0, 1}});
    const double p = dm.postSelect(0, 1);
    EXPECT_NEAR(p, 0.5, 1e-12);
    // Bell pair projected on q0=1 leaves |11>.
    EXPECT_NEAR(dm.probabilityOfOne(1), 1.0, 1e-12);
    EXPECT_NEAR(dm.trace(), 1.0, 1e-12);
}

TEST(DensityMatrixTest, PostSelectImpossibleThrows)
{
    DensityMatrix dm(1);
    EXPECT_THROW(dm.postSelect(0, 1), SimulationError);
}

TEST(DensityMatrixTest, ResetChannel)
{
    DensityMatrix dm(2);
    dm.applyUnitary({.kind = OpKind::X, .qubits = {0}});
    dm.applyUnitary({.kind = OpKind::H, .qubits = {1}});
    dm.resetQubit(0);
    EXPECT_NEAR(dm.probabilityOfOne(0), 0.0, 1e-12);
    // Qubit 1 untouched.
    EXPECT_NEAR(dm.probabilityOfOne(1), 0.5, 1e-12);
    EXPECT_NEAR(dm.trace(), 1.0, 1e-12);
}

TEST(DensityMatrixTest, ResetOfSuperposedQubit)
{
    DensityMatrix dm(1);
    dm.applyUnitary({.kind = OpKind::H, .qubits = {0}});
    dm.resetQubit(0);
    EXPECT_NEAR(dm.matrix()(0, 0).real(), 1.0, 1e-12);
    EXPECT_NEAR(dm.purity(), 1.0, 1e-12);
}

TEST(DensityMatrixTest, DepolarizingDrivesToMaximallyMixed)
{
    DensityMatrix dm(1);
    dm.applyKraus(channels::depolarizing1(1.0), {0});
    // p=1 depolarising leaves I/2... with our parameterisation
    // p=1 means uniform Paulis: (rho + X rho X + Y rho Y + Z rho Z)/3
    // applied to |0><0| = (|0><0| + 2|1><1| + ... ) — compute:
    // result diag = (1/3)(0,?) -> direct check: trace stays 1.
    EXPECT_NEAR(dm.trace(), 1.0, 1e-12);
    EXPECT_NEAR(dm.matrix()(0, 0).real() + dm.matrix()(1, 1).real(),
                1.0, 1e-12);
    // With p = 3/4 the channel is exactly the replace-by-I/2 map.
    DensityMatrix dm2(1);
    dm2.applyKraus(channels::depolarizing1(0.75), {0});
    EXPECT_NEAR(dm2.matrix()(0, 0).real(), 0.5, 1e-12);
    EXPECT_NEAR(dm2.matrix()(1, 1).real(), 0.5, 1e-12);
}

TEST(DensityMatrixTest, AmplitudeDampingDecaysExcitedState)
{
    DensityMatrix dm(1);
    dm.applyUnitary({.kind = OpKind::X, .qubits = {0}});
    dm.applyKraus(channels::amplitudeDamping(0.3), {0});
    EXPECT_NEAR(dm.probabilityOfOne(0), 0.7, 1e-12);
    EXPECT_NEAR(dm.trace(), 1.0, 1e-12);
}

TEST(DensityMatrixTest, KrausOnSpecificQubitOfRegister)
{
    DensityMatrix dm(3);
    dm.applyUnitary({.kind = OpKind::X, .qubits = {1}});
    dm.applyKraus(channels::amplitudeDamping(1.0), {1});
    EXPECT_NEAR(dm.probabilityOfOne(1), 0.0, 1e-12);
    EXPECT_NEAR(dm.probabilityOfOne(0), 0.0, 1e-12);
    EXPECT_NEAR(dm.trace(), 1.0, 1e-12);
}

TEST(DensityMatrixTest, ReducedQubitDensity)
{
    DensityMatrix dm(2);
    dm.applyUnitary({.kind = OpKind::H, .qubits = {0}});
    dm.applyUnitary({.kind = OpKind::CX, .qubits = {0, 1}});
    const Matrix reduced = dm.reducedQubitDensity(0);
    EXPECT_NEAR(reduced(0, 0).real(), 0.5, 1e-12);
    EXPECT_NEAR(std::abs(reduced(0, 1)), 0.0, 1e-12);
}

TEST(DensityMatrixTest, TwoQubitKrausChannel)
{
    DensityMatrix dm(2);
    dm.applyUnitary({.kind = OpKind::H, .qubits = {0}});
    dm.applyUnitary({.kind = OpKind::CX, .qubits = {0, 1}});
    dm.applyKraus(channels::depolarizing2(0.1), {0, 1});
    EXPECT_NEAR(dm.trace(), 1.0, 1e-10);
    EXPECT_LT(dm.purity(), 1.0);
    EXPECT_GT(dm.purity(), 0.8);
}

} // namespace
} // namespace qra
