/**
 * @file
 * NoiseModel: the error description the noisy simulators consume.
 *
 * A model contains
 *  - per-gate-kind (optionally per-operand) depolarising strengths,
 *  - per-gate-kind durations,
 *  - per-qubit T1/T2 relaxation constants,
 *  - per-qubit readout confusion matrices.
 *
 * Simulators query channelsFor(op) after executing each instruction,
 * relaxationFor(q, dt) once per scheduled moment for every qubit, and
 * readoutFor(q) when recording measurement outcomes.
 */

#ifndef QRA_NOISE_NOISE_MODEL_HH
#define QRA_NOISE_NOISE_MODEL_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "circuit/gate.hh"
#include "noise/kraus.hh"
#include "noise/readout_error.hh"

namespace qra {

/** Complete error description of a (simulated) quantum device. */
class NoiseModel
{
  public:
    /** A channel plus the circuit qubits it must be applied to. */
    struct AppliedChannel
    {
        KrausChannel channel;
        std::vector<Qubit> qubits;
    };

    NoiseModel() = default;

    /** True when any error source is configured. */
    bool enabled() const;

    // --- Configuration -----------------------------------------------

    /**
     * Depolarising error of strength @p p after every instance of
     * gate @p kind (fallback used when no per-operand entry exists).
     */
    void setGateError(OpKind kind, double p);

    /**
     * Depolarising error for a specific operand tuple, e.g. the CX
     * between qubits 1 and 0 on ibmqx4. Operand order matters.
     */
    void setGateError(OpKind kind, const std::vector<Qubit> &qubits,
                      double p);

    /** Wall-clock duration of gate @p kind in nanoseconds. */
    void setGateDuration(OpKind kind, double ns);

    /** T1/T2 relaxation constants of one qubit, in nanoseconds. */
    void setQubitRelaxation(Qubit q, double t1_ns, double t2_ns);

    /** Readout confusion of one qubit. */
    void setReadoutError(Qubit q, ReadoutError error);

    /**
     * Scale every configured error source by @p factor: depolarising
     * strengths and readout flips multiply by it (clamped to [0,1]),
     * T1/T2 divide by it. factor 0 disables all noise; 1 is identity.
     * Used by the noise-sweep ablation bench.
     */
    NoiseModel scaled(double factor) const;

    // --- Queries (simulator interface) --------------------------------

    /** Channels to apply after executing @p op (may be empty). */
    std::vector<AppliedChannel> channelsFor(const Operation &op) const;

    /**
     * Thermal-relaxation channel for qubit @p q idling or executing
     * for @p duration_ns; nullopt when no T1/T2 is configured or the
     * window is empty.
     */
    std::optional<KrausChannel> relaxationFor(Qubit q,
                                              double duration_ns) const;

    /** Duration of @p op in nanoseconds (0 when unconfigured). */
    double opDuration(const Operation &op) const;

    /** Readout model for @p q; nullptr when perfect. */
    const ReadoutError *readoutFor(Qubit q) const;

    /** Summary for logs/benches. */
    std::string str() const;

    /**
     * Semantic 64-bit hash over every configured error source. Two
     * models that produce identical channels hash identically, so
     * cached per-(circuit, noise) artifacts (trajectory plans in the
     * runtime's sampling cache) are keyed by content, not by object
     * identity — a freed-and-reallocated model can never alias a
     * stale cache entry.
     */
    std::uint64_t fingerprint() const;

  private:
    struct Relaxation
    {
        double t1Ns;
        double t2Ns;
    };

    std::map<OpKind, double> gateError_;
    std::map<std::pair<OpKind, std::vector<Qubit>>, double>
        operandGateError_;
    std::map<OpKind, double> gateDurationNs_;
    std::map<Qubit, Relaxation> relaxation_;
    std::map<Qubit, ReadoutError> readout_;
};

} // namespace qra

#endif // QRA_NOISE_NOISE_MODEL_HH
