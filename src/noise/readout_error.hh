/**
 * @file
 * Classical readout (measurement assignment) error: a 2x2 confusion
 * matrix per qubit giving P(read j | prepared i).
 */

#ifndef QRA_NOISE_READOUT_ERROR_HH
#define QRA_NOISE_READOUT_ERROR_HH

#include "common/rng.hh"

namespace qra {

/** Per-qubit measurement confusion model. */
class ReadoutError
{
  public:
    /** Perfect readout. */
    ReadoutError() = default;

    /**
     * @param p_read1_given0 P(read 1 | true 0).
     * @param p_read0_given1 P(read 0 | true 1).
     */
    ReadoutError(double p_read1_given0, double p_read0_given1);

    double pRead1Given0() const { return p10_; }
    double pRead0Given1() const { return p01_; }

    /** True when both flip probabilities are zero. */
    bool isPerfect() const { return p10_ == 0.0 && p01_ == 0.0; }

    /** Sample the recorded bit given the true bit. */
    int sampleReadout(int true_bit, Rng &rng) const;

    /**
     * P(read @p read_bit | true @p true_bit): one confusion-matrix
     * entry.
     */
    double confusion(int true_bit, int read_bit) const;

  private:
    double p10_ = 0.0; ///< P(read 1 | true 0)
    double p01_ = 0.0; ///< P(read 0 | true 1)
};

} // namespace qra

#endif // QRA_NOISE_READOUT_ERROR_HH
