#include "noise/noise_model.hh"

#include <algorithm>
#include <bit>
#include <sstream>

#include "common/error.hh"
#include "common/hash.hh"
#include "noise/channels.hh"

namespace qra {

bool
NoiseModel::enabled() const
{
    return !gateError_.empty() || !operandGateError_.empty() ||
           !relaxation_.empty() || !readout_.empty();
}

void
NoiseModel::setGateError(OpKind kind, double p)
{
    if (!opIsUnitary(kind))
        throw NoiseError("gate errors apply to unitary gates only");
    if (p < 0.0 || p > 1.0)
        throw NoiseError("gate error probability must lie in [0, 1]");
    gateError_[kind] = p;
}

void
NoiseModel::setGateError(OpKind kind, const std::vector<Qubit> &qubits,
                         double p)
{
    if (!opIsUnitary(kind))
        throw NoiseError("gate errors apply to unitary gates only");
    if (qubits.size() != opNumQubits(kind))
        throw NoiseError("operand count does not match gate arity");
    if (p < 0.0 || p > 1.0)
        throw NoiseError("gate error probability must lie in [0, 1]");
    operandGateError_[{kind, qubits}] = p;
}

void
NoiseModel::setGateDuration(OpKind kind, double ns)
{
    if (ns < 0.0)
        throw NoiseError("gate duration must be non-negative");
    gateDurationNs_[kind] = ns;
}

void
NoiseModel::setQubitRelaxation(Qubit q, double t1_ns, double t2_ns)
{
    if (t1_ns <= 0.0 || t2_ns <= 0.0)
        throw NoiseError("T1/T2 must be positive");
    if (t2_ns > 2.0 * t1_ns)
        throw NoiseError("unphysical relaxation times: T2 > 2*T1");
    relaxation_[q] = {t1_ns, t2_ns};
}

void
NoiseModel::setReadoutError(Qubit q, ReadoutError error)
{
    readout_[q] = error;
}

NoiseModel
NoiseModel::scaled(double factor) const
{
    if (factor < 0.0)
        throw NoiseError("noise scale factor must be non-negative");

    NoiseModel out;
    auto clamp01 = [](double p) { return std::clamp(p, 0.0, 1.0); };

    for (const auto &[kind, p] : gateError_)
        out.gateError_[kind] = clamp01(p * factor);
    for (const auto &[key, p] : operandGateError_)
        out.operandGateError_[key] = clamp01(p * factor);
    out.gateDurationNs_ = gateDurationNs_;
    for (const auto &[q, relax] : relaxation_) {
        if (factor == 0.0)
            continue; // infinite T1/T2: drop the entry entirely
        out.relaxation_[q] = {relax.t1Ns / factor, relax.t2Ns / factor};
    }
    for (const auto &[q, ro] : readout_) {
        out.readout_[q] = ReadoutError(clamp01(ro.pRead1Given0() * factor),
                                       clamp01(ro.pRead0Given1() * factor));
    }
    return out;
}

std::vector<NoiseModel::AppliedChannel>
NoiseModel::channelsFor(const Operation &op) const
{
    std::vector<AppliedChannel> out;
    if (!opIsUnitary(op.kind) || op.kind == OpKind::Barrier)
        return out;

    double p = 0.0;
    const auto operand_it = operandGateError_.find({op.kind, op.qubits});
    if (operand_it != operandGateError_.end()) {
        p = operand_it->second;
    } else {
        const auto kind_it = gateError_.find(op.kind);
        if (kind_it != gateError_.end())
            p = kind_it->second;
    }
    if (p <= 0.0)
        return out;

    if (op.qubits.size() == 1) {
        out.push_back({channels::depolarizing1(p), op.qubits});
    } else if (op.qubits.size() == 2) {
        out.push_back({channels::depolarizing2(p), op.qubits});
    } else {
        // Three-qubit gates: apply pairwise two-qubit depolarising
        // noise across the operands (CCX is decomposed on hardware
        // anyway; this is the aggregate model).
        for (std::size_t i = 0; i + 1 < op.qubits.size(); ++i) {
            out.push_back({channels::depolarizing2(p),
                           {op.qubits[i], op.qubits[i + 1]}});
        }
    }
    return out;
}

std::optional<KrausChannel>
NoiseModel::relaxationFor(Qubit q, double duration_ns) const
{
    if (duration_ns <= 0.0)
        return std::nullopt;
    const auto it = relaxation_.find(q);
    if (it == relaxation_.end())
        return std::nullopt;
    return channels::thermalRelaxation(it->second.t1Ns, it->second.t2Ns,
                                       duration_ns);
}

double
NoiseModel::opDuration(const Operation &op) const
{
    const auto it = gateDurationNs_.find(op.kind);
    return it == gateDurationNs_.end() ? 0.0 : it->second;
}

const ReadoutError *
NoiseModel::readoutFor(Qubit q) const
{
    const auto it = readout_.find(q);
    if (it == readout_.end() || it->second.isPerfect())
        return nullptr;
    return &it->second;
}

std::uint64_t
NoiseModel::fingerprint() const
{
    std::uint64_t h = kFnv1aOffset;
    const auto mix_double = [&](double v) {
        h = fnv1aMix64(h, std::bit_cast<std::uint64_t>(v));
    };
    h = fnv1aMix64(h, gateError_.size());
    for (const auto &[kind, p] : gateError_) {
        h = fnv1aMix64(h, static_cast<std::uint64_t>(kind));
        mix_double(p);
    }
    h = fnv1aMix64(h, operandGateError_.size());
    for (const auto &[key, p] : operandGateError_) {
        h = fnv1aMix64(h, static_cast<std::uint64_t>(key.first));
        // Length prefix keeps the qubit list unambiguous against the
        // probability bits that follow (as Circuit::hash does).
        h = fnv1aMix64(h, key.second.size());
        for (const Qubit q : key.second)
            h = fnv1aMix64(h, static_cast<std::uint64_t>(q));
        mix_double(p);
    }
    h = fnv1aMix64(h, gateDurationNs_.size());
    for (const auto &[kind, ns] : gateDurationNs_) {
        h = fnv1aMix64(h, static_cast<std::uint64_t>(kind));
        mix_double(ns);
    }
    h = fnv1aMix64(h, relaxation_.size());
    for (const auto &[q, relax] : relaxation_) {
        h = fnv1aMix64(h, static_cast<std::uint64_t>(q));
        mix_double(relax.t1Ns);
        mix_double(relax.t2Ns);
    }
    h = fnv1aMix64(h, readout_.size());
    for (const auto &[q, ro] : readout_) {
        h = fnv1aMix64(h, static_cast<std::uint64_t>(q));
        mix_double(ro.pRead1Given0());
        mix_double(ro.pRead0Given1());
    }
    return h;
}

std::string
NoiseModel::str() const
{
    std::ostringstream os;
    os << "NoiseModel{";
    os << "gate errors: " << gateError_.size() + operandGateError_.size();
    os << ", relaxed qubits: " << relaxation_.size();
    os << ", readout qubits: " << readout_.size();
    os << "}";
    return os.str();
}

} // namespace qra
