#include "noise/channels.hh"

#include <cmath>

#include "common/error.hh"
#include "math/gates.hh"

namespace qra {
namespace channels {

namespace {

void
checkProbability(double p, const char *what)
{
    if (p < 0.0 || p > 1.0)
        throw NoiseError(std::string(what) +
                         " probability must lie in [0, 1], got " +
                         std::to_string(p));
}

/** Single Pauli error with probability p, identity otherwise. */
KrausChannel
pauliError(const Matrix &pauli, double p, const char *name)
{
    checkProbability(p, name);
    std::vector<Matrix> ops;
    ops.push_back(Matrix::identity(2) * Complex{std::sqrt(1.0 - p), 0.0});
    ops.push_back(pauli * Complex{std::sqrt(p), 0.0});
    return KrausChannel(std::move(ops), name);
}

} // namespace

KrausChannel
depolarizing1(double p)
{
    checkProbability(p, "depolarizing");
    const double p_each = p / 3.0;
    std::vector<Matrix> ops;
    ops.push_back(Matrix::identity(2) *
                  Complex{std::sqrt(1.0 - p), 0.0});
    ops.push_back(gates::x() * Complex{std::sqrt(p_each), 0.0});
    ops.push_back(gates::y() * Complex{std::sqrt(p_each), 0.0});
    ops.push_back(gates::z() * Complex{std::sqrt(p_each), 0.0});
    return KrausChannel(std::move(ops), "depolarizing1");
}

KrausChannel
depolarizing2(double p)
{
    checkProbability(p, "depolarizing2");
    const Matrix paulis[4] = {Matrix::identity(2), gates::x(),
                              gates::y(), gates::z()};
    const double p_each = p / 15.0;

    std::vector<Matrix> ops;
    ops.reserve(16);
    for (int a = 0; a < 4; ++a) {
        for (int b = 0; b < 4; ++b) {
            const double weight =
                (a == 0 && b == 0) ? 1.0 - p : p_each;
            // Matrix bit 0 = first qubit: kron(second, first).
            ops.push_back(paulis[b].kron(paulis[a]) *
                          Complex{std::sqrt(weight), 0.0});
        }
    }
    return KrausChannel(std::move(ops), "depolarizing2");
}

KrausChannel
bitFlip(double p)
{
    return pauliError(gates::x(), p, "bit-flip");
}

KrausChannel
phaseFlip(double p)
{
    return pauliError(gates::z(), p, "phase-flip");
}

KrausChannel
bitPhaseFlip(double p)
{
    return pauliError(gates::y(), p, "bit-phase-flip");
}

KrausChannel
amplitudeDamping(double gamma)
{
    checkProbability(gamma, "amplitude damping");
    const Complex zero{0.0, 0.0};
    Matrix k0{{Complex{1.0, 0.0}, zero},
              {zero, Complex{std::sqrt(1.0 - gamma), 0.0}}};
    Matrix k1{{zero, Complex{std::sqrt(gamma), 0.0}}, {zero, zero}};
    return KrausChannel({std::move(k0), std::move(k1)},
                        "amplitude-damping");
}

KrausChannel
phaseDamping(double lambda)
{
    checkProbability(lambda, "phase damping");
    const Complex zero{0.0, 0.0};
    Matrix k0{{Complex{1.0, 0.0}, zero},
              {zero, Complex{std::sqrt(1.0 - lambda), 0.0}}};
    Matrix k1{{zero, zero}, {zero, Complex{std::sqrt(lambda), 0.0}}};
    return KrausChannel({std::move(k0), std::move(k1)},
                        "phase-damping");
}

KrausChannel
thermalRelaxation(double t1_ns, double t2_ns, double duration_ns)
{
    if (t1_ns <= 0.0 || t2_ns <= 0.0)
        throw NoiseError("T1 and T2 must be positive");
    if (t2_ns > 2.0 * t1_ns + 1e-9)
        throw NoiseError("unphysical relaxation times: T2 > 2*T1");
    if (duration_ns < 0.0)
        throw NoiseError("negative duration");

    const double gamma = 1.0 - std::exp(-duration_ns / t1_ns);

    // Total coherence decay must be exp(-t/T2). Amplitude damping
    // already contributes exp(-t/(2 T1)); pure dephasing supplies the
    // remainder: sqrt(1 - lambda) = exp(-t/T2 + t/(2 T1)).
    const double residual =
        std::exp(-duration_ns / t2_ns + duration_ns / (2.0 * t1_ns));
    const double lambda =
        std::max(0.0, 1.0 - residual * residual);

    return amplitudeDamping(gamma)
        .composeWith(phaseDamping(lambda));
}

KrausChannel
pauliChannel(double px, double py, double pz)
{
    checkProbability(px, "pauli-x");
    checkProbability(py, "pauli-y");
    checkProbability(pz, "pauli-z");
    const double pi_ = 1.0 - px - py - pz;
    if (pi_ < -1e-12)
        throw NoiseError("pauli channel probabilities exceed 1");

    std::vector<Matrix> ops;
    if (pi_ > 0.0)
        ops.push_back(Matrix::identity(2) *
                      Complex{std::sqrt(std::max(0.0, pi_)), 0.0});
    if (px > 0.0)
        ops.push_back(gates::x() * Complex{std::sqrt(px), 0.0});
    if (py > 0.0)
        ops.push_back(gates::y() * Complex{std::sqrt(py), 0.0});
    if (pz > 0.0)
        ops.push_back(gates::z() * Complex{std::sqrt(pz), 0.0});
    if (ops.empty())
        ops.push_back(Matrix::identity(2));
    return KrausChannel(std::move(ops), "pauli");
}

KrausChannel
coherentOverrotation(double epsilon_rad)
{
    return KrausChannel({gates::rx(epsilon_rad)},
                        "coherent-overrotation");
}

} // namespace channels
} // namespace qra
