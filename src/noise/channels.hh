/**
 * @file
 * Factory functions for the standard single- and two-qubit noise
 * channels used by the device models.
 */

#ifndef QRA_NOISE_CHANNELS_HH
#define QRA_NOISE_CHANNELS_HH

#include "noise/kraus.hh"

namespace qra {
namespace channels {

/**
 * Single-qubit depolarising channel: with probability @p p the qubit
 * is replaced by the maximally mixed state (uniform X/Y/Z errors).
 * @pre 0 <= p <= 1.
 */
KrausChannel depolarizing1(double p);

/**
 * Two-qubit depolarising channel: uniform over the 15 non-identity
 * two-qubit Pauli errors with total probability @p p.
 */
KrausChannel depolarizing2(double p);

/** Bit-flip channel: X error with probability @p p. */
KrausChannel bitFlip(double p);

/** Phase-flip channel: Z error with probability @p p. */
KrausChannel phaseFlip(double p);

/** Bit-phase-flip channel: Y error with probability @p p. */
KrausChannel bitPhaseFlip(double p);

/**
 * Amplitude damping: |1> decays to |0> with probability @p gamma
 * (energy relaxation, T1).
 */
KrausChannel amplitudeDamping(double gamma);

/**
 * Phase damping: coherence decays with parameter @p lambda without
 * energy loss (pure dephasing, T_phi).
 */
KrausChannel phaseDamping(double lambda);

/**
 * Thermal relaxation over a window of @p duration_ns for a qubit with
 * relaxation time @p t1_ns and dephasing time @p t2_ns.
 *
 * Composition of amplitude damping (gamma = 1 - exp(-t/T1)) and pure
 * phase damping chosen so total dephasing matches exp(-t/T2).
 * @pre t2 <= 2 * t1 (physicality).
 */
KrausChannel thermalRelaxation(double t1_ns, double t2_ns,
                               double duration_ns);

/**
 * General single-qubit Pauli channel: X with probability @p px,
 * Y with @p py, Z with @p pz, identity otherwise.
 * @pre px + py + pz <= 1.
 */
KrausChannel pauliChannel(double px, double py, double pz);

/**
 * Coherent over-rotation error: the *unitary* RX(epsilon) applied as
 * a channel. Models calibration drift, which unlike stochastic noise
 * accumulates quadratically in amplitude across repetitions.
 */
KrausChannel coherentOverrotation(double epsilon_rad);

} // namespace channels
} // namespace qra

#endif // QRA_NOISE_CHANNELS_HH
