#include "noise/readout_error.hh"

#include "common/error.hh"

namespace qra {

ReadoutError::ReadoutError(double p_read1_given0, double p_read0_given1)
    : p10_(p_read1_given0), p01_(p_read0_given1)
{
    if (p10_ < 0.0 || p10_ > 1.0 || p01_ < 0.0 || p01_ > 1.0)
        throw NoiseError("readout flip probabilities must lie in "
                         "[0, 1]");
}

int
ReadoutError::sampleReadout(int true_bit, Rng &rng) const
{
    const double flip = true_bit ? p01_ : p10_;
    if (flip > 0.0 && rng.uniform() < flip)
        return 1 - true_bit;
    return true_bit;
}

double
ReadoutError::confusion(int true_bit, int read_bit) const
{
    if (true_bit == 0)
        return read_bit == 0 ? 1.0 - p10_ : p10_;
    return read_bit == 1 ? 1.0 - p01_ : p01_;
}

} // namespace qra
