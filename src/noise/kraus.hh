/**
 * @file
 * Kraus representation of a quantum channel, with CPTP validation.
 */

#ifndef QRA_NOISE_KRAUS_HH
#define QRA_NOISE_KRAUS_HH

#include <string>
#include <vector>

#include "math/matrix.hh"

namespace qra {

/**
 * A completely-positive trace-preserving map given by operators
 * {K_k} with sum_k K_k^dagger K_k = I.
 */
class KrausChannel
{
  public:
    KrausChannel() = default;

    /**
     * @param operators Kraus operators; all must be square and of the
     *        same dimension (a power of two).
     * @param name Diagnostic name ("depolarizing", ...).
     * @throws NoiseError if the completeness relation fails.
     */
    explicit KrausChannel(std::vector<Matrix> operators,
                          std::string name = "channel");

    const std::vector<Matrix> &operators() const { return ops_; }
    const std::string &name() const { return name_; }

    /** Dimension of the space the channel acts on (2^numQubits). */
    std::size_t dim() const;

    /** Number of qubits the channel acts on. */
    std::size_t numQubits() const;

    /** True if the only operator is (proportional to) the identity. */
    bool isIdentity(double tol = 1e-12) const;

    /**
     * Verify sum_k K_k^dagger K_k == I within @p tol.
     * Constructor enforces this; exposed for tests.
     */
    bool isTracePreserving(double tol = 1e-8) const;

    /**
     * Compose with another channel of the same dimension: the result
     * applies *this first, then @p after.
     */
    KrausChannel composeWith(const KrausChannel &after) const;

  private:
    std::vector<Matrix> ops_;
    std::string name_;
};

} // namespace qra

#endif // QRA_NOISE_KRAUS_HH
