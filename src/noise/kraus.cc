#include "noise/kraus.hh"

#include "common/error.hh"

namespace qra {

KrausChannel::KrausChannel(std::vector<Matrix> operators, std::string name)
    : ops_(std::move(operators)), name_(std::move(name))
{
    if (ops_.empty())
        throw NoiseError("Kraus channel needs at least one operator");

    const std::size_t d = ops_.front().rows();
    if (d < 2 || (d & (d - 1)) != 0)
        throw NoiseError("Kraus operator dimension must be a power of "
                         "two >= 2");
    for (const Matrix &k : ops_) {
        if (k.rows() != d || k.cols() != d)
            throw NoiseError("Kraus operators must be square and of "
                             "equal dimension");
    }
    if (!isTracePreserving())
        throw NoiseError("channel '" + name_ +
                         "' violates the completeness relation "
                         "sum K^t K = I");
}

std::size_t
KrausChannel::dim() const
{
    return ops_.empty() ? 0 : ops_.front().rows();
}

std::size_t
KrausChannel::numQubits() const
{
    std::size_t n = 0;
    std::size_t d = dim();
    while (d > 1) {
        d >>= 1;
        ++n;
    }
    return n;
}

bool
KrausChannel::isIdentity(double tol) const
{
    if (ops_.size() != 1)
        return false;
    Matrix product = ops_[0].adjoint() * ops_[0];
    return product.isIdentity(tol) &&
           ops_[0].equalUpToGlobalPhase(Matrix::identity(dim()), tol);
}

bool
KrausChannel::isTracePreserving(double tol) const
{
    Matrix sum(dim(), dim());
    for (const Matrix &k : ops_)
        sum += k.adjoint() * k;
    return sum.isIdentity(tol);
}

KrausChannel
KrausChannel::composeWith(const KrausChannel &after) const
{
    if (dim() != after.dim())
        throw NoiseError("composing channels of different dimensions");
    std::vector<Matrix> composed;
    composed.reserve(ops_.size() * after.ops_.size());
    for (const Matrix &b : after.ops_)
        for (const Matrix &a : ops_)
            composed.push_back(b * a);
    return KrausChannel(std::move(composed),
                        name_ + "+" + after.name_);
}

} // namespace qra
