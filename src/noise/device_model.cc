#include "noise/device_model.hh"

namespace qra {

DeviceModel::DeviceModel(std::string name, CouplingMap coupling,
                         NoiseModel noise)
    : name_(std::move(name)), coupling_(std::move(coupling)),
      noise_(std::move(noise))
{
}

DeviceModel
DeviceModel::ibmqx4()
{
    CouplingMap coupling(5);
    coupling.addEdge(1, 0);
    coupling.addEdge(2, 0);
    coupling.addEdge(2, 1);
    coupling.addEdge(3, 2);
    coupling.addEdge(3, 4);
    coupling.addEdge(4, 2);

    NoiseModel noise;

    // Gate durations (ns): single-qubit ~80, CNOT ~350.
    for (OpKind kind : {OpKind::X, OpKind::Y, OpKind::Z, OpKind::H,
                        OpKind::S, OpKind::Sdg, OpKind::T, OpKind::Tdg,
                        OpKind::SX, OpKind::RX, OpKind::RY, OpKind::RZ,
                        OpKind::P, OpKind::U})
        noise.setGateDuration(kind, 80.0);
    noise.setGateDuration(OpKind::I, 80.0);
    noise.setGateDuration(OpKind::CX, 350.0);
    noise.setGateDuration(OpKind::CY, 350.0);
    noise.setGateDuration(OpKind::CZ, 350.0);
    noise.setGateDuration(OpKind::Swap, 1050.0); // 3 CNOTs
    noise.setGateDuration(OpKind::CCX, 2100.0);
    noise.setGateDuration(OpKind::Measure, 1000.0);
    noise.setGateDuration(OpKind::Reset, 1000.0);

    // Single-qubit depolarising error.
    for (OpKind kind : {OpKind::X, OpKind::Y, OpKind::Z, OpKind::H,
                        OpKind::S, OpKind::Sdg, OpKind::T, OpKind::Tdg,
                        OpKind::SX, OpKind::RX, OpKind::RY, OpKind::RZ,
                        OpKind::P, OpKind::U})
        noise.setGateError(kind, 1.2e-3);

    // Two-qubit depolarising error: per-edge calibration, reflecting
    // the spread IBM reported across the six couplings.
    noise.setGateError(OpKind::CX, 2.8e-2);
    noise.setGateError(OpKind::CX, {1, 0}, 2.4e-2);
    noise.setGateError(OpKind::CX, {2, 0}, 2.7e-2);
    noise.setGateError(OpKind::CX, {2, 1}, 2.9e-2);
    noise.setGateError(OpKind::CX, {3, 2}, 3.4e-2);
    noise.setGateError(OpKind::CX, {3, 4}, 2.6e-2);
    noise.setGateError(OpKind::CX, {4, 2}, 3.1e-2);
    noise.setGateError(OpKind::CZ, 2.8e-2);
    noise.setGateError(OpKind::Swap, 7.0e-2);

    // Relaxation constants (ns): T1 ~45 us, T2 in the 20-40 us range.
    noise.setQubitRelaxation(0, 46000.0, 22000.0);
    noise.setQubitRelaxation(1, 44000.0, 31000.0);
    noise.setQubitRelaxation(2, 48000.0, 36000.0);
    noise.setQubitRelaxation(3, 42000.0, 25000.0);
    noise.setQubitRelaxation(4, 45000.0, 28000.0);

    // Readout confusion: asymmetric, |1> reads worse than |0>.
    noise.setReadoutError(0, ReadoutError(0.020, 0.032));
    noise.setReadoutError(1, ReadoutError(0.018, 0.030));
    noise.setReadoutError(2, ReadoutError(0.022, 0.036));
    noise.setReadoutError(3, ReadoutError(0.030, 0.046));
    noise.setReadoutError(4, ReadoutError(0.026, 0.040));

    return DeviceModel("ibmqx4", std::move(coupling), std::move(noise));
}

DeviceModel
DeviceModel::ideal(std::size_t num_qubits)
{
    CouplingMap coupling(num_qubits);
    for (Qubit a = 0; a < num_qubits; ++a)
        for (Qubit b = 0; b < num_qubits; ++b)
            if (a != b)
                coupling.addEdge(a, b);
    return DeviceModel("ideal", std::move(coupling), NoiseModel{});
}

DeviceModel
DeviceModel::scaledNoise(double factor) const
{
    return DeviceModel(name_ + "_x" + std::to_string(factor), coupling_,
                       noise_.scaled(factor));
}

} // namespace qra
