/**
 * @file
 * DeviceModel: connectivity + calibration bundle describing a
 * (simulated) quantum computer. The ibmqx4() factory reproduces the
 * 5-qubit IBM Q "Tenerife" class of device the paper evaluated on:
 * directed CNOT connectivity and error magnitudes in the range IBM
 * published for that generation of hardware.
 */

#ifndef QRA_NOISE_DEVICE_MODEL_HH
#define QRA_NOISE_DEVICE_MODEL_HH

#include <string>

#include "noise/noise_model.hh"
#include "transpile/coupling_map.hh"

namespace qra {

/** A named device: coupling map plus noise calibration. */
class DeviceModel
{
  public:
    DeviceModel(std::string name, CouplingMap coupling,
                NoiseModel noise);

    const std::string &name() const { return name_; }
    const CouplingMap &couplingMap() const { return coupling_; }
    const NoiseModel &noiseModel() const { return noise_; }
    std::size_t numQubits() const { return coupling_.numQubits(); }

    /**
     * The 5-qubit ibmqx4-class device the paper's Tables 1-2 ran on.
     *
     * Native CNOT directions (control->target):
     *   q1->q0, q2->q0, q2->q1, q3->q2, q3->q4, q4->q2.
     * Calibration (ranges IBM reported for this device generation):
     *   T1 ~= 45 us, T2 ~= 20-40 us, single-qubit gate error ~1e-3,
     *   CNOT error 2-4e-2, readout error 3-7e-2, 1q gate 80 ns,
     *   CNOT ~350 ns.
     */
    static DeviceModel ibmqx4();

    /**
     * An ideal (noise-free) all-to-all device with @p num_qubits
     * qubits, for baselines and tests.
     */
    static DeviceModel ideal(std::size_t num_qubits);

    /** Copy of this device with every error source scaled. */
    DeviceModel scaledNoise(double factor) const;

  private:
    std::string name_;
    CouplingMap coupling_;
    NoiseModel noise_;
};

} // namespace qra

#endif // QRA_NOISE_DEVICE_MODEL_HH
