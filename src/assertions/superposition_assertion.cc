#include "assertions/superposition_assertion.hh"

#include "common/error.hh"
#include "common/strings.hh"

namespace qra {

SuperpositionAssertion::SuperpositionAssertion(Target target)
    : target_(target)
{
    if (target == Target::Basis)
        throw AssertionError("Basis mode requires explicit (theta, "
                             "phi); use the two-argument constructor");
}

SuperpositionAssertion::SuperpositionAssertion(double theta, double phi)
    : target_(Target::Basis), theta_(theta), phi_(phi)
{
}

void
SuperpositionAssertion::emit(Circuit &circuit,
                             const std::vector<Qubit> &targets,
                             const std::vector<Qubit> &ancillas,
                             const std::vector<Clbit> &clbits) const
{
    checkOperands(targets, ancillas, clbits);
    const Qubit t = targets[0];
    const Qubit anc = ancillas[0];

    switch (target_) {
      case Target::Plus:
      case Target::Minus:
        // Paper Fig. 5: CNOT, H (x) H, CNOT.
        circuit.cx(t, anc);
        circuit.h(t);
        circuit.h(anc);
        circuit.cx(t, anc);
        if (target_ == Target::Minus)
            circuit.x(anc); // |-> yields anc |1>; flip so 0 = pass
        circuit.measure(anc, clbits[0]);
        return;
      case Target::Basis:
        // Rotate the asserted state down to |0>, run the classical
        // ==|0> check, rotate back. U(t,p,0)^-1 = U(-t, 0, -p).
        circuit.u(-theta_, 0.0, -phi_, t);
        circuit.cx(t, anc);
        circuit.u(theta_, phi_, 0.0, t);
        circuit.measure(anc, clbits[0]);
        return;
    }
    QRA_PANIC("unhandled superposition target");
}

std::string
SuperpositionAssertion::describe() const
{
    switch (target_) {
      case Target::Plus:
        return "assert qubit == |+>";
      case Target::Minus:
        return "assert qubit == |->";
      case Target::Basis:
        return "assert qubit == U(" + formatDouble(theta_, 3) + ", " +
               formatDouble(phi_, 3) + ", 0)|0>";
    }
    QRA_PANIC("unhandled superposition target");
}

} // namespace qra
