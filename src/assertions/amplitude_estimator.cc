#include "assertions/amplitude_estimator.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hh"
#include "common/strings.hh"
#include "stats/distance.hh"

namespace qra {

std::string
Estimate::str() const
{
    std::ostringstream os;
    os << formatDouble(value, 4) << " +/- "
       << formatDouble(halfWidth95, 4);
    return os.str();
}

ClassicalAmplitudeEstimate
estimateFromClassicalAssertion(std::size_t error_count,
                               std::size_t shots)
{
    if (shots == 0)
        QRA_FATAL("amplitude estimation needs at least one shot");
    if (error_count > shots)
        QRA_FATAL("error count exceeds shot count");

    const double p_err = static_cast<double>(error_count) /
                         static_cast<double>(shots);
    const double hw = stats::wilsonHalfWidth(p_err, shots);

    ClassicalAmplitudeEstimate est;
    est.probOne = {p_err, hw};
    est.probZero = {1.0 - p_err, hw};
    return est;
}

SuperpositionAmplitudeEstimate
estimateFromSuperpositionAssertion(std::size_t error_count,
                                   std::size_t shots)
{
    if (shots == 0)
        QRA_FATAL("amplitude estimation needs at least one shot");
    if (error_count > shots)
        QRA_FATAL("error count exceeds shot count");

    const double p_err = static_cast<double>(error_count) /
                         static_cast<double>(shots);
    const double hw = stats::wilsonHalfWidth(p_err, shots);

    SuperpositionAmplitudeEstimate est;
    // P(error) = (1 - 2ab)/2  =>  ab = (1 - 2 P(error))/2. With
    // a, b >= 0 the product lives in [0, 1/2]; sampling noise pushing
    // P(error) past 1/2 lands outside, so clamp and flag rather than
    // propagate an unphysical negative product into the root solve.
    const double ab_raw = (1.0 - 2.0 * p_err) / 2.0;
    const double ab = std::clamp(ab_raw, 0.0, 0.5);
    est.clamped = ab != ab_raw;
    // d(ab)/d(p) = -1: the half-width carries over unchanged.
    est.product = {ab, hw};

    // |a|^2 and |b|^2 solve t^2 - t + (ab)^2 = 0. The discriminant is
    // non-negative for ab in [0, 1/2]; the max() guards rounding at
    // the ab = 1/2 boundary.
    const double discriminant =
        std::max(0.0, 1.0 - 4.0 * ab * ab);
    const double root = std::sqrt(discriminant);
    est.probMajor = 0.5 * (1.0 + root);
    est.probMinor = 0.5 * (1.0 - root);
    return est;
}

} // namespace qra
