#include "assertions/directives.hh"

#include <cctype>
#include <cstring>
#include <memory>
#include <sstream>

#include "assertions/classical_assertion.hh"
#include "assertions/entanglement_assertion.hh"
#include "assertions/superposition_assertion.hh"
#include "circuit/qasm.hh"
#include "common/error.hh"
#include "common/strings.hh"

namespace qra {

namespace {

std::string
stripWs(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

/** Parse "q[3]" -> 3. */
Qubit
parseQubitToken(const std::string &token)
{
    if (token.rfind("q[", 0) != 0 || token.back() != ']')
        throw QasmError("expected q[i] in directive, got '" + token +
                        "'");
    const std::string digits = token.substr(2, token.size() - 3);
    if (digits.empty())
        throw QasmError("empty qubit index in directive");
    for (char c : digits)
        if (!std::isdigit(static_cast<unsigned char>(c)))
            throw QasmError("bad qubit index in directive: '" +
                            token + "'");
    return static_cast<Qubit>(std::stoul(digits));
}

/** Parse a comma-separated qubit list prefix of @p text. */
std::vector<Qubit>
parseQubitList(const std::string &text)
{
    std::vector<Qubit> qubits;
    std::istringstream is(text);
    std::string piece;
    while (std::getline(is, piece, ',')) {
        piece = stripWs(piece);
        if (!piece.empty())
            qubits.push_back(parseQubitToken(piece));
    }
    if (qubits.empty())
        throw QasmError("directive names no qubits");
    return qubits;
}

/** Build the spec for one directive body (text after "qra:"). */
AssertionSpec
parseDirective(const std::string &body, std::size_t insert_at)
{
    AssertionSpec spec;
    spec.insertAt = insert_at;

    if (body.rfind("assert-classical", 0) == 0) {
        const std::string rest =
            stripWs(body.substr(std::string("assert-classical").size()));
        const auto eq = rest.find("==");
        if (eq == std::string::npos)
            throw QasmError("assert-classical needs '== value': " +
                            body);
        const std::vector<Qubit> qubits =
            parseQubitList(stripWs(rest.substr(0, eq)));
        const std::string value_text = stripWs(rest.substr(eq + 2));
        const std::uint64_t value = fromBitstring(value_text);
        if (value_text.size() != qubits.size())
            throw QasmError("assert-classical value width must match "
                            "the qubit count: " + body);

        // The directive lists qubits MSB-first (like the rendered
        // value); targets are stored LSB-first.
        std::vector<Qubit> targets(qubits.rbegin(), qubits.rend());
        spec.assertion = std::make_shared<ClassicalAssertion>(
            value, targets.size());
        spec.targets = std::move(targets);
        spec.label = "qasm: " + body;
        return spec;
    }

    if (body.rfind("assert-superposition", 0) == 0) {
        const std::string rest = stripWs(
            body.substr(std::string("assert-superposition").size()));
        std::string sign = "+";
        std::string qubit_text = rest;
        if (!rest.empty() &&
            (rest.back() == '+' || rest.back() == '-')) {
            sign = rest.substr(rest.size() - 1);
            qubit_text = stripWs(rest.substr(0, rest.size() - 1));
        }
        const std::vector<Qubit> qubits = parseQubitList(qubit_text);
        if (qubits.size() != 1)
            throw QasmError("assert-superposition takes exactly one "
                            "qubit: " + body);
        spec.assertion = std::make_shared<SuperpositionAssertion>(
            sign == "+" ? SuperpositionAssertion::Target::Plus
                        : SuperpositionAssertion::Target::Minus);
        spec.targets = qubits;
        spec.label = "qasm: " + body;
        return spec;
    }

    if (body.rfind("assert-entangled", 0) == 0) {
        std::string rest = stripWs(
            body.substr(std::string("assert-entangled").size()));
        auto parity = EntanglementAssertion::Parity::Even;
        auto mode = EntanglementAssertion::Mode::PairParity;

        auto strip_suffix = [&](const char *word) {
            if (rest.size() >= std::strlen(word) &&
                rest.compare(rest.size() - std::strlen(word),
                             std::strlen(word), word) == 0) {
                rest = stripWs(
                    rest.substr(0, rest.size() - std::strlen(word)));
                return true;
            }
            return false;
        };
        for (bool progressed = true; progressed;) {
            progressed = false;
            if (strip_suffix("chain")) {
                mode = EntanglementAssertion::Mode::Chain;
                progressed = true;
            }
            if (strip_suffix("odd")) {
                parity = EntanglementAssertion::Parity::Odd;
                progressed = true;
            }
            if (strip_suffix("even"))
                progressed = true;
        }

        const std::vector<Qubit> qubits = parseQubitList(rest);
        spec.assertion = std::make_shared<EntanglementAssertion>(
            qubits.size(), parity, mode);
        spec.targets = qubits;
        spec.label = "qasm: " + body;
        return spec;
    }

    throw QasmError("unknown qra directive: " + body);
}

/** Number of circuit operations one QASM statement produces. */
bool
statementEmitsOp(const std::string &stmt)
{
    return !(stmt.empty() || stmt.rfind("OPENQASM", 0) == 0 ||
             stmt.rfind("include", 0) == 0 ||
             stmt.rfind("qreg", 0) == 0 ||
             stmt.rfind("creg", 0) == 0);
}

} // namespace

AnnotatedProgram
parseAnnotatedQasm(const std::string &text)
{
    // Strip directive comments for the payload parse, collecting
    // (directive body, op index) pairs in file order.
    std::ostringstream plain;
    std::vector<std::pair<std::string, std::size_t>> directives;
    std::size_t op_count = 0;

    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
        const auto marker = line.find("// qra:");
        if (marker != std::string::npos &&
            line.find("qra:postselect") == std::string::npos) {
            const std::string body =
                stripWs(line.substr(marker + 7));
            directives.emplace_back(body, op_count);
            continue;
        }

        // Count ops this line will contribute (strip comments, then
        // split on ';'). PostSelect directives count as one op.
        std::string body = line;
        if (line.find("// qra:postselect") != std::string::npos) {
            ++op_count;
            plain << line << "\n";
            continue;
        }
        const auto comment = body.find("//");
        if (comment != std::string::npos)
            body = body.substr(0, comment);
        std::istringstream stmts(body);
        std::string stmt;
        while (std::getline(stmts, stmt, ';')) {
            if (statementEmitsOp(stripWs(stmt)))
                ++op_count;
        }
        plain << line << "\n";
    }

    AnnotatedProgram program;
    program.payload = fromQasm(plain.str());
    for (const auto &[body, at] : directives)
        program.specs.push_back(parseDirective(body, at));
    return program;
}

InstrumentedCircuit
instrumentAnnotatedQasm(const std::string &text,
                        const InstrumentOptions &options)
{
    const AnnotatedProgram program = parseAnnotatedQasm(text);
    return instrument(program.payload, program.specs, options);
}

} // namespace qra
