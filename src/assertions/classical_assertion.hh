/**
 * @file
 * Dynamic assertion for classical values (paper Sec. 3.1, Fig. 2).
 *
 * One ancilla and one CNOT per asserted qubit. The ancilla is
 * initialised to the expected bit value, then CNOT(target -> ancilla)
 * computes target XOR expected into the ancilla: |0> on match, |1> on
 * mismatch. Side effect proved in the paper: if the target was in a
 * superposition because of a bug, a passing check *projects* it onto
 * the asserted classical state.
 */

#ifndef QRA_ASSERTIONS_CLASSICAL_ASSERTION_HH
#define QRA_ASSERTIONS_CLASSICAL_ASSERTION_HH

#include "assertions/assertion.hh"

namespace qra {

/** Assert that a register of qubits equals a classical bitstring. */
class ClassicalAssertion : public Assertion
{
  public:
    /**
     * Assert a single qubit equals @p expected_bit (0 or 1).
     */
    explicit ClassicalAssertion(int expected_bit);

    /**
     * Assert a multi-qubit register equals @p expected_bits, where
     * bit j of the value is the expected state of target j.
     */
    ClassicalAssertion(std::uint64_t expected_bits,
                       std::size_t num_targets);

    AssertionKind kind() const override
    {
        return AssertionKind::Classical;
    }

    std::size_t numTargets() const override { return numTargets_; }

    /** One ancilla per asserted qubit. */
    std::size_t numAncillas() const override { return numTargets_; }

    void emit(Circuit &circuit, const std::vector<Qubit> &targets,
              const std::vector<Qubit> &ancillas,
              const std::vector<Clbit> &clbits) const override;

    std::string describe() const override;

    std::uint64_t expectedBits() const { return expected_; }

  private:
    std::uint64_t expected_;
    std::size_t numTargets_;
};

} // namespace qra

#endif // QRA_ASSERTIONS_CLASSICAL_ASSERTION_HH
