/**
 * @file
 * Post-run analysis of instrumented circuits: per-check assertion
 * error rates, assertion-filtered payload distributions, and the
 * raw-vs-filtered error accounting the paper's Tables 1-2 report.
 */

#ifndef QRA_ASSERTIONS_REPORT_HH
#define QRA_ASSERTIONS_REPORT_HH

#include <functional>
#include <string>
#include <vector>

#include "assertions/injector.hh"
#include "sim/result.hh"
#include "stats/error_rate.hh"
#include "stats/histogram.hh"

namespace qra {

/** Decoded outcome of one instrumented run. */
struct AssertionReport
{
    /** P(check j flagged an error), over all shots. */
    std::vector<double> checkErrorRates;

    /** P(any check flagged an error). */
    double anyErrorRate = 0.0;

    /** Fraction of shots where every check passed. */
    double keptFraction = 1.0;

    /** Payload distribution over all shots (assertion bits dropped). */
    stats::Distribution rawPayload;

    /**
     * Payload distribution over shots where every check passed.
     * Explicitly empty when keptFraction is 0 (no shot passed, so
     * the conditional distribution is undefined).
     */
    stats::Distribution filteredPayload;

    /** Human-readable multi-line summary. */
    std::string str(const InstrumentedCircuit &instrumented) const;
};

/**
 * Decode @p result against the bookkeeping in @p instrumented.
 *
 * Uses the exact distribution when the backend provided one,
 * otherwise the empirical counts.
 */
AssertionReport analyze(const InstrumentedCircuit &instrumented,
                        const Result &result);

/**
 * Error-rate accounting against a payload-correctness predicate:
 * the Tables 1-2 computation (raw error rate over all shots vs error
 * rate over assertion-passing shots).
 */
stats::ErrorRateReport
errorRates(const InstrumentedCircuit &instrumented, const Result &result,
           const std::function<bool(std::uint64_t)> &payload_is_error);

} // namespace qra

#endif // QRA_ASSERTIONS_REPORT_HH
