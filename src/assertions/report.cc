#include "assertions/report.hh"

#include <sstream>

#include "common/strings.hh"

namespace qra {

namespace {

/** Exact distribution if present, else empirical. */
stats::Distribution
outcomeDistribution(const Result &result)
{
    if (result.exactDistribution())
        return *result.exactDistribution();
    stats::Counts counts;
    for (const auto &[key, n] : result.rawCounts())
        counts[key] = n;
    return stats::toDistribution(counts);
}

} // namespace

AssertionReport
analyze(const InstrumentedCircuit &instrumented, const Result &result)
{
    const stats::Distribution dist = outcomeDistribution(result);

    AssertionReport report;
    report.checkErrorRates.assign(instrumented.checks().size(), 0.0);

    double kept = 0.0;
    double any_error = 0.0;
    for (const auto &[reg, p] : dist) {
        for (std::size_t j = 0; j < instrumented.checks().size(); ++j)
            if (!instrumented.checkPassed(j, reg))
                report.checkErrorRates[j] += p;

        const std::uint64_t payload = instrumented.payloadBits(reg);
        report.rawPayload[payload] += p;

        if (instrumented.passed(reg)) {
            kept += p;
            report.filteredPayload[payload] += p;
        } else {
            any_error += p;
        }
    }

    report.anyErrorRate = any_error;
    report.keptFraction = kept;
    if (kept > 0.0) {
        for (auto &[payload, p] : report.filteredPayload)
            p /= kept;
    } else {
        // Same guard as stats::computeErrorRates' kept-nothing case:
        // when no shot passed, the conditional distribution is
        // undefined. Exact backends can still have seeded
        // filteredPayload with zero-probability keys; drop them so
        // "nothing passed" reads as an explicitly empty distribution
        // rather than an unnormalised all-zero one.
        report.filteredPayload.clear();
    }

    return report;
}

stats::ErrorRateReport
errorRates(const InstrumentedCircuit &instrumented, const Result &result,
           const std::function<bool(std::uint64_t)> &payload_is_error)
{
    const stats::Distribution dist = outcomeDistribution(result);
    return stats::computeErrorRates(
        dist,
        [&](std::uint64_t reg) {
            return payload_is_error(instrumented.payloadBits(reg));
        },
        [&](std::uint64_t reg) { return instrumented.passed(reg); });
}

std::string
AssertionReport::str(const InstrumentedCircuit &instrumented) const
{
    std::ostringstream os;
    for (std::size_t j = 0; j < checkErrorRates.size(); ++j) {
        const auto &check = instrumented.checks()[j];
        os << "check " << j << " ["
           << check.spec.assertion->describe();
        if (!check.spec.label.empty())
            os << " @ " << check.spec.label;
        os << "]: error rate " << formatPercent(checkErrorRates[j])
           << "\n";
    }
    os << "any-assertion error rate: " << formatPercent(anyErrorRate)
       << ", kept " << formatPercent(keptFraction) << " of shots\n";
    return os.str();
}

} // namespace qra
