#include "assertions/assertion.hh"

#include "common/error.hh"

namespace qra {

const char *
assertionKindName(AssertionKind kind)
{
    switch (kind) {
      case AssertionKind::Classical: return "classical";
      case AssertionKind::Entanglement: return "entanglement";
      case AssertionKind::Superposition: return "superposition";
    }
    QRA_PANIC("unhandled AssertionKind");
}

void
Assertion::checkOperands(const std::vector<Qubit> &targets,
                         const std::vector<Qubit> &ancillas,
                         const std::vector<Clbit> &clbits) const
{
    if (targets.size() != numTargets())
        throw AssertionError(describe() + ": expected " +
                             std::to_string(numTargets()) +
                             " target qubit(s), got " +
                             std::to_string(targets.size()));
    if (ancillas.size() != numAncillas())
        throw AssertionError(describe() + ": expected " +
                             std::to_string(numAncillas()) +
                             " ancilla qubit(s), got " +
                             std::to_string(ancillas.size()));
    if (clbits.size() != numAncillas())
        throw AssertionError(describe() + ": expected " +
                             std::to_string(numAncillas()) +
                             " classical bit(s), got " +
                             std::to_string(clbits.size()));
    for (Qubit t : targets)
        for (Qubit a : ancillas)
            if (t == a)
                throw AssertionError(describe() +
                                     ": ancilla overlaps target q" +
                                     std::to_string(t));
}

} // namespace qra
