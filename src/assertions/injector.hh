/**
 * @file
 * Assertion instrumentation: weave assertion checks into a payload
 * circuit, allocating ancilla qubits and classical bits, and keep the
 * bookkeeping needed to decode results afterwards.
 */

#ifndef QRA_ASSERTIONS_INJECTOR_HH
#define QRA_ASSERTIONS_INJECTOR_HH

#include <memory>
#include <string>
#include <vector>

#include "assertions/assertion.hh"
#include "circuit/circuit.hh"

namespace qra {

/** One requested check: which assertion, where, on which qubits. */
struct AssertionSpec
{
    std::shared_ptr<const Assertion> assertion;

    /** Qubits under test, in the payload circuit's numbering. */
    std::vector<Qubit> targets;

    /**
     * Payload instruction index *before* which the check runs;
     * indices >= payload size mean "at the end".
     */
    std::size_t insertAt = 0;

    /**
     * Emit the check this many times back to back (fresh ancillas
     * each) and decide pass/fail by majority vote. Because a passing
     * check projects the targets into the asserted subspace, the
     * repeats are idempotent on the quantum side; the vote averages
     * out *classical* ancilla readout errors, trading ancillas for a
     * lower false-positive rate on NISQ devices.
     */
    std::size_t repetitions = 1;

    /** Optional diagnostic label carried into reports. */
    std::string label;
};

/** Knobs of the instrumentation pass. */
struct InstrumentOptions
{
    /**
     * Reuse a single ancilla pool across sequential checks by
     * resetting ancillas after measurement. Cuts qubit cost from
     * sum(ancillas) to max(ancillas); requires a backend that
     * supports operating on measured qubits (TrajectorySimulator).
     */
    bool reuseAncillas = false;

    /** Wrap each check in barriers (fences the optimiser). */
    bool barriers = true;
};

class InstrumentedCircuit;

namespace detail {
/** The weaving primitive behind instrument() and the compile passes. */
InstrumentedCircuit weaveAssertions(const Circuit &payload,
                                    const std::vector<AssertionSpec> &specs,
                                    const InstrumentOptions &options);
} // namespace detail

/** An instrumented circuit plus decode bookkeeping. */
class InstrumentedCircuit
{
  public:
    /** One materialised check (possibly a voted repetition group). */
    struct Check
    {
        AssertionSpec spec;
        /** All ancillas across repetitions, repetition-major. */
        std::vector<Qubit> ancillas;
        /** All readout clbits across repetitions, repetition-major. */
        std::vector<Clbit> clbits;
        /** Clbits per single repetition. */
        std::size_t clbitsPerRepetition = 0;
    };

    const Circuit &circuit() const { return circuit_; }
    Circuit &circuit() { return circuit_; }

    /** Width of the payload's original classical register. */
    std::size_t payloadClbits() const { return payloadClbits_; }

    /** Number of payload qubits (ancillas sit above this index). */
    std::size_t payloadQubits() const { return payloadQubits_; }

    const std::vector<Check> &checks() const { return checks_; }

    /** Register-value mask covering every assertion clbit. */
    std::uint64_t assertionMask() const;

    /** True iff every check passed in register value @p reg. */
    bool passed(std::uint64_t reg) const;

    /** True iff check @p index passed in register value @p reg. */
    bool checkPassed(std::size_t index, std::uint64_t reg) const;

    /** Payload bits of @p reg (assertion bits stripped). */
    std::uint64_t payloadBits(std::uint64_t reg) const;

  private:
    friend InstrumentedCircuit
    detail::weaveAssertions(const Circuit &,
                            const std::vector<AssertionSpec> &,
                            const InstrumentOptions &);

    Circuit circuit_{1};
    std::size_t payloadClbits_ = 0;
    std::size_t payloadQubits_ = 0;
    std::vector<Check> checks_;
};

/**
 * Weave @p specs into @p payload.
 *
 * Ancillas are appended above the payload qubits; assertion clbits
 * above the payload clbits. Checks at the same insertion point run in
 * spec order. @throws AssertionError on malformed specs.
 *
 * Thin wrapper over the canonical compile::instrumentPipeline(); the
 * weaving itself lives in detail::weaveAssertions, which the compile
 * passes call directly.
 */
InstrumentedCircuit instrument(const Circuit &payload,
                               const std::vector<AssertionSpec> &specs,
                               const InstrumentOptions &options = {});

} // namespace qra

#endif // QRA_ASSERTIONS_INJECTOR_HH
