/**
 * @file
 * Base interface of the paper's dynamic assertion circuits.
 *
 * Every assertion follows the same protocol (Zhou & Byrd, Sec. 3):
 * ancilla qubits are entangled with the qubits under test by a small
 * circuit, only the ancillas are measured, and — after normalisation
 * applied by each concrete subclass — an ancilla reading |1> means an
 * assertion error. The qubits under test keep flowing through the
 * program; on the pass path the ancillas are provably disentangled,
 * so measuring them does not disturb subsequent computation.
 */

#ifndef QRA_ASSERTIONS_ASSERTION_HH
#define QRA_ASSERTIONS_ASSERTION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/circuit.hh"

namespace qra {

/** The three assertion families identified by Huang & Martonosi. */
enum class AssertionKind { Classical, Entanglement, Superposition };

/** Printable name of an assertion kind. */
const char *assertionKindName(AssertionKind kind);

/**
 * A dynamic (runtime) assertion: a generator of ancilla-based check
 * circuits over a set of target qubits.
 */
class Assertion
{
  public:
    virtual ~Assertion() = default;

    virtual AssertionKind kind() const = 0;

    /** Number of qubits under test this assertion checks. */
    virtual std::size_t numTargets() const = 0;

    /** Number of ancilla qubits the check consumes. */
    virtual std::size_t numAncillas() const = 0;

    /**
     * Emit the check into @p circuit.
     *
     * @param circuit Destination circuit (already widened).
     * @param targets Qubits under test, size numTargets().
     * @param ancillas Fresh |0> ancillas, size numAncillas().
     * @param clbits Classical bits receiving the ancilla
     *        measurements, size numAncillas().
     *
     * Postcondition: ancilla measurement of all-zeros means the
     * assertion passed; any |1> bit means an assertion error.
     */
    virtual void emit(Circuit &circuit, const std::vector<Qubit> &targets,
                      const std::vector<Qubit> &ancillas,
                      const std::vector<Clbit> &clbits) const = 0;

    /** Human-readable description, e.g. "assert q3 == |0>". */
    virtual std::string describe() const = 0;

  protected:
    /** Validate operand vector sizes inside emit(). */
    void checkOperands(const std::vector<Qubit> &targets,
                       const std::vector<Qubit> &ancillas,
                       const std::vector<Clbit> &clbits) const;
};

} // namespace qra

#endif // QRA_ASSERTIONS_ASSERTION_HH
