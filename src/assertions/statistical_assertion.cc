#include "assertions/statistical_assertion.hh"

#include <sstream>

#include "common/error.hh"
#include "common/strings.hh"

namespace qra {

StatisticalAssertion::StatisticalAssertion(AssertionKind kind,
                                           std::vector<Qubit> targets,
                                           std::uint64_t expected_value)
    : kind_(kind), targets_(std::move(targets)), expected_(expected_value)
{
    if (targets_.empty())
        throw AssertionError("statistical assertion needs targets");
    if (kind == AssertionKind::Entanglement && targets_.size() < 2)
        throw AssertionError("entanglement assertion needs >= 2 "
                             "targets");
    if (targets_.size() < 64 && (expected_ >> targets_.size()) != 0)
        throw AssertionError("expected value has more bits than "
                             "targets");
}

Circuit
StatisticalAssertion::breakpointCircuit(const Circuit &payload,
                                        std::size_t insert_at) const
{
    const std::size_t stop = std::min(insert_at, payload.size());

    Circuit breakpoint(payload.numQubits(), targets_.size(),
                       payload.name() + "@breakpoint" +
                           std::to_string(stop));
    for (std::size_t i = 0; i < stop; ++i) {
        const Operation &op = payload.ops()[i];
        // Payload measurements make no sense in a truncated
        // diagnostic run; skip them (their clbits don't exist here).
        if (op.kind == OpKind::Measure)
            continue;
        breakpoint.append(op);
    }
    for (std::size_t j = 0; j < targets_.size(); ++j)
        breakpoint.measure(targets_[j], static_cast<Clbit>(j));
    return breakpoint;
}

stats::Distribution
StatisticalAssertion::expectedDistribution() const
{
    stats::Distribution dist;
    const std::size_t n = targets_.size();
    switch (kind_) {
      case AssertionKind::Classical:
        dist[expected_] = 1.0;
        return dist;
      case AssertionKind::Superposition:
      {
        const double p =
            1.0 / static_cast<double>(std::uint64_t{1} << n);
        for (std::uint64_t v = 0; v < (std::uint64_t{1} << n); ++v)
            dist[v] = p;
        return dist;
      }
      case AssertionKind::Entanglement:
        dist[0] = 0.5;
        dist[(std::uint64_t{1} << n) - 1] = 0.5;
        return dist;
    }
    QRA_PANIC("unhandled AssertionKind");
}

StatisticalAssertion::Outcome
StatisticalAssertion::check(const stats::Counts &observed,
                            double alpha) const
{
    Outcome outcome;
    outcome.test = stats::chiSquareTest(observed,
                                        expectedDistribution());
    outcome.rejected = outcome.test.reject(alpha);
    return outcome;
}

std::string
StatisticalAssertion::Outcome::str() const
{
    std::ostringstream os;
    os << "chi2 = " << formatDouble(test.statistic, 2) << " (dof "
       << test.degreesOfFreedom << ", p = "
       << formatDouble(test.pValue, 4) << ") -> "
       << (rejected ? "ASSERTION FAILED" : "assertion holds");
    return os.str();
}

} // namespace qra
