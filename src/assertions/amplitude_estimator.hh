/**
 * @file
 * Amplitude estimation from assertion-error statistics.
 *
 * The paper remarks (Secs. 3.1 and 3.3) that the probability
 * distribution of assertion errors over repeated runs can be used to
 * estimate the amplitudes of the qubit under test. This module turns
 * those remarks into estimators with confidence intervals.
 */

#ifndef QRA_ASSERTIONS_AMPLITUDE_ESTIMATOR_HH
#define QRA_ASSERTIONS_AMPLITUDE_ESTIMATOR_HH

#include <cstddef>
#include <optional>
#include <string>

namespace qra {

/** Point estimate with a 95% Wilson confidence half-width. */
struct Estimate
{
    double value = 0.0;
    double halfWidth95 = 0.0;

    std::string str() const;
};

/**
 * From a classical ==|0> assertion on |psi> = a|0> + b|1>:
 * P(error) = |b|^2 directly (Sec. 3.1).
 */
struct ClassicalAmplitudeEstimate
{
    Estimate probZero; ///< |a|^2
    Estimate probOne;  ///< |b|^2
};

/**
 * @param error_count Shots flagging an assertion error.
 * @param shots Total shots.
 */
ClassicalAmplitudeEstimate
estimateFromClassicalAssertion(std::size_t error_count,
                               std::size_t shots);

/**
 * From a |+> superposition assertion on a real-amplitude state
 * a|0> + b|1> with a, b >= 0: P(error) = (2 - 4ab)/4 (Sec. 3.3), so
 * ab = (1 - 2 P(error))/2 and {|a|^2, |b|^2} are the roots of
 * t^2 - t + (ab)^2 = 0. The assignment of the two roots to a and b
 * is not identifiable from this statistic alone.
 *
 * Under the non-negative-amplitude convention ab lives in [0, 1/2];
 * sampling noise driving P(error) above 1/2 would put ab below 0
 * (and a hypothetical P(error) below 0 would put it above 1/2), so
 * the raw value is clamped into [0, 1/2] before the roots are solved
 * and the clamp is flagged.
 */
struct SuperpositionAmplitudeEstimate
{
    /** Estimated product a*b, clamped into [0, 1/2]. */
    Estimate product;

    /** Larger of {|a|^2, |b|^2}; nullopt when inconsistent (noise). */
    std::optional<double> probMajor;
    /** Smaller of {|a|^2, |b|^2}. */
    std::optional<double> probMinor;

    /**
     * True when the raw statistic was unphysical (P(error) > 1/2,
     * i.e. ab < 0) and the product was clamped. The estimate is then
     * a boundary value, not an interior point — treat it as "more
     * shots needed", not as a measurement of 0.
     */
    bool clamped = false;
};

SuperpositionAmplitudeEstimate
estimateFromSuperpositionAssertion(std::size_t error_count,
                                   std::size_t shots);

} // namespace qra

#endif // QRA_ASSERTIONS_AMPLITUDE_ESTIMATOR_HH
