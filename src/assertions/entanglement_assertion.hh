/**
 * @file
 * Dynamic assertion for entanglement (paper Sec. 3.2, Figs. 3-4).
 *
 * The check computes a parity of the qubits under test into an
 * ancilla via CNOTs and measures the ancilla. For a GHZ-class state
 * a|0...0> + b|1...1> every even-size subset of qubits has parity 0,
 * so the ancilla disentangles and deterministically reads |0>.
 *
 * The paper's key structural rule is enforced here: the number of
 * CNOTs into one ancilla must be *even*, otherwise the ancilla stays
 * entangled with the qubits under test and the measurement corrupts
 * the program state (ablation bench A1 demonstrates this).
 *
 * Two modes:
 *  - PairParity (paper-faithful): one ancilla, even CNOT count;
 *    checks the parity of one even-size subset of the targets.
 *  - Chain (extension): n-1 ancillas checking every adjacent pair,
 *    i.e. all the Z-type stabiliser generators of the GHZ state;
 *    strictly stronger detection at higher ancilla cost.
 */

#ifndef QRA_ASSERTIONS_ENTANGLEMENT_ASSERTION_HH
#define QRA_ASSERTIONS_ENTANGLEMENT_ASSERTION_HH

#include "assertions/assertion.hh"

namespace qra {

/** Assert that target qubits are entangled with correlated parity. */
class EntanglementAssertion : public Assertion
{
  public:
    /** Which correlation the targets are asserted to exhibit. */
    enum class Parity
    {
        Even, ///< a|00> + b|11> (and GHZ generalisations)
        Odd,  ///< a|01> + b|10>
    };

    /** Check structure. */
    enum class Mode
    {
        PairParity, ///< paper circuit: one ancilla, even CNOT count
        Chain,      ///< extension: n-1 ancillas, all adjacent pairs
        /**
         * Extension: the complete GHZ stabiliser measurement — the
         * Chain's Z-type parities plus one X-type parity measured
         * via phase kickback. Closes the Z-parity check's phase
         * blindness: (|0..0> - |1..1>)/sqrt2 passes PairParity and
         * Chain but is caught here. Costs n ancillas.
         *
         * Semantics sharpen accordingly: PairParity/Chain accept the
         * whole subspace a|0..0> + b|1..1>; Full deterministically
         * accepts only the maximally entangled member (a == b) and
         * flags amplitude imbalance with probability |a - b|^2 / 2.
         */
        Full,
    };

    /**
     * @param num_targets Number of qubits under test (>= 2).
     * @param parity Asserted correlation (Odd only for 2 targets).
     * @param mode Check structure.
     */
    explicit EntanglementAssertion(std::size_t num_targets,
                                   Parity parity = Parity::Even,
                                   Mode mode = Mode::PairParity);

    AssertionKind kind() const override
    {
        return AssertionKind::Entanglement;
    }

    std::size_t numTargets() const override { return numTargets_; }

    std::size_t numAncillas() const override
    {
        switch (mode_) {
          case Mode::PairParity: return 1;
          case Mode::Chain: return numTargets_ - 1;
          case Mode::Full: return numTargets_;
        }
        return 1;
    }

    void emit(Circuit &circuit, const std::vector<Qubit> &targets,
              const std::vector<Qubit> &ancillas,
              const std::vector<Clbit> &clbits) const override;

    std::string describe() const override;

    Parity parity() const { return parity_; }
    Mode mode() const { return mode_; }

    /**
     * Number of CNOTs the PairParity circuit will emit; always even
     * (paper Sec. 3.2's correctness requirement).
     */
    std::size_t pairParityCnotCount() const;

  private:
    std::size_t numTargets_;
    Parity parity_;
    Mode mode_;
};

} // namespace qra

#endif // QRA_ASSERTIONS_ENTANGLEMENT_ASSERTION_HH
