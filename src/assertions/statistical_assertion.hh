/**
 * @file
 * Statistical assertion baseline (the ISCA'19 approach the paper
 * motivates against).
 *
 * A statistical assertion measures the qubits under test directly at
 * a breakpoint: the program is truncated there, run many times, and
 * the observed histogram is chi-square-tested against the asserted
 * distribution. Two consequences the paper highlights, both modelled
 * here:
 *   1. the truncated run produces no program output — checking an
 *      intermediate point costs a full extra batch of executions;
 *   2. the assertion cannot filter the final results, because the
 *      breakpoint measurement destroys the state.
 */

#ifndef QRA_ASSERTIONS_STATISTICAL_ASSERTION_HH
#define QRA_ASSERTIONS_STATISTICAL_ASSERTION_HH

#include <string>
#include <vector>

#include "assertions/assertion.hh"
#include "circuit/circuit.hh"
#include "stats/chi_square.hh"
#include "stats/histogram.hh"

namespace qra {

/** Stop-and-measure assertion with a chi-square decision rule. */
class StatisticalAssertion
{
  public:
    /**
     * @param kind Assertion family (decides the null distribution).
     * @param targets Qubits under test in the payload circuit.
     * @param expected_value For Classical: the asserted register
     *        value. Ignored otherwise.
     */
    StatisticalAssertion(AssertionKind kind, std::vector<Qubit> targets,
                         std::uint64_t expected_value = 0);

    AssertionKind kind() const { return kind_; }
    const std::vector<Qubit> &targets() const { return targets_; }

    /**
     * The measurement program for a breakpoint before payload
     * instruction @p insert_at: the payload truncated there plus
     * measurements of the targets. Running it *replaces* a normal
     * program execution.
     */
    Circuit breakpointCircuit(const Circuit &payload,
                              std::size_t insert_at) const;

    /**
     * Null distribution of the chi-square test:
     *  - Classical: all mass on the asserted value;
     *  - Superposition: uniform over all target outcomes;
     *  - Entanglement: mass split between all-zeros and all-ones.
     */
    stats::Distribution expectedDistribution() const;

    /** Decision outcome. */
    struct Outcome
    {
        stats::ChiSquareResult test;
        bool rejected = false;
        std::string str() const;
    };

    /**
     * Test observed breakpoint counts at significance @p alpha.
     * Rejection means the assertion *failed*.
     */
    Outcome check(const stats::Counts &observed,
                  double alpha = 0.05) const;

  private:
    AssertionKind kind_;
    std::vector<Qubit> targets_;
    std::uint64_t expected_;
};

} // namespace qra

#endif // QRA_ASSERTIONS_STATISTICAL_ASSERTION_HH
