#include "assertions/classical_assertion.hh"

#include "common/error.hh"
#include "common/strings.hh"

namespace qra {

ClassicalAssertion::ClassicalAssertion(int expected_bit)
    : expected_(expected_bit ? 1 : 0), numTargets_(1)
{
    if (expected_bit != 0 && expected_bit != 1)
        throw AssertionError("classical assertion expects bit 0 or 1");
}

ClassicalAssertion::ClassicalAssertion(std::uint64_t expected_bits,
                                       std::size_t num_targets)
    : expected_(expected_bits), numTargets_(num_targets)
{
    if (num_targets == 0 || num_targets > 63)
        throw AssertionError("classical assertion supports 1..63 "
                             "targets");
    if (num_targets < 64 &&
        (expected_bits >> num_targets) != 0) {
        throw AssertionError("expected value has more bits than "
                             "targets");
    }
}

void
ClassicalAssertion::emit(Circuit &circuit,
                         const std::vector<Qubit> &targets,
                         const std::vector<Qubit> &ancillas,
                         const std::vector<Clbit> &clbits) const
{
    checkOperands(targets, ancillas, clbits);

    for (std::size_t j = 0; j < targets.size(); ++j) {
        const int expected_bit =
            static_cast<int>((expected_ >> j) & 1);
        // Ancilla carries the expected value...
        if (expected_bit)
            circuit.x(ancillas[j]);
        // ...XORed with the target: |0> iff they match.
        circuit.cx(targets[j], ancillas[j]);
        circuit.measure(ancillas[j], clbits[j]);
    }
}

std::string
ClassicalAssertion::describe() const
{
    if (numTargets_ == 1) {
        return std::string("assert qubit == |") +
               (expected_ ? "1" : "0") + ">";
    }
    return "assert register == |" +
           toBitstring(expected_, numTargets_) + ">";
}

} // namespace qra
