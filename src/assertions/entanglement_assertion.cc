#include "assertions/entanglement_assertion.hh"

#include "common/error.hh"

namespace qra {

EntanglementAssertion::EntanglementAssertion(std::size_t num_targets,
                                             Parity parity, Mode mode)
    : numTargets_(num_targets), parity_(parity), mode_(mode)
{
    if (num_targets < 2)
        throw AssertionError("entanglement assertion needs at least "
                             "two target qubits");
    if (parity == Parity::Odd && num_targets != 2)
        throw AssertionError("odd-parity entanglement assertion is "
                             "defined for exactly two qubits");
}

std::size_t
EntanglementAssertion::pairParityCnotCount() const
{
    // One CNOT per target, plus one duplicate from the last target
    // when the count would be odd. XOR-cancellation makes the
    // duplicate a no-op logically while keeping the ancilla
    // disentangled (paper Fig. 4: four CNOTs for three qubits).
    return numTargets_ % 2 == 0 ? numTargets_ : numTargets_ + 1;
}

void
EntanglementAssertion::emit(Circuit &circuit,
                            const std::vector<Qubit> &targets,
                            const std::vector<Qubit> &ancillas,
                            const std::vector<Clbit> &clbits) const
{
    checkOperands(targets, ancillas, clbits);

    if (mode_ == Mode::PairParity) {
        const Qubit anc = ancillas[0];
        // Odd-parity variant: pre-load the ancilla with |1> so that
        // the asserted correlation still yields |0> at readout.
        if (parity_ == Parity::Odd)
            circuit.x(anc);

        for (Qubit t : targets)
            circuit.cx(t, anc);
        if (targets.size() % 2 != 0)
            circuit.cx(targets.back(), anc); // keep the count even

        circuit.measure(anc, clbits[0]);
        return;
    }

    // Chain and Full modes: ancilla j accumulates the Z-type parity
    // of targets j, j+1.
    for (std::size_t j = 0; j + 1 < targets.size(); ++j) {
        const Qubit anc = ancillas[j];
        if (parity_ == Parity::Odd)
            circuit.x(anc);
        circuit.cx(targets[j], anc);
        circuit.cx(targets[j + 1], anc);
        circuit.measure(anc, clbits[j]);
    }

    if (mode_ == Mode::Full) {
        // X-type stabiliser X (x) ... (x) X via phase kickback: the
        // ancilla in |+> controls an X onto every target, then is
        // read in the X basis. Eigenvalue -1 (e.g. the relative
        // phase of |0..0> - |1..1>) flips the ancilla to |1>.
        const Qubit anc = ancillas[targets.size() - 1];
        circuit.h(anc);
        for (Qubit t : targets)
            circuit.cx(anc, t);
        circuit.h(anc);
        circuit.measure(anc, clbits[targets.size() - 1]);
    }
}

std::string
EntanglementAssertion::describe() const
{
    std::string s = "assert " + std::to_string(numTargets_) +
                    " qubits entangled (";
    s += parity_ == Parity::Even ? "a|0..0>+b|1..1>" : "a|01>+b|10>";
    switch (mode_) {
      case Mode::PairParity: s += ")"; break;
      case Mode::Chain: s += ", chain mode)"; break;
      case Mode::Full: s += ", full stabiliser mode)"; break;
    }
    return s;
}

} // namespace qra
