#include "assertions/injector.hh"

#include <algorithm>

#include "common/error.hh"
#include "compile/pipelines.hh"

namespace qra {

std::uint64_t
InstrumentedCircuit::assertionMask() const
{
    std::uint64_t mask = 0;
    for (const Check &check : checks_)
        for (Clbit c : check.clbits)
            mask |= std::uint64_t{1} << c;
    return mask;
}

bool
InstrumentedCircuit::passed(std::uint64_t reg) const
{
    for (std::size_t j = 0; j < checks_.size(); ++j)
        if (!checkPassed(j, reg))
            return false;
    return true;
}

bool
InstrumentedCircuit::checkPassed(std::size_t index,
                                 std::uint64_t reg) const
{
    if (index >= checks_.size())
        throw AssertionError("check index out of range");
    const Check &check = checks_[index];
    const std::size_t width = check.clbitsPerRepetition;
    QRA_ASSERT(width > 0 && check.clbits.size() % width == 0,
               "corrupt check bookkeeping");
    const std::size_t reps = check.clbits.size() / width;

    // Majority vote over repetitions; a single repetition passes
    // when all of its ancilla bits read 0.
    std::size_t passing = 0;
    for (std::size_t rep = 0; rep < reps; ++rep) {
        bool pass = true;
        for (std::size_t j = 0; j < width; ++j)
            if ((reg >> check.clbits[rep * width + j]) & 1)
                pass = false;
        if (pass)
            ++passing;
    }
    return passing * 2 > reps;
}

std::uint64_t
InstrumentedCircuit::payloadBits(std::uint64_t reg) const
{
    return reg & ((std::uint64_t{1} << payloadClbits_) - 1);
}

InstrumentedCircuit
instrument(const Circuit &payload, const std::vector<AssertionSpec> &specs,
           const InstrumentOptions &options)
{
    compile::CompileContext ctx =
        compile::instrumentPipeline(specs, options).run(payload);
    return std::move(*ctx.instrumented);
}

namespace detail {

InstrumentedCircuit
weaveAssertions(const Circuit &payload,
                const std::vector<AssertionSpec> &specs,
                const InstrumentOptions &options)
{
    // Validate specs against the payload.
    std::size_t total_ancillas = 0;
    std::size_t max_ancillas = 0;
    std::size_t total_clbits = 0;
    for (const AssertionSpec &spec : specs) {
        if (!spec.assertion)
            throw AssertionError("spec without an assertion");
        if (spec.targets.size() != spec.assertion->numTargets())
            throw AssertionError(spec.assertion->describe() +
                                 ": wrong target count");
        if (spec.repetitions == 0)
            throw AssertionError("spec.repetitions must be >= 1");
        for (Qubit t : spec.targets)
            if (t >= payload.numQubits())
                throw AssertionError("assertion target q" +
                                     std::to_string(t) +
                                     " outside the payload register");
        const std::size_t per_check =
            spec.assertion->numAncillas() * spec.repetitions;
        total_ancillas += per_check;
        max_ancillas =
            std::max(max_ancillas, spec.assertion->numAncillas());
        total_clbits += per_check;
    }

    const std::size_t ancilla_count =
        options.reuseAncillas ? max_ancillas : total_ancillas;

    InstrumentedCircuit out;
    out.payloadQubits_ = payload.numQubits();
    out.payloadClbits_ = payload.numClbits();
    out.circuit_ = Circuit(payload.numQubits() + ancilla_count,
                           payload.numClbits() + total_clbits,
                           payload.name() + "+asserts");

    const Qubit first_ancilla = static_cast<Qubit>(payload.numQubits());
    const Clbit first_clbit = static_cast<Clbit>(payload.numClbits());

    Qubit next_ancilla = first_ancilla;
    Clbit next_clbit = first_clbit;
    // Ancillas that were used and must be reset before reuse.
    std::vector<Qubit> dirty;

    auto emit_check = [&](const AssertionSpec &spec) {
        const std::size_t n_anc = spec.assertion->numAncillas();

        std::vector<Qubit> all_ancillas;
        std::vector<Clbit> all_clbits;

        for (std::size_t rep = 0; rep < spec.repetitions; ++rep) {
            std::vector<Qubit> ancillas(n_anc);
            if (options.reuseAncillas) {
                for (std::size_t j = 0; j < n_anc; ++j)
                    ancillas[j] =
                        first_ancilla + static_cast<Qubit>(j);
                for (Qubit a : ancillas) {
                    if (std::find(dirty.begin(), dirty.end(), a) !=
                        dirty.end())
                        out.circuit_.reset(a);
                }
                dirty = ancillas;
            } else {
                for (std::size_t j = 0; j < n_anc; ++j)
                    ancillas[j] = next_ancilla++;
            }

            std::vector<Clbit> clbits(n_anc);
            for (std::size_t j = 0; j < n_anc; ++j)
                clbits[j] = next_clbit++;

            if (options.barriers) {
                std::vector<Qubit> fence = spec.targets;
                fence.insert(fence.end(), ancillas.begin(),
                             ancillas.end());
                out.circuit_.barrier(fence);
                spec.assertion->emit(out.circuit_, spec.targets,
                                     ancillas, clbits);
                out.circuit_.barrier(fence);
            } else {
                spec.assertion->emit(out.circuit_, spec.targets,
                                     ancillas, clbits);
            }

            all_ancillas.insert(all_ancillas.end(), ancillas.begin(),
                                ancillas.end());
            all_clbits.insert(all_clbits.end(), clbits.begin(),
                              clbits.end());
        }

        out.checks_.push_back({spec, std::move(all_ancillas),
                               std::move(all_clbits), n_anc});
    };

    // Interleave payload instructions with checks at their insertion
    // points (same-point checks run in spec order).
    for (std::size_t i = 0; i <= payload.size(); ++i) {
        for (const AssertionSpec &spec : specs) {
            const std::size_t at =
                std::min(spec.insertAt, payload.size());
            if (at == i)
                emit_check(spec);
        }
        if (i < payload.size())
            out.circuit_.append(payload.ops()[i]);
    }

    return out;
}

} // namespace detail

} // namespace qra
