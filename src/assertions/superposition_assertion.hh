/**
 * @file
 * Dynamic assertion for superposition states (paper Sec. 3.3, Fig. 5).
 *
 * Paper circuit: CNOT(target -> ancilla), H on both, CNOT(target ->
 * ancilla), measure the ancilla. For target |+> the ancilla is
 * deterministically |0>; for |-> it is deterministically |1>; for a
 * classical-state target it reads |1> with probability 1/2 and the
 * passing branch *forces* the target into an equal superposition.
 *
 * Normalisation: when asserting |->, an X is appended to the ancilla
 * before readout so that |1> uniformly signals an error.
 *
 * Extension (Basis mode): asserting an arbitrary pure single-qubit
 * state cos(t/2)|0> + e^{ip} sin(t/2)|1> by conjugating the classical
 * check with the basis rotation U(t, p, 0): U' target, CNOT into the
 * ancilla, U target. Deterministic pass on match; error probability
 * equals the overlap with the orthogonal state on mismatch. Unlike
 * the paper circuit this briefly rotates the qubit under test, but it
 * restores it exactly on the pass path.
 */

#ifndef QRA_ASSERTIONS_SUPERPOSITION_ASSERTION_HH
#define QRA_ASSERTIONS_SUPERPOSITION_ASSERTION_HH

#include "assertions/assertion.hh"

namespace qra {

/** Assert that one qubit is in a specific superposition state. */
class SuperpositionAssertion : public Assertion
{
  public:
    /** Which state is asserted. */
    enum class Target
    {
        Plus,  ///< (|0> + |1>)/sqrt(2), paper circuit
        Minus, ///< (|0> - |1>)/sqrt(2), paper circuit + ancilla X
        Basis, ///< arbitrary (theta, phi), rotation-conjugated check
    };

    /** Assert |+> or |->. */
    explicit SuperpositionAssertion(Target target = Target::Plus);

    /** Assert the arbitrary state U(theta, phi, 0)|0> (Basis mode). */
    SuperpositionAssertion(double theta, double phi);

    AssertionKind kind() const override
    {
        return AssertionKind::Superposition;
    }

    std::size_t numTargets() const override { return 1; }
    std::size_t numAncillas() const override { return 1; }

    void emit(Circuit &circuit, const std::vector<Qubit> &targets,
              const std::vector<Qubit> &ancillas,
              const std::vector<Clbit> &clbits) const override;

    std::string describe() const override;

    Target target() const { return target_; }
    double theta() const { return theta_; }
    double phi() const { return phi_; }

  private:
    Target target_;
    double theta_ = 0.0;
    double phi_ = 0.0;
};

} // namespace qra

#endif // QRA_ASSERTIONS_SUPERPOSITION_ASSERTION_HH
