/**
 * @file
 * Assertion directives embedded in OpenQASM comments, so existing
 * QASM programs can be instrumented without touching the code that
 * generated them. Syntax (each on its own line, between statements):
 *
 *   // qra:assert-classical q[0] == 0
 *   // qra:assert-classical q[2], q[1] == 10
 *   // qra:assert-superposition q[1] +
 *   // qra:assert-superposition q[1] -
 *   // qra:assert-entangled q[0], q[1]
 *   // qra:assert-entangled q[0], q[1], q[2] chain
 *   // qra:assert-entangled q[0], q[1] odd
 *
 * The directive applies at its position in the program: the check
 * runs after every statement that precedes it in the file.
 */

#ifndef QRA_ASSERTIONS_DIRECTIVES_HH
#define QRA_ASSERTIONS_DIRECTIVES_HH

#include <string>
#include <vector>

#include "assertions/injector.hh"
#include "circuit/circuit.hh"

namespace qra {

/** A parsed QASM program together with its assertion directives. */
struct AnnotatedProgram
{
    Circuit payload{1};
    std::vector<AssertionSpec> specs;
};

/**
 * Parse QASM text with qra:assert-* comment directives.
 *
 * The payload is the plain circuit (directives stripped); each
 * directive becomes an AssertionSpec whose insertAt points at the
 * payload instruction the directive preceded.
 *
 * @throws QasmError on malformed programs or directives.
 */
AnnotatedProgram parseAnnotatedQasm(const std::string &text);

/** Convenience: parse, instrument, and return the result. */
InstrumentedCircuit instrumentAnnotatedQasm(
    const std::string &text, const InstrumentOptions &options = {});

} // namespace qra

#endif // QRA_ASSERTIONS_DIRECTIVES_HH
