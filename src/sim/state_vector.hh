/**
 * @file
 * n-qubit pure-state simulator state: a 2^n amplitude vector with
 * gate application, measurement, and post-selection primitives.
 *
 * Qubit i is bit i of the basis index (little-endian). All mutating
 * operations preserve the l2 norm to numerical precision except
 * postSelect, which renormalises explicitly.
 */

#ifndef QRA_SIM_STATE_VECTOR_HH
#define QRA_SIM_STATE_VECTOR_HH

#include <vector>

#include "circuit/gate.hh"
#include "common/rng.hh"
#include "math/matrix.hh"
#include "math/types.hh"

namespace qra {

namespace kernels {
struct PlanEntry;
} // namespace kernels

/** Pure quantum state over a register of qubits. */
class StateVector
{
  public:
    /** Initialise |0...0> over @p num_qubits qubits. */
    explicit StateVector(std::size_t num_qubits);

    /**
     * Construct from explicit amplitudes (size must be a power of
     * two). The vector is normalised if it is not already.
     */
    static StateVector fromAmplitudes(std::vector<Complex> amps);

    std::size_t numQubits() const { return numQubits_; }
    std::size_t dim() const { return amps_.size(); }

    const std::vector<Complex> &amplitudes() const { return amps_; }

    /** Amplitude of computational basis state @p index. */
    Complex amplitude(BasisIndex index) const { return amps_[index]; }

    /** Reset to |0...0>. */
    void resetAll();

    /**
     * Apply a k-qubit unitary to the given qubits. Matrix bit j
     * corresponds to qubits[j].
     */
    void applyMatrix(const Matrix &u, const std::vector<Qubit> &qubits);

    /** Apply one unitary circuit operation. */
    void applyUnitary(const Operation &op);

    /**
     * Apply one pre-lowered unitary plan entry (see
     * kernels::ExecutablePlan). Operand qubits are bounds-checked.
     * @throws SimulationError for non-unitary entries.
     */
    void applyKernel(const kernels::PlanEntry &entry);

    /**
     * Apply a (generally non-unitary) Kraus operator in place and
     * renormalise by its pre-computed Born weight ||K psi||^2 — the
     * trajectory backend's copy-free branch application.
     * @throws SimulationError if @p weight is (near-)zero.
     */
    void applyKrausBranch(const Matrix &k,
                          const std::vector<Qubit> &qubits,
                          double weight);

    /**
     * Measure one qubit in the computational basis; collapses the
     * state and returns the outcome (0 or 1).
     */
    int measure(Qubit q, Rng &rng);

    /**
     * Project qubit @p q onto @p outcome and renormalise.
     *
     * @return Probability of the selected branch.
     * @throws SimulationError if that branch has (near-)zero weight.
     */
    double postSelect(Qubit q, int outcome);

    /** Non-destructive P(qubit q == 1). */
    double probabilityOfOne(Qubit q) const;

    /**
     * Probability of every basis state (|a_i|^2). When @p total is
     * non-null it receives the deterministic block-folded sum of the
     * vector in the same pass (the fused reduction sampled execution
     * hands to AliasTable, saving the prefix re-scan).
     */
    std::vector<double> probabilities(double *total = nullptr) const;

    /**
     * Marginal distribution over @p qubits: entry b is the probability
     * that reading qubits[j] gives bit j of b.
     */
    std::vector<double> marginalProbabilities(
        const std::vector<Qubit> &qubits) const;

    /**
     * Sample a full-register outcome without collapsing the state.
     * Bit i of the result is the outcome of qubit i.
     */
    BasisIndex sample(Rng &rng) const;

    /** Reset one qubit to |0> (measure, then flip if it read 1). */
    void resetQubit(Qubit q, Rng &rng);

    /** <Z_q>: expectation of Pauli-Z on one qubit. */
    double expectationZ(Qubit q) const;

    /**
     * 2x2 reduced density matrix of one qubit (all others traced
     * out). Cheap: O(2^n), no full outer product.
     */
    Matrix reducedQubitDensity(Qubit q) const;

    /**
     * Purity of one qubit's reduced state; 1.0 means the qubit is
     * unentangled with the rest of the register.
     */
    double qubitPurity(Qubit q) const;

    /** |<this|other>|^2. */
    double fidelityWith(const StateVector &other) const;

    /** l2 norm (should always be ~1). */
    double norm() const;

  private:
    void checkQubit(Qubit q) const;

    std::size_t numQubits_;
    std::vector<Complex> amps_;
};

} // namespace qra

#endif // QRA_SIM_STATE_VECTOR_HH
