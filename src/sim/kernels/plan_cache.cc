#include "sim/kernels/plan_cache.hh"

#include <chrono>

#include "common/hash.hh"
#include "obs/metrics.hh"

namespace qra {
namespace kernels {

namespace {

thread_local PlanCache *tls_cache = nullptr;

/**
 * Global-registry mirrors of the per-instance Stats counters: the
 * instance accessors stay the per-cache source of truth (tests run
 * many caches per process), the registry aggregates across them.
 */
struct CacheMetrics
{
    obs::CounterHandle hits;
    obs::CounterHandle misses;
    obs::CounterHandle evictions;
};

const CacheMetrics &
cacheMetrics()
{
    static const CacheMetrics metrics = []() {
        obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
        CacheMetrics m;
        m.hits = reg.counter("plan_cache.hits");
        m.misses = reg.counter("plan_cache.misses");
        m.evictions = reg.counter("plan_cache.evictions");
        return m;
    }();
    return metrics;
}

std::uint64_t
planKey(const Circuit &circuit, int fusion)
{
    return fnv1aMix64(circuit.hash(),
                      static_cast<std::uint64_t>(fusion) + 1);
}

} // namespace

PlanCache *
currentPlanCache()
{
    return tls_cache;
}

PlanCacheScope::PlanCacheScope(PlanCache *cache) : saved_(tls_cache)
{
    tls_cache = cache;
}

PlanCacheScope::~PlanCacheScope()
{
    tls_cache = saved_;
}

template <typename T, typename BuildFn>
std::shared_ptr<const T>
PlanCache::lookup(Store<T> &store, std::uint64_t key, BuildFn &&build)
{
    auto &map = store.map;
    std::promise<std::shared_ptr<const T>> promise;
    bool owner = false;
    std::uint64_t my_id = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = map.find(key);
        if (it != map.end()) {
            // NEVER block on a still-building slot: the caller may be
            // a pool task that the builder's parallelFor help-loop
            // nested on top of the builder's own stack — waiting here
            // would deadlock the frame that must fulfil the promise.
            // A racing caller builds a private (bit-identical) copy
            // instead; only the completed artifact counts as a hit.
            if (it->second.future.wait_for(std::chrono::seconds(0)) ==
                std::future_status::ready) {
                ++stats_.hits;
                obs::count(cacheMetrics().hits);
                return it->second.future.get();
            }
            ++stats_.misses;
            obs::count(cacheMetrics().misses);
        } else {
            ++stats_.misses;
            obs::count(cacheMetrics().misses);
            my_id = ++nextId_;
            map.emplace(key,
                        typename Store<T>::Entry{
                            my_id, promise.get_future().share()});
            store.order.emplace_back(key, my_id);
            owner = true;
            // FIFO bound: a long-lived queue sweeping many noise
            // points must not grow without limit. Running shards keep
            // evicted artifacts alive via their own shared_ptr.
            while (map.size() > kMaxEntriesPerKind &&
                   !store.order.empty()) {
                const auto [victim, victim_id] = store.order.front();
                store.order.pop_front();
                const auto victim_it = map.find(victim);
                // Id mismatch = stale record (failed build or
                // re-inserted key); never evict the live successor.
                if (victim_it == map.end() ||
                    victim_it->second.id != victim_id)
                    continue;
                map.erase(victim_it);
                ++stats_.evictions;
                obs::count(cacheMetrics().evictions);
            }
        }
    }
    // A failure removes the key so later lookups retry instead of
    // replaying a possibly transient error forever.
    try {
        auto artifact = build();
        if (owner)
            promise.set_value(artifact);
        return artifact;
    } catch (...) {
        if (owner) {
            {
                std::lock_guard<std::mutex> lock(mutex_);
                // Erase only this thread's own entry: eviction may
                // have dropped it and a successor re-inserted the
                // key; that entry must survive. (The stale order
                // entry, either way, is skipped by future evictions.)
                const auto it = map.find(key);
                if (it != map.end() && it->second.id == my_id)
                    map.erase(it);
            }
            promise.set_exception(std::current_exception());
        }
        throw;
    }
}

std::shared_ptr<const ExecutablePlan>
PlanCache::plan(const Circuit &circuit, int fusion)
{
    if (fusion < 0)
        fusion = currentFusionLevel();
    return lookup(plans_, planKey(circuit, fusion), [&]() {
        return std::make_shared<const ExecutablePlan>(
            ExecutablePlan::compile(circuit, fusion));
    });
}

std::shared_ptr<const TrajectoryPlan>
PlanCache::trajectoryPlan(const Circuit &circuit,
                          const NoiseModel *noise, int fusion)
{
    if (fusion < 0)
        fusion = currentFusionLevel();
    std::uint64_t key = planKey(circuit, fusion);
    key = fnv1aMix64(key,
                     noise != nullptr ? noise->fingerprint() : 0);
    return lookup(trajectoryPlans_, key, [&]() {
        return std::make_shared<const TrajectoryPlan>(
            TrajectoryPlan::compile(circuit, noise, fusion));
    });
}

std::shared_ptr<const SampledDistribution>
PlanCache::sampledDistribution(
    const Circuit &circuit, int fusion,
    const std::function<std::shared_ptr<const SampledDistribution>()>
        &build)
{
    if (fusion < 0)
        fusion = currentFusionLevel();
    return lookup(sampled_, planKey(circuit, fusion), build);
}

PlanCache::Stats
PlanCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace kernels
} // namespace qra
