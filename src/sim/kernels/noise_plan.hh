/**
 * @file
 * TrajectoryPlan: a noisy circuit pre-lowered once per job into kernel
 * dispatch entries with interleaved noise hooks.
 *
 * The legacy trajectory path re-interpreted Operation structs every
 * shot: rebuilding gate matrices, looking channels up in the noise
 * model's maps, and re-deriving thermal-relaxation channels (matrix
 * exponentials) per moment — all loop-invariant work. Lowering hoists
 * it out of the shot loop:
 *
 *  - unitary segments between noise sites lower to classified kernel
 *    entries and fuse exactly like the ideal ExecutablePlan (noise
 *    sites and measurements fence fusion, so semantics are preserved);
 *  - every Kraus insertion becomes an explicit SampleKraus entry
 *    pointing at a pre-built Site. Sites whose operators are all
 *    *scaled unitaries* (depolarising channels: K_k = c_k U_k) carry
 *    fixed branch weights |c_k|^2 and pre-lowered branch kernels, so
 *    sampling costs one uniform draw and one in-place kernel — no
 *    per-branch state copies, no norm scans;
 *  - readout confusion is attached to Measure entries as a site index,
 *    and relaxation channels are pre-derived per scheduled moment.
 *
 * RNG draw order matches the legacy interpreter exactly (one uniform
 * per multi-branch site, one per measurement, one per imperfect
 * readout, one per surviving post-selection), so for a fixed seed the
 * unfused plan reproduces the legacy trajectory bit-for-bit.
 */

#ifndef QRA_SIM_KERNELS_NOISE_PLAN_HH
#define QRA_SIM_KERNELS_NOISE_PLAN_HH

#include <cstdint>
#include <vector>

#include "circuit/circuit.hh"
#include "math/matrix.hh"
#include "noise/noise_model.hh"
#include "noise/readout_error.hh"
#include "sim/kernels/plan.hh"

namespace qra {
namespace kernels {

/** One pre-built Kraus insertion point. */
struct KrausSite
{
    /**
     * True when every operator is a scaled unitary: the branch Born
     * weights are state-independent and the branches preserve the
     * norm, so sampling needs no state copies.
     */
    bool fixedWeights = false;

    /** Branch weights |c_k|^2 (fixedWeights only; sum ~1). */
    std::vector<double> weights;

    /**
     * Pre-lowered unitary branch kernels (fixedWeights only), one
     * entry list per branch: tensor-product branches (X⊗Z of a
     * two-qubit depolarising channel) lower to two cheap 1q kernels,
     * identity branches to an empty list.
     */
    std::vector<std::vector<PlanEntry>> branches;

    /** Raw Kraus operators (state-dependent path). */
    std::vector<Matrix> ops;

    /** Operand qubits (state-dependent path). */
    std::vector<Qubit> qubits;
};

/** A noisy circuit lowered to entries plus noise-site tables. */
class TrajectoryPlan
{
  public:
    /**
     * Lower @p circuit with @p noise interleaved (nullptr or disabled
     * = ideal). Fusion level as ExecutablePlan::compile; noise sites,
     * measurements and resets fence fusion. The instruction order is
     * the timed ASAP moment schedule — identical to what the legacy
     * interpreter executed.
     */
    static TrajectoryPlan compile(const Circuit &circuit,
                                  const NoiseModel *noise,
                                  int fusion = -1);

    const std::vector<PlanEntry> &entries() const { return entries_; }
    const KrausSite &site(std::int32_t i) const { return sites_[i]; }
    const ReadoutError &readout(std::int32_t i) const
    {
        return readouts_[i];
    }
    std::size_t numSites() const { return sites_.size(); }
    const PlanStats &stats() const { return stats_; }
    std::size_t numQubits() const { return numQubits_; }

  private:
    std::vector<PlanEntry> entries_;
    std::vector<KrausSite> sites_;
    std::vector<ReadoutError> readouts_;
    PlanStats stats_;
    std::size_t numQubits_ = 0;
};

} // namespace kernels
} // namespace qra

#endif // QRA_SIM_KERNELS_NOISE_PLAN_HH
