#include "sim/kernels/noise_plan.hh"

#include <cmath>

#include "circuit/schedule.hh"
#include "common/error.hh"
#include "noise/kraus.hh"

namespace qra {
namespace kernels {

namespace {

/** Scaled-unitary detection tolerance (channels are validated CPTP). */
constexpr double kScaledUnitaryTol = 1e-10;

/**
 * If @p k is a scaled unitary (K^dagger K = lambda I), return lambda;
 * otherwise a negative value.
 */
double
scaledUnitaryWeight(const Matrix &k)
{
    const Matrix gram = k.adjoint() * k;
    const Complex lambda = gram(0, 0);
    if (std::abs(lambda.imag()) > kScaledUnitaryTol ||
        lambda.real() <= 0.0)
        return -1.0;
    for (std::size_t r = 0; r < gram.rows(); ++r)
        for (std::size_t c = 0; c < gram.cols(); ++c) {
            const Complex want =
                r == c ? lambda : Complex{0.0, 0.0};
            if (std::abs(gram(r, c) - want) > kScaledUnitaryTol)
                return -1.0;
        }
    return lambda.real();
}

/**
 * Try to factor the 4x4 @p u (matrix bit 0 = first operand) as
 * A ⊗ B with A on bit 1 and B on bit 0. On success fills the
 * row-major 2x2 factors, balanced so B has unit Frobenius scale.
 */
bool
tensorSplit2q(const Matrix &u, Complex a[4], Complex b[4])
{
    // Realignment: R[2*r1+c1][2*r0+c0] = u(2*r1+r0, 2*c1+c0) is an
    // outer product exactly when u is a tensor product.
    Complex r_mat[4][4];
    for (int r1 = 0; r1 < 2; ++r1)
        for (int r0 = 0; r0 < 2; ++r0)
            for (int c1 = 0; c1 < 2; ++c1)
                for (int c0 = 0; c0 < 2; ++c0)
                    r_mat[2 * r1 + c1][2 * r0 + c0] =
                        u(2 * r1 + r0, 2 * c1 + c0);

    int pi = 0, pj = 0;
    double best = 0.0;
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            if (std::abs(r_mat[i][j]) > best) {
                best = std::abs(r_mat[i][j]);
                pi = i;
                pj = j;
            }
    if (best < 1e-12)
        return false;

    Complex av[4], bv[4];
    for (int i = 0; i < 4; ++i)
        av[i] = r_mat[i][pj];
    for (int j = 0; j < 4; ++j)
        bv[j] = r_mat[pi][j] / r_mat[pi][pj];
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            if (std::abs(r_mat[i][j] - av[i] * bv[j]) > 1e-10)
                return false;

    // Balance the factors: a unitary 2x2 has Frobenius norm sqrt(2).
    double norm_b = 0.0;
    for (int j = 0; j < 4; ++j)
        norm_b += std::norm(bv[j]);
    const double scale = std::sqrt(norm_b / 2.0);
    if (scale < 1e-12)
        return false;
    for (int i = 0; i < 4; ++i) {
        a[i] = av[i] * scale;
        b[i] = bv[i] / scale;
    }
    return true;
}

/** Lower a unitary matrix on @p qubits to classified entries. */
std::vector<PlanEntry>
lowerUnitaryMatrix(const Matrix &u, const std::vector<Qubit> &qubits)
{
    std::vector<PlanEntry> entries;
    auto push = [&](PlanEntry entry) {
        if (entry.kind != KernelKind::Identity)
            entries.push_back(std::move(entry));
    };
    if (qubits.size() == 1) {
        push(classify1q(qubits[0], u(0, 0), u(0, 1), u(1, 0),
                        u(1, 1)));
        return entries;
    }
    if (qubits.size() == 2) {
        // Tensor products (the nine genuine two-qubit Pauli branches
        // of a depolarising channel) split into two cheap 1q kernels.
        Complex a[4], b[4];
        if (tensorSplit2q(u, a, b)) {
            push(classify1q(qubits[0], b[0], b[1], b[2], b[3]));
            push(classify1q(qubits[1], a[0], a[1], a[2], a[3]));
            return entries;
        }
        Complex m[16];
        for (int r = 0; r < 4; ++r)
            for (int c = 0; c < 4; ++c)
                m[4 * r + c] = u(r, c);
        push(classify2q(qubits[0], qubits[1], m));
        return entries;
    }
    PlanEntry entry;
    entry.kind = KernelKind::GenericK;
    entry.qubits = qubits;
    entry.dense = u;
    entries.push_back(std::move(entry));
    return entries;
}

/** Build the Site for one applied channel. */
KrausSite
makeSite(const KrausChannel &channel, const std::vector<Qubit> &qubits)
{
    KrausSite site;
    site.qubits = qubits;

    const std::vector<Matrix> &ops = channel.operators();
    std::vector<double> weights;
    std::vector<std::vector<PlanEntry>> branches;
    weights.reserve(ops.size());
    branches.reserve(ops.size());
    bool all_scaled_unitary = true;
    for (const Matrix &k : ops) {
        const double lambda = scaledUnitaryWeight(k);
        if (lambda < 0.0) {
            all_scaled_unitary = false;
            break;
        }
        weights.push_back(lambda);
        branches.push_back(lowerUnitaryMatrix(
            k * Complex{1.0 / std::sqrt(lambda), 0.0}, qubits));
    }

    if (all_scaled_unitary) {
        site.fixedWeights = true;
        site.weights = std::move(weights);
        site.branches = std::move(branches);
    } else {
        site.ops = ops;
    }
    return site;
}

} // namespace

TrajectoryPlan
TrajectoryPlan::compile(const Circuit &circuit, const NoiseModel *noise,
                        int fusion)
{
    if (fusion < 0)
        fusion = currentFusionLevel();
    const bool noisy = noise != nullptr && noise->enabled();

    TrajectoryPlan plan;
    plan.numQubits_ = circuit.numQubits();
    Fusion1qBuffer buffer(circuit.numQubits());

    auto emit_site = [&](const KrausChannel &channel,
                         const std::vector<Qubit> &qubits) {
        if (channel.operators().size() == 1) {
            // Deterministic channel: the single operator is unitary
            // (CPTP), so it lowers to a plain entry with no RNG draw —
            // exactly what the legacy interpreter did.
            for (const Qubit q : qubits)
                buffer.flush(q, plan.entries_, plan.stats_);
            for (PlanEntry &entry :
                 lowerUnitaryMatrix(channel.operators()[0], qubits))
                plan.entries_.push_back(std::move(entry));
            return;
        }
        for (const Qubit q : qubits)
            buffer.flush(q, plan.entries_, plan.stats_);
        PlanEntry entry;
        entry.kind = KernelKind::SampleKraus;
        entry.site = static_cast<std::int32_t>(plan.sites_.size());
        plan.entries_.push_back(std::move(entry));
        plan.sites_.push_back(makeSite(channel, qubits));
    };

    // The schedule depends only on the circuit and noise model; the
    // legacy interpreter computed it once per run and the plan bakes
    // it in once per job.
    auto duration = [&](const Operation &op) {
        return noisy ? noise->opDuration(op) : 0.0;
    };
    const std::vector<TimedMoment> moments =
        computeTimedMoments(circuit, duration);

    // Barriers fence fusion here exactly as in the ideal plan, even
    // though the moment schedule drops them: every op carries its
    // program-order barrier epoch, and an epoch change in the moment
    // walk flushes the 1q buffer and closes the 2q fusion segment.
    std::vector<std::size_t> op_epoch(circuit.size(), 0);
    {
        std::size_t barriers = 0;
        for (std::size_t i = 0; i < circuit.size(); ++i) {
            op_epoch[i] = barriers;
            if (circuit.ops()[i].kind == OpKind::Barrier)
                ++barriers;
        }
    }
    std::size_t current_epoch = 0;
    std::size_t fence_start = 0;

    for (const TimedMoment &moment : moments) {
        for (const std::size_t idx : moment.opIndices) {
            const Operation &op = circuit.ops()[idx];
            ++plan.stats_.sourceOps;
            if (op_epoch[idx] != current_epoch) {
                buffer.flushAll(plan.entries_, plan.stats_);
                fuseSegmentTail(plan.entries_, fence_start, fusion,
                                plan.stats_);
                current_epoch = op_epoch[idx];
            }
            switch (op.kind) {
              case OpKind::Measure:
              {
                buffer.flush(op.qubits[0], plan.entries_, plan.stats_);
                PlanEntry entry = lowerOperation(op);
                if (noisy) {
                    const ReadoutError *ro =
                        noise->readoutFor(op.qubits[0]);
                    if (ro != nullptr) {
                        entry.site = static_cast<std::int32_t>(
                            plan.readouts_.size());
                        plan.readouts_.push_back(*ro);
                    }
                }
                plan.entries_.push_back(std::move(entry));
                continue;
              }
              case OpKind::Reset:
              case OpKind::PostSelect:
                buffer.flush(op.qubits[0], plan.entries_, plan.stats_);
                plan.entries_.push_back(lowerOperation(op));
                continue;
              case OpKind::I:
                continue;
              default:
                break;
            }

            // Unitary instruction. Gates that inject no noise fuse
            // like the ideal plan; noisy gates are fenced by their
            // channel sites.
            std::vector<NoiseModel::AppliedChannel> channels;
            if (noisy)
                channels = noise->channelsFor(op);
            if (channels.empty() && fusion >= kFusion1q &&
                buffer.absorb(op))
                continue;

            for (const Qubit q : op.qubits)
                buffer.flush(q, plan.entries_, plan.stats_);
            PlanEntry entry = lowerOperation(op);
            if (entry.kind != KernelKind::Identity)
                plan.entries_.push_back(std::move(entry));
            for (const auto &applied : channels)
                emit_site(applied.channel, applied.qubits);
        }

        if (noisy && moment.durationNs > 0.0) {
            for (Qubit q = 0; q < circuit.numQubits(); ++q) {
                if (auto relax =
                        noise->relaxationFor(q, moment.durationNs))
                    emit_site(*relax, {q});
            }
        }
    }
    buffer.flushAll(plan.entries_, plan.stats_);
    fuseSegmentTail(plan.entries_, fence_start, fusion, plan.stats_);
    plan.stats_.entries = plan.entries_.size();
    return plan;
}

} // namespace kernels
} // namespace qra
