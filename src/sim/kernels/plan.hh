/**
 * @file
 * ExecutablePlan: a circuit pre-lowered to kernel dispatch entries.
 *
 * Compiling once per job (instead of re-interpreting Operation
 * structs and re-building gate matrices per shot) buys two things:
 *  - adjacent single-qubit gates on the same target fuse into one
 *    2x2 matrix, then classify into the cheapest kernel (identity
 *    fusions vanish entirely, diagonal fusions skip the pair loop);
 *  - each entry carries its kernel class, so per-gate dispatch in the
 *    shot loop is a switch on an enum, not matrix construction.
 *
 * Non-unitary instructions (Measure / Reset / PostSelect) lower to
 * marker entries that the simulators interpret; Barrier acts as a
 * fusion fence and emits nothing.
 */

#ifndef QRA_SIM_KERNELS_PLAN_HH
#define QRA_SIM_KERNELS_PLAN_HH

#include <cstdint>
#include <vector>

#include "circuit/circuit.hh"
#include "math/matrix.hh"
#include "math/types.hh"

namespace qra {
namespace kernels {

/** Kernel class an entry dispatches to (see kernels.hh). */
enum class KernelKind : std::uint8_t
{
    Identity,      // no-op (fused away); never emitted by compile()
    Diagonal1q,    // q0; diag(m[0], m[3])
    AntiDiagonal1q,// q0; [[0 m[1]] [m[2] 0]]
    General1q,     // q0; m[0..3] row-major
    PauliX,        // q0
    ControlledX,   // control q0, target q1
    Controlled1q,  // control q0, target q1; m[0..3]
    PhaseOnMask,   // mask; phase
    SwapQubits,    // q0, q1
    Toffoli,       // controls q0 q1, target q2
    General2q,     // q0 (matrix bit 0), q1; dense 4x4
    GenericK,      // qubits; dense 2^k x 2^k
    Measure,       // q0 -> clbit
    ResetQ,        // q0
    PostSelectQ,   // q0 == postselectValue
};

/** One lowered instruction. */
struct PlanEntry
{
    KernelKind kind = KernelKind::Identity;
    Qubit q0 = 0, q1 = 0, q2 = 0;
    Clbit clbit = 0;
    int postselectValue = 0;
    /** Row-major 2x2 for the 1q kernel classes. */
    Complex m[4] = {};
    std::uint64_t mask = 0;
    Complex phase{1.0, 0.0};
    Matrix dense;
    std::vector<Qubit> qubits;

    /** True for entries the unitary kernels execute directly. */
    bool
    isUnitary() const
    {
        return kind != KernelKind::Measure &&
               kind != KernelKind::ResetQ &&
               kind != KernelKind::PostSelectQ;
    }
};

/**
 * Classify a 2x2 unitary on @p q into the cheapest kernel class
 * (Identity / Diagonal1q / AntiDiagonal1q / General1q). Structure is
 * detected within a few ULP (1e-15), so a fused product like H*H
 * collapses to Identity despite double rounding, while anything
 * meaningfully off-structure stays General1q.
 */
PlanEntry classify1q(Qubit q, Complex m00, Complex m01, Complex m10,
                     Complex m11);

/**
 * Lower a single operation to its kernel entry (no fusion). Used by
 * StateVector::applyUnitary for ad-hoc gate application.
 * @throws SimulationError for Barrier (nothing to execute).
 */
PlanEntry lowerOperation(const Operation &op);

/** Compile statistics, reported by the perf harness. */
struct PlanStats
{
    std::size_t sourceOps = 0;   // circuit instructions consumed
    std::size_t entries = 0;     // plan entries emitted
    std::size_t fusedGates = 0;  // 1q gates absorbed into a neighbour
};

/** A circuit lowered to kernel dispatch entries. */
class ExecutablePlan
{
  public:
    /**
     * Lower @p circuit; with @p fuse, runs of single-qubit gates on
     * one target collapse into a single classified 2x2 entry.
     */
    static ExecutablePlan compile(const Circuit &circuit,
                                  bool fuse = true);

    const std::vector<PlanEntry> &entries() const { return entries_; }
    const PlanStats &stats() const { return stats_; }
    std::size_t numQubits() const { return numQubits_; }

  private:
    std::vector<PlanEntry> entries_;
    PlanStats stats_;
    std::size_t numQubits_ = 0;
};

} // namespace kernels
} // namespace qra

#endif // QRA_SIM_KERNELS_PLAN_HH
