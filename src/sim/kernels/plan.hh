/**
 * @file
 * ExecutablePlan: a circuit pre-lowered to kernel dispatch entries.
 *
 * Compiling once per job (instead of re-interpreting Operation
 * structs and re-building gate matrices per shot) buys two things:
 *  - adjacent single-qubit gates on the same target fuse into one
 *    2x2 matrix, then classify into the cheapest kernel (identity
 *    fusions vanish entirely, diagonal fusions skip the pair loop);
 *  - each entry carries its kernel class, so per-gate dispatch in the
 *    shot loop is a switch on an enum, not matrix construction.
 *
 * Non-unitary instructions (Measure / Reset / PostSelect) lower to
 * marker entries that the simulators interpret; Barrier acts as a
 * fusion fence and emits nothing.
 *
 * Fusion is levelled:
 *  - level 0: no fusion, one entry per source instruction;
 *  - level 1: runs of single-qubit gates on one target collapse into
 *    one classified 2x2 entry (PR 2 behaviour);
 *  - level 2 (default): additionally, windows of entries confined to
 *    one qubit pair collapse into a single classified two-qubit entry
 *    when a cost model says the fused entry is cheaper than its parts
 *    (H-CX-H becomes one phase mask; CX-CX vanishes).
 */

#ifndef QRA_SIM_KERNELS_PLAN_HH
#define QRA_SIM_KERNELS_PLAN_HH

#include <cstdint>
#include <vector>

#include "circuit/circuit.hh"
#include "math/matrix.hh"
#include "math/types.hh"
#include "sim/kernels/traversal.hh"

namespace qra {
namespace kernels {

/** Kernel class an entry dispatches to (see kernels.hh). */
enum class KernelKind : std::uint8_t
{
    Identity,      // no-op (fused away); never emitted by compile()
    Diagonal1q,    // q0; diag(m[0], m[3])
    AntiDiagonal1q,// q0; [[0 m[1]] [m[2] 0]]
    General1q,     // q0; m[0..3] row-major
    PauliX,        // q0
    ControlledX,   // control q0, target q1
    Controlled1q,  // control q0, target q1; m[0..3]
    PhaseOnMask,   // mask; phase
    SwapQubits,    // q0, q1
    Toffoli,       // controls q0 q1, target q2
    General2q,     // q0 (matrix bit 0), q1; dense 4x4
    GenericK,      // qubits; dense 2^k x 2^k
    Measure,       // q0 -> clbit
    ResetQ,        // q0
    PostSelectQ,   // q0 == postselectValue
    SampleKraus,   // noise hook: sample one branch of site `site`
};

/** One lowered instruction. */
struct PlanEntry
{
    KernelKind kind = KernelKind::Identity;
    Qubit q0 = 0, q1 = 0, q2 = 0;
    Clbit clbit = 0;
    int postselectValue = 0;
    /** Row-major 2x2 for the 1q kernel classes. */
    Complex m[4] = {};
    std::uint64_t mask = 0;
    Complex phase{1.0, 0.0};
    Matrix dense;
    std::vector<Qubit> qubits;

    /**
     * Noise-site cross reference, used by trajectory plans only:
     * for SampleKraus, index into TrajectoryPlan::site(); for
     * Measure, index into TrajectoryPlan::readout() (-1 = perfect).
     */
    std::int32_t site = -1;

    /**
     * Traversal the pair kernels (General1q / AntiDiagonal1q /
     * Controlled1q / General2q) should walk the state with.
     * ExecutablePlan::compile pins Linear or Blocked per entry from
     * the operand strides, hoisting the decision out of the shot
     * loop; ad-hoc entries stay Auto and resolve at call time. The
     * choice never changes results (see traversal.hh).
     */
    Traversal traversal = Traversal::Auto;

    /** True for entries the unitary kernels execute directly. */
    bool
    isUnitary() const
    {
        return kind != KernelKind::Measure &&
               kind != KernelKind::ResetQ &&
               kind != KernelKind::PostSelectQ &&
               kind != KernelKind::SampleKraus;
    }
};

/**
 * Classify a 2x2 unitary on @p q into the cheapest kernel class
 * (Identity / Diagonal1q / AntiDiagonal1q / General1q). Structure is
 * detected within a few ULP (1e-15), so a fused product like H*H
 * collapses to Identity despite double rounding, while anything
 * meaningfully off-structure stays General1q.
 */
PlanEntry classify1q(Qubit q, Complex m00, Complex m01, Complex m10,
                     Complex m11);

/**
 * Classify a 4x4 unitary on the pair (@p q0, @p q1) — matrix bit 0 is
 * q0 — into the cheapest kernel class: Identity, PhaseOnMask (CZ-like
 * diagonal), a separable Diagonal1q, ControlledX / Controlled1q with
 * either qubit as control, SwapQubits, or General2q. @p m is row-major.
 */
PlanEntry classify2q(Qubit q0, Qubit q1, const Complex m[16]);

/**
 * Lower a single operation to its kernel entry (no fusion). Used by
 * StateVector::applyUnitary for ad-hoc gate application.
 * @throws SimulationError for Barrier (nothing to execute).
 */
PlanEntry lowerOperation(const Operation &op);

/**
 * Relative execution cost of one unitary entry, in units of "one pass
 * over the amplitude array". The two-qubit window fusion only replaces
 * a window when the fused entry is strictly cheaper than the sum of
 * its parts under this model.
 */
double entryCost(const PlanEntry &entry);

/** Fusion aggressiveness (see file comment). */
constexpr int kFusionNone = 0;
constexpr int kFusion1q = 1;
constexpr int kFusion2q = 2;
constexpr int kFusionDefault = kFusion2q;

/**
 * The calling thread's fusion level for plan compiles that do not
 * specify one (default kFusionDefault). The execution engine installs
 * its configured level around backend runs via FusionScope, which is
 * how `qra_run --fusion` reaches the simulators.
 */
int currentFusionLevel();

/** RAII guard installing a fusion level on the current thread. */
class FusionScope
{
  public:
    explicit FusionScope(int level);
    ~FusionScope();

    FusionScope(const FusionScope &) = delete;
    FusionScope &operator=(const FusionScope &) = delete;

  private:
    int saved_;
};

/** Compile statistics, reported by the perf harness. */
struct PlanStats
{
    std::size_t sourceOps = 0;   // circuit instructions consumed
    std::size_t entries = 0;     // plan entries emitted
    std::size_t fusedGates = 0;  // 1q gates absorbed into a neighbour
    std::size_t fused2qWindows = 0; // pair windows collapsed by pass 2
    std::size_t blockedEntries = 0; // entries pinned to Blocked
};

/**
 * Incremental single-qubit run fuser shared by the plan compilers
 * (ExecutablePlan and the noisy TrajectoryPlan): absorb() buffers 1q
 * unitaries into one pending 2x2 per qubit; flush() classifies the
 * product and emits it (identity runs vanish).
 */
class Fusion1qBuffer
{
  public:
    explicit Fusion1qBuffer(std::size_t num_qubits);

    /** Buffer @p op if it is a fusable 1q unitary on a valid qubit. */
    bool absorb(const Operation &op);

    void flush(Qubit q, std::vector<PlanEntry> &out, PlanStats &stats);
    void flushAll(std::vector<PlanEntry> &out, PlanStats &stats);

  private:
    struct Pending
    {
        bool active = false;
        Complex m[4];
        std::size_t gates = 0;
    };
    std::vector<Pending> pending_;
};

/**
 * Pass 2: collapse windows of consecutive unitary entries confined to
 * one qubit pair into a single classified two-qubit entry, when the
 * cost model says the fused entry is cheaper than the window it
 * replaces. Non-unitary entries (and SampleKraus noise hooks) fence
 * every window they touch, so trajectory plans fuse only within
 * noise-free segments.
 */
std::vector<PlanEntry> fuse2qWindows(std::vector<PlanEntry> entries,
                                     PlanStats &stats);

/**
 * Run fuse2qWindows over the tail [fence_start, end) of @p entries in
 * place (no-op below kFusion2q) and advance @p fence_start to the new
 * end. Both plan compilers call this at every fusion fence (barriers,
 * end of circuit), so their window fencing can never diverge.
 */
void fuseSegmentTail(std::vector<PlanEntry> &entries,
                     std::size_t &fence_start, int fusion,
                     PlanStats &stats);

/** A circuit lowered to kernel dispatch entries. */
class ExecutablePlan
{
  public:
    /**
     * Lower @p circuit at fusion level @p fusion (kFusionNone /
     * kFusion1q / kFusion2q; booleans from older callers map to
     * levels 0 and 1). Negative = the thread's currentFusionLevel().
     */
    static ExecutablePlan compile(const Circuit &circuit,
                                  int fusion = -1);

    const std::vector<PlanEntry> &entries() const { return entries_; }
    const PlanStats &stats() const { return stats_; }
    std::size_t numQubits() const { return numQubits_; }

  private:
    std::vector<PlanEntry> entries_;
    PlanStats stats_;
    std::size_t numQubits_ = 0;
};

} // namespace kernels
} // namespace qra

#endif // QRA_SIM_KERNELS_PLAN_HH
