/**
 * @file
 * Traversal policy for pair-structured amplitude loops.
 *
 * Every 1q/2q kernel walks a *compact* index space whose entries
 * expand to 2 (pair kernels) or 4 (two-qubit kernels) amplitudes.
 * When the expansion stride is small the walk is effectively
 * sequential and the linear split used since PR 2 is ideal. When the
 * stride exceeds cache reach (a high target qubit on a large state),
 * one compact chunk touches windows far apart in memory; the Blocked
 * variant processes the compact space in fixed power-of-two tiles
 * sized so that *all* of a tile's amplitude windows fit inside the
 * configured cache budget at once, and hands whole tiles to the lane
 * scheduler. Iteration order within a tile is unchanged and writes
 * are disjoint, so Linear and Blocked are bit-identical — the choice
 * is purely a locality/scheduling decision, which is why
 * ExecutablePlan lowering may pin it per entry ahead of the shot
 * loop.
 *
 * Configuration: the tile footprint defaults to 1 MiB (about half a
 * typical L2), is overridable at startup via the QRA_CACHE_BLOCK
 * environment variable (bytes, rounded down to a power of two) and at
 * runtime via setCacheBlockBytes() (tests force tiny budgets so the
 * blocked path triggers on small states).
 */

#ifndef QRA_SIM_KERNELS_TRAVERSAL_HH
#define QRA_SIM_KERNELS_TRAVERSAL_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "math/types.hh"
#include "sim/kernels/parallel.hh"

namespace qra {
namespace kernels {

/** How a pair-structured kernel walks its compact index space. */
enum class Traversal : std::uint8_t
{
    Auto = 0,  // decide from the stride at call time
    Linear,    // contiguous compact-range split (PR 2 behaviour)
    Blocked,   // cache-budget-sized tiles of the compact space
};

/** Printable name ("auto" / "linear" / "blocked"). */
const char *traversalName(Traversal traversal);

/**
 * Tile footprint budget in bytes (power of two). Selection, highest
 * wins: a thread-local CacheBlockScope (EngineOptions::cacheBlockBytes
 * installed per shard), then setCacheBlockBytes(), then the
 * QRA_CACHE_BLOCK environment variable, then the 1 MiB default.
 */
std::size_t cacheBlockBytes();

/**
 * Override the tile footprint (rounded down to a power of two,
 * minimum 4 KiB); 0 restores the default/environment value. Not
 * thread-safe against concurrently running kernels — call between
 * runs (tests, startup).
 */
void setCacheBlockBytes(std::size_t bytes);

/**
 * RAII thread-local tile-footprint override, mirroring TierScope:
 * the engine installs one per shard runner from
 * EngineOptions::cacheBlockBytes, so one plan's budget never leaks
 * into jobs sharing the pool. @p bytes 0 inherits the surrounding
 * selection; non-zero values round down to a power of two with a
 * 4 KiB floor.
 */
class CacheBlockScope
{
  public:
    explicit CacheBlockScope(std::size_t bytes);
    ~CacheBlockScope();

    CacheBlockScope(const CacheBlockScope &) = delete;
    CacheBlockScope &operator=(const CacheBlockScope &) = delete;

  private:
    std::size_t saved_;
};

/**
 * Resolve an Auto traversal for a kernel whose widest operand bit is
 * @p max_bit (single-bit mask) on an @p n-amplitude state: Blocked
 * when the pair stride alone exceeds the cache budget and the
 * compact space spans more than one tile, Linear otherwise.
 * Explicit Linear/Blocked requests pass through untouched.
 */
Traversal resolveTraversal(Traversal requested, std::uint64_t n,
                           std::uint64_t max_bit,
                           std::size_t resident_per_index);

/**
 * Run @p body(begin, end) over the compact range [0, count), where
 * each compact index expands to @p resident_per_index amplitudes.
 * Linear defers to parallelFor's grain split; Blocked walks
 * power-of-two tiles sized so a tile's amplitudes fit the cache
 * budget, each tile a scheduling unit. @p resolved must not be Auto
 * (see resolveTraversal). Bodies must touch disjoint elements per
 * compact index; both variants are then bit-identical.
 */
template <typename Body>
void
forEachCompact(std::uint64_t count, std::size_t resident_per_index,
               Traversal resolved, Body &&body)
{
    if (resolved != Traversal::Blocked) {
        parallelFor(count, std::forward<Body>(body));
        return;
    }
    const std::uint64_t tile = std::max<std::uint64_t>(
        std::uint64_t{1} << 10,
        cacheBlockBytes() / (resident_per_index * sizeof(Complex)));
    const std::uint64_t tiles = (count + tile - 1) / tile;
    parallelFor(tiles, /*grain=*/1,
                [&](std::uint64_t t0, std::uint64_t t1) {
                    for (std::uint64_t t = t0; t < t1; ++t)
                        body(t * tile,
                             std::min(count, (t + 1) * tile));
                });
}

} // namespace kernels
} // namespace qra

#endif // QRA_SIM_KERNELS_TRAVERSAL_HH
