#include "sim/kernels/plan.hh"

#include <cmath>
#include <optional>

#include "common/error.hh"

namespace qra {
namespace kernels {

namespace {

constexpr Complex kZero{0.0, 0.0};
constexpr Complex kOne{1.0, 0.0};

/**
 * Structure-detection tolerance: double rounding in fused products
 * (e.g. H*H) leaves residuals of a few ULP, far below any physical
 * amplitude. Entries this close to 0/1 are treated as structural.
 */
constexpr double kSnapTol = 1e-15;

bool
nearZero(Complex v)
{
    return std::abs(v.real()) <= kSnapTol &&
           std::abs(v.imag()) <= kSnapTol;
}

bool
nearOne(Complex v)
{
    return std::abs(v.real() - 1.0) <= kSnapTol &&
           std::abs(v.imag()) <= kSnapTol;
}

/** 2x2 matrix product a * b, row-major arrays. */
void
multiply2x2(const Complex a[4], const Complex b[4], Complex out[4])
{
    out[0] = a[0] * b[0] + a[1] * b[2];
    out[1] = a[0] * b[1] + a[1] * b[3];
    out[2] = a[2] * b[0] + a[3] * b[2];
    out[3] = a[2] * b[1] + a[3] * b[3];
}

/** Pending fused 1q matrix on one qubit. */
struct Pending
{
    Qubit q = 0;
    Complex m[4] = {kOne, kZero, kZero, kOne};
    std::size_t gates = 0; // source gates absorbed
};

} // namespace

PlanEntry
classify1q(Qubit q, Complex m00, Complex m01, Complex m10, Complex m11)
{
    PlanEntry entry;
    entry.q0 = q;
    entry.m[0] = m00;
    entry.m[1] = m01;
    entry.m[2] = m10;
    entry.m[3] = m11;
    if (nearZero(m01) && nearZero(m10)) {
        entry.kind = (nearOne(m00) && nearOne(m11))
                         ? KernelKind::Identity
                         : KernelKind::Diagonal1q;
        entry.m[3] = m11; // diag(m[0], m[3])
        return entry;
    }
    if (nearZero(m00) && nearZero(m11)) {
        entry.kind = (nearOne(m01) && nearOne(m10))
                         ? KernelKind::PauliX
                         : KernelKind::AntiDiagonal1q;
        return entry;
    }
    entry.kind = KernelKind::General1q;
    return entry;
}

namespace {

/**
 * Single-bit mask for a mask-kernel operand. Guarded here because the
 * shift happens before StateVector's numQubits check can run; a
 * wrapped shift would silently target the wrong qubit.
 */
std::uint64_t
qubitMask(Qubit q)
{
    if (q >= 64)
        throw IndexError("qubit index " + std::to_string(q) +
                         " out of range");
    return std::uint64_t{1} << q;
}

} // namespace

PlanEntry
lowerOperation(const Operation &op)
{
    PlanEntry entry;
    switch (op.kind) {
      case OpKind::Barrier:
        throw SimulationError("barrier has no kernel lowering");
      case OpKind::Measure:
        entry.kind = KernelKind::Measure;
        entry.q0 = op.qubits[0];
        if (op.clbit)
            entry.clbit = *op.clbit;
        return entry;
      case OpKind::Reset:
        entry.kind = KernelKind::ResetQ;
        entry.q0 = op.qubits[0];
        return entry;
      case OpKind::PostSelect:
        entry.kind = KernelKind::PostSelectQ;
        entry.q0 = op.qubits[0];
        entry.postselectValue = op.postselectValue;
        return entry;
      case OpKind::I:
        entry.kind = KernelKind::Identity;
        entry.q0 = op.qubits[0];
        return entry;
      case OpKind::X:
        entry.kind = KernelKind::PauliX;
        entry.q0 = op.qubits[0];
        return entry;
      case OpKind::Z:
        entry.kind = KernelKind::PhaseOnMask;
        entry.mask = qubitMask(op.qubits[0]);
        entry.phase = Complex{-1.0, 0.0};
        return entry;
      case OpKind::CX:
        entry.kind = KernelKind::ControlledX;
        entry.q0 = op.qubits[0];
        entry.q1 = op.qubits[1];
        return entry;
      case OpKind::CZ:
        entry.kind = KernelKind::PhaseOnMask;
        entry.mask = qubitMask(op.qubits[0]) | qubitMask(op.qubits[1]);
        entry.phase = Complex{-1.0, 0.0};
        return entry;
      case OpKind::Swap:
        entry.kind = KernelKind::SwapQubits;
        entry.q0 = op.qubits[0];
        entry.q1 = op.qubits[1];
        return entry;
      case OpKind::CCX:
        entry.kind = KernelKind::Toffoli;
        entry.q0 = op.qubits[0];
        entry.q1 = op.qubits[1];
        entry.q2 = op.qubits[2];
        return entry;
      case OpKind::CY:
      {
        entry.kind = KernelKind::Controlled1q;
        entry.q0 = op.qubits[0];
        entry.q1 = op.qubits[1];
        entry.m[0] = kZero;
        entry.m[1] = Complex{0.0, -1.0};
        entry.m[2] = Complex{0.0, 1.0};
        entry.m[3] = kZero;
        return entry;
      }
      default:
        break;
    }

    if (!opIsUnitary(op.kind))
        throw SimulationError(std::string("cannot lower '") +
                              opName(op.kind) + "' to a kernel");
    const Matrix u = op.matrix();
    if (op.qubits.size() == 1)
        return classify1q(op.qubits[0], u(0, 0), u(0, 1), u(1, 0),
                          u(1, 1));
    if (op.qubits.size() == 2) {
        entry.kind = KernelKind::General2q;
        entry.q0 = op.qubits[0];
        entry.q1 = op.qubits[1];
        entry.dense = u;
        return entry;
    }
    entry.kind = KernelKind::GenericK;
    entry.qubits = op.qubits;
    entry.dense = u;
    return entry;
}

ExecutablePlan
ExecutablePlan::compile(const Circuit &circuit, bool fuse)
{
    ExecutablePlan plan;
    plan.numQubits_ = circuit.numQubits();
    // One pending fused matrix per qubit; index = qubit.
    std::vector<std::optional<Pending>> pending(circuit.numQubits());

    auto flush = [&](Qubit q) {
        if (q >= pending.size() || !pending[q])
            return;
        const Pending &p = *pending[q];
        PlanEntry entry =
            classify1q(p.q, p.m[0], p.m[1], p.m[2], p.m[3]);
        if (entry.kind == KernelKind::Identity) {
            // The whole run cancelled (e.g. H H); emit nothing.
            plan.stats_.fusedGates += p.gates;
        } else {
            plan.stats_.fusedGates += p.gates - 1;
            plan.entries_.push_back(std::move(entry));
        }
        pending[q].reset();
    };
    auto flush_all = [&]() {
        for (Qubit q = 0; q < pending.size(); ++q)
            flush(q);
    };

    for (const Operation &op : circuit.ops()) {
        ++plan.stats_.sourceOps;
        if (op.kind == OpKind::Barrier) {
            // Fusion fence: respect the author's scheduling intent.
            flush_all();
            continue;
        }
        if (op.kind == OpKind::I)
            continue;

        const bool fusable_1q =
            fuse && opIsUnitary(op.kind) && op.qubits.size() == 1;
        if (fusable_1q) {
            const Qubit q = op.qubits[0];
            if (q < pending.size()) {
                if (!pending[q]) {
                    pending[q] = Pending{.q = q};
                    pending[q]->gates = 0;
                }
                const Matrix u = op.matrix();
                const Complex g[4] = {u(0, 0), u(0, 1), u(1, 0),
                                      u(1, 1)};
                Complex fusedm[4];
                multiply2x2(g, pending[q]->m, fusedm);
                for (int i = 0; i < 4; ++i)
                    pending[q]->m[i] = fusedm[i];
                ++pending[q]->gates;
                continue;
            }
        }

        // Any other instruction: flush pending work on its operands,
        // then emit the lowered entry.
        for (Qubit q : op.qubits)
            flush(q);
        PlanEntry entry = lowerOperation(op);
        if (entry.kind != KernelKind::Identity)
            plan.entries_.push_back(std::move(entry));
    }
    flush_all();
    plan.stats_.entries = plan.entries_.size();
    return plan;
}

} // namespace kernels
} // namespace qra
