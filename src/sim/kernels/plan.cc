#include "sim/kernels/plan.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <iterator>
#include <map>

#include "common/error.hh"
#include "sim/kernels/kernels.hh"

namespace qra {
namespace kernels {

namespace {

constexpr Complex kZero{0.0, 0.0};
constexpr Complex kOne{1.0, 0.0};

/**
 * Structure-detection tolerance: double rounding in fused products
 * (e.g. H*H) leaves residuals of a few ULP, far below any physical
 * amplitude. Entries this close to 0/1 are treated as structural.
 */
constexpr double kSnapTol = 1e-15;

bool
nearZero(Complex v)
{
    return std::abs(v.real()) <= kSnapTol &&
           std::abs(v.imag()) <= kSnapTol;
}

bool
nearOne(Complex v)
{
    return std::abs(v.real() - 1.0) <= kSnapTol &&
           std::abs(v.imag()) <= kSnapTol;
}

bool
nearEqual(Complex a, Complex b)
{
    return std::abs(a.real() - b.real()) <= kSnapTol &&
           std::abs(a.imag() - b.imag()) <= kSnapTol;
}

/** 2x2 matrix product a * b, row-major arrays. */
void
multiply2x2(const Complex a[4], const Complex b[4], Complex out[4])
{
    out[0] = a[0] * b[0] + a[1] * b[2];
    out[1] = a[0] * b[1] + a[1] * b[3];
    out[2] = a[2] * b[0] + a[3] * b[2];
    out[3] = a[2] * b[1] + a[3] * b[3];
}

thread_local int tls_fusion_level = kFusionDefault;

} // namespace

int
currentFusionLevel()
{
    return tls_fusion_level;
}

FusionScope::FusionScope(int level) : saved_(tls_fusion_level)
{
    tls_fusion_level = level;
}

FusionScope::~FusionScope()
{
    tls_fusion_level = saved_;
}

PlanEntry
classify1q(Qubit q, Complex m00, Complex m01, Complex m10, Complex m11)
{
    PlanEntry entry;
    entry.q0 = q;
    entry.m[0] = m00;
    entry.m[1] = m01;
    entry.m[2] = m10;
    entry.m[3] = m11;
    if (nearZero(m01) && nearZero(m10)) {
        entry.kind = (nearOne(m00) && nearOne(m11))
                         ? KernelKind::Identity
                         : KernelKind::Diagonal1q;
        entry.m[3] = m11; // diag(m[0], m[3])
        return entry;
    }
    if (nearZero(m00) && nearZero(m11)) {
        entry.kind = (nearOne(m01) && nearOne(m10))
                         ? KernelKind::PauliX
                         : KernelKind::AntiDiagonal1q;
        return entry;
    }
    entry.kind = KernelKind::General1q;
    return entry;
}

namespace {

/**
 * Single-bit mask for a mask-kernel operand. Guarded here because the
 * shift happens before StateVector's numQubits check can run; a
 * wrapped shift would silently target the wrong qubit.
 */
std::uint64_t
qubitMask(Qubit q)
{
    if (q >= 64)
        throw IndexError("qubit index " + std::to_string(q) +
                         " out of range");
    return std::uint64_t{1} << q;
}

/** Build a Controlled1q/ControlledX entry from the target 2x2. */
PlanEntry
makeControlled(Qubit control, Qubit target, Complex t00, Complex t01,
               Complex t10, Complex t11)
{
    PlanEntry entry;
    entry.q0 = control;
    entry.q1 = target;
    entry.m[0] = t00;
    entry.m[1] = t01;
    entry.m[2] = t10;
    entry.m[3] = t11;
    entry.kind = (nearZero(t00) && nearZero(t11) && nearOne(t01) &&
                  nearOne(t10))
                     ? KernelKind::ControlledX
                     : KernelKind::Controlled1q;
    return entry;
}

} // namespace

namespace {

/** Swap a Diagonal1q with unit d0 for the cheaper phase mask. */
PlanEntry
cheapen1q(PlanEntry entry)
{
    if (entry.kind == KernelKind::Diagonal1q && nearOne(entry.m[0])) {
        PlanEntry phase;
        phase.kind = KernelKind::PhaseOnMask;
        phase.mask = qubitMask(entry.q0);
        phase.phase = entry.m[3];
        return phase;
    }
    return entry;
}

} // namespace

PlanEntry
classify2q(Qubit q0, Qubit q1, const Complex m[16])
{
    // Index layout: basis state bit 0 = q0, bit 1 = q1; m is row-major
    // (m[4*row + col]).
    const std::uint64_t b0 = qubitMask(q0);
    const std::uint64_t b1 = qubitMask(q1);
    const auto sub = [&](int r, int c) { return m[4 * r + c]; };

    // Acts only on q0 (m = I ⊗ A): entries coupling different q1
    // values vanish and both q1 blocks agree.
    const bool only_q0 =
        nearZero(sub(0, 2)) && nearZero(sub(0, 3)) &&
        nearZero(sub(1, 2)) && nearZero(sub(1, 3)) &&
        nearZero(sub(2, 0)) && nearZero(sub(2, 1)) &&
        nearZero(sub(3, 0)) && nearZero(sub(3, 1)) &&
        nearEqual(sub(0, 0), sub(2, 2)) &&
        nearEqual(sub(0, 1), sub(2, 3)) &&
        nearEqual(sub(1, 0), sub(3, 2)) &&
        nearEqual(sub(1, 1), sub(3, 3));
    if (only_q0)
        return cheapen1q(classify1q(q0, sub(0, 0), sub(0, 1),
                                    sub(1, 0), sub(1, 1)));

    // Acts only on q1 (m = B ⊗ I).
    const bool only_q1 =
        nearZero(sub(0, 1)) && nearZero(sub(0, 3)) &&
        nearZero(sub(1, 0)) && nearZero(sub(1, 2)) &&
        nearZero(sub(2, 1)) && nearZero(sub(2, 3)) &&
        nearZero(sub(3, 0)) && nearZero(sub(3, 2)) &&
        nearEqual(sub(0, 0), sub(1, 1)) &&
        nearEqual(sub(0, 2), sub(1, 3)) &&
        nearEqual(sub(2, 0), sub(3, 1)) &&
        nearEqual(sub(2, 2), sub(3, 3));
    if (only_q1)
        return cheapen1q(classify1q(q1, sub(0, 0), sub(0, 2),
                                    sub(2, 0), sub(2, 2)));

    bool diagonal = true;
    for (int r = 0; r < 4 && diagonal; ++r)
        for (int c = 0; c < 4 && diagonal; ++c)
            if (r != c && !nearZero(m[4 * r + c]))
                diagonal = false;

    if (diagonal) {
        const Complex d0 = m[0], d1 = m[5], d2 = m[10], d3 = m[15];
        PlanEntry entry;
        if (nearOne(d0) && nearOne(d1) && nearOne(d2) && nearOne(d3)) {
            entry.kind = KernelKind::Identity;
            entry.q0 = q0;
            return entry;
        }
        if (nearOne(d0) && nearOne(d2) && nearEqual(d1, d3)) {
            // diag(1, p, 1, p): pure phase on q0 == 1.
            entry.kind = KernelKind::PhaseOnMask;
            entry.mask = b0;
            entry.phase = d1;
            return entry;
        }
        if (nearOne(d0) && nearOne(d1) && nearEqual(d2, d3)) {
            entry.kind = KernelKind::PhaseOnMask;
            entry.mask = b1;
            entry.phase = d2;
            return entry;
        }
        if (nearOne(d0) && nearOne(d1) && nearOne(d2)) {
            // diag(1, 1, 1, p): the CZ family.
            entry.kind = KernelKind::PhaseOnMask;
            entry.mask = b0 | b1;
            entry.phase = d3;
            return entry;
        }
        if (nearOne(d0) && nearOne(d2))
            return makeControlled(q0, q1, d1, kZero, kZero, d3);
        if (nearOne(d0) && nearOne(d1))
            return makeControlled(q1, q0, d2, kZero, kZero, d3);
        // General non-separable diagonal: no dedicated kernel; fall
        // through to the dense entry and let the cost model decide.
    } else {
        // Controlled on q0: identity on the q0 = 0 subspace {0, 2}.
        if (nearOne(m[0]) && nearOne(m[10]) && nearZero(m[2]) &&
            nearZero(m[8]) && nearZero(m[1]) && nearZero(m[3]) &&
            nearZero(m[9]) && nearZero(m[11]) && nearZero(m[4]) &&
            nearZero(m[6]) && nearZero(m[12]) && nearZero(m[14]))
            return makeControlled(q0, q1, m[5], m[7], m[13], m[15]);
        // Controlled on q1: identity on the q1 = 0 subspace {0, 1}.
        if (nearOne(m[0]) && nearOne(m[5]) && nearZero(m[1]) &&
            nearZero(m[4]) && nearZero(m[2]) && nearZero(m[3]) &&
            nearZero(m[6]) && nearZero(m[7]) && nearZero(m[8]) &&
            nearZero(m[9]) && nearZero(m[12]) && nearZero(m[13]))
            return makeControlled(q1, q0, m[10], m[11], m[14], m[15]);
        // Swap permutation: |01> <-> |10>.
        bool is_swap = nearOne(m[0]) && nearOne(m[9]) &&
                       nearOne(m[6]) && nearOne(m[15]);
        for (int r = 0; r < 4 && is_swap; ++r)
            for (int c = 0; c < 4 && is_swap; ++c) {
                const bool structural =
                    (r == 0 && c == 0) || (r == 2 && c == 1) ||
                    (r == 1 && c == 2) || (r == 3 && c == 3);
                if (!structural && !nearZero(m[4 * r + c]))
                    is_swap = false;
            }
        if (is_swap) {
            PlanEntry entry;
            entry.kind = KernelKind::SwapQubits;
            entry.q0 = q0;
            entry.q1 = q1;
            return entry;
        }
    }

    PlanEntry entry;
    entry.kind = KernelKind::General2q;
    entry.q0 = q0;
    entry.q1 = q1;
    entry.dense = Matrix::zeros(4, 4);
    for (int r = 0; r < 4; ++r)
        for (int c = 0; c < 4; ++c)
            entry.dense(r, c) = m[4 * r + c];
    return entry;
}

PlanEntry
lowerOperation(const Operation &op)
{
    PlanEntry entry;
    switch (op.kind) {
      case OpKind::Barrier:
        throw SimulationError("barrier has no kernel lowering");
      case OpKind::Measure:
        entry.kind = KernelKind::Measure;
        entry.q0 = op.qubits[0];
        if (op.clbit)
            entry.clbit = *op.clbit;
        return entry;
      case OpKind::Reset:
        entry.kind = KernelKind::ResetQ;
        entry.q0 = op.qubits[0];
        return entry;
      case OpKind::PostSelect:
        entry.kind = KernelKind::PostSelectQ;
        entry.q0 = op.qubits[0];
        entry.postselectValue = op.postselectValue;
        return entry;
      case OpKind::I:
        entry.kind = KernelKind::Identity;
        entry.q0 = op.qubits[0];
        return entry;
      case OpKind::X:
        entry.kind = KernelKind::PauliX;
        entry.q0 = op.qubits[0];
        return entry;
      case OpKind::Z:
        entry.kind = KernelKind::PhaseOnMask;
        entry.mask = qubitMask(op.qubits[0]);
        entry.phase = Complex{-1.0, 0.0};
        return entry;
      case OpKind::CX:
        entry.kind = KernelKind::ControlledX;
        entry.q0 = op.qubits[0];
        entry.q1 = op.qubits[1];
        return entry;
      case OpKind::CZ:
        entry.kind = KernelKind::PhaseOnMask;
        entry.mask = qubitMask(op.qubits[0]) | qubitMask(op.qubits[1]);
        entry.phase = Complex{-1.0, 0.0};
        return entry;
      case OpKind::Swap:
        entry.kind = KernelKind::SwapQubits;
        entry.q0 = op.qubits[0];
        entry.q1 = op.qubits[1];
        return entry;
      case OpKind::CCX:
        entry.kind = KernelKind::Toffoli;
        entry.q0 = op.qubits[0];
        entry.q1 = op.qubits[1];
        entry.q2 = op.qubits[2];
        return entry;
      case OpKind::CY:
      {
        entry.kind = KernelKind::Controlled1q;
        entry.q0 = op.qubits[0];
        entry.q1 = op.qubits[1];
        entry.m[0] = kZero;
        entry.m[1] = Complex{0.0, -1.0};
        entry.m[2] = Complex{0.0, 1.0};
        entry.m[3] = kZero;
        return entry;
      }
      default:
        break;
    }

    if (!opIsUnitary(op.kind))
        throw SimulationError(std::string("cannot lower '") +
                              opName(op.kind) + "' to a kernel");
    const Matrix u = op.matrix();
    if (op.qubits.size() == 1)
        return classify1q(op.qubits[0], u(0, 0), u(0, 1), u(1, 0),
                          u(1, 1));
    if (op.qubits.size() == 2) {
        entry.kind = KernelKind::General2q;
        entry.q0 = op.qubits[0];
        entry.q1 = op.qubits[1];
        entry.dense = u;
        return entry;
    }
    entry.kind = KernelKind::GenericK;
    entry.qubits = op.qubits;
    entry.dense = u;
    return entry;
}

double
entryCost(const PlanEntry &entry)
{
    // Units: one full pass over the amplitude array with one multiply
    // per element costs 1.0. Permutations count their moves; compact
    // subspaces count their fraction of the array.
    switch (entry.kind) {
      case KernelKind::Identity:
        return 0.0;
      case KernelKind::Diagonal1q:
      case KernelKind::PauliX:
        return 1.0;
      case KernelKind::AntiDiagonal1q:
        return 1.5;
      case KernelKind::General1q:
        return 2.0;
      case KernelKind::PhaseOnMask:
      {
        const int bits = std::popcount(entry.mask);
        return bits >= 6 ? 0.05 : 2.0 / static_cast<double>(2 << bits);
      }
      case KernelKind::ControlledX:
      case KernelKind::SwapQubits:
        return 0.5;
      case KernelKind::Controlled1q:
        return 1.0;
      case KernelKind::Toffoli:
        return 0.25;
      case KernelKind::General2q:
        return 4.0;
      case KernelKind::GenericK:
        return 2.0 * static_cast<double>(std::size_t{1}
                                         << entry.qubits.size());
      case KernelKind::Measure:
      case KernelKind::ResetQ:
      case KernelKind::PostSelectQ:
      case KernelKind::SampleKraus:
        break;
    }
    return 1e18; // non-unitary: never a fusion candidate
}

Fusion1qBuffer::Fusion1qBuffer(std::size_t num_qubits)
    : pending_(num_qubits)
{
}

bool
Fusion1qBuffer::absorb(const Operation &op)
{
    if (!opIsUnitary(op.kind) || op.qubits.size() != 1)
        return false;
    const Qubit q = op.qubits[0];
    if (q >= pending_.size())
        return false;
    Pending &p = pending_[q];
    if (!p.active) {
        p.active = true;
        p.m[0] = kOne;
        p.m[1] = kZero;
        p.m[2] = kZero;
        p.m[3] = kOne;
        p.gates = 0;
    }
    const Matrix u = op.matrix();
    const Complex g[4] = {u(0, 0), u(0, 1), u(1, 0), u(1, 1)};
    Complex fused[4];
    multiply2x2(g, p.m, fused);
    for (int i = 0; i < 4; ++i)
        p.m[i] = fused[i];
    ++p.gates;
    return true;
}

void
Fusion1qBuffer::flush(Qubit q, std::vector<PlanEntry> &out,
                      PlanStats &stats)
{
    if (q >= pending_.size() || !pending_[q].active)
        return;
    Pending &p = pending_[q];
    PlanEntry entry = classify1q(q, p.m[0], p.m[1], p.m[2], p.m[3]);
    if (entry.kind == KernelKind::Identity) {
        // The whole run cancelled (e.g. H H); emit nothing.
        stats.fusedGates += p.gates;
    } else {
        stats.fusedGates += p.gates - 1;
        out.push_back(std::move(entry));
    }
    p.active = false;
}

void
Fusion1qBuffer::flushAll(std::vector<PlanEntry> &out, PlanStats &stats)
{
    for (Qubit q = 0; q < pending_.size(); ++q)
        flush(q, out, stats);
}

namespace {

/** Operand qubits of a unitary entry (mask bits for PhaseOnMask). */
void
entryQubits(const PlanEntry &entry, std::vector<Qubit> &out)
{
    out.clear();
    switch (entry.kind) {
      case KernelKind::Diagonal1q:
      case KernelKind::AntiDiagonal1q:
      case KernelKind::General1q:
      case KernelKind::PauliX:
        out.push_back(entry.q0);
        return;
      case KernelKind::ControlledX:
      case KernelKind::Controlled1q:
      case KernelKind::SwapQubits:
      case KernelKind::General2q:
        out.push_back(entry.q0);
        out.push_back(entry.q1);
        return;
      case KernelKind::Toffoli:
        out.push_back(entry.q0);
        out.push_back(entry.q1);
        out.push_back(entry.q2);
        return;
      case KernelKind::PhaseOnMask:
        for (std::uint64_t rest = entry.mask; rest != 0;
             rest &= rest - 1)
            out.push_back(
                static_cast<Qubit>(std::countr_zero(rest)));
        return;
      case KernelKind::GenericK:
        out = entry.qubits;
        return;
      default:
        return;
    }
}

bool
isWindow1q(const PlanEntry &entry)
{
    switch (entry.kind) {
      case KernelKind::Diagonal1q:
      case KernelKind::AntiDiagonal1q:
      case KernelKind::General1q:
      case KernelKind::PauliX:
        return true;
      case KernelKind::PhaseOnMask:
        return std::popcount(entry.mask) == 1;
      default:
        return false;
    }
}

bool
isWindow2q(const PlanEntry &entry)
{
    switch (entry.kind) {
      case KernelKind::ControlledX:
      case KernelKind::Controlled1q:
      case KernelKind::SwapQubits:
      case KernelKind::General2q:
        return true;
      case KernelKind::PhaseOnMask:
        return std::popcount(entry.mask) == 2;
      default:
        return false;
    }
}

/**
 * Apply @p entry to a 4-amplitude pair subspace, with pair qubit
 * @p a mapped to local bit 0 and @p b to local bit 1. Reuses the
 * production kernels on the tiny array, so window accumulation is
 * exactly as correct as execution itself.
 */
void
applyEntryTo4(Complex amps[4], const PlanEntry &entry, Qubit a, Qubit b)
{
    const auto local = [&](Qubit q) -> Qubit { return q == a ? 0 : 1; };
    switch (entry.kind) {
      case KernelKind::Diagonal1q:
        applyDiagonal1q(amps, 4, local(entry.q0), entry.m[0],
                        entry.m[3]);
        return;
      case KernelKind::AntiDiagonal1q:
        applyAntiDiagonal1q(amps, 4, local(entry.q0), entry.m[1],
                            entry.m[2]);
        return;
      case KernelKind::General1q:
        applyGeneral1q(amps, 4, local(entry.q0), entry.m[0],
                       entry.m[1], entry.m[2], entry.m[3]);
        return;
      case KernelKind::PauliX:
        applyX(amps, 4, local(entry.q0));
        return;
      case KernelKind::PhaseOnMask:
      {
        const std::uint64_t lmask =
            ((entry.mask >> a) & 1) | (((entry.mask >> b) & 1) << 1);
        applyPhaseOnMask(amps, 4, lmask, entry.phase);
        return;
      }
      case KernelKind::ControlledX:
        applyCX(amps, 4, local(entry.q0), local(entry.q1));
        return;
      case KernelKind::Controlled1q:
        applyControlled1q(amps, 4, local(entry.q0), local(entry.q1),
                          entry.m[0], entry.m[1], entry.m[2],
                          entry.m[3]);
        return;
      case KernelKind::SwapQubits:
        applySwap(amps, 4, local(entry.q0), local(entry.q1));
        return;
      case KernelKind::General2q:
        applyGeneral2q(amps, 4, local(entry.q0), local(entry.q1),
                       entry.dense);
        return;
      default:
        throw SimulationError("entry kind has no pair-window action");
    }
}

/** An open fusion window over one qubit pair. */
struct PairWindow
{
    bool open = false;
    Qubit a = 0, b = 0; // a < b; a is matrix bit 0
    Complex m[16];      // accumulated product, row-major
    std::vector<PlanEntry> members;
    double cost = 0.0;

    void
    start(Qubit qa, Qubit qb)
    {
        open = true;
        a = qa;
        b = qb;
        for (int i = 0; i < 16; ++i)
            m[i] = (i % 5 == 0) ? kOne : kZero;
        members.clear();
        cost = 0.0;
    }

    void
    absorb(PlanEntry entry)
    {
        // Multiply the entry into each accumulated column: columns
        // are images of basis states, so applying the entry to them
        // left-composes it onto the window product.
        for (int c = 0; c < 4; ++c) {
            Complex column[4];
            for (int r = 0; r < 4; ++r)
                column[r] = m[4 * r + c];
            applyEntryTo4(column, entry, a, b);
            for (int r = 0; r < 4; ++r)
                m[4 * r + c] = column[r];
        }
        cost += entryCost(entry);
        members.push_back(std::move(entry));
    }
};

} // namespace

std::vector<PlanEntry>
fuse2qWindows(std::vector<PlanEntry> entries, PlanStats &stats)
{
    std::vector<PlanEntry> out;
    out.reserve(entries.size());

    PairWindow window;
    // Deferred single-qubit entries, each waiting to join a pair
    // window seeded by a later two-qubit entry on its qubit.
    std::map<Qubit, PlanEntry> held;

    auto flush_held = [&](Qubit q) {
        const auto it = held.find(q);
        if (it == held.end())
            return;
        out.push_back(std::move(it->second));
        held.erase(it);
    };
    auto flush_all_held = [&]() {
        for (auto &[q, entry] : held)
            out.push_back(std::move(entry));
        held.clear();
    };
    auto flush_window = [&]() {
        if (!window.open)
            return;
        window.open = false;
        if (window.members.size() < 2) {
            for (PlanEntry &entry : window.members)
                out.push_back(std::move(entry));
            return;
        }
        PlanEntry fused = classify2q(window.a, window.b, window.m);
        if (entryCost(fused) < window.cost) {
            ++stats.fused2qWindows;
            if (fused.kind != KernelKind::Identity)
                out.push_back(std::move(fused));
            return;
        }
        // Not worth it under the cost model: keep the originals.
        for (PlanEntry &entry : window.members)
            out.push_back(std::move(entry));
    };

    std::vector<Qubit> qs;
    for (PlanEntry &entry : entries) {
        if (entry.isUnitary() && isWindow2q(entry)) {
            entryQubits(entry, qs);
            const Qubit lo = std::min(qs[0], qs[1]);
            const Qubit hi = std::max(qs[0], qs[1]);
            if (!(window.open && window.a == lo && window.b == hi)) {
                flush_window();
                window.start(lo, hi);
                // Earlier 1q entries on the pair join at the front.
                for (const Qubit q : {lo, hi}) {
                    const auto it = held.find(q);
                    if (it != held.end()) {
                        window.absorb(std::move(it->second));
                        held.erase(it);
                    }
                }
            }
            window.absorb(std::move(entry));
            continue;
        }
        if (entry.isUnitary() && isWindow1q(entry)) {
            entryQubits(entry, qs);
            const Qubit q = qs[0];
            if (window.open && (q == window.a || q == window.b)) {
                window.absorb(std::move(entry));
                continue;
            }
            flush_held(q); // collisions are impossible after pass 1,
                           // but emit-then-hold keeps order anyway
            held.emplace(q, std::move(entry));
            continue;
        }
        if (entry.isUnitary()) {
            // Toffoli / GenericK / wide phase masks: fence whatever
            // they touch, pass through otherwise.
            entryQubits(entry, qs);
            bool touches_window = false;
            for (const Qubit q : qs) {
                flush_held(q);
                touches_window = touches_window ||
                                 (window.open &&
                                  (q == window.a || q == window.b));
            }
            if (touches_window)
                flush_window();
            out.push_back(std::move(entry));
            continue;
        }
        // Non-unitary (Measure / Reset / PostSelect / SampleKraus):
        // full fence — mid-circuit semantics must not move.
        flush_window();
        flush_all_held();
        out.push_back(std::move(entry));
    }
    flush_window();
    flush_all_held();
    return out;
}

void
fuseSegmentTail(std::vector<PlanEntry> &entries,
                std::size_t &fence_start, int fusion, PlanStats &stats)
{
    if (fusion < kFusion2q || fence_start >= entries.size()) {
        fence_start = entries.size();
        return;
    }
    std::vector<PlanEntry> segment(
        std::make_move_iterator(entries.begin() + fence_start),
        std::make_move_iterator(entries.end()));
    entries.resize(fence_start);
    segment = fuse2qWindows(std::move(segment), stats);
    for (PlanEntry &entry : segment)
        entries.push_back(std::move(entry));
    fence_start = entries.size();
}

ExecutablePlan
ExecutablePlan::compile(const Circuit &circuit, int fusion)
{
    if (fusion < 0)
        fusion = currentFusionLevel();
    ExecutablePlan plan;
    plan.numQubits_ = circuit.numQubits();
    Fusion1qBuffer buffer(circuit.numQubits());

    // Pass-2 windows must not cross barriers either; fuse the segment
    // accumulated since the previous fence whenever one closes.
    std::size_t fence_start = 0;

    for (const Operation &op : circuit.ops()) {
        ++plan.stats_.sourceOps;
        if (op.kind == OpKind::Barrier) {
            // Fusion fence: respect the author's scheduling intent.
            buffer.flushAll(plan.entries_, plan.stats_);
            fuseSegmentTail(plan.entries_, fence_start, fusion,
                            plan.stats_);
            continue;
        }
        if (op.kind == OpKind::I)
            continue;

        if (fusion >= kFusion1q && buffer.absorb(op))
            continue;

        // Any other instruction: flush pending work on its operands,
        // then emit the lowered entry.
        for (Qubit q : op.qubits)
            buffer.flush(q, plan.entries_, plan.stats_);
        PlanEntry entry = lowerOperation(op);
        if (entry.kind != KernelKind::Identity)
            plan.entries_.push_back(std::move(entry));
    }
    buffer.flushAll(plan.entries_, plan.stats_);
    fuseSegmentTail(plan.entries_, fence_start, fusion, plan.stats_);

    // Finalize pass: pin Linear/Blocked traversal per pair-kernel
    // entry now that the state size is known, hoisting the stride
    // decision out of the shot loop. Either choice is bit-identical;
    // this only decides scheduling (see traversal.hh). Uses the
    // cache-block budget at compile time — cached plans keep their
    // pinned choice, which is safe for the same reason.
    const std::uint64_t n = std::uint64_t{1} << plan.numQubits_;
    for (PlanEntry &entry : plan.entries_) {
        std::uint64_t max_bit = 0;
        std::size_t resident = 2;
        switch (entry.kind) {
          case KernelKind::General1q:
          case KernelKind::AntiDiagonal1q:
            max_bit = std::uint64_t{1} << entry.q0;
            break;
          case KernelKind::Controlled1q:
            max_bit = std::uint64_t{1}
                      << std::max(entry.q0, entry.q1);
            break;
          case KernelKind::General2q:
            max_bit = std::uint64_t{1}
                      << std::max(entry.q0, entry.q1);
            resident = 4;
            break;
          default:
            continue;
        }
        entry.traversal =
            resolveTraversal(Traversal::Auto, n, max_bit, resident);
        if (entry.traversal == Traversal::Blocked)
            ++plan.stats_.blockedEntries;
    }

    plan.stats_.entries = plan.entries_.size();
    return plan;
}

} // namespace kernels
} // namespace qra
