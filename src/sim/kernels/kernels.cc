#include "sim/kernels/kernels.hh"

#include <algorithm>
#include <array>

#include "common/error.hh"
#include "obs/metrics.hh"
#include "sim/kernels/parallel.hh"
#include "sim/kernels/simd/dispatch.hh"
#include "sim/kernels/traversal.hh"

namespace qra {
namespace kernels {

namespace {

/** Sort single-bit masks ascending (k is tiny, insertion sort). */
template <std::size_t K>
std::array<std::uint64_t, K>
sortedBits(const std::array<std::uint64_t, K> &bits)
{
    std::array<std::uint64_t, K> sorted = bits;
    std::sort(sorted.begin(), sorted.end());
    return sorted;
}

/** Which dispatch tier actually ran, for traces (obs counters). */
void
recordDispatch(simd::Tier tier)
{
    if (!obs::metricsEnabled())
        return;
    static const std::array<obs::CounterHandle, 4> handles = [] {
        auto &registry = obs::MetricsRegistry::global();
        return std::array<obs::CounterHandle, 4>{
            registry.counter("sim.kernels.dispatch.scalar"),
            registry.counter("sim.kernels.dispatch.portable"),
            registry.counter("sim.kernels.dispatch.avx2"),
            registry.counter("sim.kernels.dispatch.avx512"),
        };
    }();
    obs::count(handles[static_cast<int>(tier)]);
}

/** Which tier a reduction call resolved to (obs counters). */
void
recordReduce(simd::Tier tier)
{
    if (!obs::metricsEnabled())
        return;
    static const std::array<obs::CounterHandle, 4> handles = [] {
        auto &registry = obs::MetricsRegistry::global();
        return std::array<obs::CounterHandle, 4>{
            registry.counter("sim.kernels.reduce.scalar"),
            registry.counter("sim.kernels.reduce.portable"),
            registry.counter("sim.kernels.reduce.avx2"),
            registry.counter("sim.kernels.reduce.avx512"),
        };
    }();
    obs::count(handles[static_cast<int>(tier)]);
}

/** The canonical left-to-right lane fold (see kernels.hh). */
inline double
foldLanes(const double lanes[8])
{
    double total = lanes[0];
    for (int j = 1; j < 8; ++j)
        total += lanes[j];
    return total;
}

/** One reduce-table entry resolved for a whole reduction call. */
struct ReducePick
{
    const simd::ReduceTable *table = nullptr;
    simd::Tier tier = simd::Tier::Scalar;
};

/**
 * Resolve the widest tier whose @p probe (an empty-range entry call,
 * a pure geometry check) accepts, and record the obs counter. The
 * geometry is fixed for the whole call, so one probe decides every
 * block.
 */
template <typename Probe>
ReducePick
pickReduce(Probe &&probe)
{
    const simd::ReduceLadder ladder = simd::activeReduceLadder();
    ReducePick pick;
    for (int t = 0; t < ladder.count; ++t)
        if (probe(ladder.tables[t])) {
            pick.table = ladder.tables[t];
            pick.tier = ladder.tiers[t];
            break;
        }
    recordReduce(pick.tier);
    return pick;
}

} // namespace

void
applyGeneral1q(Complex *amps, std::uint64_t n, Qubit q, Complex m00,
               Complex m01, Complex m10, Complex m11,
               Traversal traversal)
{
    const std::uint64_t bit = std::uint64_t{1} << q;
    const Traversal resolved = resolveTraversal(traversal, n, bit, 2);
    const simd::Ladder ladder = simd::activeLadder();
    for (int t = 0; t < ladder.count; ++t)
        if (ladder.tables[t]->general1q(amps, n, q, m00, m01, m10, m11,
                                        resolved)) {
            recordDispatch(ladder.tiers[t]);
            return;
        }
    recordDispatch(simd::Tier::Scalar);
    const std::uint64_t low = bit - 1;
    forEachCompact(
        n >> 1, 2, resolved,
        [=](std::uint64_t begin, std::uint64_t end) {
            for (std::uint64_t h = begin; h < end; ++h) {
                const std::uint64_t i0 = ((h & ~low) << 1) | (h & low);
                const std::uint64_t i1 = i0 | bit;
                const Complex a0 = amps[i0];
                const Complex a1 = amps[i1];
                amps[i0] = m00 * a0 + m01 * a1;
                amps[i1] = m10 * a0 + m11 * a1;
            }
        });
}

void
applyDiagonal1q(Complex *amps, std::uint64_t n, Qubit q, Complex d0,
                Complex d1)
{
    const std::uint64_t bit = std::uint64_t{1} << q;
    const simd::Ladder ladder = simd::activeLadder();
    for (int t = 0; t < ladder.count; ++t)
        if (ladder.tables[t]->diagonal1q(amps, n, q, d0, d1)) {
            recordDispatch(ladder.tiers[t]);
            return;
        }
    recordDispatch(simd::Tier::Scalar);
    parallelFor(n, [=](std::uint64_t begin, std::uint64_t end) {
        for (std::uint64_t i = begin; i < end; ++i)
            amps[i] *= (i & bit) ? d1 : d0;
    });
}

void
applyAntiDiagonal1q(Complex *amps, std::uint64_t n, Qubit q, Complex a01,
                    Complex a10, Traversal traversal)
{
    const std::uint64_t bit = std::uint64_t{1} << q;
    const Traversal resolved = resolveTraversal(traversal, n, bit, 2);
    const simd::Ladder ladder = simd::activeLadder();
    for (int t = 0; t < ladder.count; ++t)
        if (ladder.tables[t]->antidiagonal1q(amps, n, q, a01, a10,
                                             resolved)) {
            recordDispatch(ladder.tiers[t]);
            return;
        }
    recordDispatch(simd::Tier::Scalar);
    const std::uint64_t low = bit - 1;
    forEachCompact(
        n >> 1, 2, resolved,
        [=](std::uint64_t begin, std::uint64_t end) {
            for (std::uint64_t h = begin; h < end; ++h) {
                const std::uint64_t i0 = ((h & ~low) << 1) | (h & low);
                const std::uint64_t i1 = i0 | bit;
                const Complex a0 = amps[i0];
                amps[i0] = a01 * amps[i1];
                amps[i1] = a10 * a0;
            }
        });
}

void
applyX(Complex *amps, std::uint64_t n, Qubit q)
{
    const std::uint64_t bit = std::uint64_t{1} << q;
    const std::uint64_t low = bit - 1;
    parallelFor(n >> 1, [=](std::uint64_t begin, std::uint64_t end) {
        for (std::uint64_t h = begin; h < end; ++h) {
            const std::uint64_t i0 = ((h & ~low) << 1) | (h & low);
            std::swap(amps[i0], amps[i0 | bit]);
        }
    });
}

void
applyCX(Complex *amps, std::uint64_t n, Qubit control, Qubit target)
{
    const std::uint64_t cbit = std::uint64_t{1} << control;
    const std::uint64_t tbit = std::uint64_t{1} << target;
    const auto bits = sortedBits<2>({cbit, tbit});
    parallelFor(n >> 2, [=](std::uint64_t begin, std::uint64_t end) {
        for (std::uint64_t h = begin; h < end; ++h) {
            const std::uint64_t i0 =
                expandIndex(h, bits.data(), 2) | cbit;
            std::swap(amps[i0], amps[i0 | tbit]);
        }
    });
}

void
applyCCX(Complex *amps, std::uint64_t n, Qubit control0, Qubit control1,
         Qubit target)
{
    const std::uint64_t c0 = std::uint64_t{1} << control0;
    const std::uint64_t c1 = std::uint64_t{1} << control1;
    const std::uint64_t tbit = std::uint64_t{1} << target;
    const auto bits = sortedBits<3>({c0, c1, tbit});
    parallelFor(n >> 3, [=](std::uint64_t begin, std::uint64_t end) {
        for (std::uint64_t h = begin; h < end; ++h) {
            const std::uint64_t i0 =
                expandIndex(h, bits.data(), 3) | c0 | c1;
            std::swap(amps[i0], amps[i0 | tbit]);
        }
    });
}

void
applySwap(Complex *amps, std::uint64_t n, Qubit q0, Qubit q1)
{
    const std::uint64_t b0 = std::uint64_t{1} << q0;
    const std::uint64_t b1 = std::uint64_t{1} << q1;
    const auto bits = sortedBits<2>({b0, b1});
    parallelFor(n >> 2, [=](std::uint64_t begin, std::uint64_t end) {
        for (std::uint64_t h = begin; h < end; ++h) {
            const std::uint64_t base = expandIndex(h, bits.data(), 2);
            std::swap(amps[base | b0], amps[base | b1]);
        }
    });
}

void
applyPhaseOnMask(Complex *amps, std::uint64_t n, std::uint64_t mask,
                 Complex phase)
{
    const simd::Ladder ladder = simd::activeLadder();
    for (int t = 0; t < ladder.count; ++t)
        if (ladder.tables[t]->phaseOnMask(amps, n, mask, phase)) {
            recordDispatch(ladder.tiers[t]);
            return;
        }
    recordDispatch(simd::Tier::Scalar);
    // Iterate only the subspace where every mask bit is set.
    std::array<std::uint64_t, 64> bits{};
    std::size_t k = 0;
    for (std::uint64_t rest = mask; rest != 0; rest &= rest - 1)
        bits[k++] = rest & ~(rest - 1);
    const std::uint64_t *bits_data = bits.data();
    parallelFor(n >> k, [=](std::uint64_t begin, std::uint64_t end) {
        for (std::uint64_t h = begin; h < end; ++h)
            amps[expandIndex(h, bits_data, k) | mask] *= phase;
    });
}

void
applyControlled1q(Complex *amps, std::uint64_t n, Qubit control,
                  Qubit target, Complex m00, Complex m01, Complex m10,
                  Complex m11, Traversal traversal)
{
    const std::uint64_t cbit = std::uint64_t{1} << control;
    const std::uint64_t tbit = std::uint64_t{1} << target;
    const Traversal resolved =
        resolveTraversal(traversal, n, cbit > tbit ? cbit : tbit, 2);
    const simd::Ladder ladder = simd::activeLadder();
    for (int t = 0; t < ladder.count; ++t)
        if (ladder.tables[t]->controlled1q(amps, n, control, target,
                                           m00, m01, m10, m11,
                                           resolved)) {
            recordDispatch(ladder.tiers[t]);
            return;
        }
    recordDispatch(simd::Tier::Scalar);
    const auto bits = sortedBits<2>({cbit, tbit});
    forEachCompact(
        n >> 2, 2, resolved,
        [=](std::uint64_t begin, std::uint64_t end) {
            for (std::uint64_t h = begin; h < end; ++h) {
                const std::uint64_t i0 =
                    expandIndex(h, bits.data(), 2) | cbit;
                const std::uint64_t i1 = i0 | tbit;
                const Complex a0 = amps[i0];
                const Complex a1 = amps[i1];
                amps[i0] = m00 * a0 + m01 * a1;
                amps[i1] = m10 * a0 + m11 * a1;
            }
        });
}

void
applyGeneral2q(Complex *amps, std::uint64_t n, Qubit q0, Qubit q1,
               const Matrix &u, Traversal traversal)
{
    QRA_ASSERT(u.rows() == 4 && u.cols() == 4,
               "two-qubit kernel requires a 4x4 matrix");
    const std::uint64_t b0 = std::uint64_t{1} << q0;
    const std::uint64_t b1 = std::uint64_t{1} << q1;
    const Traversal resolved =
        resolveTraversal(traversal, n, b0 > b1 ? b0 : b1, 4);
    std::array<Complex, 16> m;
    for (std::size_t r = 0; r < 4; ++r)
        for (std::size_t c = 0; c < 4; ++c)
            m[4 * r + c] = u(r, c);
    const simd::Ladder ladder = simd::activeLadder();
    for (int t = 0; t < ladder.count; ++t)
        if (ladder.tables[t]->general2q(amps, n, q0, q1, m.data(),
                                        resolved)) {
            recordDispatch(ladder.tiers[t]);
            return;
        }
    recordDispatch(simd::Tier::Scalar);
    const auto bits = sortedBits<2>({b0, b1});
    forEachCompact(
        n >> 2, 4, resolved,
        [=](std::uint64_t begin, std::uint64_t end) {
            for (std::uint64_t h = begin; h < end; ++h) {
                const std::uint64_t base =
                    expandIndex(h, bits.data(), 2);
                const std::uint64_t i1 = base | b0;
                const std::uint64_t i2 = base | b1;
                const std::uint64_t i3 = base | b0 | b1;
                const Complex a0 = amps[base];
                const Complex a1 = amps[i1];
                const Complex a2 = amps[i2];
                const Complex a3 = amps[i3];
                amps[base] =
                    m[0] * a0 + m[1] * a1 + m[2] * a2 + m[3] * a3;
                amps[i1] =
                    m[4] * a0 + m[5] * a1 + m[6] * a2 + m[7] * a3;
                amps[i2] =
                    m[8] * a0 + m[9] * a1 + m[10] * a2 + m[11] * a3;
                amps[i3] =
                    m[12] * a0 + m[13] * a1 + m[14] * a2 + m[15] * a3;
            }
        });
}

void
applyGenericK(Complex *amps, std::uint64_t n, const Matrix &u,
              const std::vector<Qubit> &qubits)
{
    const std::size_t k = qubits.size();
    const std::size_t block = std::size_t{1} << k;
    QRA_ASSERT(u.rows() == block && u.cols() == block,
               "matrix size does not match operand count");

    std::vector<std::uint64_t> bits(k);
    for (std::size_t j = 0; j < k; ++j)
        bits[j] = std::uint64_t{1} << qubits[j];
    std::vector<std::uint64_t> insert_order = bits;
    std::sort(insert_order.begin(), insert_order.end());

    std::vector<std::uint64_t> offsets(block, 0);
    for (std::size_t local = 0; local < block; ++local)
        for (std::size_t j = 0; j < k; ++j)
            if ((local >> j) & 1)
                offsets[local] |= bits[j];

    const std::uint64_t bases = n >> k;
    parallelFor(
        bases, std::max<std::uint64_t>(1, kParallelGrain >> k),
        [&](std::uint64_t begin, std::uint64_t end) {
            std::vector<Complex> in(block), out(block);
            for (std::uint64_t b = begin; b < end; ++b) {
                const std::uint64_t base =
                    expandIndex(b, insert_order.data(), k);
                for (std::size_t local = 0; local < block; ++local)
                    in[local] = amps[base | offsets[local]];
                for (std::size_t r = 0; r < block; ++r) {
                    Complex acc{0.0, 0.0};
                    for (std::size_t c = 0; c < block; ++c)
                        acc += u(r, c) * in[c];
                    out[r] = acc;
                }
                for (std::size_t local = 0; local < block; ++local)
                    amps[base | offsets[local]] = out[local];
            }
        });
}

void
applyMatrix(std::vector<Complex> &amps, const Matrix &u,
            const std::vector<Qubit> &qubits)
{
    const std::size_t k = qubits.size();
    const std::size_t block = std::size_t{1} << k;
    QRA_ASSERT(u.rows() == block && u.cols() == block,
               "matrix size does not match operand count");
    if (k == 1) {
        if (u.isDiagonal(0.0))
            applyDiagonal1q(amps.data(), amps.size(), qubits[0],
                            u(0, 0), u(1, 1));
        else
            applyGeneral1q(amps.data(), amps.size(), qubits[0],
                           u(0, 0), u(0, 1), u(1, 0), u(1, 1));
        return;
    }
    if (k == 2) {
        applyGeneral2q(amps.data(), amps.size(), qubits[0], qubits[1],
                       u);
        return;
    }
    applyGenericK(amps.data(), amps.size(), u, qubits);
}

double
normSquaredOnMask(const Complex *amps, std::uint64_t n,
                  std::uint64_t mask, std::uint64_t match)
{
    QRA_ASSERT((match & ~mask) == 0,
               "normSquaredOnMask match must be a subset of mask");
    // Iterate the compact space with the mask bits stripped; each
    // compact index expands back with the match bits set, so only
    // matching amplitudes are ever read (no data-dependent branch).
    std::array<std::uint64_t, 64> bits{};
    std::size_t k = 0;
    for (std::uint64_t rest = mask; rest != 0; rest &= rest - 1)
        bits[k++] = rest & ~(rest - 1);
    const std::uint64_t *bits_data = bits.data();
    const ReducePick pick =
        pickReduce([=](const simd::ReduceTable *table) {
            return table->normSqLanes(amps, 0, 0, bits_data, k, match,
                                      nullptr);
        });
    return deterministicSum(
        n >> k, [=](std::uint64_t begin, std::uint64_t end) {
            double lanes[8] = {0.0};
            if (pick.table == nullptr ||
                !pick.table->normSqLanes(amps, begin, end, bits_data,
                                         k, match, lanes)) {
                for (std::uint64_t h = begin; h < end; ++h) {
                    const std::uint64_t i =
                        expandIndex(h, bits_data, k) | match;
                    const double re = amps[i].real();
                    const double im = amps[i].imag();
                    lanes[2 * (h & 3)] += re * re;
                    lanes[2 * (h & 3) + 1] += im * im;
                }
            }
            return foldLanes(lanes);
        });
}

void
collapseQubit(Complex *amps, std::uint64_t n, Qubit q, int outcome,
              double scale)
{
    const std::uint64_t bit = std::uint64_t{1} << q;
    const std::uint64_t keep = outcome ? bit : 0;
    parallelFor(n, [=](std::uint64_t begin, std::uint64_t end) {
        for (std::uint64_t i = begin; i < end; ++i)
            amps[i] = (i & bit) == keep ? amps[i] * scale
                                        : Complex{0.0, 0.0};
    });
}

double
computeProbabilities(const Complex *amps, std::uint64_t n, double *probs)
{
    const ReducePick pick =
        pickReduce([=](const simd::ReduceTable *table) {
            return table->probLanes(amps, probs, 0, 0, nullptr);
        });
    return deterministicSum(
        n, [=](std::uint64_t begin, std::uint64_t end) {
            double lanes[8] = {0.0};
            if (pick.table == nullptr ||
                !pick.table->probLanes(amps, probs, begin, end,
                                       lanes)) {
                for (std::uint64_t i = begin; i < end; ++i) {
                    const double re = amps[i].real();
                    const double im = amps[i].imag();
                    // Accumulate the stored pair sum (plain
                    // lanes[j & 7] rule) so the fused total is
                    // exactly sumWeights(probs, n).
                    const double p = re * re + im * im;
                    probs[i] = p;
                    lanes[i & 7] += p;
                }
            }
            return foldLanes(lanes);
        });
}

double
sumWeights(const double *w, std::uint64_t n)
{
    const ReducePick pick =
        pickReduce([=](const simd::ReduceTable *table) {
            return table->sumLanes(w, 0, 0, nullptr);
        });
    return deterministicSum(
        n, [=](std::uint64_t begin, std::uint64_t end) {
            double lanes[8] = {0.0};
            if (pick.table == nullptr ||
                !pick.table->sumLanes(w, begin, end, lanes)) {
                for (std::uint64_t j = begin; j < end; ++j)
                    lanes[j & 7] += w[j];
            }
            return foldLanes(lanes);
        });
}

void
scaleAll(Complex *amps, std::uint64_t n, double scale)
{
    parallelFor(n, [=](std::uint64_t begin, std::uint64_t end) {
        for (std::uint64_t i = begin; i < end; ++i)
            amps[i] *= scale;
    });
}

namespace {

/**
 * Marginal scatter over one range (reference path). The vector tiers
 * fill a per-element norms strip first (each |amp|^2 bit-identical
 * to std::norm: one rounding per square, one per add), then the
 * scatter reads the strip in the same index order — so the histogram
 * is bit-identical to the inline-norm scan by construction. @p begin
 * must be 4-aligned when @p strip is non-null (block starts are).
 */
void
marginalScatter(const Complex *amps, std::uint64_t begin,
                std::uint64_t end, const std::uint64_t *bits,
                std::size_t k, double *histogram,
                const simd::ReduceTable *table, double *strip)
{
    const bool vectored =
        table != nullptr && strip != nullptr &&
        table->norms(amps, begin, end, strip);
    for (std::uint64_t i = begin; i < end; ++i) {
        std::uint64_t key = 0;
        for (std::size_t j = 0; j < k; ++j)
            key |= ((i & bits[j]) != 0 ? std::uint64_t{1} : 0) << j;
        histogram[key] +=
            vectored ? strip[i - begin] : std::norm(amps[i]);
    }
}

} // namespace

std::vector<double>
marginalProbabilities(const Complex *amps, std::uint64_t n,
                      const std::vector<Qubit> &qubits)
{
    const std::size_t k = qubits.size();
    const std::uint64_t dim = std::uint64_t{1} << k;
    std::vector<std::uint64_t> bits(k);
    for (std::size_t j = 0; j < k; ++j)
        bits[j] = std::uint64_t{1} << qubits[j];

    const ReducePick pick =
        pickReduce([=](const simd::ReduceTable *table) {
            return table->norms(amps, 0, 0, nullptr);
        });

    std::vector<double> marginal(dim, 0.0);
    const std::uint64_t blocks = (n + kReduceBlock - 1) / kReduceBlock;
    // Scratch budget: 32 MiB of partial histograms. Wider marginals
    // (close to the full register) fall back to the serial scatter;
    // assertion-ancilla marginals are far below the cap.
    constexpr std::uint64_t kScratchDoubles = std::uint64_t{1} << 22;
    if (blocks <= 1 || blocks * dim > kScratchDoubles) {
        // Serial scan in kReduceBlock strips so the vector tier still
        // covers it (one strip of norms, then the ordered scatter).
        std::vector<double> strip(
            std::min<std::uint64_t>(n, kReduceBlock));
        for (std::uint64_t begin = 0; begin < n;
             begin += kReduceBlock)
            marginalScatter(amps, begin,
                            std::min(n, begin + kReduceBlock),
                            bits.data(), k, marginal.data(),
                            pick.table, strip.data());
        return marginal;
    }

    std::vector<double> partials(blocks * dim, 0.0);
    double *partials_data = partials.data();
    const std::uint64_t *bits_data = bits.data();
    const simd::ReduceTable *table = pick.table;
    parallelFor(blocks, /*grain=*/1,
                [=](std::uint64_t b0, std::uint64_t b1) {
                    std::vector<double> strip(kReduceBlock);
                    for (std::uint64_t b = b0; b < b1; ++b) {
                        const std::uint64_t begin = b * kReduceBlock;
                        const std::uint64_t end =
                            std::min(n, begin + kReduceBlock);
                        marginalScatter(amps, begin, end, bits_data, k,
                                        partials_data + b * dim, table,
                                        strip.data());
                    }
                });

    // Merge in block order: fixed blocks, fixed order, so rounding is
    // identical at every lane count.
    for (std::uint64_t b = 0; b < blocks; ++b)
        for (std::uint64_t j = 0; j < dim; ++j)
            marginal[j] += partials[b * dim + j];
    return marginal;
}

double
branchWeight1q(const Complex *amps, std::uint64_t n, Qubit q,
               const Complex m[4])
{
    const std::uint64_t bit = std::uint64_t{1} << q;
    const std::uint64_t low = bit - 1;
    const Complex m00 = m[0], m01 = m[1], m10 = m[2], m11 = m[3];
    return deterministicSum(
        n >> 1, [=](std::uint64_t begin, std::uint64_t end) {
            double partial = 0.0;
            for (std::uint64_t h = begin; h < end; ++h) {
                const std::uint64_t i0 = ((h & ~low) << 1) | (h & low);
                const std::uint64_t i1 = i0 | bit;
                const Complex a0 = amps[i0];
                const Complex a1 = amps[i1];
                partial += std::norm(m00 * a0 + m01 * a1) +
                           std::norm(m10 * a0 + m11 * a1);
            }
            return partial;
        });
}

} // namespace kernels
} // namespace qra
