/**
 * @file
 * Cache-blocked, branch-free gate kernels over a 2^n amplitude array.
 *
 * Replaces the old single-function sim/kernel.hh. Each specialization
 * iterates the *compact* index space of its gate class (half-space for
 * one-qubit gates, quarter-space for controlled gates, ...) with the
 * target/control bits re-inserted arithmetically, so the inner loops
 * have no data-dependent branches and auto-vectorize. Every kernel
 * splits its index range across the scoped thread pool (see
 * parallel.hh) above the grain size; splits touch disjoint elements,
 * so results are bit-identical at any lane count.
 *
 * Qubit i is bit i of the basis index (little-endian), matching
 * StateVector. Kernels do no bounds checking — callers validate
 * operands (StateVector::applyKernel throws IndexError).
 */

#ifndef QRA_SIM_KERNELS_KERNELS_HH
#define QRA_SIM_KERNELS_KERNELS_HH

#include <cstdint>
#include <vector>

#include "common/error.hh"
#include "math/matrix.hh"
#include "math/types.hh"
#include "sim/kernels/traversal.hh"

namespace qra {
namespace kernels {

/**
 * Re-insert zero bits at the positions in @p sorted_bits (ascending
 * single-bit masks) into compact index @p h.
 *
 * Contract (silent garbage on violation in release builds): each
 * entry must be a nonzero single-bit mask, and the array must be
 * strictly ascending. `sorted_bits[j] - 1` computes the below-the-bit
 * mask; a zero entry wraps to ~0 and hoists the *entire* index left,
 * a multi-bit entry produces a low mask covering unrelated bits, and
 * an out-of-order array double-inserts below an already-inserted
 * position. Debug builds assert all three.
 */
inline std::uint64_t
expandIndex(std::uint64_t h, const std::uint64_t *sorted_bits,
            std::size_t k)
{
#ifndef NDEBUG
    for (std::size_t j = 0; j < k; ++j) {
        QRA_ASSERT(sorted_bits[j] != 0 &&
                       (sorted_bits[j] & (sorted_bits[j] - 1)) == 0,
                   "expandIndex bit masks must be nonzero single bits");
        QRA_ASSERT(j == 0 || sorted_bits[j - 1] < sorted_bits[j],
                   "expandIndex bit masks must be strictly ascending");
    }
#endif
    for (std::size_t j = 0; j < k; ++j) {
        const std::uint64_t low = sorted_bits[j] - 1;
        h = ((h & ~low) << 1) | (h & low);
    }
    return h;
}

/**
 * General one-qubit unitary [[m00 m01] [m10 m11]] on qubit q.
 *
 * Pair kernels take a Traversal (see traversal.hh): Auto resolves
 * from the target's stride at call time, Linear/Blocked are pinned
 * choices (ExecutablePlan lowering pins them per entry). All three
 * are bit-identical; so are the SIMD dispatch tiers (simd/dispatch.hh)
 * these kernels route through before falling back to the scalar
 * oracle loops below.
 */
void applyGeneral1q(Complex *amps, std::uint64_t n, Qubit q, Complex m00,
                    Complex m01, Complex m10, Complex m11,
                    Traversal traversal = Traversal::Auto);

/** Diagonal one-qubit gate diag(d0, d1) on qubit q (Z, S, T, RZ, P). */
void applyDiagonal1q(Complex *amps, std::uint64_t n, Qubit q, Complex d0,
                     Complex d1);

/**
 * Anti-diagonal one-qubit gate [[0 a01] [a10 0]] on qubit q
 * (X, Y, phased bit flips).
 */
void applyAntiDiagonal1q(Complex *amps, std::uint64_t n, Qubit q,
                         Complex a01, Complex a10,
                         Traversal traversal = Traversal::Auto);

/** Pauli-X on qubit q (pure amplitude permutation, no arithmetic). */
void applyX(Complex *amps, std::uint64_t n, Qubit q);

/** Controlled-X: flip @p target where @p control is 1. */
void applyCX(Complex *amps, std::uint64_t n, Qubit control,
             Qubit target);

/** Doubly-controlled X (Toffoli). */
void applyCCX(Complex *amps, std::uint64_t n, Qubit control0,
              Qubit control1, Qubit target);

/** Swap qubits q0 and q1. */
void applySwap(Complex *amps, std::uint64_t n, Qubit q0, Qubit q1);

/**
 * Multiply amplitudes whose index has *all* bits of @p mask set by
 * @p phase (Z for a 1-bit mask, CZ for 2 bits, CC...Z generally).
 */
void applyPhaseOnMask(Complex *amps, std::uint64_t n, std::uint64_t mask,
                      Complex phase);

/**
 * Controlled one-qubit unitary: apply [[m00 m01] [m10 m11]] to
 * @p target on the subspace where @p control is 1 (CY, CRZ, ...).
 */
void applyControlled1q(Complex *amps, std::uint64_t n, Qubit control,
                       Qubit target, Complex m00, Complex m01,
                       Complex m10, Complex m11,
                       Traversal traversal = Traversal::Auto);

/**
 * General two-qubit unitary; @p u is 4x4 with matrix bit 0 = q0,
 * bit 1 = q1.
 */
void applyGeneral2q(Complex *amps, std::uint64_t n, Qubit q0, Qubit q1,
                    const Matrix &u,
                    Traversal traversal = Traversal::Auto);

/**
 * Generic k-qubit dense unitary; matrix bit j corresponds to
 * qubits[j]. The reference path every specialization must match.
 */
void applyGenericK(Complex *amps, std::uint64_t n, const Matrix &u,
                   const std::vector<Qubit> &qubits);

/**
 * Dispatching dense-matrix application (drop-in for the old
 * kernel::applyMatrix): picks the 1q/2q/k-qubit kernel by operand
 * count. Used by the density-matrix backend on its rows/columns and
 * by trajectory Kraus sampling on raw amplitude copies.
 */
void applyMatrix(std::vector<Complex> &amps, const Matrix &u,
                 const std::vector<Qubit> &qubits);

// ---- parallel measurement/sampling reductions -----------------------
//
// Every reduction walks fixed kReduceBlock blocks and accumulates
// each block into a fixed 8-double lane array (element h adds re^2
// to lane 2*(h&3) and im^2 to lane 2*(h&3)+1; plain double sums use
// lane j&7), folding the lanes left to right per block and the block
// partials in block order. The SIMD tiers (simd/dispatch.hh) fill
// the same lane slots with vector accumulators, so every reduction
// is bit-identical across tiers, thread counts, and lane counts —
// the scalar loops below are the memcmp oracle, exactly like the
// gate kernels.

/**
 * Sum of |amps[i]|^2 over indices with (i & mask) == match, reduced
 * in fixed blocks of the *compact* index space (mask bits stripped).
 * probabilityOfOne is mask = match = 1 << q; the total norm is
 * mask = match = 0. @p match must be a subset of @p mask.
 */
double normSquaredOnMask(const Complex *amps, std::uint64_t n,
                         std::uint64_t mask, std::uint64_t match);

/**
 * Collapse after measuring @p q = @p outcome: scale surviving
 * amplitudes by @p scale and zero the rest.
 */
void collapseQubit(Complex *amps, std::uint64_t n, Qubit q, int outcome,
                   double scale);

/**
 * probs[i] = |amps[i]|^2 (parallel elementwise), fused with the
 * deterministic lane-folded sum of all entries, which is returned.
 * The total is the exact value a subsequent sumWeights(probs, n)
 * would compute, so sampled execution renormalises (AliasTable's
 * n/total scale) without a second pass. Callers that renormalise by
 * the total MUST guard it: a zero or non-finite total (all-denormal
 * underflow, inf/NaN amplitudes) makes the division meaningless —
 * AliasTable throws ValueError instead of silently dividing.
 */
double computeProbabilities(const Complex *amps, std::uint64_t n,
                            double *probs);

/**
 * Deterministic lane-folded sum of w[0..n): the reduction the alias
 * table's prefix pass uses. Bit-identical at any lane count and on
 * every SIMD tier.
 */
double sumWeights(const double *w, std::uint64_t n);

/** amps[i] *= scale (parallel elementwise; Kraus renormalisation). */
void scaleAll(Complex *amps, std::uint64_t n, double scale);

/**
 * Marginal distribution over @p qubits: entry b is the probability
 * that reading qubits[j] gives bit j of b.
 *
 * Replaces the serial O(2^n) scatter with a blocked one: each fixed
 * kReduceBlock-sized block of the amplitude array scatters into its
 * own partial histogram (blocks split across the scoped lanes), and
 * the partials are merged in block order — so the result is
 * bit-identical at any lane count, and identical to the serial scan
 * whenever the state fits in one block. Falls back to the serial
 * scan when the partial histograms would not fit in a bounded
 * scratch budget (very wide marginals).
 */
std::vector<double> marginalProbabilities(
    const Complex *amps, std::uint64_t n,
    const std::vector<Qubit> &qubits);

/**
 * Born weight ||K psi||^2 of a one-qubit Kraus operator @p m (row
 * major 2x2) applied to qubit @p q, computed in one read-only pass —
 * no branch copy. Reduced in fixed blocks (lane-count independent).
 */
double branchWeight1q(const Complex *amps, std::uint64_t n, Qubit q,
                      const Complex m[4]);

} // namespace kernels
} // namespace qra

#endif // QRA_SIM_KERNELS_KERNELS_HH
