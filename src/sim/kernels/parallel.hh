/**
 * @file
 * Intra-shot parallelism for amplitude-level loops.
 *
 * A ParallelScope attaches a runtime::ThreadPool plus a lane count to
 * the *current thread*; parallelFor / deterministicSum consult that
 * thread-local configuration and split index ranges across the pool
 * when the range is large enough. Without an active scope every loop
 * runs serially, so library code is safe to call from any context.
 *
 * Two invariants make the split bit-deterministic:
 *  - parallelFor splits are only used for loops whose iterations touch
 *    disjoint elements, so any chunking produces identical results.
 *  - deterministicSum always reduces over *fixed-size* blocks and adds
 *    the block partials in block order, so the floating-point rounding
 *    is identical at every lane count (including 1).
 *
 * Deadlock safety: the splitting thread never blocks on the pool; it
 * executes its own chunk inline and then *helps* drain the pool's
 * queue (ThreadPool::runOne) until its chunks are done. This lets the
 * execution engine share one pool between shot-level shards and
 * amplitude-level lanes without oversubscription or deadlock.
 */

#ifndef QRA_SIM_KERNELS_PARALLEL_HH
#define QRA_SIM_KERNELS_PARALLEL_HH

#include <cstdint>
#include <functional>

#include "runtime/thread_pool.hh"

namespace qra {
namespace kernels {

/** Thread-local parallel execution configuration. */
struct ParallelConfig
{
    /** Pool amplitude chunks are submitted to (nullptr = serial). */
    runtime::ThreadPool *pool = nullptr;

    /** Maximum concurrent chunks per loop (1 = serial). */
    std::size_t lanes = 1;

    bool active() const { return pool != nullptr && lanes > 1; }
};

/** The calling thread's current configuration (default: serial). */
const ParallelConfig &currentParallelConfig();

/**
 * RAII guard: installs a pool/lane configuration on the current
 * thread for its lifetime, restoring the previous one on exit.
 */
class ParallelScope
{
  public:
    ParallelScope(runtime::ThreadPool *pool, std::size_t lanes);
    ~ParallelScope();

    ParallelScope(const ParallelScope &) = delete;
    ParallelScope &operator=(const ParallelScope &) = delete;

  private:
    ParallelConfig saved_;
};

/** Minimum iterations per chunk before a loop is worth splitting. */
constexpr std::uint64_t kParallelGrain = std::uint64_t{1} << 14;

/** Fixed reduction block size (independent of lane count). */
constexpr std::uint64_t kReduceBlock = std::uint64_t{1} << 16;

/** Splitting machinery (type-erased; only reached for large loops). */
void parallelForSplit(
    std::uint64_t n, std::uint64_t grain,
    const std::function<void(std::uint64_t, std::uint64_t)> &fn);

double deterministicSumSplit(
    std::uint64_t n,
    const std::function<double(std::uint64_t, std::uint64_t)> &fn);

/**
 * Run @p fn(begin, end) over [0, n) in contiguous chunks, splitting
 * across the scoped pool when n >= 2 * grain and lanes > 1.
 * Iterations must touch disjoint data. Exceptions from any chunk are
 * rethrown on the calling thread (first one wins).
 *
 * The serial fast path (no scope, or a small range — every gate on a
 * small state) invokes the callable directly, with no type erasure
 * or allocation; only an actually-splitting loop pays for one.
 */
template <typename Fn>
void
parallelFor(std::uint64_t n, std::uint64_t grain, Fn &&fn)
{
    if (n == 0)
        return;
    if (grain == 0)
        grain = 1;
    const ParallelConfig &cfg = currentParallelConfig();
    if (!cfg.active() || n < 2 * grain) {
        fn(0, n);
        return;
    }
    parallelForSplit(n, grain, std::forward<Fn>(fn));
}

template <typename Fn>
void
parallelFor(std::uint64_t n, Fn &&fn)
{
    parallelFor(n, kParallelGrain, std::forward<Fn>(fn));
}

/**
 * Sum @p fn(begin, end) over [0, n) with fixed kReduceBlock blocks.
 * @p fn returns the partial sum of its sub-range; partials are added
 * in block order, so the result is bit-identical at any lane count.
 * Single-block ranges call the callable directly (no erasure).
 */
template <typename Fn>
double
deterministicSum(std::uint64_t n, Fn &&fn)
{
    if (n == 0)
        return 0.0;
    if (n <= kReduceBlock)
        return fn(0, n);
    return deterministicSumSplit(n, std::forward<Fn>(fn));
}

} // namespace kernels
} // namespace qra

#endif // QRA_SIM_KERNELS_PARALLEL_HH
