/**
 * @file
 * Walker alias table: O(n) construction from a discrete weight
 * vector, O(1) sampling per draw.
 *
 * Replaces the O(2^n)-per-shot cumulative scan in sampled execution:
 * runSampled builds the outcome distribution once, constructs the
 * table, and then every shot costs one uniform variate and two array
 * reads. Construction is deterministic (two-stack Vose partition), so
 * for a fixed weight vector the draw sequence depends only on the RNG
 * stream — never on thread count.
 */

#ifndef QRA_SIM_KERNELS_ALIAS_TABLE_HH
#define QRA_SIM_KERNELS_ALIAS_TABLE_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"

namespace qra {
namespace kernels {

/** O(1) sampler over a fixed discrete distribution. */
class AliasTable
{
  public:
    /**
     * Build from non-negative weights (need not be normalised). The
     * prefix total is computed with the vectorized deterministic
     * reduction (kernels::sumWeights).
     * @throws ValueError if @p weights is empty, contains a negative
     * entry, or its total is zero or non-finite (see the guarded
     * overload below).
     */
    explicit AliasTable(const std::vector<double> &weights);

    /**
     * Build from weights whose total is already known — sampled
     * execution fuses the |amp|^2 fill with the block sum
     * (kernels::computeProbabilities) and hands the total straight
     * here, skipping the second pass. @p total must be exactly what
     * sumWeights(weights) would return.
     * @throws ValueError on an empty vector, a negative entry, a
     * zero total (all-zero or fully underflowed weights), or a
     * non-finite total (inf/NaN amplitudes) — renormalising by such
     * a total would silently divide into garbage.
     */
    AliasTable(const std::vector<double> &weights, double total);

    std::size_t size() const { return threshold_.size(); }

    /** Draw one index in [0, size()) using a single uniform variate. */
    std::size_t
    sample(Rng &rng) const
    {
        const double u =
            rng.uniform() * static_cast<double>(threshold_.size());
        std::size_t column = static_cast<std::size_t>(u);
        if (column >= threshold_.size()) // u == 1.0 edge
            column = threshold_.size() - 1;
        const double coin = u - static_cast<double>(column);
        return coin < threshold_[column] ? column : alias_[column];
    }

  private:
    /** Probability of keeping the column index (vs its alias). */
    std::vector<double> threshold_;
    std::vector<std::uint32_t> alias_;
};

} // namespace kernels
} // namespace qra

#endif // QRA_SIM_KERNELS_ALIAS_TABLE_HH
