#include "sim/kernels/traversal.hh"

#include <atomic>
#include <cstdlib>
#include <string>

#include "common/logging.hh"
#include "obs/metrics.hh"

namespace qra {
namespace kernels {

namespace {

constexpr std::size_t kDefaultBlockBytes = std::size_t{1} << 20;
constexpr std::size_t kMinBlockBytes = std::size_t{1} << 12;

std::size_t
floorPow2(std::size_t value)
{
    std::size_t p = 1;
    while (p <= value / 2)
        p *= 2;
    return p;
}

std::size_t
envBlockBytes()
{
    const char *env = std::getenv("QRA_CACHE_BLOCK");
    if (env == nullptr || *env == '\0')
        return kDefaultBlockBytes;
    char *end = nullptr;
    const unsigned long long parsed = std::strtoull(env, &end, 10);
    if (end == env || *end != '\0' || parsed < kMinBlockBytes)
        return kDefaultBlockBytes;
    return floorPow2(static_cast<std::size_t>(parsed));
}

/** 0 = "use the default/env value" (so env changes in tests apply). */
std::atomic<std::size_t> gBlockBytes{0};

/** Per-thread override (EngineOptions::cacheBlockBytes per shard). */
thread_local std::size_t tBlockBytes = 0;

/**
 * The auto heuristic chose Blocked: count it and (at debug level)
 * say why, so a surprising traversal switch on a new host is
 * attributable to its stride/budget numbers.
 */
void
recordBlockedTrigger(std::uint64_t stride_bytes, std::size_t budget)
{
    if (obs::metricsEnabled()) {
        static const obs::CounterHandle handle =
            obs::MetricsRegistry::global().counter(
                "sim.kernels.traversal.blocked");
        obs::count(handle);
    }
    if (Logger::level() <= LogLevel::Debug)
        logDebug("blocked traversal: stride exceeds cache budget",
                 {{"stride_bytes", std::to_string(stride_bytes)},
                  {"budget_bytes", std::to_string(budget)}});
}

} // namespace

const char *
traversalName(Traversal traversal)
{
    switch (traversal) {
    case Traversal::Auto:
        return "auto";
    case Traversal::Linear:
        return "linear";
    case Traversal::Blocked:
        return "blocked";
    }
    return "?";
}

std::size_t
cacheBlockBytes()
{
    if (tBlockBytes != 0)
        return tBlockBytes;
    const std::size_t configured =
        gBlockBytes.load(std::memory_order_relaxed);
    return configured != 0 ? configured : envBlockBytes();
}

void
setCacheBlockBytes(std::size_t bytes)
{
    if (bytes == 0) {
        gBlockBytes.store(0, std::memory_order_relaxed);
        return;
    }
    if (bytes < kMinBlockBytes)
        bytes = kMinBlockBytes;
    gBlockBytes.store(floorPow2(bytes), std::memory_order_relaxed);
}

CacheBlockScope::CacheBlockScope(std::size_t bytes)
    : saved_(tBlockBytes)
{
    if (bytes != 0)
        tBlockBytes =
            floorPow2(bytes < kMinBlockBytes ? kMinBlockBytes : bytes);
}

CacheBlockScope::~CacheBlockScope()
{
    tBlockBytes = saved_;
}

Traversal
resolveTraversal(Traversal requested, std::uint64_t n,
                 std::uint64_t max_bit, std::size_t resident_per_index)
{
    if (requested != Traversal::Auto)
        return requested;
    if (max_bit == 0 || n == 0)
        return Traversal::Linear;
    const std::size_t block = cacheBlockBytes();
    // Stride between the two (or four) resident halves of one pair
    // group: when it exceeds the cache budget, a contiguous compact
    // split streams through far-apart windows and tiling pays off.
    const std::uint64_t stride_bytes = max_bit * sizeof(Complex);
    if (stride_bytes <= block)
        return Traversal::Linear;
    const std::uint64_t count = n / 2;
    const std::uint64_t tile =
        std::max<std::uint64_t>(std::uint64_t{1} << 10,
                                block / (resident_per_index *
                                         sizeof(Complex)));
    if (count > tile) {
        recordBlockedTrigger(stride_bytes, block);
        return Traversal::Blocked;
    }
    return Traversal::Linear;
}

} // namespace kernels
} // namespace qra
