/**
 * @file
 * PlanCache: memoised per-circuit execution artifacts, shared across
 * jobs and shards.
 *
 * Lowered plans, noisy trajectory plans, and sampled-execution
 * distributions (alias table + clbit wiring) depend only on the
 * circuit (semantic hash), the noise model (semantic fingerprint),
 * and the fusion level — never on shots, seeds, or thread counts. A
 * PlanCache keyed on those lets every shard of a job, and every
 * repeated job over the same prepared circuit (the batched-assertion
 * sweep pattern), build each artifact exactly once.
 *
 * The cache reaches the simulators the same way the thread pool does:
 * the execution engine installs a PlanCacheScope around each shard,
 * and StatevectorSimulator / TrajectorySimulator consult
 * currentPlanCache(). Without an active scope they compile locally,
 * so direct simulator use is unchanged.
 *
 * Concurrency: the first caller of a key publishes the artifact; a
 * caller that races a still-running build constructs a private
 * (bit-identical) copy rather than block — a pool task waiting on
 * the cache could sit, via the thread pool's help-loop, on top of
 * the very builder frame it waits for. Completed artifacts are
 * shared by every later caller. Cached artifacts are bit-identical
 * to locally built ones (plan compilation is deterministic and the
 * amplitude kernels are lane-count independent), so caching never
 * changes counts.
 */

#ifndef QRA_SIM_KERNELS_PLAN_CACHE_HH
#define QRA_SIM_KERNELS_PLAN_CACHE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "circuit/circuit.hh"
#include "noise/noise_model.hh"
#include "sim/kernels/alias_table.hh"
#include "sim/kernels/noise_plan.hh"
#include "sim/kernels/plan.hh"

namespace qra {
namespace kernels {

/**
 * Everything sampled execution needs after the one-time evolution:
 * the outcome alias table over the measured-qubit marginal, the
 * marginal-bit -> clbit wiring, and the post-selection retention.
 */
struct SampledDistribution
{
    AliasTable table{std::vector<double>{1.0}};
    /** (marginal bit index, clbit) per measurement, program order. */
    std::vector<std::pair<std::size_t, Clbit>> bitWiring;
    double retainedFraction = 1.0;
};

/** Cross-job artifact cache (see file comment). */
class PlanCache
{
  public:
    /**
     * Entries retained per artifact kind before FIFO eviction kicks
     * in. Bounds a long-lived queue sweeping many (circuit, noise)
     * points — e.g. a noise-scale sweep inserts one trajectory plan
     * per scale — at a few hundred MB worst case instead of growing
     * without limit. Artifacts held by running shards stay alive
     * through their shared_ptr; eviction only drops the cache's
     * reference.
     */
    static constexpr std::size_t kMaxEntriesPerKind = 256;

    struct Stats
    {
        std::size_t hits = 0;
        std::size_t misses = 0;
        std::size_t evictions = 0;
    };

    /** Lowered ideal plan for (circuit, fusion). */
    std::shared_ptr<const ExecutablePlan> plan(const Circuit &circuit,
                                               int fusion);

    /**
     * Lowered noisy trajectory plan for (circuit, noise fingerprint,
     * fusion). @p noise may be null (ideal trajectories).
     */
    std::shared_ptr<const TrajectoryPlan>
    trajectoryPlan(const Circuit &circuit, const NoiseModel *noise,
                   int fusion);

    /**
     * Sampled-execution distribution for (circuit, fusion); the
     * measured-qubit set is a function of the circuit and therefore
     * of its hash. @p build runs at most once per key.
     */
    std::shared_ptr<const SampledDistribution> sampledDistribution(
        const Circuit &circuit, int fusion,
        const std::function<std::shared_ptr<const SampledDistribution>()>
            &build);

    /** Aggregate hit/miss counters over all three artifact kinds. */
    Stats stats() const;

  private:
    template <typename T>
    struct Store
    {
        struct Entry
        {
            /** Unique insertion id: the failure path erases its own
                entry only, never a successor that recycled the key
                after a FIFO eviction. */
            std::uint64_t id;
            std::shared_future<std::shared_ptr<const T>> future;
        };
        std::unordered_map<std::uint64_t, Entry> map;
        /** (key, id) insertion order, for FIFO eviction; a record
            whose id no longer matches the stored entry is stale
            (failed build, earlier eviction) and is skipped. */
        std::deque<std::pair<std::uint64_t, std::uint64_t>> order;
    };

    /**
     * Look up @p key in @p store, building via @p build on a miss.
     * Returns the artifact; only the inserting thread runs @p build
     * for the shared slot (racers build private copies, see file
     * comment).
     */
    template <typename T, typename BuildFn>
    std::shared_ptr<const T> lookup(Store<T> &store, std::uint64_t key,
                                    BuildFn &&build);

    mutable std::mutex mutex_;
    Store<ExecutablePlan> plans_;
    Store<TrajectoryPlan> trajectoryPlans_;
    Store<SampledDistribution> sampled_;
    Stats stats_;
    std::uint64_t nextId_ = 0;
};

/** The calling thread's active cache (nullptr = compile locally). */
PlanCache *currentPlanCache();

/** RAII guard installing a cache on the current thread. */
class PlanCacheScope
{
  public:
    explicit PlanCacheScope(PlanCache *cache);
    ~PlanCacheScope();

    PlanCacheScope(const PlanCacheScope &) = delete;
    PlanCacheScope &operator=(const PlanCacheScope &) = delete;

  private:
    PlanCache *saved_;
};

} // namespace kernels
} // namespace qra

#endif // QRA_SIM_KERNELS_PLAN_CACHE_HH
