#include "sim/kernels/alias_table.hh"

#include <cmath>
#include <limits>

#include "common/error.hh"
#include "sim/kernels/kernels.hh"

namespace qra {
namespace kernels {

AliasTable::AliasTable(const std::vector<double> &weights)
    : AliasTable(weights, sumWeights(weights.data(), weights.size()))
{
}

AliasTable::AliasTable(const std::vector<double> &weights, double total)
{
    const std::size_t n = weights.size();
    if (n == 0)
        throw ValueError("alias table needs at least one weight");
    if (n > std::numeric_limits<std::uint32_t>::max())
        throw ValueError("alias table too large");

    // Renormalisation guards: scale = n/total is the only division in
    // sampled execution, so refuse totals it cannot survive. A zero
    // total arises from an all-zero (or fully underflowed denormal)
    // probability vector; a non-finite one from inf/NaN amplitudes or
    // an overflowed sum. Both would otherwise silently produce a
    // table that samples garbage.
    if (!std::isfinite(total))
        throw ValueError("alias table weights sum is not finite");
    if (total <= 0.0)
        throw ValueError("alias table weights sum to zero");

    // Vose's method: partition columns into under/over-full stacks and
    // pair each under-full column with an over-full donor.
    threshold_.assign(n, 1.0);
    alias_.resize(n);
    std::vector<double> scaled(n);
    const double scale = static_cast<double>(n) / total;
    for (std::size_t i = 0; i < n; ++i) {
        if (weights[i] < 0.0)
            throw ValueError("alias table weights must be >= 0");
        scaled[i] = weights[i] * scale;
        alias_[i] = static_cast<std::uint32_t>(i);
    }

    std::vector<std::uint32_t> small, large;
    small.reserve(n);
    large.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        if (scaled[i] < 1.0)
            small.push_back(static_cast<std::uint32_t>(i));
        else
            large.push_back(static_cast<std::uint32_t>(i));
    }

    while (!small.empty() && !large.empty()) {
        const std::uint32_t under = small.back();
        small.pop_back();
        const std::uint32_t over = large.back();
        threshold_[under] = scaled[under];
        alias_[under] = over;
        scaled[over] -= 1.0 - scaled[under];
        if (scaled[over] < 1.0) {
            large.pop_back();
            small.push_back(over);
        }
    }
    // Numerical leftovers on either stack round to probability 1.
    for (const std::uint32_t i : small)
        threshold_[i] = 1.0;
    for (const std::uint32_t i : large)
        threshold_[i] = 1.0;
}

} // namespace kernels
} // namespace qra
