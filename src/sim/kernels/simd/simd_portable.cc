/**
 * @file
 * Portable tier of the kernel dispatch tables: the same grouped
 * layouts as the AVX2 tier (a vector = 4 doubles = 2 complexes),
 * expressed through std::experimental::simd when the toolchain ships
 * it and through a hand-unrolled 4-wide value type otherwise. No ISA
 * flags: this TU compiles on any target, so non-x86 builds get more
 * than the scalar oracle for both gate updates and reductions.
 *
 * Bit-exactness (dispatch.hh contract): every operation below is a
 * per-element IEEE multiply or add — vaddsub flips signs by
 * multiplying with exact ±1.0 — and the TU is compiled with
 * -ffp-contract=off, so results match the scalar oracle bit for bit
 * whether the backing type is a real vector register or a plain
 * array.
 */

#include <cstdint>

#include "math/types.hh"
#include "sim/kernels/kernels.hh"
#include "sim/kernels/simd/dispatch.hh"
#include "sim/kernels/traversal.hh"

#if __has_include(<experimental/simd>)
#include <experimental/simd>
#define QRA_PORTABLE_STDSIMD 1
#endif

namespace qra {
namespace kernels {
namespace simd {
namespace {

#ifdef QRA_PORTABLE_STDSIMD

namespace stdx = std::experimental;

/** Two interleaved complexes: [re0, im0, re1, im1]. */
struct V
{
    stdx::fixed_size_simd<double, 4> r;
};

inline V
vload(const Complex *p)
{
    V v;
    v.r.copy_from(reinterpret_cast<const double *>(p),
                  stdx::element_aligned);
    return v;
}

inline V
vloadd(const double *p)
{
    V v;
    v.r.copy_from(p, stdx::element_aligned);
    return v;
}

inline void
vstore(Complex *p, V v)
{
    v.r.copy_to(reinterpret_cast<double *>(p), stdx::element_aligned);
}

inline void
vstored(double *p, V v)
{
    v.r.copy_to(p, stdx::element_aligned);
}

inline V
vset(double a, double b, double c, double d)
{
    const double vals[4] = {a, b, c, d};
    V v;
    v.r.copy_from(vals, stdx::element_aligned);
    return v;
}

inline V
vadd(V a, V b)
{
    return V{a.r + b.r};
}

inline V
vmul(V a, V b)
{
    return V{a.r * b.r};
}

/** Permute by a compile-time index map (j = lane index). Goes
 * through a stack array instead of the simd generator constructor:
 * GCC 12's generator ctor miscompiles at -O2 when the source vector
 * was copy_from'd through a casted pointer (returns zeros). The
 * round-trip folds to shuffles under optimization anyway. */
template <typename Map>
inline V
vperm(V v, Map map)
{
    double tmp[4];
    v.r.copy_to(tmp, stdx::element_aligned);
    const double out[4] = {
        tmp[map(std::size_t{0})], tmp[map(std::size_t{1})],
        tmp[map(std::size_t{2})], tmp[map(std::size_t{3})]};
    V o;
    o.r.copy_from(out, stdx::element_aligned);
    return o;
}

#else // !QRA_PORTABLE_STDSIMD — hand-unrolled generic fallback

struct V
{
    double r[4];
};

inline V
vload(const Complex *p)
{
    const double *d = reinterpret_cast<const double *>(p);
    return V{{d[0], d[1], d[2], d[3]}};
}

inline V
vloadd(const double *p)
{
    return V{{p[0], p[1], p[2], p[3]}};
}

inline void
vstore(Complex *p, V v)
{
    double *d = reinterpret_cast<double *>(p);
    d[0] = v.r[0];
    d[1] = v.r[1];
    d[2] = v.r[2];
    d[3] = v.r[3];
}

inline void
vstored(double *p, V v)
{
    p[0] = v.r[0];
    p[1] = v.r[1];
    p[2] = v.r[2];
    p[3] = v.r[3];
}

inline V
vset(double a, double b, double c, double d)
{
    return V{{a, b, c, d}};
}

inline V
vadd(V a, V b)
{
    return V{{a.r[0] + b.r[0], a.r[1] + b.r[1], a.r[2] + b.r[2],
              a.r[3] + b.r[3]}};
}

inline V
vmul(V a, V b)
{
    return V{{a.r[0] * b.r[0], a.r[1] * b.r[1], a.r[2] * b.r[2],
              a.r[3] * b.r[3]}};
}

template <typename Map>
inline V
vperm(V v, Map map)
{
    return V{{v.r[map(std::size_t{0})], v.r[map(std::size_t{1})],
              v.r[map(std::size_t{2})], v.r[map(std::size_t{3})]}};
}

#endif // QRA_PORTABLE_STDSIMD

/** [re, im, re', im'] -> [im, re, im', re']. */
inline V
vswapRI(V v)
{
    return vperm(v, [](std::size_t j) { return j ^ 1; });
}

/** Swap the two complex lanes. */
inline V
vswapLanes(V v)
{
    return vperm(v, [](std::size_t j) { return j ^ 2; });
}

/** Broadcast the low / high complex to both lanes. */
inline V
vbcastLo(V v)
{
    return vperm(v, [](std::size_t j) { return j & 1; });
}

inline V
vbcastHi(V v)
{
    return vperm(v, [](std::size_t j) { return (j & 1) | 2; });
}

/** a +/- b per even/odd element: a + b * (-1, +1, -1, +1). The ±1.0
 * products are IEEE-exact sign flips / identities, so this matches
 * _mm256_addsub_pd and the scalar subtract/add bit for bit. */
inline V
vaddsub(V a, V b)
{
    return vadd(a, vmul(b, vset(-1.0, 1.0, -1.0, 1.0)));
}

inline V
vbcastRe(Complex m)
{
    return vset(m.real(), m.real(), m.real(), m.real());
}

inline V
vbcastIm(Complex m)
{
    return vset(m.imag(), m.imag(), m.imag(), m.imag());
}

/** Distinct constants for the low / high complex lane. */
inline V
vlaneRe(Complex lo, Complex hi)
{
    return vset(lo.real(), lo.real(), hi.real(), hi.real());
}

inline V
vlaneIm(Complex lo, Complex hi)
{
    return vset(lo.imag(), lo.imag(), hi.imag(), hi.imag());
}

/** Complex multiply by broadcast constants (libstdc++ fast path). */
inline V
vcmulC(V v, V mr, V mi)
{
    return vaddsub(vmul(v, mr), vmul(vswapRI(v), mi));
}

// ---- gate kernels (layouts mirror simd_avx2.cc) ----------------------

bool
general1qPortable(Complex *amps, std::uint64_t n, Qubit q, Complex m00,
                  Complex m01, Complex m10, Complex m11,
                  Traversal traversal)
{
    const std::uint64_t bit = std::uint64_t{1} << q;
    if (q == 0) {
        const V r0r = vlaneRe(m00, m10), r0i = vlaneIm(m00, m10);
        const V r1r = vlaneRe(m01, m11), r1i = vlaneIm(m01, m11);
        forEachCompact(
            n >> 1, 2, traversal,
            [=](std::uint64_t begin, std::uint64_t end) {
                for (std::uint64_t h = begin; h < end; ++h) {
                    const V v = vload(amps + 2 * h);
                    vstore(amps + 2 * h,
                           vadd(vcmulC(vbcastLo(v), r0r, r0i),
                                vcmulC(vbcastHi(v), r1r, r1i)));
                }
            });
        return true;
    }
    const std::uint64_t low = bit - 1;
    const V v00r = vbcastRe(m00), v00i = vbcastIm(m00);
    const V v01r = vbcastRe(m01), v01i = vbcastIm(m01);
    const V v10r = vbcastRe(m10), v10i = vbcastIm(m10);
    const V v11r = vbcastRe(m11), v11i = vbcastIm(m11);
    forEachCompact(
        n >> 1, 2, traversal,
        [=](std::uint64_t begin, std::uint64_t end) {
            const auto scalarOne = [=](std::uint64_t h) {
                const std::uint64_t i0 = ((h & ~low) << 1) | (h & low);
                const std::uint64_t i1 = i0 | bit;
                const Complex a0 = amps[i0];
                const Complex a1 = amps[i1];
                amps[i0] = m00 * a0 + m01 * a1;
                amps[i1] = m10 * a0 + m11 * a1;
            };
            std::uint64_t h = begin;
            for (; h < end && (h & 1) != 0; ++h)
                scalarOne(h);
            for (; h + 2 <= end; h += 2) {
                const std::uint64_t i0 = ((h & ~low) << 1) | (h & low);
                const V v0 = vload(amps + i0);
                const V v1 = vload(amps + i0 + bit);
                vstore(amps + i0, vadd(vcmulC(v0, v00r, v00i),
                                       vcmulC(v1, v01r, v01i)));
                vstore(amps + i0 + bit,
                       vadd(vcmulC(v0, v10r, v10i),
                            vcmulC(v1, v11r, v11i)));
            }
            for (; h < end; ++h)
                scalarOne(h);
        });
    return true;
}

bool
diagonal1qPortable(Complex *amps, std::uint64_t n, Qubit q, Complex d0,
                   Complex d1)
{
    const std::uint64_t bit = std::uint64_t{1} << q;
    if (q == 0) {
        const V dr = vlaneRe(d0, d1), di = vlaneIm(d0, d1);
        parallelFor(n, [=](std::uint64_t begin, std::uint64_t end) {
            std::uint64_t i = begin;
            for (; i < end && (i & 1) != 0; ++i)
                amps[i] *= d1;
            for (; i + 2 <= end; i += 2)
                vstore(amps + i, vcmulC(vload(amps + i), dr, di));
            for (; i < end; ++i)
                amps[i] *= d0;
        });
        return true;
    }
    const V d0r = vbcastRe(d0), d0i = vbcastIm(d0);
    const V d1r = vbcastRe(d1), d1i = vbcastIm(d1);
    parallelFor(n, [=](std::uint64_t begin, std::uint64_t end) {
        std::uint64_t i = begin;
        for (; i < end && (i & 1) != 0; ++i)
            amps[i] *= (i & bit) ? d1 : d0;
        for (; i + 2 <= end; i += 2) {
            const bool hi = (i & bit) != 0;
            vstore(amps + i, vcmulC(vload(amps + i), hi ? d1r : d0r,
                                    hi ? d1i : d0i));
        }
        for (; i < end; ++i)
            amps[i] *= (i & bit) ? d1 : d0;
    });
    return true;
}

bool
antidiagonal1qPortable(Complex *amps, std::uint64_t n, Qubit q,
                       Complex a01, Complex a10, Traversal traversal)
{
    const std::uint64_t bit = std::uint64_t{1} << q;
    if (q == 0) {
        const V mr = vlaneRe(a01, a10), mi = vlaneIm(a01, a10);
        forEachCompact(
            n >> 1, 2, traversal,
            [=](std::uint64_t begin, std::uint64_t end) {
                for (std::uint64_t h = begin; h < end; ++h) {
                    const V v = vload(amps + 2 * h);
                    vstore(amps + 2 * h,
                           vcmulC(vswapLanes(v), mr, mi));
                }
            });
        return true;
    }
    const std::uint64_t low = bit - 1;
    const V m01r = vbcastRe(a01), m01i = vbcastIm(a01);
    const V m10r = vbcastRe(a10), m10i = vbcastIm(a10);
    forEachCompact(
        n >> 1, 2, traversal,
        [=](std::uint64_t begin, std::uint64_t end) {
            const auto scalarOne = [=](std::uint64_t h) {
                const std::uint64_t i0 = ((h & ~low) << 1) | (h & low);
                const std::uint64_t i1 = i0 | bit;
                const Complex a0 = amps[i0];
                amps[i0] = a01 * amps[i1];
                amps[i1] = a10 * a0;
            };
            std::uint64_t h = begin;
            for (; h < end && (h & 1) != 0; ++h)
                scalarOne(h);
            for (; h + 2 <= end; h += 2) {
                const std::uint64_t i0 = ((h & ~low) << 1) | (h & low);
                const V v0 = vload(amps + i0);
                const V v1 = vload(amps + i0 + bit);
                vstore(amps + i0, vcmulC(v1, m01r, m01i));
                vstore(amps + i0 + bit, vcmulC(v0, m10r, m10i));
            }
            for (; h < end; ++h)
                scalarOne(h);
        });
    return true;
}

bool
phaseOnMaskPortable(Complex *amps, std::uint64_t n, std::uint64_t mask,
                    Complex phase)
{
    const V pr = vbcastRe(phase), pi = vbcastIm(phase);
    if (mask == 1) {
        // Touch the odd complex of each pair; keep the even one's
        // bits verbatim (multiplying by 1+0i could flip a -0.0).
        parallelFor(n >> 1,
                    [=](std::uint64_t begin, std::uint64_t end) {
                        for (std::uint64_t h = begin; h < end; ++h) {
                            Complex *p = amps + 2 * h;
                            const V prod = vcmulC(vload(p), pr, pi);
                            double hi[4];
                            vstored(hi, prod);
                            reinterpret_cast<double *>(p)[2] = hi[2];
                            reinterpret_cast<double *>(p)[3] = hi[3];
                        }
                    });
        return true;
    }
    if ((mask & 1) != 0)
        return false; // multi-bit mask through bit 0: scalar ladder
    std::uint64_t bits[64];
    std::size_t k = 0;
    for (std::uint64_t rest = mask; rest != 0; rest &= rest - 1)
        bits[k++] = rest & ~(rest - 1);
    const std::uint64_t *bits_data = bits;
    parallelFor(n >> k, [=](std::uint64_t begin, std::uint64_t end) {
        std::uint64_t h = begin;
        for (; h < end && (h & 1) != 0; ++h)
            amps[expandIndex(h, bits_data, k) | mask] *= phase;
        for (; h + 2 <= end; h += 2) {
            Complex *p = amps + (expandIndex(h, bits_data, k) | mask);
            vstore(p, vcmulC(vload(p), pr, pi));
        }
        for (; h < end; ++h)
            amps[expandIndex(h, bits_data, k) | mask] *= phase;
    });
    return true;
}

bool
controlled1qPortable(Complex *amps, std::uint64_t n, Qubit control,
                     Qubit target, Complex m00, Complex m01,
                     Complex m10, Complex m11, Traversal traversal)
{
    const std::uint64_t cbit = std::uint64_t{1} << control;
    const std::uint64_t tbit = std::uint64_t{1} << target;
    std::uint64_t bits[2] = {cbit < tbit ? cbit : tbit,
                             cbit < tbit ? tbit : cbit};
    if (target == 0 && control >= 1) {
        const V r0r = vlaneRe(m00, m10), r0i = vlaneIm(m00, m10);
        const V r1r = vlaneRe(m01, m11), r1i = vlaneIm(m01, m11);
        forEachCompact(
            n >> 2, 2, traversal,
            [=](std::uint64_t begin, std::uint64_t end) {
                for (std::uint64_t h = begin; h < end; ++h) {
                    Complex *p =
                        amps + (expandIndex(h, bits, 2) | cbit);
                    const V v = vload(p);
                    vstore(p, vadd(vcmulC(vbcastLo(v), r0r, r0i),
                                   vcmulC(vbcastHi(v), r1r, r1i)));
                }
            });
        return true;
    }
    if (control == 0 || target == 0)
        return false; // control on bit 0: pairs not contiguous
    const V v00r = vbcastRe(m00), v00i = vbcastIm(m00);
    const V v01r = vbcastRe(m01), v01i = vbcastIm(m01);
    const V v10r = vbcastRe(m10), v10i = vbcastIm(m10);
    const V v11r = vbcastRe(m11), v11i = vbcastIm(m11);
    forEachCompact(
        n >> 2, 2, traversal,
        [=](std::uint64_t begin, std::uint64_t end) {
            const auto scalarOne = [=](std::uint64_t h) {
                const std::uint64_t i0 =
                    expandIndex(h, bits, 2) | cbit;
                const std::uint64_t i1 = i0 | tbit;
                const Complex a0 = amps[i0];
                const Complex a1 = amps[i1];
                amps[i0] = m00 * a0 + m01 * a1;
                amps[i1] = m10 * a0 + m11 * a1;
            };
            std::uint64_t h = begin;
            for (; h < end && (h & 1) != 0; ++h)
                scalarOne(h);
            for (; h + 2 <= end; h += 2) {
                const std::uint64_t i0 =
                    expandIndex(h, bits, 2) | cbit;
                const V v0 = vload(amps + i0);
                const V v1 = vload(amps + i0 + tbit);
                vstore(amps + i0, vadd(vcmulC(v0, v00r, v00i),
                                       vcmulC(v1, v01r, v01i)));
                vstore(amps + i0 + tbit,
                       vadd(vcmulC(v0, v10r, v10i),
                            vcmulC(v1, v11r, v11i)));
            }
            for (; h < end; ++h)
                scalarOne(h);
        });
    return true;
}

bool
general2qPortable(Complex *amps, std::uint64_t n, Qubit q0, Qubit q1,
                  const Complex *m, Traversal traversal)
{
    const std::uint64_t b0 = std::uint64_t{1} << q0;
    const std::uint64_t b1 = std::uint64_t{1} << q1;
    std::uint64_t bits[2] = {b0 < b1 ? b0 : b1, b0 < b1 ? b1 : b0};
    if (q0 >= 1 && q1 >= 1) {
        V cr[16], ci[16];
        for (int e = 0; e < 16; ++e) {
            cr[e] = vbcastRe(m[e]);
            ci[e] = vbcastIm(m[e]);
        }
        forEachCompact(
            n >> 2, 4, traversal,
            [=](std::uint64_t begin, std::uint64_t end) {
                const auto scalarOne = [=](std::uint64_t h) {
                    const std::uint64_t base =
                        expandIndex(h, bits, 2);
                    const std::uint64_t i1 = base | b0;
                    const std::uint64_t i2 = base | b1;
                    const std::uint64_t i3 = base | b0 | b1;
                    const Complex a0 = amps[base];
                    const Complex a1 = amps[i1];
                    const Complex a2 = amps[i2];
                    const Complex a3 = amps[i3];
                    amps[base] = m[0] * a0 + m[1] * a1 + m[2] * a2 +
                                 m[3] * a3;
                    amps[i1] = m[4] * a0 + m[5] * a1 + m[6] * a2 +
                               m[7] * a3;
                    amps[i2] = m[8] * a0 + m[9] * a1 + m[10] * a2 +
                               m[11] * a3;
                    amps[i3] = m[12] * a0 + m[13] * a1 + m[14] * a2 +
                               m[15] * a3;
                };
                std::uint64_t h = begin;
                for (; h < end && (h & 1) != 0; ++h)
                    scalarOne(h);
                for (; h + 2 <= end; h += 2) {
                    const std::uint64_t base =
                        expandIndex(h, bits, 2);
                    const V a0 = vload(amps + base);
                    const V a1 = vload(amps + (base | b0));
                    const V a2 = vload(amps + (base | b1));
                    const V a3 = vload(amps + (base | b0 | b1));
                    for (int r = 0; r < 4; ++r) {
                        const int e = 4 * r;
                        V acc = vadd(vcmulC(a0, cr[e], ci[e]),
                                     vcmulC(a1, cr[e + 1], ci[e + 1]));
                        acc = vadd(acc,
                                   vcmulC(a2, cr[e + 2], ci[e + 2]));
                        acc = vadd(acc,
                                   vcmulC(a3, cr[e + 3], ci[e + 3]));
                        const std::uint64_t off =
                            ((r & 1) ? b0 : 0) | ((r & 2) ? b1 : 0);
                        vstore(amps + (base | off), acc);
                    }
                }
                for (; h < end; ++h)
                    scalarOne(h);
            });
        return true;
    }
    // One operand is qubit 0 (see simd_avx2.cc for the slot map).
    const std::uint64_t bhi = bits[1];
    const int l[4] = {0, q0 == 0 ? 1 : 2, q0 == 0 ? 2 : 1, 3};
    V loR[4], loI[4], hiR[4], hiI[4];
    for (int c = 0; c < 4; ++c) {
        loR[c] = vlaneRe(m[l[0] * 4 + c], m[l[1] * 4 + c]);
        loI[c] = vlaneIm(m[l[0] * 4 + c], m[l[1] * 4 + c]);
        hiR[c] = vlaneRe(m[l[2] * 4 + c], m[l[3] * 4 + c]);
        hiI[c] = vlaneIm(m[l[2] * 4 + c], m[l[3] * 4 + c]);
    }
    forEachCompact(
        n >> 2, 4, traversal,
        [=](std::uint64_t begin, std::uint64_t end) {
            for (std::uint64_t h = begin; h < end; ++h) {
                const std::uint64_t base = expandIndex(h, bits, 2);
                const V vlo = vload(amps + base);
                const V vhi = vload(amps + base + bhi);
                V col[4];
                for (int c = 0; c < 4; ++c) {
                    const int s = l[c];
                    const V src = s < 2 ? vlo : vhi;
                    col[c] = (s & 1) ? vbcastHi(src) : vbcastLo(src);
                }
                V rlo = vadd(vcmulC(col[0], loR[0], loI[0]),
                             vcmulC(col[1], loR[1], loI[1]));
                rlo = vadd(rlo, vcmulC(col[2], loR[2], loI[2]));
                rlo = vadd(rlo, vcmulC(col[3], loR[3], loI[3]));
                V rhi = vadd(vcmulC(col[0], hiR[0], hiI[0]),
                             vcmulC(col[1], hiR[1], hiI[1]));
                rhi = vadd(rhi, vcmulC(col[2], hiR[2], hiI[2]));
                rhi = vadd(rhi, vcmulC(col[3], hiR[3], hiI[3]));
                vstore(amps + base, rlo);
                vstore(amps + base + bhi, rhi);
            }
        });
    return true;
}

// ---- reductions ------------------------------------------------------
//
// Two V accumulators mirror the AVX2 tier: acc_lo holds lane slots
// 0..3, acc_hi slots 4..7 (dispatch.hh lane contract). Block starts
// are 4-aligned, so the mapping is global and the caller's fold is
// tier-independent.

bool
normSqLanesPortable(const Complex *amps, std::uint64_t begin,
                    std::uint64_t end, const std::uint64_t *bits,
                    std::size_t k, std::uint64_t match, double *lanes)
{
    if (k != 0 && bits[0] < 4)
        return false; // group of 4 compact indices not contiguous
    if (begin == end)
        return true; // geometry probe
    V acc_lo = vloadd(lanes);
    V acc_hi = vloadd(lanes + 4);
    std::uint64_t h = begin; // 4-aligned per the dispatch contract
    for (; h + 4 <= end; h += 4) {
        const std::uint64_t i0 = expandIndex(h, bits, k) | match;
        const V v0 = vload(amps + i0);
        const V v1 = vload(amps + i0 + 2);
        acc_lo = vadd(acc_lo, vmul(v0, v0));
        acc_hi = vadd(acc_hi, vmul(v1, v1));
    }
    vstored(lanes, acc_lo);
    vstored(lanes + 4, acc_hi);
    for (; h < end; ++h) {
        const std::uint64_t i = expandIndex(h, bits, k) | match;
        const double re = amps[i].real();
        const double im = amps[i].imag();
        lanes[2 * (h & 3)] += re * re;
        lanes[2 * (h & 3) + 1] += im * im;
    }
    return true;
}

bool
probLanesPortable(const Complex *amps, double *probs,
                  std::uint64_t begin, std::uint64_t end, double *lanes)
{
    if (begin == end)
        return true;
    V acc_lo = vloadd(lanes);
    V acc_hi = vloadd(lanes + 4);
    std::uint64_t i = begin; // 8-aligned
    for (; i + 8 <= end; i += 8) {
        // Accumulate the *stored* pair sums (plain lanes[j & 7]
        // rule): one V of four probs per accumulator per step, the
        // same shape sumLanes folds, so the fused total is exactly
        // what sumLanes would produce over probs.
        double s[8];
        for (int c = 0; c < 4; ++c) {
            const V sq = vmul(vload(amps + i + 2 * c),
                              vload(amps + i + 2 * c));
            double t[4];
            vstored(t, sq);
            s[2 * c] = t[0] + t[1];
            s[2 * c + 1] = t[2] + t[3];
        }
        const V p0 = vloadd(s);
        const V p1 = vloadd(s + 4);
        vstored(probs + i, p0);
        vstored(probs + i + 4, p1);
        acc_lo = vadd(acc_lo, p0);
        acc_hi = vadd(acc_hi, p1);
    }
    vstored(lanes, acc_lo);
    vstored(lanes + 4, acc_hi);
    for (; i < end; ++i) {
        const double re = amps[i].real();
        const double im = amps[i].imag();
        const double p = re * re + im * im;
        probs[i] = p;
        lanes[i & 7] += p;
    }
    return true;
}

bool
normsPortable(const Complex *amps, std::uint64_t begin,
              std::uint64_t end, double *out)
{
    if (begin == end)
        return true;
    std::uint64_t i = begin; // 4-aligned
    for (; i + 4 <= end; i += 4) {
        const V sq0 = vmul(vload(amps + i), vload(amps + i));
        const V sq1 = vmul(vload(amps + i + 2), vload(amps + i + 2));
        double s0[4], s1[4];
        vstored(s0, sq0);
        vstored(s1, sq1);
        out[i - begin] = s0[0] + s0[1];
        out[i - begin + 1] = s0[2] + s0[3];
        out[i - begin + 2] = s1[0] + s1[1];
        out[i - begin + 3] = s1[2] + s1[3];
    }
    for (; i < end; ++i) {
        const double re = amps[i].real();
        const double im = amps[i].imag();
        out[i - begin] = re * re + im * im;
    }
    return true;
}

bool
sumLanesPortable(const double *w, std::uint64_t begin,
                 std::uint64_t end, double *lanes)
{
    if (begin == end)
        return true;
    V acc_lo = vloadd(lanes);
    V acc_hi = vloadd(lanes + 4);
    std::uint64_t j = begin; // 8-aligned
    for (; j + 8 <= end; j += 8) {
        acc_lo = vadd(acc_lo, vloadd(w + j));
        acc_hi = vadd(acc_hi, vloadd(w + j + 4));
    }
    vstored(lanes, acc_lo);
    vstored(lanes + 4, acc_hi);
    for (; j < end; ++j)
        lanes[j & 7] += w[j];
    return true;
}

} // namespace

const KernelTable kPortableTable = {
    general1qPortable,   diagonal1qPortable,   antidiagonal1qPortable,
    phaseOnMaskPortable, controlled1qPortable, general2qPortable,
};

const ReduceTable kPortableReduce = {
    normSqLanesPortable,
    probLanesPortable,
    normsPortable,
    sumLanesPortable,
};

} // namespace simd
} // namespace kernels
} // namespace qra
