/**
 * @file
 * Runtime CPU-dispatch for the vectorized gate kernels.
 *
 * The SIMD layer is organised as per-tier kernel tables: one
 * translation unit per ISA tier (simd_avx2.cc, simd_avx512.cc), each
 * compiled with exactly the flags its intrinsics need and exporting a
 * KernelTable of entry points. Every entry decides from *geometry
 * alone* (target qubit, mask shape, state size) whether it supports
 * the call, returning false before touching any amplitude when it
 * does not; the dispatcher in kernels.cc then falls down the ladder
 * to the next tier and ultimately to the scalar oracle. Tiers are
 * therefore free to cover only the profitable layouts — unsupported
 * shapes are not errors, just fall-throughs.
 *
 * Tier selection (highest wins, all clamped to what the CPU supports
 * and what was compiled in):
 *   1. a thread-local TierScope (EngineOptions::simdTier, installed
 *      by the engine's shard runner),
 *   2. the process-wide setProcessTier() (qra_run --simd=...),
 *   3. the QRA_SIMD environment variable (scalar | avx2 | avx512),
 *   4. the cpuid-probed default.
 *
 * Bit-exactness contract: every table entry must produce amplitudes
 * bit-identical to the scalar kernels in kernels.cc (libstdc++
 * std::complex semantics: per complex multiply two element products,
 * then a separate subtract/add — never FMA-contracted; IEEE addition
 * commutativity is the only reordering relied upon). The SIMD TUs are
 * compiled with -ffp-contract=off to keep their scalar peel/tail
 * loops on the same arithmetic.
 */

#ifndef QRA_SIM_KERNELS_SIMD_DISPATCH_HH
#define QRA_SIM_KERNELS_SIMD_DISPATCH_HH

#include <cstdint>
#include <string_view>
#include <vector>

#include "math/types.hh"
#include "sim/kernels/traversal.hh"

namespace qra {
namespace kernels {
namespace simd {

/** Instruction-set tiers, ordered so higher = wider. */
enum class Tier : int
{
    Scalar = 0,
    Avx2 = 1,
    Avx512 = 2,
};

/** Printable name ("scalar" / "avx2" / "avx512"). */
const char *tierName(Tier tier);

/** Parse a tier name; returns false (and leaves @p out) on junk. */
bool parseTier(std::string_view name, Tier *out);

/** Highest tier compiled into this binary (QRA_ENABLE_* options). */
Tier compiledTier();

/** Highest tier this CPU supports, clamped to compiledTier(). */
Tier detectedTier();

/**
 * The tier dispatch starts from on this thread right now: TierScope
 * override, else process override, else QRA_SIMD env, else
 * detectedTier(). Always clamped to detectedTier() — forcing a wider
 * tier than the CPU has cannot select unusable code.
 */
Tier currentTier();

/**
 * Process-wide tier override (-1 restores automatic selection).
 * Values above detectedTier() clamp; takes effect on subsequent
 * kernel calls.
 */
void setProcessTier(int tier);

/**
 * RAII thread-local tier override, mirroring FusionScope: the engine
 * installs one per shard runner from EngineOptions::simdTier.
 * @p tier -1 inherits the surrounding selection.
 */
class TierScope
{
  public:
    explicit TierScope(int tier);
    ~TierScope();

    TierScope(const TierScope &) = delete;
    TierScope &operator=(const TierScope &) = delete;

  private:
    int saved_;
};

/** Tiers usable in this binary on this CPU, ascending (never empty:
 * scalar is always present). */
std::vector<Tier> availableTiers();

/**
 * One ISA tier's kernel entry points. Each returns true if it
 * handled the call, false — before any memory access — when the
 * geometry is out of its supported shape. @p traversal is already
 * resolved (never Auto). The 2q matrix is row-major Complex[16] with
 * matrix bit 0 = q0.
 */
struct KernelTable
{
    bool (*general1q)(Complex *amps, std::uint64_t n, Qubit q,
                      Complex m00, Complex m01, Complex m10,
                      Complex m11, Traversal traversal);
    bool (*diagonal1q)(Complex *amps, std::uint64_t n, Qubit q,
                       Complex d0, Complex d1);
    bool (*antidiagonal1q)(Complex *amps, std::uint64_t n, Qubit q,
                           Complex a01, Complex a10,
                           Traversal traversal);
    bool (*phaseOnMask)(Complex *amps, std::uint64_t n,
                        std::uint64_t mask, Complex phase);
    bool (*controlled1q)(Complex *amps, std::uint64_t n, Qubit control,
                         Qubit target, Complex m00, Complex m01,
                         Complex m10, Complex m11, Traversal traversal);
    bool (*general2q)(Complex *amps, std::uint64_t n, Qubit q0,
                      Qubit q1, const Complex *m, Traversal traversal);
};

#ifdef QRA_SIMD_AVX2
/** AVX2 tier table (simd_avx2.cc). */
extern const KernelTable kAvx2Table;
#endif
#ifdef QRA_SIMD_AVX512
/** AVX-512 tier table (simd_avx512.cc). */
extern const KernelTable kAvx512Table;
#endif

/** The tier tables to try for the current selection, widest first. */
struct Ladder
{
    const KernelTable *tables[2];
    Tier tiers[2];
    int count = 0;
};

/** Build the ladder for currentTier(). Cheap (two TLS/atomic reads). */
Ladder activeLadder();

} // namespace simd
} // namespace kernels
} // namespace qra

#endif // QRA_SIM_KERNELS_SIMD_DISPATCH_HH
