/**
 * @file
 * Runtime CPU-dispatch for the vectorized gate and reduction kernels.
 *
 * The SIMD layer is organised as per-tier kernel tables: one
 * translation unit per ISA tier (simd_portable.cc, simd_avx2.cc,
 * simd_avx512.cc), each compiled with exactly the flags its
 * intrinsics need and exporting a KernelTable of streaming gate
 * entry points plus a ReduceTable of measurement-side reduction
 * entry points. Every entry decides from *geometry alone* (target
 * qubit, mask shape, state size) whether it supports the call,
 * returning false before touching any amplitude when it does not;
 * the dispatcher in kernels.cc then falls down the ladder to the
 * next tier and ultimately to the scalar oracle. Tiers are therefore
 * free to cover only the profitable layouts — unsupported shapes are
 * not errors, just fall-throughs.
 *
 * Tier selection (highest wins, all clamped to what the CPU supports
 * and what was compiled in):
 *   1. a thread-local TierScope (EngineOptions::simdTier, installed
 *      by the engine's shard runner),
 *   2. the process-wide setProcessTier() (qra_run --simd=...),
 *   3. the QRA_SIMD environment variable
 *      (scalar | portable | avx2 | avx512),
 *   4. the cpuid-probed default.
 *
 * The portable tier is ISA-agnostic (std::experimental::simd when
 * the toolchain ships it, a hand-unrolled generic otherwise), so it
 * is "detected" on every CPU it was compiled for — non-x86 builds
 * get more than the scalar oracle.
 *
 * Bit-exactness contract: every table entry must produce amplitudes
 * (and reduction lane partials) bit-identical to the scalar kernels
 * in kernels.cc (libstdc++ std::complex semantics: per complex
 * multiply two element products, then a separate subtract/add —
 * never FMA-contracted; IEEE addition commutativity is the only
 * reordering relied upon). The SIMD TUs are compiled with
 * -ffp-contract=off to keep their scalar peel/tail loops on the same
 * arithmetic.
 *
 * Reduction lane contract: every reduction accumulates into a fixed
 * 8-double lane array shared by all tiers. For a compact index h the
 * element's squared real part lands in lanes[2*(h&3)] and its
 * squared imaginary part in lanes[2*(h&3)+1] (plain double sums use
 * lanes[j&7]); the caller folds lanes[0]+lanes[1]+...+lanes[7] left
 * to right. Because the dispatcher only ever passes 4-aligned block
 * starts (deterministicSum blocks), a 4-complex vector accumulator
 * maps exactly onto the lane slots, and the fold — hence the final
 * double — is bit-identical across tiers, thread counts and lane
 * counts.
 */

#ifndef QRA_SIM_KERNELS_SIMD_DISPATCH_HH
#define QRA_SIM_KERNELS_SIMD_DISPATCH_HH

#include <cstdint>
#include <string_view>
#include <vector>

#include "math/types.hh"
#include "sim/kernels/traversal.hh"

namespace qra {
namespace kernels {
namespace simd {

/** Instruction-set tiers, ordered so higher = wider/more specific. */
enum class Tier : int
{
    Scalar = 0,
    Portable = 1,
    Avx2 = 2,
    Avx512 = 3,
};

/** Printable name ("scalar" / "portable" / "avx2" / "avx512"). */
const char *tierName(Tier tier);

/** Parse a tier name; returns false (and leaves @p out) on junk. */
bool parseTier(std::string_view name, Tier *out);

/** Highest tier compiled into this binary (QRA_ENABLE_* options). */
Tier compiledTier();

/** Highest tier this CPU supports, clamped to compiledTier(). The
 * portable tier needs no CPU features, so it is detected whenever it
 * was compiled in. */
Tier detectedTier();

/**
 * The tier dispatch starts from on this thread right now: TierScope
 * override, else process override, else QRA_SIMD env, else
 * detectedTier(). Always clamped to detectedTier() — forcing a wider
 * tier than the CPU has cannot select unusable code.
 */
Tier currentTier();

/**
 * Process-wide tier override (-1 restores automatic selection).
 * Values above detectedTier() clamp; takes effect on subsequent
 * kernel calls.
 */
void setProcessTier(int tier);

/**
 * RAII thread-local tier override, mirroring FusionScope: the engine
 * installs one per shard runner from EngineOptions::simdTier.
 * @p tier -1 inherits the surrounding selection.
 */
class TierScope
{
  public:
    explicit TierScope(int tier);
    ~TierScope();

    TierScope(const TierScope &) = delete;
    TierScope &operator=(const TierScope &) = delete;

  private:
    int saved_;
};

/** Tiers usable in this binary on this CPU, ascending (never empty:
 * scalar is always present). */
std::vector<Tier> availableTiers();

/**
 * One ISA tier's gate-kernel entry points. Each returns true if it
 * handled the call, false — before any memory access — when the
 * geometry is out of its supported shape. @p traversal is already
 * resolved (never Auto). The 2q matrix is row-major Complex[16] with
 * matrix bit 0 = q0.
 */
struct KernelTable
{
    bool (*general1q)(Complex *amps, std::uint64_t n, Qubit q,
                      Complex m00, Complex m01, Complex m10,
                      Complex m11, Traversal traversal);
    bool (*diagonal1q)(Complex *amps, std::uint64_t n, Qubit q,
                       Complex d0, Complex d1);
    bool (*antidiagonal1q)(Complex *amps, std::uint64_t n, Qubit q,
                           Complex a01, Complex a10,
                           Traversal traversal);
    bool (*phaseOnMask)(Complex *amps, std::uint64_t n,
                        std::uint64_t mask, Complex phase);
    bool (*controlled1q)(Complex *amps, std::uint64_t n, Qubit control,
                         Qubit target, Complex m00, Complex m01,
                         Complex m10, Complex m11, Traversal traversal);
    bool (*general2q)(Complex *amps, std::uint64_t n, Qubit q0,
                      Qubit q1, const Complex *m, Traversal traversal);
};

/**
 * One ISA tier's reduction entry points (see the lane contract in the
 * file comment). Each fills the caller's lanes[8] partials for one
 * contiguous sub-range whose @p begin is 4-aligned (8-aligned for
 * sumLanes); the caller folds the lanes and owns block order. A call
 * with begin == end is a pure geometry probe: it must return the
 * same support verdict without touching @p lanes (which may be
 * null).
 */
struct ReduceTable
{
    /**
     * Masked norm-squared lane partials over compact [begin, end):
     * h expands to i = expandIndex(h, bits, k) | match, and
     * lanes[2*(h&3)] += re(amps[i])^2, lanes[2*(h&3)+1] += im^2.
     * Supported geometry: k == 0, or bits[0] >= 4 so that aligned
     * groups of four compact indices expand contiguously.
     */
    bool (*normSqLanes)(const Complex *amps, std::uint64_t begin,
                        std::uint64_t end, const std::uint64_t *bits,
                        std::size_t k, std::uint64_t match,
                        double *lanes);
    /**
     * Fused probability fill: probs[i] = |amps[i]|^2 over [begin,
     * end), with the lane partials accumulated from the *stored*
     * pair sums under the plain lanes[j & 7] rule (@p begin is
     * 8-aligned). The fused total is therefore bit-identical to a
     * separate sumLanes pass over probs — AliasTable's guards see
     * exactly the sum they would recompute.
     */
    bool (*probLanes)(const Complex *amps, double *probs,
                      std::uint64_t begin, std::uint64_t end,
                      double *lanes);
    /** norms[i - begin] = |amps[i]|^2 over [begin, end); no lanes
     * (marginal scatter fills a scratch strip, then scatters it
     * serially in index order — bit-identical by construction). */
    bool (*norms)(const Complex *amps, std::uint64_t begin,
                  std::uint64_t end, double *out);
    /** Plain double sum: lanes[j & 7] += w[j] over [begin, end)
     * (alias-table prefix pass; begin is 8-aligned). */
    bool (*sumLanes)(const double *w, std::uint64_t begin,
                     std::uint64_t end, double *lanes);
};

#ifdef QRA_SIMD_PORTABLE
/** Portable tier tables (simd_portable.cc). */
extern const KernelTable kPortableTable;
extern const ReduceTable kPortableReduce;
#endif
#ifdef QRA_SIMD_AVX2
/** AVX2 tier tables (simd_avx2.cc). */
extern const KernelTable kAvx2Table;
extern const ReduceTable kAvx2Reduce;
#endif
#ifdef QRA_SIMD_AVX512
/** AVX-512 tier tables (simd_avx512.cc). */
extern const KernelTable kAvx512Table;
extern const ReduceTable kAvx512Reduce;
#endif

/** The gate tables to try for the current selection, widest first. */
struct Ladder
{
    const KernelTable *tables[3];
    Tier tiers[3];
    int count = 0;
};

/** The reduce tables to try, widest first (same selection rules). */
struct ReduceLadder
{
    const ReduceTable *tables[3];
    Tier tiers[3];
    int count = 0;
};

/** Build the ladder for currentTier(). Cheap (two TLS/atomic reads). */
Ladder activeLadder();
ReduceLadder activeReduceLadder();

} // namespace simd
} // namespace kernels
} // namespace qra

#endif // QRA_SIM_KERNELS_SIMD_DISPATCH_HH
