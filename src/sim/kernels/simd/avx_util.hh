/**
 * @file
 * Shared intrinsics helpers for the SIMD kernel TUs. Only included
 * from translation units compiled with the matching -m flags
 * (simd_avx2.cc, simd_avx512.cc) — never from generic code.
 *
 * Layout: amplitudes are std::complex<double>, i.e. interleaved
 * [re, im] pairs; a __m256d holds two complexes, a __m512d four.
 *
 * Exactness: cmul* implement the libstdc++ fast path of complex
 * multiply — two element-product vectors, then one addsub — so each
 * component sees exactly one multiply-rounding per product and one
 * add/sub-rounding, matching the scalar kernels bit for bit (operand
 * order inside a product and addend order inside the imaginary sum
 * differ only by IEEE-commutative swaps). No FMA anywhere: a fused
 * product would round once where the oracle rounds twice.
 */

#ifndef QRA_SIM_KERNELS_SIMD_AVX_UTIL_HH
#define QRA_SIM_KERNELS_SIMD_AVX_UTIL_HH

#include <immintrin.h>

#include <cstdint>

#include "math/types.hh"

namespace qra {
namespace kernels {
namespace simd {

/** Two complexes from unaligned memory. */
inline __m256d
load2(const Complex *p)
{
    return _mm256_loadu_pd(reinterpret_cast<const double *>(p));
}

inline void
store2(Complex *p, __m256d v)
{
    _mm256_storeu_pd(reinterpret_cast<double *>(p), v);
}

/** [re, im, re', im'] -> [im, re, im', re']. */
inline __m256d
swapRI(__m256d v)
{
    return _mm256_permute_pd(v, 0x5);
}

/** Broadcast one complex constant into per-lane re/im vectors. */
inline __m256d
bcastRe(Complex m)
{
    return _mm256_set1_pd(m.real());
}

inline __m256d
bcastIm(Complex m)
{
    return _mm256_set1_pd(m.imag());
}

/** Distinct constants for the low / high complex lane. */
inline __m256d
laneRe(Complex lo, Complex hi)
{
    return _mm256_setr_pd(lo.real(), lo.real(), hi.real(), hi.real());
}

inline __m256d
laneIm(Complex lo, Complex hi)
{
    return _mm256_setr_pd(lo.imag(), lo.imag(), hi.imag(), hi.imag());
}

/**
 * Complex multiply of each lane of @p v by the constant whose
 * real/imag parts were broadcast into @p mr / @p mi:
 *   [vr*mr - vi*mi, vi*mr + vr*mi]  per lane.
 */
inline __m256d
cmulC(__m256d v, __m256d mr, __m256d mi)
{
    return _mm256_addsub_pd(_mm256_mul_pd(v, mr),
                            _mm256_mul_pd(swapRI(v), mi));
}

/** Broadcast the low / high complex of @p v to both lanes. */
inline __m256d
bcastLo(__m256d v)
{
    return _mm256_permute2f128_pd(v, v, 0x00);
}

inline __m256d
bcastHi(__m256d v)
{
    return _mm256_permute2f128_pd(v, v, 0x11);
}

/** Swap the two complex lanes of @p v. */
inline __m256d
swapLanes(__m256d v)
{
    return _mm256_permute2f128_pd(v, v, 0x01);
}

#ifdef __AVX512F__

inline __m512d
load4(const Complex *p)
{
    return _mm512_loadu_pd(reinterpret_cast<const double *>(p));
}

inline void
store4(Complex *p, __m512d v)
{
    _mm512_storeu_pd(reinterpret_cast<double *>(p), v);
}

inline __m512d
swapRI(__m512d v)
{
    return _mm512_permute_pd(v, 0x55);
}

inline __m512d
bcastRe4(Complex m)
{
    return _mm512_set1_pd(m.real());
}

inline __m512d
bcastIm4(Complex m)
{
    return _mm512_set1_pd(m.imag());
}

/**
 * AVX-512 has no addsub; a - b == a + (-b) exactly in IEEE, so flip
 * the sign of the even (real) lanes of @p b and add. Requires
 * AVX512DQ for the double xor.
 */
inline __m512d
addsub4(__m512d a, __m512d b)
{
    const __m512d flip =
        _mm512_setr_pd(-0.0, 0.0, -0.0, 0.0, -0.0, 0.0, -0.0, 0.0);
    return _mm512_add_pd(a, _mm512_xor_pd(b, flip));
}

inline __m512d
cmulC4(__m512d v, __m512d mr, __m512d mi)
{
    return addsub4(_mm512_mul_pd(v, mr),
                   _mm512_mul_pd(swapRI(v), mi));
}

#endif // __AVX512F__

} // namespace simd
} // namespace kernels
} // namespace qra

#endif // QRA_SIM_KERNELS_SIMD_AVX_UTIL_HH
