/**
 * @file
 * AVX-512 tier of the gate-kernel dispatch table. Compiled with
 * -mavx512f -mavx512dq -ffp-contract=off. A __m512d holds W = 4
 * complexes, so the grouped paths need runs of at least 4 contiguous
 * compact indices (operand qubits >= 2); narrower geometries return
 * false and fall through to the AVX2 tier, which covers them.
 * addsub4 substitutes AVX-512's missing addsub with an IEEE-exact
 * sign-flip + add (see avx_util.hh).
 */

#include <cstdint>

#include "math/types.hh"
#include "sim/kernels/kernels.hh"
#include "sim/kernels/simd/avx_util.hh"
#include "sim/kernels/simd/dispatch.hh"
#include "sim/kernels/traversal.hh"

namespace qra {
namespace kernels {
namespace simd {
namespace {

constexpr std::uint64_t kW = 4; // complexes per __m512d

bool
general1qAvx512(Complex *amps, std::uint64_t n, Qubit q, Complex m00,
                Complex m01, Complex m10, Complex m11,
                Traversal traversal)
{
    if (q < 2)
        return false;
    const std::uint64_t bit = std::uint64_t{1} << q;
    const std::uint64_t low = bit - 1;
    const __m512d v00r = bcastRe4(m00), v00i = bcastIm4(m00);
    const __m512d v01r = bcastRe4(m01), v01i = bcastIm4(m01);
    const __m512d v10r = bcastRe4(m10), v10i = bcastIm4(m10);
    const __m512d v11r = bcastRe4(m11), v11i = bcastIm4(m11);
    forEachCompact(
        n >> 1, 2, traversal,
        [=](std::uint64_t begin, std::uint64_t end) {
            const auto scalarOne = [=](std::uint64_t h) {
                const std::uint64_t i0 = ((h & ~low) << 1) | (h & low);
                const std::uint64_t i1 = i0 | bit;
                const Complex a0 = amps[i0];
                const Complex a1 = amps[i1];
                amps[i0] = m00 * a0 + m01 * a1;
                amps[i1] = m10 * a0 + m11 * a1;
            };
            std::uint64_t h = begin;
            for (; h < end && (h & (kW - 1)) != 0; ++h)
                scalarOne(h);
            for (; h + kW <= end; h += kW) {
                const std::uint64_t i0 = ((h & ~low) << 1) | (h & low);
                const __m512d v0 = load4(amps + i0);
                const __m512d v1 = load4(amps + i0 + bit);
                store4(amps + i0,
                       _mm512_add_pd(cmulC4(v0, v00r, v00i),
                                     cmulC4(v1, v01r, v01i)));
                store4(amps + i0 + bit,
                       _mm512_add_pd(cmulC4(v0, v10r, v10i),
                                     cmulC4(v1, v11r, v11i)));
            }
            for (; h < end; ++h)
                scalarOne(h);
        });
    return true;
}

bool
diagonal1qAvx512(Complex *amps, std::uint64_t n, Qubit q, Complex d0,
                 Complex d1)
{
    const std::uint64_t bit = std::uint64_t{1} << q;
    if (q < 2) {
        // Sub-vector period: bake the d0/d1 pattern into the lanes
        // (q==0 alternates per complex, q==1 per two complexes; a
        // 4-complex vector at i % 4 == 0 always starts the pattern).
        const Complex pat[4] = {d0, q == 0 ? d1 : d0,
                                q == 0 ? d0 : d1, d1};
        const __m512d dr = _mm512_setr_pd(
            pat[0].real(), pat[0].real(), pat[1].real(),
            pat[1].real(), pat[2].real(), pat[2].real(),
            pat[3].real(), pat[3].real());
        const __m512d di = _mm512_setr_pd(
            pat[0].imag(), pat[0].imag(), pat[1].imag(),
            pat[1].imag(), pat[2].imag(), pat[2].imag(),
            pat[3].imag(), pat[3].imag());
        parallelFor(n, [=](std::uint64_t begin, std::uint64_t end) {
            std::uint64_t i = begin;
            for (; i < end && (i & (kW - 1)) != 0; ++i)
                amps[i] *= (i & bit) ? d1 : d0;
            for (; i + kW <= end; i += kW)
                store4(amps + i, cmulC4(load4(amps + i), dr, di));
            for (; i < end; ++i)
                amps[i] *= (i & bit) ? d1 : d0;
        });
        return true;
    }
    const __m512d d0r = bcastRe4(d0), d0i = bcastIm4(d0);
    const __m512d d1r = bcastRe4(d1), d1i = bcastIm4(d1);
    parallelFor(n, [=](std::uint64_t begin, std::uint64_t end) {
        std::uint64_t i = begin;
        for (; i < end && (i & (kW - 1)) != 0; ++i)
            amps[i] *= (i & bit) ? d1 : d0;
        for (; i + kW <= end; i += kW) {
            // i % 4 == 0 and bit >= 4: one diagonal per vector.
            const bool hi = (i & bit) != 0;
            store4(amps + i, cmulC4(load4(amps + i), hi ? d1r : d0r,
                                    hi ? d1i : d0i));
        }
        for (; i < end; ++i)
            amps[i] *= (i & bit) ? d1 : d0;
    });
    return true;
}

bool
antidiagonal1qAvx512(Complex *amps, std::uint64_t n, Qubit q,
                     Complex a01, Complex a10, Traversal traversal)
{
    if (q < 2)
        return false;
    const std::uint64_t bit = std::uint64_t{1} << q;
    const std::uint64_t low = bit - 1;
    const __m512d m01r = bcastRe4(a01), m01i = bcastIm4(a01);
    const __m512d m10r = bcastRe4(a10), m10i = bcastIm4(a10);
    forEachCompact(
        n >> 1, 2, traversal,
        [=](std::uint64_t begin, std::uint64_t end) {
            const auto scalarOne = [=](std::uint64_t h) {
                const std::uint64_t i0 = ((h & ~low) << 1) | (h & low);
                const std::uint64_t i1 = i0 | bit;
                const Complex a0 = amps[i0];
                amps[i0] = a01 * amps[i1];
                amps[i1] = a10 * a0;
            };
            std::uint64_t h = begin;
            for (; h < end && (h & (kW - 1)) != 0; ++h)
                scalarOne(h);
            for (; h + kW <= end; h += kW) {
                const std::uint64_t i0 = ((h & ~low) << 1) | (h & low);
                const __m512d v0 = load4(amps + i0);
                const __m512d v1 = load4(amps + i0 + bit);
                store4(amps + i0, cmulC4(v1, m01r, m01i));
                store4(amps + i0 + bit, cmulC4(v0, m10r, m10i));
            }
            for (; h < end; ++h)
                scalarOne(h);
        });
    return true;
}

bool
phaseOnMaskAvx512(Complex *amps, std::uint64_t n, std::uint64_t mask,
                  Complex phase)
{
    if ((mask & 3) != 0)
        return false; // need runs of 4: lowest mask bit >= 4
    const __m512d pr = bcastRe4(phase), pi = bcastIm4(phase);
    std::uint64_t bits[64];
    std::size_t k = 0;
    for (std::uint64_t rest = mask; rest != 0; rest &= rest - 1)
        bits[k++] = rest & ~(rest - 1);
    const std::uint64_t *bits_data = bits;
    parallelFor(n >> k, [=](std::uint64_t begin, std::uint64_t end) {
        std::uint64_t h = begin;
        for (; h < end && (h & (kW - 1)) != 0; ++h)
            amps[expandIndex(h, bits_data, k) | mask] *= phase;
        for (; h + kW <= end; h += kW) {
            Complex *p = amps + (expandIndex(h, bits_data, k) | mask);
            store4(p, cmulC4(load4(p), pr, pi));
        }
        for (; h < end; ++h)
            amps[expandIndex(h, bits_data, k) | mask] *= phase;
    });
    return true;
}

bool
controlled1qAvx512(Complex *amps, std::uint64_t n, Qubit control,
                   Qubit target, Complex m00, Complex m01, Complex m10,
                   Complex m11, Traversal traversal)
{
    if (control < 2 || target < 2)
        return false;
    const std::uint64_t cbit = std::uint64_t{1} << control;
    const std::uint64_t tbit = std::uint64_t{1} << target;
    std::uint64_t bits[2] = {cbit < tbit ? cbit : tbit,
                             cbit < tbit ? tbit : cbit};
    const __m512d v00r = bcastRe4(m00), v00i = bcastIm4(m00);
    const __m512d v01r = bcastRe4(m01), v01i = bcastIm4(m01);
    const __m512d v10r = bcastRe4(m10), v10i = bcastIm4(m10);
    const __m512d v11r = bcastRe4(m11), v11i = bcastIm4(m11);
    forEachCompact(
        n >> 2, 2, traversal,
        [=](std::uint64_t begin, std::uint64_t end) {
            const auto scalarOne = [=](std::uint64_t h) {
                const std::uint64_t i0 =
                    expandIndex(h, bits, 2) | cbit;
                const std::uint64_t i1 = i0 | tbit;
                const Complex a0 = amps[i0];
                const Complex a1 = amps[i1];
                amps[i0] = m00 * a0 + m01 * a1;
                amps[i1] = m10 * a0 + m11 * a1;
            };
            std::uint64_t h = begin;
            for (; h < end && (h & (kW - 1)) != 0; ++h)
                scalarOne(h);
            for (; h + kW <= end; h += kW) {
                const std::uint64_t i0 =
                    expandIndex(h, bits, 2) | cbit;
                const __m512d v0 = load4(amps + i0);
                const __m512d v1 = load4(amps + i0 + tbit);
                store4(amps + i0,
                       _mm512_add_pd(cmulC4(v0, v00r, v00i),
                                     cmulC4(v1, v01r, v01i)));
                store4(amps + i0 + tbit,
                       _mm512_add_pd(cmulC4(v0, v10r, v10i),
                                     cmulC4(v1, v11r, v11i)));
            }
            for (; h < end; ++h)
                scalarOne(h);
        });
    return true;
}

bool
general2qAvx512(Complex *amps, std::uint64_t n, Qubit q0, Qubit q1,
                const Complex *m, Traversal traversal)
{
    if (q0 < 2 || q1 < 2)
        return false;
    const std::uint64_t b0 = std::uint64_t{1} << q0;
    const std::uint64_t b1 = std::uint64_t{1} << q1;
    std::uint64_t bits[2] = {b0 < b1 ? b0 : b1, b0 < b1 ? b1 : b0};
    __m512d cr[16], ci[16];
    for (int e = 0; e < 16; ++e) {
        cr[e] = bcastRe4(m[e]);
        ci[e] = bcastIm4(m[e]);
    }
    forEachCompact(
        n >> 2, 4, traversal,
        [=](std::uint64_t begin, std::uint64_t end) {
            const auto scalarOne = [=](std::uint64_t h) {
                const std::uint64_t base = expandIndex(h, bits, 2);
                const std::uint64_t i1 = base | b0;
                const std::uint64_t i2 = base | b1;
                const std::uint64_t i3 = base | b0 | b1;
                const Complex a0 = amps[base];
                const Complex a1 = amps[i1];
                const Complex a2 = amps[i2];
                const Complex a3 = amps[i3];
                amps[base] =
                    m[0] * a0 + m[1] * a1 + m[2] * a2 + m[3] * a3;
                amps[i1] =
                    m[4] * a0 + m[5] * a1 + m[6] * a2 + m[7] * a3;
                amps[i2] =
                    m[8] * a0 + m[9] * a1 + m[10] * a2 + m[11] * a3;
                amps[i3] =
                    m[12] * a0 + m[13] * a1 + m[14] * a2 + m[15] * a3;
            };
            std::uint64_t h = begin;
            for (; h < end && (h & (kW - 1)) != 0; ++h)
                scalarOne(h);
            for (; h + kW <= end; h += kW) {
                const std::uint64_t base = expandIndex(h, bits, 2);
                const __m512d a0 = load4(amps + base);
                const __m512d a1 = load4(amps + (base | b0));
                const __m512d a2 = load4(amps + (base | b1));
                const __m512d a3 = load4(amps + (base | b0 | b1));
                for (int r = 0; r < 4; ++r) {
                    const int e = 4 * r;
                    __m512d acc = _mm512_add_pd(
                        cmulC4(a0, cr[e], ci[e]),
                        cmulC4(a1, cr[e + 1], ci[e + 1]));
                    acc = _mm512_add_pd(
                        acc, cmulC4(a2, cr[e + 2], ci[e + 2]));
                    acc = _mm512_add_pd(
                        acc, cmulC4(a3, cr[e + 3], ci[e + 3]));
                    const std::uint64_t off =
                        ((r & 1) ? b0 : 0) | ((r & 2) ? b1 : 0);
                    store4(amps + (base | off), acc);
                }
            }
            for (; h < end; ++h)
                scalarOne(h);
        });
    return true;
}

// ---- reductions ------------------------------------------------------
//
// One __m512d accumulator covers all eight lane slots (dispatch.hh):
// a 4-complex load is [re0, im0, ..., re3, im3], so acc lane j is
// exactly lanes[j]. Block starts are 4-aligned, making the mapping
// global; the caller folds lanes left to right.

bool
normSqLanesAvx512(const Complex *amps, std::uint64_t begin,
                  std::uint64_t end, const std::uint64_t *bits,
                  std::size_t k, std::uint64_t match, double *lanes)
{
    if (k != 0 && bits[0] < 4)
        return false; // group of 4 compact indices not contiguous
    if (begin == end)
        return true; // geometry probe
    __m512d acc = _mm512_loadu_pd(lanes);
    std::uint64_t h = begin; // 4-aligned per the dispatch contract
    for (; h + kW <= end; h += kW) {
        const __m512d v =
            load4(amps + (expandIndex(h, bits, k) | match));
        acc = _mm512_add_pd(acc, _mm512_mul_pd(v, v));
    }
    _mm512_storeu_pd(lanes, acc);
    for (; h < end; ++h) {
        const std::uint64_t i = expandIndex(h, bits, k) | match;
        const double re = amps[i].real();
        const double im = amps[i].imag();
        lanes[2 * (h & 3)] += re * re;
        lanes[2 * (h & 3) + 1] += im * im;
    }
    return true;
}

/** probs pair-add: evens + odds of the squared vector, each pair sum
 * rounding once, exactly like scalar re*re + im*im. */
inline __m256d
pairSums(__m512d sq)
{
    const __m512i idxe = _mm512_setr_epi64(0, 2, 4, 6, 0, 0, 0, 0);
    const __m512i idxo = _mm512_setr_epi64(1, 3, 5, 7, 0, 0, 0, 0);
    const __m256d evens =
        _mm512_castpd512_pd256(_mm512_permutexvar_pd(idxe, sq));
    const __m256d odds =
        _mm512_castpd512_pd256(_mm512_permutexvar_pd(idxo, sq));
    return _mm256_add_pd(evens, odds);
}

bool
probLanesAvx512(const Complex *amps, double *probs,
                std::uint64_t begin, std::uint64_t end, double *lanes)
{
    if (begin == end)
        return true;
    __m512d acc = _mm512_loadu_pd(lanes);
    std::uint64_t i = begin; // 8-aligned
    for (; i + 8 <= end; i += 8) {
        // The lane accumulator sees the *stored* pair sums (plain
        // lanes[j & 7] rule): one zmm of eight probs per step, the
        // same shape sumLanes folds, so the fused total is exactly
        // what sumLanes would produce over probs.
        const __m512d v0 = load4(amps + i);
        const __m512d v1 = load4(amps + i + 4);
        const __m256d p0 = pairSums(_mm512_mul_pd(v0, v0));
        const __m256d p1 = pairSums(_mm512_mul_pd(v1, v1));
        const __m512d p = _mm512_insertf64x4(
            _mm512_castpd256_pd512(p0), p1, 1);
        _mm512_storeu_pd(probs + i, p);
        acc = _mm512_add_pd(acc, p);
    }
    _mm512_storeu_pd(lanes, acc);
    for (; i < end; ++i) {
        const double re = amps[i].real();
        const double im = amps[i].imag();
        const double p = re * re + im * im;
        probs[i] = p;
        lanes[i & 7] += p;
    }
    return true;
}

bool
normsAvx512(const Complex *amps, std::uint64_t begin,
            std::uint64_t end, double *out)
{
    if (begin == end)
        return true;
    std::uint64_t i = begin; // 4-aligned
    for (; i + kW <= end; i += kW) {
        const __m512d v = load4(amps + i);
        _mm256_storeu_pd(out + (i - begin),
                         pairSums(_mm512_mul_pd(v, v)));
    }
    for (; i < end; ++i) {
        const double re = amps[i].real();
        const double im = amps[i].imag();
        out[i - begin] = re * re + im * im;
    }
    return true;
}

bool
sumLanesAvx512(const double *w, std::uint64_t begin, std::uint64_t end,
               double *lanes)
{
    if (begin == end)
        return true;
    __m512d acc = _mm512_loadu_pd(lanes);
    std::uint64_t j = begin; // 8-aligned
    for (; j + 8 <= end; j += 8)
        acc = _mm512_add_pd(acc, _mm512_loadu_pd(w + j));
    _mm512_storeu_pd(lanes, acc);
    for (; j < end; ++j)
        lanes[j & 7] += w[j];
    return true;
}

} // namespace

const KernelTable kAvx512Table = {
    general1qAvx512,   diagonal1qAvx512,   antidiagonal1qAvx512,
    phaseOnMaskAvx512, controlled1qAvx512, general2qAvx512,
};

const ReduceTable kAvx512Reduce = {
    normSqLanesAvx512,
    probLanesAvx512,
    normsAvx512,
    sumLanesAvx512,
};

} // namespace simd
} // namespace kernels
} // namespace qra
